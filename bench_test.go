package moq

// Benchmark harness: one benchmark family per experiment in DESIGN.md's
// per-experiment index. The paper is a theory paper with no measurement
// tables; the artifacts reproduced here are its complexity claims
// (Theorems 4, 5, 10, Corollary 6, Proposition 1, Lemma 9) and the
// baseline comparison of Section 5. cmd/modbench runs the same
// experiments with model fitting and prints the tables recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/eventq"
	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/piecewise"
	"repro/internal/query"
	"repro/internal/workload"
)

// e1Sizes are the population sizes swept by the scaling benchmarks.
var e1Sizes = []int{1000, 2000, 4000}

// mustMovers builds a converging population (high intersection density).
func mustMovers(b *testing.B, n int) *mod.DB {
	b.Helper()
	db, err := workload.ConvergingMovers(workload.Config{Seed: 1, N: n})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkE1PastKNN measures Theorem 4's regime: a past 1-NN query over
// a fixed window; the reported "events" metric is the paper's m.
func BenchmarkE1PastKNN(b *testing.B) {
	for _, n := range e1Sizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			db := mustMovers(b, n)
			q := workload.QueryTrajectory(workload.Config{}, 2)
			f := gdist.EuclideanSq{Query: q}
			b.ResetTimer()
			var events int
			for i := 0; i < b.N; i++ {
				_, st, err := RunPastKNN(db, f, 1, 0, 50)
				if err != nil {
					b.Fatal(err)
				}
				events = st.Events
			}
			b.ReportMetric(float64(events), "events/op")
		})
	}
}

// BenchmarkE2Init measures Theorem 5(1): building the initial precedence
// relation (curve construction + O(N log N) insertion sort).
func BenchmarkE2Init(b *testing.B) {
	for _, n := range e1Sizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			db := mustMovers(b, n)
			trajs := db.Trajectories()
			q := workload.QueryTrajectory(workload.Config{}, 2)
			f := gdist.EuclideanSq{Query: q}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := query.NewEngine(query.EngineConfig{F: f, Lo: 0, Hi: 1000})
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Seed(trajs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Update measures Theorem 5(2)/Corollary 6: the per-update
// maintenance cost of a continuing query under a regular update stream.
func BenchmarkE3Update(b *testing.B) {
	for _, n := range e1Sizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			db := mustMovers(b, n)
			q := workload.QueryTrajectory(workload.Config{}, 2)
			f := gdist.EuclideanSq{Query: q}
			// Back-to-back updates isolate the pure per-update cost
			// (Corollary 6's O(log N)); intervening sweep events belong
			// to the m log N term, measured separately by modbench e3.
			to := 1 + float64(b.N+1)*1e-6
			updates, err := workload.Stream(db, workload.StreamConfig{
				Seed: 3, Count: b.N + 1, From: 1, To: to,
			})
			if err != nil {
				b.Fatal(err)
			}
			knn := query.NewKNN(1)
			sess, err := query.NewSession(db, f, 0, to+10, knn)
			if err != nil {
				b.Fatal(err)
			}
			// Reach steady state before timing: the advance to the
			// first update processes the backlog of initial events.
			if err := sess.AdvanceTo(0.999); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.Apply(updates[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4QueryChdir measures Theorem 10: a chdir on the query
// trajectory replaces every curve without re-sorting; cost O(N).
func BenchmarkE4QueryChdir(b *testing.B) {
	for _, n := range e1Sizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			db := mustMovers(b, n)
			q := workload.QueryTrajectory(workload.Config{}, 2)
			sess, _, err := NewKNNSession(db, gdist.EuclideanSq{Query: q}, 1, 0, 1e6)
			if err != nil {
				b.Fatal(err)
			}
			if err := sess.AdvanceTo(1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				turned, err := q.ChDir(1, V(float64(i%7-3), float64(i%5-2)))
				if err != nil {
					b.Fatal(err)
				}
				if err := ReplaceQueryDistance(sess, gdist.EuclideanSq{Query: turned}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Baselines compares the sweep against the Proposition 1
// quantifier-elimination baseline on the same past 1-NN query (small N:
// the baseline is O(N^2) root finding).
func BenchmarkE5Baselines(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		db := mustMovers(b, n)
		q := workload.QueryTrajectory(workload.Config{}, 2)
		f := gdist.EuclideanSq{Query: q}
		b.Run(fmt.Sprintf("sweep/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := RunPastKNN(db, f, 1, 0, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("qe-naive/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.AllPairsKNN(db, q, 1, 0, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Queue is the Lemma 9 ablation: indexed binary heap vs the
// paper's height-biased leftist tree as the event queue of a full past
// query.
func BenchmarkE6Queue(b *testing.B) {
	db := mustMovers(b, 4000)
	q := workload.QueryTrajectory(workload.Config{}, 2)
	f := gdist.EuclideanSq{Query: q}
	run := func(b *testing.B, mk func() eventq.Queue) {
		for i := 0; i < b.N; i++ {
			knn := query.NewKNN(1)
			e, err := query.NewEngine(query.EngineConfig{F: f, Lo: 0, Hi: 50, Queue: mk()})
			if err != nil {
				b.Fatal(err)
			}
			if err := e.AddEvaluator(knn); err != nil {
				b.Fatal(err)
			}
			if err := e.Seed(db.Trajectories()); err != nil {
				b.Fatal(err)
			}
			if err := e.Finish(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("heap", func(b *testing.B) { run(b, func() eventq.Queue { return eventq.NewHeap() }) })
	b.Run("leftist", func(b *testing.B) { run(b, func() eventq.Queue { return eventq.NewLeftist() }) })
}

// BenchmarkE7SR01 measures the Song–Roussopoulos baseline's sampling cost
// at several periods (its accuracy is measured in cmd/modbench e7 and
// TestSR01MissesQuickExchange).
func BenchmarkE7SR01(b *testing.B) {
	db, err := workload.StationaryField(5, 10000, 1000)
	if err != nil {
		b.Fatal(err)
	}
	q := workload.QueryTrajectory(workload.Config{}, 6)
	for _, period := range []float64{5, 1, 0.2} {
		b.Run(fmt.Sprintf("period=%g", period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.SR01KNN(db, q, baseline.SR01Config{K: 5, Period: period}, 0, 100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF1Intercept exercises the Figure 1 / Example 7 fastest-arrival
// distance end to end (fit + sweep).
func BenchmarkF1Intercept(b *testing.B) {
	cars, target, err := workload.Dispatch(7, 50)
	if err != nil {
		b.Fatal(err)
	}
	f := gdist.Intercept{Target: target, MaxErr: 1e-4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunPastKNN(cars, f, 1, 0, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelPastQueries runs independent past queries concurrently
// over a shared database snapshot: sweeps are single-threaded by design
// (they ARE a sweep), but distinct queries parallelize freely because
// trajectories are immutable values.
func BenchmarkParallelPastQueries(b *testing.B) {
	db := mustMovers(b, 1000)
	b.RunParallel(func(pb *testing.PB) {
		seed := int64(0)
		for pb.Next() {
			seed++
			q := workload.QueryTrajectory(workload.Config{}, seed)
			if _, _, err := RunPastKNN(db, gdist.EuclideanSq{Query: q}, 1, 0, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8Historian measures the lifetime-index access path: repeated
// short-window past queries over a long history with object churn, seeded
// either from the full population (RunPast) or from the interval index
// (query.Historian).
func BenchmarkE8Historian(b *testing.B) {
	db := churnHistory(b, 4000)
	q := workload.QueryTrajectory(workload.Config{}, 3)
	f := gdist.EuclideanSq{Query: q}
	b.Run("full-seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := float64(i%90) * 10
			knn := query.NewKNN(1)
			if _, err := query.RunPast(db, f, lo, lo+10, knn); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		h, err := query.NewHistorian(db)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := float64(i%90) * 10
			if _, _, err := h.KNN(f, 1, lo, lo+10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// churnHistory builds a long recorded history where each object lives in
// a short era, so any given query window intersects only a few lifetimes.
func churnHistory(b *testing.B, n int) *mod.DB {
	b.Helper()
	db := mod.NewDB(2, -1)
	for i := 1; i <= n; i++ {
		start := float64(i-1) * (900.0 / float64(n))
		tr := Linear(start, V(float64(i%7)-3, float64(i%5)-2),
			V(float64((i*37)%500)-250, float64((i*73)%500)-250))
		end := start + 30
		term, err := tr.Terminate(end)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Load(mod.OID(i), term); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkE9Envelope compares the sweep's 1-NN against the direct
// divide-and-conquer lower envelope (Example 6's identity): the envelope
// is competitive one-shot but supports no updates — the sweep's event
// queue is what buys incrementality.
func BenchmarkE9Envelope(b *testing.B) {
	db := mustMovers(b, 1000)
	q := workload.QueryTrajectory(workload.Config{}, 2)
	f := gdist.EuclideanSq{Query: q}
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := RunPastKNN(db, f, 1, 0, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("envelope", func(b *testing.B) {
		var curves []piecewise.Labeled
		for o, tr := range db.Trajectories() {
			cf, err := f.Curve(tr, 0, 50)
			if err != nil {
				b.Fatal(err)
			}
			curves = append(curves, piecewise.Labeled{ID: uint64(o), F: cf})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := piecewise.LowerEnvelope(curves, 0, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
}
