package main

// Bench-regression gate: -compare loads a committed baseline document
// (the bench/*.json artifacts written by -json) and fails the run if
// any throughput record regressed by more than regressFactor, or if a
// zero-alloc hot path started allocating. The threshold is deliberately
// generous — CI machines differ from the machine that wrote the
// baseline — so only step-function regressions (a lost fast path, a
// reintroduced per-update fsync, a new allocation per op) trip it.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// regressFactor is the allowed throughput slowdown vs the committed
// baseline before the gate fails (>2x regression fails).
const regressFactor = 2.0

// allocSlack is the allowed allocs/op increase over the baseline; 0.5
// distinguishes "still amortized-zero" from "allocates every op".
const allocSlack = 0.5

func recordKey(r benchRecord) string {
	return fmt.Sprintf("%s/%s/p=%d", r.Exp, r.Name, r.P)
}

// compareBaseline checks this run's records against the baseline at
// path. Only baseline records whose experiment was selected this run
// are compared, so a -exp e12 smoke ignores e10/e11 baselines.
func compareBaseline(path string, ran map[string]bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var doc struct {
		Records []benchRecord `json:"records"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	got := make(map[string]benchRecord, len(benchRecords))
	for _, r := range benchRecords {
		got[recordKey(r)] = r
	}
	var failures []error
	fmt.Printf("== bench regression gate vs %s (fail at >%.0fx slowdown) ==\n", path, regressFactor)
	for _, base := range doc.Records {
		if !ran[base.Exp] {
			continue
		}
		key := recordKey(base)
		cur, ok := got[key]
		if !ok {
			failures = append(failures, fmt.Errorf("%s: baseline record missing from this run", key))
			continue
		}
		if base.UpdatesPerSec > 0 && cur.UpdatesPerSec > 0 {
			ratio := cur.UpdatesPerSec / base.UpdatesPerSec
			status := "ok"
			if ratio < 1/regressFactor {
				status = "REGRESSED"
				failures = append(failures, fmt.Errorf(
					"%s: %.0f updates/s vs baseline %.0f (%.2fx)",
					key, cur.UpdatesPerSec, base.UpdatesPerSec, ratio))
			}
			fmt.Printf("  %-40s %.2fx throughput vs baseline  %s\n", key, ratio, status)
		}
		if base.AllocsPerOp != nil && cur.AllocsPerOp != nil {
			status := "ok"
			if *cur.AllocsPerOp > *base.AllocsPerOp+allocSlack {
				status = "REGRESSED"
				failures = append(failures, fmt.Errorf(
					"%s: %.3g allocs/op vs baseline %.3g",
					key, *cur.AllocsPerOp, *base.AllocsPerOp))
			}
			fmt.Printf("  %-40s %.3g allocs/op (baseline %.3g)  %s\n",
				key, *cur.AllocsPerOp, *base.AllocsPerOp, status)
		}
	}
	return errors.Join(failures...)
}
