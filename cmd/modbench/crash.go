package main

// Crash-recovery smoke support (the CI "crash" job) and E11, the
// durability-overhead experiment.
//
// The smoke test is two modbench invocations around a kill -9:
//
//	modbench -drive http://HOST:PORT -acked acked.jsonl
//	    streams a deterministic chronological update sequence at a
//	    running modserve, appending each update to the acked file only
//	    after the server acknowledged it. When the server dies
//	    mid-stream the driver exits cleanly — that is the point.
//
//	modbench -crashcheck http://HOST:PORT -acked acked.jsonl
//	    after the server restarts on the same -data-dir: fetches
//	    /snapshot and asserts the recovered database is exactly a
//	    prefix of the driven stream that covers every acknowledged
//	    update — nothing acked was lost, nothing out of order or
//	    invented was recovered.
//
// Both sides regenerate the stream from -seed, so the only shared
// artifact is the acked file.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/shard"
)

var (
	driveFlag  = flag.String("drive", "", "stream updates at a running modserve (base URL) and record acks; crash-recovery smoke driver")
	checkFlag  = flag.String("crashcheck", "", "verify a restarted modserve (base URL) recovered an ack-covering prefix of the driven stream")
	streamFlag = flag.Int("stream-updates", 50000, "length of the driven stream (-drive/-crashcheck)")
	ackedFlag  = flag.String("acked", "acked.jsonl", "acked-updates file the driver writes and the checker reads")
)

// crashMain dispatches the -drive / -crashcheck modes (they bypass the
// experiment runner).
func crashMain() {
	var err error
	switch {
	case *driveFlag != "":
		err = runDrive(strings.TrimRight(*driveFlag, "/"))
	case *checkFlag != "":
		err = runCrashCheck(strings.TrimRight(*checkFlag, "/"))
	}
	if err != nil {
		log.Fatal(err)
	}
}

// crashStream derives the deterministic chronological workload from a
// seed: object creations interleaved into direction changes and a few
// terminations (a terminated object is never updated again), taus
// strictly increasing so every prefix is a valid stream.
func crashStream(seed int64, n int) []mod.Update {
	rng := rand.New(rand.NewSource(seed))
	nobj := n / 50
	if nobj < 8 {
		nobj = 8
	}
	vec := func(scale float64) geom.Vec {
		return geom.Of(scale*(rng.Float64()-0.5), scale*(rng.Float64()-0.5))
	}
	var us []mod.Update
	tau := 0.0
	created := 0
	dead := make(map[mod.OID]bool)
	for len(us) < n {
		tau += 0.1 + 0.4*rng.Float64()
		if created < nobj && (len(us) < nobj || rng.Intn(4) == 0) {
			created++
			us = append(us, mod.New(mod.OID(created), tau, vec(4), vec(400)))
			continue
		}
		o := mod.OID(rng.Intn(created) + 1)
		if dead[o] {
			continue
		}
		if rng.Intn(200) == 0 && len(dead) < nobj/4 {
			dead[o] = true
			us = append(us, mod.Terminate(o, tau))
			continue
		}
		us = append(us, mod.ChDir(o, tau, vec(4)))
	}
	return us
}

// waitHealthy polls /healthz until the server answers (or 15s elapse).
func waitHealthy(base string) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after 15s (last: %v)", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func runDrive(base string) error {
	if err := waitHealthy(base); err != nil {
		return err
	}
	us := crashStream(*seedFlag, *streamFlag)
	f, err := os.Create(*ackedFlag)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}
	acks := 0
	for i, u := range us {
		body, err := json.Marshal(u)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			// The server vanished mid-stream. For the crash smoke test
			// that is the expected outcome: report how far we got and
			// exit cleanly so the checker can take over.
			if acks == 0 {
				_ = f.Close()
				return fmt.Errorf("update 0 never reached the server: %w", err)
			}
			log.Printf("drive: server vanished after %d acked updates (%v)", acks, err)
			return f.Close()
		}
		ok := resp.StatusCode == http.StatusOK
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		_ = resp.Body.Close()
		if !ok {
			_ = f.Close()
			return fmt.Errorf("update %d: http %d: %s", i, resp.StatusCode, msg)
		}
		// Record the ack only after the server confirmed it — each line
		// is written (unbuffered) before the next update is sent, so the
		// acked file never runs ahead of the server.
		if _, err := f.Write(append(body, '\n')); err != nil {
			return err
		}
		acks++
	}
	log.Printf("drive: all %d updates acked (no crash observed)", acks)
	return f.Close()
}

// readAcked parses the driver's ack log, dropping a torn final line (the
// driver itself may have been killed).
func readAcked(path string) ([]mod.Update, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []mod.Update
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var u mod.Update
		if err := json.Unmarshal(line, &u); err != nil {
			if i >= len(lines)-2 {
				break // torn tail
			}
			return nil, fmt.Errorf("%s:%d: %w", path, i+1, err)
		}
		out = append(out, u)
	}
	return out, nil
}

func runCrashCheck(base string) error {
	if err := waitHealthy(base); err != nil {
		return err
	}
	us := crashStream(*seedFlag, *streamFlag)
	acked, err := readAcked(*ackedFlag)
	if err != nil {
		return err
	}
	if len(acked) > len(us) {
		return fmt.Errorf("acked file has %d updates but the stream only %d (seed/stream-updates mismatch?)", len(acked), len(us))
	}
	for i, a := range acked {
		want, _ := json.Marshal(us[i])
		got, _ := json.Marshal(a)
		if !bytes.Equal(want, got) {
			return fmt.Errorf("acked update %d is not the stream's: got %s want %s (seed mismatch?)", i, got, want)
		}
	}
	resp, err := http.Get(base + "/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/snapshot: http %d", resp.StatusCode)
	}
	rec, err := mod.LoadJSON(resp.Body)
	if err != nil {
		return fmt.Errorf("decode /snapshot: %w", err)
	}
	// Locate the recovered prefix: taus are strictly increasing, so the
	// database time pins exactly how many stream updates were applied.
	j := 0
	for j < len(us) && us[j].Tau <= rec.Tau() {
		j++
	}
	if j < len(acked) {
		return fmt.Errorf("DATA LOSS: %d updates were acked but the recovered state ends after %d (tau=%g)", len(acked), j, rec.Tau())
	}
	want := mod.NewDB(2, 0)
	if err := want.ApplyAll(us[:j]...); err != nil {
		return fmt.Errorf("rebuild prefix: %w", err)
	}
	if !rec.StateEqual(want) {
		return fmt.Errorf("recovered state is not the stream prefix of length %d", j)
	}
	log.Printf("crashcheck OK: %d acked, recovered prefix %d of %d, state matches exactly", len(acked), j, len(us))
	return nil
}

// e11 — durability overhead (internal/durable): what the journal's
// flush-per-update guarantee costs at ingest, what a checkpoint costs,
// and what recovery costs from a snapshot vs by journal replay.
func e11() error {
	fmt.Println("== E11: durability overhead (internal/durable) ==")
	count := 20000
	if *quickFlag {
		count = 4000
	}
	const p = 4
	us := crashStream(*seedFlag+6, count)
	root, err := os.MkdirTemp("", "modbench-e11-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	applyAll := func(apply func(mod.Update) error) (float64, error) {
		start := time.Now()
		for _, u := range us {
			if err := apply(u); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}

	// Volatile baseline: the same sharded engine with no journal.
	veng, err := shard.FromDB(mod.NewDB(2, 0), shard.Config{Shards: p, Workers: p})
	if err != nil {
		return err
	}
	volT, err := applyAll(veng.Apply)
	if err != nil {
		return err
	}

	// Durable, flushed per update (the kill -9 guarantee modserve runs
	// with), then a checkpoint, then recovery from that snapshot.
	fdir := filepath.Join(root, "flush")
	feng, err := durable.Open(fdir, durable.Config{Shards: p, Workers: p, Dim: 2})
	if err != nil {
		return err
	}
	flushT, err := applyAll(feng.Apply)
	if err != nil {
		return err
	}
	ckStart := time.Now()
	infos, err := feng.Checkpoint()
	if err != nil {
		return err
	}
	ckT := time.Since(ckStart).Seconds()
	snapBytes := 0
	for _, info := range infos {
		snapBytes += info.SnapshotBytes
	}
	if err := feng.Close(); err != nil {
		return err
	}
	rsStart := time.Now()
	reng, err := durable.Open(fdir, durable.Config{Shards: p, Workers: p, Dim: 2})
	if err != nil {
		return err
	}
	recSnapT := time.Since(rsStart).Seconds()
	if err := reng.Close(); err != nil {
		return err
	}

	// Durable with batched journal writes (no per-update flush), closed
	// without a checkpoint so reopening must replay the whole journal.
	bdir := filepath.Join(root, "batch")
	beng, err := durable.Open(bdir, durable.Config{Shards: p, Workers: p, Dim: 2, NoFlushEach: true})
	if err != nil {
		return err
	}
	batchT, err := applyAll(beng.Apply)
	if err != nil {
		return err
	}
	if err := beng.Sync(); err != nil {
		return err
	}
	if err := beng.Close(); err != nil {
		return err
	}
	rrStart := time.Now()
	breng, err := durable.Open(bdir, durable.Config{Shards: p, Workers: p, Dim: 2})
	if err != nil {
		return err
	}
	recReplayT := time.Since(rrStart).Seconds()
	replayed := 0
	for _, info := range breng.Recovery() {
		replayed += info.Replay.Applied
	}
	if err := breng.Close(); err != nil {
		return err
	}
	if replayed != count {
		return fmt.Errorf("journal replay recovered %d of %d updates", replayed, count)
	}

	ups := func(t float64) float64 { return float64(count) / t }
	emitBench(benchRecord{Exp: "e11", Name: "ingest-volatile", P: p, N: count,
		Seconds: volT, UpdatesPerSec: ups(volT)})
	emitBench(benchRecord{Exp: "e11", Name: "ingest-durable-flush", P: p, N: count,
		Seconds: flushT, UpdatesPerSec: ups(flushT)})
	emitBench(benchRecord{Exp: "e11", Name: "ingest-durable-batched", P: p, N: count,
		Seconds: batchT, UpdatesPerSec: ups(batchT)})
	emitBench(benchRecord{Exp: "e11", Name: "checkpoint", P: p, N: count,
		Seconds: ckT, Bytes: snapBytes})
	emitBench(benchRecord{Exp: "e11", Name: "recovery-snapshot", P: p, N: count,
		Seconds: recSnapT})
	emitBench(benchRecord{Exp: "e11", Name: "recovery-replay", P: p, N: count,
		Seconds: recReplayT, Events: replayed})

	table("mode\tingest s\tupdates/s\tvs volatile", [][]string{
		{"volatile", fmt.Sprintf("%.3g", volT), fmt.Sprintf("%.0f", ups(volT)), "1.00x"},
		{"durable (flush/update)", fmt.Sprintf("%.3g", flushT), fmt.Sprintf("%.0f", ups(flushT)), fmt.Sprintf("%.2fx", flushT/volT)},
		{"durable (batched)", fmt.Sprintf("%.3g", batchT), fmt.Sprintf("%.0f", ups(batchT)), fmt.Sprintf("%.2fx", batchT/volT)},
	})
	fmt.Printf("checkpoint (P=%d): %.3g ms, %d snapshot bytes\n", p, ckT*1e3, snapBytes)
	fmt.Printf("recovery: %.3g ms from snapshot, %.3g ms replaying %d journal entries\n",
		recSnapT*1e3, recReplayT*1e3, replayed)
	return nil
}
