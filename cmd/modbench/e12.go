package main

// e12 — update-path throughput: what PR 5's three optimizations buy.
//
//  1. Batched ingestion (shard.Engine.ApplyBatch) vs one-at-a-time
//     Apply on a volatile engine: one router pass and one per-shard
//     lock/journal session per batch instead of per update.
//  2. Group commit vs per-update fsync on a durable engine, measured
//     at equal guarantee: every measured call returns only after the
//     fsync covering its updates (CommitSyncEach per update vs
//     CommitGroup where one fsync acks a whole per-shard batch).
//  3. The zero-alloc sweep hot path: allocations per steady-state
//     AdvanceTo step and per ReplaceCurve (the exported operation
//     driving schedulePair), measured with testing.AllocsPerRun. The
//     go-test benchmarks BenchmarkAdvanceTo/BenchmarkSchedulePair in
//     internal/core are the per-op gate; this record commits the
//     numbers into the bench artifact.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/mod"
	"repro/internal/piecewise"
	"repro/internal/poly"
	"repro/internal/shard"
	"repro/internal/workload"
)

// benchZigzag is the triangular wave of internal/core's sweep
// benchmarks: period 16+i so every pair keeps crossing, offset i*1e-3
// to break exact ties.
func benchZigzag(i int, amp, lo, hi float64) piecewise.Func {
	period := float64(16 + i)
	slope := 2 * amp / period
	off := float64(i) * 1e-3
	var pieces []piecewise.Piece
	for start := lo; start < hi; start += period {
		mid := start + period/2
		end := start + period
		if mid > hi {
			mid = hi
		}
		if end > hi {
			end = hi
		}
		pieces = append(pieces, piecewise.Piece{
			Start: start, End: mid,
			P: poly.Linear(slope, off-slope*start),
		})
		if end > mid {
			pieces = append(pieces, piecewise.Piece{
				Start: mid, End: end,
				P: poly.Linear(-slope, off+slope*end),
			})
		}
	}
	return piecewise.MustNew(pieces...)
}

func e12() error {
	fmt.Println("== E12: update-path throughput (batching, group commit, zero-alloc sweep) ==")
	count := 20000
	ackedCount := 8000
	if *quickFlag {
		count = 4000
		ackedCount = 1500
	}
	const p = 4
	const batch = 256

	applyAll := func(us []mod.Update, apply func(mod.Update) error) (float64, error) {
		start := time.Now()
		for _, u := range us {
			if err := apply(u); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}
	applyBatches := func(us []mod.Update, apply func([]mod.Update) (int, error)) (float64, error) {
		start := time.Now()
		if err := workload.ReplayBatches(us, batch, apply); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	ups := func(n int, t float64) float64 { return float64(n) / t }

	// --- 1. single vs batched ingestion, volatile sharded engine ---
	us := crashStream(*seedFlag+7, count)
	seng, err := shard.FromDB(mod.NewDB(2, 0), shard.Config{Shards: p, Workers: p})
	if err != nil {
		return err
	}
	singleT, err := applyAll(us, seng.Apply)
	if err != nil {
		return err
	}
	beng, err := shard.FromDB(mod.NewDB(2, 0), shard.Config{Shards: p, Workers: p})
	if err != nil {
		return err
	}
	batchT, err := applyBatches(us, beng.ApplyBatch)
	if err != nil {
		return err
	}
	emitBench(benchRecord{Exp: "e12", Name: "ingest-single", P: p, N: count,
		Seconds: singleT, UpdatesPerSec: ups(count, singleT)})
	emitBench(benchRecord{Exp: "e12", Name: "ingest-batch", P: p, N: count, Batch: batch,
		Seconds: batchT, UpdatesPerSec: ups(count, batchT), Speedup: singleT / batchT})

	// --- 2. per-update fsync vs group commit, durable acked ingestion ---
	aus := crashStream(*seedFlag+8, ackedCount)
	root, err := os.MkdirTemp("", "modbench-e12-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	durCfg := func(commit durable.CommitPolicy) durable.Config {
		return durable.Config{Shards: p, Workers: p, Dim: 2, Commit: commit}
	}
	syncEng, err := durable.Open(root+"/sync", durCfg(durable.CommitSyncEach))
	if err != nil {
		return err
	}
	syncT, err := applyAll(aus, syncEng.Apply)
	if err != nil {
		return err
	}
	if err := syncEng.Close(); err != nil {
		return err
	}
	grpEng, err := durable.Open(root+"/group", durCfg(durable.CommitGroup))
	if err != nil {
		return err
	}
	grpT, err := applyBatches(aus, grpEng.ApplyBatch)
	if err != nil {
		return err
	}
	if err := grpEng.Close(); err != nil {
		return err
	}
	emitBench(benchRecord{Exp: "e12", Name: "acked-sync-each", P: p, N: ackedCount,
		Seconds: syncT, UpdatesPerSec: ups(ackedCount, syncT)})
	emitBench(benchRecord{Exp: "e12", Name: "acked-group-batch", P: p, N: ackedCount,
		Batch: batch, Seconds: grpT, UpdatesPerSec: ups(ackedCount, grpT),
		Speedup: syncT / grpT})

	// --- 3. journal codec micro-benchmark: JSON vs binary ---
	// One full encode+decode cycle of the update stream per codec, the
	// work every journaled update pays once on the write path and once
	// at recovery. The binary codec (length-prefixed frames, varint
	// OIDs, raw IEEE-754 float bits, per-record CRC32C) replaces the
	// per-record json.Marshal/Unmarshal that profiled as the journal
	// bottleneck — and unlike JSON it round-trips ±Inf and denormals.
	cus := crashStream(*seedFlag+9, count)
	const codecReps = 5
	codecBench := func(encode func([]mod.Update) ([]byte, error), decode func([]byte) (int, error)) (float64, int, error) {
		var data []byte
		var err error
		start := time.Now()
		for r := 0; r < codecReps; r++ {
			if data, err = encode(cus); err != nil {
				return 0, 0, err
			}
			applied, derr := decode(data)
			if derr != nil {
				return 0, 0, derr
			}
			if applied != len(cus) {
				return 0, 0, fmt.Errorf("codec decode applied %d/%d", applied, len(cus))
			}
		}
		return time.Since(start).Seconds() / codecReps, len(data), nil
	}
	jsonCodecT, jsonBytes, err := codecBench(
		func(us []mod.Update) ([]byte, error) {
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			for _, u := range us {
				if err := enc.Encode(u); err != nil {
					return nil, err
				}
			}
			return buf.Bytes(), nil
		},
		func(data []byte) (int, error) {
			st, err := mod.ReplayTolerant(mod.NewDB(2, 0), bytes.NewReader(data))
			return st.Applied, err
		})
	if err != nil {
		return err
	}
	binCodecT, binBytes, err := codecBench(
		func(us []mod.Update) ([]byte, error) {
			buf := mod.BinaryJournalHeader()
			for _, u := range us {
				buf = mod.AppendUpdateRecord(buf, u)
			}
			return buf, nil
		},
		func(data []byte) (int, error) {
			st, err := mod.ReplayTolerantBinary(mod.NewDB(2, 0), bytes.NewReader(data))
			return st.Applied, err
		})
	if err != nil {
		return err
	}
	emitBench(benchRecord{Exp: "e12", Name: "codec-json", N: count, Bytes: jsonBytes,
		Seconds: jsonCodecT, UpdatesPerSec: ups(count, jsonCodecT)})
	emitBench(benchRecord{Exp: "e12", Name: "codec-binary", N: count, Bytes: binBytes,
		Seconds: binCodecT, UpdatesPerSec: ups(count, binCodecT),
		Speedup: jsonCodecT / binCodecT})

	// --- 4. sweep hot-path allocations ---
	const horizon = 1 << 14
	const movers = 64
	mkSweeper := func() (*core.Sweeper, error) {
		s := core.NewSweeper(core.Config{Start: 0, Horizon: horizon})
		for i := 0; i < movers; i++ {
			if err := s.AddCurve(uint64(i+1), benchZigzag(i, movers, 0, horizon)); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	s, err := mkSweeper()
	if err != nil {
		return err
	}
	if err := s.AdvanceTo(64); err != nil { // warm caches past the growth phase
		return err
	}
	now := s.Now()
	var advErr error
	const advRuns = 2000
	advStart := time.Now()
	advAllocs := testing.AllocsPerRun(advRuns, func() {
		now += 0.25
		if err := s.AdvanceTo(now); err != nil && advErr == nil {
			advErr = err
		}
	})
	advPerOp := time.Since(advStart).Seconds() / (advRuns + 1)
	if advErr != nil {
		return advErr
	}

	s2, err := mkSweeper()
	if err != nil {
		return err
	}
	if err := s2.AdvanceTo(64); err != nil {
		return err
	}
	curve := benchZigzag(0, movers, 0, horizon)
	var repErr error
	repAllocs := testing.AllocsPerRun(advRuns, func() {
		if err := s2.ReplaceCurve(1, curve); err != nil && repErr == nil {
			repErr = err
		}
	})
	if repErr != nil {
		return repErr
	}
	emitBench(benchRecord{Exp: "e12", Name: "allocs-advance-to", N: movers,
		Seconds: advPerOp, AllocsPerOp: &advAllocs})
	emitBench(benchRecord{Exp: "e12", Name: "allocs-replace-curve", N: movers,
		AllocsPerOp: &repAllocs})

	table("path\tmode\ttime s\tupdates/s\tspeedup", [][]string{
		{"ingest (volatile)", "single Apply", fmt.Sprintf("%.3g", singleT),
			fmt.Sprintf("%.0f", ups(count, singleT)), "1.00x"},
		{"ingest (volatile)", fmt.Sprintf("ApplyBatch(%d)", batch), fmt.Sprintf("%.3g", batchT),
			fmt.Sprintf("%.0f", ups(count, batchT)), fmt.Sprintf("%.2fx", singleT/batchT)},
		{"acked (durable)", "fsync per update", fmt.Sprintf("%.3g", syncT),
			fmt.Sprintf("%.0f", ups(ackedCount, syncT)), "1.00x"},
		{"acked (durable)", fmt.Sprintf("group commit, batch %d", batch), fmt.Sprintf("%.3g", grpT),
			fmt.Sprintf("%.0f", ups(ackedCount, grpT)), fmt.Sprintf("%.2fx", syncT/grpT)},
		{"journal codec", "JSON encode+decode", fmt.Sprintf("%.3g", jsonCodecT),
			fmt.Sprintf("%.0f", ups(count, jsonCodecT)), "1.00x"},
		{"journal codec", "binary encode+decode", fmt.Sprintf("%.3g", binCodecT),
			fmt.Sprintf("%.0f", ups(count, binCodecT)), fmt.Sprintf("%.2fx", jsonCodecT/binCodecT)},
	})
	fmt.Printf("codec size: JSON %d bytes, binary %d bytes (%.2fx smaller)\n",
		jsonBytes, binBytes, float64(jsonBytes)/float64(binBytes))
	fmt.Printf("sweep hot path: AdvanceTo %.3g allocs/op (%.3g µs/op), ReplaceCurve %.3g allocs/op\n",
		advAllocs, advPerOp*1e6, repAllocs)
	return nil
}
