package main

// e13 — subscription scaling (internal/sub): per-update acked latency
// as the number of concurrent subscriptions grows. A fixed set of 200
// "hot" subscriptions watches the region the update storm touches; the
// scaling axis adds S cold within-subscriptions far outside it. The
// interest index routes each update only to the subscriptions whose
// support it can change, so the acked latency (Apply + registry Sync —
// every affected subscription's delta emitted) must stay flat as S
// grows: the acceptance figure is 100k-subscription latency within 2x
// of the 1k figure. The committed baseline is
// bench/subscription_scaling.json; CI gates -quick runs against it.

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sub"
)

func e13() error {
	fmt.Println("== E13: subscription scaling (internal/sub interest routing) ==")
	colds := []int{1000, 100000}
	updates := 1500
	if *quickFlag {
		colds = []int{1000, 10000}
		updates = 400
	}
	const (
		hotSubs  = 200
		nObjects = 256
		horizon  = 500.0
		coldRing = 5000.0 // far outside every reachable motion segment
	)
	names := []string{"acked-base", "acked-scale"}

	var rows [][]string
	var ups []float64
	for ci, cold := range colds {
		rng := rand.New(rand.NewSource(*seedFlag + 13))
		vec := func(s float64) geom.Vec {
			return geom.Of(s*(rng.Float64()-0.5), s*(rng.Float64()-0.5))
		}
		eng, err := shard.New(shard.Config{Shards: 4, Workers: 4, Dim: 2, Tau0: -1})
		if err != nil {
			return err
		}
		tau := 0.0
		for i := 1; i <= nObjects; i++ {
			tau += 1e-3
			if err := eng.Apply(mod.New(mod.OID(i), tau, vec(4), vec(40))); err != nil {
				return err
			}
		}
		reg := sub.NewRegistry(eng, sub.Config{})

		// Hot subscriptions: centers inside the storm region, drained
		// after every acked update like a live fan-out tier would.
		hot := make([]*sub.Stream, 0, hotSubs)
		for i := 0; i < hotSubs; i++ {
			var q sub.Query
			if i%2 == 0 {
				q = sub.Query{Kind: sub.KNN, K: 1 + rng.Intn(4), Point: vec(40), Hi: horizon}
			} else {
				q = sub.Query{Kind: sub.Within, Radius: 5 + 10*rng.Float64(), Point: vec(40), Hi: horizon}
			}
			st, err := reg.Subscribe(q)
			if err != nil {
				return err
			}
			hot = append(hot, st)
		}
		// Cold subscriptions: a ring of small within-regions no hot
		// trajectory can reach before the horizon. Distinct centers, so
		// none shares a materialization with another.
		start := time.Now()
		for i := 0; i < cold; i++ {
			a := 2 * math.Pi * float64(i) / float64(cold)
			c := geom.Of(coldRing*math.Cos(a), coldRing*math.Sin(a))
			if _, err := reg.Subscribe(sub.Query{Kind: sub.Within, Radius: 1, Point: c, Hi: horizon}); err != nil {
				return err
			}
		}
		subscribeS := time.Since(start).Seconds()

		// The storm stays inside the hot region: chdir only, against
		// objects seeded there, over a short wall of virtual time.
		lat := obs.NewRegistry().NewHistogram("bench_acked_seconds", "", obs.DefLatencyBuckets)
		drain := func() {
			for _, st := range hot {
				for {
					if _, ok := st.Pop(); !ok {
						break
					}
				}
			}
		}
		start = time.Now()
		for i := 0; i < updates; i++ {
			tau += 1e-3
			u := mod.ChDir(mod.OID(rng.Intn(nObjects)+1), tau, vec(4))
			t0 := time.Now()
			if err := eng.Apply(u); err != nil {
				return err
			}
			reg.Sync()
			lat.Observe(time.Since(t0).Seconds())
			drain()
		}
		ackedS := time.Since(start).Seconds()
		reg.Close()

		perSec := float64(updates) / ackedS
		ups = append(ups, perSec)
		speedup := 0.0
		if ci > 0 {
			speedup = perSec / ups[0]
		}
		latSum := lat.Summary()
		emitBench(benchRecord{Exp: "e13", Name: names[ci], P: 4,
			N: hotSubs + cold, Seconds: ackedS, UpdatesPerSec: perSec,
			Speedup: speedup, Latency: &latSum})
		rows = append(rows, []string{
			fmt.Sprint(hotSubs + cold),
			fmt.Sprintf("%.3g", subscribeS),
			fmt.Sprintf("%.1f", latSum.P50*1e6),
			fmt.Sprintf("%.1f", latSum.P99*1e6),
			fmt.Sprintf("%.0f", perSec),
		})
	}
	table("subs\tsubscribe s\tacked p50 µs\tacked p99 µs\tacked updates/s", rows)
	ratio := ups[0] / ups[1]
	fmt.Printf("acked latency at %d subs = %.2fx the %d-sub figure (acceptance: within 2x)\n",
		hotSubs+colds[1], ratio, hotSubs+colds[0])
	return nil
}
