package main

// e14 — alibi query throughput (internal/bead): the exact closed-form
// decision procedure against the sampled-approximation baseline (the
// certified branch-and-bound oracle from the differential harness).
// The exact kernel enumerates candidate times from tangency/pinch
// polynomials — a few hundred float ops per bead-pair window — while
// the baseline discretizes time and subdivides space until it can
// certify an answer, so the headline figure is queries/sec on the SAME
// randomized query set, plus how often the baseline had to give up
// (unresolved) where the exact procedure always answers. The committed
// baseline is bench/alibi_throughput.json; CI gates -quick runs
// against it.

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bead"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/shard"
)

func e14() error {
	fmt.Println("== E14: alibi throughput (exact bead kernel vs certified-oracle baseline) ==")
	nQueries := 400
	if *quickFlag {
		nQueries = 100
	}
	const (
		nObjects    = 64
		nUpdates    = 400
		defaultVmax = 1.5
		window      = 30.0
	)
	rng := rand.New(rand.NewSource(*seedFlag + 14))
	vec := func(s float64) geom.Vec {
		return geom.Of(s*(rng.Float64()-0.5), s*(rng.Float64()-0.5))
	}

	// Fleet: slow recorded motion in a compact arena with a mix of
	// declared bounds (some below the recorded speed, some generous) so
	// bead intersections are contested, not trivially decided.
	db := mod.NewDB(2, -1)
	tau := 0.5
	for i := 1; i <= nObjects; i++ {
		if err := db.Apply(mod.New(mod.OID(i), tau, vec(20), vec(2))); err != nil {
			return err
		}
		tau += 0.01
	}
	for i := 0; i < nUpdates; i++ {
		o := mod.OID(rng.Intn(nObjects) + 1)
		var err error
		if rng.Float64() < 0.3 {
			err = db.Apply(mod.Bound(o, tau, 0.3+2.5*rng.Float64()))
		} else {
			err = db.Apply(mod.ChDir(o, tau, vec(2)))
		}
		if err != nil {
			return err
		}
		tau += window / nUpdates
	}

	type alibiQ struct {
		o1, o2 mod.OID
		lo, hi float64
	}
	qs := make([]alibiQ, nQueries)
	for i := range qs {
		o1 := mod.OID(rng.Intn(nObjects) + 1)
		o2 := mod.OID(rng.Intn(nObjects) + 1)
		for o2 == o1 {
			o2 = mod.OID(rng.Intn(nObjects) + 1)
		}
		lo := window * rng.Float64() * 0.6
		qs[i] = alibiQ{o1: o1, o2: o2, lo: lo, hi: lo + 2 + 10*rng.Float64()}
	}

	var rows [][]string
	possible := 0
	for _, p := range []int{1, 4} {
		eng, err := shard.FromDB(db.Snapshot(), shard.Config{Shards: p, Workers: p})
		if err != nil {
			return err
		}
		possible = 0
		start := time.Now()
		for _, q := range qs {
			res, _, err := eng.Alibi(q.o1, q.o2, q.lo, q.hi, defaultVmax)
			if err != nil {
				return err
			}
			if res.Possible {
				possible++
			}
		}
		exactS := time.Since(start).Seconds()
		perSec := float64(nQueries) / exactS
		emitBench(benchRecord{Exp: "e14", Name: "alibi-exact", P: p,
			N: nQueries, Seconds: exactS, UpdatesPerSec: perSec})
		rows = append(rows, []string{fmt.Sprintf("exact P=%d", p),
			fmt.Sprintf("%.4g", exactS), fmt.Sprintf("%.0f", perSec),
			fmt.Sprintf("%d/%d", possible, nQueries), "-"})
	}

	// Baseline: the certified oracle on the same query set, tracks
	// built from the same snapshot. It refuses to guess: budget
	// exhaustion is reported as unresolved, which is the cost of
	// certifying by sampling what the kernel decides in closed form.
	orc := bead.NewOracle()
	snap := db.Snapshot()
	agree, unresolved := 0, 0
	start := time.Now()
	for _, q := range qs {
		t1, err := query.TrackOf(snap, q.o1, defaultVmax)
		if err != nil {
			return err
		}
		t2, err := query.TrackOf(snap, q.o2, defaultVmax)
		if err != nil {
			return err
		}
		switch orc.Alibi(t1, t2, q.lo, q.hi) {
		case bead.Possible, bead.Impossible:
			agree++
		default:
			unresolved++
		}
	}
	orcS := time.Since(start).Seconds()
	orcPerSec := float64(nQueries) / orcS
	emitBench(benchRecord{Exp: "e14", Name: "alibi-oracle", P: 1,
		N: nQueries, Seconds: orcS, UpdatesPerSec: orcPerSec})
	rows = append(rows, []string{"oracle P=1",
		fmt.Sprintf("%.4g", orcS), fmt.Sprintf("%.0f", orcPerSec),
		fmt.Sprintf("%d resolved", agree), fmt.Sprint(unresolved)})

	table("decider\tseconds\tqueries/s\tanswered\tunresolved", rows)
	fmt.Printf("exact procedure answers all %d queries; the sampling baseline left %d unresolved\n",
		nQueries, unresolved)
	return nil
}
