package main

// e15 — uncertainty broad phase (internal/query.BeadIndex): the
// space-time box R-tree + gen-stamped track cache against the scan path
// that evaluates the bead kernel for every chain. The workload is a
// large, spatially spread fleet (10k objects over a ~1000-wide arena;
// 2k under -quick) asked small-radius possibly-within queries, so the
// broad phase can discard almost the whole population by box
// intersection where the scan must touch every object. Every answer is
// compared bit-for-bit between the two paths — the speedup must be free
// of semantic drift — and the full-size run enforces the >= 5x
// acceptance floor on possibly-within throughput. Alibi pairs measure
// the track cache alone (two objects per query; no fan-out to prune).
// The committed baseline is bench/bead_index.json; CI gates -quick runs
// against it.

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/shard"
)

func e15() error {
	fmt.Println("== E15: uncertainty broad phase (bead index + track cache vs full scan) ==")
	nObjects, nQueries, nAlibi := 10000, 200, 1000
	if *quickFlag {
		nObjects, nQueries, nAlibi = 2000, 60, 300
	}
	const (
		arena       = 1000.0 // coordinate spread; queries probe radius ~5
		defaultVmax = 1.5
		horizon     = 30.0
	)
	rng := rand.New(rand.NewSource(*seedFlag + 15))
	vec := func(s float64) geom.Vec {
		return geom.Of(s*(rng.Float64()-0.5), s*(rng.Float64()-0.5))
	}

	// Fleet: creations spread over the first few time units, one declared
	// bound per object, then two direction changes apiece across the
	// horizon. Everything stays live, so each track ends in a cap the
	// broad phase must handle on its closed-form side path.
	db := mod.NewDB(2, -1)
	tau := 0.5
	step := 4.0 / float64(nObjects)
	for i := 1; i <= nObjects; i++ {
		if err := db.Apply(mod.New(mod.OID(i), tau, vec(2), vec(arena))); err != nil {
			return err
		}
		tau += step
		if err := db.Apply(mod.Bound(mod.OID(i), tau, 0.5+2*rng.Float64())); err != nil {
			return err
		}
		tau += step
	}
	step = (horizon - tau) / float64(2*nObjects+1)
	for round := 0; round < 2; round++ {
		for i := 1; i <= nObjects; i++ {
			if err := db.Apply(mod.ChDir(mod.OID(i), tau, vec(2))); err != nil {
				return err
			}
			tau += step
		}
	}

	type pwQ struct {
		q      geom.Vec
		lo, hi float64
	}
	pws := make([]pwQ, nQueries)
	for i := range pws {
		lo := 5 + 20*rng.Float64()
		pws[i] = pwQ{q: vec(0.9 * arena), lo: lo, hi: lo + 3}
	}
	type alibiQ struct {
		o1, o2 mod.OID
		lo, hi float64
	}
	als := make([]alibiQ, nAlibi)
	for i := range als {
		o1 := mod.OID(rng.Intn(nObjects) + 1)
		o2 := mod.OID(rng.Intn(nObjects) + 1)
		for o2 == o1 {
			o2 = mod.OID(rng.Intn(nObjects) + 1)
		}
		lo := 5 + 20*rng.Float64()
		als[i] = alibiQ{o1: o1, o2: o2, lo: lo, hi: lo + 2 + 8*rng.Float64()}
	}

	var rows [][]string
	speedupAt := map[int]float64{}
	for _, p := range []int{1, 4} {
		// Two engines over copies of the same state: the scan control and
		// the broad phase under test. Answers must be bit-identical.
		runPW := func(broad bool) (float64, []string, error) {
			eng, err := shard.FromDB(db.Snapshot(), shard.Config{Shards: p, Workers: p})
			if err != nil {
				return 0, nil, err
			}
			eng.SetBeadBroadPhase(broad)
			out := make([]string, len(pws))
			start := time.Now()
			for i, q := range pws {
				ans, _, qerr := eng.PossiblyWithin(q.q, 5, q.lo, q.hi, defaultVmax)
				if qerr != nil {
					return 0, nil, qerr
				}
				out[i] = ans.String()
			}
			return time.Since(start).Seconds(), out, nil
		}
		scanS, scanAns, err := runPW(false)
		if err != nil {
			return err
		}
		ixS, ixAns, err := runPW(true)
		if err != nil {
			return err
		}
		for i := range pws {
			if scanAns[i] != ixAns[i] {
				return fmt.Errorf("e15: P=%d query %d: broad phase diverges from scan:\nscan  %s\nindex %s",
					p, i, scanAns[i], ixAns[i])
			}
		}
		scanQPS := float64(nQueries) / scanS
		ixQPS := float64(nQueries) / ixS
		speedup := scanS / ixS
		speedupAt[p] = speedup
		emitBench(benchRecord{Exp: "e15", Name: "pw-scan", P: p,
			N: nObjects, Seconds: scanS, UpdatesPerSec: scanQPS})
		emitBench(benchRecord{Exp: "e15", Name: "pw-index", P: p,
			N: nObjects, Seconds: ixS, UpdatesPerSec: ixQPS, Speedup: speedup})
		rows = append(rows, []string{fmt.Sprintf("possibly-within P=%d", p),
			fmt.Sprintf("%.0f", scanQPS), fmt.Sprintf("%.0f", ixQPS),
			fmt.Sprintf("%.1fx", speedup), "bit-identical"})
	}

	for _, p := range []int{1, 4} {
		runAlibi := func(broad bool) (float64, []string, error) {
			eng, err := shard.FromDB(db.Snapshot(), shard.Config{Shards: p, Workers: p})
			if err != nil {
				return 0, nil, err
			}
			eng.SetBeadBroadPhase(broad)
			// Warm outside the timer: the one-time index construction is
			// already charged to the pw-index records above; this loop
			// measures steady-state per-query cost, where the cache trades
			// two track rebuilds for two map lookups. A possibly-within
			// touches every shard, so all per-shard indexes build here.
			if _, _, err := eng.PossiblyWithin(geom.Of(0, 0), 1, 5, 6, defaultVmax); err != nil {
				return 0, nil, err
			}
			out := make([]string, len(als))
			start := time.Now()
			for i, q := range als {
				res, _, qerr := eng.Alibi(q.o1, q.o2, q.lo, q.hi, defaultVmax)
				if qerr != nil {
					return 0, nil, qerr
				}
				if res.Possible {
					out[i] = fmt.Sprintf("possible@%x", math.Float64bits(res.At))
				} else {
					out[i] = "impossible"
				}
			}
			return time.Since(start).Seconds(), out, nil
		}
		scanS, scanAns, err := runAlibi(false)
		if err != nil {
			return err
		}
		ixS, ixAns, err := runAlibi(true)
		if err != nil {
			return err
		}
		for i := range als {
			if scanAns[i] != ixAns[i] {
				return fmt.Errorf("e15: P=%d alibi %d (%v): index says %s, scan says %s",
					p, i, als[i], ixAns[i], scanAns[i])
			}
		}
		emitBench(benchRecord{Exp: "e15", Name: "alibi-scan", P: p,
			N: nAlibi, Seconds: scanS, UpdatesPerSec: float64(nAlibi) / scanS})
		emitBench(benchRecord{Exp: "e15", Name: "alibi-index", P: p,
			N: nAlibi, Seconds: ixS, UpdatesPerSec: float64(nAlibi) / ixS,
			Speedup: scanS / ixS})
		rows = append(rows, []string{fmt.Sprintf("alibi P=%d", p),
			fmt.Sprintf("%.0f", float64(nAlibi)/scanS), fmt.Sprintf("%.0f", float64(nAlibi)/ixS),
			fmt.Sprintf("%.1fx", scanS/ixS), "bit-identical"})
	}

	table("query\tscan q/s\tindex q/s\tspeedup\tanswers", rows)
	if !*quickFlag {
		for _, p := range []int{1, 4} {
			if speedupAt[p] < 5 {
				return fmt.Errorf("e15: possibly-within broad-phase speedup at P=%d is %.2fx, acceptance floor is 5x",
					p, speedupAt[p])
			}
		}
		fmt.Printf("possibly-within broad phase >= 5x over the scan at %d objects, answers bit-identical\n", nObjects)
	}
	return nil
}
