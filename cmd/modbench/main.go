// Command modbench runs the reproduction experiments E1–E7 (see
// DESIGN.md's per-experiment index) and prints the tables recorded in
// EXPERIMENTS.md: complexity-shape measurements for Theorems 4, 5 and 10,
// Corollary 6 and Lemma 9, the Proposition 1 baseline comparison, and the
// Song–Roussopoulos accuracy comparison of Section 5.
//
// Usage:
//
//	modbench [-exp all|e1,e3,e10] [-quick] [-seed N] [-json out.json]
//	modbench -drive http://HOST:PORT [-acked acked.jsonl]      (crash smoke)
//	modbench -crashcheck http://HOST:PORT [-acked acked.jsonl]
//
// Experiments that measure machine-scaling (e10, the internal/shard
// fan-out), durability cost (e11, internal/durable), update-path
// throughput (e12, batched ingestion + group commit + the zero-alloc
// sweep hot path), subscription scaling (e13, internal/sub interest
// routing under a growing subscriber population), the alibi deciders
// (e14) or the uncertainty broad phase (e15, internal/query.BeadIndex
// vs the full bead scan, answers compared bit-for-bit) additionally emit
// one `BENCH {...}` JSON line per measurement on stdout; -json collects
// all BENCH records into a file (the artifact CI uploads and
// EXPERIMENTS.md records). The -drive/-crashcheck modes are the two
// halves of the kill -9 crash-recovery smoke test (see crash.go).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/eventq"
	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

var (
	expFlag     = flag.String("exp", "all", "comma-separated experiments (e1..e10) or 'all'")
	quickFlag   = flag.Bool("quick", false, "smaller sizes for a fast smoke run")
	seedFlag    = flag.Int64("seed", 1, "workload seed")
	jsonFlag    = flag.String("json", "", "write all BENCH records as a JSON document to this file")
	compareFlag = flag.String("compare", "", "baseline -json document to regression-check this run against")
)

// benchRecord is one machine-readable measurement (a BENCH line).
type benchRecord struct {
	Exp           string  `json:"exp"`
	Name          string  `json:"name"`
	P             int     `json:"p,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	N             int     `json:"n"`
	K             int     `json:"k,omitempty"`
	Seconds       float64 `json:"seconds"`
	Events        int     `json:"events,omitempty"`
	Bytes         int     `json:"bytes,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"`
	UpdatesPerSec float64 `json:"updates_per_sec,omitempty"`
	Batch         int     `json:"batch,omitempty"`
	// AllocsPerOp is a pointer so a measured zero (the e12 hot-path
	// acceptance value) still serializes instead of vanishing under
	// omitempty.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Latency digests all repetitions of the measured operation through
	// the same fixed-bucket histogram the live server exposes on
	// /metrics (internal/obs), so bench JSON and production metrics
	// report comparable percentiles.
	Latency *obs.Summary `json:"latency,omitempty"`
}

var benchRecords []benchRecord

// emitBench prints one BENCH line and retains the record for -json.
func emitBench(r benchRecord) {
	data, err := json.Marshal(r)
	if err != nil {
		log.Fatalf("bench record: %v", err)
	}
	fmt.Printf("BENCH %s\n", data)
	benchRecords = append(benchRecords, r)
}

func writeBenchJSON(path string) error {
	doc := struct {
		Seed    int64         `json:"seed"`
		Quick   bool          `json:"quick"`
		Records []benchRecord `json:"records"`
	}{Seed: *seedFlag, Quick: *quickFlag, Records: benchRecords}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("modbench: ")
	flag.Parse()
	if *driveFlag != "" || *checkFlag != "" {
		crashMain()
		return
	}
	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e10", "e11", "e12", "e13", "e14", "e15"} {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}
	run := func(name string, fn func() error) {
		if !want[name] {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}
	run("e1", e1)
	run("e2", e2)
	run("e3", e3)
	run("e4", e4)
	run("e5", e5)
	run("e6", e6)
	run("e7", e7)
	run("e10", e10)
	run("e11", e11)
	run("e12", e12)
	run("e13", e13)
	run("e14", e14)
	run("e15", e15)
	if *jsonFlag != "" {
		if err := writeBenchJSON(*jsonFlag); err != nil {
			log.Fatalf("write %s: %v", *jsonFlag, err)
		}
	}
	if *compareFlag != "" {
		if err := compareBaseline(*compareFlag, want); err != nil {
			log.Fatalf("bench regression:\n%v", err)
		}
	}
}

// sizes returns the N sweep, reduced under -quick.
func sizes(full []int) []int {
	if !*quickFlag {
		return full
	}
	out := full[:0:0]
	for _, n := range full {
		if n <= full[0]*4 {
			out = append(out, n)
		}
	}
	return out
}

func table(header string, rows [][]string) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	_, _ = fmt.Fprintln(w, header)
	for _, r := range rows {
		_, _ = fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	_ = w.Flush()
}

func movers(n int) (*mod.DB, error) {
	return workload.ConvergingMovers(workload.Config{Seed: *seedFlag, N: n})
}

func queryDist() (gdist.GDistance, error) {
	q := workload.QueryTrajectory(workload.Config{}, *seedFlag+1)
	return gdist.EuclideanSq{Query: q}, nil
}

// e1 — Theorem 4: past 1-NN in O((m+N) log N). The normalized column
// T/((m+N) log2 N) should be roughly constant across N.
func e1() error {
	fmt.Println("== E1: past query cost, Theorem 4: O((m+N) log N) ==")
	ns := sizes([]int{1000, 2000, 4000, 8000, 16000})
	f, err := queryDist()
	if err != nil {
		return err
	}
	var rows [][]string
	var xs, norm []float64
	for _, n := range ns {
		db, err := movers(n)
		if err != nil {
			return err
		}
		knn := query.NewKNN(1)
		start := time.Now()
		st, err := query.RunPast(db, f, 0, 50, knn)
		if err != nil {
			return err
		}
		el := time.Since(start)
		m := st.Events
		c := el.Seconds() / (float64(m+n) * math.Log2(float64(n)))
		xs = append(xs, float64(n))
		norm = append(norm, c*1e9)
		rows = append(rows, []string{
			fmt.Sprint(n), fmt.Sprint(m), fmt.Sprintf("%.3g", el.Seconds()),
			fmt.Sprintf("%.1f", c*1e9),
		})
	}
	table("N\tm (events)\ttotal s\tns per (m+N)logN", rows)
	spread := stats.Percentile(norm, 100) / math.Max(stats.Percentile(norm, 0), 1e-12)
	fmt.Printf("normalized-cost spread max/min = %.2f (flat ⇒ matches O((m+N) log N))\n", spread)
	_ = xs
	return nil
}

// e2 — Theorem 5(1): initialization in O(N log N).
func e2() error {
	fmt.Println("== E2: future-query initialization, Theorem 5(1): O(N log N) ==")
	ns := sizes([]int{1000, 2000, 4000, 8000, 16000, 32000})
	f, err := queryDist()
	if err != nil {
		return err
	}
	var rows [][]string
	var xs, ys []float64
	for _, n := range ns {
		db, err := movers(n)
		if err != nil {
			return err
		}
		trajs := db.Trajectories()
		reps := 3
		best := math.Inf(1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			e, err := query.NewEngine(query.EngineConfig{F: f, Lo: 0, Hi: 1e6})
			if err != nil {
				return err
			}
			if err := e.Seed(trajs); err != nil {
				return err
			}
			if el := time.Since(start).Seconds(); el < best {
				best = el
			}
		}
		xs = append(xs, float64(n))
		ys = append(ys, best)
		rows = append(rows, []string{fmt.Sprint(n), fmt.Sprintf("%.4g", best*1e3)})
	}
	table("N\tinit ms", rows)
	fits, err := stats.BestFit(xs, ys, stats.ModelN, stats.ModelNLogN, stats.ModelN2)
	if err != nil {
		return err
	}
	fmt.Printf("best fit: %s (then %s)\n", fits[0], fits[1])
	p, _ := stats.GrowthExponent(xs, ys)
	fmt.Printf("log-log growth exponent: %.2f (1 ⇒ N, 2 ⇒ N^2)\n", p)
	return nil
}

// e3 — Theorem 5(2) + Corollary 6: per-update maintenance. Two regimes:
// back-to-back updates (pure O(log N) update handling) and spaced updates
// (the O(m log N) event-processing term, reported with events/update).
func e3() error {
	fmt.Println("== E3: per-update maintenance, Theorem 5(2)/Corollary 6 ==")
	ns := sizes([]int{1000, 2000, 4000, 8000, 16000})
	f, err := queryDist()
	if err != nil {
		return err
	}
	const updates = 2000
	var rows [][]string
	var xs, dense []float64
	for _, n := range ns {
		db, err := movers(n)
		if err != nil {
			return err
		}
		measure := func(spacing float64) (perUpdate float64, events float64, err error) {
			to := 1 + float64(updates+1)*spacing
			us, err := workload.Stream(db, workload.StreamConfig{
				Seed: *seedFlag + 2, Count: updates, From: 1, To: to})
			if err != nil {
				return 0, 0, err
			}
			knn := query.NewKNN(1)
			sess, err := query.NewSession(db, f, 0, to+10, knn)
			if err != nil {
				return 0, 0, err
			}
			if err := sess.AdvanceTo(0.999); err != nil {
				return 0, 0, err
			}
			ev0 := sess.E.Sweeper().Stats().Events
			start := time.Now()
			for _, u := range us {
				if err := sess.Apply(u); err != nil {
					return 0, 0, err
				}
			}
			el := time.Since(start).Seconds()
			ev1 := sess.E.Sweeper().Stats().Events
			return el / updates, float64(ev1-ev0) / updates, nil
		}
		pud, _, err := measure(1e-6)
		if err != nil {
			return err
		}
		pur, evr, err := measure(0.01)
		if err != nil {
			return err
		}
		xs = append(xs, float64(n))
		dense = append(dense, pud)
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", pud*1e6),
			fmt.Sprintf("%.2f", pur*1e6),
			fmt.Sprintf("%.2f", evr),
		})
	}
	table("N\tdense µs/update\tspaced µs/update\tevents/update (spaced)", rows)
	fits, err := stats.BestFit(xs, dense, stats.ModelConst, stats.ModelLogN, stats.ModelN)
	if err != nil {
		return err
	}
	fmt.Printf("dense-regime best fit: %s (Corollary 6 predicts log N)\n", fits[0])
	return nil
}

// e4 — Theorem 10: chdir on the query trajectory in O(N).
func e4() error {
	fmt.Println("== E4: query-trajectory chdir, Theorem 10: O(N) ==")
	ns := sizes([]int{1000, 2000, 4000, 8000, 16000, 32000})
	var rows [][]string
	var xs, ys []float64
	for _, n := range ns {
		db, err := movers(n)
		if err != nil {
			return err
		}
		q := workload.QueryTrajectory(workload.Config{}, *seedFlag+1)
		knn := query.NewKNN(1)
		sess, err := query.NewSession(db, gdist.EuclideanSq{Query: q}, 0, 1e6, knn)
		if err != nil {
			return err
		}
		if err := sess.AdvanceTo(1); err != nil {
			return err
		}
		const reps = 5
		start := time.Now()
		for r := 0; r < reps; r++ {
			turned, err := q.ChDir(1, workload.QueryTrajectory(workload.Config{}, int64(r)).MustAt(1))
			if err != nil {
				return err
			}
			if err := sess.E.ReplaceGDistance(gdist.EuclideanSq{Query: turned}); err != nil {
				return err
			}
		}
		per := time.Since(start).Seconds() / reps
		xs = append(xs, float64(n))
		ys = append(ys, per)
		rows = append(rows, []string{fmt.Sprint(n), fmt.Sprintf("%.4g", per*1e3)})
	}
	table("N\tchdir-all ms", rows)
	fits, err := stats.BestFit(xs, ys, stats.ModelLogN, stats.ModelN, stats.ModelNLogN, stats.ModelN2)
	if err != nil {
		return err
	}
	fmt.Printf("best fit: %s (Theorem 10 predicts N)\n", fits[0])
	p, _ := stats.GrowthExponent(xs, ys)
	fmt.Printf("log-log growth exponent: %.2f\n", p)
	return nil
}

// e5 — Proposition 1 baseline: the sweep vs quantifier-elimination
// recomputation on the same past 1-NN query, with a correctness
// cross-check at probe instants.
func e5() error {
	fmt.Println("== E5: sweep vs QE baseline (Proposition 1), past 1-NN ==")
	ns := sizes([]int{32, 64, 128, 256, 512, 1024})
	q := workload.QueryTrajectory(workload.Config{}, *seedFlag+1)
	f := gdist.EuclideanSq{Query: q}
	var rows [][]string
	for _, n := range ns {
		db, err := movers(n)
		if err != nil {
			return err
		}
		knn := query.NewKNN(1)
		start := time.Now()
		if _, err := query.RunPast(db, f, 0, 50, knn); err != nil {
			return err
		}
		sweepT := time.Since(start).Seconds()
		start = time.Now()
		naive, err := baseline.AllPairsKNN(db, q, 1, 0, 50)
		if err != nil {
			return err
		}
		naiveT := time.Since(start).Seconds()
		// Correctness cross-check at off-event probes.
		mismatches := 0
		for p := 0; p < 200; p++ {
			tt := 50 * (float64(p) + 0.5) / 200
			want := knn.Answer().At(tt)
			var got []mod.OID
			for o, ss := range naive {
				if ss.Contains(tt) {
					got = append(got, o)
				}
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if fmt.Sprint(want) != fmt.Sprint(got) {
				mismatches++
			}
		}
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.3g", sweepT*1e3),
			fmt.Sprintf("%.3g", naiveT*1e3),
			fmt.Sprintf("%.1fx", naiveT/sweepT),
			fmt.Sprint(mismatches),
		})
	}
	table("N\tsweep ms\tQE-naive ms\tspeedup\tanswer mismatches", rows)
	return nil
}

// e6 — Lemma 9: event-queue discipline. Queue length stays <= N, and the
// two queue structures (indexed heap, the paper's leftist tree) are
// interchangeable.
func e6() error {
	fmt.Println("== E6: event-queue discipline, Lemma 9 ==")
	ns := sizes([]int{1000, 2000, 4000, 8000})
	f, err := queryDist()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, n := range ns {
		db, err := movers(n)
		if err != nil {
			return err
		}
		runWith := func(mk func() eventq.Queue) (float64, int, error) {
			e, err := query.NewEngine(query.EngineConfig{F: f, Lo: 0, Hi: 50, Queue: mk()})
			if err != nil {
				return 0, 0, err
			}
			if err := e.AddEvaluator(query.NewKNN(1)); err != nil {
				return 0, 0, err
			}
			start := time.Now()
			if err := e.Seed(db.Trajectories()); err != nil {
				return 0, 0, err
			}
			if err := e.Finish(); err != nil {
				return 0, 0, err
			}
			return time.Since(start).Seconds(), e.Sweeper().Stats().MaxQueueLen, nil
		}
		heapT, heapQ, err := runWith(func() eventq.Queue { return eventq.NewHeap() })
		if err != nil {
			return err
		}
		leftT, _, err := runWith(func() eventq.Queue { return eventq.NewLeftist() })
		if err != nil {
			return err
		}
		bound := "OK"
		if heapQ > n {
			bound = fmt.Sprintf("VIOLATED (%d > %d)", heapQ, n)
		}
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.3g", heapT*1e3),
			fmt.Sprintf("%.3g", leftT*1e3),
			fmt.Sprint(heapQ),
			bound,
		})
	}
	table("N\theap ms\tleftist ms\tmax queue len\tlen <= N", rows)
	return nil
}

// e7 — the Song–Roussopoulos comparison (Section 5 / Figure 2): sampled
// re-query misses order exchanges between samples; the sweep never does.
func e7() error {
	fmt.Println("== E7: SR01 sampled baseline vs sweep (Section 5, Figure 2) ==")
	n := 2000
	if *quickFlag {
		n = 500
	}
	db, err := workload.StationaryField(*seedFlag+3, n, 1000)
	if err != nil {
		return err
	}
	q := workload.QueryTrajectory(workload.Config{}, *seedFlag+4)
	const k, lo, hi = 3, 0.0, 100.0
	// Exact truth via the sweep.
	knn := query.NewKNN(k)
	start := time.Now()
	if _, err := query.RunPast(db, gdist.EuclideanSq{Query: q}, lo, hi, knn); err != nil {
		return err
	}
	sweepT := time.Since(start).Seconds()
	truth := func(tt float64) []mod.OID { return knn.Answer().At(tt) }
	// Change times: interval boundaries of the truth.
	var changes []float64
	for _, o := range knn.Answer().Objects() {
		for _, iv := range knn.Answer().Intervals(o) {
			changes = append(changes, iv.Lo, iv.Hi)
		}
	}
	sort.Float64s(changes)
	var rows [][]string
	for _, period := range []float64{20, 10, 5, 2, 1, 0.5, 0.1} {
		start := time.Now()
		sa, searches, err := baseline.SR01KNN(db, q, baseline.SR01Config{K: k, Period: period}, lo, hi)
		if err != nil {
			return err
		}
		el := time.Since(start).Seconds()
		c := baseline.Compare(truth, sa, changes, lo, hi, 2000)
		rows = append(rows, []string{
			fmt.Sprintf("%g", period),
			fmt.Sprint(searches),
			fmt.Sprintf("%.3g", el*1e3),
			fmt.Sprintf("%.1f%%", 100*c.WrongFraction()),
			fmt.Sprintf("%.1f%%", 100*c.MissedFraction()),
		})
	}
	table("period\tsearches\ttime ms\twrong answers\tmissed answer intervals", rows)
	fmt.Printf("sweep (exact; %d answer intervals): %.3g ms\n", len(changes)/2, sweepT*1e3)
	return nil
}

// e10 — shard scaling (internal/shard): hash-partition the population
// over P shards, replay a concurrent update stream through the router,
// then fan a past k-NN query out across the shards and merge. Because
// objects in different shards never have their curve crossings
// scheduled, total event work shrinks as P grows — so the speedup is
// visible even on a single core; extra cores only add to it.
func e10() error {
	fmt.Println("== E10: shard scaling (internal/shard fan-out), P ∈ {1,2,4,8} ==")
	n := 8000
	if *quickFlag {
		n = 2000
	}
	const k, lo, hi = 4, 0.0, 50.0
	f, err := queryDist()
	if err != nil {
		return err
	}
	base, err := movers(n)
	if err != nil {
		return err
	}
	us, err := workload.Stream(base, workload.StreamConfig{
		Seed: *seedFlag + 5, Count: n / 4, From: 1, To: 30})
	if err != nil {
		return err
	}
	reps := 3
	if *quickFlag {
		reps = 2
	}
	var rows [][]string
	var baseQ float64
	var baseAns string
	for _, p := range []int{1, 2, 4, 8} {
		// Ingest is a few milliseconds of wall clock, so a single-shot
		// timing is scheduler noise; take the best of reps like the query
		// side does. Each rep needs a fresh engine (FromDB adopts the DB
		// at P=1, and the replay mutates whichever DB backs the engine);
		// every rep replays the same stream, so any of the resulting
		// engines serves the query phase.
		var eng *shard.Engine
		ingest := math.Inf(1)
		for r := 0; r < reps; r++ {
			e, err := shard.FromDB(base.Snapshot(), shard.Config{Shards: p, Workers: p})
			if err != nil {
				return err
			}
			start := time.Now()
			if err := workload.ReplayConcurrent(us, p, e.ShardOf, e.Apply); err != nil {
				return err
			}
			if el := time.Since(start).Seconds(); el < ingest {
				ingest = el
			}
			eng = e
		}
		bestQ := math.Inf(1)
		var ans *query.AnswerSet
		var events int
		// Every repetition lands in the same fixed-bucket histogram the
		// live server serves on /metrics, so the BENCH record carries
		// p50/p90/p99 alongside the best time.
		lat := obs.NewRegistry().NewHistogram("bench_knn_seconds", "", obs.DefLatencyBuckets)
		for r := 0; r < reps; r++ {
			start := time.Now()
			a, st, _, err := eng.KNN(f, k, lo, hi)
			if err != nil {
				return err
			}
			el := time.Since(start).Seconds()
			lat.Observe(el)
			if el < bestQ {
				bestQ = el
			}
			ans, events = a, st.Events
		}
		if p == 1 {
			baseQ, baseAns = bestQ, ans.String()
		} else if s := ans.String(); s != baseAns {
			return fmt.Errorf("P=%d k-NN answer diverges from P=1", p)
		}
		speedup := baseQ / bestQ
		latSum := lat.Summary()
		emitBench(benchRecord{Exp: "e10", Name: "knn-fanout", P: p, Workers: p,
			N: n, K: k, Seconds: bestQ, Events: events, Speedup: speedup,
			Latency: &latSum})
		emitBench(benchRecord{Exp: "e10", Name: "ingest", P: p, N: n,
			Seconds: ingest, UpdatesPerSec: float64(len(us)) / ingest})
		rows = append(rows, []string{
			fmt.Sprint(p), fmt.Sprint(events), fmt.Sprintf("%.3g", bestQ),
			fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%.3g", ingest),
		})
	}
	table("P\tevents\tknn s\tspeedup vs P=1\tingest s", rows)
	fmt.Println("sharded answers verified identical to P=1 at every P")
	return nil
}
