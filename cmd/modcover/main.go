// Command modcover is the per-package coverage ratchet: it reads a Go
// coverprofile (go test -coverprofile), computes statement coverage per
// package, and gates it against the committed floor file
// (bench/coverage_floors.json) the same way the bench regression gate
// works — generous slack, so only genuine losses trip it, but a test
// deletion or a big untested subsystem cannot land silently.
//
// Usage:
//
//	go test -shuffle=on -coverprofile=cover.out ./...
//	go run ./cmd/modcover -profile cover.out -floors bench/coverage_floors.json
//
// Passing -write regenerates the floor file from the measured coverage
// minus the slack (use after intentionally adding packages or tests).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

var (
	profileFlag = flag.String("profile", "cover.out", "coverprofile to read")
	floorsFlag  = flag.String("floors", "bench/coverage_floors.json", "floor file to check (or write)")
	writeFlag   = flag.Bool("write", false, "write floors = measured - slack instead of checking")
)

// floorSlack is how many percentage points below the measured coverage
// a written floor sits: wide enough that shuffled runs and small
// refactors don't flap the gate, tight enough that losing a test file
// trips it.
const floorSlack = 2.0

type floorDoc struct {
	Slack  float64            `json:"slack"`
	Floors map[string]float64 `json:"floors"`
}

// pkgCov accumulates statement counts for one package.
type pkgCov struct {
	total, covered int
}

func (c pkgCov) percent() float64 {
	if c.total == 0 {
		return 100
	}
	return 100 * float64(c.covered) / float64(c.total)
}

// parseProfile reads a coverprofile into per-package statement counts.
// Lines look like "repro/internal/bead/kernel.go:12.2,14.3 2 1":
// file:range numStatements hitCount.
func parseProfile(p string) (map[string]pkgCov, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]pkgCov)
	sc := bufio.NewScanner(f)
	buf := make([]byte, 0, 1024*1024)
	sc.Buffer(buf, len(buf))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 3 fields, got %q", p, line, text)
		}
		file, _, ok := strings.Cut(fields[0], ":")
		if !ok {
			return nil, fmt.Errorf("%s:%d: no file:range in %q", p, line, fields[0])
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: statement count %q: %v", p, line, fields[1], err)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: hit count %q: %v", p, line, fields[2], err)
		}
		pkg := path.Dir(file)
		c := out[pkg]
		c.total += stmts
		if hits > 0 {
			c.covered += stmts
		}
		out[pkg] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("modcover: ")
	flag.Parse()

	cov, err := parseProfile(*profileFlag)
	if err != nil {
		log.Fatalf("parse profile: %v", err)
	}
	if len(cov) == 0 {
		log.Fatalf("profile %s has no coverage blocks", *profileFlag)
	}

	if *writeFlag {
		doc := floorDoc{Slack: floorSlack, Floors: make(map[string]float64, len(cov))}
		for pkg, c := range cov {
			doc.Floors[pkg] = math.Max(0, math.Floor((c.percent()-floorSlack)*10)/10)
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("encode floors: %v", err)
		}
		if err := os.WriteFile(*floorsFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("write floors: %v", err)
		}
		for _, pkg := range sortedKeys(cov) {
			fmt.Printf("  %-40s %6.1f%%  floor %5.1f%%\n", pkg, cov[pkg].percent(), doc.Floors[pkg])
		}
		fmt.Printf("wrote %d package floors to %s (slack %.1f points)\n", len(cov), *floorsFlag, floorSlack)
		return
	}

	data, err := os.ReadFile(*floorsFlag)
	if err != nil {
		log.Fatalf("floors: %v (run with -write to create)", err)
	}
	var doc floorDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		log.Fatalf("floors %s: %v", *floorsFlag, err)
	}

	failures := 0
	fmt.Printf("== coverage gate vs %s ==\n", *floorsFlag)
	for _, pkg := range sortedKeys(doc.Floors) {
		floor := doc.Floors[pkg]
		c, ok := cov[pkg]
		if !ok {
			fmt.Printf("  %-40s MISSING (floor %.1f%%) — package gone from the profile\n", pkg, floor)
			failures++
			continue
		}
		got := c.percent()
		status := "ok"
		if got < floor {
			status = "BELOW FLOOR"
			failures++
		}
		fmt.Printf("  %-40s %6.1f%%  floor %5.1f%%  %s\n", pkg, got, floor, status)
	}
	for _, pkg := range sortedKeys(cov) {
		if _, ok := doc.Floors[pkg]; !ok {
			fmt.Printf("  %-40s %6.1f%%  (new package, no floor — rerun with -write to ratchet it in)\n",
				pkg, cov[pkg].percent())
		}
	}
	if failures > 0 {
		log.Fatalf("%d package(s) under their coverage floor", failures)
	}
	fmt.Printf("all %d package floors hold\n", len(doc.Floors))
}
