// Command modlint runs the repo's static-analysis suite (internal/lint)
// over the module: floatcmp, lockcopy, goroutinecapture, errdrop,
// unlockpath, poolescape, atomicmix, waitforget and syncorder — the
// mechanical form of the numeric-comparison, lock-discipline and
// fsync-ordering invariants the engine depends on.
//
// Usage:
//
//	go run ./cmd/modlint ./...             # whole module
//	go run ./cmd/modlint ./internal/poly   # one subtree
//	go run ./cmd/modlint -json ./...       # machine-readable findings
//	go run ./cmd/modlint -stale ./...      # fail on stale suppressions
//
// Packages load and analyze in parallel, with per-package results
// cached on disk keyed by file-content hashes (-cache-dir to move the
// cache, -no-cache to disable, -jobs to bound parallelism).
//
// Exit status: 0 clean, 1 findings (or stale suppressions under
// -stale), 2 load/type errors. Suppress a finding with a
// `//modlint:allow <analyzer> -- reason` comment (line or block form)
// on the same line or the line above; every run audits suppressions
// and reports any that no longer match a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fprintf writes best-effort output: there is nothing actionable to do
// when stdout/stderr themselves fail.
func fprintf(w io.Writer, format string, a ...interface{}) {
	_, _ = fmt.Fprintf(w, format, a...)
}

// jsonReport is the -json output document. Field order and the sorted
// slices make the encoding byte-stable for a given tree: findings in
// SortFindings order, stale suppressions by file/line.
type jsonReport struct {
	Module   string         `json:"module"`
	Findings []jsonFinding  `json:"findings"`
	Stale    []jsonStale    `json:"stale_suppressions"`
	Stats    jsonStatsBlock `json:"stats"`
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonStale struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Rationale string   `json:"rationale,omitempty"`
}

type jsonStatsBlock struct {
	Packages    int `json:"packages"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("modlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings and the suppression audit as JSON on stdout")
	noCache := fs.Bool("no-cache", false, "disable the on-disk result cache")
	cacheDir := fs.String("cache-dir", "", "result cache directory (default: user cache dir)")
	jobs := fs.Int("jobs", 0, "max concurrent type-check/analyze workers (default: GOMAXPROCS)")
	failStale := fs.Bool("stale", false, "exit nonzero when stale modlint:allow suppressions exist")
	fs.Usage = func() {
		fprintf(stderr, "usage: modlint [-list] [-json] [-no-cache] [-cache-dir dir] [-jobs n] [-stale] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fprintf(stderr, "modlint: %v\n", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fprintf(stderr, "modlint: %v\n", err)
		return 2
	}
	keep, err := packageFilter(cwd, root, modPath, fs.Args())
	if err != nil {
		fprintf(stderr, "modlint: %v\n", err)
		return 2
	}

	res, err := lint.AnalyzeModule(root, modPath, lint.AnalyzeOptions{
		NoCache:  *noCache,
		CacheDir: *cacheDir,
		Jobs:     *jobs,
	})
	if err != nil {
		fprintf(stderr, "modlint: %v\n", err)
		return 2
	}

	status := 0
	matched := 0
	var findings []lint.Finding
	var stale []lint.Directive
	for _, pkg := range res.Pkgs {
		if len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				fprintf(stderr, "modlint: %s: type error: %v\n", pkg.ImportPath, e)
			}
			status = 2
			continue
		}
		if !keep(pkg.ImportPath) {
			continue
		}
		matched++
		kept, used := lint.ApplySuppressions(pkg.Raw, pkg.Directives)
		findings = append(findings, kept...)
		for i, u := range used {
			if !u {
				stale = append(stale, pkg.Directives[i])
			}
		}
	}
	if matched == 0 && status == 0 {
		// A typo'd pattern must not report a vacuous clean pass.
		fprintf(stderr, "modlint: no packages match %v\n", fs.Args())
		return 2
	}
	lint.SortFindings(findings)
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].Position.Filename != stale[j].Position.Filename {
			return stale[i].Position.Filename < stale[j].Position.Filename
		}
		return stale[i].Position.Line < stale[j].Position.Line
	})

	if *jsonOut {
		rep := jsonReport{
			Module:   modPath,
			Findings: []jsonFinding{},
			Stale:    []jsonStale{},
			Stats: jsonStatsBlock{
				Packages:    matched,
				CacheHits:   res.CacheHits,
				CacheMisses: res.CacheMisses,
			},
		}
		for _, f := range findings {
			rep.Findings = append(rep.Findings, jsonFinding{
				File: f.Position.Filename, Line: f.Position.Line, Col: f.Position.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		}
		for _, d := range stale {
			rep.Stale = append(rep.Stale, jsonStale{
				File: d.Position.Filename, Line: d.Position.Line,
				Analyzers: d.Analyzers, Rationale: d.Rationale,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		for _, f := range findings {
			fprintf(stdout, "%s:%d:%d: [%s] %s\n",
				f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
		}
	}

	for _, d := range stale {
		fprintf(stderr, "modlint: stale suppression %s:%d: modlint:allow %s matches no finding\n",
			d.Position.Filename, d.Position.Line, strings.Join(d.Analyzers, ","))
	}
	if len(findings) > 0 {
		fprintf(stderr, "modlint: %d finding(s)\n", len(findings))
		if status == 0 {
			status = 1
		}
	}
	if *failStale && len(stale) > 0 && status == 0 {
		fprintf(stderr, "modlint: %d stale suppression(s)\n", len(stale))
		status = 1
	}
	return status
}

// packageFilter turns CLI package patterns into an import-path predicate.
// Supported patterns: "./..." (everything), "dir/..." and plain package
// directories, resolved relative to the current directory.
func packageFilter(cwd, root, modPath string, patterns []string) (func(string) bool, error) {
	if len(patterns) == 0 {
		return func(string) bool { return true }, nil
	}
	var prefixes []string
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." && recursive && cwd == root {
			return func(string) bool { return true }, nil
		}
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside module %s", pat, modPath)
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		if recursive {
			prefixes = append(prefixes, ip+"/", ip)
		} else {
			prefixes = append(prefixes, ip)
		}
	}
	return func(importPath string) bool {
		// External test packages follow their primary package.
		importPath = strings.TrimSuffix(importPath, "_test")
		for i := 0; i < len(prefixes); i++ {
			p := prefixes[i]
			if importPath == p || (strings.HasSuffix(p, "/") && strings.HasPrefix(importPath, p)) {
				return true
			}
		}
		return false
	}, nil
}
