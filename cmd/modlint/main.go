// Command modlint runs the repo's static-analysis suite (internal/lint)
// over the module: floatcmp, lockcopy, goroutinecapture, errdrop — the
// mechanical form of the numeric-comparison and lock-discipline
// invariants the plane sweep depends on.
//
// Usage:
//
//	go run ./cmd/modlint ./...            # whole module
//	go run ./cmd/modlint ./internal/poly  # one subtree
//
// Exit status: 0 clean, 1 findings, 2 load/type errors. Suppress a
// finding with a `//modlint:allow <analyzer> -- reason` comment on the
// same line or the line above.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fprintf writes best-effort output: there is nothing actionable to do
// when stdout/stderr themselves fail.
func fprintf(w io.Writer, format string, a ...interface{}) {
	_, _ = fmt.Fprintf(w, format, a...)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("modlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fprintf(stderr, "usage: modlint [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fprintf(stderr, "modlint: %v\n", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fprintf(stderr, "modlint: %v\n", err)
		return 2
	}
	keep, err := packageFilter(cwd, root, modPath, fs.Args())
	if err != nil {
		fprintf(stderr, "modlint: %v\n", err)
		return 2
	}

	pkgs, err := lint.LoadModule(root, modPath)
	if err != nil {
		fprintf(stderr, "modlint: %v\n", err)
		return 2
	}
	status := 0
	findings := 0
	matched := 0
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				fprintf(stderr, "modlint: %s: type error: %v\n", pkg.ImportPath, e)
			}
			status = 2
			continue
		}
		if !keep(pkg.ImportPath) {
			continue
		}
		matched++
		for _, f := range lint.Run(pkg.Pass, lint.All()) {
			// Render positions relative to the module root for stable,
			// clickable output.
			pos := f.Position
			if rel, err := filepath.Rel(root, pos.Filename); err == nil {
				pos.Filename = rel
			}
			fprintf(stdout, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
			findings++
		}
	}
	if matched == 0 && status == 0 {
		// A typo'd pattern must not report a vacuous clean pass.
		fprintf(stderr, "modlint: no packages match %v\n", fs.Args())
		return 2
	}
	if findings > 0 {
		fprintf(stderr, "modlint: %d finding(s)\n", findings)
		if status == 0 {
			status = 1
		}
	}
	return status
}

// packageFilter turns CLI package patterns into an import-path predicate.
// Supported patterns: "./..." (everything), "dir/..." and plain package
// directories, resolved relative to the current directory.
func packageFilter(cwd, root, modPath string, patterns []string) (func(string) bool, error) {
	if len(patterns) == 0 {
		return func(string) bool { return true }, nil
	}
	var prefixes []string
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." && recursive && cwd == root {
			return func(string) bool { return true }, nil
		}
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside module %s", pat, modPath)
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		if recursive {
			prefixes = append(prefixes, ip+"/", ip)
		} else {
			prefixes = append(prefixes, ip)
		}
	}
	return func(importPath string) bool {
		// External test packages follow their primary package.
		importPath = strings.TrimSuffix(importPath, "_test")
		for i := 0; i < len(prefixes); i++ {
			p := prefixes[i]
			if importPath == p || (strings.HasSuffix(p, "/") && strings.HasPrefix(importPath, p)) {
				return true
			}
		}
		return false
	}, nil
}
