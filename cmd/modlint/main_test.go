package main

// Driver-level tests: the -json document must be byte-stable for a
// given tree (golden), the cache must be transparent (cached and
// uncached runs render identically), and the stale-suppression audit
// must gate the exit status only under -stale.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and chdirs into it.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	return dir
}

var fixtureModule = map[string]string{
	"go.mod": "module fixturemod\n\ngo 1.24\n",
	"lib/lib.go": `package lib

func Eq(a, b float64) bool {
	return a == b
}

func Stale(a, b int) bool {
	return a == b //modlint:allow floatcmp -- ints are never flagged: this directive is stale
}
`,
}

const goldenJSON = `{
  "module": "fixturemod",
  "findings": [
    {
      "file": "lib/lib.go",
      "line": 4,
      "col": 11,
      "analyzer": "floatcmp",
      "message": "exact float comparison a == b; use poly.ApproxEq (or annotate //modlint:allow floatcmp -- <why exact>)"
    }
  ],
  "stale_suppressions": [
    {
      "file": "lib/lib.go",
      "line": 8,
      "analyzers": [
        "floatcmp"
      ],
      "rationale": "ints are never flagged: this directive is stale"
    }
  ],
  "stats": {
    "packages": 1,
    "cache_hits": 0,
    "cache_misses": 1
  }
}
`

// TestJSONGolden pins the machine-readable output format: CI archives
// it as an artifact, so drift must be deliberate.
func TestJSONGolden(t *testing.T) {
	writeModule(t, fixtureModule)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-no-cache", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (one finding); stderr:\n%s", code, stderr.String())
	}
	if got := stdout.String(); got != goldenJSON {
		t.Errorf("-json output drifted from golden.\ngot:\n%s\nwant:\n%s", got, goldenJSON)
	}
}

// TestCacheTransparent proves a warm cache changes nothing but speed:
// cold, warm, and uncached renders are byte-identical, and the warm
// run is all hits.
func TestCacheTransparent(t *testing.T) {
	writeModule(t, fixtureModule)
	cacheDir := t.TempDir()
	render := func(args ...string) string {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 1 {
			t.Fatalf("run(%v) exit code = %d, want 1; stderr:\n%s", args, code, stderr.String())
		}
		return stdout.String()
	}
	uncached := render("-no-cache", "./...")
	cold := render("-cache-dir", cacheDir, "./...")
	warm := render("-cache-dir", cacheDir, "./...")
	if cold != uncached || warm != uncached {
		t.Errorf("cache changed output.\nuncached:\n%s\ncold:\n%s\nwarm:\n%s", uncached, cold, warm)
	}
	var stdout, stderr bytes.Buffer
	run([]string{"-cache-dir", cacheDir, "-json", "./..."}, &stdout, &stderr)
	if !strings.Contains(stdout.String(), `"cache_hits": 1`) || !strings.Contains(stdout.String(), `"cache_misses": 0`) {
		t.Errorf("warm run not served from cache:\n%s", stdout.String())
	}
}

// TestCacheInvalidatedByEdit: editing a file must flip its package
// back to a miss and pick up the new finding set.
func TestCacheInvalidatedByEdit(t *testing.T) {
	dir := writeModule(t, fixtureModule)
	cacheDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	run([]string{"-cache-dir", cacheDir, "./..."}, &stdout, &stderr)

	fixed := strings.Replace(fixtureModule["lib/lib.go"], "return a == b\n}", "return a < b || a > b\n}", 1)
	if fixed == fixtureModule["lib/lib.go"] {
		t.Fatal("test bug: replacement did not apply")
	}
	if err := os.WriteFile(filepath.Join(dir, "lib", "lib.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	code := run([]string{"-cache-dir", cacheDir, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code after fix = %d, want 0; stdout:\n%s stderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stale cached finding survived the edit:\n%s", stdout.String())
	}
}

// TestCacheInvalidatesDependents: a package's cache key folds in its
// in-module dependencies' keys, so editing a dependency re-analyzes
// the importer even though the importer's own files are untouched.
func TestCacheInvalidatesDependents(t *testing.T) {
	files := map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.24\n",
		"base/base.go": `package base

func Threshold() float64 { return 0.5 }
`,
		"app/app.go": `package app

import "fixturemod/base"

func Over(x float64) bool {
	return x != base.Threshold()
}
`,
	}
	dir := writeModule(t, files)
	cacheDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	run([]string{"-cache-dir", cacheDir, "./..."}, &stdout, &stderr)

	// Change only base; app's files are byte-identical.
	edited := strings.Replace(files["base/base.go"], "0.5", "0.75", 1)
	if err := os.WriteFile(filepath.Join(dir, "base", "base.go"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	run([]string{"-cache-dir", cacheDir, "-json", "./..."}, &stdout, &stderr)
	if !strings.Contains(stdout.String(), `"cache_misses": 2`) {
		t.Errorf("editing base should re-analyze base and app (2 misses):\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), `"analyzer": "floatcmp"`) {
		t.Errorf("app's finding lost after dependency edit:\n%s", stdout.String())
	}
}

// TestStaleGate: stale suppressions are always reported but fail the
// run only under -stale.
func TestStaleGate(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.24\n",
		"lib/lib.go": `package lib

func Stale(a, b int) bool {
	return a == b //modlint:allow floatcmp -- ints are never flagged
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-cache", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("without -stale: exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale suppression") {
		t.Errorf("stale suppression not reported: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-no-cache", "-stale", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("with -stale: exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
}

// TestBadPatternExitCode: a pattern matching nothing is a usage error,
// never a vacuous clean pass.
func TestBadPatternExitCode(t *testing.T) {
	writeModule(t, fixtureModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-cache", "./nosuchdir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, stderr.String())
	}
}
