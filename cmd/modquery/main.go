// Command modquery is an interactive shell over a moving object
// database: issue the paper's updates (new / terminate / chdir), inspect
// trajectories in constraint syntax, and run distance queries evaluated
// by the plane sweep plus the Example 3 region query evaluated by the
// constraint-language baseline.
//
// Usage:
//
//	modquery [-dim 2] [< script]
//
// Commands (vectors are comma-separated, no spaces):
//
//	new <oid> <tau> <vel> <pos>      e.g. new 1 0 1,0 -5,3
//	terminate <oid> <tau>
//	chdir <oid> <tau> <vel>
//	show <oid>                       constraint-syntax trajectory
//	objects
//	knn <k> <lo> <hi> <qpos>         k nearest to a fixed point
//	within <r> <lo> <hi> <qpos>      objects within distance r
//	entering <lo> <hi> <min> <max>   objects entering a box
//	collide <r> <lo> <hi>            pairs within distance r (exact intervals)
//	save <file> | open <file>        snapshot persistence (JSON)
//	help | quit
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	moq "repro"
	"repro/internal/cql"
	"repro/internal/geom"
	"repro/internal/mod"
)

var dimFlag = flag.Int("dim", 2, "spatial dimension")

func main() {
	log.SetFlags(0)
	flag.Parse()
	sh := &shell{db: moq.NewDB(*dimFlag, -1e18)}
	sc := bufio.NewScanner(os.Stdin)
	interactive := isTerminalish()
	if interactive {
		fmt.Printf("moving object database (dim %d); 'help' for commands\n", *dimFlag)
	}
	for {
		if interactive {
			fmt.Print("> ")
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := sh.execute(line); err != nil {
			_, _ = fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

// isTerminalish reports whether stdin looks interactive (char device).
func isTerminalish() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// shell holds the mutable database reference ("open" swaps it wholesale).
type shell struct {
	db *moq.DB
}

func (sh *shell) execute(line string) error {
	db := sh.db
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Println(`new <oid> <tau> <vel> <pos> | terminate <oid> <tau> | chdir <oid> <tau> <vel>
show <oid> | objects | knn <k> <lo> <hi> <qpos> | within <r> <lo> <hi> <qpos>
entering <lo> <hi> <min> <max> | collide <r> <lo> <hi> | save <file> | open <file> | quit`)
		return nil
	case "save":
		if len(args) != 1 {
			return fmt.Errorf("usage: save <file>")
		}
		f, err := os.Create(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		// A .bin suffix selects the compact binary snapshot codec; it
		// round-trips every float bit-exactly (±Inf taus, denormals).
		if strings.HasSuffix(args[0], ".bin") {
			return db.SaveBinary(f)
		}
		return db.SaveJSON(f)
	case "open":
		if len(args) != 1 {
			return fmt.Errorf("usage: open <file>")
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		// Sniff the codec: binary snapshots start with "MODS".
		var loaded *mod.DB
		if bytes.HasPrefix(data, mod.SnapshotMagic()) {
			loaded, err = mod.LoadBinary(bytes.NewReader(data))
		} else {
			loaded, err = mod.LoadJSON(bytes.NewReader(data))
		}
		if err != nil {
			return err
		}
		if loaded.Dim() != db.Dim() {
			return fmt.Errorf("snapshot dimension %d, shell started with %d (restart with -dim %d)",
				loaded.Dim(), db.Dim(), loaded.Dim())
		}
		sh.db = loaded
		fmt.Printf("loaded %d objects, tau=%g\n", loaded.Len(), loaded.Tau())
		return nil
	case "new":
		if len(args) != 4 {
			return fmt.Errorf("usage: new <oid> <tau> <vel> <pos>")
		}
		o, tau, err := oidTau(args[0], args[1])
		if err != nil {
			return err
		}
		vel, err := vec(args[2])
		if err != nil {
			return err
		}
		pos, err := vec(args[3])
		if err != nil {
			return err
		}
		return db.Apply(moq.New(o, tau, vel, pos))
	case "terminate":
		if len(args) != 2 {
			return fmt.Errorf("usage: terminate <oid> <tau>")
		}
		o, tau, err := oidTau(args[0], args[1])
		if err != nil {
			return err
		}
		return db.Apply(moq.Terminate(o, tau))
	case "chdir":
		if len(args) != 3 {
			return fmt.Errorf("usage: chdir <oid> <tau> <vel>")
		}
		o, tau, err := oidTau(args[0], args[1])
		if err != nil {
			return err
		}
		vel, err := vec(args[2])
		if err != nil {
			return err
		}
		return db.Apply(moq.ChDir(o, tau, vel))
	case "show":
		if len(args) != 1 {
			return fmt.Errorf("usage: show <oid>")
		}
		o, err := oid(args[0])
		if err != nil {
			return err
		}
		tr, err := db.Traj(o)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", o, tr)
		return nil
	case "objects":
		fmt.Printf("tau=%g objects=%v\n", db.Tau(), db.Objects())
		return nil
	case "knn":
		if len(args) != 4 {
			return fmt.Errorf("usage: knn <k> <lo> <hi> <qpos>")
		}
		k, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		lo, hi, err := window(args[1], args[2])
		if err != nil {
			return err
		}
		q, err := vec(args[3])
		if err != nil {
			return err
		}
		ans, st, err := moq.RunPastKNN(db, moq.PointSq(q), k, lo, hi)
		if err != nil {
			return err
		}
		fmt.Printf("%s  (%d events)\n", ans, st.Events)
		return nil
	case "within":
		if len(args) != 4 {
			return fmt.Errorf("usage: within <r> <lo> <hi> <qpos>")
		}
		r, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return err
		}
		lo, hi, err := window(args[1], args[2])
		if err != nil {
			return err
		}
		q, err := vec(args[3])
		if err != nil {
			return err
		}
		ans, _, err := moq.RunPastWithin(db, moq.PointSq(q), r*r, lo, hi)
		if err != nil {
			return err
		}
		fmt.Println(ans)
		return nil
	case "collide":
		if len(args) != 3 {
			return fmt.Errorf("usage: collide <r> <lo> <hi>")
		}
		r, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return err
		}
		lo, hi, err := window(args[1], args[2])
		if err != nil {
			return err
		}
		enc, err := moq.DetectEncounters(db, r, lo, hi)
		if err != nil {
			return err
		}
		if len(enc) == 0 {
			fmt.Println("no encounters")
			return nil
		}
		for _, e := range enc {
			fmt.Printf("%s and %s within %g during %v\n", e.A, e.B, r, e.Spans)
		}
		return nil
	case "entering":
		if len(args) != 4 {
			return fmt.Errorf("usage: entering <lo> <hi> <min> <max>")
		}
		lo, hi, err := window(args[0], args[1])
		if err != nil {
			return err
		}
		minV, err := vec(args[2])
		if err != nil {
			return err
		}
		maxV, err := vec(args[3])
		if err != nil {
			return err
		}
		res, err := cql.Entering(db, cql.Box(minV, maxV), lo, hi)
		if err != nil {
			return err
		}
		if len(res) == 0 {
			fmt.Println("no objects entered")
			return nil
		}
		for _, o := range db.Objects() {
			if ts := res[o]; len(ts) > 0 {
				fmt.Printf("%s entered at %v\n", o, ts)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func oid(s string) (mod.OID, error) {
	// mod.ParseOID accepts the full 64-bit range ("o"-prefixed or
	// bare); a narrower parse here once rejected OIDs >= 2^48 that the
	// database happily stores.
	return mod.ParseOID(s)
}

func oidTau(so, st string) (mod.OID, float64, error) {
	o, err := oid(so)
	if err != nil {
		return 0, 0, err
	}
	tau, err := strconv.ParseFloat(st, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad time %q", st)
	}
	return o, tau, nil
}

func vec(s string) (geom.Vec, error) {
	parts := strings.Split(s, ",")
	if len(parts) != *dimFlag {
		return nil, fmt.Errorf("vector %q has %d components, database dim is %d", s, len(parts), *dimFlag)
	}
	v := make(geom.Vec, len(parts))
	for i, p := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad vector component %q", p)
		}
		v[i] = x
	}
	return v, nil
}

func window(slo, shi string) (float64, float64, error) {
	lo, err := strconv.ParseFloat(slo, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad time %q", slo)
	}
	hi, err := strconv.ParseFloat(shi, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad time %q", shi)
	}
	return lo, hi, nil
}
