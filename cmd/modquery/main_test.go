package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	moq "repro"
)

func newShell() *shell { return &shell{db: moq.NewDB(2, -1e18)} }

func run(t *testing.T, sh *shell, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := sh.execute(l); err != nil {
			t.Fatalf("execute(%q): %v", l, err)
		}
	}
}

func TestShellUpdateAndQueryFlow(t *testing.T) {
	sh := newShell()
	run(t, sh,
		"new 1 0 1,0 -5,3",
		"new 2 1 0,0 2,2",
		"chdir 1 5 0,-1",
		"show 1",
		"objects",
		"knn 1 1 10 0,0",
		"within 4 1 10 0,0",
		"entering 0 20 0,0 10,10",
		"collide 50 1 10",
		"help",
	)
	if sh.db.Len() != 2 || sh.db.Tau() != 5 {
		t.Errorf("db state: len=%d tau=%g", sh.db.Len(), sh.db.Tau())
	}
}

func TestShellSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "snap.json")
	sh := newShell()
	run(t, sh, "new 1 0 1,0 -5,3", "save "+file)
	run(t, sh, "new 2 5 0,0 9,9")
	run(t, sh, "open "+file)
	if sh.db.Len() != 1 || !sh.db.Contains(1) {
		t.Errorf("after open: len=%d", sh.db.Len())
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatal(err)
	}
}

func TestShellErrors(t *testing.T) {
	sh := newShell()
	bad := []string{
		"bogus",
		"new 1",                 // arity
		"new x 0 1,0 0,0",       // bad oid
		"new 1 zero 1,0 0,0",    // bad time
		"new 1 0 1 0,0",         // bad vector dim
		"terminate 1",           // arity
		"chdir 1 5",             // arity
		"show",                  // arity
		"show 42",               // missing object
		"knn one 0 10 0,0",      // bad k
		"within r 0 10 0,0",     // bad radius
		"entering 0 20 0,0",     // arity
		"collide 5 10",          // arity
		"save",                  // arity
		"open /nonexistent/p.q", // missing file
	}
	for _, l := range bad {
		if err := sh.execute(l); err == nil {
			t.Errorf("execute(%q) should fail", l)
		}
	}
}

func TestShellShowsConstraintSyntax(t *testing.T) {
	sh := newShell()
	run(t, sh, "new 7 0 2,-1 -40,23")
	tr, err := sh.db.Traj(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "x = (2, -1)t + (-40, 23)") {
		t.Errorf("constraint form: %s", tr)
	}
}
