// Command modserve runs the moving-object database as an HTTP/JSON
// service (see internal/server for the endpoint reference): trackers POST
// chronological updates, dashboards POST plane-sweep queries.
//
// Usage:
//
//	modserve [-addr :8723] [-dim 2] [-shards 4] [-load snapshot.json] [-journal wal.jsonl] [-seed-demo]
//	         [-slow-query-threshold 50ms] [-pprof=true]
//
// With -shards P > 1 the database is hash-partitioned by OID across P
// independent shards (internal/shard): updates route to their shard and
// the /query endpoints fan out across the shards on a worker pool and
// merge — same answers, less sweep work per query and parallel
// execution across cores.
//
// Observability (internal/obs):
//
//	GET /metrics              Prometheus text exposition: per-endpoint
//	                          request counts/status/latency, per-shard
//	                          sweep work (events, swaps, reschedules,
//	                          queue high-water), query latency and k-NN
//	                          candidate-pool histograms
//	GET /metrics?format=json  the same registry as JSON
//	GET /debug/vars           expvar (includes the registry under "mod")
//	GET /debug/pprof/         net/http/pprof profiles (-pprof=false to drop)
//
// -slow-query-threshold D logs a structured "SLOWQUERY {json}" line for
// every query slower than D (0 disables).
//
// Example session:
//
//	curl -s localhost:8723/healthz
//	curl -s -X POST localhost:8723/update \
//	  -d '{"kind":"new","oid":1,"tau":0,"a":[1,0],"b":[0,0]}'
//	curl -s -X POST localhost:8723/query/knn \
//	  -d '{"k":2,"lo":0,"hi":60,"point":[0,0]}'
//	curl -s localhost:8723/metrics | grep mod_sweep_events_total
package main

import (
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

var (
	addrFlag    = flag.String("addr", ":8723", "listen address")
	dimFlag     = flag.Int("dim", 2, "spatial dimension of a fresh database")
	shardsFlag  = flag.Int("shards", 1, "hash-partition objects across P independent shards; queries fan out and merge")
	workersFlag = flag.Int("workers", 0, "max concurrent per-shard query sweeps (0 = min(shards, GOMAXPROCS))")
	loadFlag    = flag.String("load", "", "snapshot file to restore at startup")
	journalFlag = flag.String("journal", "", "append-only update journal; replayed at startup, extended while serving")
	demoFlag    = flag.Bool("seed-demo", false, "seed 50 random movers for demos")
	slowFlag    = flag.Duration("slow-query-threshold", 0, "log a structured SLOWQUERY line for queries at least this slow (0 disables)")
	pprofFlag   = flag.Bool("pprof", true, "serve net/http/pprof under /debug/pprof/")
)

func main() {
	logger := log.New(os.Stderr, "modserve: ", log.LstdFlags)
	flag.Parse()
	var db *mod.DB
	switch {
	case *loadFlag != "":
		f, err := os.Open(*loadFlag)
		if err != nil {
			logger.Fatal(err)
		}
		loaded, err := mod.LoadJSON(f)
		_ = f.Close()
		if err != nil {
			logger.Fatal(err)
		}
		db = loaded
		logger.Printf("restored %d objects (dim %d, tau %g) from %s",
			db.Len(), db.Dim(), db.Tau(), *loadFlag)
	case *demoFlag:
		seeded, err := workload.RandomMovers(workload.Config{Seed: 1, N: 50, Dim: *dimFlag})
		if err != nil {
			logger.Fatal(err)
		}
		db = seeded
		logger.Printf("seeded %d demo movers", db.Len())
	default:
		db = mod.NewDB(*dimFlag, 0)
	}
	// Replay any existing journal into the unsharded view first
	// (tolerantly, so a snapshot that already includes a prefix of it is
	// fine); the engine partitions the fully-restored state.
	if *journalFlag != "" {
		if f, err := os.Open(*journalFlag); err == nil {
			applied, skipped, rerr := mod.ReplayTolerant(db, f)
			_ = f.Close()
			if rerr != nil {
				logger.Fatalf("journal replay: %v", rerr)
			}
			logger.Printf("journal replay: %d applied, %d already present", applied, skipped)
		}
	}
	eng, err := shard.FromDB(db, shard.Config{Shards: *shardsFlag, Workers: *workersFlag})
	if err != nil {
		logger.Fatal(err)
	}
	if eng.NumShards() > 1 {
		logger.Printf("sharded engine: %d shards, %d objects", eng.NumShards(), eng.Len())
	}
	if *journalFlag != "" {
		jf, err := os.OpenFile(*journalFlag, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			logger.Fatal(err)
		}
		j := mod.NewJournal(eng, jf)
		defer func() {
			// Close flushes, fsyncs (jf is a *os.File, a mod.SyncWriter)
			// and surfaces any sticky write error.
			if err := j.Close(); err != nil {
				logger.Printf("journal close: %v", err)
			}
			_ = jf.Close()
		}()
		eng.OnUpdate(func(mod.Update) {
			if err := j.Flush(); err != nil {
				logger.Printf("journal flush: %v", err)
			}
		})
	}

	// Observability: one registry shared by the engine (sweep/query
	// series) and the HTTP layer (request series), served on /metrics
	// and mirrored into expvar's /debug/vars.
	reg := obs.NewRegistry()
	eng.Instrument(reg)
	expvar.Publish("mod", expvar.Func(reg.ExpvarFunc()))
	srv := server.NewWithOptions(eng, server.Options{
		Logger:             logger,
		Metrics:            reg,
		SlowQueryThreshold: *slowFlag,
	})

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if *pprofFlag {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if *slowFlag > 0 {
		logger.Printf("slow-query log enabled at %s", slowFlag.String())
	}
	logger.Printf("listening on %s", *addrFlag)
	if err := http.ListenAndServe(*addrFlag, mux); err != nil {
		logger.Fatal(err)
	}
}
