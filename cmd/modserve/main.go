// Command modserve runs the moving-object database as an HTTP/JSON
// service (see internal/server for the endpoint reference): trackers POST
// chronological updates, dashboards POST plane-sweep queries.
//
// Usage:
//
//	modserve [-addr :8723] [-dim 2] [-shards 4] [-seed-demo]
//	         [-data-dir DIR] [-checkpoint-every 30s] [-format binary|json]
//	         [-load snapshot.json] [-journal wal.jsonl]
//	         [-slow-query-threshold 50ms] [-watch-heartbeat 15s] [-pprof=true]
//
// POST /watch/knn and /watch/within serve continuing queries as SSE
// delta streams off the materialized-subscription registry
// (internal/sub): one shared incremental evaluation per distinct query,
// updates routed through a spatial interest index, per-client bounded
// queues with coalescing and slow-consumer eviction. -watch-heartbeat
// sets the idle keep-alive comment interval.
//
// With -shards P > 1 the database is hash-partitioned by OID across P
// independent shards (internal/shard): updates route to their shard and
// the /query endpoints fan out across the shards on a worker pool and
// merge — same answers, less sweep work per query and parallel
// execution across cores.
//
// Durability (-data-dir, internal/durable): the server recovers the
// database from DIR at boot (snapshot + journal replay, tolerating the
// torn tail a crash leaves), journals every applied update, and
// checkpoints — atomically rotating the {snapshot, journal} pair —
// every -checkpoint-every interval, on SIGINT/SIGTERM, and once more
// after the listener drains. Changing -shards across restarts
// re-partitions the store (a generation bump) transparently.
//
// The -commit flag picks the update ack contract:
//
//	flush  (default) flush per update: an acked update survives a
//	       process crash (kill -9) but not a power failure
//	sync   fsync per update: an acked update survives power loss,
//	       at one fsync per update
//	group  group commit: concurrent updates are coalesced into shared
//	       fsyncs by a committer goroutine, and each POST /update or
//	       /update/batch is acknowledged only after the fsync covering
//	       its entries returns — the sync guarantee at a fraction of
//	       the fsyncs. -commit-interval D stretches the coalescing
//	       window (default 0: the fsync rate itself batches);
//	       -commit-max-batch N fsyncs early once N entries wait.
//	none   no per-update flush (bulk loads; checkpoint at the end)
//
// The -format flag picks the codec for NEW journal segments and
// snapshots: "binary" (default) is the compact length-prefixed,
// CRC-framed raw-IEEE-754 format of internal/mod — it round-trips
// every float (±Inf taus, denormals) bit-exactly and costs a fraction
// of the JSON encode time; "json" keeps the legacy line-delimited JSON.
// Existing files are always read by their own codec (sniffed per
// file), so flipping the flag on a live data dir is safe: the next
// checkpoint migrates the live {snapshot, journal} pair.
//
// The older -load/-journal flags remain for single-file workflows and
// are mutually exclusive with -data-dir; both sniff the file format
// on read and honor -format for files they create.
//
// Observability (internal/obs):
//
//	GET /metrics              Prometheus text exposition: per-endpoint
//	                          request counts/status/latency, per-shard
//	                          sweep work (events, swaps, reschedules,
//	                          queue high-water), query latency and k-NN
//	                          candidate-pool histograms; with -data-dir
//	                          also checkpoint/recovery counters and
//	                          per-shard journal sequence numbers
//	GET /metrics?format=json  the same registry as JSON
//	GET /debug/vars           expvar (includes the registry under "mod")
//	GET /debug/pprof/         net/http/pprof profiles (-pprof=false to drop)
//
// -slow-query-threshold D logs a structured "SLOWQUERY {json}" line for
// every query slower than D (0 disables).
//
// Example session:
//
//	curl -s localhost:8723/healthz
//	curl -s -X POST localhost:8723/update \
//	  -d '{"kind":"new","oid":1,"tau":0,"a":[1,0],"b":[0,0]}'
//	curl -s -X POST localhost:8723/query/knn \
//	  -d '{"k":2,"lo":0,"hi":60,"point":[0,0]}'
//	curl -s localhost:8723/metrics | grep mod_checkpoints_total
package main

import (
	"bytes"
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/durable"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

var (
	addrFlag    = flag.String("addr", ":8723", "listen address")
	dimFlag     = flag.Int("dim", 2, "spatial dimension of a fresh database")
	shardsFlag  = flag.Int("shards", 1, "hash-partition objects across P independent shards; queries fan out and merge")
	workersFlag = flag.Int("workers", 0, "max concurrent per-shard query sweeps (0 = min(shards, GOMAXPROCS))")
	dataDirFlag = flag.String("data-dir", "", "durable data directory: recover at boot, journal every update, checkpoint on signal/interval")
	ckptFlag    = flag.Duration("checkpoint-every", 0, "checkpoint period with -data-dir (0 = only at shutdown)")
	loadFlag    = flag.String("load", "", "snapshot file to restore at startup (exclusive with -data-dir)")
	journalFlag = flag.String("journal", "", "append-only update journal; replayed at startup, extended while serving (exclusive with -data-dir)")
	commitFlag  = flag.String("commit", "flush", "update durability with -data-dir: flush | sync | group | none (see header)")
	formatFlag  = flag.String("format", "binary", "codec for new journal/snapshot files: binary | json (existing files are sniffed)")
	civFlag     = flag.Duration("commit-interval", 0, "group-commit coalescing window before each fsync (0 = fsync-rate batching only)")
	cmbFlag     = flag.Int("commit-max-batch", 0, "fsync as soon as this many entries wait, skipping the window (0 = default 256)")
	demoFlag    = flag.Bool("seed-demo", false, "seed 50 random movers for demos")
	slowFlag    = flag.Duration("slow-query-threshold", 0, "log a structured SLOWQUERY line for queries at least this slow (0 disables)")
	beatFlag    = flag.Duration("watch-heartbeat", 0, "interval between ': heartbeat' comments on idle /watch SSE streams (0 = 15s default, negative disables)")
	pprofFlag   = flag.Bool("pprof", true, "serve net/http/pprof under /debug/pprof/")
)

func main() {
	logger := log.New(os.Stderr, "modserve: ", log.LstdFlags)
	flag.Parse()

	// Observability: one registry shared by the durability layer
	// (checkpoint/recovery series), the engine (sweep/query series) and
	// the HTTP layer (request series).
	reg := obs.NewRegistry()

	var backend server.Backend
	var deng *durable.Engine
	if *dataDirFlag != "" {
		if *loadFlag != "" || *journalFlag != "" || *demoFlag {
			logger.Fatal("-data-dir is exclusive with -load, -journal and -seed-demo")
		}
		policy, err := parseCommitPolicy(*commitFlag)
		if err != nil {
			logger.Fatal(err)
		}
		format, err := parseFormat(*formatFlag)
		if err != nil {
			logger.Fatal(err)
		}
		eng, err := durable.Open(*dataDirFlag, durable.Config{
			Shards:         *shardsFlag,
			Workers:        *workersFlag,
			Dim:            *dimFlag,
			Registry:       reg,
			Commit:         policy,
			CommitInterval: *civFlag,
			CommitMaxBatch: *cmbFlag,
			Format:         format,
		})
		if err != nil {
			logger.Fatal(err)
		}
		if policy == durable.CommitGroup {
			logger.Printf("group commit: interval=%s max-batch=%d", civFlag.String(), *cmbFlag)
		}
		for i, info := range eng.Recovery() {
			logger.Printf("shard %d recovery: snapshot=%v replayed=%d skipped=%d torn=%v (%s)",
				i, info.SnapshotLoaded, info.Replay.Applied, info.Replay.Skipped,
				info.Replay.TornTail, info.Duration.Round(time.Microsecond))
		}
		logger.Printf("durable engine: dir=%s gen=%d shards=%d objects=%d tau=%g",
			*dataDirFlag, eng.Generation(), eng.NumShards(), eng.Len(), eng.Tau())
		eng.Instrument(reg)
		backend = eng
		deng = eng
	} else {
		eng := openEphemeral(logger)
		eng.Instrument(reg)
		backend = eng
	}

	expvar.Publish("mod", expvar.Func(reg.ExpvarFunc()))
	srv := server.NewWithOptions(backend, server.Options{
		Logger:             logger,
		Metrics:            reg,
		SlowQueryThreshold: *slowFlag,
		WatchHeartbeat:     *beatFlag,
	})

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if *pprofFlag {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if *slowFlag > 0 {
		logger.Printf("slow-query log enabled at %s", slowFlag.String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Periodic checkpoints: bounded journal length, bounded recovery
	// time. Runs concurrently with updates and queries by design.
	if deng != nil && *ckptFlag > 0 {
		go func() {
			tick := time.NewTicker(*ckptFlag)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if infos, err := deng.Checkpoint(); err != nil {
						logger.Printf("checkpoint: %v", err)
					} else {
						total := 0
						for _, info := range infos {
							total += info.SnapshotBytes
						}
						logger.Printf("checkpoint: seq=%d snapshot=%dB", infos[0].Seq, total)
					}
				}
			}
		}()
		logger.Printf("checkpointing every %s", ckptFlag.String())
	}

	httpSrv := &http.Server{Addr: *addrFlag, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s", *addrFlag)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		logger.Printf("signal received, draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
	}
	if deng != nil {
		// Graceful shutdown: one final checkpoint (so the next boot
		// recovers from a snapshot, not a long replay), then close.
		if _, err := deng.Checkpoint(); err != nil {
			logger.Printf("final checkpoint: %v", err)
		}
		if err := deng.Close(); err != nil {
			logger.Printf("close: %v", err)
		}
		logger.Printf("durable engine closed")
	}
}

// parseCommitPolicy maps the -commit flag to a durable.CommitPolicy.
func parseCommitPolicy(s string) (durable.CommitPolicy, error) {
	switch s {
	case "flush", "":
		return durable.CommitFlushEach, nil
	case "sync":
		return durable.CommitSyncEach, nil
	case "group":
		return durable.CommitGroup, nil
	case "none":
		return durable.CommitNone, nil
	}
	return 0, fmt.Errorf("unknown -commit policy %q (want flush, sync, group, or none)", s)
}

func parseFormat(s string) (durable.Format, error) {
	switch s {
	case "binary", "":
		return durable.FormatBinary, nil
	case "json":
		return durable.FormatJSON, nil
	}
	return 0, fmt.Errorf("unknown -format %q (want binary or json)", s)
}

// openEphemeral builds the non-durable backend the pre-data-dir flags
// describe: optional snapshot restore, optional single-file journal
// replay + append, optional demo seed.
func openEphemeral(logger *log.Logger) *shard.Engine {
	var db *mod.DB
	switch {
	case *loadFlag != "":
		data, err := os.ReadFile(*loadFlag)
		if err != nil {
			logger.Fatal(err)
		}
		// Sniff the codec: binary snapshots start with the "MODS" magic,
		// anything else is the JSON snapshot format.
		var loaded *mod.DB
		if bytes.HasPrefix(data, mod.SnapshotMagic()) {
			loaded, err = mod.LoadBinary(bytes.NewReader(data))
		} else {
			loaded, err = mod.LoadJSON(bytes.NewReader(data))
		}
		if err != nil {
			logger.Fatal(err)
		}
		db = loaded
		logger.Printf("restored %d objects (dim %d, tau %g) from %s",
			db.Len(), db.Dim(), db.Tau(), *loadFlag)
	case *demoFlag:
		seeded, err := workload.RandomMovers(workload.Config{Seed: 1, N: 50, Dim: *dimFlag})
		if err != nil {
			logger.Fatal(err)
		}
		db = seeded
		logger.Printf("seeded %d demo movers", db.Len())
	default:
		db = mod.NewDB(*dimFlag, 0)
	}
	// Replay any existing journal into the unsharded view first
	// (tolerantly, so a snapshot that already includes a prefix of it is
	// fine); the engine partitions the fully-restored state. The codec
	// is sniffed per file ("MODJ" magic = binary), and -format decides
	// what a journal created by this run is written as.
	jbinary := *formatFlag != "json"
	if *journalFlag != "" {
		if data, err := os.ReadFile(*journalFlag); err == nil && len(data) > 0 {
			var st mod.ReplayStats
			var rerr error
			if jbinary = bytes.HasPrefix(data, mod.JournalMagic()); jbinary {
				st, rerr = mod.ReplayTolerantBinary(db, bytes.NewReader(data))
			} else {
				st, rerr = mod.ReplayTolerant(db, bytes.NewReader(data))
			}
			if rerr != nil {
				logger.Fatalf("journal replay: %v", rerr)
			}
			logger.Printf("journal replay: %d applied, %d already present", st.Applied, st.Skipped)
			if st.TornTail {
				logger.Printf("journal replay: dropped %d-byte torn tail", st.TailBytes)
			}
		}
	}
	eng, err := shard.FromDB(db, shard.Config{Shards: *shardsFlag, Workers: *workersFlag})
	if err != nil {
		logger.Fatal(err)
	}
	if eng.NumShards() > 1 {
		logger.Printf("sharded engine: %d shards, %d objects", eng.NumShards(), eng.Len())
	}
	if *journalFlag != "" {
		jf, err := os.OpenFile(*journalFlag, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			logger.Fatal(err)
		}
		var j *mod.Journal
		if jbinary {
			// A fresh (empty) binary journal needs its header before
			// the first record; an existing one already carries it.
			if fi, serr := jf.Stat(); serr == nil && fi.Size() == 0 {
				if _, werr := jf.Write(mod.BinaryJournalHeader()); werr != nil {
					logger.Fatal(werr)
				}
			}
			j = mod.NewJournalBinary(eng, jf)
		} else {
			j = mod.NewJournal(eng, jf)
		}
		eng.OnUpdate(func(mod.Update) {
			if err := j.Flush(); err != nil {
				logger.Printf("journal flush: %v", err)
			}
		})
	}
	return eng
}
