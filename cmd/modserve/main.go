// Command modserve runs the moving-object database as an HTTP/JSON
// service (see internal/server for the endpoint reference): trackers POST
// chronological updates, dashboards POST plane-sweep queries.
//
// Usage:
//
//	modserve [-addr :8723] [-dim 2] [-shards 4] [-load snapshot.json] [-journal wal.jsonl] [-seed-demo]
//
// With -shards P > 1 the database is hash-partitioned by OID across P
// independent shards (internal/shard): updates route to their shard and
// the /query endpoints fan out across the shards on a worker pool and
// merge — same answers, less sweep work per query and parallel
// execution across cores.
//
// Example session:
//
//	curl -s localhost:8723/healthz
//	curl -s -X POST localhost:8723/update \
//	  -d '{"kind":"new","oid":1,"tau":0,"a":[1,0],"b":[0,0]}'
//	curl -s -X POST localhost:8723/query/knn \
//	  -d '{"k":2,"lo":0,"hi":60,"point":[0,0]}'
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	"repro/internal/mod"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

var (
	addrFlag    = flag.String("addr", ":8723", "listen address")
	dimFlag     = flag.Int("dim", 2, "spatial dimension of a fresh database")
	shardsFlag  = flag.Int("shards", 1, "hash-partition objects across P independent shards; queries fan out and merge")
	workersFlag = flag.Int("workers", 0, "max concurrent per-shard query sweeps (0 = min(shards, GOMAXPROCS))")
	loadFlag    = flag.String("load", "", "snapshot file to restore at startup")
	journalFlag = flag.String("journal", "", "append-only update journal; replayed at startup, extended while serving")
	demoFlag    = flag.Bool("seed-demo", false, "seed 50 random movers for demos")
)

func main() {
	logger := log.New(os.Stderr, "modserve: ", log.LstdFlags)
	flag.Parse()
	var db *mod.DB
	switch {
	case *loadFlag != "":
		f, err := os.Open(*loadFlag)
		if err != nil {
			logger.Fatal(err)
		}
		loaded, err := mod.LoadJSON(f)
		_ = f.Close()
		if err != nil {
			logger.Fatal(err)
		}
		db = loaded
		logger.Printf("restored %d objects (dim %d, tau %g) from %s",
			db.Len(), db.Dim(), db.Tau(), *loadFlag)
	case *demoFlag:
		seeded, err := workload.RandomMovers(workload.Config{Seed: 1, N: 50, Dim: *dimFlag})
		if err != nil {
			logger.Fatal(err)
		}
		db = seeded
		logger.Printf("seeded %d demo movers", db.Len())
	default:
		db = mod.NewDB(*dimFlag, 0)
	}
	// Replay any existing journal into the unsharded view first
	// (tolerantly, so a snapshot that already includes a prefix of it is
	// fine); the engine partitions the fully-restored state.
	if *journalFlag != "" {
		if f, err := os.Open(*journalFlag); err == nil {
			applied, skipped, rerr := mod.ReplayTolerant(db, f)
			_ = f.Close()
			if rerr != nil {
				logger.Fatalf("journal replay: %v", rerr)
			}
			logger.Printf("journal replay: %d applied, %d already present", applied, skipped)
		}
	}
	eng, err := shard.FromDB(db, shard.Config{Shards: *shardsFlag, Workers: *workersFlag})
	if err != nil {
		logger.Fatal(err)
	}
	if eng.NumShards() > 1 {
		logger.Printf("sharded engine: %d shards, %d objects", eng.NumShards(), eng.Len())
	}
	if *journalFlag != "" {
		jf, err := os.OpenFile(*journalFlag, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			logger.Fatal(err)
		}
		j := mod.NewJournal(eng, jf)
		defer func() {
			// Close flushes, fsyncs (jf is a *os.File, a mod.SyncWriter)
			// and surfaces any sticky write error.
			if err := j.Close(); err != nil {
				logger.Printf("journal close: %v", err)
			}
			_ = jf.Close()
		}()
		eng.OnUpdate(func(mod.Update) {
			if err := j.Flush(); err != nil {
				logger.Printf("journal flush: %v", err)
			}
		})
	}
	logger.Printf("listening on %s", *addrFlag)
	if err := http.ListenAndServe(*addrFlag, server.New(eng, logger)); err != nil {
		logger.Fatal(err)
	}
}
