// Command modsim runs a live moving-object simulation: an air-traffic
// fleet with a continuing k-NN watch on one flight, while a seeded
// update stream (course changes, departures, arrivals) flows into the
// database. It prints the answer timeline as the sweep maintains it —
// the paper's "eager" evaluation of a continuing query.
//
// Usage:
//
//	modsim [-n 40] [-k 3] [-seed 7] [-updates 30] [-duration 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/workload"
)

var (
	nFlag        = flag.Int("n", 40, "fleet size")
	kFlag        = flag.Int("k", 3, "neighbors to watch")
	seedFlag     = flag.Int64("seed", 7, "workload seed")
	updatesFlag  = flag.Int("updates", 30, "number of updates to stream")
	durationFlag = flag.Float64("duration", 120, "simulated duration")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modsim: ")
	flag.Parse()

	db, err := workload.AirTraffic(*seedFlag, *nFlag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet of %d aircraft; watching the %d nearest to flight o1 over [0, %g]\n\n",
		*nFlag, *kFlag, *durationFlag)

	// A tracked session: flight o1 is the query object, so its own
	// course changes retarget every distance curve (Theorem 10's O(N)
	// path) while other flights' updates cost O(log N).
	sess, knn, err := query.NewTrackKNNSession(db, 1, *kFlag+1,
		db.Tau()+0.001, *durationFlag) // +1: the watched flight itself is nearest
	if err != nil {
		log.Fatal(err)
	}

	stream, err := workload.Stream(db, workload.StreamConfig{
		Seed:  *seedFlag + 1,
		Count: *updatesFlag,
		From:  db.Tau() + 1,
		To:    *durationFlag - 1,
		// Mostly course changes, some departures/arrivals.
		NewW: 0.15, TerminateW: 0.1, ChDirW: 0.75,
	})
	if err != nil {
		log.Fatal(err)
	}

	last := ""
	report := func(t float64, cause string) {
		cur := knn.Current()
		var others []string
		for _, o := range cur {
			if o != 1 {
				others = append(others, o.String())
			}
		}
		line := strings.Join(others, " ")
		if line != last {
			fmt.Printf("t=%7.2f  %-28s nearest: %s\n", t, cause, line)
			last = line
		}
	}

	if err := sess.AdvanceTo(db.Tau() + 0.01); err != nil {
		log.Fatal(err)
	}
	report(db.Tau(), "initial state")
	for _, u := range stream {
		if err := sess.Apply(u); err != nil {
			log.Fatal(err)
		}
		report(u.Tau, describe(u))
	}
	if err := sess.AdvanceTo(*durationFlag); err != nil {
		log.Fatal(err)
	}
	report(*durationFlag, "end of watch")

	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	st := sess.E.Sweeper().Stats()
	fmt.Printf("\nsweep: %d events, %d exchanges, %d inserts, %d removals, queue peak %d\n",
		st.Events, st.Swaps, st.Inserts, st.Removes+st.Expires, st.MaxQueueLen)
	fmt.Printf("answer history for the closest other flight:\n")
	ans := knn.Answer()
	for _, o := range ans.Objects() {
		if o == 1 {
			continue
		}
		if ivs := ans.Intervals(o); len(ivs) > 0 {
			fmt.Printf("  %-4s %v\n", o, ivs)
		}
	}
}

func describe(u mod.Update) string { return u.String() }
