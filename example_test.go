package moq_test

import (
	"fmt"
	"log"

	moq "repro"
)

// ExampleRunPastKNN shows a past 1-NN query and its three answer modes.
func ExampleRunPastKNN() {
	db := moq.NewDB(2, -1)
	if err := db.ApplyAll(
		moq.New(1, 0, moq.V(0, 0), moq.V(3, 4)),     // parked 5 away
		moq.New(2, 0.5, moq.V(-1, 0), moq.V(20, 0)), // driving in along x
	); err != nil {
		log.Fatal(err)
	}
	ans, _, err := moq.RunPastKNN(db, moq.PointSq(moq.V(0, 0)), 1, 1, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("snapshot at t=10:", ans.At(10))
	fmt.Println("snapshot at t=20:", ans.At(20))
	fmt.Println("ever nearest:    ", ans.Existential())
	fmt.Println("always nearest:  ", ans.Universal(1, 30))
	// Output:
	// snapshot at t=10: [o1]
	// snapshot at t=20: [o2]
	// ever nearest:     [o1 o2]
	// always nearest:   []
}

// ExampleRunPastWithin shows a threshold ("within range") query.
func ExampleRunPastWithin() {
	db := moq.NewDB(1, -1)
	if err := db.Apply(moq.New(1, 0, moq.V(1), moq.V(-10))); err != nil {
		log.Fatal(err)
	}
	// Object position: t-10; within distance 5 of the origin for
	// t in [5, 15] (squared threshold 25).
	ans, _, err := moq.RunPastWithin(db, moq.PointSq(moq.V(0)), 25, 0.5, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans.Intervals(1))
	// Output:
	// [[5,15]]
}

// ExampleParseTrajectory round-trips the paper's Example 1 airplane.
func ExampleParseTrajectory() {
	plane, err := moq.ParseTrajectory(
		`x = (2, -1, 0)t + (-40, 23, 30) & 0 <= t <= 21
		 | x = (0, -1, -5)t + (2, 23, 135) & 21 <= t <= 22
		 | x = (0.5, 0, -1)t + (-9, 1, 47) & 22 <= t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("turns:", plane.Turns())
	fmt.Println("at t=21:", plane.MustAt(21))
	// Output:
	// turns: [21 22]
	// at t=21: (2, 2, 30)
}

// ExampleNewKNNSession maintains a continuing query through updates.
func ExampleNewKNNSession() {
	db := moq.NewDB(2, -1)
	if err := db.Apply(moq.New(1, 0, moq.V(0, 0), moq.V(10, 0))); err != nil {
		log.Fatal(err)
	}
	sess, knn, err := moq.NewKNNSession(db, moq.PointSq(moq.V(0, 0)), 1, 1, 100)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Apply(moq.New(2, 5, moq.V(0, 0), moq.V(1, 1))); err != nil {
		log.Fatal(err)
	}
	if err := sess.AdvanceTo(6); err != nil {
		log.Fatal(err)
	}
	fmt.Println("nearest at t=6:", knn.Current())
	if err := sess.Apply(moq.Terminate(2, 8)); err != nil {
		log.Fatal(err)
	}
	if err := sess.AdvanceTo(9); err != nil {
		log.Fatal(err)
	}
	fmt.Println("nearest at t=9:", knn.Current())
	// Output:
	// nearest at t=6: [o2]
	// nearest at t=9: [o1]
}

// ExampleRunPastFormula expresses 1-NN as the paper's Example 10 formula.
func ExampleRunPastFormula() {
	db := moq.NewDB(1, -1)
	if err := db.ApplyAll(
		moq.New(1, 0, moq.V(0), moq.V(1)),
		moq.New(2, 1, moq.V(0), moq.V(5)),
	); err != nil {
		log.Fatal(err)
	}
	phi := moq.ForAll{Var: "z", Body: moq.Atom{L: moq.F{Var: "y"}, Op: moq.LE, R: moq.F{Var: "z"}}}
	ans, _, err := moq.RunPastFormula(db, moq.PointSq(moq.V(0)), "y", phi, 2, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1-NN via formula:", ans.At(5))
	// Output:
	// 1-NN via formula: [o1]
}
