// Air traffic: the paper's running domain (Examples 1–3, 11). Builds a
// 3-D fleet, reproduces the Example 1/2 trajectory algebra, runs the
// distance queries of Example 11 with the sweep, and the Example 3
// "entering a region" query with the constraint-language evaluator.
//
//	go run ./examples/airtraffic
package main

import (
	"fmt"
	"log"

	moq "repro"
	"repro/internal/cql"
	"repro/internal/geom"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// ---- Example 1/2: the paper's airplane, in constraint syntax. ----
	plane, err := moq.ParseTrajectory(
		`x = (2, -1, 0)t + (-40, 23, 30) & 0 <= t <= 21
		 | x = (0, -1, -5)t + (2, 23, 135) & 21 <= t <= 22
		 | x = (0.5, 0, -1)t + (-9, 1, 47) & 22 <= t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 1 airplane:")
	fmt.Printf("  turns at t=%v; position at t=21: %v, at t=22: %v\n",
		plane.Turns(), plane.MustAt(21), plane.MustAt(22))
	landed, err := plane.ChDir(47, moq.V(0, 0, 0)) // Example 2: chdir lands it
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after chdir(o,47,(0,0,0)): parked at %v\n", landed.MustAt(60))
	fmt.Printf("  constraint form:\n    %s\n\n", landed)

	// ---- A fleet and the Example 11 query zoo. -----------------------
	db, err := workload.AirTraffic(7, 40)
	if err != nil {
		log.Fatal(err)
	}
	// "Flight 623" is object 1; its trajectory is the query trajectory.
	f623, err := db.Traj(1)
	if err != nil {
		log.Fatal(err)
	}
	d := moq.EuclideanSq(f623)

	// "List the k nearest flights to Flight 623 at time tau."
	ans, _, err := moq.RunPastKNN(db, d, 4, 0, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 nearest flights to flight o1 at t=30: %v\n", ans.At(30)[:4])

	// "List all flights that were within 150 km from Flight 623 from
	// tau1 to tau2" — here radius 150, i.e. squared distance <= 22500.
	within, _, err := moq.RunPastWithin(db, d, 150*150, 0, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flights within 150 of o1 at some point in [0,60]: %v\n",
		within.Existential())
	fmt.Printf("flights within 150 of o1 the whole time:           %v\n\n",
		within.Universal(0, 60))

	// The same threshold as an explicit FO(f) formula (Example 10 style).
	phi := moq.Atom{L: moq.F{Var: "y"}, Op: moq.LE, R: moq.C{Value: 22500}}
	form, _, err := moq.RunPastFormula(db, d, "y", phi, 0, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query as FO(f) formula: %v\n\n", form.Existential())

	// ---- Example 3: aircraft entering a county (constraint QE). ------
	county := cql.Box(geom.Of(-150, -150, 0), geom.Of(150, 150, 1000))
	entering, err := cql.Entering(db, county, 0, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aircraft entering the county during [0, 60]:")
	count := 0
	for _, o := range db.Objects() {
		if ts := entering[o]; len(ts) > 0 {
			fmt.Printf("  %v entered at t=%.2f\n", o, ts[0])
			count++
			if count == 5 {
				fmt.Println("  ...")
				break
			}
		}
	}

	// ---- Collision discovery (Section 2's motivating application). ---
	fmt.Println("\nseparation conflicts (pairs within 40 during [0, 60]):")
	encounters, err := moq.DetectEncounters(db, 40, 0, 60)
	if err != nil {
		log.Fatal(err)
	}
	if len(encounters) == 0 {
		fmt.Println("  none")
	}
	for i, e := range encounters {
		fmt.Printf("  %v and %v too close during %v\n", e.A, e.B, e.Spans)
		if i == 4 {
			fmt.Println("  ...")
			break
		}
	}
}
