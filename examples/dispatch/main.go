// Dispatch: the paper's Example 7/9 "fastest arrival" query — find the
// police car that can reach the target train fastest, where every car
// keeps its current speed but may change direction (Figure 1's
// interception geometry). The generalized distance here is interception
// time, a non-polynomial distance admitted through a bounded-error
// piecewise-quadratic fit (the paper's own approximation footnote).
//
//	go run ./examples/dispatch
package main

import (
	"fmt"
	"log"
	"sort"

	moq "repro"
	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	cars, train, err := workload.Dispatch(3, 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("25 patrol cars; target train: x(t) = %v + t*(12, 0)\n\n", train.MustAt(0))

	ic := gdist.Intercept{Target: train, MaxErr: 1e-6}

	// Exact interception times at t = 0 (Figure 1's law-of-cosines
	// solution, solved in closed form per target leg).
	type arrival struct {
		o  mod.OID
		td float64
	}
	var arr []arrival
	for _, o := range cars.Objects() {
		tr, err := cars.Traj(o)
		if err != nil {
			log.Fatal(err)
		}
		td, err := ic.Eval(tr, 0)
		if err != nil {
			log.Fatal(err)
		}
		arr = append(arr, arrival{o, td})
	}
	sort.Slice(arr, func(i, j int) bool { return arr[i].td < arr[j].td })
	fmt.Println("fastest arrivals at t=0 (exact interception times):")
	for _, a := range arr[:5] {
		fmt.Printf("  %v reaches the train in %.1f\n", a.o, a.td)
	}

	// The continuous version: maintain "who can reach the train
	// fastest" over the next 60 time units with the plane sweep.
	ans, st, err := moq.RunPastKNN(cars, ic, 1, 0, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfastest responder over [0, 60]:")
	for _, o := range ans.Objects() {
		fmt.Printf("  %v during %v\n", o, ans.Intervals(o))
	}
	fmt.Printf("(%d lead changes processed by the sweep)\n\n", st.Swaps)

	// "List other police cars that can reach car #1404 in 5 minutes"
	// (Example 11): a threshold on the same generalized distance.
	within, _, err := moq.RunPastWithin(cars, ic, 15, 0, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cars able to reach the train within 15 time units at t=30: %v\n",
		within.At(30))
}
