// Live server: runs the HTTP/JSON service in-process, streams a live
// continuing k-NN watch over server-sent events, and feeds updates
// through the REST API — the full network path (internal/server) without
// needing curl.
//
//	go run ./examples/liveserver
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	moq "repro"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)

	// The database and its HTTP facade.
	db := moq.NewDB(2, -1)
	if err := db.Apply(moq.New(1, 0, moq.V(0, 0), moq.V(10, 0))); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.New(shard.Single(db), nil))
	defer ts.Close()
	fmt.Printf("serving a 2-D MOD at %s\n\n", ts.URL)

	// Open a live 1-NN watch around the depot.
	watchBody, _ := json.Marshal(map[string]interface{}{
		"k": 1, "hi": 100, "point": []float64{0, 0},
	})
	req, _ := http.NewRequest("POST", ts.URL+"/watch/knn", bytes.NewReader(watchBody))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	events := bufio.NewReader(resp.Body)

	readEvent := func() string {
		for {
			line, err := events.ReadString('\n')
			if err != nil {
				return ""
			}
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, "data: ") {
				return strings.TrimPrefix(line, "data: ")
			}
		}
	}
	post := func(path string, body map[string]interface{}) {
		data, _ := json.Marshal(body)
		r, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		defer r.Body.Close()
		var out map[string]interface{}
		_ = json.NewDecoder(r.Body).Decode(&out)
		fmt.Printf("POST %-12s -> %v\n", path, out["applied"])
	}

	fmt.Printf("watch opened; initial answer: %s\n\n", readEvent())

	// Stream updates through the API; the watch pushes each change.
	post("/update", map[string]interface{}{
		"kind": "new", "oid": 2, "tau": 5, "a": []float64{0, 0}, "b": []float64{1, 1}})
	fmt.Printf("  watch event: %s\n", readEvent())

	post("/update", map[string]interface{}{
		"kind": "terminate", "oid": 2, "tau": 9})
	fmt.Printf("  watch event: %s\n", readEvent())

	// A past query over what is now recorded history.
	qBody, _ := json.Marshal(map[string]interface{}{
		"k": 1, "lo": 1, "hi": 9, "point": []float64{0, 0}})
	r, err := http.Post(ts.URL+"/query/knn", "application/json", bytes.NewReader(qBody))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	var ans map[string]interface{}
	_ = json.NewDecoder(r.Body).Decode(&ans)
	fmt.Printf("\npast 1-NN over [1,9] (class %v): %v\n", ans["class"], ans["answers"])
}
