// Paper figures: replays the three figures of "On Moving Object Queries"
// against the sweep engine and narrates the event timeline the paper
// describes — Figure 1's interception geometry (Example 9), Figure 2's
// update-cancelled crossing, and Figure 3's four-curve 2-NN run with the
// exact event times of Example 12 (8, 10, 17, the update at 20 replacing
// the crossing at 24 with an earlier one, and 31).
//
//	go run ./examples/paperfigures
package main

import (
	"fmt"
	"log"
	"math"

	moq "repro"
	"repro/internal/core"
	"repro/internal/gdist"
	"repro/internal/piecewise"
	"repro/internal/poly"
	"repro/internal/vis"
)

func main() {
	log.SetFlags(0)
	figure1()
	figure2()
	figure3()
}

// figure1 reproduces the interception geometry: a target q moving along a
// horizontal line at speed v, a pursuer o that can redirect at constant
// speed v_o, and the meeting point A (law of cosines on o-p-A).
func figure1() {
	fmt.Println("== Figure 1: redirection of o towards q (Example 9) ==")
	target := moq.Linear(0, moq.V(2, 0), moq.V(0, 0)) // speed v = 2 along y=0
	pursuer := moq.V(0, 3)                            // o at distance 3 off the line
	vo := 4.0                                         // speed v_o
	td, ok := gdist.InterceptTime(pursuer, 0, vo, target)
	if !ok {
		log.Fatal("no interception")
	}
	// Closed form for this right-angle geometry:
	// (v_o t)^2 = d^2 + (v t)^2  =>  t = d / sqrt(v_o^2 - v^2).
	want := 3 / math.Sqrt(vo*vo-2*2)
	fmt.Printf("  t_Delta = %.6f (closed form %.6f); meeting point A = %v\n\n",
		td, want, target.MustAt(td))
}

// figure2 drives the two-object scenario: a crossing expected at D is
// cancelled by o1's chdir at A; o2's chdir at B creates an earlier
// crossing at C.
func figure2() {
	fmt.Println("== Figure 2: updates change expected future events ==")
	s := core.NewSweeper(core.Config{Start: 0, Horizon: 100, OnChange: func(c core.Change) {
		if c.Kind == core.ChangeSwap {
			fmt.Printf("  t=%-5.4g o%d and o%d exchange closeness (time C)\n", c.T, c.A, c.B)
		}
	}})
	o1 := piecewise.FromPoly(poly.Linear(-1, 40), 0, 100)
	o2 := piecewise.FromPoly(poly.Constant(10), 0, 100)
	check(s.AddCurve(1, o1))
	check(s.AddCurve(2, o2))
	fmt.Println("  initial: o2 closer; o1 closing in, crossing expected at D = 30")

	check(s.AdvanceTo(10))
	fmt.Println("  t=10   o1 changes direction (update at A): crossing at D cancelled")
	check(s.ReplaceCurve(1, piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 10, P: poly.Linear(-1, 40)},
		piecewise.Piece{Start: 10, End: 100, P: poly.Constant(30)},
	)))

	check(s.AdvanceTo(14))
	fmt.Println("  t=14   o2 changes course (update at B): new crossing at C = 18")
	check(s.ReplaceCurve(2, piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 14, P: poly.Constant(10)},
		piecewise.Piece{Start: 14, End: 100, P: poly.Linear(5, -60)},
	)))
	check(s.AdvanceTo(100))
	fmt.Printf("  final order (closest first): %v\n\n", s.Order())
}

// figure3 replays Example 12's 2-NN trace over the four curves of
// Figure 3.
func figure3() {
	fmt.Println("== Figure 3 / Example 12: 2-NN over four objects, [0, 40] ==")
	const hi = 40.0
	curves := map[uint64]piecewise.Func{
		1: piecewise.FromPoly(poly.New(68.4, -1.5), 0, hi),
		2: piecewise.FromPoly(poly.New(43.4, 1), 0, hi),
		3: piecewise.FromPoly(poly.New(37.2, -5, 0.2), 0, hi),
		4: piecewise.FromPoly(poly.Constant(10), 0, hi),
	}
	var s *core.Sweeper
	s = core.NewSweeper(core.Config{Start: 0, Horizon: hi, OnChange: func(c core.Change) {
		if c.Kind == core.ChangeSwap {
			fmt.Printf("  t=%-8.4g o%d and o%d switch positions; 2-NN now %v\n",
				c.T, c.A, c.B, s.FirstK(2))
		}
	}})
	for id, f := range curves {
		check(s.AddCurve(id, f))
	}
	// Draw the figure itself (the four g-distance curves).
	chart := vis.NewChart(64, 14, 0, 40)
	for id, f := range curves {
		chart.AddCurve(rune('0'+id), f)
	}
	chart.MarkTime(20, "update: o1 takes the dashed curve")
	fmt.Println(chart.Render())
	fmt.Printf("  t=0      ordering is o4 < o3 < o2 < o1; queue holds events at 8, 10, 31\n")
	check(s.AdvanceTo(3))
	fmt.Printf("  t=3      2-NN answer: %v\n", s.FirstK(2))

	// The update arrives at time 20: process events at 8, 10, 17 first.
	check(s.AdvanceTo(20))
	fmt.Printf("  t=20     update: o1's g-distance becomes the dashed curve;\n")
	fmt.Printf("           the pending (o1,o3) crossing at 24 is deleted and an earlier one inserted\n")
	check(s.ReplaceCurve(1, piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 20, P: poly.New(68.4, -1.5)},
		piecewise.Piece{Start: 20, End: hi, P: poly.New(98.4, -3)},
	)))
	check(s.AdvanceTo(hi))
	fmt.Printf("  t=40     final order: %v; 2-NN answer: %v\n", s.Order(), s.FirstK(2))
	st := s.Stats()
	fmt.Printf("  stats: %d events, %d swaps, max queue length %d (N=4; Lemma 9 bound holds)\n",
		st.Events, st.Swaps, st.MaxQueueLen)

	// The 2-NN answer timeline (who was in the answer, when).
	fmt.Println("\n  2-NN membership timeline:")
	fmt.Println(vis.Timeline(64, 0, 40, []vis.TimelineRow{
		{Label: "o4", Spans: [][2]float64{{0, 40}}},
		{Label: "o3", Spans: [][2]float64{{0, 23.19}}},
		{Label: "o1", Spans: [][2]float64{{23.19, 40}}},
	}))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
