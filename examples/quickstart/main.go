// Quickstart: build a small moving object database, run a past k-NN
// query, then keep a continuing query live while updates stream in.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	moq "repro"
)

func main() {
	log.SetFlags(0)

	// A 2-D MOD; the last-update time starts before our first update.
	db := moq.NewDB(2, -1)

	// Three vehicles: one parked near the depot, one driving past it,
	// one circling far away.
	err := db.ApplyAll(
		moq.New(1, 0, moq.V(0, 0), moq.V(3, 4)),      // parked, 5 away
		moq.New(2, 0.5, moq.V(-1, 0), moq.V(20, 0)),  // inbound along x
		moq.New(3, 0.75, moq.V(0, 2), moq.V(50, 50)), // far away
	)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Past query (Theorem 4): who was nearest to the depot when? --
	depot := moq.V(0, 0)
	ans, st, err := moq.RunPastKNN(db, moq.PointSq(depot), 1, 1, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1-NN to the depot over [1, 30]:")
	for _, o := range ans.Objects() {
		fmt.Printf("  %v nearest during %v\n", o, ans.Intervals(o))
	}
	fmt.Printf("  (sweep processed %d intersection events)\n\n", st.Events)

	// The three answer modes of the paper:
	fmt.Printf("snapshot  Q[D]_10   = %v\n", ans.At(10))
	fmt.Printf("snapshot  Q[D]_20   = %v\n", ans.At(20))
	fmt.Printf("accumulative (some t) = %v\n", ans.Existential())
	fmt.Printf("persevering (all t)   = %v\n\n", ans.Universal(1, 30))

	// ---- Continuing query (Theorem 5): maintain the answer live. -----
	db2 := moq.NewDB(2, -1)
	if err := db2.Apply(moq.New(1, 0, moq.V(0, 0), moq.V(10, 0))); err != nil {
		log.Fatal(err)
	}
	sess, knn, err := moq.NewKNNSession(db2, moq.PointSq(depot), 1, 1, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("continuing 1-NN session:")
	fmt.Printf("  t=1    nearest = %v\n", knn.Current())

	// Wire the live update feed: every database update flows into the
	// session, which maintains the answer eagerly.
	db2.OnUpdate(func(u moq.Update) {
		if err := sess.Apply(u); err != nil {
			log.Fatal(err)
		}
	})

	// A new object appears much closer at t=5...
	if err := db2.Apply(moq.New(2, 5, moq.V(0, 0), moq.V(1, 1))); err != nil {
		log.Fatal(err)
	}
	if err := sess.AdvanceTo(6); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  t=6    nearest = %v (o2 appeared at t=5)\n", knn.Current())

	// ...and is terminated at t=8.
	if err := db2.Apply(moq.Terminate(2, 8)); err != nil {
		log.Fatal(err)
	}
	if err := sess.AdvanceTo(9); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  t=9    nearest = %v (o2 terminated at t=8)\n", knn.Current())

	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  history: %v\n", knn.Answer())

	// ---- Valid vs predicted answers (Definitions 4/5). ---------------
	// The session ran to t=1000 but the last update was at t=8: only the
	// answer up to 8 is settled; the rest is a prediction that later
	// updates could revoke.
	tau := db2.Tau()
	cls, _ := moq.Classify(1, 1000, tau)
	fmt.Printf("\nquery class relative to tau=%g: %v\n", tau, cls)
	fmt.Printf("  valid (settled) part:   %v\n", moq.ValidAnswer(knn.Answer(), 1, 1000, tau))
	fmt.Printf("  predicted (revocable):  %v\n", moq.PredictedAnswer(knn.Answer(), 1, 1000, tau))
}
