// Package baseline implements the comparison algorithms the paper argues
// against:
//
//   - SR01: the Song–Roussopoulos [26] approach to k-NN for a moving
//     query point over stationary objects — an R-tree plus periodic range
//     re-searching. The paper's Section 5 notes it "gives a correct query
//     result only at the time of search following the update" and misses
//     order exchanges between searches (the time-C exchange of Figure 2);
//     experiment E7 quantifies exactly that.
//
//   - AllPairsKNN: the quantifier-elimination / cell-decomposition
//     evaluation of Proposition 1 (delegates to internal/cql), the
//     recompute-from-scratch baseline of experiment E5.
//
// The comparison helpers measure how a sampled answer diverges from the
// sweep's exact answer timeline.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cql"
	"repro/internal/mod"
	"repro/internal/rtree"
	"repro/internal/trajectory"
)

// SampledAnswer is a piecewise-constant answer timeline: Sets[i] holds
// from Times[i] until Times[i+1].
type SampledAnswer struct {
	Times []float64
	Sets  [][]mod.OID
}

// SetAt returns the answer in force at time t (the last sample <= t).
func (sa SampledAnswer) SetAt(t float64) []mod.OID {
	i := sort.SearchFloat64s(sa.Times, t)
	if i < len(sa.Times) && sa.Times[i] == t { //modlint:allow floatcmp -- binary-search hit against stored sample times is bit-identical
		return sa.Sets[i]
	}
	if i == 0 {
		return nil
	}
	return sa.Sets[i-1]
}

// SR01Config configures the Song–Roussopoulos baseline.
type SR01Config struct {
	// K is the number of neighbors.
	K int
	// Period is the re-search period (their approach re-computes at
	// each update/search; with a moving query point this is the sample
	// interval).
	Period float64
	// Fanout configures the R-tree (default rtree.DefaultFanout).
	Fanout int
}

// SR01KNN runs the baseline over [lo, hi]: bulk-load the stationary
// objects into an R-tree, then at each sample instant run a range search
// around the query's current position with a radius carried over from
// the previous sample (expanded by the query's displacement), falling
// back to a fresh best-first k-NN search when the range misses. Returns
// the sampled answer timeline and the number of R-tree searches issued.
func SR01KNN(db *mod.DB, query trajectory.Trajectory, cfg SR01Config, lo, hi float64) (SampledAnswer, int, error) {
	if cfg.K < 1 {
		return SampledAnswer{}, 0, errors.New("baseline: K < 1")
	}
	if !(cfg.Period > 0) {
		return SampledAnswer{}, 0, errors.New("baseline: Period must be positive")
	}
	if db.Dim() != 2 {
		return SampledAnswer{}, 0, fmt.Errorf("baseline: SR01 needs 2-D data, got %d-D", db.Dim())
	}
	var items []rtree.Item
	for o, tr := range db.Trajectories() {
		pos, err := tr.At(lo)
		if err != nil {
			continue
		}
		vel, _ := tr.VelocityAt(lo)
		if !vel.IsZero() {
			return SampledAnswer{}, 0, fmt.Errorf("baseline: SR01 requires stationary objects; %s moves", o)
		}
		items = append(items, rtree.Item{ID: uint64(o), P: pos})
	}
	tree, err := rtree.Bulk(items, 2, cfg.Fanout)
	if err != nil {
		return SampledAnswer{}, 0, err
	}
	var sa SampledAnswer
	searches := 0
	radius := math.Inf(1)
	for t := lo; t <= hi+1e-12; t += cfg.Period {
		qpos, err := query.At(t)
		if err != nil {
			return SampledAnswer{}, 0, err
		}
		var got []rtree.Item
		if !math.IsInf(radius, 1) {
			// Expand the previous radius by the query's displacement
			// since the last search (their re-calculation rule).
			qvel, _ := query.VelocityAt(t)
			radius += qvel.Len() * cfg.Period
			got = tree.SearchRadius(qpos, radius)
			searches++
		}
		if len(got) < cfg.K {
			got = tree.NearestK(qpos, cfg.K)
			searches++
		}
		// Keep the K nearest of the candidates.
		sort.Slice(got, func(i, j int) bool {
			di, dj := got[i].P.Dist2(qpos), got[j].P.Dist2(qpos)
			if di != dj { //modlint:allow floatcmp -- comparator: strict weak ordering needs exact compares; ties break by OID
				return di < dj
			}
			return got[i].ID < got[j].ID
		})
		if len(got) > cfg.K {
			got = got[:cfg.K]
		}
		if len(got) > 0 {
			radius = got[len(got)-1].P.Dist(qpos)
		}
		set := make([]mod.OID, len(got))
		for i, it := range got {
			set[i] = mod.OID(it.ID)
		}
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		sa.Times = append(sa.Times, t)
		sa.Sets = append(sa.Sets, set)
	}
	return sa, searches, nil
}

// AllPairsKNN is the Proposition 1 recompute-from-scratch baseline
// (quantifier elimination by full cell decomposition); it delegates to
// the constraint-language evaluator.
func AllPairsKNN(db *mod.DB, query trajectory.Trajectory, k int, lo, hi float64) (cql.NNResult, error) {
	return cql.KNNNaive(db, query, k, lo, hi)
}

// AllPairsWithin is the threshold-query counterpart of AllPairsKNN:
// per-object exact quantifier elimination of "distance <= c", no sweep.
// It is the oracle of the differential test harness.
func AllPairsWithin(db *mod.DB, query trajectory.Trajectory, c float64, lo, hi float64) (cql.NNResult, error) {
	return cql.WithinNaive(db, query, c, lo, hi)
}

// Comparison quantifies how a sampled baseline diverges from the exact
// answer timeline.
type Comparison struct {
	// Probes and Wrong count probe instants and disagreements.
	Probes, Wrong int
	// Intervals is the number of maximal constant-answer intervals of
	// the truth; Missed counts those containing no baseline sample —
	// answers (like Figure 2's exchange at time C) the baseline never
	// reports.
	Intervals, Missed int
}

// WrongFraction returns the fraction of probe instants with an incorrect
// answer.
func (c Comparison) WrongFraction() float64 {
	if c.Probes == 0 {
		return 0
	}
	return float64(c.Wrong) / float64(c.Probes)
}

// MissedFraction returns the fraction of truth intervals never reported.
func (c Comparison) MissedFraction() float64 {
	if c.Intervals == 0 {
		return 0
	}
	return float64(c.Missed) / float64(c.Intervals)
}

// Compare probes the truth function on a regular grid (probes points)
// against the sampled answer, and counts truth intervals — delimited by
// changeTimes — that contain no sample instant.
func Compare(truth func(t float64) []mod.OID, sa SampledAnswer, changeTimes []float64, lo, hi float64, probes int) Comparison {
	var c Comparison
	for i := 0; i < probes; i++ {
		// Offset by half a step so probes avoid the exact sample and
		// change instants.
		t := lo + (hi-lo)*(float64(i)+0.5)/float64(probes)
		want := truth(t)
		got := sa.SetAt(t)
		c.Probes++
		if !sameSet(want, got) {
			c.Wrong++
		}
	}
	// Truth intervals between consecutive change times.
	bounds := append([]float64{lo}, changeTimes...)
	bounds = append(bounds, hi)
	sort.Float64s(bounds)
	samples := append([]float64(nil), sa.Times...)
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		if !(b-a > 1e-9) {
			continue
		}
		c.Intervals++
		j := sort.SearchFloat64s(samples, a)
		if j >= len(samples) || samples[j] >= b {
			c.Missed++
		}
	}
	return c
}

func sameSet(a, b []mod.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
