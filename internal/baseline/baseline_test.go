package baseline

import (
	"math"
	"testing"

	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

func TestSR01AgreesAtSampleInstants(t *testing.T) {
	db, err := workload.StationaryField(11, 60, 500)
	if err != nil {
		t.Fatal(err)
	}
	q := trajectory.Linear(0, geom.Of(20, 5), geom.Of(-400, 0))
	sa, searches, err := SR01KNN(db, q, SR01Config{K: 3, Period: 2}, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if searches == 0 || len(sa.Times) == 0 {
		t.Fatal("no searches performed")
	}
	// At each sample instant the reported set must equal the true k-NN.
	for i, ts := range sa.Times {
		want := bruteKNNAt(db, q, 3, ts)
		if !sameSet(want, sa.Sets[i]) {
			t.Fatalf("sample %d (t=%g): SR01 %v vs brute %v", i, ts, sa.Sets[i], want)
		}
	}
}

func bruteKNNAt(db *mod.DB, q trajectory.Trajectory, k int, t float64) []mod.OID {
	qpos := q.MustAt(t)
	type od struct {
		o mod.OID
		d float64
	}
	var ds []od
	for o, tr := range db.Trajectories() {
		if tr.DefinedAt(t) {
			ds = append(ds, od{o, tr.MustAt(t).Dist2(qpos)})
		}
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && (ds[j].d < ds[j-1].d || (ds[j].d == ds[j-1].d && ds[j].o < ds[j-1].o)); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	if len(ds) > k {
		ds = ds[:k]
	}
	out := make([]mod.OID, len(ds))
	for i, x := range ds {
		out[i] = x.o
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestSR01MissesQuickExchange(t *testing.T) {
	// The Figure 2 situation: with a coarse period, a 1-NN handover that
	// flips and flips back between samples is never reported.
	db := mod.NewDB(2, -1)
	// Two stationary objects; the query passes closer to o2 only during
	// a brief stretch around t=5.
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(0, 1))))
	must(t, db.Load(2, trajectory.Stationary(0, geom.Of(5, 2))))
	// The query approaches o2, then turns back at t=4: o2 is nearest
	// only on a short middle stretch (~(2.9, 5.1)) that a period-8
	// sampler straddles — the paper's time-C exchange.
	q0 := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	q, err0 := q0.ChDir(4, geom.Of(-1, 0))
	must(t, err0)
	// True 1-NN: o1 until the bisector, o2 in the middle stretch, o1
	// after? Compute truth via the sweep.
	knn := query.NewKNN(1)
	if _, err := query.RunPast(db, gdist.EuclideanSq{Query: q}, 0, 10, knn); err != nil {
		t.Fatal(err)
	}
	iv2 := knn.Answer().Intervals(2)
	if len(iv2) == 0 {
		t.Skip("geometry produced no exchange; scenario needs o2 to win briefly")
	}
	// Coarse sampling straddling the o2 stretch.
	sa, _, err := SR01KNN(db, q, SR01Config{K: 1, Period: 8}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	truth := func(tt float64) []mod.OID { return knn.Answer().At(tt) }
	var changes []float64
	for _, iv := range iv2 {
		changes = append(changes, iv.Lo, iv.Hi)
	}
	c := Compare(truth, sa, changes, 0, 10, 200)
	if c.Missed == 0 {
		t.Errorf("expected the o2 stretch %v to be missed at period 8 (comparison %+v)", iv2, c)
	}
	if c.Wrong == 0 {
		t.Errorf("expected wrong probes between samples, got %+v", c)
	}
	// A fine period catches it.
	saFine, _, err := SR01KNN(db, q, SR01Config{K: 1, Period: 0.25}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	cf := Compare(truth, saFine, changes, 0, 10, 200)
	if cf.Missed != 0 {
		t.Errorf("fine sampling still missed intervals: %+v", cf)
	}
	if cf.WrongFraction() >= c.WrongFraction() {
		t.Errorf("finer sampling should reduce error: %g vs %g", cf.WrongFraction(), c.WrongFraction())
	}
}

func TestSR01Validation(t *testing.T) {
	db, _ := workload.StationaryField(1, 10, 100)
	q := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	if _, _, err := SR01KNN(db, q, SR01Config{K: 0, Period: 1}, 0, 10); err == nil {
		t.Error("K=0 accepted")
	}
	if _, _, err := SR01KNN(db, q, SR01Config{K: 1, Period: 0}, 0, 10); err == nil {
		t.Error("zero period accepted")
	}
	moving := mod.NewDB(2, -1)
	must(t, moving.Load(1, trajectory.Linear(0, geom.Of(1, 1), geom.Of(0, 0))))
	if _, _, err := SR01KNN(moving, q, SR01Config{K: 1, Period: 1}, 0, 10); err == nil {
		t.Error("moving objects accepted (SR01 requires stationary data)")
	}
}

func TestAllPairsKNNMatchesSweep(t *testing.T) {
	db, err := workload.RandomMovers(workload.Config{Seed: 9, N: 12})
	if err != nil {
		t.Fatal(err)
	}
	q := workload.QueryTrajectory(workload.Config{}, 10)
	res, err := AllPairsKNN(db, q, 2, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	knn := query.NewKNN(2)
	if _, err := query.RunPast(db, gdist.EuclideanSq{Query: q}, 0, 30, knn); err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 40; probe++ {
		tt := 0.37 + float64(probe)*0.74
		if tt > 30 {
			break
		}
		want := knn.Answer().At(tt)
		var got []mod.OID
		for o, ss := range res {
			if ss.Contains(tt) {
				got = append(got, o)
			}
		}
		for i := 1; i < len(got); i++ {
			for j := i; j > 0 && got[j] < got[j-1]; j-- {
				got[j], got[j-1] = got[j-1], got[j]
			}
		}
		if !sameSet(want, got) {
			t.Fatalf("t=%g: sweep %v vs all-pairs %v", tt, want, got)
		}
	}
}

func TestSampledAnswerSetAt(t *testing.T) {
	sa := SampledAnswer{
		Times: []float64{0, 10, 20},
		Sets:  [][]mod.OID{{1}, {2}, {3}},
	}
	if got := sa.SetAt(-1); got != nil {
		t.Errorf("SetAt(-1) = %v", got)
	}
	if got := sa.SetAt(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("SetAt(0) = %v", got)
	}
	if got := sa.SetAt(15); len(got) != 1 || got[0] != 2 {
		t.Errorf("SetAt(15) = %v", got)
	}
	if got := sa.SetAt(99); len(got) != 1 || got[0] != 3 {
		t.Errorf("SetAt(99) = %v", got)
	}
}

func TestComparisonFractions(t *testing.T) {
	c := Comparison{Probes: 10, Wrong: 3, Intervals: 4, Missed: 1}
	if math.Abs(c.WrongFraction()-0.3) > 1e-12 {
		t.Error("WrongFraction")
	}
	if math.Abs(c.MissedFraction()-0.25) > 1e-12 {
		t.Error("MissedFraction")
	}
	if (Comparison{}).WrongFraction() != 0 || (Comparison{}).MissedFraction() != 0 {
		t.Error("empty comparison fractions")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
