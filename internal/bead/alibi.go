package bead

// The two exact queries. Both reduce every question to bead-chain
// windows handed to the closed-form kernel (kernel.go): the alibi query
// walks the two tracks' chains with a two-pointer merge so only
// time-overlapping bead pairs are examined, and PossiblyWithin runs
// each bead of a single track against a static query ball.

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Result is the outcome of an exact alibi query.
type Result struct {
	// Possible reports whether the two objects could have met inside
	// the query window. False is a proof of alibi: no consistent pair
	// of movements brings them to the same point at the same time.
	Possible bool
	// At is the earliest instant a meeting is possible. Only
	// meaningful when Possible.
	At float64
	// Checked counts the bead-pair windows the decision examined —
	// surfaced so tests can pin the merge-walk's pruning behavior.
	Checked int
	// Pruned counts the examined windows rejected by the cheap
	// bounding-ball distance test without invoking the kernel. Always
	// Pruned <= Checked; the answer never depends on it.
	Pruned int
}

// pruneMargin scales the broad-phase rejection slack: a window (or a
// whole candidate, in the query-layer index) is discarded only when
// infeasibility holds by a margin three orders of magnitude wider than
// the kernel's boundary-acceptance tolerance (relEps), so a pruned
// window can never be one the kernel would have accepted at a boundary.
const pruneMargin = 1e-6

// windowDisjoint reports whether the ball system ca ∪ cb is provably
// infeasible throughout [w0, w1] by radius arithmetic alone: some ball
// stays empty for the whole window (its linear radius is negative at
// both ends), or some cross pair's centers sit farther apart than the
// sum of the radii ever reaches inside the window. Only cross pairs are
// tested — balls within one group belong to the same bead, and their
// joint feasibility is the kernel's business. Every comparison carries
// pruneMargin × (problem scale) of slack: a point the kernel would
// accept satisfies ‖x−c‖ ≤ r + relEps·scale per ball, and summing two
// such inequalities still violates the margin tested here, so a
// "disjoint" verdict is a proof the kernel would find the window
// infeasible too.
func windowDisjoint(ca, cb []ball, w0, w1 float64) bool {
	scale := consScale(ca, w0, w1)
	if s := consScale(cb, w0, w1); s > scale {
		scale = s
	}
	margin := pruneMargin * scale
	reach := func(b ball) float64 {
		return math.Max(b.rad(w0), b.rad(w1)) // linear: max sits at an endpoint
	}
	for _, b := range ca {
		if reach(b) < -margin {
			return true
		}
	}
	for _, b := range cb {
		if reach(b) < -margin {
			return true
		}
	}
	for _, ba := range ca {
		ra := math.Max(0, reach(ba))
		for _, bb := range cb {
			rb := math.Max(0, reach(bb))
			if ba.c.Dist(bb.c) > ra+rb+margin {
				return true
			}
		}
	}
	return false
}

func checkWindow(lo, hi float64) error {
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
		return fmt.Errorf("bead: non-finite query window [%g, %g]", lo, hi)
	}
	if lo > hi {
		return fmt.Errorf("bead: inverted query window [%g, %g]", lo, hi)
	}
	return nil
}

// Alibi decides exactly whether the objects of tracks a and b could
// have been at the same point at the same time during [lo, hi]. The
// decision is closed-form — no sampling, no tolerance beyond the
// kernel's relative epsilon on boundary contact.
//
// The walk visits bead pairs in nondecreasing window-start order
// (within one track consecutive beads share their boundary instant,
// so advancing the earlier-ending chain never moves a window start
// backward). The first feasible window therefore yields the globally
// earliest meeting time, and the walk stops there.
func Alibi(a, b *Track, lo, hi float64) (Result, error) {
	if a == nil || b == nil {
		return Result{}, fmt.Errorf("bead: nil track")
	}
	if a.Dim() != b.Dim() {
		return Result{}, fmt.Errorf("bead: dimension mismatch %d vs %d", a.Dim(), b.Dim())
	}
	if err := checkWindow(lo, hi); err != nil {
		return Result{}, err
	}
	as, bs := a.segments(), b.segments()
	res := Result{}
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		sa, sb := as[i], bs[j]
		w0 := math.Max(math.Max(sa.t0, sb.t0), lo)
		if w0 > hi {
			break // every later pair starts even later
		}
		w1 := math.Min(math.Min(sa.t1, sb.t1), hi)
		if w0 <= w1 {
			res.Checked++
			// Bounding-ball pre-reject: most bead pairs of far-apart
			// tracks die here, before the kernel's candidate enumeration.
			// A pruned window is provably infeasible (windowDisjoint's
			// margin dominates the kernel's tolerance), so skipping it
			// cannot change the earliest-meeting answer.
			if windowDisjoint(sa.cons, sb.cons, w0, w1) {
				res.Pruned++
			} else {
				cons := make([]ball, 0, len(sa.cons)+len(sb.cons))
				cons = append(cons, sa.cons...)
				cons = append(cons, sb.cons...)
				if t0, _, ok := feasibleInterval(cons, w0, w1); ok {
					res.Possible = true
					res.At = t0
					return res, nil
				}
			}
		}
		// Advance the chain whose bead ends first; on a tie both ended
		// at the same instant and either order visits the same pairs.
		if sa.t1 <= sb.t1 {
			i++
		} else {
			j++
		}
	}
	return res, nil
}

// Interval is a closed time interval.
type Interval struct {
	Lo, Hi float64
}

// PWStats counts the work one possibly-within evaluation did: windows
// overlapping the query interval, how many the bounding-ball pre-test
// rejected, and how many reached the closed-form kernel.
type PWStats struct {
	Windows int
	Pruned  int
	Kernel  int
}

// PossiblyWithin returns the exact set of instants in [lo, hi] at which
// the track's object could have been within dist of q, as a sorted list
// of disjoint closed intervals. Within each bead the feasible set is a
// single interval (the distance condition is one more ball constraint,
// and the system stays jointly convex); intervals meeting at a bead
// boundary are merged.
func (tr *Track) PossiblyWithin(q geom.Vec, dist, lo, hi float64) ([]Interval, error) {
	ivs, _, err := tr.PossiblyWithinStats(q, dist, lo, hi)
	return ivs, err
}

// PossiblyWithinStats is PossiblyWithin plus the work counters the
// observability layer records. The answer is identical: the pre-test
// only discards windows that are provably infeasible by a margin wider
// than the kernel's own tolerance.
func (tr *Track) PossiblyWithinStats(q geom.Vec, dist, lo, hi float64) ([]Interval, PWStats, error) {
	var st PWStats
	if q.Dim() != tr.dim {
		return nil, st, fmt.Errorf("bead: query point dim %d, track dim %d", q.Dim(), tr.dim)
	}
	for _, c := range q {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, st, fmt.Errorf("bead: non-finite query coordinate %g", c)
		}
	}
	if math.IsNaN(dist) || math.IsInf(dist, 0) || dist < 0 {
		return nil, st, fmt.Errorf("bead: bad query distance %g", dist)
	}
	if err := checkWindow(lo, hi); err != nil {
		return nil, st, err
	}
	qb := ball{c: q.Clone(), ra: 0, rb: dist}
	qcons := []ball{qb}
	var out []Interval
	for _, s := range tr.segments() {
		w0 := math.Max(s.t0, lo)
		w1 := math.Min(s.t1, hi)
		if !(w0 <= w1) {
			continue
		}
		st.Windows++
		if windowDisjoint(s.cons, qcons, w0, w1) {
			st.Pruned++
			continue
		}
		st.Kernel++
		cons := make([]ball, 0, len(s.cons)+1)
		cons = append(cons, s.cons...)
		cons = append(cons, qb)
		a, b, ok := feasibleInterval(cons, w0, w1)
		if !ok {
			continue
		}
		if n := len(out); n > 0 && a <= out[n-1].Hi+1e-12*math.Max(1, math.Abs(a)) {
			if b > out[n-1].Hi {
				out[n-1].Hi = b
			}
			continue
		}
		out = append(out, Interval{Lo: a, Hi: b})
	}
	return out, st, nil
}
