// Package bead is the uncertainty layer over sampled trajectories: the
// space-time prism ("bead") model of Othman/Kuijpers/Grimson's alibi
// query, built on the observation that a real position feed is a list
// of timestamped samples, not a continuous curve. Between two
// consecutive samples (t1, x1) and (t2, x2) of an object whose speed
// never exceeds v, the object's possible positions at time t form the
// intersection of two balls
//
//	‖x − x1‖ ≤ v·(t − t1)   and   ‖x − x2‖ ≤ v·(t2 − t),
//
// the classical bead (a double cone in space-time). After the last
// sample of a live object only the first constraint remains — the
// "cap", a cone opening toward the future. A Track is the chain of
// beads its samples induce; the package answers two questions about
// tracks exactly, by closed-form analysis of the ball systems rather
// than by sampling:
//
//   - Alibi(a, b, lo, hi): could objects a and b have met during
//     [lo, hi]? (Is there a time t and a point x inside both beads?)
//   - Track.PossiblyWithin(q, r, lo, hi): when could the object have
//     been within distance r of the point q?
//
// The decision procedure lives in kernel.go; oracle.go carries a
// deliberately-dumb certified approximation used by the differential
// harness to cross-check it.
package bead

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/trajectory"
)

// Sample is one timestamped position observation.
type Sample struct {
	T float64
	X geom.Vec
}

// Track is a chronological sample list plus the object's declared
// maximum speed. If live, the track's uncertainty extends past the last
// sample (the cap bead); a terminated track ends at its final sample.
type Track struct {
	dim     int
	samples []Sample
	vmax    float64
	live    bool
}

// NewTrack builds a track from samples in strictly increasing time
// order. vmax is the declared maximum speed; a recorded leg that
// requires a higher average speed than vmax is treated as evidence the
// declaration was conservative, and that leg's bead uses the required
// speed instead (so the recorded motion itself is always possible).
func NewTrack(vmax float64, live bool, samples []Sample) (*Track, error) {
	if math.IsNaN(vmax) || math.IsInf(vmax, 0) || vmax < 0 {
		return nil, fmt.Errorf("bead: bad vmax %g", vmax)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("bead: track needs at least one sample")
	}
	dim := samples[0].X.Dim()
	if dim == 0 {
		return nil, fmt.Errorf("bead: zero-dimensional sample")
	}
	for i, s := range samples {
		if math.IsNaN(s.T) || math.IsInf(s.T, 0) {
			return nil, fmt.Errorf("bead: sample %d has non-finite time %g", i, s.T)
		}
		if s.X.Dim() != dim {
			return nil, fmt.Errorf("bead: sample %d has dim %d, track dim %d", i, s.X.Dim(), dim)
		}
		for _, c := range s.X {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("bead: sample %d has non-finite coordinate %g", i, c)
			}
		}
		if i > 0 && !(s.T > samples[i-1].T) {
			return nil, fmt.Errorf("bead: sample times not strictly increasing at %d (%g after %g)",
				i, s.T, samples[i-1].T)
		}
	}
	cp := make([]Sample, len(samples))
	copy(cp, samples)
	return &Track{dim: dim, samples: cp, vmax: vmax, live: live}, nil
}

// FromTrajectory reinterprets an exact piecewise-linear trajectory as a
// sampled track: the knots (piece starts, plus the termination instant)
// become the samples, and everything between them is uncertainty
// governed by vmax. A non-terminated trajectory yields a live track.
func FromTrajectory(tr trajectory.Trajectory, vmax float64) (*Track, error) {
	pieces := tr.Pieces()
	if len(pieces) == 0 {
		return nil, fmt.Errorf("bead: empty trajectory")
	}
	samples := make([]Sample, 0, len(pieces)+1)
	for _, pc := range pieces {
		samples = append(samples, Sample{T: pc.Start, X: pc.At(pc.Start)})
	}
	live := !tr.IsTerminated()
	if !live {
		last := pieces[len(pieces)-1]
		if last.End > samples[len(samples)-1].T {
			samples = append(samples, Sample{T: last.End, X: last.At(last.End)})
		}
	}
	return NewTrack(vmax, live, samples)
}

// Dim returns the track's spatial dimension.
func (tr *Track) Dim() int { return tr.dim }

// Vmax returns the track's declared maximum speed.
func (tr *Track) Vmax() float64 { return tr.vmax }

// Samples returns a copy of the track's samples.
func (tr *Track) Samples() []Sample {
	out := make([]Sample, len(tr.samples))
	copy(out, tr.samples)
	return out
}

// Start returns the first sample time — before it the object does not
// exist and intersects nothing.
func (tr *Track) Start() float64 { return tr.samples[0].T }

// End returns the last sample time for a terminated track and +Inf for
// a live one (the cap is unbounded).
func (tr *Track) End() float64 {
	if tr.live {
		return math.Inf(1)
	}
	return tr.samples[len(tr.samples)-1].T
}

// segment is one bead of the chain: a time extent and the ball
// constraints that confine the object inside it. Chain beads carry two
// balls (growing from the earlier sample, shrinking toward the later
// one); the cap carries only the growing one.
type segment struct {
	t0, t1 float64
	cons   []ball
}

// segments lays the track out as its bead chain, in time order. A
// single-sample live track is just a cap; a single-sample terminated
// track is a degenerate segment pinning the object to one instant.
func (tr *Track) segments() []segment {
	n := len(tr.samples)
	segs := make([]segment, 0, n)
	for i := 0; i+1 < n; i++ {
		a, b := tr.samples[i], tr.samples[i+1]
		v := tr.vmax
		// Effective speed: the recorded leg must stay reachable.
		if req := b.X.Dist(a.X) / (b.T - a.T); req > v {
			v = req
		}
		segs = append(segs, segment{
			t0: a.T, t1: b.T,
			cons: []ball{
				{c: a.X, ra: v, rb: -v * a.T},
				{c: b.X, ra: -v, rb: v * b.T},
			},
		})
	}
	last := tr.samples[n-1]
	if tr.live {
		segs = append(segs, segment{
			t0: last.T, t1: math.Inf(1),
			cons: []ball{{c: last.X, ra: tr.vmax, rb: -tr.vmax * last.T}},
		})
	} else if n == 1 {
		// Terminated immediately: the object existed exactly at last.T.
		segs = append(segs, segment{
			t0: last.T, t1: last.T,
			cons: []ball{{c: last.X, ra: 0, rb: 0}},
		})
	}
	return segs
}

// SegBox is the conservative space-time bounding box of one chain bead:
// at every instant of [T0, T1], every position consistent with the bead
// lies inside [Min, Max]. The box is the midpoint ball's: summing the
// bead's two constraints ‖x−x1‖ ≤ v·(t−t1) and ‖x−x2‖ ≤ v·(t2−t) gives
// ‖x − (x1+x2)/2‖ ≤ v·(t2−t1)/2 for every feasible (t, x). The box is
// inflated by a margin three orders of magnitude above the kernel's
// boundary tolerance, so a box miss is a proof the kernel would reject
// the window too (see boxPad).
type SegBox struct {
	T0, T1   float64
	Min, Max geom.Vec
}

// boxPad is the conservative inflation broad-phase geometry carries on
// the track side; query-side geometry adds its own, relative to its own
// coordinate scale (see internal/query). The kernel accepts boundary
// contact within relEps × (joint problem scale), and the joint scale is
// bounded by the sum of the two sides' scales, so the combined
// inflation — pruneMargin = 1000 × relEps per side — always dominates
// the kernel's slack.
func boxPad(scale float64) float64 { return pruneMargin * (1 + scale) }

// maxAbs returns the largest coordinate magnitude of v.
func maxAbs(v geom.Vec) float64 {
	m := 0.0
	for _, c := range v {
		if a := math.Abs(c); a > m {
			m = a
		}
	}
	return m
}

// ChainBoxes returns one SegBox per chain bead, in time order. A live
// track's cap is unbounded and deliberately not boxed — Cap exposes it
// for a closed-form side test. A single-sample terminated track yields
// one degenerate box pinning the object to its only recorded instant.
func (tr *Track) ChainBoxes() []SegBox {
	n := len(tr.samples)
	out := make([]SegBox, 0, n)
	box := func(t0, t1 float64, mid geom.Vec, pad float64) SegBox {
		min := make(geom.Vec, tr.dim)
		max := make(geom.Vec, tr.dim)
		for d := 0; d < tr.dim; d++ {
			min[d] = mid[d] - pad
			max[d] = mid[d] + pad
		}
		return SegBox{T0: t0, T1: t1, Min: min, Max: max}
	}
	for i := 0; i+1 < n; i++ {
		a, b := tr.samples[i], tr.samples[i+1]
		v := tr.vmax
		// Effective speed, exactly as segments() computes it: the
		// recorded leg must stay reachable.
		if req := b.X.Dist(a.X) / (b.T - a.T); req > v {
			v = req
		}
		reach := v * (b.T - a.T)
		mid := a.X.Add(b.X).Scale(0.5)
		out = append(out, box(a.T, b.T, mid, reach/2+boxPad(maxAbs(mid)+reach)))
	}
	if !tr.live && n == 1 {
		last := tr.samples[0]
		out = append(out, box(last.T, last.T, last.X, boxPad(maxAbs(last.X))))
	}
	return out
}

// Cap is a live track's trailing bead: from time T on, the object can
// be anywhere within V·(t−T) of C. Its space-time extent is unbounded,
// so the broad phase keeps caps out of the box index and tests them in
// closed form instead: the cap can reach a query ball (center q, radius
// dist) within [lo, hi] only if hi ≥ T and ‖q−C‖ ≤ dist + V·(hi−T),
// up to the same conservative margins the boxes carry.
type Cap struct {
	T float64
	C geom.Vec
	V float64
}

// Cap returns the live cap, if the track has one.
func (tr *Track) Cap() (Cap, bool) {
	if !tr.live {
		return Cap{}, false
	}
	last := tr.samples[len(tr.samples)-1]
	return Cap{T: last.T, C: last.X, V: tr.vmax}, true
}

// Pad is the conservative inflation a broad phase must add around
// geometry of the given coordinate scale for a miss to be a proof the
// exact kernel would reject the pair too. Track-side boxes already
// carry it (ChainBoxes); query-side geometry applies it to its own
// scale.
func Pad(scale float64) float64 { return boxPad(scale) }

// Reaches reports whether the cap could place its object within dist of
// q at some instant of [lo, hi], conservatively (false is a proof, true
// means "run the kernel"). The cap's reachable set at time t is the
// ball of radius V·(t−T) around C, largest at t = hi; before T the
// object is covered by the chain boxes instead, and a window entirely
// before T cannot see the cap.
func (c Cap) Reaches(q geom.Vec, dist, lo, hi float64) bool {
	if hi < c.T {
		return false
	}
	reach := dist + c.V*(hi-c.T)
	margin := Pad(maxAbs(c.C)+c.V*(hi-c.T)) + Pad(maxAbs(q)+dist)
	return q.Dist(c.C) <= reach+margin
}
