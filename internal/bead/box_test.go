package bead

// Broad-phase geometry: ChainBoxes / Cap / Pad are the conservative
// side of internal/query's BeadIndex, so the property that matters is
// one-directional — a box or cap MISS must be a proof the kernel would
// reject the window too. The tests sample feasible space-time points
// straight from the bead constraints and require the boxes to contain
// every one of them, and cross-check Cap.Reaches against the exact
// PossiblyWithin decision (never "kernel says yes, cap says no").

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/trajectory"
)

// TestChainBoxesContainFeasiblePoints draws random points from each
// bead (rejection-sampled against the two ball constraints) and
// requires the segment's SegBox to contain them all, with the box's
// time span matching the sample interval.
func TestChainBoxesContainFeasiblePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		samples := make([]Sample, n)
		tau := rng.Float64()
		for i := range samples {
			samples[i] = s(tau, 10*(rng.Float64()-0.5), 10*(rng.Float64()-0.5))
			tau += 0.2 + rng.Float64()
		}
		vmax := 0.1 + 3*rng.Float64() // sometimes below the required leg speed
		tr := mustTrack(t, vmax, rng.Intn(2) == 0, samples...)
		boxes := tr.ChainBoxes()
		if len(boxes) != n-1 {
			t.Fatalf("trial %d: %d samples gave %d boxes, want %d", trial, n, len(boxes), n-1)
		}
		for i, bx := range boxes {
			a, b := samples[i], samples[i+1]
			if bx.T0 != a.T || bx.T1 != b.T {
				t.Fatalf("trial %d box %d: time span [%g,%g], want [%g,%g]", trial, i, bx.T0, bx.T1, a.T, b.T)
			}
			v := vmax
			if req := b.X.Dist(a.X) / (b.T - a.T); req > v {
				v = req
			}
			for k := 0; k < 200; k++ {
				tt := a.T + (b.T-a.T)*rng.Float64()
				// Propose around the midpoint, keep only bead-feasible points.
				mid := a.X.Add(b.X).Scale(0.5)
				reach := v * (b.T - a.T)
				x := geom.Of(mid[0]+reach*(rng.Float64()-0.5)*2, mid[1]+reach*(rng.Float64()-0.5)*2)
				if x.Dist(a.X) > v*(tt-a.T) || x.Dist(b.X) > v*(b.T-tt) {
					continue
				}
				for d := 0; d < 2; d++ {
					if x[d] < bx.Min[d] || x[d] > bx.Max[d] {
						t.Fatalf("trial %d box %d: feasible point %v at t=%g escapes box [%v,%v]",
							trial, i, x, tt, bx.Min, bx.Max)
					}
				}
			}
			// The recorded endpoints are always feasible motion.
			for d := 0; d < 2; d++ {
				if a.X[d] < bx.Min[d] || a.X[d] > bx.Max[d] || b.X[d] < bx.Min[d] || b.X[d] > bx.Max[d] {
					t.Fatalf("trial %d box %d: sample endpoint escapes box", trial, i)
				}
			}
		}
	}
}

// TestChainBoxesSingleSample pins the two single-sample shapes: a
// terminated track yields one degenerate box at its only instant, a
// live one yields no boxes at all (the cap covers everything).
func TestChainBoxesSingleSample(t *testing.T) {
	dead := mustTrack(t, 1, false, s(2, 3, -4))
	boxes := dead.ChainBoxes()
	if len(boxes) != 1 || boxes[0].T0 != 2 || boxes[0].T1 != 2 {
		t.Fatalf("terminated single sample: boxes %+v, want one degenerate box at t=2", boxes)
	}
	for d, c := range geom.Of(3, -4) {
		if boxes[0].Min[d] > c || boxes[0].Max[d] < c {
			t.Fatalf("degenerate box %+v misses its own sample", boxes[0])
		}
	}
	live := mustTrack(t, 1, true, s(2, 3, -4))
	if got := live.ChainBoxes(); len(got) != 0 {
		t.Fatalf("live single sample: boxes %+v, want none (cap only)", got)
	}
	if _, ok := live.Cap(); !ok {
		t.Fatal("live track has no cap")
	}
	if _, ok := dead.Cap(); ok {
		t.Fatal("terminated track has a cap")
	}
}

// TestCapReachesConservative cross-checks the closed-form cap test
// against the exact kernel on live single-sample tracks: whenever
// PossiblyWithin finds a feasible instant, Reaches must have said true.
// The converse direction (Reaches true, kernel empty) is allowed — the
// broad phase is a filter, not a decider — but the obvious far-away
// and before-birth cases must actually prune.
func TestCapReachesConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pruned, kept := 0, 0
	for trial := 0; trial < 300; trial++ {
		c := geom.Of(8*(rng.Float64()-0.5), 8*(rng.Float64()-0.5))
		cap0 := Cap{T: 1 + rng.Float64(), C: c, V: 0.2 + 2*rng.Float64()}
		tr := mustTrack(t, cap0.V, true, Sample{T: cap0.T, X: c})
		q := geom.Of(12*(rng.Float64()-0.5), 12*(rng.Float64()-0.5))
		dist := 0.5 + 2*rng.Float64()
		lo := rng.Float64() * 3
		hi := lo + rng.Float64()*3
		ivs, err := tr.PossiblyWithin(q, dist, lo, hi)
		if err != nil {
			t.Fatalf("trial %d: PossiblyWithin: %v", trial, err)
		}
		if cap0.Reaches(q, dist, lo, hi) {
			kept++
		} else {
			pruned++
			if len(ivs) > 0 {
				t.Fatalf("trial %d: Reaches=false but kernel finds %v (cap %+v q=%v dist=%g window [%g,%g])",
					trial, ivs, cap0, q, dist, lo, hi)
			}
		}
	}
	if pruned == 0 || kept == 0 {
		t.Fatalf("degenerate trial mix: %d pruned, %d kept", pruned, kept)
	}
	// Window entirely before the cap opens: nothing to reach.
	far := Cap{T: 5, C: geom.Of(0, 0), V: 100}
	if far.Reaches(geom.Of(0, 0), 1, 0, 4) {
		t.Fatal("cap reaches a window that ends before it starts")
	}
}

// TestPadDominates pins the padding discipline: positive even at scale
// zero, growing with scale, and wide enough that two-sided padding
// covers the kernel's relative tolerance band at that scale.
func TestPadDominates(t *testing.T) {
	if Pad(0) <= 0 {
		t.Fatalf("Pad(0) = %g, want > 0", Pad(0))
	}
	for _, scale := range []float64{0, 1, 1e3, 1e9} {
		if Pad(scale+1) <= Pad(scale) {
			t.Fatalf("Pad not increasing at scale %g", scale)
		}
		// 1000x the kernel's relEps at the same scale (see boxPad).
		if Pad(scale) < 1000*relEps*scale {
			t.Fatalf("Pad(%g) = %g below the kernel tolerance band", scale, Pad(scale))
		}
	}
}

// TestFromTrajectory checks the knot reinterpretation: piece starts
// (plus the termination instant) become samples, liveness follows
// termination, and accessors expose what went in.
func TestFromTrajectory(t *testing.T) {
	tj := trajectory.Linear(1, geom.Of(1, 0), geom.Of(0, 0)) // x(t) = (t-1, 0) from t=1
	tj, err := tj.ChDir(3, geom.Of(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	live, err := FromTrajectory(tj, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := live.Samples(); len(got) != 2 || got[0].T != 1 || got[1].T != 3 {
		t.Fatalf("live samples %+v, want knots at t=1,3", got)
	}
	if math.IsInf(live.End(), 1) != true || live.Start() != 1 {
		t.Fatalf("live track span [%g,%g], want [1,+Inf)", live.Start(), live.End())
	}
	if live.Vmax() != 2.5 || live.Dim() != 2 {
		t.Fatalf("accessors: vmax=%g dim=%d", live.Vmax(), live.Dim())
	}
	tj, err = tj.Terminate(5)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := FromTrajectory(tj, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := dead.Samples(); len(got) != 3 || got[2].T != 5 {
		t.Fatalf("terminated samples %+v, want final sample at the termination instant", got)
	}
	if dead.End() != 5 {
		t.Fatalf("terminated End() = %g, want 5", dead.End())
	}
	if _, err := FromTrajectory(trajectory.Trajectory{}, 1); err == nil {
		t.Fatal("empty trajectory: want error")
	}
}

// TestNewTrackRejects pins the validation surface.
func TestNewTrackRejects(t *testing.T) {
	bad := []struct {
		name    string
		vmax    float64
		samples []Sample
	}{
		{"negative vmax", -1, []Sample{s(0, 0, 0)}},
		{"NaN vmax", math.NaN(), []Sample{s(0, 0, 0)}},
		{"Inf vmax", math.Inf(1), []Sample{s(0, 0, 0)}},
		{"no samples", 1, nil},
		{"zero dim", 1, []Sample{{T: 0, X: geom.Vec{}}}},
		{"NaN time", 1, []Sample{{T: math.NaN(), X: geom.Of(0, 0)}}},
		{"dim mismatch", 1, []Sample{s(0, 0, 0), {T: 1, X: geom.Of(0, 0, 0)}}},
		{"NaN coordinate", 1, []Sample{{T: 0, X: geom.Of(math.NaN(), 0)}}},
		{"non-increasing time", 1, []Sample{s(1, 0, 0), s(1, 1, 1)}},
	}
	for _, c := range bad {
		if _, err := NewTrack(c.vmax, false, c.samples); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}
