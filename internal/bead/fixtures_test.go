package bead

// Table-driven edge-case fixtures for the uncertainty geometry. Every
// fixture is planted at dyadic coordinates so the certified oracle's
// bisection can actually land on the witness, and every fixture is
// asserted against BOTH deciders: the exact kernel answer must match
// the planted expectation, and the oracle must not contradict it
// (Unresolved is the only escape, and these fixtures are easy enough
// that it would be a bug too).

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func mustTrack(t *testing.T, vmax float64, live bool, samples ...Sample) *Track {
	t.Helper()
	tr, err := NewTrack(vmax, live, samples)
	if err != nil {
		t.Fatalf("NewTrack: %v", err)
	}
	return tr
}

func s(t float64, cs ...float64) Sample { return Sample{T: t, X: geom.Of(cs...)} }

func TestAlibiFixtures(t *testing.T) {
	cases := []struct {
		name         string
		a, b         func(t *testing.T) *Track
		lo, hi       float64
		wantPossible bool
		wantAt       float64 // asserted when possible and ≥ lo
	}{
		{
			// Two zero-speed objects parked on the same spot: they
			// "meet" the entire time.
			name: "zero speed same point",
			a:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 1, 1), s(8, 1, 1)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 1, 1), s(8, 1, 1)) },
			lo:   2, hi: 6, wantPossible: true, wantAt: 2,
		},
		{
			// Parked apart: a proof of alibi with zero uncertainty.
			name: "zero speed apart",
			a:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 0, 0), s(8, 0, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 4, 0), s(8, 4, 0)) },
			lo:   0, hi: 8, wantPossible: false,
		},
		{
			// Coincident consecutive sample positions (stationary leg)
			// still spawn a full lens of uncertainty between them; the
			// prowler's lens reaches the parked object's spot exactly
			// at the lens midpoint t = 2 — a single-instant tangency.
			name: "lens tangent to point at one instant",
			a:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 2, 0), s(4, 2, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 1, false, s(0, 4, 0), s(4, 4, 0)) },
			lo:   0, hi: 4, wantPossible: true, wantAt: 2,
		},
		{
			// Same geometry, window sliced to exclude the tangency
			// instant: alibi holds.
			name: "tangent instant outside window",
			a:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 2, 0), s(4, 2, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 1, false, s(0, 4, 0), s(4, 4, 0)) },
			lo:   0, hi: 1.5, wantPossible: false,
		},
		{
			// cap/cap: two live objects released 8 apart with unit
			// speed bounds; their caps (growing cones) touch at t = 4.
			name: "caps tangent",
			a:    func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 0, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 8, 0)) },
			lo:   0, hi: 10, wantPossible: true, wantAt: 4,
		},
		{
			name: "caps cannot reach in window",
			a:    func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 0, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 8, 0)) },
			lo:   0, hi: 3.5, wantPossible: false,
		},
		{
			// Window ending exactly at the cap tangency: touching at
			// the last representable instant still counts.
			name: "caps tangent at window edge",
			a:    func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 0, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 8, 0)) },
			lo:   0, hi: 4, wantPossible: true, wantAt: 4,
		},
		{
			// cap/chain: a live roamer released at (8, 6) with v = 1
			// vs a recorded commuter from (0, 0) to (8, 0) with
			// generous bound v = 2. The binding pair is the roamer's
			// cone against the commuter's growing start-ball:
			// t + 2t ≥ ‖(8,6)‖ = 10, so first contact at t = 10/3 —
			// and the candidate point (16/3, 4) is comfortably inside
			// the commuter's terminal ball, so the pair bound is tight.
			name: "cap meets chain",
			a:    func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 8, 6)) },
			b: func(t *testing.T) *Track {
				return mustTrack(t, 2, false, s(0, 0, 0), s(8, 8, 0))
			},
			lo: 0, hi: 8, wantPossible: true, wantAt: 10.0 / 3,
		},
		{
			// chain/chain crossing: two recorded walkers whose paths
			// cross in space and time — trivially possible, and the
			// earliest contact is the window start only if uncertainty
			// lets them detour toward each other immediately. With
			// vmax equal to the required speed the beads are exact
			// segments: possible exactly at the crossing instant.
			name: "exact segments cross",
			a: func(t *testing.T) *Track {
				return mustTrack(t, 1, false, s(0, 0, 0), s(8, 8, 0))
			},
			b: func(t *testing.T) *Track {
				return mustTrack(t, 1, false, s(0, 8, 0), s(8, 0, 0))
			},
			lo: 0, hi: 8, wantPossible: true, wantAt: 4,
		},
		{
			// Same two walkers but generous speed bounds: the beads
			// fatten and the earliest possible meeting moves up from
			// the crossing instant t = 4 to t = 4/3, when the growing
			// radius-3t spheres around the two start points first
			// touch (3t + 3t ≥ 8); the terminal balls are still huge
			// then, so the start-ball tangency is the binding pair.
			name: "fat beads meet early",
			a: func(t *testing.T) *Track {
				return mustTrack(t, 3, false, s(0, 0, 0), s(8, 8, 0))
			},
			b: func(t *testing.T) *Track {
				return mustTrack(t, 3, false, s(0, 8, 0), s(8, 0, 0))
			},
			lo: 0, hi: 8, wantPossible: true, wantAt: 4.0 / 3,
		},
		{
			// Disjoint lifetimes: b starts after a terminates. The
			// merge walk finds no overlapping window at all.
			name: "disjoint lifetimes",
			a:    func(t *testing.T) *Track { return mustTrack(t, 5, false, s(0, 0, 0), s(2, 1, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 5, false, s(3, 0, 0), s(6, 1, 0)) },
			lo:   0, hi: 10, wantPossible: false,
		},
		{
			// Single-sample terminated track: the object existed at
			// exactly one instant. A meeting requires the other bead
			// to cover that point at that instant.
			name: "point object covered",
			a:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(2, 1, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 0, 0)) },
			lo:   0, hi: 4, wantPossible: true, wantAt: 2,
		},
		{
			name: "point object out of reach",
			a:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(2, 4, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 0, 0)) },
			lo:   0, hi: 4, wantPossible: false,
		},
		{
			// Declared bound too small for the recorded leg: v_eff
			// kicks in (leg needs speed 2, declared 0) and the track
			// behaves like an exact segment — it must at least meet
			// itself... here, meet a parked observer sitting on the
			// segment midpoint.
			name: "conservative declaration still reachable",
			a:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 0, 0), s(4, 8, 0)) },
			b:    func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 4, 0), s(4, 4, 0)) },
			lo:   0, hi: 4, wantPossible: true, wantAt: 2,
		},
	}
	o := NewOracle()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.a(t), tc.b(t)
			res, err := Alibi(a, b, tc.lo, tc.hi)
			if err != nil {
				t.Fatalf("Alibi: %v", err)
			}
			if res.Possible != tc.wantPossible {
				t.Fatalf("Alibi possible = %v, want %v (%+v)", res.Possible, tc.wantPossible, res)
			}
			if tc.wantPossible && math.Abs(res.At-tc.wantAt) > 1e-6 {
				t.Fatalf("earliest meeting at %g, want %g", res.At, tc.wantAt)
			}
			// Symmetry: the alibi question does not order its objects.
			rev, err := Alibi(b, a, tc.lo, tc.hi)
			if err != nil {
				t.Fatalf("Alibi reversed: %v", err)
			}
			if rev.Possible != res.Possible || (res.Possible && math.Abs(rev.At-res.At) > 1e-9) {
				t.Fatalf("asymmetric alibi: %+v vs %+v", res, rev)
			}
			// The dumb oracle must agree (its band is far wider than
			// the kernel's epsilon, and these fixtures are planted on
			// dyadic coordinates it can bisect onto).
			switch v := o.Alibi(a, b, tc.lo, tc.hi); v {
			case Possible:
				if !tc.wantPossible {
					t.Fatalf("oracle found a witness for a planted alibi")
				}
			case Impossible:
				if tc.wantPossible {
					t.Fatalf("oracle certified impossibility of a planted meeting")
				}
			case Unresolved:
				t.Fatalf("oracle unresolved on an easy planted fixture")
			}
		})
	}
}

func TestPossiblyWithinFixtures(t *testing.T) {
	o := NewOracle()
	type want struct{ lo, hi float64 }
	cases := []struct {
		name   string
		tr     func(t *testing.T) *Track
		q      geom.Vec
		dist   float64
		lo, hi float64
		want   []want
	}{
		{
			// Cap tangency: released at the origin with v = 1, the
			// ball of possible positions touches the sphere around
			// (3, 0) of radius 1 exactly at t = 2 and stays inside
			// range afterwards.
			name: "cap reaches query sphere",
			tr:   func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 0, 0)) },
			q:    geom.Of(3, 0), dist: 1, lo: 0, hi: 8,
			want: []want{{2, 8}},
		},
		{
			name: "zero speed parked in range",
			tr:   func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 1, 0), s(8, 1, 0)) },
			q:    geom.Of(1, 2), dist: 2, lo: 2, hi: 6,
			want: []want{{2, 6}},
		},
		{
			name: "zero speed parked out of range",
			tr:   func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 1, 0), s(8, 1, 0)) },
			q:    geom.Of(1, 4), dist: 2, lo: 0, hi: 8,
			want: nil,
		},
		{
			// Exact tangency from outside: parked at distance exactly
			// dist — a measure-zero touching that must be the full
			// window, not nothing.
			name: "parked exactly on the sphere",
			tr:   func(t *testing.T) *Track { return mustTrack(t, 0, false, s(0, 2, 0), s(4, 2, 0)) },
			q:    geom.Of(4, 0), dist: 2, lo: 0, hi: 4,
			want: []want{{0, 4}},
		},
		{
			// A commuter passing through: the exact segment from
			// (0,0) to (8,0) is within 1 of (4, 1) for x ∈ [4−?, 4+?]:
			// the sphere cuts the line where (x−4)² + 1 ≤ 1 → x = 4
			// only: single-instant touch at t = 4.
			name: "segment grazes sphere",
			tr: func(t *testing.T) *Track {
				return mustTrack(t, 1, false, s(0, 0, 0), s(8, 8, 0))
			},
			q: geom.Of(4, 1), dist: 1, lo: 0, hi: 8,
			want: []want{{4, 4}},
		},
		{
			// Two legs, query near the knee: the answer spans the
			// sample boundary and must come back as ONE merged
			// interval, not two abutting at t = 4.
			name: "interval merges across knee",
			tr: func(t *testing.T) *Track {
				return mustTrack(t, 1, false, s(0, 0, 0), s(4, 4, 0), s(8, 4, 4))
			},
			q: geom.Of(4, 0), dist: 2, lo: 0, hi: 8,
			want: []want{{2, 6}},
		},
		{
			// Window clipped inside the feasible span.
			name: "window clips answer",
			tr:   func(t *testing.T) *Track { return mustTrack(t, 1, true, s(0, 0, 0)) },
			q:    geom.Of(3, 0), dist: 1, lo: 4, hi: 6,
			want: []want{{4, 6}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.tr(t)
			got, err := tr.PossiblyWithin(tc.q, tc.dist, tc.lo, tc.hi)
			if err != nil {
				t.Fatalf("PossiblyWithin: %v", err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d intervals %v, want %d", len(got), got, len(tc.want))
			}
			for i := range got {
				if math.Abs(got[i].Lo-tc.want[i].lo) > 1e-6 || math.Abs(got[i].Hi-tc.want[i].hi) > 1e-6 {
					t.Fatalf("interval %d = [%g, %g], want [%g, %g]",
						i, got[i].Lo, got[i].Hi, tc.want[i].lo, tc.want[i].hi)
				}
			}
			// Oracle agreement on the yes/no question over the window.
			wantAny := len(tc.want) > 0
			switch v := o.PossiblyWithin(tr, tc.q, tc.dist, tc.lo, tc.hi); v {
			case Possible:
				if !wantAny {
					t.Fatal("oracle found a witness where none was planted")
				}
			case Impossible:
				if wantAny {
					t.Fatal("oracle certified impossibility of a planted contact")
				}
			case Unresolved:
				t.Fatal("oracle unresolved on an easy planted fixture")
			}
		})
	}
}
