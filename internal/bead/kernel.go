package bead

// The exact decision kernel. Every question this package answers
// reduces to: given up to four ball constraints
//
//	‖x − c_j‖ ≤ r_j(t),   r_j(t) = ra_j·t + rb_j   (affine radii),
//
// is there a (t, x) with t in a window [w0, w1] satisfying all of them
// — and what is the set of feasible t? The centers are fixed sample
// positions; only the radii move, linearly. Two structural facts make
// an exact finite procedure possible:
//
//  1. H(t) = min_x max_j (‖x − c_j‖ − r_j(t)) is convex in t: each
//     ‖x − c_j‖ − r_j(t) is jointly convex in (t, x), the max of convex
//     functions is convex, and partial minimization over x preserves
//     convexity. So the feasible t-set {t : H(t) ≤ 0} is an interval.
//  2. At an endpoint of that interval (a "pinch"), the minimizer x*
//     has an active set A of tight constraints, and criticality forces
//     x* into the affine hull of A's centers: |A| = 1 means a radius
//     crosses zero (apex), |A| = 2 means two balls tangent (their
//     tangency times are roots of LINEAR equations in t, since the
//     centers are fixed), |A| = 3 or 4 means x* solves the
//     equal-distance linear system of the subset, whose solution is a
//     vector of quadratics in t; substituting into one sphere equation
//     gives a QUARTIC whose roots poly.RootsIn isolates exactly.
//
// So the interval's endpoints always lie in a finite, closed-form
// candidate set: window endpoints, apex times, pairwise tangency times,
// and triple/quadruple pinch roots. The kernel enumerates them, decides
// fixed-t feasibility at each (again by finite candidate points — the
// active-set geometry in the ≤3-dimensional affine hull of the
// centers), and reads the feasible interval off the feasible
// candidates. Midpoints of consecutive candidates are probed too: they
// cost almost nothing and make the procedure robust to roots that
// degenerate numerically.

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/poly"
)

// ball is one constraint ‖x − c‖ ≤ ra·t + rb.
type ball struct {
	c      geom.Vec
	ra, rb float64
}

func (b ball) rad(t float64) float64 { return b.ra*t + b.rb }

// relEps scales every tolerance in the kernel: boundary membership is
// accepted within relEps × (problem scale). The differential oracle's
// certification band sits two orders of magnitude above it, so
// tolerance-accepted boundary cases can never be refuted by the oracle.
const relEps = 1e-9

// consScale is the magnitude the tolerances are relative to: the
// largest coordinate or radius in play over the window.
func consScale(cons []ball, w0, w1 float64) float64 {
	s := 1.0
	for _, b := range cons {
		for _, c := range b.c {
			if a := math.Abs(c); a > s {
				s = a
			}
		}
		if r := math.Abs(b.rad(w0)); r > s {
			s = r
		}
		if r := math.Abs(b.rad(w1)); r > s {
			s = r
		}
	}
	return s
}

// feasibleAt decides whether all balls share a point at time t, by
// candidate enumeration in the affine hull of the centers:
//
//   - Fixed-t feasibility only depends on the geometry inside the
//     affine hull H of the centers: for x = h + w with h ∈ H and w ⊥ H,
//     every ‖x − c_j‖ only grows with ‖w‖, so a feasible point exists
//     iff one exists inside H (dim ≤ len(cons) − 1 ≤ 3).
//   - If the intersection is nonempty, the point x* minimizing the
//     worst deficit max_j(‖x − c_j‖ − r_j) has an active set A whose
//     criticality pins it: |A| = 1 puts x* at that ball's center
//     region (center candidate suffices), |A| = 2 puts it on the
//     segment between the two centers at the equalized split, |A| ≥ 3
//     makes it an Apollonius point of the subset (equal slack s to all:
//     a linear system in x given s, closed by a quadratic in s).
//
// Each candidate is tested against every ball with the eps slack.
func feasibleAt(cons []ball, t, eps float64) bool {
	n := len(cons)
	cs := make([]geom.Vec, n)
	rs := make([]float64, n)
	for i, b := range cons {
		r := b.rad(t)
		if r < -eps {
			return false // an empty ball intersects nothing
		}
		if r < 0 {
			r = 0
		}
		cs[i] = b.c
		rs[i] = r
	}
	meets := func(x geom.Vec) bool {
		for i := range cs {
			if x.Dist(cs[i]) > rs[i]+eps {
				return false
			}
		}
		return true
	}
	// |A| = 1: centers.
	for i := range cs {
		if meets(cs[i]) {
			return true
		}
	}
	// |A| = 2: the equalized point on each center segment.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := cs[i].Dist(cs[j])
			if d <= eps {
				continue // concentric: dominated by the center candidates
			}
			u := (d + rs[i] - rs[j]) / 2
			if u < 0 {
				u = 0
			} else if u > d {
				u = d
			}
			if meets(cs[i].AddScaled(u/d, cs[j].Sub(cs[i]))) {
				return true
			}
		}
	}
	// |A| ≥ 3: Apollonius points of each affinely-independent subset.
	for _, sub := range affineSubsets(n) {
		for _, x := range apolloniusPoints(cs, rs, sub, eps) {
			if meets(x) {
				return true
			}
		}
	}
	return false
}

// affineSubsets enumerates the index subsets of size 3 and 4 (the only
// sizes whose Apollonius systems are not already covered by the center
// and pair candidates). n is at most 5 in practice.
func affineSubsets(n int) [][]int {
	var out [][]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				out = append(out, []int{i, j, k})
				for l := k + 1; l < n; l++ {
					out = append(out, []int{i, j, k, l})
				}
			}
		}
	}
	return out
}

// orthoBasis builds an orthonormal basis of span{c_j − c_0} by modified
// Gram–Schmidt, returning the basis and each difference's coordinates.
// ok is false when the centers are affinely dependent (rank < m−1) —
// those subsets are skipped: their pinches are already covered by
// smaller subsets (e.g. collinear centers reduce to pair tangencies).
func orthoBasis(cs []geom.Vec, sub []int, eps float64) (basis []geom.Vec, coords [][]float64, ok bool) {
	origin := cs[sub[0]]
	for _, idx := range sub[1:] {
		v := cs[idx].Sub(origin)
		orig := v.Len()
		p := make([]float64, 0, len(sub)-1)
		for _, e := range basis {
			d := v.Dot(e)
			p = append(p, d)
			v = v.AddScaled(-d, e)
		}
		res := v.Len()
		if res <= eps || res <= 1e-7*orig {
			return nil, nil, false
		}
		basis = append(basis, v.Scale(1/res))
		p = append(p, res)
		// Pad to full width so every coords row has len(sub)-1 entries.
		for len(p) < len(sub)-1 {
			p = append(p, 0)
		}
		coords = append(coords, p)
	}
	return basis, coords, true
}

// apolloniusPoints returns the candidate points with equal slack s to
// every ball of the subset: ‖x − c_j‖ = s + r_j. Subtracting the first
// equation from the others eliminates the quadratic term and leaves a
// triangular linear system M·x = q0 + s·q1 in the subset's own
// coordinates; substituting x(s) back into the first sphere equation
// closes it with a quadratic in s.
func apolloniusPoints(cs []geom.Vec, rs []float64, sub []int, eps float64) []geom.Vec {
	basis, coords, ok := orthoBasis(cs, sub, eps)
	if !ok {
		return nil
	}
	m := len(sub) - 1 // system size = hull dimension
	r0 := rs[sub[0]]
	q0 := make([]float64, m)
	q1 := make([]float64, m)
	for row := 0; row < m; row++ {
		rj := rs[sub[row+1]]
		p := coords[row]
		var p2 float64
		for _, x := range p {
			p2 += x * x
		}
		q0[row] = (p2 - rj*rj + r0*r0) / 2
		q1[row] = -(rj - r0)
	}
	// coords is lower-triangular with positive diagonal by construction.
	x0 := solveLowerTriangular(coords, q0)
	x1 := solveLowerTriangular(coords, q1)
	if x0 == nil || x1 == nil {
		return nil
	}
	var a, b, c float64
	a = dot(x1, x1) - 1
	b = dot(x0, x1) - r0
	c = dot(x0, x0) - r0*r0
	origin := cs[sub[0]]
	var out []geom.Vec
	for _, s := range solveQuadratic(a, 2*b, c) {
		x := origin.Clone()
		for d := 0; d < m; d++ {
			x = x.AddScaled(x0[d]+s*x1[d], basis[d])
		}
		out = append(out, x)
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// solveLowerTriangular solves M·x = q by forward substitution. Returns
// nil on a vanishing pivot (the caller's rank check makes that
// unreachable, but numeric dust gets the benefit of the doubt).
func solveLowerTriangular(M [][]float64, q []float64) []float64 {
	n := len(q)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := q[i]
		for j := 0; j < i; j++ {
			s -= M[i][j] * x[j]
		}
		piv := M[i][i]
		if math.Abs(piv) < 1e-300 {
			return nil
		}
		x[i] = s / piv
	}
	return x
}

// solveQuadratic returns the real roots of a·s² + b·s + c, treating a
// slightly negative discriminant as a tangency (one double root) so
// touching configurations are not lost to rounding.
func solveQuadratic(a, b, c float64) []float64 {
	scale := math.Abs(a) + math.Abs(b) + math.Abs(c)
	if math.Abs(a) <= 1e-14*scale {
		if math.Abs(b) <= 1e-14*scale {
			return nil
		}
		return []float64{-c / b}
	}
	disc := b*b - 4*a*c
	tol := 1e-10 * (b*b + math.Abs(4*a*c))
	if disc < -tol {
		return nil
	}
	if disc < 0 {
		disc = 0
	}
	sq := math.Sqrt(disc)
	var q float64
	if b >= 0 {
		q = -(b + sq) / 2
	} else {
		q = -(b - sq) / 2
	}
	roots := []float64{q / a}
	if math.Abs(q) > 1e-300 {
		roots = append(roots, c/q)
	}
	return roots
}

// pinchTimes returns the candidate times at which the subset's balls
// could pinch to a single shared point: ‖x(t) − c_j‖ = r_j(t) for all j
// in the subset simultaneously. Subtracting the first sphere equation
// from the others gives a linear system with SCALAR matrix (centers are
// fixed!) and right-hand sides quadratic in t, so x(t) is a vector of
// quadratics; substituting into the first sphere equation yields a
// degree-4 polynomial whose real roots in the window are the pinch
// candidates.
func pinchTimes(cons []ball, sub []int, w0, w1, eps float64) []float64 {
	cs := make([]geom.Vec, len(cons))
	for i, b := range cons {
		cs[i] = b.c
	}
	_, coords, ok := orthoBasis(cs, sub, eps)
	if !ok {
		return nil
	}
	m := len(sub) - 1
	b0 := cons[sub[0]]
	r0 := poly.Linear(b0.ra, b0.rb)
	r0sq := r0.Mul(r0)
	// W_j(t) = (|p_j|² + r_0(t)² − r_j(t)²) / 2, quadratic in t.
	W := make([]poly.Poly, m)
	for row := 0; row < m; row++ {
		bj := cons[sub[row+1]]
		rj := poly.Linear(bj.ra, bj.rb)
		p := coords[row]
		var p2 float64
		for _, x := range p {
			p2 += x * x
		}
		W[row] = poly.Constant(p2).Add(r0sq).Sub(rj.Mul(rj)).Scale(0.5)
	}
	// Forward-substitute the triangular system with polynomial RHS:
	// x_d(t) quadratic in t.
	X := make([]poly.Poly, m)
	for i := 0; i < m; i++ {
		s := W[i]
		for j := 0; j < i; j++ {
			s = s.Sub(X[j].Scale(coords[i][j]))
		}
		piv := coords[i][i]
		if math.Abs(piv) < 1e-300 {
			return nil
		}
		X[i] = s.Scale(1 / piv)
	}
	// F(t) = Σ x_d(t)² − r_0(t)², degree ≤ 4.
	F := r0sq.Neg()
	for d := 0; d < m; d++ {
		F = F.Add(X[d].Mul(X[d]))
	}
	roots, _ := F.RootsIn(w0, w1)
	return roots
}

// feasibleInterval returns the exact sub-interval of [w0, w1] during
// which all balls share a point (empty ⇒ ok = false). By convexity the
// feasible set is an interval, and its endpoints are always among the
// closed-form candidates (see the package comment at the top of this
// file); the interval is read off the feasible candidates directly.
func feasibleInterval(cons []ball, w0, w1 float64) (lo, hi float64, ok bool) {
	if !(w0 <= w1) {
		return 0, 0, false
	}
	scale := consScale(cons, w0, w1)
	eps := relEps * scale
	n := len(cons)
	cand := make([]float64, 0, 32)
	cand = append(cand, w0, w1)
	for _, b := range cons {
		// Apex: the ball's radius crosses zero.
		if math.Abs(b.ra) > 1e-300 {
			cand = append(cand, -b.rb/b.ra)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := cons[i].c.Dist(cons[j].c)
			// External tangency r_i + r_j = d and internal tangencies
			// r_i − r_j = ±d: all linear in t.
			addLinearRoot(&cand, cons[i].ra+cons[j].ra, cons[i].rb+cons[j].rb-d)
			addLinearRoot(&cand, cons[i].ra-cons[j].ra, cons[i].rb-cons[j].rb-d)
			addLinearRoot(&cand, cons[i].ra-cons[j].ra, cons[i].rb-cons[j].rb+d)
		}
	}
	for _, sub := range affineSubsets(n) {
		cand = append(cand, pinchTimes(cons, sub, w0, w1, eps)...)
	}
	// Clip into the window, sort, add midpoints of consecutive distinct
	// candidates (cheap insurance against degenerate root isolation).
	pts := cand[:0]
	for _, t := range cand {
		if t >= w0-eps && t <= w1+eps {
			pts = append(pts, math.Min(math.Max(t, w0), w1))
		}
	}
	sort.Float64s(pts)
	withMid := make([]float64, 0, 2*len(pts))
	for i, t := range pts {
		if i > 0 && pts[i-1] < t {
			withMid = append(withMid, (pts[i-1]+t)/2)
		}
		withMid = append(withMid, t)
	}
	found := false
	for _, t := range withMid {
		if feasibleAt(cons, t, eps) {
			if !found {
				lo, hi = t, t
				found = true
			} else {
				if t < lo {
					lo = t
				}
				if t > hi {
					hi = t
				}
			}
		}
	}
	return lo, hi, found
}

// addLinearRoot appends the root of a·t + b = 0 when it exists.
func addLinearRoot(cand *[]float64, a, b float64) {
	if math.Abs(a) > 1e-300 {
		*cand = append(*cand, -b/a)
	}
}
