package bead

// Kernel-level unit tests: fixed-time feasibility (including the Helly
// configuration that defeats any pairwise-only check) and the exact
// feasible-interval endpoints on hand-solvable systems.

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// static builds a constraint with constant radius r.
func static(r float64, cs ...float64) ball {
	return ball{c: geom.Of(cs...), ra: 0, rb: r}
}

// TestFeasibleAtHelly is the reason the kernel does real multi-ball
// feasibility: three circles with centers (0,0), (4,0), (2,3) intersect
// pairwise for any radius ≥ 2, yet share a common point only when the
// radius reaches 13/6 (attained at the equal-distance point (2, 5/6)).
// A pairwise-only decision procedure calls the r = 2.1 case feasible.
func TestFeasibleAtHelly(t *testing.T) {
	mk := func(r float64) []ball {
		return []ball{static(r, 0, 0), static(r, 4, 0), static(r, 2, 3)}
	}
	eps := relEps * 10
	if feasibleAt(mk(2.1), 0, eps) {
		t.Fatal("r=2.1 < 13/6: pairwise-feasible system wrongly judged feasible")
	}
	if !feasibleAt(mk(2.17), 0, eps) {
		t.Fatal("r=2.17 > 13/6: feasible system (witness (2,5/6)) judged infeasible")
	}
	// Exactly at the critical radius the three circles meet in the
	// single point (2, 5/6): boundary contact must count.
	if !feasibleAt(mk(13.0/6), 0, eps) {
		t.Fatal("r=13/6: triple tangency point missed")
	}
}

func TestFeasibleAtBasics(t *testing.T) {
	eps := relEps * 10
	cases := []struct {
		name string
		cons []ball
		want bool
	}{
		{"single ball", []ball{static(1, 5, 5)}, true},
		{"zero radius", []ball{static(0, 1, 2)}, true},
		{"negative radius", []ball{static(-0.5, 0, 0)}, false},
		{"disjoint pair", []ball{static(1, 0, 0), static(1, 3, 0)}, false},
		{"tangent pair", []ball{static(1, 0, 0), static(1, 2, 0)}, true},
		{"nested pair", []ball{static(5, 0, 0), static(1, 1, 0)}, true},
		{"concentric", []ball{static(2, 1, 1), static(1, 1, 1)}, true},
		{"concentric disjoint", []ball{static(0, 1, 1), static(-1, 1, 1)}, false},
		{"four balls one point", []ball{ // all tangent to (1,1)
			static(math.Sqrt2, 0, 0), static(math.Sqrt2, 2, 0),
			static(math.Sqrt2, 0, 2), static(math.Sqrt2, 2, 2)}, true},
		{"collinear trio", []ball{static(1, 0, 0), static(1, 2, 0), static(1, 4, 0)}, false},
		{"collinear trio touching", []ball{static(2, 0, 0), static(2, 2, 0), static(2, 4, 0)}, true},
		// The circumcenter of this tetrahedron is (1/2, 1/2, 1/2) at
		// distance √3/2 ≈ 0.866 from every vertex: that's the min-max
		// radius, so 0.9 admits a point and 0.8 does not even though
		// every PAIR of 0.8-balls overlaps (Helly again, now in 3D
		// with four balls).
		{"3d tetrahedron tight", []ball{
			static(0.9, 0, 0, 0), static(0.9, 1, 0, 0),
			static(0.9, 0, 1, 0), static(0.9, 0, 0, 1)}, true},
		{"3d tetrahedron below circumradius", []ball{
			static(0.8, 0, 0, 0), static(0.8, 1, 0, 0),
			static(0.8, 0, 1, 0), static(0.8, 0, 0, 1)}, false},
	}
	for _, tc := range cases {
		if got := feasibleAt(tc.cons, 0, eps); got != tc.want {
			t.Errorf("%s: feasibleAt = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestFeasibleIntervalGrowingBalls pins exact interval endpoints on a
// hand-solvable system: two balls growing from (0,0) and (8,0) at unit
// rate meet when t + t ≥ 8, i.e. on [4, ∞) — clipped by the window.
func TestFeasibleIntervalGrowingBalls(t *testing.T) {
	cons := []ball{
		{c: geom.Of(0, 0), ra: 1, rb: 0},
		{c: geom.Of(8, 0), ra: 1, rb: 0},
	}
	lo, hi, ok := feasibleInterval(cons, 0, 10)
	if !ok {
		t.Fatal("growing balls never met")
	}
	if math.Abs(lo-4) > 1e-6 || math.Abs(hi-10) > 1e-6 {
		t.Fatalf("interval [%g, %g], want [4, 10]", lo, hi)
	}
	// Window ending exactly at the tangency instant: a single-instant
	// touch must still be found.
	lo, hi, ok = feasibleInterval(cons, 0, 4)
	if !ok {
		t.Fatal("tangency at the window edge missed")
	}
	if math.Abs(lo-4) > 1e-6 || math.Abs(hi-4) > 1e-6 {
		t.Fatalf("edge tangency interval [%g, %g], want [4, 4]", lo, hi)
	}
	if _, _, ok = feasibleInterval(cons, 0, 3.9); ok {
		t.Fatal("balls met before they could reach each other")
	}
}

// TestFeasibleIntervalShrinkingLens: one ball grows from (0,0), one
// shrinks toward (6,0) (radius 10 − t). Meeting requires t + 10 − t ≥ 6
// — always true — but the shrinking ball dies at t = 10.
func TestFeasibleIntervalShrinkingLens(t *testing.T) {
	cons := []ball{
		{c: geom.Of(0, 0), ra: 1, rb: 0},
		{c: geom.Of(6, 0), ra: -1, rb: 10},
	}
	// At t = 0 the growing ball is the single point (0,0), which lies
	// inside the big shrinking ball: feasible from the start. After
	// t = 10 the second radius is negative: infeasible.
	lo, hi, ok := feasibleInterval(cons, 0, 20)
	if !ok {
		t.Fatal("system judged infeasible")
	}
	if math.Abs(lo-0) > 1e-6 || math.Abs(hi-10) > 1e-6 {
		t.Fatalf("interval [%g, %g], want [0, 10]", lo, hi)
	}
}

// TestFeasibleIntervalPinch drives through a genuine triple pinch: two
// static tangent circles pin the only candidate point to (2, 0), and a
// third ball growing from (2, 3) reaches it exactly at t = 3.
func TestFeasibleIntervalPinch(t *testing.T) {
	cons := []ball{
		static(2, 0, 0),
		static(2, 4, 0),
		{c: geom.Of(2, 3), ra: 1, rb: 0},
	}
	lo, hi, ok := feasibleInterval(cons, 0, 10)
	if !ok {
		t.Fatal("pinch system judged infeasible")
	}
	if math.Abs(lo-3) > 1e-6 {
		t.Fatalf("pinch opens at %g, want 3", lo)
	}
	if math.Abs(hi-10) > 1e-6 {
		t.Fatalf("pinch interval ends at %g, want 10 (stays feasible)", hi)
	}
	if _, _, ok := feasibleInterval(cons, 0, 2.9); ok {
		t.Fatal("feasible before the third ball arrives")
	}
}

// TestFeasibleIntervalMatchesOracle cross-checks the interval decision
// against the certified oracle on a mix of random-ish affine systems.
func TestFeasibleIntervalMatchesOracle(t *testing.T) {
	o := NewOracle()
	systems := [][]ball{
		{{c: geom.Of(0, 0), ra: 0.5, rb: 0.25}, {c: geom.Of(3, 1), ra: -0.25, rb: 2}},
		{{c: geom.Of(0, 0), ra: 1, rb: -2}, {c: geom.Of(5, 0), ra: 1, rb: -2}, {c: geom.Of(2.5, 4), ra: 0.5, rb: 0}},
		{{c: geom.Of(1, 1, 1), ra: 0.75, rb: 0}, {c: geom.Of(-1, 1, 0), ra: 0.5, rb: 1}, {c: geom.Of(0, -2, 2), ra: 1, rb: -1}},
		{{c: geom.Of(0), ra: 1, rb: 0}, {c: geom.Of(10), ra: 0.25, rb: 1}},
	}
	for i, cons := range systems {
		lo, hi, ok := feasibleInterval(cons, 0, 8)
		switch o.feasible(cons, 0, 8) {
		case Possible:
			if !ok {
				t.Errorf("system %d: oracle found a witness, kernel says infeasible", i)
			}
		case Impossible:
			if ok {
				t.Errorf("system %d: oracle certifies empty, kernel claims [%g, %g]", i, lo, hi)
			}
		}
		if !ok {
			continue
		}
		// The claimed endpoints (nudged inward) must satisfy the system.
		scale := consScale(cons, 0, 8)
		eps := relEps * scale * 10
		for _, tt := range []float64{lo, (lo + hi) / 2, hi} {
			if !feasibleAt(cons, tt, eps) {
				t.Errorf("system %d: claimed feasible time %g fails feasibleAt", i, tt)
			}
		}
		// Just outside the interval must be infeasible (when the
		// endpoint is interior to the window by a visible margin).
		if lo > 1e-3 && feasibleAt(cons, lo-1e-3, eps) {
			t.Errorf("system %d: t=%g before claimed start is feasible", i, lo-1e-3)
		}
		if hi < 8-1e-3 && feasibleAt(cons, hi+1e-3, eps) {
			t.Errorf("system %d: t=%g after claimed end is feasible", i, hi+1e-3)
		}
	}
}
