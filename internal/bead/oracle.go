package bead

// The differential oracle: a deliberately-dumb certified approximation
// of the same ball-system feasibility question the exact kernel answers
// in closed form. It knows nothing about convexity intervals, tangency
// polynomials, or Apollonius systems — it discretizes time densely,
// then runs interval-arithmetic branch-and-bound over (t, x) boxes:
//
//   - A sampled point with max_j(‖x − c_j‖ − r_j(t)) ≤ 0 is a WITNESS:
//     the configuration is certainly feasible (Possible).
//   - A box whose best conceivable value, via the Lipschitz bound
//     G(center) − (space half-diagonal + max|ra|·time half-width),
//     still exceeds the safety band is certainly infeasible and is
//     pruned. If every box dies this way, the answer is Impossible.
//   - If the node budget runs out first the oracle says Unresolved and
//     the harness skips the scenario — it never guesses.
//
// The band keeps the two deciders honest about tolerance: the kernel
// accepts boundary contact within relEps×scale (1e-9 relative), so the
// oracle only asserts Impossible when the system is infeasible by a
// margin (1e-6 relative) a thousand times wider. A genuine disagreement
// therefore can never be a knife-edge rounding artifact.

import (
	"math"

	"repro/internal/geom"
)

// Verdict is the oracle's three-valued answer.
type Verdict int

const (
	// Impossible: certified — no feasible (t, x) exists, by margin.
	Impossible Verdict = iota
	// Possible: certified — a concrete witness point was found.
	Possible
	// Unresolved: budget exhausted before certification either way.
	Unresolved
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Impossible:
		return "impossible"
	case Possible:
		return "possible"
	case Unresolved:
		return "unresolved"
	default:
		return "verdict(?)"
	}
}

// Oracle holds the discretization knobs. The zero value is unusable;
// call NewOracle for sane defaults.
type Oracle struct {
	// TimeSlices is the initial dense time discretization of each
	// window before branch-and-bound refines adaptively.
	TimeSlices int
	// MaxNodes bounds the boxes explored per window; exhaustion yields
	// Unresolved rather than a guess.
	MaxNodes int
	// Band is the relative infeasibility margin required to certify
	// Impossible. Must dominate the exact kernel's relEps.
	Band float64
}

// NewOracle returns an oracle with the harness defaults.
func NewOracle() *Oracle {
	return &Oracle{TimeSlices: 32, MaxNodes: 20000, Band: 1e-6}
}

// box is one branch-and-bound node: a time interval × an axis-aligned
// spatial box (lo[d], hi[d]).
type box struct {
	t0, t1 float64
	lo, hi []float64
}

// feasible runs branch-and-bound on one constraint system over the
// finite window [w0, w1].
func (o *Oracle) feasible(cons []ball, w0, w1 float64) Verdict {
	if !(w0 <= w1) {
		return Impossible
	}
	scale := consScale(cons, w0, w1)
	band := o.Band * scale
	dim := cons[0].c.Dim()
	maxRA := 0.0
	for _, b := range cons {
		if a := math.Abs(b.ra); a > maxRA {
			maxRA = a
		}
	}

	// G(t, x) = worst constraint deficit. Radii are NOT clamped at
	// zero: the continuous extension keeps G 1-Lipschitz in x and
	// maxRA-Lipschitz in t, which the pruning bound relies on.
	G := func(t float64, x []float64) float64 {
		worst := math.Inf(-1)
		for _, b := range cons {
			var d2 float64
			for d := 0; d < dim; d++ {
				diff := x[d] - b.c[d]
				d2 += diff * diff
			}
			if g := math.Sqrt(d2) - b.rad(t); g > worst {
				worst = g
			}
		}
		return worst
	}

	// Initial spatial box: the intersection of the per-ball bounding
	// boxes at the most generous radius each ball reaches in-window.
	spLo := make([]float64, dim)
	spHi := make([]float64, dim)
	for d := 0; d < dim; d++ {
		spLo[d] = math.Inf(-1)
		spHi[d] = math.Inf(1)
	}
	for _, b := range cons {
		r := math.Max(b.rad(w0), b.rad(w1))
		if r < 0 {
			r = 0
		}
		for d := 0; d < dim; d++ {
			spLo[d] = math.Max(spLo[d], b.c[d]-r)
			spHi[d] = math.Min(spHi[d], b.c[d]+r)
		}
	}
	for d := 0; d < dim; d++ {
		if g := spLo[d] - spHi[d]; g > 0 {
			// Bounding boxes are disjoint by gap g in one axis; any
			// point is at least g/2 outside some ball.
			if g/2 > band {
				return Impossible
			}
			return Unresolved
		}
	}

	// visit runs the witness checks on a box — its center, plus every
	// (t-endpoint × space-corner). Corners matter: tangency witnesses
	// in the planted fixtures sit at dyadic coordinates that only
	// corner evaluation reaches in finitely many splits. Returns the
	// center deficit, which doubles as the box's search priority.
	corners := 1 << dim
	x := make([]float64, dim)
	visit := func(bx box) (gc float64, witness bool) {
		tc := (bx.t0 + bx.t1) / 2
		for d := 0; d < dim; d++ {
			x[d] = (bx.lo[d] + bx.hi[d]) / 2
		}
		gc = G(tc, x)
		if gc <= 0 {
			return gc, true
		}
		for _, t := range [2]float64{bx.t0, bx.t1} {
			for m := 0; m < corners; m++ {
				for d := 0; d < dim; d++ {
					if m&(1<<d) != 0 {
						x[d] = bx.hi[d]
					} else {
						x[d] = bx.lo[d]
					}
				}
				if G(t, x) <= 0 {
					return gc, true
				}
			}
		}
		return gc, false
	}

	// Dense initial time discretization, then best-first refinement:
	// boxes with the smallest center deficit are split first, so a
	// witness (if any) is reached long before the budget goes on
	// sharpening far-from-feasible regions. The certification story is
	// order-independent — Impossible still requires every box pruned.
	slices := o.TimeSlices
	if slices < 1 {
		slices = 1
	}
	var queue boxQueue
	nodes := 0
	push := func(bx box) bool {
		nodes++
		gc, witness := visit(bx)
		if witness {
			return true
		}
		// Prune: the Lipschitz bound says no point of the box can
		// beat gc − reach. Requiring it to clear the band as well
		// keeps knife-edge boxes alive until a witness or the budget
		// settles them.
		var diag2 float64
		for d := 0; d < dim; d++ {
			w := bx.hi[d] - bx.lo[d]
			diag2 += w * w / 4
		}
		reach := math.Sqrt(diag2) + maxRA*(bx.t1-bx.t0)/2
		if gc-reach > band {
			return false
		}
		queue.push(bx, gc)
		return false
	}
	if w1 > w0 {
		step := (w1 - w0) / float64(slices)
		for i := 0; i < slices; i++ {
			a := w0 + float64(i)*step
			b := w0 + float64(i+1)*step
			if i == slices-1 {
				b = w1
			}
			if push(box{t0: a, t1: b,
				lo: append([]float64(nil), spLo...), hi: append([]float64(nil), spHi...)}) {
				return Possible
			}
		}
	} else if push(box{t0: w0, t1: w0, lo: spLo, hi: spHi}) {
		return Possible
	}

	for queue.len() > 0 {
		if nodes > o.MaxNodes {
			return Unresolved
		}
		bx := queue.pop()

		// Split the dominant dimension, time weighted by its Lipschitz
		// constant so space and time shrink at comparable G-rates.
		longDim := -1 // -1 = split time
		longest := math.Max(maxRA, 1e-3) * (bx.t1 - bx.t0)
		for d := 0; d < dim; d++ {
			if w := bx.hi[d] - bx.lo[d]; w > longest {
				longest, longDim = w, d
			}
		}
		a, b := bx, bx
		a.lo = append([]float64(nil), bx.lo...)
		a.hi = append([]float64(nil), bx.hi...)
		b.lo = append([]float64(nil), bx.lo...)
		b.hi = append([]float64(nil), bx.hi...)
		if longDim == -1 {
			mid := (bx.t0 + bx.t1) / 2
			a.t1, b.t0 = mid, mid
		} else {
			mid := (bx.lo[longDim] + bx.hi[longDim]) / 2
			a.hi[longDim], b.lo[longDim] = mid, mid
		}
		if push(a) || push(b) {
			return Possible
		}
	}
	return Impossible
}

// boxQueue is a binary min-heap of boxes keyed by center deficit.
type boxQueue struct {
	boxes []box
	keys  []float64
}

func (q *boxQueue) len() int { return len(q.boxes) }

func (q *boxQueue) push(bx box, key float64) {
	q.boxes = append(q.boxes, bx)
	q.keys = append(q.keys, key)
	i := len(q.keys) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.keys[p] <= q.keys[i] {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *boxQueue) pop() box {
	top := q.boxes[0]
	n := len(q.keys) - 1
	q.swap(0, n)
	q.boxes = q.boxes[:n]
	q.keys = q.keys[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.keys[l] < q.keys[small] {
			small = l
		}
		if r < n && q.keys[r] < q.keys[small] {
			small = r
		}
		if small == i {
			break
		}
		q.swap(i, small)
		i = small
	}
	return top
}

func (q *boxQueue) swap(i, j int) {
	q.boxes[i], q.boxes[j] = q.boxes[j], q.boxes[i]
	q.keys[i], q.keys[j] = q.keys[j], q.keys[i]
}

// windowPairs intersects the two tracks' segment lists with [lo, hi]
// and yields every overlapping (segment, segment) window with the
// combined constraint system, calling fn on each. fn returns false to
// stop early.
func windowPairs(a, b *Track, lo, hi float64, fn func(cons []ball, w0, w1 float64) bool) {
	for _, sa := range a.segments() {
		for _, sb := range b.segments() {
			w0 := math.Max(math.Max(sa.t0, sb.t0), lo)
			w1 := math.Min(math.Min(sa.t1, sb.t1), hi)
			if !(w0 <= w1) {
				continue
			}
			cons := make([]ball, 0, len(sa.cons)+len(sb.cons))
			cons = append(cons, sa.cons...)
			cons = append(cons, sb.cons...)
			if !fn(cons, w0, w1) {
				return
			}
		}
	}
}

// Alibi is the oracle's take on the alibi query: could the two tracks'
// objects have met during [lo, hi]? It does the dumbest correct thing —
// every segment pair, full branch-and-bound on each.
func (o *Oracle) Alibi(a, b *Track, lo, hi float64) Verdict {
	out := Impossible
	windowPairs(a, b, lo, hi, func(cons []ball, w0, w1 float64) bool {
		switch o.feasible(cons, w0, w1) {
		case Possible:
			out = Possible
			return false
		case Unresolved:
			out = Unresolved
		}
		return true
	})
	return out
}

// PossiblyWithin is the oracle's take on the range question: could the
// track's object have been within dist of q at some point in [lo, hi]?
func (o *Oracle) PossiblyWithin(tr *Track, q geom.Vec, dist, lo, hi float64) Verdict {
	qb := ball{c: q.Clone(), ra: 0, rb: dist}
	out := Impossible
	for _, s := range tr.segments() {
		w0 := math.Max(s.t0, lo)
		w1 := math.Min(s.t1, hi)
		if !(w0 <= w1) {
			continue
		}
		cons := make([]ball, 0, len(s.cons)+1)
		cons = append(cons, s.cons...)
		cons = append(cons, qb)
		switch o.feasible(cons, w0, w1) {
		case Possible:
			return Possible
		case Unresolved:
			out = Unresolved
		}
	}
	return out
}
