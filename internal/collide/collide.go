// Package collide implements proximity/collision discovery — the paper's
// Section 2 names "collision discovery" as a central MOD application.
// Given a moving object database, a radius r and a window [lo, hi], it
// reports every pair of objects that comes within distance r, with the
// exact time intervals of each encounter.
//
// The computation is two-phase:
//
//   - broad phase: time is cut into slabs; each object's swept extent per
//     slab (an axis-aligned box around its piecewise-linear motion) is
//     indexed in an R-tree (internal/rtree), and only box-overlapping
//     pairs survive — O(N log N) per slab instead of all N^2 pairs;
//   - narrow phase: for each candidate pair the squared-distance curve
//     (a piecewise quadratic, internal/gdist) is compared against r^2 by
//     exact root finding, yielding the encounter intervals.
//
// The narrow phase is exact; the broad phase is conservative (a box
// overlap is necessary for an encounter within the slab), so no
// encounter is missed.
package collide

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cql"
	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/poly"
	"repro/internal/rtree"
	"repro/internal/trajectory"
)

// Encounter is one proximity event: the pair was within the radius
// during each span.
type Encounter struct {
	A, B  mod.OID // A < B
	Spans []cql.Span
}

// Config tunes detection.
type Config struct {
	// Radius is the proximity threshold (Euclidean).
	Radius float64
	// SlabDuration is the broad-phase time-slab length; 0 picks
	// (hi-lo)/8.
	SlabDuration float64
	// Fanout configures the R-tree.
	Fanout int
}

// Stats reports the work split between phases.
type Stats struct {
	Slabs          int
	CandidatePairs int // pairs surviving the broad phase (deduplicated)
	CheckedPairs   int // narrow-phase curve comparisons
	Encounters     int
}

// Detect finds all encounters within [lo, hi].
func Detect(db *mod.DB, cfg Config, lo, hi float64) ([]Encounter, Stats, error) {
	var st Stats
	if cfg.Radius <= 0 {
		return nil, st, errors.New("collide: radius must be positive")
	}
	if !(lo < hi) {
		return nil, st, fmt.Errorf("collide: bad window [%g,%g]", lo, hi)
	}
	slab := cfg.SlabDuration
	if slab <= 0 {
		slab = (hi - lo) / 8
	}
	trajs := db.Trajectories()
	type pairKey struct{ a, b mod.OID }
	candidates := map[pairKey]bool{}
	for s := lo; s < hi; s += slab {
		e := math.Min(s+slab, hi)
		items, err := sweptBoxes(trajs, s, e, cfg.Radius/2)
		if err != nil {
			return nil, st, err
		}
		st.Slabs++
		if err := broadPhase(items, db.Dim(), cfg.Fanout, func(a, b uint64) {
			k := pairKey{mod.OID(a), mod.OID(b)}
			if k.a > k.b {
				k.a, k.b = k.b, k.a
			}
			candidates[k] = true
		}); err != nil {
			return nil, st, err
		}
	}
	st.CandidatePairs = len(candidates)
	keys := make([]pairKey, 0, len(candidates))
	for k := range candidates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	var out []Encounter
	r2 := cfg.Radius * cfg.Radius
	for _, k := range keys {
		st.CheckedPairs++
		spans, err := encounterSpans(trajs[k.a], trajs[k.b], r2, lo, hi)
		if err != nil {
			return nil, st, err
		}
		if len(spans) > 0 {
			out = append(out, Encounter{A: k.a, B: k.b, Spans: spans})
			st.Encounters++
		}
	}
	return out, st, nil
}

// sweptBoxes computes, per live object, the center of its swept
// axis-aligned extent over [s, e] expanded by pad, as an R-tree point
// with the box radius folded into the broad-phase distance test.
//
// We index box centers and keep the max half-extent; two objects can
// only meet when their centers are within (halfA + halfB + radius), so a
// radius search with the global maximum half-extent is conservative.
func sweptBoxes(trajs map[mod.OID]trajectory.Trajectory, s, e, pad float64) ([]boxItem, error) {
	var items []boxItem
	for o, tr := range trajs {
		if !tr.IsDefined() || tr.End() <= s || tr.Start() >= e {
			continue
		}
		a := math.Max(tr.Start(), s)
		b := math.Min(tr.End(), e)
		lo := tr.MustAt(a).Clone()
		hi := tr.MustAt(a).Clone()
		extend := func(p geom.Vec) {
			for i := range p {
				if p[i] < lo[i] {
					lo[i] = p[i]
				}
				if p[i] > hi[i] {
					hi[i] = p[i]
				}
			}
		}
		extend(tr.MustAt(b))
		for _, brk := range tr.Breaks() {
			if brk > a && brk < b {
				extend(tr.MustAt(brk))
			}
		}
		center := lo.Lerp(hi, 0.5)
		half := 0.0
		for i := range lo {
			half = math.Max(half, (hi[i]-lo[i])/2)
		}
		items = append(items, boxItem{oid: uint64(o), center: center, half: half + pad})
	}
	return items, nil
}

type boxItem struct {
	oid    uint64
	center geom.Vec
	half   float64
}

// broadPhase reports all pairs whose conservative extents can touch.
func broadPhase(items []boxItem, dim, fanout int, emit func(a, b uint64)) error {
	if len(items) < 2 {
		return nil
	}
	pts := make([]rtree.Item, len(items))
	maxHalf := 0.0
	for i, it := range items {
		pts[i] = rtree.Item{ID: it.oid, P: it.center}
		if it.half > maxHalf {
			maxHalf = it.half
		}
	}
	tree, err := rtree.Bulk(pts, dim, fanout)
	if err != nil {
		return err
	}
	// Centers within halfA + halfB can touch; bound by 2*maxHalf and
	// refine per pair. The sqrt(dim) factor covers corner-to-corner
	// box contact in the L2 center distance.
	slack := 2 * maxHalf * math.Sqrt(float64(dim))
	for _, it := range items {
		for _, hit := range tree.SearchRadius(it.center, slack) {
			if hit.ID <= it.oid {
				continue
			}
			emit(it.oid, hit.ID)
		}
	}
	return nil
}

// encounterSpans solves dist^2(a, b) <= r2 exactly over the window.
func encounterSpans(a, b trajectory.Trajectory, r2, lo, hi float64) ([]cql.Span, error) {
	if !a.IsDefined() || !b.IsDefined() {
		return nil, nil
	}
	d := gdist.EuclideanSq{Query: b}
	curve, err := d.Curve(a, lo, hi)
	if err != nil {
		if errors.Is(err, gdist.ErrWindow) {
			return nil, nil
		}
		return nil, err
	}
	clo, chi := curve.Domain()
	set, err := cql.SolvePiecewiseLE(curve.AddPoly(negPoly(r2)), clo, chi)
	if err != nil {
		return nil, err
	}
	return set.Spans(), nil
}

// negPoly builds the constant polynomial -c.
func negPoly(c float64) poly.Poly { return poly.Constant(-c) }
