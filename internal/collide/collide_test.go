package collide

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

func TestDetectHeadOnPass(t *testing.T) {
	db := mod.NewDB(2, -1)
	// Two objects passing each other on parallel tracks 6 apart: with
	// radius 10, they are within range while |dx| <= 8 (6-8-10 triangle).
	must(t, db.Load(1, trajectory.Linear(0, geom.Of(1, 0), geom.Of(-50, 0))))
	must(t, db.Load(2, trajectory.Linear(0, geom.Of(-1, 0), geom.Of(50, 6))))
	enc, st, err := Detect(db, Config{Radius: 10}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 1 || enc[0].A != 1 || enc[0].B != 2 {
		t.Fatalf("encounters %+v", enc)
	}
	// Closing speed 2; |dx(t)| = |100 - 2t|; within when |dx| <= 8:
	// t in [46, 54].
	sp := enc[0].Spans
	if len(sp) != 1 || math.Abs(sp[0].Lo-46) > 1e-7 || math.Abs(sp[0].Hi-54) > 1e-7 {
		t.Errorf("spans %v, want [46,54]", sp)
	}
	if st.Encounters != 1 || st.Slabs == 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestDetectMissesNothingVsBruteForce(t *testing.T) {
	db, err := workload.RandomMovers(workload.Config{Seed: 17, N: 60, Extent: 300, MaxSpeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	const radius, lo, hi = 25.0, 0.0, 60.0
	enc, st, err := Detect(db, Config{Radius: radius}, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: exact narrow phase on every pair.
	trajs := db.Trajectories()
	oids := db.Objects()
	type key struct{ a, b mod.OID }
	want := map[key][]float64{} // pair -> flattened span bounds
	for i := 0; i < len(oids); i++ {
		for j := i + 1; j < len(oids); j++ {
			spans, err := encounterSpans(trajs[oids[i]], trajs[oids[j]], radius*radius, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if len(spans) > 0 {
				var flat []float64
				for _, s := range spans {
					flat = append(flat, s.Lo, s.Hi)
				}
				want[key{oids[i], oids[j]}] = flat
			}
		}
	}
	got := map[key][]float64{}
	for _, e := range enc {
		var flat []float64
		for _, s := range e.Spans {
			flat = append(flat, s.Lo, s.Hi)
		}
		got[key{e.A, e.B}] = flat
	}
	if len(got) != len(want) {
		t.Fatalf("encounter pairs: %d vs brute %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("missed pair %v", k)
		}
		if len(g) != len(w) {
			t.Fatalf("pair %v spans %v vs %v", k, g, w)
		}
		for i := range w {
			if math.Abs(g[i]-w[i]) > 1e-7 {
				t.Fatalf("pair %v spans %v vs %v", k, g, w)
			}
		}
	}
	// The broad phase must actually prune on a dispersed workload.
	allPairs := len(oids) * (len(oids) - 1) / 2
	if st.CandidatePairs >= allPairs {
		t.Errorf("no pruning: %d candidates of %d pairs", st.CandidatePairs, allPairs)
	}
}

func TestDetectWithChurnAndTurns(t *testing.T) {
	db := mod.NewDB(2, -1)
	// o1 turns toward o2 and then away; o3 exists only briefly.
	tr1 := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	tr1b, err := tr1.ChDir(10, geom.Of(0, 1))
	must(t, err)
	must(t, db.Load(1, tr1b))
	must(t, db.Load(2, trajectory.Stationary(0, geom.Of(10, 20))))
	short := trajectory.Linear(0, geom.Of(0, 0), geom.Of(10, 18))
	shortEnd, err := short.Terminate(5)
	must(t, err)
	must(t, db.Load(3, shortEnd))
	enc, _, err := Detect(db, Config{Radius: 5}, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]mod.OID]bool{}
	for _, e := range enc {
		found[[2]mod.OID{e.A, e.B}] = true
	}
	// o1 reaches (10, y) climbing toward o2 at (10,20): encounter when
	// y >= 15, i.e. t >= 25. And o2-o3 are 2 apart during [0,5].
	if !found[[2]mod.OID{1, 2}] {
		t.Errorf("missed o1-o2 encounter: %+v", enc)
	}
	if !found[[2]mod.OID{2, 3}] {
		t.Errorf("missed o2-o3 encounter: %+v", enc)
	}
	// o1 never gets near o3 before o3 terminates.
	if found[[2]mod.OID{1, 3}] {
		t.Errorf("phantom o1-o3 encounter: %+v", enc)
	}
}

func TestDetectValidation(t *testing.T) {
	db := mod.NewDB(2, -1)
	if _, _, err := Detect(db, Config{Radius: 0}, 0, 10); err == nil {
		t.Error("zero radius accepted")
	}
	if _, _, err := Detect(db, Config{Radius: 1}, 10, 0); err == nil {
		t.Error("inverted window accepted")
	}
	// Empty database: no encounters, no error.
	enc, _, err := Detect(db, Config{Radius: 1}, 0, 10)
	if err != nil || len(enc) != 0 {
		t.Errorf("empty db: %v %v", enc, err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDetect(b *testing.B) {
	db, err := workload.RandomMovers(workload.Config{Seed: 2, N: 500, Extent: 2000, MaxSpeed: 10})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	_ = rng
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Detect(db, Config{Radius: 30}, 0, 50); err != nil {
			b.Fatal(err)
		}
	}
}
