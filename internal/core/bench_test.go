package core

import (
	"fmt"
	"testing"

	"repro/internal/piecewise"
	"repro/internal/poly"
)

// zigzagCurve builds a triangular wave for mover i: period 16+i,
// amplitude amp, vertical offset i*1e-3 to break exact multi-way ties.
// Distinct periods make every pair of movers cross repeatedly across the
// whole domain, so the sweep keeps processing swap events at a steady
// rate no matter how far it advances.
func zigzagCurve(i int, amp, lo, hi float64) piecewise.Func {
	period := float64(16 + i)
	slope := 2 * amp / period
	off := float64(i) * 1e-3
	var pieces []piecewise.Piece
	for start := lo; start < hi; start += period {
		mid := start + period/2
		end := start + period
		if mid > hi {
			mid = hi
		}
		if end > hi {
			end = hi
		}
		// Rising edge: 0 -> amp over [start, mid].
		pieces = append(pieces, piecewise.Piece{
			Start: start, End: mid,
			P: poly.Linear(slope, off-slope*start),
		})
		if end > mid {
			// Falling edge: amp -> 0 over [mid, end].
			pieces = append(pieces, piecewise.Piece{
				Start: mid, End: end,
				P: poly.Linear(-slope, off+slope*end),
			})
		}
	}
	return piecewise.MustNew(pieces...)
}

func benchSweeper(b *testing.B, n int, horizon float64) *Sweeper {
	b.Helper()
	s := NewSweeper(Config{Start: 0, Horizon: horizon})
	for i := 0; i < n; i++ {
		if err := s.AddCurve(uint64(i+1), zigzagCurve(i, float64(n), 0, horizon)); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkAdvanceTo measures the steady-state sweep: n zigzag movers
// crossing continually, the clock advanced in small increments so every
// iteration processes a realistic trickle of swap events. ReportAllocs
// is the acceptance gate: after warmup (pair-diff cache, event queue and
// scratch storage at capacity) each advance must allocate nothing.
func BenchmarkAdvanceTo(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("movers=%d", n), func(b *testing.B) {
			const horizon = 1 << 14
			const step = 0.25
			s := benchSweeper(b, n, horizon)
			// Warm the caches past the initial growth phase.
			if err := s.AdvanceTo(64); err != nil {
				b.Fatal(err)
			}
			now := s.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += step
				if now >= horizon-1 {
					b.StopTimer()
					s = benchSweeper(b, n, horizon)
					if err := s.AdvanceTo(64); err != nil {
						b.Fatal(err)
					}
					now = s.Now() + step
					b.StartTimer()
				}
				if err := s.AdvanceTo(now); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.Stats().Swaps)/float64(b.N), "swaps/op")
		})
	}
}

// BenchmarkSchedulePair isolates the adjacency re-scheduling primitive:
// one pair re-queried at an advancing time, exactly as the sweep does
// after each swap. Steady state must be allocation-free — the pair-diff
// cache answers every repeat query from recycled storage.
func BenchmarkSchedulePair(b *testing.B) {
	const horizon = 1 << 14
	s := benchSweeper(b, 2, horizon)
	after := 1.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.schedulePair(1, 2, after)
		after += 0.25
		if after >= horizon-1 {
			after = 1.0
		}
	}
}
