package core
