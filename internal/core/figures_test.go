package core

// Golden reproductions of the paper's Figure 2 and Figure 3 / Example 12
// scenarios, with curves constructed to match the figures' qualitative
// geometry and the exact event times the paper narrates (8, 10, 17, the
// update at 20, the cancelled 24, and 31).

import (
	"math"
	"testing"

	"repro/internal/piecewise"
	"repro/internal/poly"
)

// TestFigure2Scenario reproduces Figure 2: two objects whose g-distance
// curves would cross at time D; o1 changes course at time A (cancelling
// the crossing at D), then o2 changes course at time B making them cross
// at an earlier time C.
func TestFigure2Scenario(t *testing.T) {
	var swaps []float64
	s := NewSweeper(Config{Start: 0, Horizon: 100, Audit: true, OnChange: func(c Change) {
		if c.Kind == ChangeSwap {
			swaps = append(swaps, c.T)
		}
	}})
	// o2 closer (lower curve), o1 above, converging: cross at D = 30.
	o1 := piecewise.FromPoly(poly.Linear(-1, 40), 0, 100) // 40 - t
	o2 := piecewise.FromPoly(poly.Constant(10), 0, 100)
	mustAdd(t, s, 1, o1)
	mustAdd(t, s, 2, o2)

	// Before D, at time A = 10, o1 changes direction: now level at 30.
	if err := s.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	o1b := piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 10, P: poly.Linear(-1, 40)},
		piecewise.Piece{Start: 10, End: 100, P: poly.Constant(30)},
	)
	if err := s.ReplaceCurve(1, o1b); err != nil {
		t.Fatal(err)
	}

	// At time B = 14, o2 changes course and climbs steeply: crossing at
	// C = (30-10)/5 + 14 = 18, earlier than the original D = 30.
	if err := s.AdvanceTo(14); err != nil {
		t.Fatal(err)
	}
	o2b := piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 14, P: poly.Constant(10)},
		piecewise.Piece{Start: 14, End: 100, P: poly.Linear(5, -60)}, // 10 + 5(t-14)
	)
	if err := s.ReplaceCurve(2, o2b); err != nil {
		t.Fatal(err)
	}

	if err := s.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	// Exactly one exchange, at C = 18 (not D = 30).
	if len(swaps) != 1 || math.Abs(swaps[0]-18) > 1e-9 {
		t.Fatalf("swaps = %v, want exactly one at 18", swaps)
	}
	if got := s.Order(); got[0] != 1 || got[1] != 2 {
		t.Fatalf("final order %v, want o1 closer after C", got)
	}
}

// figure3Curves builds the four g-distance curves of Figure 3 with the
// paper's event times: (o3,o4) at 8 and 17, (o1,o2) at 10, (o2,o3) at 31,
// and — once o1 and o3 become neighbors — (o1,o3) at 24, which the update
// at time 20 replaces with an earlier crossing.
func figure3Curves() map[uint64]piecewise.Func {
	const hi = 40.0
	f4 := piecewise.FromPoly(poly.Constant(10), 0, hi)
	// f3 = f4 + 0.2 (t-8)(t-17) = 0.2 t^2 - 5 t + 37.2
	f3 := piecewise.FromPoly(poly.New(37.2, -5, 0.2), 0, hi)
	// f2 = t + 43.4 crosses f3 exactly at t = 31.
	f2 := piecewise.FromPoly(poly.New(43.4, 1), 0, hi)
	// f1 = -1.5 t + 68.4 crosses f2 at 10 and (absent updates) f3 at 24.
	f1 := piecewise.FromPoly(poly.New(68.4, -1.5), 0, hi)
	return map[uint64]piecewise.Func{1: f1, 2: f2, 3: f3, 4: f4}
}

// TestExample12Trace replays Example 12 against the sweep and checks the
// full exchange timeline, including the update at time 20 that replaces
// o1's curve (the dashed line) and moves the (o1,o3) crossing from 24 to
// an earlier instant.
func TestExample12Trace(t *testing.T) {
	var log []Change
	s := NewSweeper(Config{Start: 0, Horizon: 40, Audit: true, OnChange: func(c Change) {
		log = append(log, c)
	}})
	for id, f := range figure3Curves() {
		mustAdd(t, s, id, f)
	}
	// Initial ordering o4 < o3 < o2 < o1 (paper: "the ordering is
	// o4 < o3 < o2 < o1").
	want := []uint64{4, 3, 2, 1}
	got := s.Order()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("initial order %v, want %v", got, want)
		}
	}
	// 2-NN answer up to time 3 is {o3, o4}.
	if err := s.AdvanceTo(3); err != nil {
		t.Fatal(err)
	}
	top2 := s.FirstK(2)
	if !(top2[0] == 4 && top2[1] == 3) {
		t.Fatalf("2-NN at t=3 = %v, want [4 3]", top2)
	}

	// The update arrives at 20: process events at 8, 10, 17 first.
	if err := s.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	var swapTimes []float64
	for _, c := range log {
		if c.Kind == ChangeSwap {
			swapTimes = append(swapTimes, c.T)
		}
	}
	wantSwaps := []float64{8, 10, 17}
	if len(swapTimes) != len(wantSwaps) {
		t.Fatalf("swap times before update: %v, want %v", swapTimes, wantSwaps)
	}
	for i := range wantSwaps {
		if math.Abs(swapTimes[i]-wantSwaps[i]) > 1e-7 {
			t.Fatalf("swap times before update: %v, want %v", swapTimes, wantSwaps)
		}
	}
	// After 8, 10, 17 the order is o4 < o3 < o1 < o2; o1 and o3 are
	// neighbors so the intersection at 24 is pending (paper's narration).
	got = s.Order()
	want = []uint64{4, 3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order at 20: %v, want %v", got, want)
		}
	}

	// The update changes o1's curve to the dashed line: from its value
	// 38.4 at t=20 it descends at slope -3, crossing o3 at
	// (10+sqrt(1324))/2 ~ 23.193 — earlier than the cancelled 24.
	dashed := piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 20, P: poly.New(68.4, -1.5)},
		piecewise.Piece{Start: 20, End: 40, P: poly.New(98.4, -3)},
	)
	if err := s.ReplaceCurve(1, dashed); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(40); err != nil {
		t.Fatal(err)
	}
	swapTimes = swapTimes[:0]
	for _, c := range log {
		if c.Kind == ChangeSwap {
			swapTimes = append(swapTimes, c.T)
		}
	}
	tC := (10 + math.Sqrt(1324)) / 2 // ~23.1934: the new (o1,o3) crossing
	tD := 88.4 / 3                   // ~29.4667: o1 then crosses o4
	wantSwaps = []float64{8, 10, 17, tC, tD, 31}
	if len(swapTimes) != len(wantSwaps) {
		t.Fatalf("full swap times: %v, want %v", swapTimes, wantSwaps)
	}
	for i := range wantSwaps {
		if math.Abs(swapTimes[i]-wantSwaps[i]) > 1e-6 {
			t.Fatalf("full swap times: %v, want %v", swapTimes, wantSwaps)
		}
	}
	// No swap at the cancelled 24.
	for _, st := range swapTimes {
		if math.Abs(st-24) < 1e-3 {
			t.Fatalf("cancelled intersection at 24 still fired: %v", swapTimes)
		}
	}
	// Final order: o1 < o4 < o2 < o3.
	got = s.Order()
	want = []uint64{1, 4, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final order %v, want %v", got, want)
		}
	}
	// Queue length never exceeded N (Lemma 9).
	if st := s.Stats(); st.MaxQueueLen > 4 {
		t.Errorf("queue length %d exceeded N=4", st.MaxQueueLen)
	}
}

// TestLemma7EqualPrecedesSwap asserts the property underlying Lemma 7 on
// the change stream: every completed exchange is announced by an equality
// of the same (then-adjacent) pair at the same instant.
func TestLemma7EqualPrecedesSwap(t *testing.T) {
	var log []Change
	s := NewSweeper(Config{Start: 0, Horizon: 40, Audit: true, OnChange: func(c Change) {
		log = append(log, c)
	}})
	for id, f := range figure3Curves() {
		mustAdd(t, s, id, f)
	}
	if err := s.AdvanceTo(40); err != nil {
		t.Fatal(err)
	}
	for i, c := range log {
		if c.Kind != ChangeSwap {
			continue
		}
		if i == 0 {
			t.Fatalf("swap %v with no preceding change", c)
		}
		prev := log[i-1]
		if !(prev.Kind == ChangeEqual || prev.Kind == ChangeSeparate) ||
			prev.T != c.T || prev.A != c.A || prev.B != c.B {
			t.Errorf("swap %v not announced by matching equal/separate (prev %v)", c, prev)
		}
	}
}
