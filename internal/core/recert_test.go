package core

import (
	"math"
	"testing"

	"repro/internal/piecewise"
	"repro/internal/poly"
)

// step builds a piecewise-constant curve jumping between values at the
// given times: values[i] holds on [times[i], times[i+1]].
func step(times []float64, values []float64) piecewise.Func {
	var pieces []piecewise.Piece
	for i, v := range values {
		pieces = append(pieces, piecewise.Piece{
			Start: times[i], End: times[i+1], P: poly.Constant(v),
		})
	}
	return piecewise.MustNew(pieces...)
}

// TestRecertifyJumpOverNeighbor covers the paper's relaxed g-distances
// (finitely many continuous pieces): a curve that jumps over a neighbor
// without ever intersecting it must still end up correctly ordered.
func TestRecertifyJumpOverNeighbor(t *testing.T) {
	var log []Change
	s := NewSweeper(Config{Start: 0, Horizon: 100, OnChange: func(c Change) {
		log = append(log, c)
	}})
	// id1 sits at 1 until t=10, then jumps to 9 (no crossing of id2=5).
	mustAdd(t, s, 1, step([]float64{0, 10, 100}, []float64{1, 9}))
	mustAdd(t, s, 2, piecewise.FromPoly(poly.Constant(5), 0, 100))
	if got := s.Order(); got[0] != 1 {
		t.Fatalf("initial order %v", got)
	}
	if err := s.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("order after jump %v, want [2 1]", got)
	}
	if err := s.AuditOrder(); err != nil {
		t.Fatal(err)
	}
	// The recertification shows up as a Remove/Insert pair at t=10.
	var sawRemove, sawInsert bool
	for _, c := range log {
		if c.T == 10 && c.A == 1 {
			if c.Kind == ChangeRemove {
				sawRemove = true
			}
			if c.Kind == ChangeInsert {
				sawInsert = true
			}
		}
	}
	if !sawRemove || !sawInsert {
		t.Errorf("recert changes missing: %v", log)
	}
}

func TestRecertifyMultipleJumps(t *testing.T) {
	s := NewSweeper(Config{Start: 0, Horizon: 100, Audit: true})
	// Square-wave curve bouncing across two constants.
	mustAdd(t, s, 1, step([]float64{0, 10, 20, 30, 100}, []float64{0, 6, 0, 6}))
	mustAdd(t, s, 2, piecewise.FromPoly(poly.Constant(2), 0, 100))
	mustAdd(t, s, 3, piecewise.FromPoly(poly.Constant(4), 0, 100))
	wantAt := func(tt float64, want []uint64) {
		t.Helper()
		if err := s.AdvanceTo(tt); err != nil {
			t.Fatal(err)
		}
		got := s.Order()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("t=%g: order %v, want %v", tt, got, want)
			}
		}
	}
	wantAt(5, []uint64{1, 2, 3})
	wantAt(15, []uint64{2, 3, 1})
	wantAt(25, []uint64{1, 2, 3})
	wantAt(35, []uint64{2, 3, 1})
}

// TestRecertifyMixedWithCrossings mixes a discontinuous curve with a
// moving continuous one: crossings on the continuous stretches and jumps
// at the discontinuities must interleave correctly.
func TestRecertifyMixedWithCrossings(t *testing.T) {
	s := NewSweeper(Config{Start: 0, Horizon: 100, Audit: true})
	// id1: rises 0..20 on [0,10] (crosses id2=5 at t=5), jumps down to 1
	// at t=10 (back below), then rises again (crosses at t=14).
	f1 := piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 10, P: poly.Linear(2, 0)},
		piecewise.Piece{Start: 10, End: 100, P: poly.Linear(1, -9)},
	)
	mustAdd(t, s, 1, f1)
	mustAdd(t, s, 2, piecewise.FromPoly(poly.Constant(5), 0, 100))
	if err := s.AdvanceTo(7); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 2 {
		t.Fatalf("after first crossing: %v", got)
	}
	if err := s.AdvanceTo(12); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 1 {
		t.Fatalf("after jump back down: %v", got)
	}
	if err := s.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 2 {
		t.Fatalf("after second crossing: %v", got)
	}
	if st := s.Stats(); st.Swaps < 2 {
		t.Errorf("swaps = %d, want >= 2", st.Swaps)
	}
}

func TestContinuousCurveHasNoRecertEvents(t *testing.T) {
	f := piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 10, P: poly.Linear(1, 0)},
		piecewise.Piece{Start: 10, End: 100, P: poly.Linear(-1, 20)},
	)
	if ds := f.Discontinuities(0, 100); len(ds) != 0 {
		t.Fatalf("continuous curve reports discontinuities: %v", ds)
	}
	g := step([]float64{0, 50, 100}, []float64{1, 2})
	ds := g.Discontinuities(0, 100)
	if len(ds) != 1 || math.Abs(ds[0]-50) > 1e-12 {
		t.Fatalf("Discontinuities = %v, want [50]", ds)
	}
	if ds := g.Discontinuities(50, 100); len(ds) != 0 {
		t.Fatalf("window-excluded discontinuity reported: %v", ds)
	}
}
