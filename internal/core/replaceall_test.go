package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/piecewise"
	"repro/internal/poly"
)

func TestReplaceAll(t *testing.T) {
	s := newTestSweeper(t, nil)
	// Two diverging lines...
	mustAdd(t, s, 1, lineCurve(0, 0))
	mustAdd(t, s, 2, lineCurve(1, 5))
	if err := s.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	// Replace both curves preserving values at t=10 (the Theorem 10
	// contract): id1 stays 0 -> rises steeply; id2 at 15 -> falls.
	repl := map[uint64]piecewise.Func{
		1: piecewise.MustNew(
			piecewise.Piece{Start: 0, End: 10, P: poly.Constant(0)},
			piecewise.Piece{Start: 10, End: 1000, P: poly.Linear(3, -30)},
		),
		2: piecewise.MustNew(
			piecewise.Piece{Start: 0, End: 10, P: poly.Linear(1, 5)},
			piecewise.Piece{Start: 10, End: 1000, P: poly.Linear(-1, 25)},
		),
	}
	if err := s.ReplaceAll(repl); err != nil {
		t.Fatal(err)
	}
	// New crossing: 3t-30 = 25-t => t = 13.75.
	if err := s.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("order after replaced-curve crossing: %v", got)
	}
	if st := s.Stats(); st.Swaps != 1 {
		t.Errorf("swaps = %d, want 1", st.Swaps)
	}
}

func TestReplaceAllValidation(t *testing.T) {
	s := newTestSweeper(t, nil)
	mustAdd(t, s, 1, lineCurve(0, 0))
	mustAdd(t, s, 2, lineCurve(0, 5))
	// Wrong cardinality.
	if err := s.ReplaceAll(map[uint64]piecewise.Func{1: lineCurve(0, 0)}); err == nil {
		t.Error("short replacement set accepted")
	}
	// Unknown id.
	if err := s.ReplaceAll(map[uint64]piecewise.Func{
		1: lineCurve(0, 0), 9: lineCurve(0, 1),
	}); err == nil {
		t.Error("unknown id accepted")
	}
	// Curve not covering now.
	if err := s.ReplaceAll(map[uint64]piecewise.Func{
		1: lineCurve(0, 0),
		2: piecewise.FromPoly(poly.Constant(1), 50, 90),
	}); err == nil {
		t.Error("non-covering curve accepted")
	}
}

func TestWalkStopsEarly(t *testing.T) {
	s := newTestSweeper(t, nil)
	for i := uint64(1); i <= 5; i++ {
		mustAdd(t, s, i, lineCurve(0, float64(i)))
	}
	var visited []uint64
	s.Walk(func(id uint64) bool {
		visited = append(visited, id)
		return len(visited) < 3
	})
	if len(visited) != 3 || visited[0] != 1 || visited[2] != 3 {
		t.Errorf("visited = %v", visited)
	}
}

func TestChangeAndKindStrings(t *testing.T) {
	for k := ChangeEqual; k <= ChangeExpire; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if ChangeKind(99).String() != "unknown" {
		t.Error("out-of-range kind")
	}
	pair := Change{T: 5, Kind: ChangeSwap, A: 1, B: 2}
	if got := pair.String(); !strings.Contains(got, "swap(1,2)") {
		t.Errorf("pair String = %q", got)
	}
	un := Change{T: 5, Kind: ChangeInsert, A: 7}
	if got := un.String(); !strings.Contains(got, "insert(7)") {
		t.Errorf("unary String = %q", got)
	}
}

func TestUnboundedHorizon(t *testing.T) {
	s := NewSweeper(Config{Start: 0}) // horizon defaults to +Inf
	if !math.IsInf(s.Horizon(), 1) {
		t.Fatalf("horizon = %g", s.Horizon())
	}
	mustAdd(t, s, 1, piecewise.FromPoly(poly.Linear(1, 0), 0, math.Inf(1)))
	mustAdd(t, s, 2, piecewise.FromPoly(poly.Linear(-1, 100), 0, math.Inf(1)))
	if err := s.AdvanceTo(1e6); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 2 {
		t.Fatalf("order %v", got)
	}
}

func TestEqualValueInsertOrdersBySignAfter(t *testing.T) {
	// Insert a curve exactly equal to an existing one at the insertion
	// instant but diverging below: it must be placed first.
	s := newTestSweeper(t, nil)
	mustAdd(t, s, 1, lineCurve(0, 5))
	if err := s.AdvanceTo(2); err != nil {
		t.Fatal(err)
	}
	// id 2 has value 5 at t=2 but falls below immediately after.
	mustAdd(t, s, 2, piecewise.FromPoly(poly.Linear(-1, 7), 0, 1000))
	if got := s.Order(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("order %v, want the falling curve first", got)
	}
	if err := s.AuditOrder(); err != nil {
		t.Fatal(err)
	}
}
