// Package core implements the paper's primary contribution: the
// plane-sweep query evaluation technique of Section 5.
//
// The Sweeper maintains, for a set of generalized-distance curves, the
// precedence relation <=_t (Definition 7) as a kinetic sorted list
// together with the event queue of pending adjacent-pair intersections
// (Lemma 7 guarantees curves become adjacent before they cross; Lemma 9's
// discipline keeps at most one event per adjacency, bounding the queue by
// N). Time only moves forward; AdvanceTo processes all intersection
// events up to the requested instant, emitting a stream of support
// changes which the query layer (internal/query) folds into answers.
//
// The cost model matches the paper's:
//
//   - building the initial order: O(N log N)           (Theorem 5.1)
//   - each intersection event: O(log N)                (Lemma 9)
//   - past queries: O((m+N) log N) for m events        (Theorem 4)
//   - curve replacement (chdir): O(log N)              (Theorem 5.2)
//   - replacing every curve (query chdir): O(N)        (Theorem 10)
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/eventq"
	"repro/internal/order"
	"repro/internal/piecewise"
	"repro/internal/poly"
)

// ChangeKind classifies entries of the support-change stream.
type ChangeKind int

const (
	// ChangeEqual fires when two adjacent curves meet: A ≡_t B begins.
	// The order has not yet changed when the callback runs.
	ChangeEqual ChangeKind = iota
	// ChangeSwap fires after A and B exchanged positions (B now precedes
	// A); the list already reflects the new order.
	ChangeSwap
	// ChangeSeparate fires when a coincidence stretch ends without the
	// order flipping.
	ChangeSeparate
	// ChangeInsert fires after a curve was added to the order.
	ChangeInsert
	// ChangeRemove fires after a curve was removed.
	ChangeRemove
	// ChangeReplace fires after a curve was replaced in place (chdir).
	ChangeReplace
	// ChangeExpire fires after a curve left the sweep because its domain
	// ended (object termination inside the window).
	ChangeExpire
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case ChangeEqual:
		return "equal"
	case ChangeSwap:
		return "swap"
	case ChangeSeparate:
		return "separate"
	case ChangeInsert:
		return "insert"
	case ChangeRemove:
		return "remove"
	case ChangeReplace:
		return "replace"
	case ChangeExpire:
		return "expire"
	default:
		return "unknown"
	}
}

// AllCurves is the sentinel id carried by the ChangeReplace emitted from
// ReplaceAll (a chdir on the query trajectory replaces every curve).
const AllCurves uint64 = math.MaxUint64

// Change is one entry of the support-change stream. For pair kinds
// (Equal, Swap, Separate) A precedes B in the pre-event order; for unary
// kinds B is zero.
type Change struct {
	T    float64
	Kind ChangeKind
	A, B uint64
}

// String implements fmt.Stringer; used by golden trace tests.
func (c Change) String() string {
	switch c.Kind {
	case ChangeEqual, ChangeSwap, ChangeSeparate:
		return fmt.Sprintf("%g %s(%d,%d)", c.T, c.Kind, c.A, c.B)
	default:
		return fmt.Sprintf("%g %s(%d)", c.T, c.Kind, c.A)
	}
}

// Stats counts the work a sweep has performed.
type Stats struct {
	Events      int // intersection events processed
	Swaps       int // order exchanges
	Equals      int // meeting instants reported
	Coincides   int // coincidence stretches entered
	Expires     int // curves expired at domain end
	Inserts     int
	Removes     int
	Replaces    int
	Reschedules int // pair-event computations
	MaxQueueLen int
}

// Add accumulates o into s: counters add, MaxQueueLen takes the max.
// This is the canonical roll-up for concurrent sweeps — per-shard stats
// merge with it (internal/shard), and the observability layer
// (internal/obs) mirrors the same rule when per-shard histograms and
// high-water gauges combine. It is associative and commutative, so any
// grouping of partial roll-ups yields the same total.
func (s *Stats) Add(o Stats) {
	s.Events += o.Events
	s.Swaps += o.Swaps
	s.Equals += o.Equals
	s.Coincides += o.Coincides
	s.Expires += o.Expires
	s.Inserts += o.Inserts
	s.Removes += o.Removes
	s.Replaces += o.Replaces
	s.Reschedules += o.Reschedules
	if o.MaxQueueLen > s.MaxQueueLen {
		s.MaxQueueLen = o.MaxQueueLen
	}
}

// Config configures a Sweeper.
type Config struct {
	// Start is the initial sweep time.
	Start float64
	// Horizon bounds the sweep; events beyond it are not scheduled.
	// Zero means +Inf.
	Horizon float64
	// Queue supplies the event-queue implementation; nil uses the
	// indexed binary heap. (The leftist tree of Lemma 9 is the
	// alternative; see internal/eventq.)
	Queue eventq.Queue
	// OnChange receives the support-change stream in time order.
	OnChange func(Change)
	// Audit enables O(N) order verification after every event; for
	// tests.
	Audit bool
}

// pairKey identifies a cached adjacency difference curve, in stored
// (left, right) adjacency order.
type pairKey struct{ a, b uint64 }

// pairDiffEntry is one cached difference curve plus the curve
// generations it was built from (see Sweeper.gens).
type pairDiffEntry struct {
	d          piecewise.PairDiff
	genA, genB uint64
}

// Sweeper is the plane-sweep engine.
type Sweeper struct {
	now      float64
	horizon  float64
	curves   map[uint64]piecewise.Func
	list     *order.List
	queue    eventq.Queue
	expiry   *eventq.Heap // (endTime, id) pseudo-events keyed by id
	recert   *eventq.Heap // (jumpTime, id) re-certification pseudo-events
	onChange func(Change)
	audit    bool
	stats    Stats

	// Pair-difference cache: one materialized difference curve per
	// current adjacency (see piecewise.PairDiff), so re-scheduling the
	// same pair as the sweep advances allocates nothing. Entries are
	// released to the pool when their adjacency dissolves (swap, insert
	// between, removal) and their storage is recycled; gens stamps every
	// curve id with a generation bumped on any curve change, so a cache
	// entry built from an outdated curve can never be consulted.
	diffs    map[pairKey]*pairDiffEntry
	diffPool []*pairDiffEntry
	gens     map[uint64]uint64
}

// Errors returned by the sweeper.
var (
	ErrPast       = errors.New("core: time is in the past")
	ErrHorizon    = errors.New("core: beyond sweep horizon")
	ErrNotCovered = errors.New("core: curve does not cover the current time")
	ErrDuplicate  = errors.New("core: curve id already present")
	ErrMissing    = errors.New("core: curve id not present")
)

// NewSweeper builds an empty sweeper at cfg.Start.
func NewSweeper(cfg Config) *Sweeper {
	q := cfg.Queue
	if q == nil {
		q = eventq.NewHeap()
	}
	h := cfg.Horizon
	if h == 0 { //modlint:allow floatcmp -- unset-config sentinel: zero horizon means unbounded
		h = math.Inf(1)
	}
	return &Sweeper{
		now:      cfg.Start,
		horizon:  h,
		curves:   make(map[uint64]piecewise.Func),
		list:     order.NewList(),
		queue:    q,
		expiry:   eventq.NewHeap(),
		recert:   eventq.NewHeap(),
		onChange: cfg.OnChange,
		audit:    cfg.Audit,
		diffs:    make(map[pairKey]*pairDiffEntry),
		gens:     make(map[uint64]uint64),
	}
}

// diffSlack is the margin below the first query time from which a pair
// difference is materialized, chosen to exceed boundTol-scale piece
// lookup slack and the justBefore nudge at any magnitude, so the
// same-instant re-queries a swap cascade issues stay covered without a
// rebuild.
func diffSlack(t float64) float64 {
	return 2e-9 + 2*math.Abs(t)*1e-12
}

// pairDiff returns the cached difference curve of the adjacency (a, b),
// building or rebuilding it — into recycled storage — when absent,
// stale (either curve changed since the build) or not covering query
// times >= at.
func (s *Sweeper) pairDiff(a, b uint64, at float64) *piecewise.PairDiff {
	k := pairKey{a, b}
	ga, gb := s.gens[a], s.gens[b]
	e := s.diffs[k]
	if e != nil && e.genA == ga && e.genB == gb && e.d.Covers(at) {
		return &e.d
	}
	if e == nil {
		if n := len(s.diffPool); n > 0 {
			e, s.diffPool = s.diffPool[n-1], s.diffPool[:n-1]
		} else {
			e = new(pairDiffEntry)
		}
		s.diffs[k] = e
	}
	e.d.Reset(s.curves[a], s.curves[b], at-diffSlack(at))
	e.genA, e.genB = ga, gb
	return &e.d
}

// releaseDiff returns the cached difference of a dissolved adjacency to
// the pool for storage reuse.
func (s *Sweeper) releaseDiff(a, b uint64) {
	k := pairKey{a, b}
	if e, ok := s.diffs[k]; ok {
		delete(s.diffs, k)
		s.diffPool = append(s.diffPool, e)
	}
}

// Now returns the current sweep time.
func (s *Sweeper) Now() float64 { return s.now }

// Horizon returns the sweep horizon.
func (s *Sweeper) Horizon() float64 { return s.horizon }

// Len returns the number of curves currently in the order.
func (s *Sweeper) Len() int { return s.list.Len() }

// Stats returns a copy of the work counters.
func (s *Sweeper) Stats() Stats { return s.stats }

// QueueLen returns the current number of pending intersection events.
func (s *Sweeper) QueueLen() int { return s.queue.Len() }

// NextEventTime peeks the time of the earliest pending event without
// advancing the sweep. Between now and that instant the precedence
// order — and therefore every answer derived from it — is provably
// constant (events are the only points where adjacent curves cross),
// which is what lets a subscription registry leave an untouched
// subscription parked until its next event is due.
func (s *Sweeper) NextEventTime() (float64, bool) {
	ev, ok := s.queue.Peek()
	if !ok {
		return 0, false
	}
	return ev.T, true
}

// Curve returns the curve registered under id.
func (s *Sweeper) Curve(id uint64) (piecewise.Func, bool) {
	f, ok := s.curves[id]
	return f, ok
}

// Value evaluates id's curve at the current time.
func (s *Sweeper) Value(id uint64) (float64, error) {
	f, ok := s.curves[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrMissing, id)
	}
	return f.Eval(s.now), nil
}

// Order returns the ids in precedence order at the current time (O(N)).
func (s *Sweeper) Order() []uint64 { return s.list.Items() }

// Rank returns the 0-based rank of id in the precedence order.
func (s *Sweeper) Rank(id uint64) (int, error) { return s.list.Rank(id) }

// At returns the id at the given rank.
func (s *Sweeper) At(rank int) (uint64, bool) { return s.list.At(rank) }

// FirstK returns the k least entries — the k-NN set under a distance
// g-distance.
func (s *Sweeper) FirstK(k int) []uint64 { return s.list.FirstK(k) }

// Contains reports whether id is currently in the sweep.
func (s *Sweeper) Contains(id uint64) bool { return s.list.Contains(id) }

// emit sends a change to the subscriber and updates counters.
func (s *Sweeper) emit(c Change) {
	switch c.Kind {
	case ChangeEqual:
		s.stats.Equals++
	case ChangeSwap:
		s.stats.Swaps++
	case ChangeSeparate:
		// counted under Coincides at entry
	case ChangeInsert:
		s.stats.Inserts++
	case ChangeRemove:
		s.stats.Removes++
	case ChangeReplace:
		s.stats.Replaces++
	case ChangeExpire:
		s.stats.Expires++
	}
	if s.onChange != nil {
		s.onChange(c)
	}
}

// cmpAt builds the strict total order at time t: by curve value, then by
// the sign of the difference immediately after t (so entries inserted at
// a meeting instant land on the side they will occupy), then by id.
func (s *Sweeper) cmpAt(t float64) order.Cmp {
	return func(a, b uint64) int {
		fa, fb := s.curves[a], s.curves[b]
		va, vb := fa.Eval(t), fb.Eval(t)
		scale := math.Max(1, math.Max(math.Abs(va), math.Abs(vb)))
		if d := va - vb; math.Abs(d) > 1e-9*scale {
			if d < 0 {
				return -1
			}
			return 1
		}
		if sg := piecewise.SignDiffAfter(fa, fb, t); sg != 0 {
			return sg
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

// schedulePair computes and enqueues the next intersection event for the
// adjacency (a, b), searching times strictly greater than `after`.
// Existing events keyed by a are replaced.
func (s *Sweeper) schedulePair(a, b uint64, after float64) {
	s.stats.Reschedules++
	d := s.pairDiff(a, b, after)
	t, coincide, ok := d.FirstMeetingAfter(after, s.horizon)
	if ok && t <= s.now+1e-12*math.Max(1, math.Abs(s.now)) {
		// A meeting at the current instant (found through a justBefore
		// window during a same-time swap cascade). It is only an event
		// if the pair still has to cross: if (fa - fb) is already
		// negative just after, the crossing was completed by an earlier
		// swap in this batch — look strictly beyond it.
		if d.SignAfter(t) < 0 {
			t, coincide, ok = d.FirstMeetingAfter(t, s.horizon)
		}
	}
	if !ok {
		s.queue.RemoveByLeft(a)
		return
	}
	if coincide && t <= after {
		// Already coinciding: the interesting event is the separation.
		sep, found := d.CoincidenceEndAfter(after, s.horizon)
		if !found {
			s.queue.RemoveByLeft(a)
			return
		}
		t = math.Max(sep, after)
	}
	if t > s.horizon {
		s.queue.RemoveByLeft(a)
		return
	}
	s.queue.Push(eventq.Event{T: math.Max(t, s.now), Left: a, Right: b})
	if n := s.queue.Len(); n > s.stats.MaxQueueLen {
		s.stats.MaxQueueLen = n
	}
}

// rescheduleAround refreshes the adjacency events that involve id and its
// current neighbors: (prev(id), id) and (id, next(id)).
func (s *Sweeper) rescheduleAround(id uint64, after float64) {
	if prev, ok := s.list.Prev(id); ok {
		s.schedulePair(prev, id, after)
	}
	if next, ok := s.list.Next(id); ok {
		s.schedulePair(id, next, after)
	} else {
		s.queue.RemoveByLeft(id)
	}
}

// AddCurve inserts a curve whose domain covers the current time (or
// begins at it). Cost O(log N).
func (s *Sweeper) AddCurve(id uint64, f piecewise.Func) error {
	if s.list.Contains(id) {
		return fmt.Errorf("%w: %d", ErrDuplicate, id)
	}
	if !f.InDomain(s.now) {
		lo, hi := f.Domain()
		return fmt.Errorf("%w: id %d domain [%g,%g], now %g", ErrNotCovered, id, lo, hi, s.now)
	}
	s.curves[id] = f
	s.gens[id]++
	if err := s.list.Insert(id, s.cmpAt(s.now)); err != nil {
		delete(s.curves, id)
		return err
	}
	// The insertion splits an adjacency (prev, next): refresh all three.
	prev, hasPrev := s.list.Prev(id)
	next, hasNext := s.list.Next(id)
	if hasPrev && hasNext {
		s.releaseDiff(prev, next)
	}
	if hasPrev {
		s.schedulePair(prev, id, s.now)
	}
	if hasNext {
		s.schedulePair(id, next, s.now)
	}
	s.scheduleExpiry(id, f)
	s.emit(Change{T: s.now, Kind: ChangeInsert, A: id})
	s.checkAudit()
	return nil
}

// scheduleExpiry arms the domain-end pseudo-event for id.
func (s *Sweeper) scheduleExpiry(id uint64, f piecewise.Func) {
	_, hi := f.Domain()
	if !math.IsInf(hi, 1) && hi < s.horizon {
		s.expiry.Push(eventq.Event{T: hi, Left: id})
	} else {
		s.expiry.RemoveByLeft(id)
	}
	s.scheduleRecert(id, f, s.now)
}

// scheduleRecert arms the next re-certification pseudo-event for a curve
// with jump discontinuities (the paper's relaxation of g-distances to
// finitely many continuous pieces). At a jump the curve's position in the
// precedence relation is invalid and the entry is re-inserted.
func (s *Sweeper) scheduleRecert(id uint64, f piecewise.Func, after float64) {
	for _, d := range f.Discontinuities(after, s.horizon) {
		if d > after {
			s.recert.Push(eventq.Event{T: d, Left: id})
			return
		}
	}
	s.recert.RemoveByLeft(id)
}

// RemoveCurve removes id from the sweep (a terminate update, or an
// expiry). Cost O(log N).
func (s *Sweeper) RemoveCurve(id uint64) error {
	return s.removeCurve(id, ChangeRemove)
}

func (s *Sweeper) removeCurve(id uint64, kind ChangeKind) error {
	if !s.list.Contains(id) {
		return fmt.Errorf("%w: %d", ErrMissing, id)
	}
	prev, hasPrev := s.list.Prev(id)
	next, hasNext := s.list.Next(id)
	if hasPrev {
		s.releaseDiff(prev, id)
	}
	if hasNext {
		s.releaseDiff(id, next)
	}
	if err := s.list.Delete(id); err != nil {
		return err
	}
	delete(s.curves, id)
	s.gens[id]++
	s.queue.RemoveByLeft(id)
	s.expiry.RemoveByLeft(id)
	s.recert.RemoveByLeft(id)
	if hasPrev {
		if hasNext {
			s.schedulePair(prev, next, s.now)
		} else {
			s.queue.RemoveByLeft(prev)
		}
	}
	s.emit(Change{T: s.now, Kind: kind, A: id})
	s.checkAudit()
	return nil
}

// ReplaceCurve swaps in a new curve for id. In the chdir case old and new
// curves coincide at the current time, so the entry keeps its position
// and only the events involving id are recomputed (Section 5); cost
// O(log N). If the new curve's value differs at the current instant (a
// discontinuous g-distance jumping exactly at the update), the entry is
// repositioned instead, as at any other jump.
func (s *Sweeper) ReplaceCurve(id uint64, f piecewise.Func) error {
	if !s.list.Contains(id) {
		return fmt.Errorf("%w: %d", ErrMissing, id)
	}
	if !f.InDomain(s.now) {
		lo, hi := f.Domain()
		return fmt.Errorf("%w: id %d new domain [%g,%g], now %g", ErrNotCovered, id, lo, hi, s.now)
	}
	oldV := s.curves[id].Eval(s.now)
	newV := f.Eval(s.now)
	s.curves[id] = f
	s.gens[id]++
	scale := math.Max(1, math.Max(math.Abs(oldV), math.Abs(newV)))
	if math.Abs(newV-oldV) > 1e-9*scale {
		s.scheduleExpiry(id, f)
		return s.recertify(id, s.now)
	}
	s.rescheduleAround(id, s.now)
	s.scheduleExpiry(id, f)
	s.emit(Change{T: s.now, Kind: ChangeReplace, A: id})
	s.checkAudit()
	return nil
}

// ReplaceAll swaps every curve at once — the paper's Theorem 10 case of a
// chdir on the query trajectory: all g-distances change but the current
// precedence relation remains correct, so no re-sorting happens. All
// adjacency events are recomputed in O(N) total.
func (s *Sweeper) ReplaceAll(curves map[uint64]piecewise.Func) error {
	if len(curves) != s.list.Len() {
		return fmt.Errorf("core: ReplaceAll got %d curves, sweep has %d", len(curves), s.list.Len())
	}
	for id, f := range curves {
		if !s.list.Contains(id) {
			return fmt.Errorf("%w: %d", ErrMissing, id)
		}
		if !f.InDomain(s.now) {
			return fmt.Errorf("%w: id %d", ErrNotCovered, id)
		}
	}
	for id, f := range curves {
		s.curves[id] = f
		s.gens[id]++
		s.scheduleExpiry(id, f)
	}
	items := s.list.Items()
	for i := 0; i+1 < len(items); i++ {
		s.schedulePair(items[i], items[i+1], s.now)
	}
	if n := len(items); n > 0 {
		s.queue.RemoveByLeft(items[n-1])
	}
	s.emit(Change{T: s.now, Kind: ChangeReplace, A: AllCurves})
	s.checkAudit()
	return nil
}

// AdvanceTo processes all intersection and expiry events up to and
// including time t, then sets the sweep time to t. It is the paper's
// "process each event ahead of the update" loop.
func (s *Sweeper) AdvanceTo(t float64) error {
	if t < s.now {
		return fmt.Errorf("%w: advance to %g, now %g", ErrPast, t, s.now)
	}
	if t > s.horizon {
		return fmt.Errorf("%w: advance to %g, horizon %g", ErrHorizon, t, s.horizon)
	}
	for {
		ev, evOK := s.queue.Peek()
		ex, exOK := s.expiry.Peek()
		rc, rcOK := s.recert.Peek()
		next := math.Inf(1)
		if evOK {
			next = ev.T
		}
		if exOK && ex.T < next {
			next = ex.T
		}
		if rcOK && rc.T < next {
			next = rc.T
		}
		if next > t {
			s.now = t
			return nil
		}
		switch {
		case evOK && ev.T <= next:
			s.queue.Pop()
			s.processEvent(ev)
		case exOK && ex.T <= next:
			s.expiry.Pop()
			s.now = ex.T
			// The curve's domain ends here; drop it from the order.
			if s.list.Contains(ex.Left) {
				if err := s.removeCurve(ex.Left, ChangeExpire); err != nil {
					return err
				}
			}
		default:
			s.recert.Pop()
			if err := s.recertify(rc.Left, rc.T); err != nil {
				return err
			}
		}
	}
}

// processEvent handles one adjacency event per Section 5's three steps:
// report the equivalence, complete the switch (if the curves truly
// cross), and re-examine the new neighborhoods.
func (s *Sweeper) processEvent(ev eventq.Event) {
	a, b := ev.Left, ev.Right
	// Queue discipline should guarantee adjacency; tolerate staleness
	// defensively (it indicates a bug in audit mode).
	if !s.list.Contains(a) || !s.list.Contains(b) {
		if s.audit {
			panic(fmt.Sprintf("core: stale event %v: entry missing", ev))
		}
		return
	}
	if next, ok := s.list.Next(a); !ok || next != b {
		if s.audit {
			panic(fmt.Sprintf("core: stale event %v: not adjacent", ev))
		}
		return
	}
	s.now = ev.T
	s.stats.Events++
	fa, fb := s.curves[a], s.curves[b]
	// Sanity guard: the curves must actually meet at the event time.
	// A materially nonzero gap indicates a spurious root (numerical or
	// stale); re-derive the pair's next event instead of reporting a
	// phantom equality.
	va, vb := fa.Eval(ev.T), fb.Eval(ev.T)
	if gap := math.Abs(va - vb); gap > 1e-6*math.Max(1, math.Max(math.Abs(va), math.Abs(vb))) {
		if s.audit {
			panic(fmt.Sprintf("core: phantom event %v: gap %g", ev, gap))
		}
		s.schedulePair(a, b, ev.T)
		return
	}
	d := s.pairDiff(a, b, ev.T)
	sgAfter := d.SignAfter(ev.T)
	sgBefore := d.SignBefore(ev.T)

	switch {
	case sgAfter == 0:
		// Entering (or inside) a coincidence stretch.
		if sgBefore != 0 {
			s.stats.Coincides++
			s.emit(Change{T: ev.T, Kind: ChangeEqual, A: a, B: b})
		}
		if sep, ok := d.CoincidenceEndAfter(ev.T, s.horizon); ok {
			s.queue.Push(eventq.Event{T: math.Max(sep, ev.T), Left: a, Right: b})
		}
	case sgBefore == 0:
		// Separation after a coincidence stretch.
		s.emit(Change{T: ev.T, Kind: ChangeSeparate, A: a, B: b})
		if sgAfter > 0 {
			// a ends up above b: complete the switch.
			s.swap(a, b, ev.T)
		} else {
			s.schedulePair(a, b, ev.T)
		}
	case sgAfter != sgBefore:
		// Transversal crossing: the paper's two-step order update.
		s.emit(Change{T: ev.T, Kind: ChangeEqual, A: a, B: b})
		s.swap(a, b, ev.T)
	default:
		// Tangency: curves touch and separate in the same order.
		s.emit(Change{T: ev.T, Kind: ChangeEqual, A: a, B: b})
		s.schedulePair(a, b, ev.T)
	}
	s.checkAudit()
}

// swap completes the order switch of adjacent a, b at time t and
// refreshes the three affected adjacencies.
func (s *Sweeper) swap(a, b uint64, t float64) {
	// All three adjacencies around the pair dissolve: recycle their
	// cached differences before the order changes.
	if p, ok := s.list.Prev(a); ok {
		s.releaseDiff(p, a)
	}
	if n, ok := s.list.Next(b); ok {
		s.releaseDiff(b, n)
	}
	s.releaseDiff(a, b)
	if err := s.list.SwapAdjacent(a, b); err != nil {
		panic(fmt.Sprintf("core: swap %d,%d: %v", a, b, err))
	}
	s.emit(Change{T: t, Kind: ChangeSwap, A: a, B: b})
	// New order around the pair: ..., prev, b, a, next, ...
	if prev, ok := s.list.Prev(b); ok {
		// The event keyed by prev pointed at (prev, a); recompute
		// against b. Allow meetings at exactly t for newly-formed
		// adjacencies (multi-curve meetings at one instant).
		s.schedulePair(prev, b, justBefore(t))
	}
	s.schedulePair(b, a, t)
	if next, ok := s.list.Next(a); ok {
		s.schedulePair(a, next, justBefore(t))
	} else {
		s.queue.RemoveByLeft(a)
	}
}

// justBefore nudges t down by slightly more than the root-search
// strictness tolerance, so that meetings at exactly t between
// newly-adjacent curves are still discovered, without re-finding roots
// materially before t.
func justBefore(t float64) float64 {
	d := math.Max(3*poly.RootTol, math.Abs(t)*1e-12)
	return t - d
}

// recertify repositions a curve at a jump discontinuity: the entry is
// removed from the order and re-inserted by its value just after the
// jump, and its neighborhood events are refreshed. Emits a Remove/Insert
// pair so evaluators re-derive the entry's memberships.
func (s *Sweeper) recertify(id uint64, t float64) error {
	if !s.list.Contains(id) {
		return nil
	}
	s.now = t
	f := s.curves[id]
	prev, hasPrev := s.list.Prev(id)
	next, hasNext := s.list.Next(id)
	if hasPrev {
		s.releaseDiff(prev, id)
	}
	if hasNext {
		s.releaseDiff(id, next)
	}
	if err := s.list.Delete(id); err != nil {
		return err
	}
	s.queue.RemoveByLeft(id)
	s.emit(Change{T: t, Kind: ChangeRemove, A: id})
	if hasPrev {
		if hasNext {
			s.schedulePair(prev, next, justBefore(t))
		} else {
			s.queue.RemoveByLeft(prev)
		}
	}
	if err := s.list.Insert(id, s.cmpAt(t)); err != nil {
		return err
	}
	p, hasP := s.list.Prev(id)
	n, hasN := s.list.Next(id)
	if hasP && hasN {
		s.releaseDiff(p, n)
	}
	if hasP {
		s.schedulePair(p, id, justBefore(t))
	}
	if hasN {
		s.schedulePair(id, n, justBefore(t))
	}
	s.scheduleRecert(id, f, t)
	s.emit(Change{T: t, Kind: ChangeInsert, A: id})
	s.checkAudit()
	return nil
}

// AuditOrder verifies that the list order matches the curve values just
// after the current time; O(N log N). Returns nil when consistent.
func (s *Sweeper) AuditOrder() error {
	items := s.list.Items()
	for i := 0; i+1 < len(items); i++ {
		a, b := items[i], items[i+1]
		fa, fb := s.curves[a], s.curves[b]
		va, vb := fa.Eval(s.now), fb.Eval(s.now)
		scale := math.Max(1, math.Max(math.Abs(va), math.Abs(vb)))
		if va-vb > 1e-6*scale {
			return fmt.Errorf("core: order violated at %g: %d (%.9g) before %d (%.9g)",
				s.now, a, va, b, vb)
		}
	}
	return nil
}

func (s *Sweeper) checkAudit() {
	if !s.audit {
		return
	}
	if err := s.AuditOrder(); err != nil {
		panic(err)
	}
	if err := s.list.CheckInvariants(); err != nil {
		panic(err)
	}
}

// Walk visits the current precedence order from least to greatest until
// fn returns false. O(k) for k visited entries.
func (s *Sweeper) Walk(fn func(id uint64) bool) { s.list.Walk(fn) }
