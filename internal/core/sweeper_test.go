package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/eventq"
	"repro/internal/piecewise"
	"repro/internal/poly"
)

// lineCurve builds the curve a*t + b on [0, 1000].
func lineCurve(a, b float64) piecewise.Func {
	return piecewise.FromPoly(poly.Linear(a, b), 0, 1000)
}

func newTestSweeper(t *testing.T, changes *[]Change) *Sweeper {
	t.Helper()
	return NewSweeper(Config{
		Start:   0,
		Horizon: 1000,
		Audit:   true,
		OnChange: func(c Change) {
			if changes != nil {
				*changes = append(*changes, c)
			}
		},
	})
}

func TestTwoLinesCross(t *testing.T) {
	var log []Change
	s := newTestSweeper(t, &log)
	// f1 = t, f2 = 10 - t: cross at 5.
	mustAdd(t, s, 1, lineCurve(1, 0))
	mustAdd(t, s, 2, lineCurve(-1, 10))
	if got := s.Order(); got[0] != 1 || got[1] != 2 {
		t.Fatalf("initial order %v", got)
	}
	if err := s.AdvanceTo(4); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 1 {
		t.Fatal("premature swap")
	}
	if err := s.AdvanceTo(6); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("order after cross %v", got)
	}
	// The change stream: insert, insert, equal@5, swap@5.
	var kinds []string
	for _, c := range log {
		kinds = append(kinds, c.Kind.String())
	}
	want := []string{"insert", "insert", "equal", "swap"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("change kinds %v, want %v", kinds, want)
	}
	if log[2].T != 5 || log[3].T != 5 {
		t.Errorf("event times %v", log)
	}
	st := s.Stats()
	if st.Events != 1 || st.Swaps != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestTangencyDoesNotSwap(t *testing.T) {
	var log []Change
	s := newTestSweeper(t, &log)
	// f1 = (t-5)^2 + 1 dips to touch f2 = 1 at t=5 without crossing.
	mustAdd(t, s, 1, piecewise.FromPoly(poly.New(26, -10, 1), 0, 1000))
	mustAdd(t, s, 2, piecewise.FromPoly(poly.Constant(1), 0, 1000))
	if got := s.Order(); got[0] != 2 {
		t.Fatalf("initial order %v", got)
	}
	if err := s.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("tangency swapped order: %v", got)
	}
	var sawEqual bool
	for _, c := range log {
		if c.Kind == ChangeSwap {
			t.Error("unexpected swap")
		}
		if c.Kind == ChangeEqual && math.Abs(c.T-5) < 1e-6 {
			sawEqual = true
		}
	}
	if !sawEqual {
		t.Error("tangency equality not reported")
	}
}

func TestDoubleCross(t *testing.T) {
	s := newTestSweeper(t, nil)
	// Parabola crosses the line twice: swap out and back.
	mustAdd(t, s, 1, piecewise.FromPoly(poly.FromRoots(8, 17).Add(poly.Constant(5)), 0, 1000))
	mustAdd(t, s, 2, piecewise.FromPoly(poly.Constant(5), 0, 1000))
	// f1 - f2 = (t-8)(t-17): f1 above before 8, below in (8,17), above after.
	if got := s.Order(); got[0] != 2 {
		t.Fatalf("initial order %v", got)
	}
	if err := s.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 1 {
		t.Fatalf("after first cross %v", got)
	}
	if err := s.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 2 {
		t.Fatalf("after second cross %v", got)
	}
	if st := s.Stats(); st.Swaps != 2 {
		t.Errorf("swaps = %d, want 2", st.Swaps)
	}
}

func TestThreeWayMeeting(t *testing.T) {
	// Three lines meeting at one point: order fully reverses.
	s := newTestSweeper(t, nil)
	mustAdd(t, s, 1, lineCurve(0, 5))  // constant 5
	mustAdd(t, s, 2, lineCurve(1, 0))  // t
	mustAdd(t, s, 3, lineCurve(2, -5)) // 2t-5: all meet at t=5 value 5
	if got := s.Order(); got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("initial order %v", got)
	}
	if err := s.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("after three-way meeting %v", got)
	}
}

func TestInsertRemoveMidSweep(t *testing.T) {
	var log []Change
	s := newTestSweeper(t, &log)
	mustAdd(t, s, 1, lineCurve(0, 0))
	mustAdd(t, s, 2, lineCurve(0, 10))
	if err := s.AdvanceTo(3); err != nil {
		t.Fatal(err)
	}
	// Insert a falling line between them: 8 - t at t=3 has value 5.
	mustAdd(t, s, 3, lineCurve(-1, 8))
	if got := s.Order(); got[1] != 3 {
		t.Fatalf("order with midline %v", got)
	}
	// It crosses id 1 (value 0) at t=8.
	if err := s.AdvanceTo(9); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 3 || got[1] != 1 {
		t.Fatalf("after cross %v", got)
	}
	if err := s.RemoveCurve(3); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Contains(3) {
		t.Error("remove failed")
	}
	if err := s.RemoveCurve(3); err == nil {
		t.Error("double remove accepted")
	}
}

func TestReplaceCurveCancelsCross(t *testing.T) {
	// Figure 2's A-update: o1 heading to cross o2 at D; a chdir before
	// the crossing cancels it.
	s := newTestSweeper(t, nil)
	mustAdd(t, s, 1, lineCurve(-1, 20)) // falling toward o2
	mustAdd(t, s, 2, lineCurve(0, 10))  // constant 10; cross at t=10
	if err := s.AdvanceTo(4); err != nil {
		t.Fatal(err)
	}
	// chdir at t=4: o1 levels off at 16, never meets o2.
	repl := piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 4, P: poly.Linear(-1, 20)},
		piecewise.Piece{Start: 4, End: 1000, P: poly.Constant(16)},
	)
	if err := s.ReplaceCurve(1, repl); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("cancelled cross still happened: %v", got)
	}
	if st := s.Stats(); st.Swaps != 0 {
		t.Errorf("swaps = %d, want 0", st.Swaps)
	}
}

func TestExpiryRemovesCurve(t *testing.T) {
	var log []Change
	s := newTestSweeper(t, &log)
	mustAdd(t, s, 1, piecewise.FromPoly(poly.Constant(1), 0, 50))
	mustAdd(t, s, 2, lineCurve(0, 2))
	if err := s.AdvanceTo(60); err != nil {
		t.Fatal(err)
	}
	if s.Contains(1) {
		t.Error("expired curve still present")
	}
	var sawExpire bool
	for _, c := range log {
		if c.Kind == ChangeExpire && c.A == 1 && c.T == 50 {
			sawExpire = true
		}
	}
	if !sawExpire {
		t.Errorf("no expire change: %v", log)
	}
}

func TestCoincidenceHandling(t *testing.T) {
	var log []Change
	s := newTestSweeper(t, &log)
	// id1 descends onto id2's constant level, rides along, then leaves
	// upward: equal at 5, coincide on [5,10], separate at 10.
	f1 := piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 5, P: poly.Linear(-1, 8)},
		piecewise.Piece{Start: 5, End: 10, P: poly.Constant(3)},
		piecewise.Piece{Start: 10, End: 1000, P: poly.Linear(1, -7)},
	)
	f2 := piecewise.FromPoly(poly.Constant(3), 0, 1000)
	mustAdd(t, s, 1, f1)
	mustAdd(t, s, 2, f2)
	if err := s.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	// After separation id1 rises above id2: id2 first. During the whole
	// run id1 never went below id2, so final order has 2 before 1.
	got := s.Order()
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("order %v", got)
	}
	var sawEqual, sawSeparate bool
	for _, c := range log {
		if c.Kind == ChangeEqual && math.Abs(c.T-5) < 1e-6 {
			sawEqual = true
		}
		if c.Kind == ChangeSeparate && math.Abs(c.T-10) < 1e-6 {
			sawSeparate = true
		}
	}
	if !sawEqual || !sawSeparate {
		t.Errorf("coincidence events missing: %v", log)
	}
}

func TestCoincidenceWithFlip(t *testing.T) {
	s := newTestSweeper(t, nil)
	// id1 descends to id2's level, rides along, then continues DOWN:
	// order flips across the coincidence.
	f1 := piecewise.MustNew(
		piecewise.Piece{Start: 0, End: 5, P: poly.Linear(-1, 8)},
		piecewise.Piece{Start: 5, End: 10, P: poly.Constant(3)},
		piecewise.Piece{Start: 10, End: 1000, P: poly.Linear(-1, 13)},
	)
	f2 := piecewise.FromPoly(poly.Constant(3), 0, 1000)
	mustAdd(t, s, 1, f1)
	mustAdd(t, s, 2, f2)
	if got := s.Order(); got[0] != 2 {
		t.Fatalf("initial %v", got)
	}
	if err := s.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	if got := s.Order(); got[0] != 1 || got[1] != 2 {
		t.Fatalf("flip across coincidence failed: %v", got)
	}
}

func TestAdvanceErrors(t *testing.T) {
	s := NewSweeper(Config{Start: 10, Horizon: 100})
	if err := s.AdvanceTo(5); err == nil {
		t.Error("backward advance accepted")
	}
	if err := s.AdvanceTo(200); err == nil {
		t.Error("advance past horizon accepted")
	}
	if err := s.AdvanceTo(50); err != nil {
		t.Error(err)
	}
	if s.Now() != 50 {
		t.Errorf("Now = %g", s.Now())
	}
}

func TestAddCurveErrors(t *testing.T) {
	s := NewSweeper(Config{Start: 10, Horizon: 100})
	if err := s.AddCurve(1, piecewise.FromPoly(poly.Constant(1), 20, 90)); err == nil {
		t.Error("curve not covering now accepted")
	}
	if err := s.AddCurve(1, piecewise.FromPoly(poly.Constant(1), 0, 90)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCurve(1, piecewise.FromPoly(poly.Constant(2), 0, 90)); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := s.Value(1); err != nil {
		t.Error(err)
	}
	if _, err := s.Value(9); err == nil {
		t.Error("value of missing id")
	}
	if err := s.ReplaceCurve(9, piecewise.FromPoly(poly.Constant(1), 0, 90)); err == nil {
		t.Error("replace missing id accepted")
	}
	if err := s.ReplaceCurve(1, piecewise.FromPoly(poly.Constant(1), 50, 90)); err == nil {
		t.Error("replace with non-covering curve accepted")
	}
}

func TestRankSelectFirstK(t *testing.T) {
	s := newTestSweeper(t, nil)
	for i := uint64(1); i <= 5; i++ {
		mustAdd(t, s, i, lineCurve(0, float64(i*10)))
	}
	if r, _ := s.Rank(3); r != 2 {
		t.Errorf("Rank(3) = %d", r)
	}
	if id, _ := s.At(0); id != 1 {
		t.Errorf("At(0) = %d", id)
	}
	fk := s.FirstK(2)
	if len(fk) != 2 || fk[0] != 1 || fk[1] != 2 {
		t.Errorf("FirstK = %v", fk)
	}
	if f, ok := s.Curve(3); !ok || f.Eval(0) != 30 {
		t.Error("Curve accessor")
	}
	if s.Horizon() != 1000 {
		t.Error("Horizon accessor")
	}
	if s.QueueLen() < 0 {
		t.Error("QueueLen")
	}
}

// TestRandomizedAgainstBruteForce builds random piecewise-linear curve
// sets, sweeps them, and at many checkpoints compares the maintained
// order with a from-scratch sort of curve values.
func TestRandomizedAgainstBruteForce(t *testing.T) {
	for _, useLeftist := range []bool{false, true} {
		name := "heap"
		if useLeftist {
			name = "leftist"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 20; trial++ {
				var q eventq.Queue
				if useLeftist {
					q = eventq.NewLeftist()
				}
				s := NewSweeper(Config{Start: 0, Horizon: 100, Queue: q, Audit: true})
				n := 5 + rng.Intn(20)
				curves := map[uint64]piecewise.Func{}
				for i := 0; i < n; i++ {
					id := uint64(i + 1)
					f := randPiecewiseLinear(rng)
					curves[id] = f
					if err := s.AddCurve(id, f); err != nil {
						t.Fatal(err)
					}
				}
				for _, checkpoint := range []float64{10, 25, 50, 75, 99} {
					if err := s.AdvanceTo(checkpoint); err != nil {
						t.Fatal(err)
					}
					verifyOrderAgainstBrute(t, s, curves, checkpoint)
				}
			}
		})
	}
}

// randPiecewiseLinear builds a continuous piecewise-linear curve on
// [0, 100] with 1-4 pieces and integer-ish breakpoints.
func randPiecewiseLinear(rng *rand.Rand) piecewise.Func {
	nb := rng.Intn(3)
	breaks := []float64{0}
	for i := 0; i < nb; i++ {
		breaks = append(breaks, 1+math.Floor(rng.Float64()*98))
	}
	breaks = append(breaks, 100)
	sort.Float64s(breaks)
	// Deduplicate.
	uniq := breaks[:1]
	for _, b := range breaks[1:] {
		if b > uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	val := rng.Float64()*200 - 100
	var pieces []piecewise.Piece
	for i := 0; i+1 < len(uniq); i++ {
		slope := math.Floor(rng.Float64()*21) - 10
		a, b := uniq[i], uniq[i+1]
		// p(t) = val + slope*(t - a)
		pieces = append(pieces, piecewise.Piece{
			Start: a, End: b,
			P: poly.Linear(slope, val-slope*a),
		})
		val += slope * (b - a)
	}
	return piecewise.MustNew(pieces...)
}

func verifyOrderAgainstBrute(t *testing.T, s *Sweeper, curves map[uint64]piecewise.Func, at float64) {
	t.Helper()
	got := s.Order()
	type ov struct {
		id uint64
		v  float64
	}
	var want []ov
	for id, f := range curves {
		want = append(want, ov{id, f.Eval(at)})
	}
	sort.Slice(want, func(i, j int) bool { return want[i].v < want[j].v })
	if len(got) != len(want) {
		t.Fatalf("at %g: %d vs %d entries", at, len(got), len(want))
	}
	// The maintained order must agree with the value sort up to ties.
	for i := range got {
		gv := curves[got[i]].Eval(at)
		if math.Abs(gv-want[i].v) > 1e-6*math.Max(1, math.Abs(want[i].v)) {
			t.Fatalf("at %g rank %d: sweep has id %d (v=%g), brute force value %g\nsweep order %v",
				at, i, got[i], gv, want[i].v, got)
		}
	}
}

func mustAdd(t *testing.T, s *Sweeper, id uint64, f piecewise.Func) {
	t.Helper()
	if err := s.AddCurve(id, f); err != nil {
		t.Fatalf("AddCurve(%d): %v", id, err)
	}
}
