// Package cql implements the constraint query language of the paper's
// Section 3: linear constraints interpreted over the reals, regions as
// disjunctions of constraint conjunctions, and the quantifier-elimination
// style evaluation the paper attributes to standard constraint databases
// (Proposition 1). It serves two roles in this reproduction:
//
//   - the data-model substrate: trajectories and spatial regions are
//     rendered and manipulated as linear-constraint formulas, and
//   - the baseline evaluator: the paper's example queries (Example 3's
//     "entering a region", Example 4's 1-NN) evaluated from scratch by
//     variable elimination, against which the plane sweep is compared
//     (experiment E5).
//
// Full Tarski quantifier elimination over real closed fields is neither
// practical nor needed: the paper's queries require (i) Fourier–Motzkin
// elimination for linear constraints and (ii) sign analysis of univariate
// polynomials, both implemented exactly here (see DESIGN.md,
// substitution 5).
package cql

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/poly"
)

// coeffEps is the absolute threshold below which a coefficient produced
// by constraint *arithmetic* (linear substitution, Fourier-Motzkin
// combination) is treated as exact zero. Cancellation of O(1)..O(1e3)
// coordinate data leaves ~1e-13-scale dust that would otherwise
// masquerade as a live variable with an enormous RHS/coef quotient.
// Coefficients supplied directly by callers are kept verbatim.
const coeffEps = 1e-9

// Op is a comparison operator of a linear constraint.
type Op int

// Constraint operators. Strict operators are produced by negation and by
// "entering" style queries; Fourier–Motzkin handles both.
const (
	LE Op = iota // sum <= rhs
	LT           // sum <  rhs
	EQ           // sum == rhs
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case LE:
		return "<="
	case LT:
		return "<"
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Constraint is a linear constraint sum_i Coeffs[v_i]*v_i Op RHS.
// Variables are identified by name.
type Constraint struct {
	Coeffs map[string]float64
	Op     Op
	RHS    float64
}

// NewConstraint builds a constraint from coefficient pairs.
func NewConstraint(op Op, rhs float64, coeffs map[string]float64) Constraint {
	cp := make(map[string]float64, len(coeffs))
	for v, c := range coeffs {
		if c != 0 { //modlint:allow floatcmp -- caller-supplied coefficient, untouched: dropping exact zeros only
			cp[v] = c
		}
	}
	return Constraint{Coeffs: cp, Op: op, RHS: rhs}
}

// clone returns a deep copy.
func (c Constraint) clone() Constraint {
	cp := make(map[string]float64, len(c.Coeffs))
	for v, x := range c.Coeffs {
		cp[v] = x
	}
	return Constraint{Coeffs: cp, Op: c.Op, RHS: c.RHS}
}

// Coeff returns the coefficient of v (0 when absent).
func (c Constraint) Coeff(v string) float64 { return c.Coeffs[v] }

// Eval reports whether the constraint holds under the assignment.
// Unassigned variables are an error.
func (c Constraint) Eval(assign map[string]float64) (bool, error) {
	sum := 0.0
	for v, coef := range c.Coeffs {
		val, ok := assign[v]
		if !ok {
			return false, fmt.Errorf("cql: unassigned variable %q", v)
		}
		sum += coef * val
	}
	const tol = 1e-9
	switch c.Op {
	case LE:
		return sum <= c.RHS+tol, nil
	case LT:
		return sum < c.RHS-tol, nil
	case EQ:
		return math.Abs(sum-c.RHS) <= tol, nil
	default:
		return false, fmt.Errorf("cql: bad op %d", c.Op)
	}
}

// String renders the constraint, variables sorted for determinism.
func (c Constraint) String() string {
	vars := make([]string, 0, len(c.Coeffs))
	for v := range c.Coeffs {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	if len(vars) == 0 {
		b.WriteString("0")
	}
	for i, v := range vars {
		coef := c.Coeffs[v]
		switch {
		case i == 0:
			//modlint:allow floatcmp -- display only: render 1x as x when the stored value is exactly 1
			if coef == 1 {
				b.WriteString(v)
			} else if coef == -1 { //modlint:allow floatcmp -- display only
				b.WriteString("-" + v)
			} else {
				fmt.Fprintf(&b, "%g%s", coef, v)
			}
		case coef >= 0:
			if coef == 1 { //modlint:allow floatcmp -- display only
				b.WriteString(" + " + v)
			} else {
				fmt.Fprintf(&b, " + %g%s", coef, v)
			}
		default:
			if coef == -1 { //modlint:allow floatcmp -- display only
				b.WriteString(" - " + v)
			} else {
				fmt.Fprintf(&b, " - %g%s", -coef, v)
			}
		}
	}
	fmt.Fprintf(&b, " %s %g", c.Op, c.RHS)
	return b.String()
}

// Conjunction is a set of constraints, all of which must hold.
type Conjunction []Constraint

// Eval reports whether every constraint holds.
func (cj Conjunction) Eval(assign map[string]float64) (bool, error) {
	for _, c := range cj {
		ok, err := c.Eval(assign)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// Substitute fixes variable v to value and returns the reduced
// conjunction (v no longer occurs).
func (cj Conjunction) Substitute(v string, value float64) Conjunction {
	out := make(Conjunction, 0, len(cj))
	for _, c := range cj {
		nc := c.clone()
		if coef, ok := nc.Coeffs[v]; ok {
			nc.RHS -= coef * value
			delete(nc.Coeffs, v)
		}
		out = append(out, nc)
	}
	return out
}

// SubstituteLinear replaces v by the linear expression a*w + b (w may be
// an existing or new variable; pass a=0 for a constant).
func (cj Conjunction) SubstituteLinear(v, w string, a, b float64) Conjunction {
	out := make(Conjunction, 0, len(cj))
	for _, c := range cj {
		nc := c.clone()
		if coef, ok := nc.Coeffs[v]; ok {
			delete(nc.Coeffs, v)
			if a != 0 { //modlint:allow floatcmp -- caller-supplied slope, untouched: zero means the term vanishes
				nc.Coeffs[w] += coef * a
				if poly.ApproxZero(nc.Coeffs[w], coeffEps) {
					delete(nc.Coeffs, w)
				}
			}
			nc.RHS -= coef * b
		}
		out = append(out, nc)
	}
	return out
}

// ErrUnsatisfiable is returned by elimination when the conjunction is
// detected inconsistent.
var ErrUnsatisfiable = errors.New("cql: unsatisfiable")

// Eliminate removes variable v by Fourier–Motzkin elimination: the result
// is a conjunction over the remaining variables satisfiable by exactly
// the assignments extendable to v. Equalities on v are used as
// substitutions. Returns ErrUnsatisfiable when a trivially false
// constraint (e.g. 0 <= -1) appears.
func (cj Conjunction) Eliminate(v string) (Conjunction, error) {
	// First use an equality involving v, if any, to substitute v away.
	for i, c := range cj {
		coef := c.Coeff(v)
		if c.Op == EQ && !poly.ApproxZero(coef, coeffEps) {
			// v = (RHS - rest)/coef: substitute into all others.
			rest := c.clone()
			delete(rest.Coeffs, v)
			out := make(Conjunction, 0, len(cj)-1)
			for j, d := range cj {
				if j == i {
					continue
				}
				dc := d.Coeff(v)
				nd := d.clone()
				if !poly.ApproxZero(dc, coeffEps) {
					delete(nd.Coeffs, v)
					// d: dc*v + rest_d op rhs_d, with
					// v = (rhs_c - rest_c)/coef.
					k := dc / coef
					for w, cw := range rest.Coeffs {
						nd.Coeffs[w] -= k * cw
						if poly.ApproxZero(nd.Coeffs[w], coeffEps) {
							delete(nd.Coeffs, w)
						}
					}
					// d becomes: rest_d - k*rest_c op rhs_d - k*rhs_c.
					nd.RHS -= k * rest.RHS
				}
				nd = nd.normalize()
				if bad, err := nd.triviallyFalse(); err != nil {
					return nil, err
				} else if bad {
					return nil, ErrUnsatisfiable
				}
				out = append(out, nd)
			}
			return out, nil
		}
	}
	// Partition by the sign of v's coefficient.
	var lowers, uppers []Constraint // lower: v >= expr; upper: v <= expr
	var rest Conjunction
	for _, c := range cj {
		coef := c.Coeff(v)
		switch {
		case poly.ApproxZero(coef, coeffEps):
			rest = append(rest, c.clone())
		case coef > 0:
			uppers = append(uppers, c)
		default:
			lowers = append(lowers, c)
		}
	}
	// Combine each (lower, upper) pair.
	for _, lo := range lowers {
		for _, up := range uppers {
			cl, cu := -lo.Coeff(v), up.Coeff(v) // both positive
			nc := Constraint{Coeffs: map[string]float64{}, RHS: cu*lo.RHS + cl*up.RHS}
			for w, cw := range lo.Coeffs {
				if w != v {
					nc.Coeffs[w] += cu * cw
				}
			}
			for w, cw := range up.Coeffs {
				if w != v {
					nc.Coeffs[w] += cl * cw
				}
			}
			for w, cw := range nc.Coeffs {
				if poly.ApproxZero(cw, coeffEps) {
					delete(nc.Coeffs, w)
				}
			}
			if lo.Op == LT || up.Op == LT {
				nc.Op = LT
			} else {
				nc.Op = LE
			}
			nc = nc.normalize()
			if bad, err := nc.triviallyFalse(); err != nil {
				return nil, err
			} else if bad {
				return nil, ErrUnsatisfiable
			}
			if len(nc.Coeffs) > 0 {
				rest = append(rest, nc)
			}
		}
	}
	for i := range rest {
		if bad, err := rest[i].triviallyFalse(); err != nil {
			return nil, err
		} else if bad {
			return nil, ErrUnsatisfiable
		}
	}
	return rest, nil
}

// normalize scales tiny coefficients to zero.
func (c Constraint) normalize() Constraint {
	max := math.Abs(c.RHS)
	for _, x := range c.Coeffs {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	if max == 0 { //modlint:allow floatcmp -- all-zero constraint: max of absolute values is exactly 0
		return c
	}
	cut := max * 1e-12
	for v, x := range c.Coeffs {
		if math.Abs(x) <= cut {
			delete(c.Coeffs, v)
		}
	}
	if math.Abs(c.RHS) <= cut {
		c.RHS = 0
	}
	return c
}

// triviallyFalse reports whether a variable-free constraint is false.
func (c Constraint) triviallyFalse() (bool, error) {
	if len(c.Coeffs) > 0 {
		return false, nil
	}
	ok, err := c.Eval(nil)
	return !ok, err
}

// Satisfiable reports whether the conjunction has a real solution, by
// eliminating every variable.
func (cj Conjunction) Satisfiable() (bool, error) {
	vars := map[string]bool{}
	for _, c := range cj {
		for v := range c.Coeffs {
			vars[v] = true
		}
	}
	names := make([]string, 0, len(vars))
	for v := range vars {
		names = append(names, v)
	}
	sort.Strings(names)
	cur := cj
	var err error
	for _, v := range names {
		cur, err = cur.Eliminate(v)
		if errors.Is(err, ErrUnsatisfiable) {
			return false, nil
		}
		if err != nil {
			return false, err
		}
	}
	for _, c := range cur {
		bad, err := c.triviallyFalse()
		if err != nil {
			return false, err
		}
		if bad {
			return false, nil
		}
	}
	return true, nil
}

// String renders the conjunction with " ∧ " separators.
func (cj Conjunction) String() string {
	parts := make([]string, len(cj))
	for i, c := range cj {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}
