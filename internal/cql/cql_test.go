package cql

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/poly"
	"repro/internal/trajectory"
)

func TestConstraintEval(t *testing.T) {
	c := NewConstraint(LE, 10, map[string]float64{"x": 2, "y": 1})
	ok, err := c.Eval(map[string]float64{"x": 3, "y": 4})
	if err != nil || !ok {
		t.Errorf("2*3+4 <= 10: ok=%v err=%v", ok, err)
	}
	ok, _ = c.Eval(map[string]float64{"x": 4, "y": 4})
	if ok {
		t.Error("12 <= 10 held")
	}
	if _, err := c.Eval(map[string]float64{"x": 1}); err == nil {
		t.Error("unassigned variable accepted")
	}
	eq := NewConstraint(EQ, 5, map[string]float64{"x": 1})
	if ok, _ := eq.Eval(map[string]float64{"x": 5}); !ok {
		t.Error("x=5 failed")
	}
	lt := NewConstraint(LT, 5, map[string]float64{"x": 1})
	if ok, _ := lt.Eval(map[string]float64{"x": 5}); ok {
		t.Error("5 < 5 held")
	}
}

func TestConstraintString(t *testing.T) {
	c := NewConstraint(LE, 3, map[string]float64{"x": 2, "y": -1})
	if got := c.String(); got != "2x - y <= 3" {
		t.Errorf("String = %q", got)
	}
	c2 := NewConstraint(EQ, 0, map[string]float64{"t": 1})
	if got := c2.String(); got != "t = 0" {
		t.Errorf("String = %q", got)
	}
}

func TestFourierMotzkinTriangle(t *testing.T) {
	// x >= 0, y >= 0, x + y <= 1: eliminating y yields 0 <= x <= 1.
	cj := Conjunction{
		NewConstraint(LE, 0, map[string]float64{"x": -1}),
		NewConstraint(LE, 0, map[string]float64{"y": -1}),
		NewConstraint(LE, 1, map[string]float64{"x": 1, "y": 1}),
	}
	out, err := cj.Eliminate("y")
	if err != nil {
		t.Fatal(err)
	}
	// The projection must admit x in [0, 1] and nothing outside.
	for _, x := range []float64{0, 0.5, 1} {
		ok, err := out.Eval(map[string]float64{"x": x})
		if err != nil || !ok {
			t.Errorf("x=%g should be in projection: %v %v", x, ok, err)
		}
	}
	for _, x := range []float64{-0.5, 1.5} {
		if ok, _ := out.Eval(map[string]float64{"x": x}); ok {
			t.Errorf("x=%g should be outside projection", x)
		}
	}
}

func TestFourierMotzkinUnsat(t *testing.T) {
	// x <= 0 and x >= 1.
	cj := Conjunction{
		NewConstraint(LE, 0, map[string]float64{"x": 1}),
		NewConstraint(LE, -1, map[string]float64{"x": -1}),
	}
	if _, err := cj.Eliminate("x"); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("err = %v, want unsatisfiable", err)
	}
	sat, err := cj.Satisfiable()
	if err != nil || sat {
		t.Errorf("Satisfiable = %v, %v", sat, err)
	}
	sat, err = Conjunction{
		NewConstraint(LE, 1, map[string]float64{"x": 1, "y": -2}),
		NewConstraint(LE, 4, map[string]float64{"x": 1, "y": 2}),
	}.Satisfiable()
	if err != nil || !sat {
		t.Errorf("Satisfiable = %v, %v", sat, err)
	}
}

func TestFourierMotzkinEquality(t *testing.T) {
	// x = 2y, x + y <= 6: eliminate x => 3y <= 6.
	cj := Conjunction{
		NewConstraint(EQ, 0, map[string]float64{"x": 1, "y": -2}),
		NewConstraint(LE, 6, map[string]float64{"x": 1, "y": 1}),
	}
	out, err := cj.Eliminate("x")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := out.Eval(map[string]float64{"y": 2}); !ok {
		t.Error("y=2 should satisfy")
	}
	if ok, _ := out.Eval(map[string]float64{"y": 2.5}); ok {
		t.Error("y=2.5 should fail")
	}
}

// Property: eliminating a variable preserves satisfiability of random
// systems (checked by sampling).
func TestEliminationSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var cj Conjunction
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			cj = append(cj, NewConstraint(LE, rng.Float64()*10-2, map[string]float64{
				"x": math.Floor(rng.Float64()*7) - 3,
				"y": math.Floor(rng.Float64()*7) - 3,
			}))
		}
		out, err := cj.Eliminate("y")
		if errors.Is(err, ErrUnsatisfiable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		// Any (x, y) satisfying cj must project to x satisfying out.
		for probe := 0; probe < 50; probe++ {
			x := rng.Float64()*20 - 10
			y := rng.Float64()*20 - 10
			full, _ := cj.Eval(map[string]float64{"x": x, "y": y})
			if full {
				proj, _ := out.Eval(map[string]float64{"x": x})
				if !proj {
					t.Fatalf("trial %d: (%g,%g) satisfies system but x rejected by projection\n%s\n=>\n%s",
						trial, x, y, cj, out)
				}
			}
		}
	}
}

func TestSpanSetOps(t *testing.T) {
	a := NewSpanSet(Span{0, 2}, Span{5, 8})
	b := NewSpanSet(Span{1, 6})
	u := a.Union(b)
	if got := u.Spans(); len(got) != 1 || got[0].Lo != 0 || got[0].Hi != 8 {
		t.Errorf("union %v", u)
	}
	x := a.Intersect(b)
	if got := x.Spans(); len(got) != 2 || got[0] != (Span{1, 2}) || got[1] != (Span{5, 6}) {
		t.Errorf("intersect %v", x)
	}
	c := a.Complement(0, 10)
	if got := c.Spans(); len(got) != 2 || got[0] != (Span{2, 5}) || got[1] != (Span{8, 10}) {
		t.Errorf("complement %v", c)
	}
	if !a.Contains(1) || a.Contains(3) {
		t.Error("Contains")
	}
	if m := a.Measure(); math.Abs(m-5) > 1e-12 {
		t.Errorf("Measure = %g", m)
	}
	if (SpanSet{}).String() != "∅" || a.String() == "" {
		t.Error("String")
	}
	if got := a.Clip(1, 6).Measure(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Clip measure = %g", got)
	}
	if eps := a.LeftEndpoints(); len(eps) != 2 || eps[0] != 0 || eps[1] != 5 {
		t.Errorf("LeftEndpoints = %v", eps)
	}
}

func TestPolyConstraintSolve(t *testing.T) {
	// (t-2)(t-5) <= 0 on [0,10] => [2,5].
	pc := PolyConstraint{P: poly.FromRoots(2, 5), Op: PLE}
	s, err := pc.Solve(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Spans(); len(got) != 1 || math.Abs(got[0].Lo-2) > 1e-8 || math.Abs(got[0].Hi-5) > 1e-8 {
		t.Errorf("solve %v", s)
	}
	// > 0: complement.
	pc.Op = PGT
	s, _ = pc.Solve(0, 10)
	if got := s.Spans(); len(got) != 2 {
		t.Errorf("solve > %v", s)
	}
	// == 0: the roots.
	pc.Op = PEQ
	s, _ = pc.Solve(0, 10)
	if got := s.Spans(); len(got) != 2 || math.Abs(got[0].Lo-2) > 1e-8 || got[0].Lo != got[0].Hi {
		t.Errorf("solve == %v", s)
	}
	// Zero polynomial.
	zs, _ := (PolyConstraint{P: poly.Poly{}, Op: PLE}).Solve(0, 1)
	if zs.Measure() != 1 {
		t.Errorf("zero poly <= 0: %v", zs)
	}
	zs, _ = (PolyConstraint{P: poly.Poly{}, Op: PGT}).Solve(0, 1)
	if !zs.IsEmpty() {
		t.Errorf("zero poly > 0: %v", zs)
	}
	if _, err := pc.Solve(5, 1); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestSolvePolySystem(t *testing.T) {
	// t >= 3 and (t-2)(t-5) <= 0 => [3,5].
	s, err := SolvePolySystem(0, 10,
		PolyConstraint{P: poly.Linear(-1, 3), Op: PLE}, // 3 - t <= 0
		PolyConstraint{P: poly.FromRoots(2, 5), Op: PLE},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Spans(); len(got) != 1 || math.Abs(got[0].Lo-3) > 1e-8 || math.Abs(got[0].Hi-5) > 1e-8 {
		t.Errorf("system %v", s)
	}
}

func TestRegionBoxContains(t *testing.T) {
	r := Box(geom.Of(0, 0), geom.Of(10, 5))
	for _, c := range []struct {
		p    geom.Vec
		want bool
	}{
		{geom.Of(5, 2), true}, {geom.Of(0, 0), true}, {geom.Of(10, 5), true},
		{geom.Of(11, 2), false}, {geom.Of(5, -1), false},
	} {
		got, err := r.Contains(c.p)
		if err != nil || got != c.want {
			t.Errorf("Contains(%v) = %v, %v; want %v", c.p, got, err, c.want)
		}
	}
}

func TestConvexPolygon(t *testing.T) {
	// CCW triangle (0,0) (4,0) (0,4).
	r, err := ConvexPolygon(geom.Of(0, 0), geom.Of(4, 0), geom.Of(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if in, _ := r.Contains(geom.Of(1, 1)); !in {
		t.Error("(1,1) outside triangle")
	}
	if in, _ := r.Contains(geom.Of(3, 3)); in {
		t.Error("(3,3) inside triangle")
	}
	if _, err := ConvexPolygon(geom.Of(0, 0), geom.Of(1, 1)); err == nil {
		t.Error("2-vertex polygon accepted")
	}
}

func TestTimesInside(t *testing.T) {
	// Object crosses the box [0,10]x[0,10] along y=5: x = t-5, inside
	// for t in [5, 15].
	r := Box(geom.Of(0, 0), geom.Of(10, 10))
	tr := trajectory.Linear(0, geom.Of(1, 0), geom.Of(-5, 5))
	s, err := r.TimesInside(tr, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Spans(); len(got) != 1 || math.Abs(got[0].Lo-5) > 1e-9 || math.Abs(got[0].Hi-15) > 1e-9 {
		t.Errorf("inside %v, want [5,15]", s)
	}
	// With a turn back: re-enters.
	tr2, _ := tr.ChDir(20, geom.Of(-1, 0)) // at t=20 x=15; heads back
	s, err = r.TimesInside(tr2, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Spans(); len(got) != 2 {
		t.Fatalf("inside %v, want two spans", s)
	}
	if got := s.Spans(); math.Abs(got[1].Lo-25) > 1e-9 || math.Abs(got[1].Hi-35) > 1e-9 {
		t.Errorf("second span %v, want [25,35]", got[1])
	}
}

func TestExample3Entering(t *testing.T) {
	// Example 3: aircraft entering Santa Barbara County (a box) between
	// tau1 and tau2.
	db := mod.NewDB(2, -1)
	county := Box(geom.Of(0, 0), geom.Of(10, 10))
	// o1 enters at t=5 (from outside).
	must(t, db.Load(1, trajectory.Linear(0, geom.Of(1, 0), geom.Of(-5, 5))))
	// o2 starts inside and only leaves: never "enters".
	must(t, db.Load(2, trajectory.Linear(0, geom.Of(1, 0), geom.Of(5, 5))))
	// o3 enters twice: crosses, turns around, crosses back.
	tr3 := trajectory.Linear(0, geom.Of(2, 0), geom.Of(-15, 2))
	tr3b, _ := tr3.ChDir(15, geom.Of(-2, 0)) // at t=15 x=15 (outside); back
	must(t, db.Load(3, tr3b))
	// o4 never comes near.
	must(t, db.Load(4, trajectory.Linear(0, geom.Of(0, 1), geom.Of(100, 100))))

	res, err := Entering(db, county, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := res[1]; len(got) != 1 || math.Abs(got[0]-5) > 1e-9 {
		t.Errorf("o1 entering times %v, want [5]", got)
	}
	if got := res[2]; len(got) != 0 {
		t.Errorf("o2 entering times %v, want none (started inside)", got)
	}
	// o3: crosses x in [0,10] at t in [7.5, 12.5], exits, re-enters at
	// 17.5+... position: 2t-15 until 15 (x=15), then 15-2(t-15): re-enter
	// when x=10: t=17.5.
	if got := res[3]; len(got) != 2 || math.Abs(got[0]-7.5) > 1e-9 || math.Abs(got[1]-17.5) > 1e-9 {
		t.Errorf("o3 entering times %v, want [7.5 17.5]", got)
	}
	if got := res[4]; len(got) != 0 {
		t.Errorf("o4 entering times %v", got)
	}
	// Window restriction: only the second entry.
	res, err = Entering(db, county, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := res[3]; len(got) != 1 || math.Abs(got[0]-17.5) > 1e-9 {
		t.Errorf("windowed o3 entering %v, want [17.5]", got)
	}
}

func TestExample4OneNN(t *testing.T) {
	// Query object moves along the x-axis; o1 nearest first, o2 later.
	db := mod.NewDB(2, -1)
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(0, 1))))
	must(t, db.Load(2, trajectory.Stationary(0, geom.Of(10, 1))))
	gamma := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	res, err := OneNNNaive(db, gamma, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Midpoint handover at t=5.
	s1 := res[1]
	if got := s1.Spans(); len(got) != 1 || got[0].Lo != 0 || math.Abs(got[0].Hi-5) > 1e-8 {
		t.Errorf("o1 spans %v, want [0,5]", s1)
	}
	s2 := res[2]
	if got := s2.Spans(); len(got) != 1 || math.Abs(got[0].Lo-5) > 1e-8 || got[0].Hi != 10 {
		t.Errorf("o2 spans %v, want [5,10]", s2)
	}
}

func TestKNNNaiveMatchesOneNN(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := mod.NewDB(2, -1)
	for i := 1; i <= 8; i++ {
		pos := geom.Of(rng.Float64()*100-50, rng.Float64()*100-50)
		vel := geom.Of(rng.Float64()*6-3, rng.Float64()*6-3)
		must(t, db.Load(mod.OID(i), trajectory.Linear(0, vel, pos)))
	}
	gamma := trajectory.Linear(0, geom.Of(1, 1), geom.Of(0, 0))
	one, err := OneNNNaive(db, gamma, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	knn, err := KNNNaive(db, gamma, 1, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.7, 5.1, 13.3, 22.9, 29.2} {
		for o := mod.OID(1); o <= 8; o++ {
			a := one[o].Contains(tt)
			b := knn[o].Contains(tt)
			if a != b {
				t.Errorf("t=%g %s: OneNN=%v KNN=%v", tt, o, a, b)
			}
		}
	}
	if _, err := KNNNaive(db, gamma, 0, 0, 30); err == nil {
		t.Error("k=0 accepted")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
