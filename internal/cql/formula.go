package cql

// A composable temporal-formula layer for the Section 3 constraint
// language. A TimeFormula denotes, for each object y of a MOD, the set of
// time instants at which the formula holds — computed exactly, as a
// SpanSet, by the quantifier-elimination primitives of this package
// (linear 1-D solving for region atoms, univariate polynomial sign
// analysis for distance atoms). Propositional connectives become span-set
// algebra; the paper's temporal quantifiers over a window become
// emptiness/coverage tests on the resulting set.
//
// This is the baseline language's general form: expressive enough for
// Examples 3 and 4 (and beyond: boolean combinations of region and
// distance constraints), evaluated from scratch per object — precisely
// the recompute-everything cost profile the plane sweep is measured
// against.

import (
	"fmt"
	"math"

	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/poly"
	"repro/internal/trajectory"
)

// TimeFormula denotes a time set per object.
type TimeFormula interface {
	// Holds computes the time spans within [lo, hi] at which the
	// formula is true of object y.
	Holds(ctx *EvalContext, y mod.OID, lo, hi float64) (SpanSet, error)
	String() string
}

// EvalContext carries the database view shared by all formula nodes.
type EvalContext struct {
	Trajs map[mod.OID]trajectory.Trajectory
}

// NewContext snapshots the database for evaluation.
func NewContext(db *mod.DB) *EvalContext {
	return &EvalContext{Trajs: db.Trajectories()}
}

func (c *EvalContext) traj(o mod.OID) (trajectory.Trajectory, error) {
	tr, ok := c.Trajs[o]
	if !ok || !tr.IsDefined() {
		return trajectory.Trajectory{}, fmt.Errorf("cql: no trajectory for %s", o)
	}
	return tr, nil
}

// InRegion holds while the object is inside the region.
type InRegion struct {
	Region Region
}

// String implements TimeFormula.
func (f InRegion) String() string { return "inRegion(y)" }

// Holds implements TimeFormula.
func (f InRegion) Holds(ctx *EvalContext, y mod.OID, lo, hi float64) (SpanSet, error) {
	tr, err := ctx.traj(y)
	if err != nil {
		return SpanSet{}, err
	}
	clo, chi, ok := clipLife(tr, lo, hi)
	if !ok {
		return SpanSet{}, nil
	}
	return f.Region.TimesInside(tr, clo, chi)
}

// WithinDist holds while the squared Euclidean distance between the
// object and the target trajectory is at most C2.
type WithinDist struct {
	Target trajectory.Trajectory
	C2     float64
}

// String implements TimeFormula.
func (f WithinDist) String() string { return fmt.Sprintf("dist2(y,target) <= %g", f.C2) }

// Holds implements TimeFormula.
func (f WithinDist) Holds(ctx *EvalContext, y mod.OID, lo, hi float64) (SpanSet, error) {
	tr, err := ctx.traj(y)
	if err != nil {
		return SpanSet{}, err
	}
	d := gdist.EuclideanSq{Query: f.Target}
	curve, err := d.Curve(tr, lo, hi)
	if err != nil {
		// Lifetimes disjoint from the window: never within.
		return SpanSet{}, nil
	}
	shifted := curve.AddPoly(poly.Constant(-f.C2))
	clo, chi := curve.Domain()
	return SolvePiecewiseLE(shifted, clo, chi)
}

// CloserThan holds while the object is (weakly) closer to the target than
// the other object is — the pairwise core of Example 4's 1-NN.
type CloserThan struct {
	Target trajectory.Trajectory
	Other  mod.OID
}

// String implements TimeFormula.
func (f CloserThan) String() string { return fmt.Sprintf("dist(y) <= dist(%s)", f.Other) }

// Holds implements TimeFormula.
func (f CloserThan) Holds(ctx *EvalContext, y mod.OID, lo, hi float64) (SpanSet, error) {
	tr, err := ctx.traj(y)
	if err != nil {
		return SpanSet{}, err
	}
	other, err := ctx.traj(f.Other)
	if err != nil {
		return SpanSet{}, err
	}
	d := gdist.EuclideanSq{Query: f.Target}
	cy, err := d.Curve(tr, lo, hi)
	if err != nil {
		return SpanSet{}, nil
	}
	co, err := d.Curve(other, lo, hi)
	if err != nil {
		// The other object does not exist in the window: vacuously
		// closer wherever y exists.
		ylo, yhi := cy.Domain()
		return NewSpanSet(Span{ylo, yhi}), nil
	}
	diff, err := cy.Sub(co)
	if err != nil {
		return SpanSet{}, nil
	}
	dlo, dhi := diff.Domain()
	closer, err := SolvePiecewiseLE(diff, dlo, dhi)
	if err != nil {
		return SpanSet{}, err
	}
	// Where the other object is absent but y lives, y wins by default.
	ylo, yhi := cy.Domain()
	olo, ohi := co.Domain()
	absent := NewSpanSet(Span{olo, ohi}).Complement(ylo, yhi)
	return closer.Union(absent), nil
}

// AndF is conjunction.
type AndF struct{ X, Y TimeFormula }

// String implements TimeFormula.
func (f AndF) String() string { return "(" + f.X.String() + " ∧ " + f.Y.String() + ")" }

// Holds implements TimeFormula.
func (f AndF) Holds(ctx *EvalContext, y mod.OID, lo, hi float64) (SpanSet, error) {
	a, err := f.X.Holds(ctx, y, lo, hi)
	if err != nil || a.IsEmpty() {
		return SpanSet{}, err
	}
	b, err := f.Y.Holds(ctx, y, lo, hi)
	if err != nil {
		return SpanSet{}, err
	}
	return a.Intersect(b), nil
}

// OrF is disjunction.
type OrF struct{ X, Y TimeFormula }

// String implements TimeFormula.
func (f OrF) String() string { return "(" + f.X.String() + " ∨ " + f.Y.String() + ")" }

// Holds implements TimeFormula.
func (f OrF) Holds(ctx *EvalContext, y mod.OID, lo, hi float64) (SpanSet, error) {
	a, err := f.X.Holds(ctx, y, lo, hi)
	if err != nil {
		return SpanSet{}, err
	}
	b, err := f.Y.Holds(ctx, y, lo, hi)
	if err != nil {
		return SpanSet{}, err
	}
	return a.Union(b), nil
}

// NotF is negation (complement within the window, closed-span semantics).
type NotF struct{ X TimeFormula }

// String implements TimeFormula.
func (f NotF) String() string { return "¬" + f.X.String() }

// Holds implements TimeFormula.
func (f NotF) Holds(ctx *EvalContext, y mod.OID, lo, hi float64) (SpanSet, error) {
	a, err := f.X.Holds(ctx, y, lo, hi)
	if err != nil {
		return SpanSet{}, err
	}
	return a.Complement(lo, hi), nil
}

// ForAllOthers holds at t when Make(z) holds of y for every other object
// z — the universal quantifier of Example 4.
type ForAllOthers struct {
	Make func(z mod.OID) TimeFormula
	Desc string
}

// String implements TimeFormula.
func (f ForAllOthers) String() string {
	if f.Desc != "" {
		return "∀z(" + f.Desc + ")"
	}
	return "∀z(...)"
}

// Holds implements TimeFormula.
func (f ForAllOthers) Holds(ctx *EvalContext, y mod.OID, lo, hi float64) (SpanSet, error) {
	out := NewSpanSet(Span{lo, hi})
	for z := range ctx.Trajs {
		if z == y {
			continue
		}
		s, err := f.Make(z).Holds(ctx, y, lo, hi)
		if err != nil {
			return SpanSet{}, err
		}
		out = out.Intersect(s)
		if out.IsEmpty() {
			return out, nil
		}
	}
	return out, nil
}

// Evaluate computes the span set of every object: the Section 3 analogue
// of the snapshot answer. Objects with empty sets are omitted.
func Evaluate(db *mod.DB, f TimeFormula, lo, hi float64) (map[mod.OID]SpanSet, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("cql: bad window [%g,%g]", lo, hi)
	}
	ctx := NewContext(db)
	out := map[mod.OID]SpanSet{}
	for y := range ctx.Trajs {
		s, err := f.Holds(ctx, y, lo, hi)
		if err != nil {
			return nil, fmt.Errorf("cql: evaluate %s: %w", y, err)
		}
		if !s.IsEmpty() {
			out[y] = s
		}
	}
	return out, nil
}

// Sometime is the paper's existential (accumulative) reading: objects
// satisfying the formula at some instant of the window.
func Sometime(db *mod.DB, f TimeFormula, lo, hi float64) ([]mod.OID, error) {
	m, err := Evaluate(db, f, lo, hi)
	if err != nil {
		return nil, err
	}
	var out []mod.OID
	for o := range m {
		out = append(out, o)
	}
	sortOIDs(out)
	return out, nil
}

// Always is the universal (persevering) reading: objects satisfying the
// formula throughout the window.
func Always(db *mod.DB, f TimeFormula, lo, hi float64) ([]mod.OID, error) {
	m, err := Evaluate(db, f, lo, hi)
	if err != nil {
		return nil, err
	}
	var out []mod.OID
	for o, s := range m {
		if s.Measure() >= (hi-lo)-1e-9 {
			out = append(out, o)
		}
	}
	sortOIDs(out)
	return out, nil
}

// clipLife intersects [lo,hi] with the trajectory lifetime.
func clipLife(tr trajectory.Trajectory, lo, hi float64) (float64, float64, bool) {
	clo := math.Max(lo, tr.Start())
	chi := math.Min(hi, tr.End())
	return clo, chi, clo < chi
}

// sortOIDs sorts ascending (insertion sort; answer lists are short).
func sortOIDs(os []mod.OID) {
	for i := 1; i < len(os); i++ {
		for j := i; j > 0 && os[j] < os[j-1]; j-- {
			os[j], os[j-1] = os[j-1], os[j]
		}
	}
}
