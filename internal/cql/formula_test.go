package cql

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

func formulaDB(t *testing.T) *mod.DB {
	t.Helper()
	db := mod.NewDB(2, -1)
	// o1 crosses the box [0,10]^2 during [5,15]; o2 lives inside it;
	// o3 is far away; o4 approaches the origin.
	must(t, db.Load(1, trajectory.Linear(0, geom.Of(1, 0), geom.Of(-5, 5))))
	must(t, db.Load(2, trajectory.Stationary(0, geom.Of(5, 5))))
	must(t, db.Load(3, trajectory.Stationary(0, geom.Of(100, 100))))
	must(t, db.Load(4, trajectory.Linear(0, geom.Of(-1, 0), geom.Of(30, 0))))
	return db
}

func TestInRegionFormula(t *testing.T) {
	db := formulaDB(t)
	f := InRegion{Region: Box(geom.Of(0, 0), geom.Of(10, 10))}
	res, err := Evaluate(db, f, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	s1 := res[1]
	if got := s1.Spans(); len(got) != 1 || math.Abs(got[0].Lo-5) > 1e-9 || math.Abs(got[0].Hi-15) > 1e-9 {
		t.Errorf("o1 spans %v, want [5,15]", s1)
	}
	if res[2].Measure() < 39.9 {
		t.Errorf("o2 should be inside throughout: %v", res[2])
	}
	if _, ok := res[3]; ok {
		t.Errorf("o3 should never be inside")
	}
	// Quantified readings.
	some, err := Sometime(db, f, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 3 || some[0] != 1 || some[1] != 2 || some[2] != 4 {
		t.Errorf("Sometime = %v", some)
	}
	always, err := Always(db, f, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(always) != 1 || always[0] != 2 {
		t.Errorf("Always = %v", always)
	}
}

func TestWithinDistFormula(t *testing.T) {
	db := formulaDB(t)
	origin := trajectory.Stationary(0, geom.Of(0, 0))
	f := WithinDist{Target: origin, C2: 100} // within distance 10
	res, err := Evaluate(db, f, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	// o4 position (30-t, 0): within 10 of origin for t in [20, 40].
	s4 := res[4]
	if got := s4.Spans(); len(got) != 1 || math.Abs(got[0].Lo-20) > 1e-7 {
		t.Errorf("o4 spans %v, want from 20", s4)
	}
	if _, ok := res[3]; ok {
		t.Error("o3 never within 10")
	}
}

func TestConnectivesAndNegation(t *testing.T) {
	db := formulaDB(t)
	box := InRegion{Region: Box(geom.Of(0, 0), geom.Of(10, 10))}
	origin := trajectory.Stationary(0, geom.Of(0, 0))
	near := WithinDist{Target: origin, C2: 64} // within 8
	// Inside the box AND NOT within 8 of the origin.
	f := AndF{X: box, Y: NotF{X: near}}
	res, err := Evaluate(db, f, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	// o1: in box [5,15]; near-origin: |(-5+t,5)| <= 8 <=> (t-5)^2 <= 39
	// <=> t in [5-6.24, 5+6.24]; so AND NOT near = [11.24, 15].
	s1 := res[1]
	want := 5 + math.Sqrt(39)
	if got := s1.Spans(); len(got) != 1 || math.Abs(got[0].Lo-want) > 1e-6 {
		t.Errorf("o1 spans %v, want from %g", s1, want)
	}
	// Or: in box OR near origin.
	f2 := OrF{X: box, Y: near}
	res2, err := Evaluate(db, f2, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res2[1].Measure() <= res[1].Measure() {
		t.Error("OR should cover at least as much as AND NOT")
	}
	if f.String() == "" || f2.String() == "" {
		t.Error("String")
	}
}

func TestForAllOthersIsOneNN(t *testing.T) {
	db := formulaDB(t)
	target := trajectory.Stationary(0, geom.Of(0, 0))
	oneNN := ForAllOthers{
		Desc: "dist(y) <= dist(z)",
		Make: func(z mod.OID) TimeFormula { return CloserThan{Target: target, Other: z} },
	}
	res, err := Evaluate(db, oneNN, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the cell-decomposition baseline.
	naive, err := OneNNNaive(db, target, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range db.Objects() {
		for _, tt := range []float64{0.7, 9.9, 21.3, 33.1, 39.2} {
			a := res[o].Contains(tt)
			b := naive[o].Contains(tt)
			if a != b {
				t.Errorf("%s t=%g: formula %v vs naive %v", o, tt, a, b)
			}
		}
	}
}
