package cql

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Span is a closed time interval [Lo, Hi] (degenerate points allowed).
type Span struct {
	Lo, Hi float64
}

// String implements fmt.Stringer.
func (s Span) String() string { return fmt.Sprintf("[%g,%g]", s.Lo, s.Hi) }

// Contains reports whether t is in the span.
func (s Span) Contains(t float64) bool { return t >= s.Lo && t <= s.Hi }

// Empty reports whether the span has no points.
func (s Span) Empty() bool { return s.Lo > s.Hi }

// SpanSet is a union of disjoint, sorted closed spans — the finite
// representation of one-dimensional semi-algebraic time sets produced by
// quantifier elimination.
type SpanSet struct {
	spans []Span
}

// NewSpanSet normalizes arbitrary spans into a canonical set.
func NewSpanSet(spans ...Span) SpanSet {
	var ss SpanSet
	for _, s := range spans {
		if !s.Empty() {
			ss.spans = append(ss.spans, s)
		}
	}
	ss.normalize()
	return ss
}

const glueTol = 1e-9

func (ss *SpanSet) normalize() {
	if len(ss.spans) == 0 {
		return
	}
	sort.Slice(ss.spans, func(i, j int) bool { return ss.spans[i].Lo < ss.spans[j].Lo })
	out := ss.spans[:1]
	for _, s := range ss.spans[1:] {
		last := &out[len(out)-1]
		if s.Lo <= last.Hi+glueTol {
			if s.Hi > last.Hi {
				last.Hi = s.Hi
			}
			continue
		}
		out = append(out, s)
	}
	ss.spans = out
}

// Spans returns the canonical spans.
func (ss SpanSet) Spans() []Span {
	out := make([]Span, len(ss.spans))
	copy(out, ss.spans)
	return out
}

// IsEmpty reports whether the set has no points.
func (ss SpanSet) IsEmpty() bool { return len(ss.spans) == 0 }

// Contains reports membership of t.
func (ss SpanSet) Contains(t float64) bool {
	i := sort.Search(len(ss.spans), func(i int) bool { return ss.spans[i].Hi >= t })
	return i < len(ss.spans) && ss.spans[i].Contains(t)
}

// Measure returns the total length.
func (ss SpanSet) Measure() float64 {
	m := 0.0
	for _, s := range ss.spans {
		m += s.Hi - s.Lo
	}
	return m
}

// Union returns the union with other.
func (ss SpanSet) Union(other SpanSet) SpanSet {
	return NewSpanSet(append(ss.Spans(), other.Spans()...)...)
}

// Intersect returns the intersection with other.
func (ss SpanSet) Intersect(other SpanSet) SpanSet {
	var out []Span
	i, j := 0, 0
	for i < len(ss.spans) && j < len(other.spans) {
		a, b := ss.spans[i], other.spans[j]
		lo, hi := math.Max(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)
		if lo <= hi {
			out = append(out, Span{lo, hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return NewSpanSet(out...)
}

// Complement returns [lo, hi] minus the set (closure of the complement:
// boundary points are kept, matching the closed-span representation).
func (ss SpanSet) Complement(lo, hi float64) SpanSet {
	var out []Span
	cur := lo
	for _, s := range ss.spans {
		if s.Hi < lo {
			continue
		}
		if s.Lo > hi {
			break
		}
		if s.Lo > cur {
			out = append(out, Span{cur, s.Lo})
		}
		if s.Hi > cur {
			cur = s.Hi
		}
	}
	if cur < hi {
		out = append(out, Span{cur, hi})
	}
	return NewSpanSet(out...)
}

// Clip restricts the set to [lo, hi].
func (ss SpanSet) Clip(lo, hi float64) SpanSet {
	return ss.Intersect(NewSpanSet(Span{lo, hi}))
}

// LeftEndpoints returns the left boundary of each maximal span — the
// "entering" instants of Example 3 when the set is "inside the region".
func (ss SpanSet) LeftEndpoints() []float64 {
	out := make([]float64, len(ss.spans))
	for i, s := range ss.spans {
		out[i] = s.Lo
	}
	return out
}

// String implements fmt.Stringer.
func (ss SpanSet) String() string {
	if len(ss.spans) == 0 {
		return "∅"
	}
	parts := make([]string, len(ss.spans))
	for i, s := range ss.spans {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ∪ ")
}
