package cql

// ParseFormula reads a time-dependent formula in a small concrete syntax
// mirroring the paper's FO(f_1,...,f_k) query examples (Section 3). The
// grammar, with `point` a parenthesized coordinate vector like (3, -4.5):
//
//	formula := or
//	or      := and { ("or" | "∨" | "|") and }
//	and     := unary { ("and" | "∧" | "&") unary }
//	unary   := ("not" | "¬" | "!") unary | atom
//	atom    := "(" formula ")"
//	         | "in" "box" "(" point "," point ")"          — Example 1
//	         | "in" "halfspace" "(" point "," number ")"   — a·x <= b
//	         | "within" number "of" point                  — Example 5
//	         | "closer" "to" point "than" oid              — Example 6
//	         | "closest" "to" point                        — ∀z quantified
//
// Both the Unicode connectives and their ASCII spellings are accepted.
// Stationary points stand in for the target trajectory of the distance
// atoms; programmatic construction remains available for moving targets.

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

// maxParseDepth bounds connective/paren nesting so that adversarial
// inputs (fuzzing, network queries) cannot overflow the goroutine stack.
const maxParseDepth = 64

// ParseFormula parses the concrete syntax above into a TimeFormula.
func ParseFormula(s string) (TimeFormula, error) {
	toks, err := lexFormula(s)
	if err != nil {
		return nil, fmt.Errorf("cql: %w", err)
	}
	p := &formulaParser{toks: toks}
	f, err := p.parseOr(0)
	if err != nil {
		return nil, fmt.Errorf("cql: %w", err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("cql: unexpected %q after formula", p.peek().text)
	}
	return f, nil
}

// MustParseFormula is ParseFormula for statically-valid inputs.
func MustParseFormula(s string) TimeFormula {
	f, err := ParseFormula(s)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokAnd
	tokOr
	tokNot
)

type formulaTok struct {
	kind tokKind
	text string
}

func lexFormula(s string) ([]formulaTok, error) {
	var toks []formulaTok
	rs := []rune(s)
	for i := 0; i < len(rs); {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, formulaTok{tokLParen, "("})
			i++
		case r == ')':
			toks = append(toks, formulaTok{tokRParen, ")"})
			i++
		case r == ',':
			toks = append(toks, formulaTok{tokComma, ","})
			i++
		case r == '∧' || r == '&':
			toks = append(toks, formulaTok{tokAnd, "and"})
			i++
		case r == '∨' || r == '|':
			toks = append(toks, formulaTok{tokOr, "or"})
			i++
		case r == '¬' || r == '!':
			toks = append(toks, formulaTok{tokNot, "not"})
			i++
		case unicode.IsLetter(r):
			j := i
			for j < len(rs) && unicode.IsLetter(rs[j]) {
				j++
			}
			word := strings.ToLower(string(rs[i:j]))
			switch word {
			case "and":
				toks = append(toks, formulaTok{tokAnd, word})
			case "or":
				toks = append(toks, formulaTok{tokOr, word})
			case "not":
				toks = append(toks, formulaTok{tokNot, word})
			default:
				toks = append(toks, formulaTok{tokIdent, word})
			}
			i = j
		case unicode.IsDigit(r) || r == '.' || r == '-' || r == '+':
			j := i + 1
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.' ||
				rs[j] == 'e' || rs[j] == 'E' ||
				((rs[j] == '+' || rs[j] == '-') && (rs[j-1] == 'e' || rs[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, formulaTok{tokNumber, string(rs[i:j])})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", r)
		}
	}
	return toks, nil
}

type formulaParser struct {
	toks []formulaTok
	pos  int
}

func (p *formulaParser) eof() bool { return p.pos >= len(p.toks) }

func (p *formulaParser) peek() formulaTok {
	if p.eof() {
		return formulaTok{tokIdent, "<end of input>"}
	}
	return p.toks[p.pos]
}

func (p *formulaParser) next() formulaTok {
	t := p.peek()
	if !p.eof() {
		p.pos++
	}
	return t
}

func (p *formulaParser) accept(k tokKind) bool {
	if !p.eof() && p.toks[p.pos].kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *formulaParser) expect(k tokKind, what string) error {
	if p.accept(k) {
		return nil
	}
	return fmt.Errorf("expected %s, found %q", what, p.peek().text)
}

func (p *formulaParser) expectWord(w string) error {
	if t := p.peek(); t.kind == tokIdent && t.text == w {
		p.pos++
		return nil
	}
	return fmt.Errorf("expected %q, found %q", w, p.peek().text)
}

func (p *formulaParser) parseOr(depth int) (TimeFormula, error) {
	if depth > maxParseDepth {
		return nil, fmt.Errorf("formula nested deeper than %d", maxParseDepth)
	}
	f, err := p.parseAnd(depth)
	if err != nil {
		return nil, err
	}
	for p.accept(tokOr) {
		g, err := p.parseAnd(depth)
		if err != nil {
			return nil, err
		}
		f = OrF{X: f, Y: g}
	}
	return f, nil
}

func (p *formulaParser) parseAnd(depth int) (TimeFormula, error) {
	f, err := p.parseUnary(depth)
	if err != nil {
		return nil, err
	}
	for p.accept(tokAnd) {
		g, err := p.parseUnary(depth)
		if err != nil {
			return nil, err
		}
		f = AndF{X: f, Y: g}
	}
	return f, nil
}

func (p *formulaParser) parseUnary(depth int) (TimeFormula, error) {
	if depth > maxParseDepth {
		return nil, fmt.Errorf("formula nested deeper than %d", maxParseDepth)
	}
	if p.accept(tokNot) {
		f, err := p.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		return NotF{X: f}, nil
	}
	return p.parseAtom(depth)
}

func (p *formulaParser) parseAtom(depth int) (TimeFormula, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.pos++
		f, err := p.parseOr(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, `")"`); err != nil {
			return nil, err
		}
		return f, nil
	case t.kind == tokIdent && t.text == "in":
		p.pos++
		return p.parseRegionAtom()
	case t.kind == tokIdent && t.text == "within":
		p.pos++
		c, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("of"); err != nil {
			return nil, err
		}
		pt, err := p.parsePoint()
		if err != nil {
			return nil, err
		}
		return WithinDist{Target: trajectory.Stationary(0, pt), C2: c * c}, nil
	case t.kind == tokIdent && t.text == "closer":
		p.pos++
		if err := p.expectWord("to"); err != nil {
			return nil, err
		}
		pt, err := p.parsePoint()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("than"); err != nil {
			return nil, err
		}
		oid, err := p.parseOID()
		if err != nil {
			return nil, err
		}
		return CloserThan{Target: trajectory.Stationary(0, pt), Other: oid}, nil
	case t.kind == tokIdent && t.text == "closest":
		p.pos++
		if err := p.expectWord("to"); err != nil {
			return nil, err
		}
		pt, err := p.parsePoint()
		if err != nil {
			return nil, err
		}
		target := trajectory.Stationary(0, pt)
		return ForAllOthers{
			Desc: fmt.Sprintf("dist(y,%v) <= dist(z,%v)", pt, pt),
			Make: func(z mod.OID) TimeFormula {
				return CloserThan{Target: target, Other: z}
			},
		}, nil
	default:
		return nil, fmt.Errorf("expected atom, found %q", t.text)
	}
}

// parseRegionAtom parses the tail of "in box(...)" / "in halfspace(...)".
func (p *formulaParser) parseRegionAtom() (TimeFormula, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("expected region kind after \"in\", found %q", t.text)
	}
	switch t.text {
	case "box":
		if err := p.expect(tokLParen, `"("`); err != nil {
			return nil, err
		}
		lo, err := p.parsePoint()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokComma, `","`); err != nil {
			return nil, err
		}
		hi, err := p.parsePoint()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, `")"`); err != nil {
			return nil, err
		}
		if len(lo) != len(hi) {
			return nil, fmt.Errorf("box corners have dimensions %d and %d", len(lo), len(hi))
		}
		return InRegion{Region: Box(lo, hi)}, nil
	case "halfspace":
		if err := p.expect(tokLParen, `"("`); err != nil {
			return nil, err
		}
		a, err := p.parsePoint()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokComma, `","`); err != nil {
			return nil, err
		}
		b, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, `")"`); err != nil {
			return nil, err
		}
		return InRegion{Region: HalfSpace(a, b)}, nil
	default:
		return nil, fmt.Errorf("unknown region kind %q (want box or halfspace)", t.text)
	}
}

// parsePoint parses "(" number { "," number } ")".
func (p *formulaParser) parsePoint() (geom.Vec, error) {
	if err := p.expect(tokLParen, `"(" opening a point`); err != nil {
		return nil, err
	}
	var v geom.Vec
	for {
		x, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		v = append(v, x)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if err := p.expect(tokRParen, `")" closing a point`); err != nil {
		return nil, err
	}
	return v, nil
}

func (p *formulaParser) parseNumber() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("expected number, found %q", t.text)
	}
	x, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", t.text)
	}
	return x, nil
}

func (p *formulaParser) parseOID() (mod.OID, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("expected object id, found %q", t.text)
	}
	n, err := strconv.ParseUint(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad object id %q", t.text)
	}
	return mod.OID(n), nil
}
