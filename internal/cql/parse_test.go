package cql

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

func TestParseFormulaValid(t *testing.T) {
	cases := []struct {
		in   string
		want func(TimeFormula) bool
	}{
		{"in box((0, 0), (10, 10))", func(f TimeFormula) bool {
			_, ok := f.(InRegion)
			return ok
		}},
		{"in halfspace((1, 0), 5)", func(f TimeFormula) bool {
			_, ok := f.(InRegion)
			return ok
		}},
		{"within 10 of (0, 0)", func(f TimeFormula) bool {
			w, ok := f.(WithinDist)
			return ok && w.C2 == 100
		}},
		{"closer to (3, -4.5) than 7", func(f TimeFormula) bool {
			c, ok := f.(CloserThan)
			return ok && c.Other == 7
		}},
		{"closest to (1, 2)", func(f TimeFormula) bool {
			_, ok := f.(ForAllOthers)
			return ok
		}},
		{"not within 5 of (0, 0)", func(f TimeFormula) bool {
			n, ok := f.(NotF)
			if !ok {
				return false
			}
			_, ok = n.X.(WithinDist)
			return ok
		}},
		// "and" binds tighter than "or".
		{"within 1 of (0,0) or within 2 of (0,0) and within 3 of (0,0)",
			func(f TimeFormula) bool {
				o, ok := f.(OrF)
				if !ok {
					return false
				}
				_, xOK := o.X.(WithinDist)
				_, yOK := o.Y.(AndF)
				return xOK && yOK
			}},
		// Parens override precedence.
		{"(within 1 of (0,0) or within 2 of (0,0)) and within 3 of (0,0)",
			func(f TimeFormula) bool {
				a, ok := f.(AndF)
				if !ok {
					return false
				}
				_, xOK := a.X.(OrF)
				return xOK
			}},
		// Unicode connectives.
		{"within 1 of (0,0) ∧ ¬(within 2 of (0,0) ∨ within 3 of (0,0))",
			func(f TimeFormula) bool {
				_, ok := f.(AndF)
				return ok
			}},
		// 3-d points, signed and scientific-notation numbers.
		{"in box((-1, -1, -1), (1e1, 1E1, +10.5))", func(f TimeFormula) bool {
			_, ok := f.(InRegion)
			return ok
		}},
	}
	for _, c := range cases {
		f, err := ParseFormula(c.in)
		if err != nil {
			t.Errorf("ParseFormula(%q): %v", c.in, err)
			continue
		}
		if !c.want(f) {
			t.Errorf("ParseFormula(%q) = %v: unexpected shape", c.in, f)
		}
	}
}

func TestParseFormulaInvalid(t *testing.T) {
	cases := []string{
		"",
		"in",
		"in box",
		"in box((0,0), (1,1,1))", // dimension mismatch
		"in sphere((0,0), 1)",    // unknown region kind
		"within of (0,0)",
		"within 5 of 3",          // point required
		"closer to (0,0) than x", // oid must be numeric
		"closer to (0,0) than -1",
		"within 1 of (0,0) and",          // dangling connective
		"within 1 of (0,0) within",       // trailing garbage
		"(within 1 of (0,0)",             // unbalanced paren
		"within 1 of (0,0) @",            // stray character
		strings.Repeat("not ", 100) + "", // too deep / dangling
		strings.Repeat("(", 200) + "within 1 of (0,0)" + strings.Repeat(")", 200),
	}
	for _, in := range cases {
		if f, err := ParseFormula(in); err == nil {
			t.Errorf("ParseFormula(%q) = %v, want error", in, f)
		}
	}
}

// TestParseFormulaEvaluates checks that a parsed formula and its
// programmatic twin answer identically over a small database.
func TestParseFormulaEvaluates(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.Load(1, trajectory.Linear(0, geom.Of(1, 0), geom.Of(-20, 0))); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(2, trajectory.Stationary(0, geom.Of(100, 100))); err != nil {
		t.Fatal(err)
	}

	parsed := MustParseFormula("within 10 of (0, 0)")
	direct := WithinDist{Target: trajectory.Stationary(0, geom.Of(0, 0)), C2: 100}

	got, err := Evaluate(db, parsed, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(db, direct, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed formula answers %d objects, direct %d", len(got), len(want))
	}
	for oid, ws := range want {
		gs, ok := got[oid]
		if !ok || len(gs.Spans()) != len(ws.Spans()) {
			t.Fatalf("object %d: parsed spans %v, direct %v", oid, gs, ws)
		}
	}
}

func FuzzParseFormula(f *testing.F) {
	seeds := []string{
		"in box((0, 0), (10, 10))",
		"in halfspace((1, 0), 5)",
		"within 10 of (0, 0)",
		"closer to (3, -4.5) than 7",
		"closest to (1, 2)",
		"not within 5 of (0,0) and (in box((0,0),(1,1)) or closest to (2,2))",
		"within 1 of (0,0) ∧ ¬(within 2 of (0,0) ∨ within 3 of (0,0))",
		"in box((-1e3, .5), (+1E3, 2.5))",
		"((((within 1 of (0)))))",
		"in box((0,0),(1,1,1))",
		"within 1 of (0,0) @",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// The parser must never panic and must uphold its contract:
		// exactly one of (formula, error) is non-nil.
		fm, err := ParseFormula(s)
		if err == nil && fm == nil {
			t.Fatalf("ParseFormula(%q) returned nil formula and nil error", s)
		}
		if err != nil && fm != nil {
			t.Fatalf("ParseFormula(%q) returned both a formula and error %v", s, err)
		}
		if fm != nil {
			// String must be total on parsed formulas.
			_ = fm.String()
		}
	})
}
