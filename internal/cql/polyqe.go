package cql

import (
	"fmt"
	"math"

	"repro/internal/piecewise"
	"repro/internal/poly"
)

// Univariate polynomial "quantifier elimination": the sign-condition
// solving that the paper's distance queries need once object variables
// are instantiated. A polynomial constraint p(t) <= 0 over a window
// decomposes into the spans between the roots of p where the sign
// condition holds — the one-variable case of cylindrical algebraic
// decomposition, which is all that Example 4's 1-NN requires.

// PolyOp is the comparison of a polynomial constraint p(t) Op 0.
type PolyOp int

// Polynomial constraint operators.
const (
	PLE PolyOp = iota // p(t) <= 0
	PLT               // p(t) <  0
	PGE               // p(t) >= 0
	PGT               // p(t) >  0
	PEQ               // p(t) == 0
)

// String implements fmt.Stringer.
func (op PolyOp) String() string {
	switch op {
	case PLE:
		return "<=0"
	case PLT:
		return "<0"
	case PGE:
		return ">=0"
	case PGT:
		return ">0"
	case PEQ:
		return "=0"
	default:
		return "?"
	}
}

// PolyConstraint is p(t) Op 0.
type PolyConstraint struct {
	P  poly.Poly
	Op PolyOp
}

// Solve returns the subset of [lo, hi] satisfying the constraint, as a
// closed span set (strict operators yield the closure of the open set:
// span boundaries are the roots; this matches the closed representation
// used throughout and the paper's closed time intervals).
func (pc PolyConstraint) Solve(lo, hi float64) (SpanSet, error) {
	if lo > hi {
		return SpanSet{}, fmt.Errorf("cql: inverted window [%g,%g]", lo, hi)
	}
	p := pc.P
	if p.IsZero() {
		switch pc.Op {
		case PLE, PGE, PEQ:
			return NewSpanSet(Span{lo, hi}), nil
		default:
			return SpanSet{}, nil
		}
	}
	roots, _ := p.RootsIn(lo, hi)
	// Decompose [lo, hi] at the roots and test a sample per cell.
	bounds := append([]float64{lo}, roots...)
	bounds = append(bounds, hi)
	var spans []Span
	keepSign := func(s int) bool {
		switch pc.Op {
		case PLE:
			return s <= 0
		case PLT:
			return s < 0
		case PGE:
			return s >= 0
		case PGT:
			return s > 0
		case PEQ:
			return s == 0
		}
		return false
	}
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		if b < a {
			continue
		}
		mid := 0.5 * (a + b)
		if keepSign(p.SignAt(mid)) {
			spans = append(spans, Span{a, b})
		}
	}
	// Root points themselves satisfy <=, >=, ==.
	if pc.Op == PLE || pc.Op == PGE || pc.Op == PEQ {
		for _, r := range roots {
			spans = append(spans, Span{r, r})
		}
	}
	return NewSpanSet(spans...), nil
}

// SolvePolySystem intersects several polynomial constraints over [lo, hi].
func SolvePolySystem(lo, hi float64, cs ...PolyConstraint) (SpanSet, error) {
	out := NewSpanSet(Span{lo, hi})
	for _, c := range cs {
		s, err := c.Solve(lo, hi)
		if err != nil {
			return SpanSet{}, err
		}
		out = out.Intersect(s)
		if out.IsEmpty() {
			return out, nil
		}
	}
	return out, nil
}

// SolvePiecewiseLE returns the subset of [lo, hi] where the piecewise
// polynomial f satisfies f(t) <= 0, by solving each piece.
func SolvePiecewiseLE(f piecewise.Func, lo, hi float64) (SpanSet, error) {
	var spans []Span
	for _, pc := range f.Pieces() {
		a := math.Max(pc.Start, lo)
		b := math.Min(pc.End, hi)
		if !(a <= b) {
			continue
		}
		s, err := (PolyConstraint{P: pc.P, Op: PLE}).Solve(a, b)
		if err != nil {
			return SpanSet{}, err
		}
		spans = append(spans, s.Spans()...)
	}
	return NewSpanSet(spans...), nil
}
