package cql

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/piecewise"
	"repro/internal/poly"
	"repro/internal/trajectory"
)

// The paper's example queries evaluated the constraint-database way
// (Proposition 1): instantiate object variables, eliminate the real
// variables by linear/univariate-polynomial QE, and recompute from
// scratch whenever asked. These are the baselines the plane sweep is
// measured against in experiment E5 — correct, polynomial-time, and
// oblivious to incrementality.

// EnteringResult lists, per object, the instants at which it entered the
// region during the query window.
type EnteringResult map[mod.OID][]float64

// Entering evaluates Example 3: all objects entering the region between
// tau1 and tau2. An object enters at t when it is inside at t but not
// inside during some open interval immediately before t; for
// piecewise-linear motion those are exactly the left endpoints of the
// maximal inside-spans, excluding a span that begins at the object's
// creation instant.
func Entering(db *mod.DB, region Region, tau1, tau2 float64) (EnteringResult, error) {
	out := EnteringResult{}
	for o, tr := range db.Trajectories() {
		if !tr.IsDefined() || tr.End() < tau1 || tr.Start() > tau2 {
			continue
		}
		// Look slightly before the window so an entering instant at
		// tau1 is classified correctly.
		lo := math.Max(tr.Start(), tau1-enteringLookback(tr, tau1))
		inside, err := region.TimesInside(tr, lo, math.Min(tr.End(), tau2))
		if err != nil {
			return nil, fmt.Errorf("cql: entering(%s): %w", o, err)
		}
		for _, s := range inside.Spans() {
			t := s.Lo
			if t < tau1 || t > tau2 {
				continue
			}
			if t <= tr.Start() {
				continue // existed inside from creation: never "entered"
			}
			out[o] = append(out[o], t)
		}
	}
	return out, nil
}

// enteringLookback picks how far before tau1 to examine: one piece back
// is enough for piecewise-linear motion.
func enteringLookback(tr trajectory.Trajectory, tau1 float64) float64 {
	look := 1.0
	for _, b := range tr.Breaks() {
		if b < tau1 && tau1-b < look {
			look = (tau1 - b) / 2
		}
	}
	return look
}

// NNResult maps each object to the time spans (within the window) during
// which it is among the k nearest.
type NNResult map[mod.OID]SpanSet

// OneNNNaive evaluates Example 4's 1-NN by direct quantifier
// elimination: for each candidate y, intersect over all z the solution of
// the polynomial constraint d_y(t) - d_z(t) <= 0. Cost O(N^2) polynomial
// solves per evaluation, recomputed from scratch — the Proposition 1
// baseline.
func OneNNNaive(db *mod.DB, gamma trajectory.Trajectory, tau1, tau2 float64) (NNResult, error) {
	d := gdist.EuclideanSq{Query: gamma}
	trajs := db.Trajectories()
	type entry struct {
		o mod.OID
		f curve
	}
	var entries []entry
	for o, tr := range trajs {
		if !tr.IsDefined() || tr.End() <= tau1 || tr.Start() >= tau2 {
			continue
		}
		cf, err := d.Curve(tr, tau1, tau2)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{o, curve{cf, math.Max(tr.Start(), tau1), math.Min(tr.End(), tau2)}})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].o < entries[j].o })
	out := NNResult{}
	for _, y := range entries {
		spans := NewSpanSet(Span{y.f.lo, y.f.hi})
		for _, z := range entries {
			if z.o == y.o {
				continue
			}
			diff, err := y.f.f.Sub(z.f.f)
			if err != nil {
				// Disjoint lifetimes: z imposes no constraint outside
				// its life; clip instead.
				continue
			}
			le, err := SolvePiecewiseLE(diff, y.f.lo, y.f.hi)
			if err != nil {
				return nil, err
			}
			// Outside z's lifetime the constraint d_y <= d_z is
			// vacuously true.
			outside := NewSpanSet(Span{y.f.lo, y.f.hi}).
				Intersect(NewSpanSet(Span{z.f.lo, z.f.hi}).Complement(y.f.lo, y.f.hi))
			spans = spans.Intersect(le.Union(outside))
			if spans.IsEmpty() {
				break
			}
		}
		if !spans.IsEmpty() {
			out[y.o] = spans
		}
	}
	return out, nil
}

type curve struct {
	f      pw
	lo, hi float64
}

// KNNNaive evaluates k-NN by full cell decomposition: collect every
// pairwise intersection time of the distance curves, cut the window into
// cells, and sort the distances once per cell. This is both the "QE with
// cell decomposition" baseline and the oracle used to validate the sweep
// in the experiment harness. Cost O(N^2) root finding plus
// O(cells * N log N).
func KNNNaive(db *mod.DB, gamma trajectory.Trajectory, k int, tau1, tau2 float64) (NNResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("cql: k = %d", k)
	}
	d := gdist.EuclideanSq{Query: gamma}
	type entry struct {
		o      mod.OID
		f      pw
		lo, hi float64
	}
	var entries []entry
	for o, tr := range db.Trajectories() {
		if !tr.IsDefined() || tr.End() <= tau1 || tr.Start() >= tau2 {
			continue
		}
		cf, err := d.Curve(tr, tau1, tau2)
		if err != nil {
			return nil, err
		}
		lo, hi := cf.Domain()
		entries = append(entries, entry{o, cf, lo, hi})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].o < entries[j].o })
	// Cell boundaries: window ends, lifetimes, and pairwise crossings.
	cuts := []float64{tau1, tau2}
	for _, e := range entries {
		cuts = append(cuts, e.lo, e.hi)
	}
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			diff, err := entries[i].f.Sub(entries[j].f)
			if err != nil {
				continue
			}
			for _, pc := range diff.Pieces() {
				roots, _ := pc.P.RootsIn(pc.Start, pc.End)
				cuts = append(cuts, roots...)
			}
		}
	}
	sort.Float64s(cuts)
	uniq := cuts[:0]
	for _, c := range cuts {
		if c < tau1 || c > tau2 {
			continue
		}
		if len(uniq) == 0 || c-uniq[len(uniq)-1] > 1e-9 {
			uniq = append(uniq, c)
		}
	}
	out := map[mod.OID][]Span{}
	for i := 0; i+1 < len(uniq); i++ {
		a, b := uniq[i], uniq[i+1]
		mid := 0.5 * (a + b)
		type ov struct {
			o mod.OID
			v float64
		}
		var vs []ov
		for _, e := range entries {
			if mid < e.lo || mid > e.hi {
				continue
			}
			vs = append(vs, ov{e.o, e.f.Eval(mid)})
		}
		sort.Slice(vs, func(x, y int) bool {
			if vs[x].v != vs[y].v { //modlint:allow floatcmp -- comparator: strict weak ordering needs exact compares; ties break by OID
				return vs[x].v < vs[y].v
			}
			return vs[x].o < vs[y].o
		})
		top := k
		if top > len(vs) {
			top = len(vs)
		}
		for _, e := range vs[:top] {
			out[e.o] = append(out[e.o], Span{a, b})
		}
	}
	res := NNResult{}
	for o, spans := range out {
		res[o] = NewSpanSet(spans...)
	}
	return res, nil
}

// WithinNaive evaluates the threshold query "g-distance to gamma is at
// most c" over [tau1, tau2] the constraint-database way: per object,
// instantiate the distance term as a piecewise polynomial and eliminate
// the time variable by exact univariate QE (SolvePiecewiseLE on
// f(t) - c). No sweep, no incrementality — the per-object counterpart
// of Proposition 1, and the oracle the differential harness checks the
// sweep's Within evaluator against.
func WithinNaive(db *mod.DB, gamma trajectory.Trajectory, c float64, tau1, tau2 float64) (NNResult, error) {
	d := gdist.EuclideanSq{Query: gamma}
	out := NNResult{}
	for o, tr := range db.Trajectories() {
		if !tr.IsDefined() || tr.End() <= tau1 || tr.Start() >= tau2 {
			continue
		}
		cf, err := d.Curve(tr, tau1, tau2)
		if err != nil {
			return nil, err
		}
		lo, hi := cf.Domain()
		ss, err := SolvePiecewiseLE(cf.AddPoly(poly.Constant(-c)),
			math.Max(lo, tau1), math.Min(hi, tau2))
		if err != nil {
			return nil, err
		}
		if !ss.IsEmpty() {
			out[o] = ss
		}
	}
	return out, nil
}

// pw aliases the piecewise function type used by the naive evaluators.
type pw = piecewise.Func
