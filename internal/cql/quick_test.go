package cql

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genSpans builds a normalized span set from raw fuzz input.
func genSpans(raw []uint16) SpanSet {
	var spans []Span
	for i := 0; i+1 < len(raw); i += 2 {
		lo := float64(raw[i] % 1000)
		hi := lo + float64(raw[i+1]%100)
		spans = append(spans, Span{lo, hi})
	}
	return NewSpanSet(spans...)
}

// offBoundary reports whether t is comfortably away from every span
// boundary of the given sets (closed-set boundary semantics make exact
// boundary membership ambiguous under complement).
func offBoundary(t float64, sets ...SpanSet) bool {
	for _, ss := range sets {
		for _, s := range ss.Spans() {
			if math.Abs(t-s.Lo) < 1e-6 || math.Abs(t-s.Hi) < 1e-6 {
				return false
			}
		}
	}
	return true
}

// Property: union membership is the disjunction of memberships.
func TestQuickUnionMembership(t *testing.T) {
	f := func(rawA, rawB []uint16, seed int64) bool {
		a, b := genSpans(rawA), genSpans(rawB)
		u := a.Union(b)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			x := rng.Float64() * 1100
			if !offBoundary(x, a, b, u) {
				continue
			}
			if u.Contains(x) != (a.Contains(x) || b.Contains(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: intersection membership is the conjunction of memberships.
func TestQuickIntersectMembership(t *testing.T) {
	f := func(rawA, rawB []uint16, seed int64) bool {
		a, b := genSpans(rawA), genSpans(rawB)
		x := a.Intersect(b)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			p := rng.Float64() * 1100
			if !offBoundary(p, a, b, x) {
				continue
			}
			if x.Contains(p) != (a.Contains(p) && b.Contains(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: complement within a window flips membership off boundaries,
// and double complement restores it.
func TestQuickComplement(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		a := genSpans(raw)
		const lo, hi = 0.0, 1200.0
		c := a.Complement(lo, hi)
		cc := c.Complement(lo, hi)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			p := lo + rng.Float64()*(hi-lo)
			if !offBoundary(p, a, c, cc) {
				continue
			}
			if c.Contains(p) == a.Contains(p) {
				return false
			}
			if cc.Contains(p) != a.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: measure is monotone under union and subadditive.
func TestQuickMeasure(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a, b := genSpans(rawA), genSpans(rawB)
		u := a.Union(b)
		const tol = 1e-6
		if u.Measure() < a.Measure()-tol || u.Measure() < b.Measure()-tol {
			return false
		}
		return u.Measure() <= a.Measure()+b.Measure()+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
