package cql

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/poly"
	"repro/internal/trajectory"
)

// Region is a spatial region represented, as in constraint databases, by
// a disjunction of conjunctions of linear constraints over the coordinate
// variables "x0", "x1", ... (a union of convex polytopes).
type Region struct {
	Disjuncts []Conjunction
	Dim       int
}

// coordVar names coordinate i.
func coordVar(i int) string { return fmt.Sprintf("x%d", i) }

// Box builds the axis-aligned box [lo_i, hi_i] as a region.
func Box(lo, hi geom.Vec) Region {
	if len(lo) != len(hi) {
		panic("cql: box corner dimension mismatch")
	}
	var cj Conjunction
	for i := range lo {
		cj = append(cj,
			NewConstraint(LE, hi[i], map[string]float64{coordVar(i): 1}),
			NewConstraint(LE, -lo[i], map[string]float64{coordVar(i): -1}),
		)
	}
	return Region{Disjuncts: []Conjunction{cj}, Dim: len(lo)}
}

// HalfSpace builds the region a.x <= b.
func HalfSpace(a geom.Vec, b float64) Region {
	coeffs := map[string]float64{}
	for i, c := range a {
		if c != 0 { //modlint:allow floatcmp -- caller-supplied normal component, untouched: dropping exact zeros only
			coeffs[coordVar(i)] = c
		}
	}
	return Region{Disjuncts: []Conjunction{{NewConstraint(LE, b, coeffs)}}, Dim: len(a)}
}

// ConvexPolygon builds a 2-D convex region from counter-clockwise
// vertices (each consecutive pair contributes an inward half-plane).
func ConvexPolygon(vertices ...geom.Vec) (Region, error) {
	if len(vertices) < 3 {
		return Region{}, fmt.Errorf("cql: polygon needs >= 3 vertices, got %d", len(vertices))
	}
	var cj Conjunction
	n := len(vertices)
	for i := 0; i < n; i++ {
		p, q := vertices[i], vertices[(i+1)%n]
		if len(p) != 2 || len(q) != 2 {
			return Region{}, fmt.Errorf("cql: polygon vertices must be 2-D")
		}
		// Edge p->q; inward normal for CCW order: (-(qy-py), qx-px).
		nx, ny := -(q[1] - p[1]), q[0]-p[0]
		// Inside: n.(x - p) >= 0  =>  -n.x <= -n.p
		cj = append(cj, NewConstraint(LE, -(nx*p[0]+ny*p[1]),
			map[string]float64{coordVar(0): -nx, coordVar(1): -ny}))
	}
	return Region{Disjuncts: []Conjunction{cj}, Dim: 2}, nil
}

// Union combines regions of equal dimension.
func (r Region) Union(other Region) Region {
	return Region{Disjuncts: append(r.Disjuncts, other.Disjuncts...), Dim: r.Dim}
}

// Contains reports whether point x lies in the region.
func (r Region) Contains(x geom.Vec) (bool, error) {
	assign := map[string]float64{}
	for i, v := range x {
		assign[coordVar(i)] = v
	}
	for _, cj := range r.Disjuncts {
		ok, err := cj.Eval(assign)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// TimesInside computes, by substituting the trajectory's motion into the
// region's constraints (the constraint-database way: x_i := A_i t + B_i
// per linear piece), the set of times in [lo, hi] at which the object is
// inside the region. Each substituted conjunction is a one-variable
// linear system whose solution set is an interval.
func (r Region) TimesInside(tr trajectory.Trajectory, lo, hi float64) (SpanSet, error) {
	if tr.Dim() != r.Dim {
		return SpanSet{}, fmt.Errorf("cql: region dim %d vs trajectory dim %d", r.Dim, tr.Dim())
	}
	var all []Span
	for _, pc := range tr.Pieces() {
		plo := math.Max(pc.Start, lo)
		phi := math.Min(pc.End, hi)
		if !(plo <= phi) {
			continue
		}
		off := pc.GlobalOffset()
		for _, cj := range r.Disjuncts {
			// Substitute x_i := A_i * t + off_i.
			sub := cj
			for i := 0; i < r.Dim; i++ {
				sub = sub.SubstituteLinear(coordVar(i), "t", pc.A[i], off[i])
			}
			span, ok, err := solveLinear1D(sub, "t", plo, phi)
			if err != nil {
				return SpanSet{}, err
			}
			if ok {
				all = append(all, span)
			}
		}
	}
	return NewSpanSet(all...), nil
}

// solveLinear1D intersects one-variable linear constraints with [lo, hi].
// Strict constraints are treated as closed at this representation level
// (consistent with the closed-span time sets).
func solveLinear1D(cj Conjunction, v string, lo, hi float64) (Span, bool, error) {
	for _, c := range cj {
		for w := range c.Coeffs {
			if w != v {
				return Span{}, false, fmt.Errorf("cql: residual variable %q in 1-D solve", w)
			}
		}
	}
	for _, c := range cj {
		coef := c.Coeff(v)
		switch {
		case poly.ApproxZero(coef, coeffEps):
			bad, err := c.triviallyFalse()
			if err != nil {
				return Span{}, false, err
			}
			if bad {
				return Span{}, false, nil
			}
		case c.Op == EQ:
			x := c.RHS / coef
			if x < lo || x > hi {
				return Span{}, false, nil
			}
			lo, hi = x, x
		case coef > 0: // v <= RHS/coef
			hi = math.Min(hi, c.RHS/coef)
		default: // v >= RHS/coef
			lo = math.Max(lo, c.RHS/coef)
		}
	}
	if lo > hi {
		return Span{}, false, nil
	}
	return Span{lo, hi}, true, nil
}
