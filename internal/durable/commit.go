package durable

// Group commit: the journal commit pipeline that amortizes fsyncs over
// concurrent appliers.
//
// With CommitGroup, Apply callers do not fsync. They apply (which
// buffers the journal entry under the journal's lock and assigns it a
// sequence number), then block in WaitDurable until the committer
// goroutine's next fsync covers their entry. The committer loop reads
// the journal's high-water sequence, issues one flush+fsync, and
// resolves every waiter at or below that sequence — so however many
// entries arrived while the previous fsync was in flight are all made
// durable by the next one. Under concurrency the entries-per-fsync
// ratio grows with offered load and the per-update fsync cost shrinks
// proportionally; this is classic write-ahead-log group commit.
//
// The ack contract is exactly PR 4's crash-matrix guarantee: an update
// whose Apply+WaitDurable pair returned nil is on stable storage and
// survives any later crash. The contract is conservative in the other
// direction — a sync or rotation failure resolves the affected sequence
// range with an error even when a concurrent checkpoint may yet persist
// those entries via its snapshot; a false "not durable" never breaks
// "acked => recovered".

import (
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/mod"
)

// CommitPolicy selects how an applied update becomes durable.
type CommitPolicy int

const (
	// CommitFlushEach flushes (no fsync) the journal after every update:
	// an acked update survives a process crash (kill -9) but not a power
	// failure. The historical default.
	CommitFlushEach CommitPolicy = iota
	// CommitNone performs no per-update flush; the loss bound on a
	// process crash is the journal's write buffer. Fastest, for bulk
	// loads and replays that checkpoint at the end.
	CommitNone
	// CommitSyncEach flushes and fsyncs after every update: the
	// strongest per-update guarantee, at one fsync per update.
	CommitSyncEach
	// CommitGroup enables group commit: appliers enqueue entries, a
	// committer goroutine coalesces them into one fsync, and
	// Store.WaitDurable (called by Engine.Apply/ApplyBatch) blocks until
	// the fsync covering the caller's entries returns. Per-update
	// guarantee of CommitSyncEach at a fraction of the fsyncs.
	CommitGroup
)

// errCommitterClosed resolves waiters that outlive the committer.
var errCommitterClosed = errors.New("durable: store closed before commit")

// seqRange records a resolved-with-error sequence interval (lo, hi]: a
// sync or rotation failure whose entries must never be acked, even
// though later fsyncs (on a fresh segment) succeed beyond it.
type seqRange struct {
	lo, hi uint64
	err    error
}

// committer is the per-store group-commit pipeline.
type committer struct {
	j        *mod.Journal
	interval time.Duration // coalescing window before each fsync (0: none)
	maxBatch int           // skip the window once this many entries wait
	m        *engineMetrics

	mu   sync.Mutex
	cond *sync.Cond
	// Watermarks over the journal sequence: every seq <= resolved has a
	// known outcome; seqs <= synced are durable unless claimed by a
	// failed range (checked first — failure is sticky and conservative).
	want     uint64 // highest seq any waiter needs resolved
	resolved uint64
	synced   uint64
	failed   []seqRange
	closed   bool
	done     chan struct{}
}

func newCommitter(j *mod.Journal, interval time.Duration, maxBatch int, m *engineMetrics) *committer {
	if maxBatch <= 0 {
		maxBatch = 256
	}
	c := &committer{j: j, interval: interval, maxBatch: maxBatch, m: m, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c
}

// run is the committer loop: sleep until a waiter needs an fsync,
// optionally hold a coalescing window, then fsync and resolve everything
// the fsync covered. Entries keep accumulating in the journal buffer
// while the fsync is in flight — that concurrency is the whole point.
func (c *committer) run() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for !c.closed && c.want <= c.resolved {
			c.cond.Wait()
		}
		if c.want <= c.resolved { // closed and drained
			c.mu.Unlock()
			return
		}
		closed := c.closed
		resolved := c.resolved
		c.mu.Unlock()

		if !closed && c.interval > 0 && int(c.j.Seq()-resolved) < c.maxBatch {
			// Coalescing window: give concurrent appliers time to add
			// their entries to this commit, unless a full batch already
			// waits. Tunable via -commit-interval; 0 means the fsync
			// rate itself is the only batching (still effective: every
			// entry that arrives during an fsync rides the next one).
			time.Sleep(c.interval)
		}

		c.mu.Lock()
		target := c.j.Seq()
		err := c.j.Sync()
		c.finishLocked(target, err)
		c.mu.Unlock()
	}
}

// finishLocked resolves all seqs <= target with the outcome of the fsync
// (or rotation) that covered them.
func (c *committer) finishLocked(target uint64, err error) {
	if err == nil {
		if target > c.synced {
			if c.m != nil && target > c.resolved {
				c.m.commitFsyncs.Inc()
				c.m.commitEntries.Add(target - c.resolved)
				c.m.commitBatch.Observe(float64(target - c.resolved))
			}
			c.synced = target
		}
	} else if target > c.resolved {
		c.failed = append(c.failed, seqRange{lo: c.resolved, hi: target, err: err})
	}
	if target > c.resolved {
		c.resolved = target
	}
	c.cond.Broadcast()
}

// rotate redirects the journal to w (the checkpoint's fresh segment)
// and resolves everything buffered so far with the old segment's final
// flush+fsync outcome — atomically with respect to the commit loop, so
// an fsync of the new segment can never ack entries that only ever
// reached the old one. Returns the old segment's flush/sync error (the
// caller decides whether the old tail matters; see Store.Checkpoint).
func (c *committer) rotate(w io.Writer, binary bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq, err := c.j.RotateBinary(w, binary)
	c.finishLocked(seq, err)
	return err
}

// waitFor blocks until every journal entry with sequence <= seq has a
// durability outcome, and returns it: nil exactly when the flush+fsync
// covering the entries succeeded.
func (c *committer) waitFor(seq uint64) error {
	var start time.Time
	if c.m != nil {
		start = time.Now()
	}
	c.mu.Lock()
	if seq > c.want {
		c.want = seq
		c.cond.Broadcast()
	}
	for c.resolved < seq && !c.closed {
		c.cond.Wait()
	}
	err := c.outcomeLocked(seq)
	c.mu.Unlock()
	if c.m != nil {
		c.m.commitWaitSecs.Observe(time.Since(start).Seconds())
	}
	return err
}

func (c *committer) outcomeLocked(seq uint64) error {
	for _, r := range c.failed {
		if seq > r.lo && seq <= r.hi {
			return r.err
		}
	}
	if seq <= c.synced {
		return nil
	}
	return errCommitterClosed
}

// shutdown wakes the committer for a final drain (one last fsync if
// waiters are pending) and blocks until the loop exits. Called by
// Store.Close before closing the journal.
func (c *committer) shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	<-c.done
}
