package durable_test

// Group-commit tests: the ack contract (no Apply/ApplyBatch returns
// before the fsync covering its entries), fsync coalescing under
// concurrency, and the crash matrix extended to the group-commit
// writer — both the sequential Apply path (global-prefix recovery,
// with the stronger "confirmed = acked" accounting that group commit
// makes possible) and the parallel ApplyBatch path (per-shard-prefix
// recovery, the guarantee the batch API actually makes).

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/durable"
	"repro/internal/errfs"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/vfs"
)

// countFS wraps a vfs.FS counting file fsyncs — the denominator of the
// coalescing ratio.
type countFS struct {
	vfs.FS
	syncs atomic.Int64
}

func (c *countFS) Create(name string) (vfs.File, error) {
	f, err := c.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &countFile{File: f, fs: c}, nil
}

func (c *countFS) Append(name string) (vfs.File, error) {
	f, err := c.FS.Append(name)
	if err != nil {
		return nil, err
	}
	return &countFile{File: f, fs: c}, nil
}

type countFile struct {
	vfs.File
	fs *countFS
}

func (f *countFile) Sync() error {
	f.fs.syncs.Add(1)
	return f.File.Sync()
}

// newStream builds n chronological New updates for distinct objects.
func newStream(n int) []mod.Update {
	us := make([]mod.Update, n)
	for i := range us {
		us[i] = mod.New(mod.OID(i+1), float64(i), geom.Of(1, 0), geom.Of(float64(i), 0))
	}
	return us
}

// groupConfig is matrixConfig with group commit enabled.
func groupConfig(fs vfs.FS) durable.Config {
	cfg := matrixConfig(fs)
	cfg.Commit = durable.CommitGroup
	return cfg
}

// TestGroupCommitConcurrentAck drives concurrent appliers (one per
// shard partition — the chronology discipline forces serialization
// within a shard) through group commit and asserts the ack contract:
// every Apply that returned nil is durable, so a clean reopen must
// recover all of them. Run under -race this exercises the
// committer/waiter synchronization from many goroutines at once.
func TestGroupCommitConcurrentAck(t *testing.T) {
	const n = 200
	dir := filepath.Join(t.TempDir(), "data")
	cfg := groupConfig(vfs.OS{})
	cfg.Shards = 4
	cfg.CommitInterval = 1e6 // 1ms coalescing window
	eng, err := durable.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Partition the stream by owning shard; each partition is a
	// chronological subsequence, so one goroutine per partition is the
	// maximum concurrency the stream discipline allows for Apply.
	us := newStream(n)
	groups := make([][]mod.Update, eng.NumShards())
	for _, u := range us {
		i := eng.ShardOf(u.O)
		groups[i] = append(groups[i], u)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(groups))
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g []mod.Update) {
			defer wg.Done()
			for _, u := range g {
				if err := eng.Apply(u); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Every ack was a durability promise: a clean reopen must see all n.
	rcfg := matrixConfig(vfs.OS{})
	rcfg.Shards = 4
	rec, err := durable.Open(dir, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != n {
		t.Fatalf("recovered %d of %d acked updates", rec.Len(), n)
	}
}

// TestGroupCommitBatchCoalescing asserts the fsync economics that
// justify the committer: ingesting n updates through ApplyBatch must
// cost far fewer fsyncs than n, because each batch buffers its whole
// per-shard group in the journal before a single covering fsync acks
// it. (A sequential Apply stream cannot coalesce — each ack gates the
// next apply — so the batch path is where the ratio shows up.)
func TestGroupCommitBatchCoalescing(t *testing.T) {
	const n, batch = 200, 50
	dir := filepath.Join(t.TempDir(), "data")
	cfs := &countFS{FS: vfs.OS{}}
	eng, err := durable.Open(dir, groupConfig(cfs))
	if err != nil {
		t.Fatal(err)
	}
	us := newStream(n)
	base := cfs.syncs.Load()
	for lo := 0; lo < n; lo += batch {
		if _, err := eng.ApplyBatch(us[lo : lo+batch]); err != nil {
			t.Fatalf("batch at %d: %v", lo, err)
		}
	}
	syncs := cfs.syncs.Load() - base
	// Expect about one fsync per shard per batch: 2*4 = 8. Allow 4x
	// slack for committer-cycle races; n/4 still proves >=4x coalescing.
	if syncs > n/4 {
		t.Fatalf("batched ingest of %d updates issued %d fsyncs — not coalescing", n, syncs)
	}
	t.Logf("%d updates acked with %d fsyncs (%.1f entries/fsync)",
		n, syncs, float64(n)/float64(syncs))
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := durable.Open(dir, matrixConfig(vfs.OS{}))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != n {
		t.Fatalf("recovered %d of %d acked updates", rec.Len(), n)
	}
}

// runScriptGroup is runScript against a group-commit engine: the same
// scripted scenario, but Apply errors are tolerated once the injector
// has fired — under group commit a crashed fsync surfaces as an Apply
// error (that is the ack contract) instead of being swallowed by a
// fire-and-forget flush. confirmed counts acked (nil-returning)
// applies: with group commit an ack IS the durability promise, so the
// matrix holds recovery to exactly that.
func runScriptGroup(t *testing.T, dir string, inj *errfs.FS, us []mod.Update) scriptResult {
	t.Helper()
	var res scriptResult
	eng, err := durable.Open(dir, groupConfig(inj))
	if err != nil {
		if !inj.Crashed() {
			t.Fatalf("open failed without a crash: %v", err)
		}
		return res
	}
	apply := func(from, to int) bool {
		for i := from; i < to; i++ {
			res.attempted = i + 1
			if err := eng.Apply(us[i]); err != nil {
				if !inj.Crashed() {
					t.Fatalf("apply %d failed without a crash: %v", i, err)
				}
				return false
			}
			res.confirmed = i + 1
			if inj.Crashed() {
				return false
			}
		}
		return true
	}
	checkpoint := func() bool {
		_, err := eng.Checkpoint()
		return err == nil && !inj.Crashed()
	}
	if apply(0, 4) && checkpoint() && apply(4, 8) && checkpoint() {
		apply(8, len(us))
	}
	_ = eng.Close()
	return res
}

// TestGroupCommitCrashMatrix sweeps every crash point in every fault
// mode over the sequential group-commit script and requires recovery
// to an exact stream prefix no shorter than everything acked. The
// accounting is stricter than the base matrix: an update counts as
// confirmed the moment Apply returns nil, because under group commit
// that return is only issued after the covering fsync succeeded.
func TestGroupCommitCrashMatrix(t *testing.T) {
	us := stream10()

	probe := errfs.New(vfs.OS{}, 0, errfs.FailOp)
	probeRes := runScriptGroup(t, filepath.Join(t.TempDir(), "data"), probe, us)
	total := probe.Ops()
	if probeRes.confirmed != len(us) || probe.Crashed() {
		t.Fatalf("clean probe run confirmed %d/%d updates", probeRes.confirmed, len(us))
	}
	t.Logf("sweeping %d crash points x 3 fault modes", total)

	for _, mode := range []errfs.Mode{errfs.FailOp, errfs.ShortWrite, errfs.FailSync} {
		for k := 1; k <= total; k++ {
			dir := filepath.Join(t.TempDir(), "data")
			inj := errfs.New(vfs.OS{}, k, mode)
			res := runScriptGroup(t, dir, inj, us)
			if !inj.Crashed() {
				t.Fatalf("mode=%v k=%d: injection never fired (%d ops)", mode, k, inj.Ops())
			}
			rec, err := durable.Open(dir, matrixConfig(vfs.OS{}))
			if err != nil {
				t.Fatalf("mode=%v k=%d: recovery failed: %v\ntrace:\n%s",
					mode, k, err, traceOf(inj))
			}
			got := rec.Snapshot()
			j := prefixLen(got.Tau(), us)
			if j < 0 {
				t.Fatalf("mode=%v k=%d: recovered tau %g matches no stream prefix\ntrace:\n%s",
					mode, k, got.Tau(), traceOf(inj))
			}
			if j < res.confirmed || j > res.attempted {
				t.Fatalf("mode=%v k=%d: recovered prefix %d outside [acked %d, attempted %d]\ntrace:\n%s",
					mode, k, j, res.confirmed, res.attempted, traceOf(inj))
			}
			if !got.StateEqual(prefixDB(t, us, j)) {
				t.Fatalf("mode=%v k=%d: recovered state is not prefix %d\ntrace:\n%s",
					mode, k, j, traceOf(inj))
			}
			if err := rec.Close(); err != nil {
				t.Fatalf("mode=%v k=%d: close after recovery: %v", mode, k, err)
			}
		}
	}
}

// TestGroupCommitBatchCrashMatrix is the crash matrix over ApplyBatch:
// the stream is ingested as three batches with group commit, and a
// crash mid-batch must lose only unacked suffixes. Because a batch is
// applied per shard in parallel, the recovery guarantee is per shard —
// each shard recovers an exact prefix of its own subsequence covering
// every update of every acked batch — which is exactly the contract
// ApplyBatch documents.
func TestGroupCommitBatchCrashMatrix(t *testing.T) {
	us := stream10()
	batches := [][2]int{{0, 4}, {4, 8}, {8, len(us)}}

	run := func(dir string, inj *errfs.FS) (acked, attempted int) {
		eng, err := durable.Open(dir, groupConfig(inj))
		if err != nil {
			if !inj.Crashed() {
				t.Fatalf("open failed without a crash: %v", err)
			}
			return 0, 0
		}
		for _, b := range batches {
			attempted = b[1]
			if _, err := eng.ApplyBatch(us[b[0]:b[1]]); err != nil {
				if !inj.Crashed() {
					t.Fatalf("batch [%d,%d) failed without a crash: %v", b[0], b[1], err)
				}
				break
			}
			acked = b[1]
			if inj.Crashed() {
				break
			}
			if _, err := eng.Checkpoint(); err != nil || inj.Crashed() {
				break
			}
		}
		_ = eng.Close()
		return acked, attempted
	}

	probe := errfs.New(vfs.OS{}, 0, errfs.FailOp)
	probeDir := filepath.Join(t.TempDir(), "data")
	if acked, _ := run(probeDir, probe); acked != len(us) || probe.Crashed() {
		t.Fatalf("clean probe run acked %d/%d updates", acked, len(us))
	}
	total := probe.Ops()
	t.Logf("sweeping %d crash points x 3 fault modes", total)

	// shardSub extracts the subsequence of us owned by shard i (the
	// hash partition is fixed, so one clean engine tells us routing).
	rec0, err := durable.Open(probeDir, matrixConfig(vfs.OS{}))
	if err != nil {
		t.Fatal(err)
	}
	nShards := rec0.NumShards()
	shardSub := make([][]mod.Update, nShards)
	for _, u := range us {
		i := rec0.ShardOf(u.O)
		shardSub[i] = append(shardSub[i], u)
	}
	_ = rec0.Close()

	for _, mode := range []errfs.Mode{errfs.FailOp, errfs.ShortWrite, errfs.FailSync} {
		for k := 1; k <= total; k++ {
			dir := filepath.Join(t.TempDir(), "data")
			inj := errfs.New(vfs.OS{}, k, mode)
			acked, attempted := run(dir, inj)
			if !inj.Crashed() {
				t.Fatalf("mode=%v k=%d: injection never fired (%d ops)", mode, k, inj.Ops())
			}
			rec, err := durable.Open(dir, matrixConfig(vfs.OS{}))
			if err != nil {
				t.Fatalf("mode=%v k=%d: recovery failed: %v\ntrace:\n%s",
					mode, k, err, traceOf(inj))
			}
			for i := 0; i < nShards; i++ {
				sub := shardSub[i]
				sdb := rec.Store(i).DB()
				j := prefixLen(sdb.Tau(), sub)
				if j < 0 {
					t.Fatalf("mode=%v k=%d shard %d: recovered tau %g matches no prefix of the shard stream\ntrace:\n%s",
						mode, k, i, sdb.Tau(), traceOf(inj))
				}
				ackedHere, attemptedHere := countOwned(sub, us, acked), countOwned(sub, us, attempted)
				if j < ackedHere || j > attemptedHere {
					t.Fatalf("mode=%v k=%d shard %d: recovered prefix %d outside [acked %d, attempted %d]\ntrace:\n%s",
						mode, k, i, j, ackedHere, attemptedHere, traceOf(inj))
				}
				want := mod.NewDB(2, -1)
				if err := want.ApplyAll(sub[:j]...); err != nil {
					t.Fatal(err)
				}
				if !sdb.StateEqual(want) {
					t.Fatalf("mode=%v k=%d shard %d: recovered state is not shard prefix %d\ntrace:\n%s",
						mode, k, i, j, traceOf(inj))
				}
			}
			if err := rec.Close(); err != nil {
				t.Fatalf("mode=%v k=%d: close after recovery: %v", mode, k, err)
			}
		}
	}
}

// countOwned counts how many of the first n stream updates belong to
// the shard subsequence sub.
func countOwned(sub, us []mod.Update, n int) int {
	inSub := make(map[string]bool, len(sub))
	for _, u := range sub {
		inSub[u.String()] = true
	}
	c := 0
	for _, u := range us[:n] {
		if inSub[u.String()] {
			c++
		}
	}
	return c
}

// TestGroupCommitWaitDurableAfterClose pins the committer's drain: a
// Close with pending waiters must resolve them (one final fsync), and
// updates applied before Close must survive.
func TestGroupCommitCloseDrains(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	eng, err := durable.Open(dir, groupConfig(vfs.OS{}))
	if err != nil {
		t.Fatal(err)
	}
	us := newStream(8)
	if n, err := eng.ApplyBatch(us); err != nil || n != len(us) {
		t.Fatalf("batch: n=%d err=%v", n, err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := durable.Open(dir, matrixConfig(vfs.OS{}))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != len(us) {
		t.Fatalf("recovered %d of %d", rec.Len(), len(us))
	}
}
