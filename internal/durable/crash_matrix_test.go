package durable_test

// The crash matrix: a scripted run of the durable engine (open, apply,
// checkpoint, apply, checkpoint, apply, close) is crashed at literally
// every mutating filesystem operation, in every fault shape, and after
// each crash the directory must recover — without error — to an exact
// prefix of the applied update stream that includes everything the
// crashed run had confirmed on disk. This is the recovery-equivalence
// guarantee of ISSUE.md: no crash point may yield a partial or corrupt
// database.
//
// The sweep is exhaustive by construction: a probe run with injection
// disabled counts the script's operations (errfs counting is
// deterministic for a deterministic caller), then every k in 1..total
// is the injection point of one matrix entry.

import (
	"path/filepath"
	"testing"

	"repro/internal/durable"
	"repro/internal/errfs"
	"repro/internal/mod"
	"repro/internal/vfs"
)

// matrixConfig is the engine configuration of every matrix run: two
// shards, so the sweep also crosses the multi-store coordination
// (per-shard manifests under one root manifest).
func matrixConfig(fs vfs.FS) durable.Config {
	return durable.Config{Shards: 2, Workers: 2, Dim: 2, Tau0: -1, FS: fs}
}

// scriptResult reports how far a scripted run got before the crash.
type scriptResult struct {
	// attempted counts updates handed to Apply.
	attempted int
	// confirmed counts updates known durable: applied while the
	// filesystem was still alive (the per-update flush reached the
	// segment file), hence recoverable by any correct recovery.
	confirmed int
}

// runScript drives the fixed scenario against dir through the injector
// inj. It stops at the first sign of the injected crash — a dead
// process issues no further operations.
func runScript(t *testing.T, dir string, inj *errfs.FS, us []mod.Update) scriptResult {
	t.Helper()
	return runScriptCfg(t, dir, inj, us, matrixConfig(inj))
}

// runScriptCfg is runScript under an explicit engine configuration
// (the migration matrix crashes runs configured for the legacy JSON
// format; cfg.FS must be inj).
func runScriptCfg(t *testing.T, dir string, inj *errfs.FS, us []mod.Update, cfg durable.Config) scriptResult {
	t.Helper()
	var res scriptResult
	eng, err := durable.Open(dir, cfg)
	if err != nil {
		if !inj.Crashed() {
			t.Fatalf("open failed without a crash: %v", err)
		}
		return res
	}
	apply := func(from, to int) bool {
		for i := from; i < to; i++ {
			res.attempted = i + 1
			if err := eng.Apply(us[i]); err != nil {
				t.Fatalf("apply %d: %v", i, err)
			}
			if inj.Crashed() {
				return false
			}
			res.confirmed = i + 1
		}
		return true
	}
	checkpoint := func() bool {
		_, err := eng.Checkpoint()
		return err == nil && !inj.Crashed()
	}
	if apply(0, 4) && checkpoint() && apply(4, 8) && checkpoint() {
		apply(8, len(us))
	}
	_ = eng.Close()
	return res
}

func TestCrashMatrixRecoversExactPrefix(t *testing.T) {
	us := stream10()

	// Probe: count the operations of one clean run.
	probe := errfs.New(vfs.OS{}, 0, errfs.FailOp)
	probeRes := runScript(t, filepath.Join(t.TempDir(), "data"), probe, us)
	total := probe.Ops()
	if probeRes.confirmed != len(us) || probe.Crashed() {
		t.Fatalf("clean probe run confirmed %d/%d updates", probeRes.confirmed, len(us))
	}
	if total < 20 {
		t.Fatalf("probe counted only %d ops — script lost its filesystem work?", total)
	}
	t.Logf("sweeping %d crash points x 3 fault modes", total)

	for _, mode := range []errfs.Mode{errfs.FailOp, errfs.ShortWrite, errfs.FailSync} {
		for k := 1; k <= total; k++ {
			dir := filepath.Join(t.TempDir(), "data")
			inj := errfs.New(vfs.OS{}, k, mode)
			res := runScript(t, dir, inj, us)
			if !inj.Crashed() {
				t.Fatalf("mode=%v k=%d: injection never fired (%d ops)", mode, k, inj.Ops())
			}

			// Recovery with a healthy filesystem must succeed and yield
			// an exact, sufficiently long prefix of the stream.
			rec, err := durable.Open(dir, matrixConfig(vfs.OS{}))
			if err != nil {
				t.Fatalf("mode=%v k=%d: recovery failed: %v\ntrace:\n%s",
					mode, k, err, traceOf(inj))
			}
			got := rec.Snapshot()
			j := prefixLen(got.Tau(), us)
			if j < 0 {
				t.Fatalf("mode=%v k=%d: recovered tau %g matches no stream prefix\ntrace:\n%s",
					mode, k, got.Tau(), traceOf(inj))
			}
			if j < res.confirmed || j > res.attempted {
				t.Fatalf("mode=%v k=%d: recovered prefix %d outside [confirmed %d, attempted %d]\ntrace:\n%s",
					mode, k, j, res.confirmed, res.attempted, traceOf(inj))
			}
			if !got.StateEqual(prefixDB(t, us, j)) {
				t.Fatalf("mode=%v k=%d: recovered state is not prefix %d — a partial or corrupt database\ntrace:\n%s",
					mode, k, j, traceOf(inj))
			}

			// Append-safety: the recovered engine must accept and
			// persist further updates across another clean cycle. A
			// fresh object is valid after any prefix, including the
			// empty one.
			if err := rec.Apply(mod.New(99, 100, us[0].A, us[0].B)); err != nil {
				t.Fatalf("mode=%v k=%d: apply after recovery: %v", mode, k, err)
			}
			if _, err := rec.Checkpoint(); err != nil {
				t.Fatalf("mode=%v k=%d: checkpoint after recovery: %v", mode, k, err)
			}
			if err := rec.Close(); err != nil {
				t.Fatalf("mode=%v k=%d: close after recovery: %v", mode, k, err)
			}
			rec2, err := durable.Open(dir, matrixConfig(vfs.OS{}))
			if err != nil {
				t.Fatalf("mode=%v k=%d: second recovery failed: %v", mode, k, err)
			}
			if rec2.Tau() != 100 {
				t.Fatalf("mode=%v k=%d: post-recovery update lost (tau %g)", mode, k, rec2.Tau())
			}
			if err := rec2.Close(); err != nil {
				t.Fatalf("mode=%v k=%d: final close: %v", mode, k, err)
			}
		}
	}
}

// traceOf renders an injector's operation log for a failure message.
func traceOf(inj *errfs.FS) string {
	out := ""
	for _, line := range inj.Trace() {
		out += "  " + line + "\n"
	}
	return out
}
