package durable

// Engine: the durable sharded MOD. It composes P per-shard Stores under
// one root manifest and embeds the sharded query engine
// (internal/shard), so callers get the full update/query surface plus
// Checkpoint/Close and crash recovery on Open.
//
// Root layout:
//
//	<dir>/MANIFEST              {"version":1,"dim":d,"shards":P,"generation":g}
//	<dir>/g0001-shard-0000/...  one Store per shard of the current generation
//	<dir>/g0001-shard-0001/...
//
// The root manifest commits to a generation; a generation is an
// immutable choice of shard count. Changing P is a re-shard: recover
// the old generation, merge, re-partition, persist every new shard
// (checkpoint) into generation g+1 directories, and only then flip the
// root manifest — the atomic commit point — so a crash anywhere in
// between leaves the old generation intact and current. Stale
// generations are garbage-collected on the next open.
//
// Per-shard stores give single-writer journals (no cross-shard write
// contention, matching the shard engine's locking) and let checkpoint
// and recovery work shard-at-a-time. Global consistency needs no
// cross-shard coordination: shards partition the object set, an update
// touches exactly one shard, so any combination of per-shard recovery
// points is a legitimate database state — the same argument that makes
// sharded updates correct in the first place (a subsequence of a
// chronological stream is chronological, per shard).

import (
	"errors"
	"fmt"
	"os"
	"path"
	"sync"
	"time"

	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/vfs"
)

// Config parametrizes Open.
type Config struct {
	// Shards is the partition count P. 0 adopts the on-disk value (or 1
	// for a fresh directory); a different value than on disk triggers a
	// re-shard during Open.
	Shards int
	// Workers bounds concurrent per-shard query sweeps (see shard.Config).
	Workers int
	// Dim is the spatial dimension; required for a fresh directory,
	// validated (when non-zero) against an existing one.
	Dim int
	// Tau0 is the initial last-update time of a fresh database.
	Tau0 float64
	// FS is the filesystem to persist through; nil means the real one.
	// Tests substitute a fault injector (internal/errfs).
	FS vfs.FS
	// Registry, when non-nil, receives the durability metrics
	// (checkpoint counts/latency/bytes, recovery stats, journal seqs).
	// Query/update metrics are separate: call Instrument (promoted from
	// the embedded shard engine).
	Registry *obs.Registry
	// NoFlushEach disables the per-update journal flush (StoreOptions).
	NoFlushEach bool
	// Commit selects the update-path durability policy (StoreOptions);
	// CommitGroup enables group commit, making Apply/ApplyBatch block
	// until the fsync covering their entries returns.
	Commit CommitPolicy
	// CommitInterval is CommitGroup's coalescing window (StoreOptions).
	CommitInterval time.Duration
	// CommitMaxBatch skips the window once this many entries wait
	// (StoreOptions).
	CommitMaxBatch int
	// Format selects the codec for new journal segments and snapshots
	// (StoreOptions); zero is FormatBinary. Existing files open by
	// their own codec, so switching formats on a live data dir is safe
	// and migrates one checkpoint at a time.
	Format Format
}

// rootManifest is the wire form of the engine's root manifest.
type rootManifest struct {
	Version    int    `json:"version"`
	Dim        int    `json:"dim"`
	Shards     int    `json:"shards"`
	Generation uint64 `json:"generation"`
}

// shardDirName names the directory of shard i in generation gen.
func shardDirName(gen uint64, i int) string {
	return fmt.Sprintf("g%04d-shard-%04d", gen, i)
}

// Engine is a durable sharded MOD: the embedded shard.Engine serves
// updates and queries; the stores persist them. All methods are safe
// for concurrent use; Checkpoint runs concurrently with updates and
// queries.
type Engine struct {
	*shard.Engine

	fs     vfs.FS
	dir    string
	gen    uint64
	stores []*Store

	mu     sync.Mutex // serializes Checkpoint/Close
	closed bool

	m *engineMetrics // nil when unregistered
}

// Open opens (creating, recovering, or re-sharding) the durable engine
// rooted at dir. On return the engine is fully recovered and live:
// every update applied through it is journaled, and queries see the
// recovered state.
func Open(dir string, cfg Config) (*Engine, error) {
	start := time.Now()
	fsys := cfg.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: mkdir %s: %w", dir, err)
	}
	e := &Engine{fs: fsys, dir: dir}
	if cfg.Registry != nil {
		e.m = newEngineMetrics(cfg.Registry)
	}

	man, err := readRootManifest(fsys, path.Join(dir, manifestName))
	fresh := errors.Is(err, os.ErrNotExist)
	if err != nil && !fresh {
		return nil, err
	}
	if fresh {
		if cfg.Dim <= 0 {
			return nil, errors.New("durable: fresh data dir needs a positive dimension")
		}
		shards := cfg.Shards
		if shards <= 0 {
			shards = 1
		}
		man = rootManifest{Version: 1, Dim: cfg.Dim, Shards: shards, Generation: 1}
		// The root manifest commits first: a crash right after leaves a
		// manifest whose shard directories open as fresh empty stores,
		// and a crash right before leaves an empty dir re-initialized
		// by the next open. Either way, a consistent empty database.
		if err := writeRootManifest(fsys, path.Join(dir, manifestName), man); err != nil {
			return nil, err
		}
	} else {
		if man.Version != 1 {
			return nil, fmt.Errorf("durable: %s: unsupported manifest version %d", dir, man.Version)
		}
		if cfg.Dim != 0 && cfg.Dim != man.Dim {
			return nil, fmt.Errorf("durable: %s holds a %d-D database, want %d-D", dir, man.Dim, cfg.Dim)
		}
	}
	e.gen = man.Generation
	// Leftovers of other generations (a crashed re-shard, or the
	// previous generation a crash left uncollected) are garbage now —
	// collect them before anything can mistake them for live stores.
	e.gcGenerations()

	opts := StoreOptions{
		Dim: man.Dim, Tau0: cfg.Tau0,
		NoFlushEach: cfg.NoFlushEach, Commit: cfg.Commit,
		CommitInterval: cfg.CommitInterval, CommitMaxBatch: cfg.CommitMaxBatch,
		Format:        cfg.Format,
		commitMetrics: e.m,
	}
	if cfg.Shards != 0 && cfg.Shards != man.Shards {
		if err := e.reshard(man, cfg, opts); err != nil {
			return nil, err
		}
	} else {
		if err := e.openGeneration(man, cfg, opts); err != nil {
			return nil, err
		}
	}
	e.recordRecovery(time.Since(start))
	return e, nil
}

// openGeneration opens the current generation's stores (recovering
// each) and adopts their databases as the engine's shards.
func (e *Engine) openGeneration(man rootManifest, cfg Config, opts StoreOptions) error {
	stores := make([]*Store, man.Shards)
	dbs := make([]*mod.DB, man.Shards)
	for i := range stores {
		st, err := OpenStore(e.fs, path.Join(e.dir, shardDirName(e.gen, i)), opts)
		if err != nil {
			closeStores(stores[:i])
			return fmt.Errorf("durable: shard %d: %w", i, err)
		}
		stores[i] = st
		dbs[i] = st.DB()
	}
	se, err := shard.FromShards(dbs, shard.Config{Workers: cfg.Workers})
	if err != nil {
		closeStores(stores)
		return err
	}
	e.Engine = se
	e.stores = stores
	return nil
}

// reshard changes the partition count: recover the old generation,
// merge it into one database, re-partition at the new count, persist
// every new shard into generation gen+1, and commit by flipping the
// root manifest. The old generation stays current (and recoverable)
// until the flip; its directories are collected afterwards.
func (e *Engine) reshard(man rootManifest, cfg Config, opts StoreOptions) error {
	old := make([]*mod.DB, man.Shards)
	for i := range old {
		st, err := OpenStore(e.fs, path.Join(e.dir, shardDirName(e.gen, i)), opts)
		if err != nil {
			return fmt.Errorf("durable: re-shard: old shard %d: %w", i, err)
		}
		old[i] = st.DB()
		// The old store was only opened to recover its state; nothing
		// is applied through it, so closing now is safe and releases
		// its journal handle before the directory is collected.
		if err := st.Close(); err != nil {
			return fmt.Errorf("durable: re-shard: close old shard %d: %w", i, err)
		}
	}
	merged, err := mod.Merge(old...)
	if err != nil {
		return fmt.Errorf("durable: re-shard: merge: %w", err)
	}
	se, err := shard.FromDB(merged, shard.Config{Shards: cfg.Shards, Workers: cfg.Workers})
	if err != nil {
		return err
	}
	newGen := man.Generation + 1
	stores := make([]*Store, se.NumShards())
	for i := range stores {
		dir := path.Join(e.dir, shardDirName(newGen, i))
		st, serr := openStoreWithDB(e.fs, dir, se.Shard(i), opts)
		if serr != nil {
			closeStores(stores[:i])
			return fmt.Errorf("durable: re-shard: new shard %d: %w", i, serr)
		}
		if _, serr := st.Checkpoint(); serr != nil {
			_ = st.Close()
			closeStores(stores[:i])
			return fmt.Errorf("durable: re-shard: checkpoint new shard %d: %w", i, serr)
		}
		stores[i] = st
	}
	man.Shards = se.NumShards()
	man.Generation = newGen
	if err := writeRootManifest(e.fs, path.Join(e.dir, manifestName), man); err != nil {
		closeStores(stores)
		return err
	}
	e.gen = newGen
	e.Engine = se
	e.stores = stores
	e.gcGenerations()
	return nil
}

// closeStores best-effort-closes a partially opened store set.
func closeStores(stores []*Store) {
	for _, st := range stores {
		if st != nil {
			_ = st.Close()
		}
	}
}

// gcGenerations removes shard directories of any generation other than
// the current one. Best-effort: failures leave garbage for next time.
func (e *Engine) gcGenerations() {
	names, err := e.fs.ReadDir(e.dir)
	if err != nil {
		return
	}
	for _, n := range names {
		var g uint64
		var i int
		if _, err := fmt.Sscanf(n, "g%d-shard-%d", &g, &i); err != nil {
			continue
		}
		if shardDirName(g, i) != n || g == e.gen {
			continue
		}
		sub := path.Join(e.dir, n)
		files, err := e.fs.ReadDir(sub)
		if err != nil {
			continue
		}
		for _, f := range files {
			_ = e.fs.Remove(path.Join(sub, f))
		}
		_ = e.fs.Remove(sub)
	}
}

// Apply routes one update to its shard (via the embedded engine) and,
// under CommitGroup, blocks until the fsync covering its journal entry
// returns: a nil return then means applied AND durable. Under the
// per-update policies the behavior is unchanged — the journal listener
// does the per-entry flush/fsync and Apply does not block on it.
func (e *Engine) Apply(u mod.Update) error {
	i := e.ShardOf(u.O)
	if err := e.Engine.Apply(u); err != nil {
		return err
	}
	if st := e.stores[i]; st.c != nil {
		return st.WaitDurable()
	}
	return nil
}

// ApplyBatch ingests a batch (via the embedded engine's sharded batch
// path) and, under CommitGroup, blocks until every touched shard's
// journal entries are covered by an fsync. The applied count reflects
// in-memory application; the error includes any durability failure, so
// a nil error acks the whole batch as durable.
func (e *Engine) ApplyBatch(us []mod.Update) (int, error) {
	n, err := e.Engine.ApplyBatch(us)
	if n == 0 {
		return n, err
	}
	touched := make([]bool, len(e.stores))
	for _, u := range us {
		touched[e.ShardOf(u.O)] = true
	}
	var waitErrs []error
	for i, st := range e.stores {
		if touched[i] && st.c != nil {
			if werr := st.WaitDurable(); werr != nil {
				waitErrs = append(waitErrs, fmt.Errorf("shard %d: durability: %w", i, werr))
			}
		}
	}
	return n, errors.Join(err, errors.Join(waitErrs...))
}

// Generation returns the current on-disk generation.
func (e *Engine) Generation() uint64 { return e.gen }

// Dir returns the engine's root directory.
func (e *Engine) Dir() string { return e.dir }

// Store exposes shard i's store (tests, diagnostics).
func (e *Engine) Store(i int) *Store { return e.stores[i] }

// Recovery reports what opening each shard's store did, indexed by
// shard.
func (e *Engine) Recovery() []RecoveryInfo {
	out := make([]RecoveryInfo, len(e.stores))
	for i, st := range e.stores {
		out[i] = st.Recovery()
	}
	return out
}

// Checkpoint checkpoints every shard's store, sequentially (shard-level
// parallelism would buy little — the work is one snapshot encode and a
// few fsyncs per shard — and a deterministic operation order is what
// lets the fault-injection tests enumerate every crash point). Updates
// and queries proceed concurrently. Returns per-shard results; on
// error, shards checkpointed before the failure keep their new
// checkpoints (each store commits independently), the failing shard
// keeps its old one, and the remainder are not attempted.
func (e *Engine) Checkpoint() ([]CheckpointInfo, error) {
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, errors.New("durable: engine closed")
	}
	infos := make([]CheckpointInfo, 0, len(e.stores))
	for i, st := range e.stores {
		info, err := st.Checkpoint()
		if err != nil {
			e.recordCheckpoint(infos, time.Since(start), err)
			return infos, fmt.Errorf("durable: checkpoint shard %d: %w", i, err)
		}
		infos = append(infos, info)
	}
	e.recordCheckpoint(infos, time.Since(start), nil)
	return infos, nil
}

// Sync fsyncs every shard's journal — the strong-durability barrier
// between checkpoints.
func (e *Engine) Sync() error {
	var errs []error
	for i, st := range e.stores {
		if err := st.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close flushes and closes every store. The in-memory engine stays
// queryable, but updates are no longer journaled; a final Checkpoint
// before Close is the graceful-shutdown sequence. Any live
// subscription streams are terminated first (sub.ErrClosed), so no
// subscriber outlives the durability guarantee of its deltas.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.CloseSubscriptions()
	var errs []error
	for i, st := range e.stores {
		if err := st.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// readRootManifest loads and decodes the root manifest.
func readRootManifest(fsys vfs.FS, p string) (rootManifest, error) {
	data, err := vfs.ReadFile(fsys, p)
	if err != nil {
		return rootManifest{}, err
	}
	var man rootManifest
	if err := unmarshalStrict(data, &man); err != nil {
		return rootManifest{}, fmt.Errorf("durable: manifest %s: %w", p, err)
	}
	return man, nil
}

// writeRootManifest encodes and atomically persists the root manifest.
func writeRootManifest(fsys vfs.FS, p string, man rootManifest) error {
	data, err := marshalLine(man)
	if err != nil {
		return err
	}
	if err := vfs.WriteFileAtomic(fsys, p, data); err != nil {
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	return nil
}
