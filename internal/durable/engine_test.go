package durable_test

import (
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/vfs"
)

func TestEngineReopenJournalOnly(t *testing.T) {
	dir := t.TempDir()
	us := stream10()
	eng, err := durable.Open(dir, durable.Config{Shards: 3, Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyAll(us...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := durable.Open(dir, durable.Config{Shards: 3, Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if !rec.Snapshot().StateEqual(prefixDB(t, us, len(us))) {
		t.Fatal("recovered engine state differs")
	}
	applied := 0
	for _, info := range rec.Recovery() {
		applied += info.Replay.Applied
	}
	if applied != len(us) {
		t.Fatalf("recovery applied %d entries across shards, want %d", applied, len(us))
	}
}

func TestEngineAdoptsOnDiskShape(t *testing.T) {
	dir := t.TempDir()
	eng, err := durable.Open(dir, durable.Config{Shards: 4, Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyAll(stream10()...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Shards: 0 and Dim: 0 adopt whatever the directory holds.
	rec, err := durable.Open(dir, durable.Config{Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.NumShards() != 4 || rec.Dim() != 2 || rec.Generation() != 1 {
		t.Fatalf("adopted P=%d dim=%d gen=%d, want 4/2/1",
			rec.NumShards(), rec.Dim(), rec.Generation())
	}
}

func TestEngineDimMismatch(t *testing.T) {
	dir := t.TempDir()
	eng, err := durable.Open(dir, durable.Config{Shards: 2, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := durable.Open(dir, durable.Config{Shards: 2, Dim: 3}); err == nil ||
		!strings.Contains(err.Error(), "2-D") {
		t.Fatalf("dim-mismatch open: %v, want dimension error", err)
	}
}

// TestEngineReshard changes the partition count across reopens and
// asserts the state survives re-partitioning in both directions, the
// generation advances, and stale generation directories are collected.
func TestEngineReshard(t *testing.T) {
	dir := t.TempDir()
	us := stream10()
	want := prefixDB(t, us, len(us))

	eng, err := durable.Open(dir, durable.Config{Shards: 2, Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyAll(us[:8]...); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyAll(us[8:]...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// 2 -> 5 shards: re-shard during open.
	eng5, err := durable.Open(dir, durable.Config{Shards: 5, Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	if eng5.NumShards() != 5 || eng5.Generation() != 2 {
		t.Fatalf("after re-shard: P=%d gen=%d, want 5/2", eng5.NumShards(), eng5.Generation())
	}
	if !eng5.Snapshot().StateEqual(want) {
		t.Fatal("state lost in 2->5 re-shard")
	}
	// Old generation directories must be gone.
	names, err := vfs.OS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasPrefix(n, "g0001-") {
			t.Fatalf("stale generation directory %s not collected (dir: %v)", n, names)
		}
	}
	// The re-sharded engine is live: apply, then reopen unsharded.
	if err := eng5.Apply(mod.ChDir(1, 50, us[0].A)); err != nil {
		t.Fatal(err)
	}
	if err := eng5.Close(); err != nil {
		t.Fatal(err)
	}

	eng1, err := durable.Open(dir, durable.Config{Shards: 1, Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng1.Close()
	if eng1.NumShards() != 1 || eng1.Generation() != 3 {
		t.Fatalf("after second re-shard: P=%d gen=%d, want 1/3", eng1.NumShards(), eng1.Generation())
	}
	if err := want.Apply(mod.ChDir(1, 50, us[0].A)); err != nil {
		t.Fatal(err)
	}
	if !eng1.Snapshot().StateEqual(want) {
		t.Fatal("state lost in 5->1 re-shard")
	}
}

func TestEngineMetrics(t *testing.T) {
	dir := t.TempDir()
	us := stream10()
	reg := obs.NewRegistry()
	eng, err := durable.Open(dir, durable.Config{Shards: 2, Dim: 2, Tau0: -1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyAll(us...); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	rec, err := durable.Open(dir, durable.Config{Shards: 2, Dim: 2, Tau0: -1, Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	var buf strings.Builder
	if err := reg2.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"mod_recovery_seconds",
		"mod_recovery_replayed_total",
		"mod_journal_seq",
		"mod_checkpoints_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}
