package durable

// Durability observability: checkpoint and recovery series registered
// in an obs.Registry when Config.Registry is set. All record points are
// nil-safe — an engine opened without a registry pays a nil check.
//
// These series are deliberately separate from the query/update metrics
// of the embedded shard engine (Instrument): recovery happens during
// Open, before any instrumentation of the serving path could exist, so
// durability metrics are wired through the Config instead.

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// engineMetrics is the durability instrument set.
type engineMetrics struct {
	checkpoints      *obs.Counter   // completed engine checkpoints
	checkpointErrors *obs.Counter   // failed engine checkpoints
	checkpointSecs   *obs.Histogram // whole-engine checkpoint duration
	snapshotBytes    *obs.Gauge     // total snapshot bytes of the last checkpoint
	journalSeq       *obs.GaugeVec  // current manifest seq, by shard
	recoverySecs     *obs.Gauge     // wall-clock recovery time of Open
	recoveryApplied  *obs.Counter   // journal entries replayed at recovery
	recoverySkipped  *obs.Counter   // replay entries skipped (chronology dups)
	recoveryTorn     *obs.Counter   // torn journal tails dropped at recovery

	// Group-commit series. The coalescing ratio — entries per fsync,
	// the number that makes group commit pay — is commitEntries /
	// commitFsyncs; commitBatch is its distribution.
	commitFsyncs   *obs.Counter   // successful group-commit fsyncs
	commitEntries  *obs.Counter   // journal entries those fsyncs covered
	commitBatch    *obs.Histogram // entries resolved per fsync
	commitWaitSecs *obs.Histogram // Apply's wait from enqueue to ack
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	return &engineMetrics{
		checkpoints: reg.NewCounter("mod_checkpoints_total",
			"completed checkpoints (snapshot + journal rotation, all shards)"),
		checkpointErrors: reg.NewCounter("mod_checkpoint_errors_total",
			"failed checkpoints (the previous checkpoint stays current)"),
		checkpointSecs: reg.NewHistogram("mod_checkpoint_seconds",
			"whole-engine checkpoint duration", obs.DefLatencyBuckets),
		snapshotBytes: reg.NewGauge("mod_checkpoint_snapshot_bytes",
			"total snapshot size written by the last successful checkpoint"),
		journalSeq: reg.NewGaugeVec("mod_journal_seq",
			"committed manifest sequence number, by shard", "shard"),
		recoverySecs: reg.NewGauge("mod_recovery_seconds",
			"wall-clock time Open spent recovering (snapshot load + replay)"),
		recoveryApplied: reg.NewCounter("mod_recovery_replayed_total",
			"journal entries applied during recovery"),
		recoverySkipped: reg.NewCounter("mod_recovery_skipped_total",
			"journal entries skipped during recovery (already in snapshot)"),
		recoveryTorn: reg.NewCounter("mod_recovery_torn_tails_total",
			"torn journal tails dropped during recovery"),
		commitFsyncs: reg.NewCounter("mod_commit_fsyncs_total",
			"group-commit fsyncs issued (coalescing ratio = entries/fsyncs)"),
		commitEntries: reg.NewCounter("mod_commit_entries_total",
			"journal entries made durable by group-commit fsyncs"),
		commitBatch: reg.NewHistogram("mod_commit_batch_entries",
			"journal entries covered per group-commit fsync", obs.DefSizeBuckets),
		commitWaitSecs: reg.NewHistogram("mod_commit_wait_seconds",
			"update ack latency: journal enqueue to covering fsync", obs.DefLatencyBuckets),
	}
}

// recordRecovery publishes what Open did, once stores exist.
func (e *Engine) recordRecovery(d time.Duration) {
	if e.m == nil {
		return
	}
	e.m.recoverySecs.Set(d.Seconds())
	for i, st := range e.stores {
		info := st.Recovery()
		e.m.recoveryApplied.Add(uint64(info.Replay.Applied))
		e.m.recoverySkipped.Add(uint64(info.Replay.Skipped))
		if info.Replay.TornTail {
			e.m.recoveryTorn.Inc()
		}
		e.m.journalSeq.With(strconv.Itoa(i)).Set(float64(st.Seq()))
	}
}

// recordCheckpoint publishes one Checkpoint outcome.
func (e *Engine) recordCheckpoint(infos []CheckpointInfo, d time.Duration, err error) {
	if e.m == nil {
		return
	}
	if err != nil {
		e.m.checkpointErrors.Inc()
		return
	}
	e.m.checkpoints.Inc()
	e.m.checkpointSecs.Observe(d.Seconds())
	total := 0
	for i, info := range infos {
		total += info.SnapshotBytes
		e.m.journalSeq.With(strconv.Itoa(i)).Set(float64(info.Seq))
	}
	e.m.snapshotBytes.Set(float64(total))
}
