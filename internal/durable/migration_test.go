package durable_test

// The migration matrix: a store written under the legacy JSON format is
// crashed at every mutating filesystem operation, then recovered by a
// binary-default engine. Recovery must be format-blind — every on-disk
// file opens by its own codec, so the binary engine recovers the exact
// state a JSON engine would — and the first checkpoint after the switch
// rewrites the live snapshot+journal pair in the binary format, one
// shard at a time, with no flag day and no rewrite of history.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/errfs"
	"repro/internal/mod"
	"repro/internal/vfs"
)

func jsonMatrixConfig(fs vfs.FS) durable.Config {
	c := matrixConfig(fs)
	c.Format = durable.FormatJSON
	return c
}

// liveFormats walks the data dir and reports which codec suffixes the
// live (manifest-referenced, i.e. all surviving post-GC) segment and
// snapshot files carry.
func liveFormats(t *testing.T, dir string) (jsonFiles, binFiles []string) {
	t.Helper()
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		switch {
		case strings.HasSuffix(p, ".jsonl"), strings.HasSuffix(p, ".json"):
			jsonFiles = append(jsonFiles, p)
		case strings.HasSuffix(p, ".wal"), strings.HasSuffix(p, ".bin"):
			binFiles = append(binFiles, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return jsonFiles, binFiles
}

func TestCrashMatrixJSONToBinaryMigration(t *testing.T) {
	us := stream10()

	// Probe: count the JSON-format script's operations.
	probe := errfs.New(vfs.OS{}, 0, errfs.FailOp)
	probeDir := filepath.Join(t.TempDir(), "data")
	probeRes := runScriptCfg(t, probeDir, probe, us, jsonMatrixConfig(probe))
	total := probe.Ops()
	if probeRes.confirmed != len(us) || probe.Crashed() {
		t.Fatalf("clean probe run confirmed %d/%d updates", probeRes.confirmed, len(us))
	}
	if jf, _ := liveFormats(t, probeDir); len(jf) == 0 {
		t.Fatal("JSON-format probe run left no JSON files — format option inert?")
	}
	t.Logf("sweeping %d crash points", total)

	for k := 1; k <= total; k++ {
		dir := filepath.Join(t.TempDir(), "data")
		inj := errfs.New(vfs.OS{}, k, errfs.FailOp)
		res := runScriptCfg(t, dir, inj, us, jsonMatrixConfig(inj))
		if !inj.Crashed() {
			t.Fatalf("k=%d: injection never fired (%d ops)", k, inj.Ops())
		}

		// Reference recovery under the legacy JSON configuration.
		ref, err := durable.Open(dir, jsonMatrixConfig(vfs.OS{}))
		if err != nil {
			t.Fatalf("k=%d: JSON recovery failed: %v\ntrace:\n%s", k, err, traceOf(inj))
		}
		refDB := ref.Snapshot()
		if err := ref.Close(); err != nil {
			t.Fatalf("k=%d: close JSON recovery: %v", k, err)
		}
		j := prefixLen(refDB.Tau(), us)
		if j < res.confirmed || j > res.attempted || !refDB.StateEqual(prefixDB(t, us, j)) {
			t.Fatalf("k=%d: JSON recovery not a valid prefix (tau %g, confirmed %d, attempted %d)",
				k, refDB.Tau(), res.confirmed, res.attempted)
		}

		// The binary-default engine must recover the identical state
		// from the JSON-written (and crash-damaged, then healed) files.
		bin, err := durable.Open(dir, matrixConfig(vfs.OS{}))
		if err != nil {
			t.Fatalf("k=%d: binary-default recovery failed: %v\ntrace:\n%s", k, err, traceOf(inj))
		}
		if !bin.Snapshot().StateEqual(refDB) {
			t.Fatalf("k=%d: binary-default recovery differs from JSON recovery", k)
		}

		// One update plus a checkpoint migrates the live pair.
		if err := bin.Apply(mod.New(99, 100, us[0].A, us[0].B)); err != nil {
			t.Fatalf("k=%d: apply after migration open: %v", k, err)
		}
		if _, err := bin.Checkpoint(); err != nil {
			t.Fatalf("k=%d: migrating checkpoint: %v", k, err)
		}
		if err := bin.Close(); err != nil {
			t.Fatalf("k=%d: close after migration: %v", k, err)
		}
		jf, bf := liveFormats(t, dir)
		if len(jf) != 0 {
			t.Fatalf("k=%d: JSON files survive the migrating checkpoint: %v", k, jf)
		}
		if len(bf) == 0 {
			t.Fatalf("k=%d: no binary files after the migrating checkpoint", k)
		}

		// And the migrated store recovers.
		rec, err := durable.Open(dir, matrixConfig(vfs.OS{}))
		if err != nil {
			t.Fatalf("k=%d: post-migration recovery failed: %v", k, err)
		}
		if rec.Tau() != 100 {
			t.Fatalf("k=%d: post-migration tau %g, want 100", k, rec.Tau())
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("k=%d: final close: %v", k, err)
		}
	}
}
