package durable_test

// The live-checkpoint race: checkpoints must be safe to take while
// updates stream in and queries fan out, and whatever interleaving
// occurs, a subsequent recovery must reproduce the quiesced state
// bit-for-bit. Run under -race in CI, this is both the data-race check
// on the store/journal locking and a behavioral check that rotation
// never drops or duplicates an update.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/durable"
	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/workload"
)

// genUpdates builds a chronological stream: n creations followed by m
// direction changes (and a few terminations — a terminated object is
// never updated again), taus strictly increasing.
func genUpdates(seed int64, n, m int) []mod.Update {
	rng := rand.New(rand.NewSource(seed))
	var us []mod.Update
	tau := 0.0
	dead := make(map[mod.OID]bool)
	vec := func(scale float64) geom.Vec {
		return geom.Of(scale*(rng.Float64()-0.5), scale*(rng.Float64()-0.5))
	}
	for i := 0; i < n; i++ {
		tau++
		us = append(us, mod.New(mod.OID(i+1), tau, vec(2), vec(200)))
	}
	for i := 0; i < m; i++ {
		o := mod.OID(rng.Intn(n) + 1)
		if dead[o] {
			continue
		}
		tau++
		if i%37 == 36 && len(dead) < n/4 {
			dead[o] = true
			us = append(us, mod.Terminate(o, tau))
			continue
		}
		us = append(us, mod.ChDir(o, tau, vec(2)))
	}
	return us
}

func TestConcurrentCheckpointUpdatesQueries(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	eng, err := durable.Open(dir, durable.Config{Shards: shards, Workers: shards, Dim: 2, Tau0: 0})
	if err != nil {
		t.Fatal(err)
	}

	us := genUpdates(7, 60, 400)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Checkpointer: rotate journals continuously during the stream.
	checkpoints := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Checkpoint(); err != nil {
				t.Errorf("live checkpoint: %v", err)
				return
			}
			checkpoints++
		}
	}()

	// Queriers: past k-NN and within sweeps against the live engine.
	f := gdist.PointSq{Point: []float64{10, -10}}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, _, err := eng.KNN(f, 3, 0, 100); err != nil {
					t.Errorf("live knn: %v", err)
					return
				}
				if _, _, _, err := eng.Within(f, 50*50, 0, 100); err != nil {
					t.Errorf("live within: %v", err)
					return
				}
			}
		}()
	}

	// Updaters: the stream, partitioned by owning shard so per-shard
	// chronology holds, applied from one goroutine per shard.
	if err := workload.ReplayConcurrent(us, shards, eng.ShardOf, eng.Apply); err != nil {
		t.Fatalf("concurrent replay: %v", err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	t.Logf("%d checkpoints interleaved with %d updates", checkpoints, len(us))

	// Quiesce, shut down gracefully, recover, compare bit-for-bit.
	quiesced := eng.Snapshot()
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := durable.Open(dir, durable.Config{Shards: shards, Dim: 2, Tau0: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if !rec.Snapshot().StateEqual(quiesced) {
		t.Fatal("post-recovery state differs from the quiesced snapshot")
	}
}
