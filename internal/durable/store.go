// Package durable is the crash-safe persistence layer: it manages, per
// database, a {snapshot, journal} pair under a manifest, with an
// atomic checkpoint protocol and a recovery path that tolerates every
// state a crash can leave behind.
//
// The paper's update model (Definition 3) is what makes this simple:
// the database is fully determined by its chronological update
// sequence, so the journal of applied updates IS the persistent
// artifact, and a snapshot is merely a replay accelerator. Recovery is
// "load the newest durable snapshot, replay every journal entry after
// it"; the chronology check makes replay idempotent over entries the
// snapshot already contains, so the protocol never needs an exact
// snapshot/journal boundary — only an ordering guarantee.
//
// On-disk layout of one store directory:
//
//	MANIFEST            {"version":1,"seq":k,"snapshot":"snap-...","journal":"wal-...","dim":d,"tau0":t}
//	snap-0000007.json   mod.SaveJSON snapshot (absent while seq==1 with no checkpoint yet)
//	wal-0000007.jsonl   journal segment: one JSON line per applied update
//
// Checkpoint protocol (see DESIGN.md "Durability & recovery" for the
// crash matrix):
//
//  1. create wal-(k+1), fsync the directory        (segment durable, empty)
//  2. swap the live journal onto wal-(k+1)         (old segment flushed+fsynced)
//  3. snapshot the database                        (after the swap — see below)
//  4. write snap-(k+1) via tmp+fsync+rename        (atomic)
//  5. write MANIFEST via tmp+fsync+rename          (the commit point)
//  6. delete wal-k, snap-k                         (garbage collection)
//
// The swap-before-snapshot order is the correctness crux: every update
// applied after the swap lands in wal-(k+1), so the new pair
// {snap-(k+1), wal-(k+1)} misses nothing (updates in both are
// deduplicated by chronology on replay). A crash before step 5 leaves
// the old manifest pointing at the old pair, and recovery additionally
// replays any orphaned newer segments, so updates journaled between
// steps 2 and 5 survive too. A crash after step 5 merely leaves
// garbage for the next open to collect.
package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mod"
	"repro/internal/vfs"
)

// manifestName is the per-store manifest file.
const manifestName = "MANIFEST"

// storeManifest is the wire form of a store's manifest.
type storeManifest struct {
	Version  int    `json:"version"`
	Seq      uint64 `json:"seq"`
	Snapshot string `json:"snapshot,omitempty"`
	Journal  string `json:"journal"`
	Dim      int    `json:"dim"`
	// Tau0 is omitted when it is -Inf (the common "accept any first
	// update" seed): JSON cannot represent -Inf, and encoding it used to
	// make initFresh fail for exactly that seed. Absent means -Inf.
	Tau0 *float64 `json:"tau0,omitempty"`
}

// tau0Of reads the manifest's initial time, resolving the omitted-field
// sentinel.
func (m storeManifest) tau0Of() float64 {
	if m.Tau0 == nil {
		return math.Inf(-1)
	}
	return *m.Tau0
}

// tau0Ptr builds the manifest form of an initial time.
func tau0Ptr(t float64) *float64 {
	if math.IsInf(t, -1) {
		return nil
	}
	return &t
}

// Format selects the codec of newly written journal segments and
// snapshots. Either format is always READ correctly — recovery detects
// each file's codec from its name, so stores migrate segment by
// segment: reopening a JSON store with the binary format keeps
// appending JSON to the recovered tail segment and switches to binary
// at the next rotation.
type Format int

const (
	// FormatBinary is the compact raw-bits codec (mod.SaveBinary /
	// binary journal records): every float round-trips bit-exactly,
	// including the ±Inf values JSON rejects, and records carry CRCs.
	// The default.
	FormatBinary Format = iota
	// FormatJSON is the legacy human-readable codec (mod.SaveJSON /
	// JSON-lines journal).
	FormatJSON
)

func walName(seq uint64, f Format) string {
	if f == FormatJSON {
		return fmt.Sprintf("wal-%07d.jsonl", seq)
	}
	return fmt.Sprintf("wal-%07d.wal", seq)
}

func snapName(seq uint64, f Format) string {
	if f == FormatJSON {
		return fmt.Sprintf("snap-%07d.json", seq)
	}
	return fmt.Sprintf("snap-%07d.bin", seq)
}

// isBinaryName reports whether a wal/snap file name carries the binary
// codec, by suffix.
func isBinaryName(name string) bool {
	return strings.HasSuffix(name, ".wal") || strings.HasSuffix(name, ".bin")
}

// parseSeq extracts the sequence number of a wal-/snap- file name, or
// ok=false for anything else (tmp files, the manifest, foreign files).
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// StoreOptions parametrize a store.
type StoreOptions struct {
	// Dim and Tau0 configure a fresh database when the directory is
	// empty; for an existing store Dim (when non-zero) is validated
	// against the manifest.
	Dim  int
	Tau0 float64
	// NoFlushEach disables the per-update journal flush. The default
	// (flush after every applied update) bounds data loss on a process
	// crash to the single in-flight entry; disabling trades that for
	// update throughput (the loss bound becomes the bufio buffer).
	// Shorthand for Commit: CommitNone; ignored when Commit is set.
	NoFlushEach bool
	// Commit selects the durability policy of the update path (see
	// CommitPolicy). The zero value is CommitFlushEach, unless
	// NoFlushEach selects CommitNone.
	Commit CommitPolicy
	// CommitInterval is CommitGroup's coalescing window: how long the
	// committer waits before each fsync so concurrent appliers can join
	// the batch. 0 means no artificial wait — entries arriving during an
	// fsync still ride the next one, which is usually batching enough.
	CommitInterval time.Duration
	// CommitMaxBatch skips the coalescing window once this many entries
	// are already waiting; 0 means a default (256).
	CommitMaxBatch int
	// Format selects the codec for new journal segments and snapshots;
	// the zero value is FormatBinary. Existing files are read by their
	// own codec regardless.
	Format Format

	// commitMetrics, when non-nil, receives the group-commit series
	// (set by the engine, which owns the registry).
	commitMetrics *engineMetrics
}

// policy resolves the effective commit policy.
func (o StoreOptions) policy() CommitPolicy {
	if o.Commit == CommitFlushEach && o.NoFlushEach {
		return CommitNone
	}
	return o.Commit
}

// RecoveryInfo reports what opening a store did.
type RecoveryInfo struct {
	// SnapshotLoaded is true when a snapshot file was restored (false
	// for a fresh store or a store that never checkpointed).
	SnapshotLoaded bool
	// Segments is the number of journal segments replayed.
	Segments int
	// Replay aggregates the per-segment tolerant-replay stats.
	Replay mod.ReplayStats
	// Duration is the wall-clock recovery time.
	Duration time.Duration
}

// CheckpointInfo reports one completed checkpoint.
type CheckpointInfo struct {
	// Seq is the new manifest sequence number.
	Seq uint64
	// SnapshotBytes is the size of the written snapshot.
	SnapshotBytes int
	// Duration is the wall-clock checkpoint time.
	Duration time.Duration
}

// Store manages the durable {snapshot, journal} pair of one mod.DB. It
// is safe for concurrent use: updates flow through the database's own
// locking into the journal, and checkpoints serialize on the store's
// mutex while updates continue. The store mutex is never held while
// writing an entry — the journal writes straight to the current segment
// file under its own lock, and rotation redirects it via SwapWriter —
// so checkpointing never blocks the update path beyond the one flush
// inside the swap.
type Store struct {
	fs  vfs.FS
	dir string
	db  *mod.DB
	j   *mod.Journal

	mu          sync.Mutex
	jfile       vfs.File // current segment's handle (journal writes to it)
	manifestSeq uint64   // seq the on-disk manifest commits to
	walSeq      uint64   // seq of the segment the live journal writes
	walBinary   bool     // codec of the live segment (may lag opts.Format until rotation)
	closed      bool

	c *committer // non-nil iff the policy is CommitGroup

	opts     StoreOptions
	recovery RecoveryInfo
}

// OpenStore opens (creating or recovering) the store in dir and
// returns it with a live, journaled database: every update applied to
// DB() from now on is appended to the current journal segment. Recovery
// loads the manifest's snapshot, then replays the manifest's journal
// segment and any orphaned newer segments in order, tolerating a torn
// tail (which is truncated away so the segment is appendable again).
func OpenStore(fsys vfs.FS, dir string, opts StoreOptions) (*Store, error) {
	return openStore(fsys, dir, opts, nil)
}

// openStoreWithDB lays out a brand-new store in dir that adopts db as
// its live database (the re-shard path: the engine partitions a merged
// database and persists each part into a fresh store). The directory
// must not already hold a store. Callers should checkpoint promptly:
// until then the adopted state exists only in memory — the fresh
// journal records subsequent updates, not the adopted history.
func openStoreWithDB(fsys vfs.FS, dir string, db *mod.DB, opts StoreOptions) (*Store, error) {
	if db == nil {
		return nil, errors.New("durable: openStoreWithDB needs a database")
	}
	return openStore(fsys, dir, opts, db)
}

func openStore(fsys vfs.FS, dir string, opts StoreOptions, adopt *mod.DB) (*Store, error) {
	start := time.Now()
	if fsys == nil {
		fsys = vfs.OS{}
	}
	s := &Store{fs: fsys, dir: dir, opts: opts}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: mkdir %s: %w", dir, err)
	}
	man, err := readStoreManifest(fsys, path.Join(dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		if adopt != nil {
			s.db = adopt
			s.opts.Dim = adopt.Dim()
		}
		if err := s.initFresh(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	case adopt != nil:
		return nil, fmt.Errorf("durable: %s already holds a store", dir)
	default:
		if err := s.recover(man); err != nil {
			return nil, err
		}
	}
	// Journal every subsequently applied update. The per-update listener
	// depends on the commit policy: flush each (bound loss to one entry
	// on process crash), fsync each (full durability, one fsync per
	// update), nothing (CommitNone and CommitGroup — the latter fsyncs
	// from the committer goroutine instead). Listener order (encode,
	// then flush/sync) is guaranteed by registration order, and
	// application order by the database's notification serialization.
	// The journal writes to the segment file directly; checkpoint
	// rotation redirects it with SwapWriter/Rotate. The journal's record
	// format follows the live segment's codec — for a recovered legacy
	// JSON tail that means JSON until the next rotation switches it.
	if s.walBinary {
		s.j = mod.NewJournalBinary(s.db, s.jfile)
	} else {
		s.j = mod.NewJournal(s.db, s.jfile)
	}
	switch opts.policy() {
	case CommitFlushEach:
		//modlint:allow syncorder -- listener must not block updates; a sticky journal error is surfaced by WaitDurable/JournalErr
		s.db.OnUpdate(func(mod.Update) { _ = s.j.Flush() })
	case CommitSyncEach:
		//modlint:allow syncorder -- listener must not block updates; a sticky journal error is surfaced by WaitDurable/JournalErr
		s.db.OnUpdate(func(mod.Update) { _ = s.j.Sync() })
	case CommitGroup:
		s.c = newCommitter(s.j, opts.CommitInterval, opts.CommitMaxBatch, opts.commitMetrics)
	}
	s.recovery.Duration = time.Since(start)
	s.gc()
	return s, nil
}

// initFresh lays out a brand-new store: an empty first journal segment,
// then the manifest committing to it. Crash between the two steps
// leaves a manifest-less directory that the next open re-initializes.
func (s *Store) initFresh() error {
	dim := s.opts.Dim
	if dim <= 0 {
		return fmt.Errorf("durable: fresh store %s needs a positive dimension, got %d", s.dir, dim)
	}
	if math.IsNaN(s.opts.Tau0) || math.IsInf(s.opts.Tau0, 1) {
		return fmt.Errorf("durable: fresh store %s: initial time %g is not representable", s.dir, s.opts.Tau0)
	}
	if s.db == nil {
		s.db = mod.NewDB(dim, s.opts.Tau0)
	}
	jname := walName(1, s.opts.Format)
	f, err := s.fs.Create(path.Join(s.dir, jname))
	if err != nil {
		return fmt.Errorf("durable: create journal: %w", err)
	}
	if s.opts.Format == FormatBinary {
		// The segment header goes in before any entry can arrive (the
		// journal is wired up only after initFresh returns). A crash
		// leaving it partial is handled on recovery: a tail torn inside
		// the header truncates to zero and the header is rewritten.
		if _, err := f.Write(mod.BinaryJournalHeader()); err != nil {
			_ = f.Close()
			return fmt.Errorf("durable: write journal header: %w", err)
		}
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	man := storeManifest{Version: 1, Seq: 1, Journal: jname, Dim: dim, Tau0: tau0Ptr(s.opts.Tau0)}
	if err := writeStoreManifest(s.fs, path.Join(s.dir, manifestName), man); err != nil {
		_ = f.Close()
		return err
	}
	s.jfile = f
	s.manifestSeq = 1
	s.walSeq = 1
	s.walBinary = s.opts.Format == FormatBinary
	return nil
}

// recover restores the database named by the manifest: snapshot, then
// the manifest's segment and every orphaned newer segment in sequence
// order, each replayed tolerantly. The final segment is truncated past
// its last complete entry and reopened for appending.
func (s *Store) recover(man storeManifest) error {
	if man.Version != 1 {
		return fmt.Errorf("durable: %s: unsupported manifest version %d", s.dir, man.Version)
	}
	if s.opts.Dim != 0 && s.opts.Dim != man.Dim {
		return fmt.Errorf("durable: %s holds a %d-D database, want %d-D", s.dir, man.Dim, s.opts.Dim)
	}
	if man.Snapshot != "" {
		r, err := s.fs.Open(path.Join(s.dir, man.Snapshot))
		if err != nil {
			return fmt.Errorf("durable: open snapshot: %w", err)
		}
		var db *mod.DB
		var lerr error
		if isBinaryName(man.Snapshot) {
			db, lerr = mod.LoadBinary(r)
		} else {
			db, lerr = mod.LoadJSON(r)
		}
		cerr := r.Close()
		if lerr != nil {
			return fmt.Errorf("durable: snapshot %s: %w", man.Snapshot, lerr)
		}
		if cerr != nil {
			return cerr
		}
		if db.Dim() != man.Dim {
			return fmt.Errorf("durable: snapshot %s is %d-D, manifest says %d-D", man.Snapshot, db.Dim(), man.Dim)
		}
		s.db = db
		s.recovery.SnapshotLoaded = true
	} else {
		s.db = mod.NewDB(man.Dim, man.tau0Of())
	}
	segs, err := s.segmentsFrom(man.Seq)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		// The manifest's segment is created (and the directory synced)
		// before the manifest commits to it, so this is reachable only
		// by outside interference; heal by recreating the segment the
		// manifest names, in that name's codec.
		segs = []walSegment{{seq: man.Seq, name: man.Journal}}
		f, cerr := s.fs.Create(path.Join(s.dir, man.Journal))
		if cerr != nil {
			return fmt.Errorf("durable: recreate journal: %w", cerr)
		}
		if isBinaryName(man.Journal) {
			if _, werr := f.Write(mod.BinaryJournalHeader()); werr != nil {
				_ = f.Close()
				return fmt.Errorf("durable: write journal header: %w", werr)
			}
		}
		_ = f.Close()
	}
	for i, seg := range segs {
		bin := isBinaryName(seg.name)
		r, oerr := s.fs.Open(path.Join(s.dir, seg.name))
		if errors.Is(oerr, os.ErrNotExist) && i > 0 {
			continue // gap beyond the manifest segment: nothing to replay
		}
		if oerr != nil {
			return fmt.Errorf("durable: open journal %s: %w", seg.name, oerr)
		}
		var st mod.ReplayStats
		var rerr error
		if bin {
			st, rerr = mod.ReplayTolerantBinary(s.db, r)
		} else {
			st, rerr = mod.ReplayTolerant(s.db, r)
		}
		_ = r.Close()
		if rerr != nil {
			return fmt.Errorf("durable: replay %s: %w", seg.name, rerr)
		}
		s.recovery.Segments++
		s.recovery.Replay.Applied += st.Applied
		s.recovery.Replay.Skipped += st.Skipped
		if st.TornTail {
			s.recovery.Replay.TornTail = true
			s.recovery.Replay.TailBytes += st.TailBytes
		}
		if i == len(segs)-1 {
			if st.TornTail {
				if terr := s.fs.Truncate(path.Join(s.dir, seg.name), st.GoodBytes); terr != nil {
					return fmt.Errorf("durable: truncate torn tail of %s: %w", seg.name, terr)
				}
			}
			f, aerr := s.fs.Append(path.Join(s.dir, seg.name))
			if aerr != nil {
				return fmt.Errorf("durable: reopen journal %s: %w", seg.name, aerr)
			}
			if bin && st.GoodBytes == 0 {
				// The crash happened before (or inside) the segment's
				// 5-byte header: the file is empty now (any torn header
				// bytes were truncated above), so write the header the
				// appended records need.
				if _, werr := f.Write(mod.BinaryJournalHeader()); werr != nil {
					_ = f.Close()
					return fmt.Errorf("durable: rewrite journal header: %w", werr)
				}
			}
			s.jfile = f
			s.walSeq = seg.seq
			s.walBinary = bin
		}
	}
	s.manifestSeq = man.Seq
	return nil
}

// walSegment names one on-disk journal segment; the name's suffix
// carries its codec.
type walSegment struct {
	seq  uint64
	name string
}

// segmentsFrom lists existing journal segments with seq >= from,
// ascending, across both codecs. The same seq in both codecs cannot
// arise from any crash of this code (a segment is created in exactly
// one codec and seqs only grow), so it is outside interference and an
// error.
func (s *Store) segmentsFrom(from uint64) ([]walSegment, error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list %s: %w", s.dir, err)
	}
	var segs []walSegment
	seen := make(map[uint64]string)
	for _, n := range names {
		seq, ok := parseSeq(n, "wal-", ".jsonl")
		if !ok {
			seq, ok = parseSeq(n, "wal-", ".wal")
		}
		if !ok || seq < from {
			continue
		}
		if prev, dup := seen[seq]; dup {
			return nil, fmt.Errorf("durable: journal segment %d exists as both %s and %s", seq, prev, n)
		}
		seen[seq] = n
		segs = append(segs, walSegment{seq: seq, name: n})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// DB returns the live database. Updates applied to it are journaled.
func (s *Store) DB() *mod.DB { return s.db }

// Recovery reports what opening this store did.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// Seq returns the on-disk manifest sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifestSeq
}

// JournalErr surfaces the live journal's sticky write error, if any —
// non-nil means updates applied since the error are NOT durable and a
// checkpoint (which supersedes the journal with a snapshot) is the way
// to restore durability.
func (s *Store) JournalErr() error { return s.j.Err() }

// Checkpoint runs the atomic checkpoint protocol described in the
// package comment: rotate the journal onto a fresh segment, snapshot
// the database, persist the snapshot atomically, commit the new
// {snapshot, journal} pair in the manifest, then collect the old pair.
// Updates may continue concurrently throughout. On error the store is
// still consistent and still journaling; the manifest commits to the
// old pair until the new one is fully durable.
func (s *Store) Checkpoint() (CheckpointInfo, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CheckpointInfo{}, errors.New("durable: store closed")
	}
	newSeq := s.walSeq + 1
	binary := s.opts.Format == FormatBinary
	newWal := walName(newSeq, s.opts.Format)

	// 1. Fresh segment, durable before any entry can land in it. A
	// binary segment gets its header now, while the live journal still
	// writes to the old segment — no entry can interleave before it.
	f, err := s.fs.Create(path.Join(s.dir, newWal))
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("durable: checkpoint: create segment: %w", err)
	}
	if binary {
		if _, err := f.Write(mod.BinaryJournalHeader()); err != nil {
			_ = f.Close()
			_ = s.fs.Remove(path.Join(s.dir, newWal))
			return CheckpointInfo{}, fmt.Errorf("durable: checkpoint: write segment header: %w", err)
		}
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(path.Join(s.dir, newWal))
		return CheckpointInfo{}, fmt.Errorf("durable: checkpoint: sync dir: %w", err)
	}

	// 2. Redirect the live journal. From here on every new entry goes
	// to wal-newSeq; the old segment is flushed and fsynced. A flush
	// error on the old segment is swallowed deliberately: entries it
	// may have lost were applied before the swap and are therefore in
	// the snapshot taken next. Under group commit the rotation also
	// resolves every waiter whose entry the old segment's final fsync
	// covered (with its outcome — a failure is never acked, even though
	// the snapshot below would persist those entries, because a crash
	// before the manifest commit would lose them).
	old := s.jfile
	if s.c != nil {
		_ = s.c.rotate(f, binary) //modlint:allow syncorder -- old-segment flush loss is covered by the snapshot taken next; waiters get the outcome via resolve
	} else {
		_, _ = s.j.RotateBinary(f, binary) //modlint:allow syncorder -- old-segment flush loss is covered by the snapshot taken next
	}
	s.jfile = f
	s.walSeq = newSeq
	s.walBinary = binary
	if old != nil {
		_ = old.Close()
	}

	// 3+4. Snapshot after the swap, persist atomically.
	var buf bytes.Buffer
	snap := s.db.Snapshot()
	var encErr error
	if binary {
		encErr = snap.SaveBinary(&buf)
	} else {
		encErr = snap.SaveJSON(&buf)
	}
	if encErr != nil {
		return CheckpointInfo{}, fmt.Errorf("durable: checkpoint: encode snapshot: %w", encErr)
	}
	newSnap := snapName(newSeq, s.opts.Format)
	if err := vfs.WriteFileAtomic(s.fs, path.Join(s.dir, newSnap), buf.Bytes()); err != nil {
		return CheckpointInfo{}, fmt.Errorf("durable: checkpoint: write snapshot: %w", err)
	}

	// 5. Commit.
	man := storeManifest{
		Version: 1, Seq: newSeq,
		Snapshot: newSnap, Journal: newWal,
		Dim: s.db.Dim(), Tau0: tau0Ptr(s.opts.Tau0),
	}
	if err := writeStoreManifest(s.fs, path.Join(s.dir, manifestName), man); err != nil {
		return CheckpointInfo{}, err
	}
	s.manifestSeq = newSeq

	// 6. Collect the superseded pair (best-effort; recovery GCs too).
	s.gcLocked()
	return CheckpointInfo{Seq: newSeq, SnapshotBytes: buf.Len(), Duration: time.Since(start)}, nil
}

// Sync flushes and fsyncs the live journal — the strong-durability
// barrier between checkpoints.
func (s *Store) Sync() error { return s.j.Sync() }

// WaitDurable blocks until every journal entry buffered before the call
// is durable under the store's commit policy, returning nil exactly
// when it is. Under CommitGroup this is the ack point: Apply, then
// WaitDurable; a nil return means the fsync covering the caller's
// entries succeeded. Under the per-update policies the journal's
// listener already did the per-entry work, so only the sticky error is
// surfaced (nil under CommitNone means "accepted", not "on disk" —
// that policy explicitly waives per-update durability).
func (s *Store) WaitDurable() error {
	if err := s.j.Err(); err != nil {
		return err
	}
	if s.c == nil {
		return nil
	}
	return s.c.waitFor(s.j.Seq())
}

// Close flushes and fsyncs the journal and closes the segment file.
// The store's database remains readable; further updates are no longer
// journaled (the journal rejects them once closed).
func (s *Store) Close() error {
	if s.c != nil {
		s.c.shutdown() // final drain: one last fsync for pending waiters
	}
	cerr := s.j.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return cerr
	}
	s.closed = true
	if s.jfile != nil {
		if err := s.jfile.Close(); err != nil && cerr == nil {
			cerr = err
		}
		s.jfile = nil
	}
	if errors.Is(cerr, mod.ErrJournalClosed) {
		cerr = nil
	}
	return cerr
}

// gc removes files the manifest no longer references: older segments
// and snapshots, orphaned newer snapshots, leftover temp files. Errors
// are ignored — garbage is re-collectable on the next open.
func (s *Store) gc() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
}

func (s *Store) gcLocked() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	man, err := readStoreManifest(s.fs, path.Join(s.dir, manifestName))
	if err != nil {
		return
	}
	for _, n := range names {
		switch {
		case strings.HasSuffix(n, ".tmp"):
			_ = s.fs.Remove(path.Join(s.dir, n))
		case n == man.Snapshot || n == man.Journal || n == manifestName:
			// live
		default:
			seq, isWal := parseSeq(n, "wal-", ".jsonl")
			if !isWal {
				seq, isWal = parseSeq(n, "wal-", ".wal")
			}
			if isWal {
				// Newer segments than the manifest's hold updates the
				// manifest pair does not cover — never collect those.
				if seq < man.Seq {
					_ = s.fs.Remove(path.Join(s.dir, n))
				}
				continue
			}
			_, isSnap := parseSeq(n, "snap-", ".json")
			if !isSnap {
				_, isSnap = parseSeq(n, "snap-", ".bin")
			}
			if isSnap {
				// Snapshots other than the manifest's are either
				// superseded or orphans of a failed checkpoint; the
				// manifest pair plus newer segments re-derive them.
				_ = s.fs.Remove(path.Join(s.dir, n))
			}
		}
	}
}

// readStoreManifest loads and decodes a manifest.
func readStoreManifest(fsys vfs.FS, p string) (storeManifest, error) {
	data, err := vfs.ReadFile(fsys, p)
	if err != nil {
		return storeManifest{}, err
	}
	var man storeManifest
	if err := unmarshalStrict(data, &man); err != nil {
		return storeManifest{}, fmt.Errorf("durable: manifest %s: %w", p, err)
	}
	return man, nil
}

// writeStoreManifest encodes and atomically persists a manifest.
func writeStoreManifest(fsys vfs.FS, p string, man storeManifest) error {
	data, err := marshalLine(man)
	if err != nil {
		return err
	}
	if err := vfs.WriteFileAtomic(fsys, p, data); err != nil {
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	return nil
}

// unmarshalStrict decodes JSON rejecting unknown fields — a manifest
// with fields this version doesn't know is a manifest it must not
// half-understand.
func unmarshalStrict(data []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// marshalLine encodes v as one newline-terminated JSON line.
func marshalLine(v interface{}) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
