package durable_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/vfs"
)

// stream10 is a small chronological stream exercising all three update
// kinds, with strictly increasing integer taus 0..9 so a recovered
// database's Tau identifies exactly which prefix it holds.
func stream10() []mod.Update {
	return []mod.Update{
		mod.New(1, 0, geom.Of(1, 0), geom.Of(0, 0)),
		mod.New(2, 1, geom.Of(0, 1), geom.Of(10, 10)),
		mod.ChDir(1, 2, geom.Of(-1, 0)),
		mod.New(3, 3, geom.Of(2, 2), geom.Of(-5, -5)),
		mod.ChDir(2, 4, geom.Of(1, 1)),
		mod.Terminate(3, 5),
		mod.ChDir(1, 6, geom.Of(0, -1)),
		mod.Terminate(2, 7),
		mod.New(4, 8, geom.Of(0.5, -0.25), geom.Of(100, -100)),
		mod.ChDir(4, 9, geom.Of(-0.5, 0.25)),
	}
}

// prefixDB builds the database state after the first j updates.
func prefixDB(t *testing.T, us []mod.Update, j int) *mod.DB {
	t.Helper()
	db := mod.NewDB(2, -1)
	if err := db.ApplyAll(us[:j]...); err != nil {
		t.Fatal(err)
	}
	return db
}

// prefixLen maps a recovered Tau back to the stream prefix length that
// produces it, or -1 if the tau matches no prefix (a non-prefix state).
func prefixLen(tau float64, us []mod.Update) int {
	if tau == -1 {
		return 0
	}
	for j, u := range us {
		if u.Tau == tau {
			return j + 1
		}
	}
	return -1
}

func TestStoreJournalOnlyReopen(t *testing.T) {
	dir := t.TempDir()
	us := stream10()
	st, err := durable.OpenStore(nil, dir, durable.StoreOptions{Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DB().ApplyAll(us...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := durable.OpenStore(nil, dir, durable.StoreOptions{Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	info := st2.Recovery()
	if info.SnapshotLoaded || info.Replay.Applied != len(us) || info.Replay.Skipped != 0 || info.Replay.TornTail {
		t.Fatalf("recovery = %+v, want journal-only replay of %d entries", info, len(us))
	}
	if !st2.DB().StateEqual(prefixDB(t, us, len(us))) {
		t.Fatal("recovered state differs from applied state")
	}
}

func TestStoreCheckpointReopenAndGC(t *testing.T) {
	dir := t.TempDir()
	us := stream10()
	st, err := durable.OpenStore(nil, dir, durable.StoreOptions{Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DB().ApplyAll(us[:4]...); err != nil {
		t.Fatal(err)
	}
	if info, err := st.Checkpoint(); err != nil || info.Seq != 2 {
		t.Fatalf("first checkpoint: %+v, %v", info, err)
	}
	if err := st.DB().ApplyAll(us[4:8]...); err != nil {
		t.Fatal(err)
	}
	if info, err := st.Checkpoint(); err != nil || info.Seq != 3 {
		t.Fatalf("second checkpoint: %+v, %v", info, err)
	}
	if err := st.DB().ApplyAll(us[8:]...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// GC must have left exactly the manifest and the live pair.
	names, err := vfs.OS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("store dir holds %v, want MANIFEST + 1 snapshot + 1 journal", names)
	}

	st2, err := durable.OpenStore(nil, dir, durable.StoreOptions{Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	info := st2.Recovery()
	if !info.SnapshotLoaded {
		t.Fatalf("recovery = %+v, want snapshot load", info)
	}
	if info.Replay.Applied != 2 {
		t.Fatalf("recovery applied %d entries, want 2 (post-checkpoint tail)", info.Replay.Applied)
	}
	if st2.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", st2.Seq())
	}
	if !st2.DB().StateEqual(prefixDB(t, us, len(us))) {
		t.Fatal("recovered state differs from applied state")
	}
}

// TestStoreTornTailReopenAppend crashes a journal mid-record by hand
// (truncating the segment file) and asserts the next open drops the
// torn tail, truncates it away, and leaves the segment appendable: a
// further update plus another reopen round-trips the repaired history.
func TestStoreTornTailReopenAppend(t *testing.T) {
	dir := t.TempDir()
	us := stream10()
	st, err := durable.OpenStore(nil, dir, durable.StoreOptions{Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DB().ApplyAll(us...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop 3 bytes off the segment.
	wal := filepath.Join(dir, "wal-0000001.wal")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2, err := durable.OpenStore(nil, dir, durable.StoreOptions{Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	info := st2.Recovery()
	if !info.Replay.TornTail || info.Replay.Applied != len(us)-1 {
		t.Fatalf("recovery = %+v, want torn tail with %d applied", info, len(us)-1)
	}
	if !st2.DB().StateEqual(prefixDB(t, us, len(us)-1)) {
		t.Fatal("recovered state is not the complete-entry prefix")
	}
	// The dropped update can be re-applied and must survive a reopen.
	if err := st2.DB().Apply(us[len(us)-1]); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := durable.OpenStore(nil, dir, durable.StoreOptions{Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Recovery().Replay.TornTail {
		t.Fatal("torn tail reported again after repair")
	}
	if !st3.DB().StateEqual(prefixDB(t, us, len(us))) {
		t.Fatal("re-applied update did not survive the repaired journal")
	}
}

func TestStoreDimMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := durable.OpenStore(nil, dir, durable.StoreOptions{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := durable.OpenStore(nil, dir, durable.StoreOptions{Dim: 3}); err == nil ||
		!strings.Contains(err.Error(), "2-D") {
		t.Fatalf("dim-mismatch open: %v, want dimension error", err)
	}
}

func TestStoreFreshNeedsDim(t *testing.T) {
	if _, err := durable.OpenStore(nil, t.TempDir(), durable.StoreOptions{}); err == nil {
		t.Fatal("fresh store without a dimension must fail")
	}
}
