// Package errfs is a deterministic fault injector for the durability
// protocol: it wraps a real vfs.FS and fails exactly the Nth mutating
// operation, after which every further mutating operation fails too —
// modelling a process that dies at that point and never touches the
// disk again. Reads keep working (recovery inspects the wreckage), and
// everything before the crash point really happened on the backing
// filesystem, so a test can re-open the directory with a clean vfs.OS
// and assert what recovery makes of the exact on-disk state a crash at
// that step leaves behind.
//
// Three fault shapes cover the protocol's failure modes:
//
//   - FailOp: the operation returns an error with no effect — a clean
//     crash between two filesystem operations.
//   - ShortWrite: a Write persists only half its bytes, then the crash —
//     the torn-write state a dying process leaves in a journal or a
//     snapshot temp file. Non-write operations degrade to FailOp.
//   - FailSync: a Sync/SyncDir reports failure (the data may in fact
//     have reached the backing store — fsync failure says nothing
//     either way), then the crash. Non-sync operations degrade to
//     FailOp.
//
// Operation counting is deterministic for a deterministic caller, so
// sweeping FailAt over 1..Ops() exercises every crash point exactly
// once (the crash-matrix test in internal/durable).
package errfs

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/vfs"
)

// Mode selects the fault shape injected at the FailAt'th operation.
type Mode int

const (
	// FailOp fails the operation cleanly, with no effect.
	FailOp Mode = iota
	// ShortWrite persists half the bytes of a Write, then fails; for
	// non-write operations it behaves like FailOp.
	ShortWrite
	// FailSync fails a Sync or SyncDir without performing it; for
	// non-sync operations it behaves like FailOp.
	FailSync
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case FailOp:
		return "fail-op"
	case ShortWrite:
		return "short-write"
	case FailSync:
		return "fail-sync"
	default:
		return "unknown"
	}
}

// ErrInjected is the error returned by the operation the fault fires
// on.
var ErrInjected = errors.New("errfs: injected fault")

// ErrCrashed is returned by every mutating operation after the fault:
// the simulated process is dead.
var ErrCrashed = errors.New("errfs: crashed (operation after injection point)")

// FS wraps an inner filesystem with deterministic fault injection. The
// zero FailAt (or a FailAt beyond the run's operation count) injects
// nothing and merely counts, which is how a test measures a protocol
// run's length before sweeping the crash point across it.
type FS struct {
	inner vfs.FS

	mu      sync.Mutex
	failAt  int // 1-based operation index to fail; 0 disables
	mode    Mode
	n       int // mutating operations seen
	crashed bool
	trace   []string
}

// New wraps inner, failing the failAt'th mutating operation with the
// given mode.
func New(inner vfs.FS, failAt int, mode Mode) *FS {
	return &FS{inner: inner, failAt: failAt, mode: mode}
}

// Ops returns the number of mutating operations attempted so far
// (including the faulted one and post-crash rejections).
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Crashed reports whether the fault has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Trace returns the operation log — one "op(args)" line per mutating
// operation, the injected one suffixed with the mode — for diagnosing a
// failing crash-matrix entry.
func (f *FS) Trace() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.trace...)
}

// step accounts one mutating operation and decides its fate: nil to
// proceed, ErrInjected/ErrCrashed to fail. inject reports whether this
// call is the injection point (the caller applies mode-specific
// behavior).
func (f *FS) step(op string) (inject bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		f.trace = append(f.trace, op+" [dead]")
		return false, ErrCrashed
	}
	f.n++
	if f.failAt > 0 && f.n == f.failAt {
		f.crashed = true
		f.trace = append(f.trace, fmt.Sprintf("%s [inject %s]", op, f.mode))
		return true, nil
	}
	f.trace = append(f.trace, op)
	return false, nil
}

// MkdirAll implements vfs.FS.
func (f *FS) MkdirAll(dir string) error {
	inject, err := f.step("mkdirall(" + dir + ")")
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return f.inner.MkdirAll(dir)
}

// ReadDir implements vfs.FS (reads are never faulted).
func (f *FS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// Open implements vfs.FS (reads are never faulted).
func (f *FS) Open(name string) (io.ReadCloser, error) { return f.inner.Open(name) }

// Create implements vfs.FS.
func (f *FS) Create(name string) (vfs.File, error) {
	inject, err := f.step("create(" + name + ")")
	if err != nil {
		return nil, err
	}
	if inject {
		return nil, ErrInjected
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

// Append implements vfs.FS.
func (f *FS) Append(name string) (vfs.File, error) {
	inject, err := f.step("append(" + name + ")")
	if err != nil {
		return nil, err
	}
	if inject {
		return nil, ErrInjected
	}
	file, err := f.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

// Rename implements vfs.FS.
func (f *FS) Rename(oldname, newname string) error {
	inject, err := f.step("rename(" + oldname + " -> " + newname + ")")
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements vfs.FS.
func (f *FS) Remove(name string) error {
	inject, err := f.step("remove(" + name + ")")
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return f.inner.Remove(name)
}

// Truncate implements vfs.FS.
func (f *FS) Truncate(name string, size int64) error {
	inject, err := f.step(fmt.Sprintf("truncate(%s, %d)", name, size))
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return f.inner.Truncate(name, size)
}

// SyncDir implements vfs.FS.
func (f *FS) SyncDir(dir string) error {
	inject, err := f.step("syncdir(" + dir + ")")
	if err != nil {
		return err
	}
	if inject {
		// The sync is skipped; entry operations before it may well have
		// hit the backing store already, which is exactly the ambiguity
		// a real fsync failure leaves.
		return ErrInjected
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads writes and syncs through the injector.
type faultFile struct {
	fs    *FS
	name  string
	inner vfs.File
}

// Write implements io.Writer.
func (ff *faultFile) Write(p []byte) (int, error) {
	inject, err := ff.fs.step(fmt.Sprintf("write(%s, %d)", ff.name, len(p)))
	if err != nil {
		return 0, err
	}
	if inject {
		if ff.fs.mode == ShortWrite && len(p) > 0 {
			n, werr := ff.inner.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	return ff.inner.Write(p)
}

// Sync implements vfs.File.
func (ff *faultFile) Sync() error {
	inject, err := ff.fs.step("sync(" + ff.name + ")")
	if err != nil {
		return err
	}
	if inject {
		// Under FailSync the data may have reached the disk; under the
		// other modes nothing distinguishes them for a sync — either
		// way the sync reports failure and the process dies.
		return ErrInjected
	}
	return ff.inner.Sync()
}

// Close implements vfs.File. Close is not counted as a fault point: a
// crashed process's descriptors close implicitly, and failing Close
// after a successful Sync adds no new on-disk state to explore. A
// crashed FS still closes the underlying handle so backing temp dirs
// can be cleaned up.
func (ff *faultFile) Close() error { return ff.inner.Close() }
