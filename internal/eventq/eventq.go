// Package eventq implements the sweep's event queue E (Section 5,
// Lemma 9): a priority queue of pending intersection events with one
// extra requirement beyond the usual heap interface — when two curves
// stop being adjacent in the object list, their pending event must be
// deleted. The paper notes a plain heap does not support this and
// suggests a height-biased leftist tree with bi-directional pointers (or
// an indexed heap).
//
// Two interchangeable implementations are provided:
//
//   - Heap: an indexed binary min-heap (delete via position map), and
//   - Leftist: a height-biased leftist tree with parent pointers,
//     the structure the paper names.
//
// Both key events by their left endpoint id: under Lemma 9's discipline
// each entry has at most one pending event (with its current successor),
// so the queue length never exceeds N. Pushing an event for a left id
// that already has one replaces it.
package eventq

// Event is a pending intersection of the curves of two currently-adjacent
// entries: Left immediately precedes Right in the object list, and their
// curves meet at time T.
type Event struct {
	T           float64
	Left, Right uint64
}

// Less orders events by (T, Left, Right); the id tie-break makes
// simultaneous events process in a deterministic order.
func (e Event) Less(o Event) bool {
	if e.T != o.T {
		return e.T < o.T
	}
	if e.Left != o.Left {
		return e.Left < o.Left
	}
	return e.Right < o.Right
}

// Queue is the event-queue interface shared by both implementations.
type Queue interface {
	// Push inserts ev, replacing any pending event with the same Left.
	Push(ev Event)
	// RemoveByLeft deletes the pending event whose Left is the given id,
	// reporting whether one existed.
	RemoveByLeft(left uint64) bool
	// Peek returns the earliest event without removing it.
	Peek() (Event, bool)
	// Pop removes and returns the earliest event.
	Pop() (Event, bool)
	// Len returns the number of pending events.
	Len() int
}

// New returns the default queue implementation (indexed binary heap).
func New() Queue { return NewHeap() }
