package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

// queues under test, by constructor.
var impls = []struct {
	name string
	mk   func() Queue
}{
	{"heap", func() Queue { return NewHeap() }},
	{"leftist", func() Queue { return NewLeftist() }},
}

func TestBasicOrder(t *testing.T) {
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			q := impl.mk()
			q.Push(Event{T: 5, Left: 1, Right: 2})
			q.Push(Event{T: 1, Left: 3, Right: 4})
			q.Push(Event{T: 3, Left: 5, Right: 6})
			if q.Len() != 3 {
				t.Fatalf("Len = %d", q.Len())
			}
			if ev, ok := q.Peek(); !ok || ev.T != 1 {
				t.Fatalf("Peek = %+v,%v", ev, ok)
			}
			var ts []float64
			for {
				ev, ok := q.Pop()
				if !ok {
					break
				}
				ts = append(ts, ev.T)
			}
			if !sort.Float64sAreSorted(ts) || len(ts) != 3 {
				t.Errorf("pop order %v", ts)
			}
			if _, ok := q.Pop(); ok {
				t.Error("Pop on empty")
			}
			if _, ok := q.Peek(); ok {
				t.Error("Peek on empty")
			}
		})
	}
}

func TestPushReplacesSameLeft(t *testing.T) {
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			q := impl.mk()
			q.Push(Event{T: 5, Left: 1, Right: 2})
			q.Push(Event{T: 2, Left: 1, Right: 7}) // replaces
			if q.Len() != 1 {
				t.Fatalf("Len = %d, want 1 (replace)", q.Len())
			}
			ev, _ := q.Pop()
			if ev.T != 2 || ev.Right != 7 {
				t.Errorf("got %+v", ev)
			}
			// Replace with a later time too.
			q.Push(Event{T: 2, Left: 1, Right: 7})
			q.Push(Event{T: 9, Left: 1, Right: 8})
			ev, _ = q.Pop()
			if ev.T != 9 {
				t.Errorf("got %+v, want replaced later event", ev)
			}
		})
	}
}

func TestRemoveByLeft(t *testing.T) {
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			q := impl.mk()
			for i := uint64(1); i <= 10; i++ {
				q.Push(Event{T: float64(11 - i), Left: i, Right: i + 100})
			}
			if !q.RemoveByLeft(5) {
				t.Fatal("remove existing failed")
			}
			if q.RemoveByLeft(5) {
				t.Fatal("remove twice succeeded")
			}
			if q.RemoveByLeft(99) {
				t.Fatal("remove missing succeeded")
			}
			if q.Len() != 9 {
				t.Fatalf("Len = %d", q.Len())
			}
			for {
				ev, ok := q.Pop()
				if !ok {
					break
				}
				if ev.Left == 5 {
					t.Error("removed event surfaced")
				}
			}
		})
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			q := impl.mk()
			q.Push(Event{T: 1, Left: 9, Right: 1})
			q.Push(Event{T: 1, Left: 2, Right: 5})
			q.Push(Event{T: 1, Left: 2.0e0 + 3, Right: 0}) // Left 5
			var lefts []uint64
			for {
				ev, ok := q.Pop()
				if !ok {
					break
				}
				lefts = append(lefts, ev.Left)
			}
			want := []uint64{2, 5, 9}
			for i := range want {
				if lefts[i] != want[i] {
					t.Fatalf("tie order %v, want %v", lefts, want)
				}
			}
		})
	}
}

// TestRandomizedAgainstReference runs a mixed workload and compares each
// pop against a linear-scan reference.
func TestRandomizedAgainstReference(t *testing.T) {
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			q := impl.mk()
			ref := map[uint64]Event{} // left -> event
			refMin := func() (Event, bool) {
				var best Event
				found := false
				for _, ev := range ref {
					if !found || ev.Less(best) {
						best, found = ev, true
					}
				}
				return best, found
			}
			for step := 0; step < 5000; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // push (possibly replacing)
					left := uint64(rng.Intn(50))
					ev := Event{T: rng.Float64() * 100, Left: left, Right: uint64(rng.Intn(1000))}
					q.Push(ev)
					ref[left] = ev
				case op < 7: // remove by left
					left := uint64(rng.Intn(50))
					_, inRef := ref[left]
					got := q.RemoveByLeft(left)
					if got != inRef {
						t.Fatalf("step %d: RemoveByLeft(%d) = %v, ref %v", step, left, got, inRef)
					}
					delete(ref, left)
				default: // pop
					want, wantOK := refMin()
					got, ok := q.Pop()
					if ok != wantOK {
						t.Fatalf("step %d: Pop ok=%v, ref %v", step, ok, wantOK)
					}
					if ok && (got != want) {
						t.Fatalf("step %d: Pop = %+v, ref %+v", step, got, want)
					}
					delete(ref, got.Left)
				}
				if q.Len() != len(ref) {
					t.Fatalf("step %d: Len %d vs ref %d", step, q.Len(), len(ref))
				}
				if lt, ok := q.(*Leftist); ok && step%100 == 0 {
					if err := lt.checkInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
		})
	}
}

func BenchmarkHeapPushPop(b *testing.B)    { benchPushPop(b, NewHeap()) }
func BenchmarkLeftistPushPop(b *testing.B) { benchPushPop(b, NewLeftist()) }

func benchPushPop(b *testing.B, q Queue) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		left := uint64(i % 4096)
		q.Push(Event{T: rng.Float64(), Left: left, Right: left + 1})
		if i%2 == 1 {
			q.Pop()
		}
	}
}

func BenchmarkHeapRemove(b *testing.B)    { benchRemove(b, NewHeap()) }
func BenchmarkLeftistRemove(b *testing.B) { benchRemove(b, NewLeftist()) }

func benchRemove(b *testing.B, q Queue) {
	rng := rand.New(rand.NewSource(1))
	const n = 4096
	for i := 0; i < n; i++ {
		q.Push(Event{T: rng.Float64(), Left: uint64(i), Right: uint64(i + 1)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		left := uint64(i % n)
		q.RemoveByLeft(left)
		q.Push(Event{T: rng.Float64(), Left: left, Right: left + 1})
	}
}
