package eventq

// Heap is an indexed binary min-heap: a position map from Left id to heap
// slot supports O(log N) deletion of an arbitrary pending event.
type Heap struct {
	items []Event
	pos   map[uint64]int // Left id -> index in items
}

// NewHeap returns an empty indexed heap.
func NewHeap() *Heap {
	return &Heap{pos: make(map[uint64]int)}
}

// Len implements Queue.
func (h *Heap) Len() int { return len(h.items) }

// Push implements Queue.
func (h *Heap) Push(ev Event) {
	if i, ok := h.pos[ev.Left]; ok {
		// Replace in place, then restore heap order in whichever
		// direction the key moved.
		old := h.items[i]
		h.items[i] = ev
		if ev.Less(old) {
			h.up(i)
		} else {
			h.down(i)
		}
		return
	}
	h.items = append(h.items, ev)
	i := len(h.items) - 1
	h.pos[ev.Left] = i
	h.up(i)
}

// RemoveByLeft implements Queue.
func (h *Heap) RemoveByLeft(left uint64) bool {
	i, ok := h.pos[left]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

// Peek implements Queue.
func (h *Heap) Peek() (Event, bool) {
	if len(h.items) == 0 {
		return Event{}, false
	}
	return h.items[0], true
}

// Pop implements Queue.
func (h *Heap) Pop() (Event, bool) {
	if len(h.items) == 0 {
		return Event{}, false
	}
	top := h.items[0]
	h.removeAt(0)
	return top, true
}

func (h *Heap) removeAt(i int) {
	last := len(h.items) - 1
	removed := h.items[i]
	delete(h.pos, removed.Left)
	if i != last {
		moved := h.items[last]
		h.items[i] = moved
		h.pos[moved.Left] = i
	}
	h.items = h.items[:last]
	if i < len(h.items) {
		// The moved element may need to travel either way.
		h.up(i)
		h.down(i)
	}
}

func (h *Heap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.items[i].Less(h.items[p]) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		least := i
		if l := 2*i + 1; l < n && h.items[l].Less(h.items[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && h.items[r].Less(h.items[least]) {
			least = r
		}
		if least == i {
			return
		}
		h.swap(i, least)
		i = least
	}
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].Left] = i
	h.pos[h.items[j].Left] = j
}
