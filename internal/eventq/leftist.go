package eventq

// Leftist is a height-biased leftist tree with parent pointers — the
// event-queue structure suggested in the paper's Lemma 9 proof for
// supporting deletion of an arbitrary pending event. Deletion splices the
// node's merged children into its place and repairs null-path lengths
// upward, stopping as soon as an ancestor's npl is unchanged.
type Leftist struct {
	root  *lnode
	nodes map[uint64]*lnode
	n     int
}

type lnode struct {
	ev          Event
	left, right *lnode
	parent      *lnode
	npl         int
}

// NewLeftist returns an empty leftist-tree queue.
func NewLeftist() *Leftist {
	return &Leftist{nodes: make(map[uint64]*lnode)}
}

// Len implements Queue.
func (q *Leftist) Len() int { return q.n }

func npl(n *lnode) int {
	if n == nil {
		return -1
	}
	return n.npl
}

// merge combines two leftist trees rooted at a and b; the result's parent
// pointer is left nil for the caller to fix.
func merge(a, b *lnode) *lnode {
	if a == nil {
		if b != nil {
			b.parent = nil
		}
		return b
	}
	if b == nil {
		a.parent = nil
		return a
	}
	if b.ev.Less(a.ev) {
		a, b = b, a
	}
	r := merge(a.right, b)
	a.right = r
	r.parent = a
	if npl(a.left) < npl(a.right) {
		a.left, a.right = a.right, a.left
	}
	a.npl = npl(a.right) + 1
	a.parent = nil
	return a
}

// Push implements Queue.
func (q *Leftist) Push(ev Event) {
	if old, ok := q.nodes[ev.Left]; ok {
		q.deleteNode(old)
	}
	n := &lnode{ev: ev}
	q.nodes[ev.Left] = n
	q.root = merge(q.root, n)
	q.n++
}

// RemoveByLeft implements Queue.
func (q *Leftist) RemoveByLeft(left uint64) bool {
	n, ok := q.nodes[left]
	if !ok {
		return false
	}
	q.deleteNode(n)
	return true
}

// Peek implements Queue.
func (q *Leftist) Peek() (Event, bool) {
	if q.root == nil {
		return Event{}, false
	}
	return q.root.ev, true
}

// Pop implements Queue.
func (q *Leftist) Pop() (Event, bool) {
	if q.root == nil {
		return Event{}, false
	}
	top := q.root
	q.deleteNode(top)
	return top.ev, true
}

// deleteNode removes n from the tree and the index.
func (q *Leftist) deleteNode(n *lnode) {
	delete(q.nodes, n.ev.Left)
	q.n--
	sub := merge(n.left, n.right)
	p := n.parent
	if p == nil {
		q.root = sub
		if sub != nil {
			sub.parent = nil
		}
		return
	}
	if p.left == n {
		p.left = sub
	} else {
		p.right = sub
	}
	if sub != nil {
		sub.parent = p
	}
	// Repair npl and the leftist property upward; stop once an
	// ancestor's npl is unchanged (its further ancestors are unaffected).
	for cur := p; cur != nil; cur = cur.parent {
		if npl(cur.left) < npl(cur.right) {
			cur.left, cur.right = cur.right, cur.left
		}
		want := npl(cur.right) + 1
		if cur.npl == want {
			break
		}
		cur.npl = want
	}
}

// checkInvariants validates heap order, parent pointers, npl values and
// the leftist property; used by tests.
func (q *Leftist) checkInvariants() error {
	count := 0
	var walk func(n *lnode) error
	walk = func(n *lnode) error {
		if n == nil {
			return nil
		}
		count++
		if n.left != nil {
			if n.left.parent != n {
				return errInvariant("parent link (left)")
			}
			if n.left.ev.Less(n.ev) {
				return errInvariant("heap order (left)")
			}
			if err := walk(n.left); err != nil {
				return err
			}
		}
		if n.right != nil {
			if n.right.parent != n {
				return errInvariant("parent link (right)")
			}
			if n.right.ev.Less(n.ev) {
				return errInvariant("heap order (right)")
			}
			if err := walk(n.right); err != nil {
				return err
			}
		}
		if npl(n.left) < npl(n.right) {
			return errInvariant("leftist property")
		}
		if n.npl != npl(n.right)+1 {
			return errInvariant("npl value")
		}
		return nil
	}
	if err := walk(q.root); err != nil {
		return err
	}
	if count != q.n || count != len(q.nodes) {
		return errInvariant("size bookkeeping")
	}
	return nil
}

type errInvariant string

func (e errInvariant) Error() string { return "eventq: leftist invariant broken: " + string(e) }
