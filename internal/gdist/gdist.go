// Package gdist implements the paper's generalized distances (Definition
// 6): mappings from trajectories to continuous functions from time to R.
// A g-distance is the single arithmetic primitive of the FO(f) query
// language; everything the sweep orders and intersects is a g-distance
// curve.
//
// The package provides the paper's worked examples — squared Euclidean
// distance to a query trajectory (Example 8, quadratic and therefore a
// "polynomial" g-distance), and interception/fastest-arrival time
// (Examples 7 and 9) — plus axis distances and speed. Non-polynomial
// distances are admitted through a bounded-error piecewise-quadratic fit
// (see DESIGN.md, substitution 2).
package gdist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/piecewise"
	"repro/internal/poly"
	"repro/internal/trajectory"
)

// GDistance maps a trajectory to its curve over a bounded or unbounded
// window [from, to]. Implementations must produce continuous
// piecewise-polynomial curves; the window allows implementations backed by
// numeric fits to bound their work.
type GDistance interface {
	// Name identifies the distance in diagnostics and experiment tables.
	Name() string
	// Curve returns f(tr) restricted to [from, to] intersected with the
	// trajectory's own domain. to may be +Inf for distances whose curve
	// construction is closed-form.
	Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error)
}

// ErrWindow is returned when the requested window does not intersect the
// trajectory's domain.
var ErrWindow = errors.New("gdist: window outside trajectory domain")

// window clips [from,to] to the trajectory domain.
func window(tr trajectory.Trajectory, from, to float64) (float64, float64, error) {
	if !tr.IsDefined() {
		return 0, 0, errors.New("gdist: undefined trajectory")
	}
	lo := math.Max(from, tr.Start())
	hi := math.Min(to, tr.End())
	if !(lo < hi) {
		return 0, 0, fmt.Errorf("%w: [%g,%g] vs [%g,%g]", ErrWindow, from, to, tr.Start(), tr.End())
	}
	return lo, hi, nil
}

// relativeSq builds |tr(t) - q(t)|^2 as a piecewise quadratic on the
// overlap of domains clipped to [from, to].
func relativeSq(tr, q trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	if tr.Dim() != q.Dim() {
		return piecewise.Func{}, fmt.Errorf("gdist: dimension %d vs query %d", tr.Dim(), q.Dim())
	}
	lo, hi, err := window(tr, from, to)
	if err != nil {
		return piecewise.Func{}, err
	}
	lo2, hi2, err := window(q, lo, hi)
	if err != nil {
		return piecewise.Func{}, err
	}
	lo, hi = lo2, hi2

	sum := piecewise.Constant(0, lo, hi)
	for i := 0; i < tr.Dim(); i++ {
		ci, err := tr.Coordinate(i)
		if err != nil {
			return piecewise.Func{}, err
		}
		qi, err := q.Coordinate(i)
		if err != nil {
			return piecewise.Func{}, err
		}
		di, err := ci.Sub(qi)
		if err != nil {
			return piecewise.Func{}, err
		}
		sq, err := di.Mul(di)
		if err != nil {
			return piecewise.Func{}, err
		}
		sum, err = sum.Add(sq)
		if err != nil {
			return piecewise.Func{}, err
		}
	}
	return sum, nil
}

// EuclideanSq is Example 8's g-distance: d_o(t) = len(x_o - x_gamma)^2,
// the squared Euclidean distance to a query trajectory. It is piecewise
// quadratic, hence a polynomial g-distance.
type EuclideanSq struct {
	Query trajectory.Trajectory
}

// Name implements GDistance.
func (e EuclideanSq) Name() string { return "euclidean-sq" }

// Curve implements GDistance.
func (e EuclideanSq) Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	return relativeSq(tr, e.Query, from, to)
}

// PointSq is squared distance to a fixed point: the special case of
// EuclideanSq with a stationary query object.
type PointSq struct {
	Point geom.Vec
}

// Name implements GDistance.
func (p PointSq) Name() string { return "point-sq" }

// Curve implements GDistance.
func (p PointSq) Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	q := trajectory.Stationary(math.Inf(-1), p.Point)
	return relativeSq(tr, q, from, to)
}

// AxisSq is the squared distance along one coordinate axis to the query
// trajectory: (x_o.i - x_gamma.i)^2. Useful for corridor/altitude-style
// queries ("within 500ft vertically").
type AxisSq struct {
	Query trajectory.Trajectory
	Axis  int
}

// Name implements GDistance.
func (a AxisSq) Name() string { return fmt.Sprintf("axis%d-sq", a.Axis) }

// Curve implements GDistance.
func (a AxisSq) Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	if a.Axis < 0 || a.Axis >= tr.Dim() {
		return piecewise.Func{}, fmt.Errorf("gdist: axis %d out of range (dim %d)", a.Axis, tr.Dim())
	}
	lo, hi, err := window(tr, from, to)
	if err != nil {
		return piecewise.Func{}, err
	}
	lo, hi, err = window(a.Query, lo, hi)
	if err != nil {
		return piecewise.Func{}, err
	}
	_ = lo
	_ = hi
	ci, err := tr.Coordinate(a.Axis)
	if err != nil {
		return piecewise.Func{}, err
	}
	qi, err := a.Query.Coordinate(a.Axis)
	if err != nil {
		return piecewise.Func{}, err
	}
	di, err := ci.Sub(qi)
	if err != nil {
		return piecewise.Func{}, err
	}
	sq, err := di.Mul(di)
	if err != nil {
		return piecewise.Func{}, err
	}
	return sq.Restrict(math.Max(from, math.Inf(-1)), to)
}

// Coordinate exposes one coordinate of the trajectory itself as a
// g-distance ("objects ordered by altitude"). Piecewise linear.
type Coordinate struct {
	Axis int
}

// Name implements GDistance.
func (c Coordinate) Name() string { return fmt.Sprintf("coord%d", c.Axis) }

// Curve implements GDistance.
func (c Coordinate) Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	lo, hi, err := window(tr, from, to)
	if err != nil {
		return piecewise.Func{}, err
	}
	f, err := tr.Coordinate(c.Axis)
	if err != nil {
		return piecewise.Func{}, err
	}
	return f.Restrict(lo, hi)
}

// Const maps every trajectory to the same constant curve. It models the
// real-number constants of FO(f) atoms (e.g. the 50 km in "within 50 km")
// as stationary curves in the sweep order.
type Const struct {
	C float64
}

// Name implements GDistance.
func (c Const) Name() string { return fmt.Sprintf("const(%g)", c.C) }

// Curve implements GDistance.
func (c Const) Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	lo, hi, err := window(tr, from, to)
	if err != nil {
		return piecewise.Func{}, err
	}
	return piecewise.Constant(c.C, lo, hi), nil
}

// Weighted scales an inner g-distance by a per-call constant; composing
// distances stays within polynomial g-distances.
type Weighted struct {
	Inner  GDistance
	Weight float64
}

// Name implements GDistance.
func (w Weighted) Name() string { return fmt.Sprintf("%g*%s", w.Weight, w.Inner.Name()) }

// Curve implements GDistance.
func (w Weighted) Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	f, err := w.Inner.Curve(tr, from, to)
	if err != nil {
		return piecewise.Func{}, err
	}
	return f.Scale(w.Weight), nil
}

// Sum adds two g-distances pointwise.
type Sum struct {
	A, B GDistance
}

// Name implements GDistance.
func (s Sum) Name() string { return fmt.Sprintf("%s+%s", s.A.Name(), s.B.Name()) }

// Curve implements GDistance.
func (s Sum) Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	fa, err := s.A.Curve(tr, from, to)
	if err != nil {
		return piecewise.Func{}, err
	}
	fb, err := s.B.Curve(tr, from, to)
	if err != nil {
		return piecewise.Func{}, err
	}
	return fa.Add(fb)
}

// SpeedSq maps each object to its squared speed |vel(t)|^2 — "order the
// fleet by speed". The curve is piecewise constant and jumps at turns:
// a g-distance under the paper's relaxed definition (finitely many
// continuous pieces, Section 5's first closing remark). The sweep
// re-certifies the object's position at each jump.
type SpeedSq struct{}

// Name implements GDistance.
func (SpeedSq) Name() string { return "speed-sq" }

// Curve implements GDistance.
func (SpeedSq) Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	lo, hi, err := window(tr, from, to)
	if err != nil {
		return piecewise.Func{}, err
	}
	var pieces []piecewise.Piece
	for _, pc := range tr.Pieces() {
		a := math.Max(pc.Start, lo)
		b := math.Min(pc.End, hi)
		if !(a < b) {
			continue
		}
		pieces = append(pieces, piecewise.Piece{Start: a, End: b, P: poly.Constant(pc.A.Len2())})
	}
	return piecewise.New(pieces...)
}
