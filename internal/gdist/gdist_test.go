package gdist

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/trajectory"
)

func TestEuclideanSqExample8(t *testing.T) {
	// Query object moves along x-axis at speed 1; object o parallel at
	// distance 3 in y: distance^2 constant 9.
	q := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	o := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 3))
	d := EuclideanSq{Query: q}
	f, err := d.Curve(o, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 5, 100} {
		if got := f.Eval(tt); math.Abs(got-9) > 1e-9 {
			t.Errorf("f(%g) = %g, want 9", tt, got)
		}
	}
	if d.Name() != "euclidean-sq" {
		t.Error("Name")
	}
}

func TestEuclideanSqQuadratic(t *testing.T) {
	// Object approaching then receding: closest approach computable by
	// hand. q stationary at origin; o moves (t-5, 0) => d^2 = (t-5)^2.
	q := trajectory.Stationary(0, geom.Of(0, 0))
	o := trajectory.Linear(0, geom.Of(1, 0), geom.Of(-5, 0))
	f, err := EuclideanSq{Query: q}.Curve(o, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 2.5, 5, 7, 20} {
		want := (tt - 5) * (tt - 5)
		if got := f.Eval(tt); math.Abs(got-want) > 1e-9 {
			t.Errorf("f(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestEuclideanSqPiecewise(t *testing.T) {
	// Object with a turn: curve must align with trajectory pieces.
	q := trajectory.Stationary(0, geom.Of(0, 0))
	o := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 1))
	o2, err := o.ChDir(4, geom.Of(-1, 0))
	if err != nil {
		t.Fatal(err)
	}
	f, err := EuclideanSq{Query: q}.Curve(o2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPieces() < 2 {
		t.Errorf("NumPieces = %d, want >= 2", f.NumPieces())
	}
	for _, tt := range []float64{0, 2, 4, 6, 8} {
		pos := o2.MustAt(tt)
		want := pos.Len2()
		if got := f.Eval(tt); math.Abs(got-want) > 1e-9 {
			t.Errorf("f(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestWindowClipping(t *testing.T) {
	q := trajectory.Stationary(0, geom.Of(0))
	o := trajectory.Linear(5, geom.Of(1), geom.Of(0))
	f, err := EuclideanSq{Query: q}.Curve(o, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.Domain()
	if lo != 5 || hi != 100 {
		t.Errorf("Domain = [%g,%g], want [5,100]", lo, hi)
	}
	term, _ := o.Terminate(50)
	f, err = EuclideanSq{Query: q}.Curve(term, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, hi := f.Domain(); hi != 50 {
		t.Errorf("hi = %g, want 50 (terminated)", hi)
	}
	if _, err := (EuclideanSq{Query: q}).Curve(term, 60, 100); err == nil {
		t.Error("window after termination should fail")
	}
}

func TestDimensionMismatch(t *testing.T) {
	q := trajectory.Stationary(0, geom.Of(0, 0))
	o := trajectory.Linear(0, geom.Of(1), geom.Of(0))
	if _, err := (EuclideanSq{Query: q}.Curve(o, 0, 10)); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestPointSq(t *testing.T) {
	o := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 4))
	f, err := PointSq{Point: geom.Of(0, 0)}.Curve(o, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Eval(3); math.Abs(got-25) > 1e-9 { // (3,4) -> 25
		t.Errorf("f(3) = %g, want 25", got)
	}
	// A non-origin point: the stationary query trajectory is anchored at
	// -Inf, which used to zero its coordinates (0*Inf = NaN intercepts)
	// and silently turn every PointSq into distance-to-origin.
	g, err := PointSq{Point: geom.Of(3, 8)}.Curve(o, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Eval(3); math.Abs(got-16) > 1e-9 { // (3,4) vs (3,8) -> 16
		t.Errorf("offset f(3) = %g, want 16", got)
	}
}

func TestAxisSqAndCoordinate(t *testing.T) {
	q := trajectory.Stationary(0, geom.Of(0, 100))
	o := trajectory.Linear(0, geom.Of(1, 2), geom.Of(0, 0))
	f, err := AxisSq{Query: q, Axis: 1}.Curve(o, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// y_o = 2t, y_q = 100: (2t-100)^2 at t=10 -> 6400.
	if got := f.Eval(10); math.Abs(got-6400) > 1e-6 {
		t.Errorf("axis f(10) = %g, want 6400", got)
	}
	if _, err := (AxisSq{Query: q, Axis: 7}).Curve(o, 0, 10); err == nil {
		t.Error("axis out of range should fail")
	}
	c, err := Coordinate{Axis: 1}.Curve(o, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval(3); math.Abs(got-6) > 1e-9 {
		t.Errorf("coord f(3) = %g, want 6", got)
	}
}

func TestConstAndWeightedAndSum(t *testing.T) {
	o := trajectory.Linear(0, geom.Of(1), geom.Of(0))
	k, err := Const{C: 2500}.Curve(o, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Eval(7); got != 2500 {
		t.Errorf("const = %g", got)
	}
	q := trajectory.Stationary(0, geom.Of(0))
	w := Weighted{Inner: EuclideanSq{Query: q}, Weight: 2}
	f, err := w.Curve(o, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Eval(3); math.Abs(got-18) > 1e-9 {
		t.Errorf("weighted = %g, want 18", got)
	}
	s := Sum{A: EuclideanSq{Query: q}, B: Const{C: 1}}
	g, err := s.Curve(o, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Eval(3); math.Abs(got-10) > 1e-9 {
		t.Errorf("sum = %g, want 10", got)
	}
	if w.Name() == "" || s.Name() == "" || (Const{C: 1}).Name() == "" {
		t.Error("names")
	}
}

func TestInterceptTimeHeadOn(t *testing.T) {
	// Target moves right at speed 1 from origin; pursuer at (10, 0) with
	// speed 3 at t=0. Head-on: meet when 10 - u*1*... pursuer closes at
	// 3 toward target approaching: gap 10 closes at combined 4 => 2.5.
	target := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	td, ok := InterceptTime(geom.Of(10, 0), 0, 3, target)
	if !ok || math.Abs(td-2.5) > 1e-9 {
		t.Errorf("td = %g ok=%v, want 2.5", td, ok)
	}
}

func TestInterceptTimeChase(t *testing.T) {
	// Pursuer behind target, both along x: target at speed 1 from x=10,
	// pursuer at origin speed 2 => gap 10 closes at rate 1 => 10.
	target := trajectory.Linear(0, geom.Of(1, 0), geom.Of(10, 0))
	td, ok := InterceptTime(geom.Of(0, 0), 0, 2, target)
	if !ok || math.Abs(td-10) > 1e-9 {
		t.Errorf("td = %g ok=%v, want 10", td, ok)
	}
}

func TestInterceptTimePerpendicular(t *testing.T) {
	// Figure 1 geometry: target on horizontal line y=0 moving at speed
	// v; pursuer at (0, d) with speed v_o. Verify against the law of
	// cosines solution.
	target := trajectory.Linear(0, geom.Of(2, 0), geom.Of(0, 0))
	p := geom.Of(0, 3)
	vo := 4.0
	td, ok := InterceptTime(p, 0, vo, target)
	if !ok {
		t.Fatal("no interception")
	}
	// Meeting point: (2*td, 0); |(2 td, -3)| = 4 td
	// => 4 td^2 + 9 = 16 td^2 => td = sqrt(9/12).
	want := math.Sqrt(9.0 / 12.0)
	if math.Abs(td-want) > 1e-9 {
		t.Errorf("td = %g, want %g", td, want)
	}
}

func TestInterceptTimeEscape(t *testing.T) {
	// Target faster and fleeing: no interception.
	target := trajectory.Linear(0, geom.Of(5, 0), geom.Of(10, 0))
	if _, ok := InterceptTime(geom.Of(0, 0), 0, 1, target); ok {
		t.Error("escaping target intercepted")
	}
}

func TestInterceptTimeTerminatedTarget(t *testing.T) {
	target := trajectory.Linear(0, geom.Of(1, 0), geom.Of(100, 0))
	term, _ := target.Terminate(3)
	// Pursuer too slow to reach before termination.
	if _, ok := InterceptTime(geom.Of(0, 0), 0, 1, term); ok {
		t.Error("intercepted after target terminated")
	}
	// Fast pursuer catches in time: gap 100 closes at 99... speed 100
	// vs 1: meet just after t=1.
	td, ok := InterceptTime(geom.Of(0, 0), 0, 100, term)
	if !ok || td > 3 {
		t.Errorf("td = %g ok=%v", td, ok)
	}
}

func TestInterceptTimeAlreadyThere(t *testing.T) {
	target := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	td, ok := InterceptTime(geom.Of(0, 0), 0, 1, target)
	if !ok || td > 1e-9 {
		t.Errorf("td = %g ok=%v, want ~0", td, ok)
	}
}

func TestInterceptCurveMatchesExact(t *testing.T) {
	target := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	o := trajectory.Linear(0, geom.Of(0, -1), geom.Of(20, 30))
	ic := Intercept{Target: target, MaxErr: 1e-8}
	f, err := ic.Curve(o, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 1, 3.7, 5, 9.9} {
		want, err := ic.Eval(o, tt)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Eval(tt); math.Abs(got-want) > 1e-6 {
			t.Errorf("curve(%g) = %g, exact %g", tt, got, want)
		}
	}
	if ic.Name() == "" {
		t.Error("Name")
	}
}

func TestInterceptCurveSplitsAtTurns(t *testing.T) {
	target := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	o := trajectory.Linear(0, geom.Of(0, -2), geom.Of(20, 30))
	o2, _ := o.ChDir(5, geom.Of(0, -1)) // speed halves at t=5
	ic := Intercept{Target: target, MaxErr: 1e-6}
	f, err := ic.Curve(o2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Exact agreement on both sides of the kink.
	for _, tt := range []float64{4.9, 5.1} {
		want, _ := ic.Eval(o2, tt)
		if got := f.Eval(tt); math.Abs(got-want) > 1e-5 {
			t.Errorf("curve(%g) = %g, exact %g", tt, got, want)
		}
	}
	if _, err := ic.Curve(o2, 0, math.Inf(1)); err == nil {
		t.Error("infinite window should fail")
	}
}

func TestInterceptCap(t *testing.T) {
	// Unreachable target: value capped.
	target := trajectory.Linear(0, geom.Of(9, 0), geom.Of(100, 0))
	o := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0)) // slower
	ic := Intercept{Target: target, Cap: 500}
	v, err := ic.Eval(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 500 {
		t.Errorf("capped value = %g, want 500", v)
	}
}

func TestSpeedSqCurve(t *testing.T) {
	tr := trajectory.Linear(0, geom.Of(3, 4), geom.Of(0, 0)) // speed 5
	tr2, err := tr.ChDir(10, geom.Of(1, 0))                  // speed 1
	if err != nil {
		t.Fatal(err)
	}
	f, err := SpeedSq{}.Curve(tr2, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Eval(5); math.Abs(got-25) > 1e-12 {
		t.Errorf("speed^2 before turn = %g, want 25", got)
	}
	if got := f.Eval(15); math.Abs(got-1) > 1e-12 {
		t.Errorf("speed^2 after turn = %g, want 1", got)
	}
	// The jump is a reported discontinuity.
	if ds := f.Discontinuities(0, 20); len(ds) != 1 || math.Abs(ds[0]-10) > 1e-12 {
		t.Errorf("discontinuities = %v, want [10]", ds)
	}
	if (SpeedSq{}).Name() == "" {
		t.Error("Name")
	}
	// Window fully outside lifetime.
	term, _ := tr2.Terminate(20)
	if _, err := (SpeedSq{}).Curve(term, 30, 40); err == nil {
		t.Error("window after termination accepted")
	}
}

func TestGDistanceErrorPaths(t *testing.T) {
	undef := trajectory.Trajectory{}
	if _, err := (SpeedSq{}).Curve(undef, 0, 1); err == nil {
		t.Error("undefined trajectory accepted by SpeedSq")
	}
	q := trajectory.Stationary(0, geom.Of(0))
	if _, err := (EuclideanSq{Query: q}).Curve(undef, 0, 1); err == nil {
		t.Error("undefined trajectory accepted by EuclideanSq")
	}
	o := trajectory.Linear(0, geom.Of(1), geom.Of(0))
	w := Weighted{Inner: EuclideanSq{Query: trajectory.Stationary(50, geom.Of(0))}, Weight: 2}
	if _, err := w.Curve(o, 0, 10); err == nil {
		t.Error("weighted over empty overlap accepted")
	}
	s := Sum{A: Const{C: 1}, B: EuclideanSq{Query: trajectory.Stationary(50, geom.Of(0))}}
	if _, err := s.Curve(o, 0, 10); err == nil {
		t.Error("sum over empty overlap accepted")
	}
	if _, err := (Coordinate{Axis: 0}).Curve(undef, 0, 1); err == nil {
		t.Error("coordinate of undefined trajectory accepted")
	}
	if _, err := (Const{C: 1}).Curve(undef, 0, 1); err == nil {
		t.Error("const over undefined trajectory accepted")
	}
}
