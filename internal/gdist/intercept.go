package gdist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/piecewise"
	"repro/internal/trajectory"
)

// This file implements the paper's Example 7/9 "fastest arrival"
// generalized distance: for a pursuer at position p with speed v and a
// target moving along a trajectory, the interception time t_Delta is the
// least time after which the pursuer — free to pick any fixed direction —
// meets the target, both maintaining constant speed.
//
// Geometry (Figure 1): the meeting point A at time t + t_Delta satisfies
// |target(t+t_Delta) - p| = v * t_Delta. Per linear piece of the target
// this is a quadratic in the meeting time, solved in closed form. The
// resulting function of t contains a square root in general, so as a
// g-distance it is admitted via a bounded-error piecewise-quadratic fit
// (the paper's own approximation escape hatch, Section 5 footnote 1).

// InterceptTime returns the minimal t_Delta >= 0 at which a pursuer
// starting at p at time t with constant speed v can meet the target, or
// ok=false when no interception exists within the target's lifetime
// (possible when the target is faster and fleeing, or terminates first).
func InterceptTime(p geom.Vec, t, v float64, target trajectory.Trajectory) (float64, bool) {
	if !target.IsDefined() || v < 0 {
		return 0, false
	}
	if target.End() < t {
		return 0, false
	}
	for _, pc := range target.Pieces() {
		if pc.End < t {
			continue
		}
		// Meeting time u in [max(pc.Start, t), pc.End]:
		// |A(u-s) + B - p|^2 = v^2 (u-t)^2.
		s := pc.Start
		a2 := pc.A.Len2()
		c := pc.B.Sub(p).AddScaled(-s, pc.A) // C = B - A*s - p
		qa := a2 - v*v
		qb := 2 * (pc.A.Dot(c) + v*v*t)
		qc := c.Len2() - v*v*t*t
		lo := math.Max(s, t)
		hi := pc.End
		if u, ok := smallestRootIn(qa, qb, qc, lo, hi); ok {
			return u - t, true
		}
	}
	return 0, false
}

// smallestRootIn returns the least root of qa*u^2 + qb*u + qc in [lo, hi].
func smallestRootIn(qa, qb, qc, lo, hi float64) (float64, bool) {
	const tol = 1e-9
	candidates := func(roots ...float64) (float64, bool) {
		best, found := 0.0, false
		for _, r := range roots {
			if r >= lo-tol && r <= hi+tol {
				r = math.Min(math.Max(r, lo), hi)
				if !found || r < best {
					best, found = r, true
				}
			}
		}
		return best, found
	}
	if math.Abs(qa) < 1e-15 {
		if math.Abs(qb) < 1e-15 {
			if math.Abs(qc) < 1e-12 {
				// Identically satisfied: pursuer already on target.
				return math.Max(lo, 0), true
			}
			return 0, false
		}
		return candidates(-qc / qb)
	}
	disc := qb*qb - 4*qa*qc
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	var q float64
	if qb >= 0 {
		q = -0.5 * (qb + sq)
	} else {
		q = -0.5 * (qb - sq)
	}
	r1, r2 := q/qa, 0.0
	if q != 0 { //modlint:allow floatcmp -- exact zero-divisor guard on the stable quadratic formula
		r2 = qc / q
	} else {
		r2 = r1
	}
	return candidates(r1, r2)
}

// Intercept is the fastest-arrival g-distance. For each object o the curve
// value at time t is the interception time from o's current position at
// its current speed toward Target; unreachable instants are capped at Cap
// so the curve stays finite and continuous fits remain possible.
type Intercept struct {
	Target trajectory.Trajectory
	// Cap bounds the reported interception time (default 1e6 when 0).
	Cap float64
	// MaxErr is the fit tolerance (default 1e-6 when 0).
	MaxErr float64
}

// Name implements GDistance.
func (ic Intercept) Name() string { return "intercept-time" }

// cap returns the effective cap.
func (ic Intercept) capValue() float64 {
	if ic.Cap > 0 {
		return ic.Cap
	}
	return 1e6
}

// Eval computes the exact (unfitted) g-distance value for object
// trajectory tr at time t.
func (ic Intercept) Eval(tr trajectory.Trajectory, t float64) (float64, error) {
	pos, err := tr.At(t)
	if err != nil {
		return 0, err
	}
	vel, err := tr.VelocityAt(t)
	if err != nil {
		return 0, err
	}
	td, ok := InterceptTime(pos, t, vel.Len(), ic.Target)
	if !ok || td > ic.capValue() {
		return ic.capValue(), nil
	}
	return td, nil
}

// Curve implements GDistance by fitting the exact interception time with
// piecewise quadratics between the trajectory's breakpoints (the function
// can kink or jump at speed changes, so each inter-break stretch is fitted
// independently).
func (ic Intercept) Curve(tr trajectory.Trajectory, from, to float64) (piecewise.Func, error) {
	if math.IsInf(to, 1) {
		return piecewise.Func{}, errors.New("gdist: Intercept.Curve needs a finite window")
	}
	lo, hi, err := window(tr, from, to)
	if err != nil {
		return piecewise.Func{}, err
	}
	maxErr := ic.MaxErr
	if maxErr == 0 { //modlint:allow floatcmp -- unset-config sentinel: zero means "use the default tolerance"
		maxErr = 1e-6
	}
	// Split at the breakpoints of both the object and the target.
	cuts := []float64{lo}
	for _, b := range append(tr.Breaks(), ic.Target.Breaks()...) {
		if b > lo && b < hi {
			cuts = append(cuts, b)
		}
	}
	cuts = append(cuts, hi)
	sortFloats(cuts)
	var pieces []piecewise.Piece
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if !(a < b) {
			continue
		}
		fn := func(t float64) float64 {
			v, err := ic.Eval(tr, t)
			if err != nil {
				return ic.capValue()
			}
			return v
		}
		seg, err := piecewise.Fit(fn, a, b, maxErr)
		if err != nil {
			return piecewise.Func{}, fmt.Errorf("gdist: intercept fit on [%g,%g]: %w", a, b, err)
		}
		pieces = append(pieces, seg.Pieces()...)
	}
	return piecewise.New(pieces...)
}

// sortFloats is a tiny insertion sort: cut lists are short and this avoids
// importing sort for one call site with duplicate-tolerant semantics.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
