// Package geom provides the small vector-geometry kernel used by the
// moving-object database: n-dimensional real vectors with the handful of
// operations the paper's data model needs (addition, scaling, dot products,
// lengths, and unit vectors).
//
// Vectors are ordinary slices so that callers can build them with composite
// literals; all operations allocate fresh results and never alias their
// inputs unless documented otherwise.
package geom

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Vec is a point or direction in R^n. The dimension is len(v).
type Vec []float64

// ErrDimMismatch is returned (or wrapped) when two vectors of different
// dimensions are combined.
var ErrDimMismatch = errors.New("geom: dimension mismatch")

// New returns a zero vector of dimension n.
func New(n int) Vec { return make(Vec, n) }

// Of builds a vector from its components.
func Of(xs ...float64) Vec {
	v := make(Vec, len(xs))
	copy(v, xs)
	return v
}

// Dim reports the dimension of v.
func (v Vec) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// checkDim panics when u and v have different dimensions. Dimension
// mismatches are programming errors, not data errors: trajectories within
// one MOD always share a dimension, enforced at insertion time.
func checkDim(u, v Vec) {
	if len(u) != len(v) {
		panic(fmt.Sprintf("geom: dimension mismatch: %d vs %d", len(u), len(v)))
	}
}

// Add returns u + v.
func (u Vec) Add(v Vec) Vec {
	checkDim(u, v)
	w := make(Vec, len(u))
	for i := range u {
		w[i] = u[i] + v[i]
	}
	return w
}

// Sub returns u - v.
func (u Vec) Sub(v Vec) Vec {
	checkDim(u, v)
	w := make(Vec, len(u))
	for i := range u {
		w[i] = u[i] - v[i]
	}
	return w
}

// Scale returns c*u.
func (u Vec) Scale(c float64) Vec {
	w := make(Vec, len(u))
	for i := range u {
		w[i] = c * u[i]
	}
	return w
}

// AddScaled returns u + c*v, the fused form used on the hot path of
// trajectory evaluation (x = A(t-t0) + B).
func (u Vec) AddScaled(c float64, v Vec) Vec {
	checkDim(u, v)
	w := make(Vec, len(u))
	for i := range u {
		w[i] = u[i] + c*v[i]
	}
	return w
}

// Dot returns the inner product of u and v.
func (u Vec) Dot(v Vec) float64 {
	checkDim(u, v)
	s := 0.0
	for i := range u {
		s += u[i] * v[i]
	}
	return s
}

// Len returns the Euclidean length of v (the paper's "len" function on
// vectors).
func (v Vec) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared Euclidean length. Squared lengths keep
// g-distances polynomial (Example 8 of the paper), so most internal code
// prefers Len2 over Len.
func (v Vec) Len2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between u and v.
func (u Vec) Dist(v Vec) float64 { return u.Sub(v).Len() }

// Dist2 returns the squared Euclidean distance between u and v.
func (u Vec) Dist2(v Vec) float64 {
	checkDim(u, v)
	s := 0.0
	for i := range u {
		d := u[i] - v[i]
		s += d * d
	}
	return s
}

// Unit returns v scaled to unit length (the paper's "unit" function).
// The zero vector has no direction; Unit reports an error for it.
func (v Vec) Unit() (Vec, error) {
	l := v.Len()
	if l == 0 { //modlint:allow floatcmp -- exact zero-divisor guard: any nonzero length is divisible
		return nil, errors.New("geom: unit of zero vector")
	}
	return v.Scale(1 / l), nil
}

// IsZero reports whether every component of v is exactly zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether u and v are component-wise identical.
func (u Vec) Equal(v Vec) bool {
	if len(u) != len(v) {
		return false
	}
	for i := range u {
		if u[i] != v[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether u and v agree component-wise within tol.
func (u Vec) ApproxEqual(v Vec, tol float64) bool {
	if len(u) != len(v) {
		return false
	}
	for i := range u {
		if math.Abs(u[i]-v[i]) > tol {
			return false
		}
	}
	return true
}

// String renders v as "(x1, x2, ..., xn)" matching the paper's notation.
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", x)
	}
	b.WriteByte(')')
	return b.String()
}

// Lerp returns the point (1-s)*u + s*v.
func (u Vec) Lerp(v Vec, s float64) Vec {
	checkDim(u, v)
	w := make(Vec, len(u))
	for i := range u {
		w[i] = u[i] + s*(v[i]-u[i])
	}
	return w
}
