package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestOfAndClone(t *testing.T) {
	v := Of(1, 2, 3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone aliases input: v[0] = %g", v[0])
	}
}

func TestAddSubScale(t *testing.T) {
	u := Of(1, 2, 3)
	v := Of(4, 5, 6)
	if got := u.Add(v); !got.Equal(Of(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(u); !got.Equal(Of(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := u.Scale(2); !got.Equal(Of(2, 4, 6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := u.AddScaled(2, v); !got.Equal(Of(9, 12, 15)) {
		t.Errorf("AddScaled = %v", got)
	}
}

func TestDotLen(t *testing.T) {
	u := Of(3, 4)
	if got := u.Len(); !almostEq(got, 5) {
		t.Errorf("Len = %g, want 5", got)
	}
	if got := u.Len2(); !almostEq(got, 25) {
		t.Errorf("Len2 = %g, want 25", got)
	}
	if got := u.Dot(Of(1, 1)); !almostEq(got, 7) {
		t.Errorf("Dot = %g, want 7", got)
	}
}

func TestDist(t *testing.T) {
	u, v := Of(0, 0), Of(3, 4)
	if got := u.Dist(v); !almostEq(got, 5) {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := u.Dist2(v); !almostEq(got, 25) {
		t.Errorf("Dist2 = %g, want 25", got)
	}
}

func TestUnit(t *testing.T) {
	u, err := Of(0, 3).Unit()
	if err != nil {
		t.Fatalf("Unit: %v", err)
	}
	if !u.ApproxEqual(Of(0, 1), 1e-12) {
		t.Errorf("Unit = %v", u)
	}
	if _, err := Of(0, 0).Unit(); err == nil {
		t.Error("Unit of zero vector should fail")
	}
}

func TestIsZeroEqual(t *testing.T) {
	if !New(3).IsZero() {
		t.Error("New(3) not zero")
	}
	if Of(0, 1).IsZero() {
		t.Error("(0,1) reported zero")
	}
	if Of(1, 2).Equal(Of(1, 2, 3)) {
		t.Error("vectors of different dims reported equal")
	}
	if !Of(1, 2).ApproxEqual(Of(1+1e-13, 2), 1e-12) {
		t.Error("ApproxEqual too strict")
	}
}

func TestString(t *testing.T) {
	if got := Of(2, -1, 0).String(); got != "(2, -1, 0)" {
		t.Errorf("String = %q", got)
	}
}

func TestLerp(t *testing.T) {
	u, v := Of(0, 0), Of(10, 20)
	if got := u.Lerp(v, 0.5); !got.ApproxEqual(Of(5, 10), 1e-12) {
		t.Errorf("Lerp = %v", got)
	}
	if got := u.Lerp(v, 0); !got.Equal(u) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := u.Lerp(v, 1); !got.Equal(v) {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	Of(1, 2).Add(Of(1, 2, 3))
}

// Property: |u+v|^2 + |u-v|^2 == 2|u|^2 + 2|v|^2 (parallelogram law).
func TestParallelogramLaw(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		// Clamp magnitudes so the law holds to relative precision.
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 1e6)
		}
		u := Of(clamp(a), clamp(b))
		v := Of(clamp(c), clamp(d))
		lhs := u.Add(v).Len2() + u.Sub(v).Len2()
		rhs := 2*u.Len2() + 2*v.Len2()
		scale := math.Max(1, math.Abs(rhs))
		return math.Abs(lhs-rhs) < 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |u.v| <= |u||v|.
func TestCauchySchwarz(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 1e6)
		}
		u := Of(clamp(a), clamp(b))
		v := Of(clamp(c), clamp(d))
		return math.Abs(u.Dot(v)) <= u.Len()*v.Len()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
