package lint

// atomicmix: a variable accessed both through sync/atomic operations
// and through plain loads/stores.
//
// The metrics layer and the shard engine publish counters and swap
// pointers with atomics; mixing in one plain access anywhere silently
// re-introduces the race the atomic was bought to prevent — the memory
// model gives a plain read of an atomically-written word no ordering at
// all. This check collects every struct field and package-level
// variable whose address is passed to a sync/atomic function
// (atomic.AddUint64(&s.n, 1) and friends), then flags every plain
// access to the same variable in the package. A deliberately
// non-atomic access (e.g. a read after all writers are joined) must say
// so with a //modlint:allow atomicmix annotation.
//
// The typed atomics (atomic.Uint64 et al.) need no checking — their
// API admits no plain access — and are the preferred fix.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// AtomicMix is the mixed atomic/plain access analyzer.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags variables accessed both via sync/atomic and via plain loads/stores",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) []Diagnostic {
	// Pass 1: variables (struct fields, package-level vars) whose
	// address feeds a sync/atomic call, and the exact AST nodes of those
	// atomic operands (excluded from pass 2).
	atomicVars := map[types.Object]token.Position{}
	atomicOperands := map[ast.Expr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicOpName(fn.Name()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			target := ast.Unparen(addr.X)
			if obj := trackableVar(pass, target); obj != nil {
				if _, seen := atomicVars[obj]; !seen {
					atomicVars[obj] = pass.Fset.Position(call.Pos())
				}
				atomicOperands[target] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}
	// Pass 2: plain accesses to the same variables.
	var out []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || atomicOperands[e] {
				return true
			}
			switch e.(type) {
			case *ast.SelectorExpr, *ast.Ident:
			default:
				return true
			}
			obj := trackableVar(pass, e)
			if obj == nil {
				return true
			}
			first, isAtomic := atomicVars[obj]
			if !isAtomic {
				return true
			}
			out = append(out, Diag(e.Pos(),
				"%s is accessed atomically at %s:%d but plainly here; plain loads/stores race with the atomic ops",
				types.ExprString(e), filepath.Base(first.Filename), first.Line))
			return false
		})
	}
	return out
}

// isAtomicOpName matches the sync/atomic function families that
// establish atomic access: Add*, Load*, Store*, Swap*, CompareAndSwap*,
// And*, Or*.
func isAtomicOpName(name string) bool {
	for _, p := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// trackableVar resolves e to a variable worth tracking across the
// package: a struct field or a package-level var. Function locals are
// excluded — their atomic/plain mixes are almost always separated by a
// happens-before edge (wg.Wait and the like) the analyzer cannot see.
func trackableVar(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		// Qualified package-level var (pkg.Var).
		if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.Info.Uses[e].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}
