package lint

import "testing"

func TestAtomicMixPositive(t *testing.T) {
	checkFixture(t, AtomicMix, `package fixture

import "sync/atomic"

type counters struct {
	hits uint64
	name string
}

var global uint64

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&global, 1)
}

func plainRead(c *counters) uint64 {
	return c.hits // want "accessed atomically"
}

func plainWrite(c *counters) {
	c.hits = 0 // want "accessed atomically"
}

func plainGlobal() uint64 {
	return global // want "accessed atomically"
}
`)
}

func TestAtomicMixNegative(t *testing.T) {
	checkFixture(t, AtomicMix, `package fixture

import "sync/atomic"

type counters struct {
	hits   atomic.Uint64 // typed atomic: no plain access possible
	misses uint64        // only ever plain: fine
	errs   uint64
}

func bump(c *counters) {
	c.hits.Add(1)
	c.misses++
	atomic.AddUint64(&c.errs, 1)
}

func atomicRead(c *counters) uint64 {
	return atomic.LoadUint64(&c.errs)
}

// localMix: locals are excluded — the atomic/plain split here is
// separated by a happens-before edge the analyzer cannot see.
func localMix() uint64 {
	var n uint64
	done := make(chan struct{})
	go func() {
		atomic.AddUint64(&n, 1)
		close(done)
	}()
	<-done
	return n
}
`)
}

func TestAtomicMixSuppressed(t *testing.T) {
	findings := lintFixture(t, AtomicMix, `package fixture

import "sync/atomic"

type counters struct{ hits uint64 }

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

// snapshot runs after Close has joined every writer.
func snapshot(c *counters) uint64 {
	return c.hits //modlint:allow atomicmix -- read after Close joins all writers
}
`)
	if len(findings) != 0 {
		t.Fatalf("suppressed fixture produced findings: %v", findings)
	}
}
