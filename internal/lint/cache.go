package lint

// On-disk result cache for the modlint driver. A package's cache key
// hashes everything its raw findings can depend on: a generation
// string (bumped when analyzer logic changes), the Go toolchain
// version (stdlib export data feeds the type-checker), the analyzer
// roster, the package's import path, the name and content hash of
// every source file, and — because findings consult the exported types
// of in-module imports — the keys of those dependencies, recursively.
// Equal key ⇒ byte-identical raw findings, so a hit skips both the
// type-check and the analysis for that package.
//
// Entries store RAW findings plus the package's suppression
// directives, with module-root-relative filenames. Suppression and the
// stale-directive audit are recomputed by the driver on every run —
// they are whole-run properties (a directive's staleness depends on
// which packages the invocation selected), so caching them would bake
// one invocation's view into another's.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
)

// cacheGeneration invalidates every existing cache entry. Bump it
// whenever analyzer or driver logic changes in a way that can alter
// findings without touching the analyzed sources.
const cacheGeneration = "modlint-v2"

// DefaultCacheDir returns the cache location used when the caller does
// not override it: the user cache dir when available, the system temp
// dir otherwise.
func DefaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "modlint")
	}
	return filepath.Join(os.TempDir(), "modlint-cache")
}

// cacheEntry is one package's persisted analysis result.
type cacheEntry struct {
	Key        string      `json:"key"`
	ImportPath string      `json:"import_path"`
	Findings   []Finding   `json:"findings,omitempty"`
	Directives []Directive `json:"directives,omitempty"`
}

// diskCache is a flat directory of <key>.json entries. Writes go
// through a temp file + rename so a crashed run can never leave a
// torn entry for a later run to trust.
type diskCache struct {
	dir string
}

func openCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskCache{dir: dir}, nil
}

func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// get loads the entry for key, with ok=false on miss or any decode
// problem (a corrupt entry is indistinguishable from a miss on
// purpose: the run recomputes and overwrites it).
func (c *diskCache) get(key string) (*cacheEntry, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Key != key {
		return nil, false
	}
	return &e, true
}

// put persists an entry atomically; failures are swallowed — the cache
// is an accelerator, never a correctness dependency.
func (c *diskCache) put(e *cacheEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(name)
		return
	}
	if os.Rename(name, c.path(e.Key)) != nil {
		_ = os.Remove(name)
	}
}

// hashWriter accumulates length-prefixed fields into a SHA-256 sum so
// adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
type hashWriter struct {
	h [32]byte
	b []byte
}

func newHashWriter() *hashWriter { return &hashWriter{} }

func (w *hashWriter) field(s string) {
	var lenBuf [8]byte
	n := len(s)
	for i := 0; i < 8; i++ {
		lenBuf[i] = byte(n >> (8 * i))
	}
	w.b = append(w.b, lenBuf[:]...)
	w.b = append(w.b, s...)
}

func (w *hashWriter) sum() string {
	w.h = sha256.Sum256(w.b)
	return hex.EncodeToString(w.h[:])
}

// hashBytes is the content hash used for individual source files.
func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
