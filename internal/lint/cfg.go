package lint

// cfg.go: a lightweight intra-procedural control-flow graph, just enough
// for path-sensitive checks like unlockpath. One cfgNode per executed
// statement (composite statements contribute a head node carrying their
// condition); edges follow Go's structured control flow: if/else, for
// (with break/continue, labeled or not), range, switch (with
// fallthrough), type switch, select, return. Calls that never return
// (panic, os.Exit, runtime.Goexit, testing's Fatal family) end their
// path without reaching the synthetic exit node, so checks that care
// about *normal* exits ignore paths that die by panic.
//
// Deliberate simplifications, all conservative for unlockpath (they
// suppress reports rather than invent them): goto ends its path (the
// repo has none), and a nested FuncLit's body is not part of the
// enclosing function's graph (each literal gets its own graph).

import (
	"go/ast"
	"go/types"
	"strings"
)

// cfgNode is one step of a function's control flow.
type cfgNode struct {
	// stmt is the statement executed at this node (simple statements
	// only: assignments, calls, defers, returns...). nil for head nodes
	// and the synthetic exit.
	stmt ast.Stmt
	// expr is the expression evaluated at a composite statement's head
	// (an if/for condition, switch tag, range operand). nil elsewhere.
	expr ast.Expr
	// succs are the possible next nodes. Empty on the exit node and on
	// terminating calls (panic and friends).
	succs []*cfgNode
	// exit marks the synthetic normal-exit node: reached by return
	// statements and by falling off the end of the body.
	exit bool
}

// funcCFG is the graph of one function body.
type funcCFG struct {
	entry *cfgNode
	exit  *cfgNode
	nodes []*cfgNode
}

// cfgBuilder threads break/continue/fallthrough targets while building
// back-to-front.
type cfgBuilder struct {
	pass  *Pass
	g     *funcCFG
	brk   map[string]*cfgNode // "" is the innermost target
	cont  map[string]*cfgNode
	fall  *cfgNode // fallthrough target inside a switch clause
	label string   // pending label for the next loop/switch/select
}

// buildCFG constructs the graph for one function body.
func buildCFG(pass *Pass, body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	g.exit = &cfgNode{exit: true}
	g.nodes = append(g.nodes, g.exit)
	b := &cfgBuilder{pass: pass, g: g, brk: map[string]*cfgNode{}, cont: map[string]*cfgNode{}}
	g.entry = b.block(body.List, g.exit)
	return g
}

// node allocates a statement node flowing to succs.
func (b *cfgBuilder) node(s ast.Stmt, succs ...*cfgNode) *cfgNode {
	n := &cfgNode{stmt: s, succs: succs}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

// head allocates a condition/tag node flowing to succs.
func (b *cfgBuilder) head(e ast.Expr, succs ...*cfgNode) *cfgNode {
	n := &cfgNode{expr: e, succs: succs}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

// block builds a statement list that continues at next, returning the
// entry node of the list.
func (b *cfgBuilder) block(list []ast.Stmt, next *cfgNode) *cfgNode {
	for i := len(list) - 1; i >= 0; i-- {
		next = b.stmt(list[i], next)
	}
	return next
}

// withTargets runs f with the break (and optionally continue) target
// registered under both the anonymous slot and the pending label.
func (b *cfgBuilder) withTargets(brk, cont *cfgNode, f func()) {
	label := b.label
	b.label = ""
	saveB, saveBL := b.brk[""], b.brk[label]
	saveC, saveCL := b.cont[""], b.cont[label]
	b.brk[""] = brk
	if label != "" {
		b.brk[label] = brk
	}
	if cont != nil {
		b.cont[""] = cont
		if label != "" {
			b.cont[label] = cont
		}
	}
	f()
	b.brk[""] = saveB
	if cont != nil {
		b.cont[""] = saveC
	}
	if label != "" {
		b.brk[label] = saveBL
		if cont != nil {
			b.cont[label] = saveCL
		}
	}
}

// stmt builds one statement that continues at next, returning its entry.
func (b *cfgBuilder) stmt(s ast.Stmt, next *cfgNode) *cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.block(s.List, next)

	case *ast.LabeledStmt:
		b.label = s.Label.Name
		entry := b.stmt(s.Stmt, next)
		b.label = ""
		return entry

	case *ast.ReturnStmt:
		return b.node(s, b.g.exit)

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		var target *cfgNode
		switch s.Tok.String() {
		case "break":
			target = b.brk[label]
		case "continue":
			target = b.cont[label]
		case "fallthrough":
			target = b.fall
		case "goto":
			target = nil // path ends: conservative, and the repo has no gotos
		}
		if target == nil {
			return b.node(s) // no successors: path ends here
		}
		return b.node(s, target)

	case *ast.IfStmt:
		thenEntry := b.block(s.Body.List, next)
		elseEntry := next
		if s.Else != nil {
			elseEntry = b.stmt(s.Else, next)
		}
		entry := b.head(s.Cond, thenEntry, elseEntry)
		if s.Init != nil {
			entry = b.stmt(s.Init, entry)
		}
		return entry

	case *ast.ForStmt:
		// head -> body -> post -> head; head -> next iff there is a
		// condition (for {} only leaves via break/return).
		head := b.head(s.Cond)
		if s.Cond != nil {
			head.succs = append(head.succs, next)
		}
		post := head
		if s.Post != nil {
			post = b.stmt(s.Post, head)
		}
		b.withTargets(next, post, func() {
			bodyEntry := b.block(s.Body.List, post)
			head.succs = append([]*cfgNode{bodyEntry}, head.succs...)
		})
		entry := head
		if s.Init != nil {
			entry = b.stmt(s.Init, head)
		}
		return entry

	case *ast.RangeStmt:
		head := b.head(s.X, next)
		b.withTargets(next, head, func() {
			bodyEntry := b.block(s.Body.List, head)
			head.succs = append([]*cfgNode{bodyEntry}, head.succs...)
		})
		return head

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return b.switchStmt(s, next)

	case *ast.SelectStmt:
		if len(s.Body.List) == 0 {
			return b.node(s) // select{} blocks forever
		}
		var entries []*cfgNode
		b.withTargets(next, nil, func() {
			for _, cc := range s.Body.List {
				clause := cc.(*ast.CommClause)
				bodyEntry := b.block(clause.Body, next)
				if clause.Comm != nil {
					bodyEntry = b.stmt(clause.Comm, bodyEntry)
				}
				entries = append(entries, bodyEntry)
			}
		})
		n := &cfgNode{succs: entries}
		b.g.nodes = append(b.g.nodes, n)
		return n

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && neverReturns(b.pass, call) {
			return b.node(s) // panic/os.Exit/Fatal: path ends
		}
		return b.node(s, next)

	default:
		// Assignments, declarations, send, inc/dec, defer, go, empty.
		return b.node(s, next)
	}
}

// switchStmt builds expression and type switches: every clause is a
// successor of the head; fallthrough chains clause bodies; a missing
// default adds an edge straight to next.
func (b *cfgBuilder) switchStmt(s ast.Stmt, next *cfgNode) *cfgNode {
	var init ast.Stmt
	var tag ast.Expr
	var clauses []*ast.CaseClause
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, tag = s.Init, s.Tag
		for _, c := range s.Body.List {
			clauses = append(clauses, c.(*ast.CaseClause))
		}
	case *ast.TypeSwitchStmt:
		init = s.Init
		for _, c := range s.Body.List {
			clauses = append(clauses, c.(*ast.CaseClause))
		}
	}
	head := b.head(tag)
	b.withTargets(next, nil, func() {
		// Build back-to-front so fallthrough can target the next clause's
		// body entry.
		entries := make([]*cfgNode, len(clauses))
		var nextBody *cfgNode
		for i := len(clauses) - 1; i >= 0; i-- {
			saveFall := b.fall
			b.fall = nextBody
			entries[i] = b.block(clauses[i].Body, next)
			b.fall = saveFall
			nextBody = entries[i]
			if clauses[i].List == nil {
				hasDefault = true
			}
		}
		head.succs = append(head.succs, entries...)
	})
	if !hasDefault {
		head.succs = append(head.succs, next)
	}
	entry := head
	if ts, ok := s.(*ast.TypeSwitchStmt); ok && ts.Assign != nil {
		entry = b.stmt(ts.Assign, entry)
	}
	if init != nil {
		entry = b.stmt(init, entry)
	}
	return entry
}

// neverReturns reports whether a call terminates the goroutine (or the
// process): panic, os.Exit, runtime.Goexit, log's and testing's Fatal
// family. Paths through such calls never reach the function's normal
// exit.
func neverReturns(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun]; ok {
			if bi, ok := obj.(*types.Builtin); ok {
				return bi.Name() == "panic"
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			switch fn.FullName() {
			case "os.Exit", "runtime.Goexit",
				"log.Fatal", "log.Fatalf", "log.Fatalln",
				"(*log.Logger).Fatal", "(*log.Logger).Fatalf", "(*log.Logger).Fatalln":
				return true
			}
			// testing's Fatal family runs runtime.Goexit; match by
			// method name so *testing.T, *B and *F all count.
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isTestingRecv(recv.Type()) {
				switch fn.Name() {
				case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
					return true
				}
			}
		}
	}
	return false
}

// isTestingRecv reports whether t is a pointer to a type in package
// testing (T, B, F and their embedded common).
func isTestingRecv(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "testing" ||
		strings.HasPrefix(named.Obj().Pkg().Path(), "testing/")
}
