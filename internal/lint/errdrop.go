package lint

// errdrop: call statements that silently discard a returned error.
//
// The update path (mod.DB.Apply, journal writes, codec round-trips) and
// the query drivers report numeric breakdown through errors; swallowing
// one turns "the sweep refused to certify this order" into "the answer is
// quietly wrong". Policy: handle the error, or drop it explicitly with
// `_ = f()` so the drop is visible in review. A small allowlist covers
// calls that cannot fail by contract (strings.Builder, bytes.Buffer, and
// fmt printers targeting them).

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop is the dropped-error analyzer.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags call statements discarding an error result (use `_ =` to drop explicitly)",
	Run:  runErrDrop,
}

// errDropAllowExact lists functions whose returned error is always nil by
// documented contract, keyed by types.Func.FullName.
var errDropAllowExact = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
}

// errDropAllowPrefix lists FullName prefixes for never-failing method
// sets.
var errDropAllowPrefix = []string{
	"(*strings.Builder).",
	"(*bytes.Buffer).",
}

// neverFailingWriters are *T types whose Write never returns an error;
// fmt.Fprint* into them is allowlisted.
var neverFailingWriters = map[string]bool{
	"*strings.Builder": true,
	"*bytes.Buffer":    true,
}

func runErrDrop(pass *Pass) []Diagnostic {
	errType := types.Universe.Lookup("error").Type()
	var out []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call, errType) {
				return true
			}
			if allowedErrDrop(pass, call) {
				return true
			}
			out = append(out, Diag(call.Pos(),
				"call %s discards its error result; handle it or drop explicitly with `_ =`",
				calleeName(pass, call)))
			return true
		})
	}
	return out
}

// returnsError reports whether the call's result type includes error.
func returnsError(pass *Pass, call *ast.CallExpr, errType types.Type) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// allowedErrDrop applies the never-failing allowlist.
func allowedErrDrop(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	name := fn.FullName()
	if errDropAllowExact[name] {
		return true
	}
	for _, p := range errDropAllowPrefix {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	// fmt.Fprint* into a writer that cannot fail.
	if strings.HasPrefix(name, "fmt.Fprint") && len(call.Args) > 0 {
		if t := pass.TypeOf(call.Args[0]); t != nil && neverFailingWriters[t.String()] {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeName renders the callee for diagnostics.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.FullName()
	}
	return types.ExprString(call.Fun)
}
