package lint

import "testing"

func TestErrDrop(t *testing.T) {
	checkFixture(t, ErrDrop, `package fixture

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("x") }

func pair() (int, error) { return 0, nil }

func noErr() int { return 1 }

type closer struct{}

func (closer) Close() error { return nil }

func drops(c closer) {
	fail() // want "discards its error"
	pair() // want "discards its error"
	c.Close() // want "discards its error"
}

func explicitOK() {
	_ = fail()
	_, _ = pair()
	if err := fail(); err != nil {
		_ = err
	}
}

func pureOK() {
	noErr()
}

func allowlistedOK() string {
	var b strings.Builder
	b.WriteString("hi")
	fmt.Fprintf(&b, "%d", 1)
	fmt.Println("x")
	return b.String()
}

func annotatedOK() {
	fail() //modlint:allow errdrop -- fixture: best-effort cleanup
}
`)
}

// TestErrDropFprintWriters distinguishes never-failing in-memory writers
// from real ones.
func TestErrDropFprintWriters(t *testing.T) {
	checkFixture(t, ErrDrop, `package fixture

import (
	"bytes"
	"fmt"
	"io"
)

func toBuffer(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "%d", 1)
	buf.WriteByte('x')
}

func toRealWriter(w io.Writer) {
	fmt.Fprintf(w, "%d", 1) // want "discards its error"
}
`)
}
