package lint

// Table-driven fixture harness: each analyzer test type-checks an
// embedded source fixture and compares findings against `// want "..."`
// line markers, in the style of x/tools analysistest. A line with markers
// must produce a matching finding; a line without markers must stay
// silent — so every fixture simultaneously proves the analyzer catches
// the seeded violation and accepts the allowlisted idiom next to it.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"regexp"
	"strings"
	"testing"
)

// lintFixture type-checks src as a single-file package named "fixture"
// and runs one analyzer over it (suppression comments honored).
func lintFixture(t *testing.T, a *Analyzer, src string) []Finding {
	t.Helper()
	return lintFixtureAt(t, a, "fixture", src)
}

// lintFixtureAt is lintFixture with an explicit import path, for
// analyzers gated by package path (syncorder).
func lintFixtureAt(t *testing.T, a *Analyzer, pkgPath, src string) []Finding {
	t.Helper()
	return Run(typeCheckFixture(t, pkgPath, src), []*Analyzer{a})
}

// typeCheckFixture parses and type-checks src as a single-file package
// under pkgPath and returns the Pass, for tests that drive the
// RunRaw/CollectDirectives/ApplySuppressions pipeline directly.
func typeCheckFixture(t *testing.T, pkgPath, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: newModuleImporter(fset)}
	pkg, err := conf.Check(pkgPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// checkFixture asserts findings match the fixture's want markers exactly.
func checkFixture(t *testing.T, a *Analyzer, src string) {
	t.Helper()
	checkFixtureAt(t, a, "fixture", src)
}

// checkFixtureAt is checkFixture with an explicit import path.
func checkFixtureAt(t *testing.T, a *Analyzer, pkgPath, src string) {
	t.Helper()
	findings := lintFixtureAt(t, a, pkgPath, src)
	wants := map[int][]string{} // line -> expected message substrings
	for i, line := range strings.Split(src, "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			wants[i+1] = append(wants[i+1], m[1])
		}
	}
	got := map[int][]string{}
	for _, f := range findings {
		got[f.Position.Line] = append(got[f.Position.Line], f.Message)
	}
	for line, subs := range wants {
		msgs := got[line]
		for _, sub := range subs {
			found := false
			for _, m := range msgs {
				if strings.Contains(m, sub) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("line %d: want finding containing %q, got %v", line, sub, msgs)
			}
		}
		if len(msgs) > len(subs) {
			t.Errorf("line %d: %d findings for %d want markers: %v", line, len(msgs), len(subs), msgs)
		}
	}
	for line, msgs := range got {
		if _, ok := wants[line]; !ok {
			t.Errorf("line %d: unexpected findings %v", line, msgs)
		}
	}
}
