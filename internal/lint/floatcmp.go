package lint

// floatcmp: exact == / != / switch on floating-point operands.
//
// The sweep's correctness (Lemmas 7-8: the event queue holds the *next*
// intersection; Theorems 4-5: the order along the sweep line is exact)
// hangs on the kinetic precedence relation <=_t between curve times.
// Intersection times come out of root isolation carrying ~1e-16-scale
// dust, so exact float equality silently misclassifies tangency vs
// crossing and "same event time" vs "distinct events". Policy: numeric
// comparisons on computed values go through epsilon helpers
// (poly.ApproxEq and friends); exact equality is reserved for provably
// exact values (untouched inputs, trim-flushed zeros, IEEE sentinels) and
// must be annotated with //modlint:allow floatcmp -- <why exact>.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmpAllowFuncs lists fully-qualified functions whose body may use
// exact float comparisons without annotation: the epsilon helpers
// themselves and documented exact-equality primitives. Methods are named
// pkgpath.Recv.Name; plain functions pkgpath.Name.
var FloatCmpAllowFuncs = map[string]bool{
	"repro/internal/poly.ApproxEq":   true, // the epsilon helper itself
	"repro/internal/poly.ApproxZero": true,
	"repro/internal/poly.Poly.Equal": true, // documented exact coefficient equality
	// Documented exact-identity primitives: their contract is bitwise
	// equality (used for change detection and canonical-form checks),
	// with Approx* siblings for numeric use.
	"repro/internal/geom.Vec.Equal":              true,
	"repro/internal/geom.Vec.IsZero":             true,
	"repro/internal/trajectory.Trajectory.Equal": true,
	"repro/internal/eventq.Event.Less":           true, // comparator: total order needs exact compares
}

// FloatCmp is the float-equality analyzer.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags == / != / switch on float operands outside epsilon helpers",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) []Diagnostic {
	var out []Diagnostic
	for _, file := range pass.Files {
		// Test files assert exact expected values on purpose (they are
		// determinism checks over exact inputs); the numeric policy
		// governs engine code.
		if name := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			allowed := false
			if fd, ok := decl.(*ast.FuncDecl); ok {
				allowed = FloatCmpAllowFuncs[qualifiedFuncName(pass, fd)]
			}
			if allowed {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					if !isFloat(pass.TypeOf(n.X)) && !isFloat(pass.TypeOf(n.Y)) {
						return true
					}
					// Two compile-time constants compare exactly.
					if isConst(pass, n.X) && isConst(pass, n.Y) {
						return true
					}
					out = append(out, Diag(n.OpPos,
						"exact float comparison %s %s %s; use poly.ApproxEq (or annotate //modlint:allow floatcmp -- <why exact>)",
						types.ExprString(n.X), n.Op, types.ExprString(n.Y)))
				case *ast.SwitchStmt:
					if n.Tag != nil && isFloat(pass.TypeOf(n.Tag)) {
						out = append(out, Diag(n.Switch,
							"switch on float expression %s compares exactly; rewrite with epsilon comparisons",
							types.ExprString(n.Tag)))
					}
				}
				return true
			})
		}
	}
	return out
}

// qualifiedFuncName renders pkgpath.Func or pkgpath.Recv.Func.
func qualifiedFuncName(pass *Pass, fd *ast.FuncDecl) string {
	name := pass.Pkg.Path() + "."
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		// Strip generic type parameters if present.
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name += id.Name + "."
		}
	}
	return name + fd.Name.Name
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e has a compile-time constant value.
func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
