package lint

import "testing"

func TestFloatCmp(t *testing.T) {
	checkFixture(t, FloatCmp, `package fixture

type length float64

func cmp(a, b float64) bool {
	if a == b { // want "exact float comparison"
		return true
	}
	return a != 0 // want "exact float comparison"
}

func namedFloat(a, b length) bool {
	return a == b // want "exact float comparison"
}

func intsOK(a, b int) bool { return a == b }

func constsOK() bool { return 1.5 == 3.0/2.0 }

func orderingOK(a, b float64) bool { return a < b || a >= b }

func annotatedOK(a float64) bool {
	return a == 0 //modlint:allow floatcmp -- fixture: trim-flushed exact zero
}

func annotatedAboveOK(a float64) bool {
	//modlint:allow floatcmp -- fixture: IEEE sentinel compare
	return a != 0
}

func sw(x float64) int {
	switch x { // want "switch on float"
	case 0:
		return 0
	}
	return 1
}

func swTaglessOK(x float64) int {
	switch {
	case x < 0:
		return -1
	}
	return 1
}
`)
}

// TestFloatCmpAllowlist proves registered epsilon helpers may compare
// exactly without annotation.
func TestFloatCmpAllowlist(t *testing.T) {
	FloatCmpAllowFuncs["fixture.eq"] = true
	defer delete(FloatCmpAllowFuncs, "fixture.eq")
	checkFixture(t, FloatCmp, `package fixture

func eq(a, b float64) bool { return a == b }

func notAllowed(a, b float64) bool { return a == b } // want "exact float comparison"
`)
}

// TestFloatCmpMethodAllowlist covers the Recv.Name qualified form.
func TestFloatCmpMethodAllowlist(t *testing.T) {
	FloatCmpAllowFuncs["fixture.Scalar.Equal"] = true
	defer delete(FloatCmpAllowFuncs, "fixture.Scalar.Equal")
	checkFixture(t, FloatCmp, `package fixture

type Scalar float64

func (s Scalar) Equal(o Scalar) bool { return s == o }

func (s Scalar) Same(o Scalar) bool { return s == o } // want "exact float comparison"
`)
}
