package lint

// goroutinecapture: `go func` literals that capture loop variables, or
// that read mutex-guarded fields without holding the lock.
//
// Two repo policies are enforced here. First, goroutines take their
// per-iteration data as arguments, never by closure over the loop
// variable: even with Go 1.22 per-iteration loop variables the capture
// reads as shared state, and the fan-out paths (watch subscriber
// broadcast, batched sweep workers) are exactly where a reader must be
// able to see at a glance that iterations are independent. Second, a
// goroutine that touches a field of a lock-guarded struct must acquire
// that struct's lock inside the literal; reading a guarded field through
// a captured pointer is a data race the type system cannot see.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture is the goroutine-capture analyzer.
var GoroutineCapture = &Analyzer{
	Name: "goroutinecapture",
	Doc:  "flags go-func literals capturing loop variables or unguarded lock-protected fields",
	Run:  runGoroutineCapture,
}

func runGoroutineCapture(pass *Pass) []Diagnostic {
	var out []Diagnostic
	for _, file := range pass.Files {
		loopVars := collectLoopVars(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			out = append(out, checkGoLiteral(pass, gs, lit, loopVars)...)
			return true
		})
	}
	return out
}

// collectLoopVars gathers the objects introduced by for/range clauses.
func collectLoopVars(pass *Pass, file *ast.File) map[types.Object]bool {
	vars := map[types.Object]bool{}
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if n.Key != nil {
					add(n.Key)
				}
				if n.Value != nil {
					add(n.Value)
				}
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					add(lhs)
				}
			}
		}
		return true
	})
	return vars
}

// checkGoLiteral inspects one `go func(){...}()` literal.
func checkGoLiteral(pass *Pass, gs *ast.GoStmt, lit *ast.FuncLit, loopVars map[types.Object]bool) []Diagnostic {
	var out []Diagnostic
	reportedLoop := map[types.Object]bool{}
	reportedField := map[string]bool{}
	locked := lockedBases(pass, lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			if obj == nil || !capturedBy(obj, lit) {
				return true
			}
			if loopVars[obj] && !reportedLoop[obj] {
				reportedLoop[obj] = true
				out = append(out, Diag(n.Pos(),
					"go-func literal captures loop variable %s by reference; pass it as an argument", obj.Name()))
			}
		case *ast.SelectorExpr:
			base, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[base]
			if obj == nil || !capturedBy(obj, lit) {
				return true
			}
			v, ok := obj.(*types.Var)
			if !ok || lockPath(pass, deref(v.Type())) == "" {
				return true
			}
			sel := pass.Info.Selections[n]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			// Touching the lock itself (w.mu.Lock()) is the guarded
			// idiom, not a violation.
			if lockPathRec(sel.Type(), map[types.Type]bool{}) != "" {
				return true
			}
			if locked[obj] {
				return true
			}
			key := obj.Name() + "." + n.Sel.Name
			if !reportedField[key] {
				reportedField[key] = true
				out = append(out, Diag(n.Pos(),
					"go-func literal reads guarded field %s without acquiring %s's lock inside the goroutine", key, obj.Name()))
			}
		}
		return true
	})
	return out
}

// capturedBy reports whether obj is declared outside lit (and hence is
// captured by the literal rather than local to it).
func capturedBy(obj types.Object, lit *ast.FuncLit) bool {
	if obj.Pos() == token.NoPos {
		return false
	}
	// Package-level state is shared by design, not a capture.
	if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// lockedBases returns the captured variables on which the literal's body
// calls a Lock/RLock method (directly or through a lock-valued field).
func lockedBases(pass *Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		// Walk to the base identifier of w.mu.Lock() / w.Lock().
		base := sel.X
		for {
			if s, ok := base.(*ast.SelectorExpr); ok {
				base = s.X
				continue
			}
			break
		}
		if id, ok := base.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
