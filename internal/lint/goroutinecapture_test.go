package lint

import "testing"

func TestGoroutineCapture(t *testing.T) {
	checkFixture(t, GoroutineCapture, `package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type plain struct{ n int }

func rangeCapture(xs []int, ch chan int) {
	for _, x := range xs {
		go func() {
			ch <- x // want "captures loop variable x"
		}()
	}
}

func forCapture(ch chan int) {
	for i := 0; i < 3; i++ {
		go func() {
			ch <- i // want "captures loop variable i"
		}()
	}
}

func argPassOK(xs []int, ch chan int) {
	for _, x := range xs {
		go func(x int) {
			ch <- x
		}(x)
	}
}

func guardedRead(g *guarded, ch chan int) {
	go func() {
		ch <- g.n // want "reads guarded field g.n"
	}()
}

func guardedLockedOK(g *guarded, ch chan int) {
	go func() {
		g.mu.Lock()
		ch <- g.n
		g.mu.Unlock()
	}()
}

func plainOK(p *plain, ch chan int) {
	go func() {
		ch <- p.n
	}()
}

func namedFuncOK(g *guarded) {
	go g.bump()
}

func (g *guarded) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func annotatedOK(g *guarded, ch chan int) {
	go func() {
		ch <- g.n //modlint:allow goroutinecapture -- fixture: g is exclusively owned here
	}()
}
`)
}

// TestGoroutineCaptureEmbeddedLock covers structs embedding sync.Mutex
// and locking through the embedded method set.
func TestGoroutineCaptureEmbeddedLock(t *testing.T) {
	checkFixture(t, GoroutineCapture, `package fixture

import "sync"

type reg struct {
	sync.Mutex
	m map[int]int
}

func readNoLock(r *reg, ch chan int) {
	go func() {
		ch <- r.m[0] // want "reads guarded field r.m"
	}()
}

func readLockedOK(r *reg, ch chan int) {
	go func() {
		r.Lock()
		ch <- r.m[0]
		r.Unlock()
	}()
}
`)
}
