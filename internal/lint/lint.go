// Package lint is a small, stdlib-only static-analysis framework plus the
// repo-specific analyzers that guard the engine's invariants. The
// plane-sweep core (Lemmas 7-8, Theorems 4-5 of the paper) is only correct
// if the numeric comparisons on curve/event times go through epsilon-aware
// helpers and the concurrent server/watch layers never copy or escape
// lock-guarded kinetic state; the crash-safe, concurrent engine grown on
// top (committer goroutines with ack watermarks, pooled scratch buffers,
// the six-step fsync/rename checkpoint protocol) adds invariant families
// of its own. One analyzer per family:
//
//	floatcmp          exact float ==/!= on computed values
//	lockcopy          by-value copies of lock-containing types
//	goroutinecapture  loop-variable capture in goroutines
//	errdrop           silently discarded error results
//	unlockpath        Lock() without Unlock() on some path (per-function CFG)
//	poolescape        sync.Pool values escaping their Get..Put window
//	atomicmix         mixed atomic and plain access to one variable
//	waitforget        WaitGroup Add/Done/Wait imbalance, goroutine errors dropped
//	syncorder         checkpoint-protocol fsync ordering (durable/vfs only)
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis at a
// fraction of the surface: an Analyzer inspects one type-checked package
// (a Pass) and reports Diagnostics. It is built only on go/parser, go/ast
// and go/types, consistent with the repo's no-external-deps seed.
//
// Suppression: a finding may be silenced with a comment of the form
//
//	//modlint:allow floatcmp  -- reason
//	/* modlint:allow floatcmp -- reason */
//
// naming one or more comma-separated analyzers (or "all"). The directive
// covers findings on its own line and the line below; when that line
// opens a multi-line statement, coverage extends to the statement's last
// line, so a directive above (or trailing) a wrapped call suppresses
// findings anywhere inside it. Suppressions are expected to carry a
// justification ("inputs provably exact" and the like); the driver's
// stale-suppression audit reports directives that no longer match any
// finding, so dead escapes cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //modlint:allow comments.
	Name string
	// Doc is a one-line description shown by `modlint -list`.
	Doc string
	// Run inspects the pass and returns findings. Positions must be
	// valid in pass.Fset.
	Run func(pass *Pass) []Diagnostic
}

// Pass is one package presented to an analyzer: syntax plus types.
type Pass struct {
	Fset *token.FileSet
	// Files are the parsed files of the package, including in-package
	// _test.go files.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // filled by Run (the runner) if empty
	Message  string
}

// Diag is a convenience constructor.
func Diag(pos token.Pos, format string, args ...interface{}) Diagnostic {
	return Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)}
}

// Finding is a resolved diagnostic, position translated for display.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// Directive is one modlint:allow suppression comment.
type Directive struct {
	// Position locates the directive comment itself.
	Position token.Position
	// FromLine..ToLine is the covered line range in Position.Filename:
	// the directive's own line(s), the line below, and — when one of
	// those opens a multi-line statement — through that statement's end.
	FromLine, ToLine int
	// Analyzers are the named analyzers (lowercased), possibly "all".
	Analyzers []string
	// Rationale is the text after "--", for display in audits.
	Rationale string
}

// covers reports whether the directive suppresses analyzer a at pos.
func (d Directive) covers(a string, pos token.Position) bool {
	if pos.Filename != d.Position.Filename || pos.Line < d.FromLine || pos.Line > d.ToLine {
		return false
	}
	for _, name := range d.Analyzers {
		if name == a || name == "all" {
			return true
		}
	}
	return false
}

// All returns the repo's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp, LockCopy, GoroutineCapture, ErrDrop,
		UnlockPath, PoolEscape, AtomicMix, WaitForget, SyncOrder,
	}
}

// Run applies the analyzers to one package and returns findings with
// suppressions applied, sorted by position.
func Run(pass *Pass, analyzers []*Analyzer) []Finding {
	findings := RunRaw(pass, analyzers)
	kept, _ := ApplySuppressions(findings, CollectDirectives(pass))
	return kept
}

// RunRaw applies the analyzers and returns every finding, suppressed or
// not, sorted by position. The caller pairs it with CollectDirectives
// and ApplySuppressions; keeping the raw set around is what makes the
// stale-suppression audit and the result cache possible.
func RunRaw(pass *Pass, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		for _, d := range a.Run(pass) {
			name := d.Analyzer
			if name == "" {
				name = a.Name
			}
			out = append(out, Finding{Position: pass.Fset.Position(d.Pos), Analyzer: name, Message: d.Message})
		}
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, column, analyzer, message
// — the stable order every output mode uses.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Position, fs[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Message < fs[j].Message
	})
}

// ApplySuppressions filters findings through the directives, returning
// the kept findings and, aligned with dirs, whether each directive
// matched at least one finding (the input to the stale audit).
func ApplySuppressions(findings []Finding, dirs []Directive) (kept []Finding, used []bool) {
	used = make([]bool, len(dirs))
	for _, f := range findings {
		suppressed := false
		for i, d := range dirs {
			if d.covers(f.Analyzer, f.Position) {
				used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept, used
}

const allowLineDirective = "//modlint:allow"

// CollectDirectives scans the pass's comments for modlint:allow
// directives, in both line-comment and block-comment form, computing
// each directive's covered line range (own line, line below, extended
// through a multi-line statement opened on either).
func CollectDirectives(pass *Pass) []Directive {
	var out []Directive
	for _, f := range pass.Files {
		spans := statementSpans(pass.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := directiveBody(c.Text)
				if !ok {
					continue
				}
				d := parseDirective(body)
				d.Position = pass.Fset.Position(c.Pos())
				endLine := pass.Fset.Position(c.End()).Line
				d.FromLine = d.Position.Line
				d.ToLine = endLine + 1
				for _, l := range [2]int{d.FromLine, endLine + 1} {
					if end := spans[l]; end > d.ToLine {
						d.ToLine = end
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// directiveBody extracts the directive text after "modlint:allow" from
// a line or block comment, or ok=false.
func directiveBody(text string) (string, bool) {
	if rest, ok := strings.CutPrefix(text, allowLineDirective); ok {
		return rest, true
	}
	if inner, ok := strings.CutPrefix(text, "/*"); ok {
		inner = strings.TrimSuffix(inner, "*/")
		if rest, ok := strings.CutPrefix(strings.TrimSpace(inner), "modlint:allow"); ok {
			return rest, true
		}
	}
	return "", false
}

// parseDirective splits "floatcmp, errdrop -- reason" into names and
// rationale.
func parseDirective(rest string) Directive {
	var d Directive
	if i := strings.Index(rest, "--"); i >= 0 {
		d.Rationale = strings.TrimSpace(rest[i+2:])
		rest = rest[:i]
	}
	for _, name := range strings.Split(rest, ",") {
		if name = strings.TrimSpace(name); name != "" {
			d.Analyzers = append(d.Analyzers, name)
		}
	}
	return d
}

// statementSpans maps, per starting line, the last line of the longest
// simple statement (or declaration group / field) opening there — the
// data the multi-line directive coverage rule needs. Only statements
// without nested bodies extend coverage: a directive on an if/for/func
// line must not blanket everything inside the body.
func statementSpans(fset *token.FileSet, f *ast.File) map[int]int {
	spans := map[int]int{}
	note := func(n ast.Node) {
		from := fset.Position(n.Pos()).Line
		to := fset.Position(n.End()).Line
		if to > spans[from] {
			spans[from] = to
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt,
			*ast.SendStmt, *ast.IncDecStmt, *ast.GoStmt, *ast.DeferStmt,
			*ast.GenDecl, *ast.ValueSpec, *ast.Field:
			note(n)
		}
		return true
	})
	return spans
}
