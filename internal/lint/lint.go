// Package lint is a small, stdlib-only static-analysis framework plus the
// repo-specific analyzers that guard the sweep-line invariants. The
// plane-sweep core (Lemmas 7-8, Theorems 4-5 of the paper) is only correct
// if two invariant families hold everywhere in the tree:
//
//   - numeric comparisons on curve/event times go through epsilon-aware
//     helpers (exact float == / != silently breaks the kinetic precedence
//     relation <=_t when intersection times carry 1e-16-scale dust), and
//   - the concurrent server/watch layers never copy or escape
//     lock-guarded kinetic state.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis at a
// fraction of the surface: an Analyzer inspects one type-checked package
// (a Pass) and reports Diagnostics. It is built only on go/parser, go/ast
// and go/types, consistent with the repo's no-external-deps seed.
//
// Suppression: a finding may be silenced with a trailing or preceding
// comment of the form
//
//	//modlint:allow floatcmp  -- reason
//
// naming one or more comma-separated analyzers. Suppressions are expected
// to carry a justification ("inputs provably exact" and the like); they
// are the escape hatch for the exact-zero comparisons the numeric policy
// explicitly permits.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //modlint:allow comments.
	Name string
	// Doc is a one-line description shown by `modlint -help`.
	Doc string
	// Run inspects the pass and returns findings. Positions must be
	// valid in pass.Fset.
	Run func(pass *Pass) []Diagnostic
}

// Pass is one package presented to an analyzer: syntax plus types.
type Pass struct {
	Fset *token.FileSet
	// Files are the parsed files of the package, including in-package
	// _test.go files.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // filled by Run (the runner) if empty
	Message  string
}

// Diag is a convenience constructor.
func Diag(pos token.Pos, format string, args ...interface{}) Diagnostic {
	return Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)}
}

// Finding is a resolved diagnostic, position translated for display.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// All returns the repo's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{FloatCmp, LockCopy, GoroutineCapture, ErrDrop}
}

// Run applies the analyzers to one package and returns findings with
// suppressions applied, sorted by position.
func Run(pass *Pass, analyzers []*Analyzer) []Finding {
	allowed := collectAllows(pass)
	var out []Finding
	for _, a := range analyzers {
		for _, d := range a.Run(pass) {
			name := d.Analyzer
			if name == "" {
				name = a.Name
			}
			pos := pass.Fset.Position(d.Pos)
			if allowed.allows(name, pos) {
				continue
			}
			out = append(out, Finding{Position: pos, Analyzer: name, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// allowSet records, per file and line, which analyzers are suppressed.
type allowSet map[string]map[int]map[string]bool // filename -> line -> analyzer

// allows reports whether a finding at pos is suppressed by a comment on
// the same line or on the line directly above.
func (s allowSet) allows(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if m := lines[ln]; m != nil && (m[analyzer] || m["all"]) {
			return true
		}
	}
	return false
}

const allowPrefix = "//modlint:allow"

// collectAllows scans all comments of the pass for allow directives.
func collectAllows(pass *Pass) allowSet {
	out := allowSet{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				// Directive body ends at an optional "--" rationale.
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				pos := pass.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					out[pos.Filename] = lines
				}
				m := lines[pos.Line]
				if m == nil {
					m = map[string]bool{}
					lines[pos.Line] = m
				}
				for _, name := range strings.Split(rest, ",") {
					if name = strings.TrimSpace(name); name != "" {
						m[name] = true
					}
				}
			}
		}
	}
	return out
}
