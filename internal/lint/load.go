package lint

// The modlint driver: a deliberately small module loader plus a
// parallel, cached analysis pipeline. modlint must not depend on
// golang.org/x/tools, so packages are discovered by walking the module
// tree, parsed with go/parser, and type-checked with go/types; imports
// inside the module resolve to freshly checked packages and
// standard-library imports resolve through go/importer (compiled
// export data when available, source otherwise).
//
// The pipeline:
//
//  1. Discover package directories and parse every file concurrently
//     (token.FileSet and go/parser are safe for concurrent use). File
//     bytes are read once and feed both the parser and the cache key.
//  2. Compute each package's cache key in dependency order (a key
//     covers the package's own files plus its in-module deps' keys —
//     see cache.go) and probe the on-disk cache.
//  3. Type-check only what a cache miss needs: the misses themselves
//     plus their transitive in-module dependencies. Packages
//     type-check concurrently as their dependencies complete, bounded
//     by Jobs; a cache hit whose result no miss depends on is never
//     parsed into types at all.
//  4. Run the analyzer suite over each miss (in the same worker that
//     type-checked it) and persist raw findings + directives.
//
// Raw findings and suppression directives come back per package with
// module-root-relative filenames; the caller applies suppressions and
// the stale-directive audit over whatever package subset the
// invocation selected.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// AnalyzeOptions configures one AnalyzeModule run.
type AnalyzeOptions struct {
	// Analyzers is the suite to run; nil means All().
	Analyzers []*Analyzer
	// CacheDir is the on-disk cache location; empty means
	// DefaultCacheDir().
	CacheDir string
	// NoCache disables the result cache entirely (no reads, no writes).
	NoCache bool
	// Jobs bounds concurrent parse/type-check workers; <=0 means
	// GOMAXPROCS.
	Jobs int
}

// PackageResult is one package's analysis outcome.
type PackageResult struct {
	// ImportPath is the module-relative import path; external test
	// packages carry a trailing "_test".
	ImportPath string
	Dir        string
	// Raw holds every finding, suppressed or not, with filenames
	// relative to the module root. The caller pairs it with Directives
	// via ApplySuppressions.
	Raw []Finding
	// Directives are the package's modlint:allow comments, filenames
	// relative to the module root.
	Directives []Directive
	// TypeErrors holds type-checker soft failures. Analysis still runs
	// (go/types recovers well), but callers should surface them; a
	// package with type errors is never cached.
	TypeErrors []error
	// Cached reports whether Raw/Directives came from the cache.
	Cached bool
}

// ModuleResult is the outcome of analyzing a whole module.
type ModuleResult struct {
	Root    string
	ModPath string
	// Pkgs is sorted by import path.
	Pkgs                   []*PackageResult
	CacheHits, CacheMisses int
}

// FindModuleRoot walks up from dir to the nearest go.mod, returning the
// root directory and the module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			mp := parseModulePath(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("lint: no module line in %s", gm)
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod text.
func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p
			}
			return rest
		}
	}
	return ""
}

// srcFile is one parsed source file plus the content hash the cache
// key needs.
type srcFile struct {
	rel  string // module-root-relative, slash-separated
	ast  *ast.File
	hash string
}

// rawPkg is one discovered package before type-checking.
type rawPkg struct {
	importPath string
	dir        string
	files      []srcFile
	imports    map[string]bool
	external   bool // external test package (name ends in _test)
	key        string

	// Filled by the pipeline.
	result   *PackageResult
	done     chan struct{} // closed when type-checked (or failed)
	pass     *Pass         // set on successful type-check
	typeErrs []error       // type-checker soft failures
	hard     error         // type-check produced no package at all
}

// AnalyzeModule runs the analyzer suite over every package under root,
// reusing cached results where the key matches.
func AnalyzeModule(root, modPath string, opts AnalyzeOptions) (*ModuleResult, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}

	fset := token.NewFileSet()
	raws, byPath, err := discoverPackages(fset, root, modPath, jobs)
	if err != nil {
		return nil, err
	}
	order, err := topoOrder(raws, byPath)
	if err != nil {
		return nil, err
	}
	computeKeys(order, byPath, analyzers)

	var cache *diskCache
	if !opts.NoCache {
		dir := opts.CacheDir
		if dir == "" {
			dir = DefaultCacheDir()
		}
		// A cache that cannot open degrades to a cold run.
		cache, _ = openCache(dir)
	}

	res := &ModuleResult{Root: root, ModPath: modPath}
	for _, rp := range order {
		if cache != nil {
			if e, ok := cache.get(rp.key); ok {
				rp.result = &PackageResult{
					ImportPath: rp.importPath, Dir: rp.dir,
					Raw: e.Findings, Directives: e.Directives, Cached: true,
				}
				res.CacheHits++
				continue
			}
		}
		res.CacheMisses++
	}

	// Type-check set: misses plus their transitive in-module deps.
	required := requiredSet(order, byPath)
	checkAndAnalyze(fset, root, required, byPath, analyzers, jobs, cache)

	for _, rp := range order {
		if rp.hard != nil {
			return nil, fmt.Errorf("lint: type-check %s failed: %v", rp.importPath, rp.hard)
		}
		if rp.result != nil {
			res.Pkgs = append(res.Pkgs, rp.result)
		}
	}
	sort.Slice(res.Pkgs, func(i, j int) bool { return res.Pkgs[i].ImportPath < res.Pkgs[j].ImportPath })
	return res, nil
}

// discoverPackages walks the module tree and parses every package's
// files, jobs directories at a time.
func discoverPackages(fset *token.FileSet, root, modPath string, jobs int) ([]*rawPkg, map[string]*rawPkg, error) {
	dirs, err := goSourceDirs(root)
	if err != nil {
		return nil, nil, err
	}
	perDir := make([][]*rawPkg, len(dirs))
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perDir[i], errs[i] = parseDir(fset, root, modPath, dir)
		}(i, dir)
	}
	wg.Wait()
	var raws []*rawPkg
	byPath := map[string]*rawPkg{}
	for i, err := range errs {
		if err != nil {
			return nil, nil, err
		}
		for _, rp := range perDir[i] {
			raws = append(raws, rp)
			if !rp.external {
				byPath[rp.importPath] = rp
			}
		}
	}
	sort.Slice(raws, func(i, j int) bool { return raws[i].importPath < raws[j].importPath })
	return raws, byPath, nil
}

// parseDir reads and parses one directory's .go files, grouping them by
// package name: the primary package (with its in-package tests) and at
// most one external _test package.
func parseDir(fset *token.FileSet, root, modPath, dir string) ([]*rawPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	groups := map[string][]srcFile{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, full, data, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", e.Name(), err)
		}
		relFile := filepath.ToSlash(filepath.Join(filepath.FromSlash(relOrDot(rel)), e.Name()))
		groups[f.Name.Name] = append(groups[f.Name.Name], srcFile{rel: relFile, ast: f, hash: hashBytes(data)})
	}
	var out []*rawPkg
	for name, files := range groups {
		sort.Slice(files, func(i, j int) bool { return files[i].rel < files[j].rel })
		rp := &rawPkg{dir: dir, files: files, imports: map[string]bool{}, done: make(chan struct{})}
		if strings.HasSuffix(name, "_test") {
			rp.importPath = importPath + "_test"
			rp.external = true
		} else {
			rp.importPath = importPath
		}
		for _, sf := range files {
			for _, imp := range sf.ast.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil {
					rp.imports[p] = true
				}
			}
		}
		out = append(out, rp)
	}
	return out, nil
}

func relOrDot(rel string) string {
	if rel == "." {
		return ""
	}
	return rel
}

// topoOrder sorts packages so every in-module dependency precedes its
// importers; external test packages go last (nothing can import them).
func topoOrder(raws []*rawPkg, byPath map[string]*rawPkg) ([]*rawPkg, error) {
	var order []*rawPkg
	state := map[*rawPkg]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(rp *rawPkg) error
	visit = func(rp *rawPkg) error {
		switch state[rp] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", rp.importPath)
		case 2:
			return nil
		}
		state[rp] = 1
		for _, dep := range inModuleDeps(rp, byPath) {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[rp] = 2
		order = append(order, rp)
		return nil
	}
	for _, rp := range raws {
		if !rp.external {
			if err := visit(rp); err != nil {
				return nil, err
			}
		}
	}
	for _, rp := range raws {
		if rp.external {
			order = append(order, rp)
		}
	}
	return order, nil
}

// inModuleDeps returns rp's in-module dependencies in sorted order.
func inModuleDeps(rp *rawPkg, byPath map[string]*rawPkg) []*rawPkg {
	paths := make([]string, 0, len(rp.imports))
	for p := range rp.imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var deps []*rawPkg
	for _, p := range paths {
		if dep, ok := byPath[p]; ok && dep != rp {
			deps = append(deps, dep)
		}
	}
	return deps
}

// computeKeys fills each package's cache key; order must be
// topological so dependency keys exist when needed.
func computeKeys(order []*rawPkg, byPath map[string]*rawPkg, analyzers []*Analyzer) {
	for _, rp := range order {
		w := newHashWriter()
		w.field(cacheGeneration)
		w.field(runtime.Version())
		for _, a := range analyzers {
			w.field(a.Name)
		}
		w.field(rp.importPath)
		for _, sf := range rp.files {
			w.field(sf.rel)
			w.field(sf.hash)
		}
		for _, dep := range inModuleDeps(rp, byPath) {
			w.field(dep.key)
		}
		rp.key = w.sum()
	}
}

// requiredSet computes the packages that must be type-checked: every
// cache miss plus the transitive in-module dependencies its types
// come from.
func requiredSet(order []*rawPkg, byPath map[string]*rawPkg) map[*rawPkg]bool {
	required := map[*rawPkg]bool{}
	var need func(rp *rawPkg)
	need = func(rp *rawPkg) {
		if required[rp] {
			return
		}
		required[rp] = true
		for _, dep := range inModuleDeps(rp, byPath) {
			need(dep)
		}
	}
	for _, rp := range order {
		if rp.result == nil { // cache miss
			need(rp)
		}
	}
	return required
}

// checkAndAnalyze type-checks the required packages concurrently —
// each as soon as its dependencies finish, at most jobs at a time —
// and runs the analyzers over the cache misses in the same worker.
func checkAndAnalyze(fset *token.FileSet, root string, required map[*rawPkg]bool,
	byPath map[string]*rawPkg, analyzers []*Analyzer, jobs int, cache *diskCache) {
	imp := newModuleImporter(fset)
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for rp := range required {
		wg.Add(1)
		go func(rp *rawPkg) {
			defer wg.Done()
			defer close(rp.done)
			for _, dep := range inModuleDeps(rp, byPath) {
				<-dep.done
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			checkOne(fset, imp, rp)
			if rp.pass == nil || rp.result != nil {
				return // hard failure, or a hit that was only needed for types
			}
			rp.result = analyzeOne(root, rp, analyzers)
			if cache != nil && len(rp.result.TypeErrors) == 0 {
				cache.put(&cacheEntry{
					Key: rp.key, ImportPath: rp.importPath,
					Findings: rp.result.Raw, Directives: rp.result.Directives,
				})
			}
		}(rp)
	}
	wg.Wait()
}

// checkOne type-checks one package and publishes it to the importer.
func checkOne(fset *token.FileSet, imp *moduleImporter, rp *rawPkg) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var softErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { softErrs = append(softErrs, err) },
	}
	files := make([]*ast.File, len(rp.files))
	for i, sf := range rp.files {
		files[i] = sf.ast
	}
	tpkg, _ := conf.Check(rp.importPath, fset, files, info)
	if tpkg == nil {
		rp.hard = firstErr(softErrs)
		if rp.hard == nil {
			rp.hard = fmt.Errorf("no package produced")
		}
		return
	}
	rp.pass = &Pass{Fset: fset, Files: files, Pkg: tpkg, Info: info}
	rp.typeErrs = softErrs
	if !rp.external {
		imp.publish(rp.importPath, tpkg)
	}
}

// analyzeOne runs the suite over one type-checked package and
// normalizes positions to module-root-relative paths.
func analyzeOne(root string, rp *rawPkg, analyzers []*Analyzer) *PackageResult {
	res := &PackageResult{ImportPath: rp.importPath, Dir: rp.dir, TypeErrors: rp.typeErrs}
	res.Raw = RunRaw(rp.pass, analyzers)
	for i := range res.Raw {
		res.Raw[i].Position.Filename = rootRel(root, res.Raw[i].Position.Filename)
	}
	res.Directives = CollectDirectives(rp.pass)
	for i := range res.Directives {
		res.Directives[i].Position.Filename = rootRel(root, res.Directives[i].Position.Filename)
	}
	return res
}

// rootRel rewrites an absolute filename to a slash-separated
// module-root-relative one (left untouched if outside the root).
func rootRel(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

func firstErr(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return errs[0]
}

// goSourceDirs lists directories under root holding .go files, skipping
// hidden dirs, testdata and vendor trees.
func goSourceDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// moduleImporter resolves module-internal paths to freshly checked
// packages and everything else through the standard importers. All
// methods are safe for concurrent use: the driver type-checks
// packages in parallel, and go/types calls Import from those
// concurrent checks.
type moduleImporter struct {
	mu     sync.Mutex
	module map[string]*types.Package
	gc     types.Importer
	src    types.Importer
	cache  map[string]*types.Package
}

func newModuleImporter(fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		module: map[string]*types.Package{},
		gc:     importer.Default(),
		src:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*types.Package{},
	}
}

// publish registers a freshly checked in-module package.
func (m *moduleImporter) publish(path string, pkg *types.Package) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.module[path] = pkg
}

// Import implements types.Importer. The single lock serializes the
// underlying gc/source importers, which are not safe for concurrent
// use; module-internal lookups ride the same lock.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.module[path]; ok {
		return p, nil
	}
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	p, err := m.gc.Import(path)
	if err != nil || p == nil || !p.Complete() {
		// Fall back to type-checking the dependency from source (slower
		// but independent of compiled export data).
		var srcErr error
		p, srcErr = m.src.Import(path)
		if srcErr != nil {
			if err == nil {
				err = srcErr
			}
			return nil, fmt.Errorf("lint: import %q: %v", path, err)
		}
	}
	m.cache[path] = p
	return p, nil
}
