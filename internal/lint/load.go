package lint

// A deliberately small module loader: modlint must not depend on
// golang.org/x/tools, so packages are discovered by walking the module
// tree, parsed with go/parser, and type-checked in dependency order with
// go/types. Imports inside the module resolve to the freshly checked
// packages; standard-library imports resolve through go/importer (compiled
// export data when available, source otherwise).

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the module-relative import path; external test
	// packages carry a trailing "_test".
	ImportPath string
	Dir        string
	Pass       *Pass
	// TypeErrors holds type-checker soft failures. Analysis still runs
	// (go/types recovers well), but callers should surface them.
	TypeErrors []error
}

// FindModuleRoot walks up from dir to the nearest go.mod, returning the
// root directory and the module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			mp := parseModulePath(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("lint: no module line in %s", gm)
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod text.
func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p
			}
			return rest
		}
	}
	return ""
}

// LoadModule parses and type-checks every package under root (module path
// modPath), returning packages in dependency order. In-package test files
// are included with their package; external _test packages are loaded as
// separate packages checked last.
func LoadModule(root, modPath string) ([]*Package, error) {
	fset := token.NewFileSet()
	dirs, err := goSourceDirs(root)
	if err != nil {
		return nil, err
	}

	type rawPkg struct {
		importPath string
		dir        string
		files      []*ast.File
		imports    map[string]bool
		external   bool // external test package (name ends in _test)
	}
	var raws []*rawPkg
	byPath := map[string]*rawPkg{}

	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		// Group files by package name: the primary package (plus its
		// in-package tests) and at most one external test package.
		groups := map[string][]*ast.File{}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", e.Name(), err)
			}
			groups[f.Name.Name] = append(groups[f.Name.Name], f)
		}
		for name, files := range groups {
			rp := &rawPkg{dir: dir, files: files, imports: map[string]bool{}}
			if strings.HasSuffix(name, "_test") {
				rp.importPath = importPath + "_test"
				rp.external = true
			} else {
				rp.importPath = importPath
			}
			for _, f := range files {
				for _, imp := range f.Imports {
					p, err := strconv.Unquote(imp.Path.Value)
					if err == nil {
						rp.imports[p] = true
					}
				}
			}
			raws = append(raws, rp)
			if !rp.external {
				byPath[rp.importPath] = rp
			}
		}
	}

	// Topologically order the in-module packages; external test packages
	// go last (nothing can import them).
	sort.Slice(raws, func(i, j int) bool { return raws[i].importPath < raws[j].importPath })
	var order []*rawPkg
	state := map[*rawPkg]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(rp *rawPkg) error
	visit = func(rp *rawPkg) error {
		switch state[rp] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", rp.importPath)
		case 2:
			return nil
		}
		state[rp] = 1
		deps := make([]string, 0, len(rp.imports))
		for p := range rp.imports {
			deps = append(deps, p)
		}
		sort.Strings(deps)
		for _, p := range deps {
			if dep, ok := byPath[p]; ok && dep != rp {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[rp] = 2
		order = append(order, rp)
		return nil
	}
	for _, rp := range raws {
		if !rp.external {
			if err := visit(rp); err != nil {
				return nil, err
			}
		}
	}
	for _, rp := range raws {
		if rp.external {
			order = append(order, rp)
		}
	}

	imp := newModuleImporter(fset)
	var out []*Package
	for _, rp := range order {
		pkg := &Package{ImportPath: rp.importPath, Dir: rp.dir}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(rp.importPath, fset, rp.files, info)
		if tpkg == nil {
			return nil, fmt.Errorf("lint: type-check %s failed: %v", rp.importPath, firstErr(pkg.TypeErrors))
		}
		pkg.Pass = &Pass{Fset: fset, Files: rp.files, Pkg: tpkg, Info: info}
		if !rp.external {
			imp.module[rp.importPath] = tpkg
		}
		out = append(out, pkg)
	}
	return out, nil
}

func firstErr(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return errs[0]
}

// goSourceDirs lists directories under root holding .go files, skipping
// hidden dirs, testdata and vendor trees.
func goSourceDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// moduleImporter resolves module-internal paths to freshly checked
// packages and everything else through the standard importers.
type moduleImporter struct {
	module map[string]*types.Package
	gc     types.Importer
	src    types.Importer
	cache  map[string]*types.Package
}

func newModuleImporter(fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		module: map[string]*types.Package{},
		gc:     importer.Default(),
		src:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*types.Package{},
	}
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.module[path]; ok {
		return p, nil
	}
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	p, err := m.gc.Import(path)
	if err != nil || p == nil || !p.Complete() {
		// Fall back to type-checking the dependency from source (slower
		// but independent of compiled export data).
		var srcErr error
		p, srcErr = m.src.Import(path)
		if srcErr != nil {
			if err == nil {
				err = srcErr
			}
			return nil, fmt.Errorf("lint: import %q: %v", path, err)
		}
	}
	m.cache[path] = p
	return p, nil
}
