package lint

// lockcopy: by-value copies and struct-literal escapes of types that
// contain sync.Mutex / sync.RWMutex (or other no-copy sync primitives).
//
// The server and watch layers guard kinetic state (watcher sessions, the
// subscriber set, DB snapshots-in-progress) with mutexes embedded in
// structs. Copying such a value forks the lock from the state it guards:
// the copy compiles, races, and only the race detector (sometimes)
// notices. This is go vet's copylocks check re-grounded in this repo's
// types, extended to flag struct-literal escapes of guarded values.

import (
	"go/ast"
	"go/types"
)

// LockCopy is the lock-copy analyzer.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "flags by-value copies and literal escapes of lock-containing types",
	Run:  runLockCopy,
}

// noCopySyncTypes are the sync primitives that must never be copied after
// first use.
var noCopySyncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

func runLockCopy(pass *Pass) []Diagnostic {
	var out []Diagnostic
	report := func(pos ast.Node, format string, args ...interface{}) {
		out = append(out, Diag(pos.Pos(), format, args...))
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(pass, n.Recv, "receiver", report)
				checkFieldList(pass, n.Type.Params, "parameter", report)
			case *ast.FuncLit:
				checkFieldList(pass, n.Type.Params, "parameter", report)
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if t := lockPath(pass, pass.TypeOf(res)); t != "" && copiesExisting(res) {
						report(res, "return copies %s, which contains %s; return a pointer",
							types.ExprString(res), t)
					}
				}
			case *ast.CallExpr:
				if isTypeExpr(pass, n.Fun) {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					if t := lockPath(pass, pass.TypeOf(arg)); t != "" {
						report(arg, "call passes %s by value, which contains %s; pass a pointer",
							types.ExprString(arg), t)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !copiesExisting(rhs) {
						continue
					}
					if i < len(n.Lhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if t := lockPath(pass, pass.TypeOf(rhs)); t != "" {
						report(rhs, "assignment copies %s, which contains %s; use a pointer",
							types.ExprString(rhs), t)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if t := lockPath(pass, pass.TypeOf(v)); t != "" && copiesExisting(v) {
						report(v, "composite literal copies %s, which contains %s; store a pointer",
							types.ExprString(v), t)
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := lockPath(pass, pass.TypeOf(n.Value)); t != "" {
						report(n.Value, "range copies elements containing %s; range over indices or pointers", t)
					}
				}
			}
			return true
		})
	}
	return out
}

// checkFieldList flags by-value lock-containing receivers/parameters.
func checkFieldList(pass *Pass, fl *ast.FieldList, kind string, report func(ast.Node, string, ...interface{})) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		if t := lockPath(pass, pass.TypeOf(f.Type)); t != "" {
			name := types.ExprString(f.Type)
			report(f, "%s of type %s is passed by value but contains %s; use a pointer", kind, name, t)
		}
	}
}

// copiesExisting reports whether evaluating e copies an already-live
// value (as opposed to constructing a fresh one, which is how such values
// are born). Fresh composite literals and nil-ish expressions are fine.
func copiesExisting(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return copiesExisting(e.X)
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.CallExpr:
		// The copy is reported at the callee's return site; a second
		// report here would double-count.
		return false
	default:
		return false
	}
}

// lockPath reports a human-readable path to the first no-copy sync
// primitive contained by value in t ("" if none): e.g. "sync.Mutex" or
// "watcher.mu (sync.Mutex)".
func lockPath(pass *Pass, t types.Type) string {
	return lockPathRec(t, map[types.Type]bool{})
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && noCopySyncTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := lockPathRec(f.Type(), seen); p != "" {
				if f.Embedded() {
					return p
				}
				return f.Name() + " (" + p + ")"
			}
		}
	case *types.Array:
		return lockPathRec(u.Elem(), seen)
	}
	// Pointers, slices, maps, chans and interfaces share, not copy.
	return ""
}

// isTypeExpr reports whether e denotes a type (a conversion target).
func isTypeExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsType()
}
