package lint

import "testing"

func TestLockCopy(t *testing.T) {
	checkFixture(t, LockCopy, `package fixture

import "sync"

type state struct {
	mu sync.Mutex
	n  int
}

type wrapper struct {
	st state
}

func byValueParam(s state) int { // want "parameter of type state"
	return s.n
}

func ptrParamOK(s *state) int { return s.n }

func (s state) valueRecv() int { // want "receiver of type state"
	return s.n
}

func (s *state) ptrRecvOK() int { return s.n }

func copyAssign(s *state) {
	c := *s // want "assignment copies"
	c.n++
}

func freshLiteralOK() *state {
	s := state{n: 1}
	return &s
}

func literalEscape(s *state) wrapper {
	return wrapper{st: *s} // want "composite literal copies"
}

func returnCopy(s *state) state {
	return *s // want "return copies"
}

func returnPtrOK(s *state) *state { return s }

func callByValue(s *state) int {
	return byValueParam(*s) // want "call passes"
}

func rangeCopy(ss []state) int {
	tot := 0
	for _, s := range ss { // want "range copies"
		tot += s.n
	}
	return tot
}

func rangePtrOK(ss []*state) int {
	tot := 0
	for _, s := range ss {
		tot += s.n
	}
	return tot
}

func annotatedOK(s *state) {
	c := *s //modlint:allow lockcopy -- fixture: pre-use copy
	c.n++
}
`)
}

// TestLockCopyEmbedded covers locks reached through embedding and arrays.
func TestLockCopyEmbedded(t *testing.T) {
	checkFixture(t, LockCopy, `package fixture

import "sync"

type embedded struct {
	sync.RWMutex
	n int
}

type arrayed struct {
	cells [4]embedded
}

func copyEmbedded(e *embedded) embedded {
	return *e // want "return copies"
}

func copyArrayed(a *arrayed) {
	c := *a // want "assignment copies"
	_ = c.cells
}

func sharerOK(a *arrayed) *arrayed { return a }
`)
}
