package lint

// poolescape: a sync.Pool.Get value that escapes the function that got
// it, or is touched after being Put back.
//
// The zero-alloc hot paths (the journal's pooled encode scratch, the
// sweep's pooled difference curves) only stay correct if a pooled value
// is private to one Get..Put window: once Put returns it, another
// goroutine's Get may own the same object, so a retained reference is a
// data race whose symptom is corrupted journal bytes or a wrong curve —
// not a crash. The race detector only catches it when two owners
// actually collide; this check catches the pattern.
//
// Tracked: variables bound directly from pool.Get() (possibly through a
// type assertion). Reported:
//
//   - returning the value (or anything containing it),
//   - storing it into a field, element, pointed-to location or global,
//     unless the stored expression has basic type (a value copy),
//   - sending it on a channel,
//   - handing it to a goroutine,
//   - any use lexically after a non-deferred pool.Put(v).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape is the pooled-value escape analyzer.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "flags sync.Pool.Get values that escape their function or are used after Put",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) []Diagnostic {
	var out []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				out = append(out, checkPoolBindings(pass, body)...)
			}
			return true
		})
	}
	return out
}

// poolBinding is one `v := pool.Get()` in a function.
type poolBinding struct {
	obj  types.Object
	name string
}

// checkPoolBindings finds Get-bindings made directly in body (not in
// nested literals — those are found by the caller's walk) and checks
// every use of each bound object anywhere under body, nested literals
// included: a closure retaining the value past Put is exactly the bug.
func checkPoolBindings(pass *Pass, body *ast.BlockStmt) []Diagnostic {
	var bindings []poolBinding
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isPoolGet(pass, rhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				bindings = append(bindings, poolBinding{obj: obj, name: id.Name})
			}
		}
		return true
	})
	var out []Diagnostic
	for _, b := range bindings {
		out = append(out, checkPoolUse(pass, body, b)...)
	}
	return out
}

// isPoolGet reports whether e is (*sync.Pool).Get(), possibly wrapped
// in a type assertion or parens.
func isPoolGet(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	return fn != nil && fn.FullName() == "(*sync.Pool).Get"
}

// checkPoolUse applies the escape and use-after-Put rules for one
// binding.
func checkPoolUse(pass *Pass, body *ast.BlockStmt, b poolBinding) []Diagnostic {
	uses := func(n ast.Node) bool { return referencesObj(pass, n, b.obj) }

	// The earliest non-deferred Put(v): uses past it are reported.
	putEnd := token.Pos(0)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.FullName() != "(*sync.Pool).Put" {
			return true
		}
		if len(call.Args) != 1 || !uses(call.Args[0]) {
			return true
		}
		for _, anc := range stack {
			if _, ok := anc.(*ast.DeferStmt); ok {
				return true // deferred Put runs at exit; later uses are fine
			}
		}
		if putEnd == 0 || call.End() < putEnd {
			putEnd = call.End()
		}
		return true
	})

	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		out = append(out, Diag(pos, format, args...))
	}
	// Return statements of the binding function only (a nested literal's
	// return leaves the literal, not the pool window).
	ownReturns(body, func(ret *ast.ReturnStmt) {
		for _, res := range ret.Results {
			if uses(res) {
				report(res.Pos(), "pooled value %s escapes via return; pool ownership ends at Put", b.name)
			}
		}
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !uses(rhs) {
					continue
				}
				if !escapingLHS(pass, n.Lhs[i]) {
					continue
				}
				if t := pass.TypeOf(rhs); t != nil {
					if _, basic := t.Underlying().(*types.Basic); basic {
						continue // a scalar copied out of the pooled value is safe
					}
				}
				report(rhs.Pos(), "pooled value %s is stored into %s and outlives its Get..Put window",
					b.name, types.ExprString(n.Lhs[i]))
			}
		case *ast.SendStmt:
			if uses(n.Value) {
				report(n.Value.Pos(), "pooled value %s is sent on a channel; the receiver outlives Put", b.name)
			}
		case *ast.GoStmt:
			if uses(n.Call) {
				report(n.Call.Pos(), "pooled value %s is captured by a goroutine; it may run after Put", b.name)
			}
		case *ast.Ident:
			if putEnd != 0 && n.Pos() > putEnd && pass.Info.Uses[n] == b.obj {
				report(n.Pos(), "pooled value %s is used after Put; another goroutine's Get may own it now", b.name)
			}
		}
		return true
	})
	return out
}

// ownReturns visits the return statements belonging to body itself,
// skipping nested function literals.
func ownReturns(body *ast.BlockStmt, visit func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			visit(ret)
		}
		return true
	})
}

// escapingLHS reports whether assigning to lhs stores beyond the local
// frame: a field, an element, a pointed-to location, or a package-level
// variable.
func escapingLHS(pass *Pass, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level variable
		}
	}
	return false
}

// referencesObj reports whether any identifier under n resolves to obj.
func referencesObj(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
