package lint

import "testing"

func TestPoolEscapePositive(t *testing.T) {
	checkFixture(t, PoolEscape, `package fixture

import "sync"

type scratch struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(scratch) }}

type holder struct{ s *scratch }

func returned() *scratch {
	s := pool.Get().(*scratch)
	return s // want "escapes via return"
}

func stored(h *holder) {
	s := pool.Get().(*scratch)
	h.s = s // want "stored into h.s"
	pool.Put(s)
}

func sent(ch chan *scratch) {
	s := pool.Get().(*scratch)
	ch <- s // want "sent on a channel"
}

func goroutine() {
	s := pool.Get().(*scratch)
	go func() { // want "captured by a goroutine"
		s.b = nil
	}()
}

func useAfterPut() int {
	s := pool.Get().(*scratch)
	pool.Put(s)
	n := len(s.b) // want "used after Put"
	return n
}
`)
}

func TestPoolEscapeNegative(t *testing.T) {
	checkFixture(t, PoolEscape, `package fixture

import (
	"bytes"
	"encoding/json"
	"sync"
)

type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	b := &encBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

type sink struct{ n int }

// journalAppend is the journal's real pattern: encode into pooled
// scratch, copy the bytes out under a lock, put the scratch back.
func journalAppend(w interface{ Write([]byte) (int, error) }, v any) error {
	b := encPool.Get().(*encBuf)
	b.buf.Reset()
	err := b.enc.Encode(v)
	if err == nil {
		_, err = w.Write(b.buf.Bytes())
	}
	encPool.Put(b)
	return err
}

// deferredPut keeps using the value up to exit; the deferred Put runs
// after every use.
func deferredPut(s *sink) {
	b := encPool.Get().(*encBuf)
	defer encPool.Put(b)
	b.buf.Reset()
	s.n = b.buf.Len() // scalar copy out of the pooled value: safe
}
`)
}

func TestPoolEscapeSuppressed(t *testing.T) {
	findings := lintFixture(t, PoolEscape, `package fixture

import "sync"

type scratch struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(scratch) }}

// warm hands freshly allocated values to the pool at startup; the
// "escape" is a deliberate ownership transfer before any Get.
func warm() *scratch {
	s := pool.Get().(*scratch)
	return s //modlint:allow poolescape -- startup warm-up: caller re-Puts before concurrent use
}
`)
	if len(findings) != 0 {
		t.Fatalf("suppressed fixture produced findings: %v", findings)
	}
}
