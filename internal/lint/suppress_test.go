package lint

// Tests for the suppression scanner itself: block-comment directives,
// multi-line statement coverage, and the used[] vector that feeds the
// driver's stale-suppression audit.

import "testing"

func TestSuppressBlockComment(t *testing.T) {
	findings := lintFixture(t, FloatCmp, `package fixture

func trailing(a, b float64) bool {
	return a == b /* modlint:allow floatcmp -- fixture: exact by construction */
}

func above(a float64) bool {
	/* modlint:allow floatcmp -- fixture: IEEE sentinel compare */
	return a != 0
}
`)
	if len(findings) != 0 {
		t.Fatalf("block-comment directives not honored: %v", findings)
	}
}

// TestSuppressMultiLineStatement: a directive attached to the opening
// line of a wrapped statement must cover findings on its continuation
// lines.
func TestSuppressMultiLineStatement(t *testing.T) {
	findings := lintFixture(t, FloatCmp, `package fixture

func any3(a, b, c, d float64) bool {
	//modlint:allow floatcmp -- fixture: all three compares are exact sentinels
	eq := a == b ||
		a == c ||
		a == d
	return eq
}
`)
	if len(findings) != 0 {
		t.Fatalf("multi-line statement coverage failed: %v", findings)
	}
}

// TestSuppressMultiLineDoesNotBlanketBlocks: a directive on an if/for
// opening line must NOT swallow findings inside the block's body —
// only simple statements extend coverage.
func TestSuppressMultiLineDoesNotBlanketBlocks(t *testing.T) {
	findings := lintFixture(t, FloatCmp, `package fixture

func guarded(a, b float64) bool {
	//modlint:allow floatcmp -- covers only the if header below
	if a == b {
		return b != 0 // must still be reported
	}
	return false
}
`)
	if len(findings) != 1 {
		t.Fatalf("want exactly the body finding to survive, got %v", findings)
	}
	if findings[0].Position.Line != 6 {
		t.Fatalf("surviving finding at line %d, want 6: %v", findings[0].Position.Line, findings[0])
	}
}

func TestSuppressAllKeyword(t *testing.T) {
	findings := lintFixture(t, FloatCmp, `package fixture

func anything(a, b float64) bool {
	return a == b //modlint:allow all -- fixture: blanket escape
}
`)
	if len(findings) != 0 {
		t.Fatalf("'all' directive not honored: %v", findings)
	}
}

func TestSuppressWrongAnalyzerDoesNotApply(t *testing.T) {
	findings := lintFixture(t, FloatCmp, `package fixture

func mismatch(a, b float64) bool {
	return a == b //modlint:allow errdrop -- names the wrong analyzer
}
`)
	if len(findings) != 1 {
		t.Fatalf("directive for a different analyzer must not suppress: %v", findings)
	}
}

// TestSuppressUsedVector: ApplySuppressions reports which directives
// matched a finding; unmatched ones are the stale-audit input.
func TestSuppressUsedVector(t *testing.T) {
	src := `package fixture

func live(a, b float64) bool {
	return a == b //modlint:allow floatcmp -- matches a real finding
}

func stale(a, b int) bool {
	return a == b //modlint:allow floatcmp -- ints: nothing to suppress
}
`
	pass := typeCheckFixture(t, "fixture", src)
	raw := RunRaw(pass, []*Analyzer{FloatCmp})
	dirs := CollectDirectives(pass)
	if len(dirs) != 2 {
		t.Fatalf("want 2 directives, got %d: %v", len(dirs), dirs)
	}
	kept, used := ApplySuppressions(raw, dirs)
	if len(kept) != 0 {
		t.Fatalf("float finding should be suppressed, got %v", kept)
	}
	if !used[0] {
		t.Errorf("directive at line %d matched a finding but is marked stale", dirs[0].Position.Line)
	}
	if used[1] {
		t.Errorf("directive at line %d matched nothing but is marked used", dirs[1].Position.Line)
	}
	if dirs[1].Rationale != "ints: nothing to suppress" {
		t.Errorf("rationale parsed as %q", dirs[1].Rationale)
	}
}
