package lint

// syncorder: the PR 4 checkpoint protocol — tmp + fsync + rename +
// dir-fsync, and "never ack before the covering fsync" — encoded as a
// checkable rule. It runs only over the durability packages
// (internal/durable and internal/vfs); elsewhere the vocabulary
// (Create/Sync/Rename/SyncDir on a filesystem seam) doesn't apply and
// the check stays silent.
//
// Four rules:
//
//  1. rename-before-sync: a Rename call preceded in the same function
//     by a write (Create/Append/Write/WriteString) with no Sync between
//     the last write and the rename. Publishing an unsynced file is the
//     crash window the atomic-write dance exists to close.
//  2. rename-without-dirsync: a Rename with no SyncDir after it in the
//     same function. The rename itself is not durable until the
//     directory entry is — a crash can un-publish the manifest.
//  3. sync-error-dropped: discarding the error of Sync, SyncDir, Flush,
//     Rotate or SwapWriter (`_ =` or a bare call statement). On the
//     durability path a swallowed sync outcome can turn into a false
//     ack; every deliberate swallow must carry a justified
//     //modlint:allow syncorder annotation.
//  4. ack-before-fsync: advancing the group-commit `synced` watermark
//     outside an `err == nil` guard. The watermark IS the ack: moving
//     it without inspecting the fsync outcome breaks acked ⇒ recovered.
//
// Functions themselves named after the wrapped op (e.g. the vfs.OS
// Rename forwarder and the fault-injection wrappers) are exempt from
// rules 1–2: they *are* the primitive, not a protocol step.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SyncOrder is the durability-ordering analyzer.
var SyncOrder = &Analyzer{
	Name: "syncorder",
	Doc:  "flags fsync-ordering violations of the checkpoint protocol (durable/vfs packages only)",
	Run:  runSyncOrder,
}

// syncOrderApplies gates the analyzer to the durability packages:
// internal/mod is included because the journal writer (JSON and binary
// framing) lives there — a dropped Flush/Rotate error on the journal
// is exactly the ack-without-durability bug the analyzer exists for.
func syncOrderApplies(pkgPath string) bool {
	pkgPath = strings.TrimSuffix(pkgPath, "_test")
	return strings.HasSuffix(pkgPath, "internal/durable") ||
		strings.HasSuffix(pkgPath, "internal/vfs") ||
		strings.HasSuffix(pkgPath, "internal/mod")
}

// syncWriteNames are the calls that put bytes into a file that a later
// Rename would publish.
var syncWriteNames = map[string]bool{
	"Create": true, "Append": true, "Write": true, "WriteString": true,
}

// syncDropNames are the durability-path calls whose error must not be
// discarded (rule 3).
var syncDropNames = map[string]bool{
	"Sync": true, "SyncDir": true, "Flush": true, "Rotate": true,
	"RotateBinary": true, "rotate": true, "SwapWriter": true,
}

func runSyncOrder(pass *Pass) []Diagnostic {
	if !syncOrderApplies(pass.Pkg.Path()) {
		return nil
	}
	var out []Diagnostic
	for _, file := range pass.Files {
		// Rules 1–2 are per-function; collect named functions and
		// literals alike.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && !syncOrderExemptFunc(n.Name.Name) {
					out = append(out, checkRenameOrder(pass, n.Body)...)
				}
				return true
			case *ast.FuncLit:
				out = append(out, checkRenameOrder(pass, n.Body)...)
			}
			return true
		})
		out = append(out, checkSyncErrDrops(pass, file)...)
		out = append(out, checkAckGuard(pass, file)...)
	}
	return out
}

// syncOrderExemptFunc exempts primitive forwarders from rules 1–2.
func syncOrderExemptFunc(name string) bool {
	return name == "Rename" || name == "Remove" || name == "Truncate"
}

// opCall is one ordered filesystem-ish call in a function.
type opCall struct {
	pos  token.Pos
	name string
}

// checkRenameOrder applies rules 1 (rename-before-sync) and 2
// (rename-without-dirsync) to one function body. Ordering is lexical —
// the durability code is written straight-line by design, and the
// crash matrix keeps it honest at runtime; this check catches the
// protocol being edited out of order.
func checkRenameOrder(pass *Pass, body *ast.BlockStmt) []Diagnostic {
	var ops []opCall
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals get their own lexical-order scan
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeSimpleName(call)
		switch {
		case syncWriteNames[name]:
			ops = append(ops, opCall{call.Pos(), "write"})
		case name == "Sync":
			ops = append(ops, opCall{call.Pos(), "sync"})
		case name == "SyncDir":
			ops = append(ops, opCall{call.Pos(), "syncdir"})
		case name == "Rename":
			ops = append(ops, opCall{call.Pos(), "rename"})
		}
		return true
	})
	var out []Diagnostic
	for i, op := range ops {
		if op.name != "rename" {
			continue
		}
		// Rule 1: the latest write before this rename must be followed
		// by a Sync before the rename.
		lastWrite, lastSync := -1, -1
		for j := 0; j < i; j++ {
			switch ops[j].name {
			case "write":
				lastWrite = j
			case "sync":
				lastSync = j
			}
		}
		if lastWrite >= 0 && lastSync < lastWrite {
			out = append(out, Diag(op.pos,
				"Rename publishes a file written without an intervening Sync: a crash can expose unsynced contents"))
		}
		// Rule 2: some SyncDir must follow the rename.
		hasDirSync := false
		for j := i + 1; j < len(ops); j++ {
			if ops[j].name == "syncdir" {
				hasDirSync = true
				break
			}
		}
		if !hasDirSync {
			out = append(out, Diag(op.pos,
				"Rename without a following SyncDir: the new directory entry is not durable until the directory is fsynced"))
		}
	}
	return out
}

// checkSyncErrDrops applies rule 3 over a whole file: `_ = x.Sync()`
// and bare `x.Sync()` statements (and the other durability-path calls)
// discard the one bit the ack contract depends on.
func checkSyncErrDrops(pass *Pass, file *ast.File) []Diagnostic {
	var out []Diagnostic
	report := func(call *ast.CallExpr) {
		out = append(out, Diag(call.Pos(),
			"durability-path call %s discards its error: a swallowed sync outcome can become a false ack",
			types.ExprString(call.Fun)))
	}
	check := func(e ast.Expr) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return
		}
		name := calleeSimpleName(call)
		if !syncDropNames[name] {
			return
		}
		if !returnsError(pass, call, types.Universe.Lookup("error").Type()) {
			return
		}
		report(call)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			check(n.X)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						check(rhs)
					}
				}
			}
		}
		return true
	})
	return out
}

// checkAckGuard applies rule 4: an assignment to a field named `synced`
// (the group-commit durability watermark) must sit inside an if whose
// condition tests an error against nil — the fsync outcome must gate
// the ack.
func checkAckGuard(pass *Pass, file *ast.File) []Diagnostic {
	var out []Diagnostic
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "synced" {
				continue
			}
			if _, ok := pass.Info.Selections[sel]; !ok {
				continue
			}
			if !guardedByErrNilCheck(pass, stack) {
				out = append(out, Diag(lhs.Pos(),
					"synced watermark advanced outside an `err == nil` guard: the ack must follow a successful fsync"))
			}
		}
		return true
	})
	return out
}

// guardedByErrNilCheck reports whether any enclosing if-condition in
// the node stack compares an error-typed expression with nil.
func guardedByErrNilCheck(pass *Pass, stack []ast.Node) bool {
	errType := types.Universe.Lookup("error").Type()
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(x ast.Node) bool {
			if found {
				return false
			}
			be, ok := x.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, side := range [2]ast.Expr{be.X, be.Y} {
				if t := pass.TypeOf(side); t != nil && types.Identical(t, errType) {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// calleeSimpleName returns the bare method/function name of a call
// (the selector's Sel, or the identifier itself).
func calleeSimpleName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}
