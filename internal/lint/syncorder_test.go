package lint

import "testing"

// syncorder only fires inside the durability packages; the fixtures
// type-check under an import path with the internal/durable suffix to
// pass the gate, and one control fixture proves any other path is
// silent.

const syncOrderPkg = "repro/internal/durable"

func TestSyncOrderRenameRules(t *testing.T) {
	checkFixtureAt(t, SyncOrder, syncOrderPkg, `package durable

type file interface {
	Write(p []byte) (int, error)
	Sync() error
}

type fsys interface {
	Create(name string) (file, error)
	Rename(old, new string) error
	SyncDir(dir string) error
}

// publishUnsynced skips the fsync between write and rename.
func publishUnsynced(fs fsys, tmp, final string) error {
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("manifest")); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil { // want "without an intervening Sync"
		return err
	}
	return fs.SyncDir(".")
}

// publishNoDirSync renames but never fsyncs the directory.
func publishNoDirSync(fs fsys, f file, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return fs.Rename(tmp, final) // want "without a following SyncDir"
}
`)
}

func TestSyncOrderErrDropAndAck(t *testing.T) {
	checkFixtureAt(t, SyncOrder, syncOrderPkg, `package durable

type file interface {
	Sync() error
	Flush() error
}

type committer struct {
	synced uint64
	err    error
}

func dropSync(f file) {
	_ = f.Sync() // want "discards its error"
}

func bareFlush(f file) {
	f.Flush() // want "discards its error"
}

func ackUnguarded(c *committer, f file, target uint64) {
	c.err = f.Sync()
	c.synced = target // want "watermark advanced outside"
}

func ackGuarded(c *committer, f file, target uint64) {
	if err := f.Sync(); err == nil {
		c.synced = target
	}
}
`)
}

func TestSyncOrderNegative(t *testing.T) {
	checkFixtureAt(t, SyncOrder, syncOrderPkg, `package durable

type file interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type fsys interface {
	Create(name string) (file, error)
	Rename(old, new string) error
	SyncDir(dir string) error
}

// writeFileAtomic is the canonical tmp+fsync+rename+dirsync dance the
// analyzer encodes; it must pass untouched.
func writeFileAtomic(fs fsys, dir, tmp, final string, data []byte) error {
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// Rename is a primitive forwarder: exempt from the ordering rules.
func Rename(fs fsys, old, new string) error {
	return fs.Rename(old, new)
}
`)
}

func TestSyncOrderGatedByPackagePath(t *testing.T) {
	// The same violations outside internal/durable / internal/vfs are
	// out of scope and must stay silent.
	findings := lintFixtureAt(t, SyncOrder, "repro/internal/server", `package server

type file interface{ Sync() error }

func dropSync(f file) {
	_ = f.Sync()
}
`)
	if len(findings) != 0 {
		t.Fatalf("syncorder fired outside durability packages: %v", findings)
	}
}

func TestSyncOrderSuppressed(t *testing.T) {
	findings := lintFixtureAt(t, SyncOrder, syncOrderPkg, `package durable

type file interface{ Sync() error }

func listenerPath(f file) {
	_ = f.Sync() //modlint:allow syncorder -- sticky error surfaced via JournalErr; listener must not block
}
`)
	if len(findings) != 0 {
		t.Fatalf("suppressed fixture produced findings: %v", findings)
	}
}
