package lint

// unlockpath: a sync.Mutex/RWMutex Lock() whose matching Unlock() is
// missing on some control-flow path to the function's normal exit.
//
// The engine holds 40+ non-deferred Lock() sites on hot paths (the
// journal append, the committer loop, the watch fan-out) where `defer`
// would either cost a closure per call or hold the lock across I/O the
// protocol wants outside it. Each of those sites is a hand-checked
// promise that every branch unlocks; this analyzer mechanizes the check
// with the per-function CFG from cfg.go. A path that ends in panic,
// os.Exit or testing's Fatal family is not an exit — the issue is
// specifically a *panic-free* early return leaving the lock held, which
// deadlocks the next contender instead of crashing loudly.
//
// Matching is by receiver expression (types.ExprString) and mode:
// mu.Lock pairs with mu.Unlock, mu.RLock with mu.RUnlock. A deferred
// unlock — `defer mu.Unlock()` or a deferred closure whose body
// unlocks — releases every path that executes the defer. Helpers that
// intentionally return holding the lock must carry a
// //modlint:allow unlockpath annotation saying who unlocks.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnlockPath is the lock-release path analyzer.
var UnlockPath = &Analyzer{
	Name: "unlockpath",
	Doc:  "flags Lock() calls with a path to return that never calls the matching Unlock()",
	Run:  runUnlockPath,
}

// lockKey identifies one mutex in one function: receiver expression
// text plus read/write mode.
type lockKey struct {
	recv string
	read bool
}

// lockFacts are the per-node lock effects.
type lockFacts struct {
	locks, unlocks, deferred []lockKey
}

func runUnlockPath(pass *Pass) []Diagnostic {
	var out []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				out = append(out, checkFuncLocks(pass, body)...)
			}
			return true
		})
	}
	return out
}

// checkFuncLocks analyzes one function body. Nested function literals
// are skipped here (ast.Inspect in the caller visits them separately);
// only deferred closures contribute, as deferred unlocks.
func checkFuncLocks(pass *Pass, body *ast.BlockStmt) []Diagnostic {
	g := buildCFG(pass, body)
	facts := make(map[*cfgNode]*lockFacts, len(g.nodes))
	hasLock := false
	for _, n := range g.nodes {
		f := nodeLockFacts(pass, n)
		if f != nil {
			facts[n] = f
			if len(f.locks) > 0 {
				hasLock = true
			}
		}
	}
	if !hasLock {
		return nil
	}
	var out []Diagnostic
	for _, n := range g.nodes {
		f := facts[n]
		if f == nil {
			continue
		}
		for _, k := range f.locks {
			if pos, leaks := pathLeaks(g, n, k, facts); leaks {
				lock, unlock := "Lock", "Unlock"
				if k.read {
					lock, unlock = "RLock", "RUnlock"
				}
				out = append(out, Diag(pos,
					"%s.%s() is not released on every path: a return is reachable without %s.%s()",
					k.recv, lock, k.recv, unlock))
			}
		}
	}
	return out
}

// pathLeaks DFSes from the lock node's successors; reaching the normal
// exit before an unlock (direct or deferred) of k is a leak. Returns
// the lock call's position for reporting.
func pathLeaks(g *funcCFG, lockNode *cfgNode, k lockKey, facts map[*cfgNode]*lockFacts) (pos token.Pos, leaks bool) {
	pos = nodePos(lockNode)
	seen := map[*cfgNode]bool{}
	stack := append([]*cfgNode{}, lockNode.succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if n.exit {
			return pos, true
		}
		if f := facts[n]; f != nil {
			if containsKey(f.unlocks, k) || containsKey(f.deferred, k) {
				continue // this path releases; stop exploring it
			}
			if containsKey(f.locks, k) {
				continue // re-lock: a double-lock is not this check's report
			}
		}
		stack = append(stack, n.succs...)
	}
	return pos, false
}

func containsKey(ks []lockKey, k lockKey) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

// nodePos returns a reportable position for a node.
func nodePos(n *cfgNode) token.Pos {
	if n.stmt != nil {
		return n.stmt.Pos()
	}
	if n.expr != nil {
		return n.expr.Pos()
	}
	return token.NoPos
}

// nodeLockFacts extracts the lock effects of one node: Lock/Unlock
// calls in the node's own expressions (not inside nested function
// literals), plus deferred unlocks including `defer func() { ...
// mu.Unlock() ... }()`.
func nodeLockFacts(pass *Pass, n *cfgNode) *lockFacts {
	var f lockFacts
	add := func(call *ast.CallExpr) {
		if k, kind, ok := mutexCall(pass, call); ok {
			switch kind {
			case lockCall:
				f.locks = append(f.locks, k)
			case unlockCall:
				f.unlocks = append(f.unlocks, k)
			}
		}
	}
	if d, ok := n.stmt.(*ast.DeferStmt); ok {
		// A deferred unlock (direct or via closure body) releases every
		// path downstream of the defer statement.
		scanCalls(d.Call, func(call *ast.CallExpr) {
			if k, kind, ok := mutexCall(pass, call); ok && kind == unlockCall {
				f.deferred = append(f.deferred, k)
			}
		}, true)
		if len(f.deferred) == 0 {
			return nil
		}
		return &f
	}
	var root ast.Node
	switch {
	case n.stmt != nil:
		root = n.stmt
	case n.expr != nil:
		root = n.expr
	default:
		return nil
	}
	scanCalls(root, add, false)
	if len(f.locks) == 0 && len(f.unlocks) == 0 {
		return nil
	}
	return &f
}

// scanCalls visits every call under root. Nested function literals are
// skipped unless intoLits is set (deferred closures run at exit, so
// their unlocks count; a plain closure's body belongs to its own CFG).
func scanCalls(root ast.Node, visit func(*ast.CallExpr), intoLits bool) {
	ast.Inspect(root, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && !intoLits {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}

type mutexCallKind int

const (
	lockCall mutexCallKind = iota
	unlockCall
)

// mutexCall classifies a call as a sync mutex Lock/Unlock (write mode)
// or RLock/RUnlock (read mode), keyed by the receiver expression.
// Resolution goes through the type checker, so promoted methods of an
// embedded mutex match too, while unrelated Lock methods do not.
func mutexCall(pass *Pass, call *ast.CallExpr) (lockKey, mutexCallKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return lockKey{}, 0, false
	}
	var kind mutexCallKind
	var read bool
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		kind = lockCall
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		kind = unlockCall
	case "(*sync.RWMutex).RLock":
		kind, read = lockCall, true
	case "(*sync.RWMutex).RUnlock":
		kind, read = unlockCall, true
	default:
		return lockKey{}, 0, false
	}
	return lockKey{recv: types.ExprString(sel.X), read: read}, kind, true
}
