package lint

import "testing"

// Positive cases: early returns, branches and loops that leak a held
// lock on some path to a normal exit.
func TestUnlockPathPositive(t *testing.T) {
	checkFixture(t, UnlockPath, `package fixture

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func earlyReturn(b *box) int {
	b.mu.Lock() // want "not released on every path"
	if b.n > 0 {
		return b.n // leaks: no unlock on this branch
	}
	b.mu.Unlock()
	return 0
}

func branchOnly(b *box) {
	b.mu.Lock() // want "not released on every path"
	if b.n > 0 {
		b.mu.Unlock()
	}
	// fallthrough exit with the lock held when n <= 0
}

func readLeak(b *box) int {
	b.rw.RLock() // want "RUnlock"
	if b.n < 0 {
		return -1
	}
	b.rw.RUnlock()
	return b.n
}

func switchLeak(b *box, k int) {
	b.mu.Lock() // want "not released on every path"
	switch k {
	case 0:
		b.mu.Unlock()
	case 1:
		b.mu.Unlock()
	default:
		return // leaks
	}
}
`)
}

// Negative cases: every idiom the engine actually uses must stay
// silent — defer, deferred closures, unlock-then-return on every
// branch, cond-wait loops, and re-lock cycles inside a loop body.
func TestUnlockPathNegative(t *testing.T) {
	checkFixture(t, UnlockPath, `package fixture

import "sync"

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	want, resolved int
	closed bool
	n    int
}

func deferred(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func deferredClosure(b *box) int {
	b.mu.Lock()
	defer func() {
		b.n++
		b.mu.Unlock()
	}()
	return b.n
}

func allBranches(b *box) int {
	b.mu.Lock()
	if b.n > 0 {
		b.mu.Unlock()
		return 1
	}
	b.mu.Unlock()
	return 0
}

func committerLoop(b *box) {
	for {
		b.mu.Lock()
		for !b.closed && b.want <= b.resolved {
			b.cond.Wait()
		}
		if b.want <= b.resolved {
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()

		b.mu.Lock()
		b.resolved = b.want
		b.mu.Unlock()
	}
}

func readSide(b *box) int {
	b.rw.RLock()
	n := b.n
	b.rw.RUnlock()
	return n
}

func panicPathIsNotAnExit(b *box) {
	b.mu.Lock()
	if b.n < 0 {
		panic("negative") // dies loudly; not a silent leak
	}
	b.mu.Unlock()
}
`)
}

func TestUnlockPathSuppressed(t *testing.T) {
	findings := lintFixture(t, UnlockPath, `package fixture

import "sync"

type guard struct{ mu sync.Mutex }

// acquire intentionally returns holding the lock; release unlocks.
func (g *guard) acquire() {
	g.mu.Lock() //modlint:allow unlockpath -- lock helper: the caller pairs it with release()
}

func (g *guard) release() {
	g.mu.Unlock()
}
`)
	if len(findings) != 0 {
		t.Fatalf("suppressed fixture produced findings: %v", findings)
	}
}
