package lint

// waitforget: sync.WaitGroup bookkeeping that cannot balance, and
// goroutines whose error result vanishes.
//
// The shard fan-out and the workload replayers coordinate worker pools
// with function-local WaitGroups; the failure modes are all silent. An
// Add with no Done on any path hangs Wait forever (the committer
// shutdown path would deadlock); an Add with no Wait turns the group
// into dead weight and usually means the join was forgotten; and
// `go f()` where f returns an error is a goroutine whose failure is
// unobservable by construction — the errgroup pattern (collect into a
// channel or an error slot guarded by the group) is the fix.
//
// Scope is deliberately intra-procedural: the rules fire only for
// WaitGroups declared in the function being checked and never passed
// out of it. A WaitGroup field whose Add and Done live in different
// methods is a lifecycle the analyzer cannot see and stays silent.

import (
	"go/ast"
	"go/types"
)

// WaitForget is the WaitGroup/goroutine-error analyzer.
var WaitForget = &Analyzer{
	Name: "waitforget",
	Doc:  "flags WaitGroup.Add without Done/Wait pairing and goroutines whose error result is dropped",
	Run:  runWaitForget,
}

func runWaitForget(pass *Pass) []Diagnostic {
	var out []Diagnostic
	errType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, checkWaitGroups(pass, n.Body)...)
				}
			case *ast.GoStmt:
				if t := pass.TypeOf(n.Call); t != nil && tupleHasError(t, errType) {
					out = append(out, Diag(n.Pos(),
						"goroutine discards the error result of %s; collect it errgroup-style (channel or guarded slot)",
						calleeName(pass, n.Call)))
				}
			}
			return true
		})
	}
	return out
}

// tupleHasError reports whether a call's result type includes error.
func tupleHasError(t types.Type, errType types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// wgUsage tallies one WaitGroup's method calls within a function.
type wgUsage struct {
	obj     types.Object // the WaitGroup variable (function-local only)
	adds    []ast.Expr   // Add call positions
	dones   int
	waits   int
	escaped bool // address passed out, stored, or returned
}

// checkWaitGroups applies the Add/Done/Wait pairing rules to
// WaitGroups declared in body. The whole subtree, nested literals
// included, is scanned: the matching Done conventionally lives in the
// spawned goroutine's closure.
func checkWaitGroups(pass *Pass, body *ast.BlockStmt) []Diagnostic {
	usage := map[types.Object]*wgUsage{}
	track := func(obj types.Object) *wgUsage {
		u := usage[obj]
		if u == nil {
			u = &wgUsage{obj: obj}
			usage[obj] = u
		}
		return u
	}
	// Locals of type sync.WaitGroup (or *sync.WaitGroup) declared here.
	declared := map[types.Object]bool{}
	for id, obj := range pass.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || id.Pos() < body.Pos() || id.End() > body.End() {
			continue
		}
		if isWaitGroupType(v.Type()) {
			declared[v] = true
		}
	}
	if len(declared) == 0 {
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil {
				switch fn.FullName() {
				case "(*sync.WaitGroup).Add":
					if obj := wgReceiver(pass, n); obj != nil && declared[obj] {
						track(obj).adds = append(track(obj).adds, n.Fun)
					}
					return true
				case "(*sync.WaitGroup).Done":
					if obj := wgReceiver(pass, n); obj != nil && declared[obj] {
						track(obj).dones++
					}
					return true
				case "(*sync.WaitGroup).Wait":
					if obj := wgReceiver(pass, n); obj != nil && declared[obj] {
						track(obj).waits++
					}
					return true
				}
			}
			// Any other call receiving the WaitGroup (by address or
			// method value) makes its lifecycle non-local.
			for _, arg := range n.Args {
				if obj := waitGroupRef(pass, arg); obj != nil && declared[obj] {
					track(obj).escaped = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if obj := waitGroupRef(pass, rhs); obj != nil && declared[obj] {
					// Storing &wg (aliasing) escapes; wg := declarations
					// and var wg do not pass through here with a ref RHS.
					track(obj).escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := waitGroupRef(pass, res); obj != nil && declared[obj] {
					track(obj).escaped = true
				}
			}
		}
		return true
	})
	var out []Diagnostic
	for _, u := range usage {
		if u.escaped || len(u.adds) == 0 {
			continue
		}
		if u.dones == 0 {
			for _, add := range u.adds {
				out = append(out, Diag(add.Pos(),
					"%s.Add with no %s.Done anywhere in this function: Wait will hang forever",
					u.obj.Name(), u.obj.Name()))
			}
			continue
		}
		if u.waits == 0 {
			out = append(out, Diag(u.adds[0].Pos(),
				"WaitGroup %s is never waited on in this function: the goroutines it counts are never joined",
				u.obj.Name()))
		}
	}
	return out
}

// isWaitGroupType matches sync.WaitGroup and *sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// wgReceiver resolves the receiver variable of a WaitGroup method call
// when it is a plain identifier (possibly behind & or parens).
func wgReceiver(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return waitGroupRef(pass, sel.X)
}

// waitGroupRef resolves e to a WaitGroup-typed variable: wg, &wg, or a
// method value wg.Done.
func waitGroupRef(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		return waitGroupRef(pass, e.X)
	case *ast.SelectorExpr:
		// Method value (wg.Done passed as a func): the receiver escapes
		// knowledge of pairing just as passing &wg does.
		return waitGroupRef(pass, e.X)
	case *ast.Ident:
		if v, ok := pass.Info.Uses[e].(*types.Var); ok && isWaitGroupType(v.Type()) {
			return v
		}
	}
	return nil
}
