package lint

import "testing"

func TestWaitForgetPositive(t *testing.T) {
	checkFixture(t, WaitForget, `package fixture

import "sync"

func addNoDone(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		wg.Add(1) // want "no wg.Done"
		go f()
	}
	wg.Wait()
}

func addNoWait(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		wg.Add(1) // want "never waited on"
		f := f
		go func() {
			defer wg.Done()
			f()
		}()
	}
}

func fetch() error { return nil }

func dropErr() {
	go fetch() // want "discards the error result"
}

func dropErrMulti() {
	f := func() (int, error) { return 0, nil }
	go f() // want "discards the error result"
}
`)
}

func TestWaitForgetNegative(t *testing.T) {
	checkFixture(t, WaitForget, `package fixture

import "sync"

// balanced is the shard fan-out shape: Add before spawn, deferred
// Done inside, Wait at the join.
func balanced(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		wg.Add(1)
		f := f
		go func() {
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

// escaped: the group's lifecycle leaves the function; stay silent.
func escaped(spawn func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	wg.Add(1)
	spawn(&wg)
	wg.Wait()
}

// methodValue: passing wg.Done as a callback is also an escape.
func methodValue(after func(func())) {
	var wg sync.WaitGroup
	wg.Add(1)
	after(wg.Done)
	wg.Wait()
}

// errCollected: goroutine error is routed into a channel, not dropped.
func errCollected(f func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- f() }()
	return <-errc
}
`)
}

func TestWaitForgetSuppressed(t *testing.T) {
	findings := lintFixture(t, WaitForget, `package fixture

func ping() error { return nil }

func fireAndForget() {
	go ping() //modlint:allow waitforget -- best-effort wakeup: failure is retried by the next tick
}
`)
	if len(findings) != 0 {
		t.Fatalf("suppressed fixture produced findings: %v", findings)
	}
}
