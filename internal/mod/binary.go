package mod

// Binary persistence: a compact journal/snapshot/wire codec that can
// represent the engine's full value domain. encoding/json rejects the
// non-finite floats the model is built out of (a database seeded at
// tau = -Inf, open-ended trajectory pieces ending at +Inf, unbounded
// query horizons) and dominates the ingest profile; this codec stores
// raw IEEE-754 bits so every float round-trips by construction, and
// frames records with a length prefix plus a CRC so recovery can tell
// a torn tail from corruption without parsing heuristics.
//
// Journal stream layout (what Journal writes in binary mode and
// ReplayTolerantBinary reads):
//
//	header  = magic "MODJ" | version byte (1)
//	record  = uvarint len(payload) | payload | crc32c(payload) LE32
//	payload = kind byte | uvarint oid | tau bits LE64
//	        | uvarint len(A) | A bits LE64...
//	        | uvarint len(B) | B bits LE64...
//
// Snapshot layout (SaveBinary/LoadBinary):
//
//	magic "MODS" | version byte (2) | body | crc32c(body) LE32
//	body = uvarint dim | tau bits LE64
//	     | uvarint #objects | object...   (ascending OID)
//	     | uvarint #log     | payload...  (update payloads, unframed)
//	     | uvarint #bounds  | bound...    (version >= 2; ascending OID)
//	object = uvarint oid | uvarint #pieces | piece...
//	piece  = start bits LE64 | end bits LE64 | dim A bits | dim B bits
//	bound  = uvarint oid | vmax bits LE64
//
// Wire batch layout (EncodeUpdatesBinary/DecodeUpdatesBinary, the
// POST /update/batch binary body):
//
//	magic "MODU" | version byte (1) | record... (journal framing)
//
// The version byte is the migration story: readers reject versions they
// do not know, and the JSON formats remain readable forever (format is
// detected per file, never assumed), so a store can carry JSON segments
// written by an old binary next to binary segments written by this one.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/trajectory"
)

// binaryVersion is the current version byte of the journal and wire
// layouts. Adding the speed-bound update kind (payload layout unchanged,
// one more kind byte value) did not bump it: new readers accept the new
// kind, and the framing is identical.
const binaryVersion = 1

// snapVersion is the current version byte of the snapshot layout.
// Version 2 appends a speed-bounds section after the log; LoadBinary
// still reads version-1 snapshots (no bounds section) unchanged.
const snapVersion = 2

// BinaryJournalHeaderLen is the size of the header a binary journal
// segment starts with (magic + version).
const BinaryJournalHeaderLen = 5

// maxBinaryRecord bounds a framed record's payload so a corrupt length
// prefix cannot drive a giant allocation. Real records are tiny
// (tens of bytes for any sane dimension).
const maxBinaryRecord = 1 << 24

// BinaryUpdatesContentType is the Content-Type announcing a binary
// update batch on the ingest endpoint.
const BinaryUpdatesContentType = "application/x-mod-updates"

var (
	journalMagic = [4]byte{'M', 'O', 'D', 'J'}
	snapMagic    = [4]byte{'M', 'O', 'D', 'S'}
	wireMagic    = [4]byte{'M', 'O', 'D', 'U'}

	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

// BinaryJournalHeader returns the 5-byte header a fresh binary journal
// segment must start with. The durable store writes it immediately
// after creating a segment file, before any record can be appended.
func BinaryJournalHeader() []byte {
	return []byte{journalMagic[0], journalMagic[1], journalMagic[2], journalMagic[3], binaryVersion}
}

// JournalMagic returns the 4-byte magic prefix of binary journal
// segments, for format sniffing by tools that accept either codec.
func JournalMagic() []byte { return append([]byte(nil), journalMagic[:]...) }

// SnapshotMagic returns the 4-byte magic prefix of binary snapshots.
func SnapshotMagic() []byte { return append([]byte(nil), snapMagic[:]...) }

// appendFloat appends the raw IEEE-754 bits of v, little-endian.
func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// appendVec appends a length-prefixed vector as raw float bits.
func appendVec(buf []byte, v geom.Vec) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = appendFloat(buf, x)
	}
	return buf
}

// appendUpdatePayload appends the unframed payload encoding of u.
func appendUpdatePayload(buf []byte, u Update) []byte {
	buf = append(buf, byte(u.Kind))
	buf = binary.AppendUvarint(buf, uint64(u.O))
	buf = appendFloat(buf, u.Tau)
	buf = appendVec(buf, u.A)
	buf = appendVec(buf, u.B)
	return buf
}

// AppendUpdateRecord appends the framed record encoding of u
// (length prefix, payload, CRC) and returns the extended buffer. This
// is the journal's encode path: callers reuse buf across records so the
// steady state allocates nothing.
func AppendUpdateRecord(buf []byte, u Update) []byte {
	payload := appendUpdatePayload(nil, u)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
}

// errTruncated marks a decode that ran out of bytes mid-value.
var errTruncated = errors.New("mod: binary value truncated")

// binCursor walks a byte slice with bounds-checked primitive reads.
type binCursor struct {
	p []byte
}

func (c *binCursor) byte() (byte, error) {
	if len(c.p) < 1 {
		return 0, errTruncated
	}
	b := c.p[0]
	c.p = c.p[1:]
	return b, nil
}

func (c *binCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.p)
	if n <= 0 {
		return 0, errTruncated
	}
	c.p = c.p[n:]
	return v, nil
}

func (c *binCursor) float() (float64, error) {
	if len(c.p) < 8 {
		return 0, errTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.p))
	c.p = c.p[8:]
	return v, nil
}

func (c *binCursor) vec() (geom.Vec, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(c.p)/8) {
		return nil, errTruncated
	}
	v := make(geom.Vec, n)
	for i := range v {
		v[i], _ = c.float()
	}
	return v, nil
}

// decodeUpdatePayload decodes one unframed update payload. The whole
// slice must be consumed: trailing bytes in a CRC-valid record mean the
// writer and reader disagree about the format.
func decodeUpdatePayload(p []byte) (Update, error) {
	c := binCursor{p: p}
	kind, err := c.byte()
	if err != nil {
		return Update{}, err
	}
	if kind > byte(KindBound) {
		return Update{}, fmt.Errorf("mod: unknown binary update kind %d", kind)
	}
	oid, err := c.uvarint()
	if err != nil {
		return Update{}, err
	}
	tau, err := c.float()
	if err != nil {
		return Update{}, err
	}
	a, err := c.vec()
	if err != nil {
		return Update{}, err
	}
	b, err := c.vec()
	if err != nil {
		return Update{}, err
	}
	if len(c.p) != 0 {
		return Update{}, fmt.Errorf("mod: binary update has %d trailing bytes", len(c.p))
	}
	return Update{Kind: UpdateKind(kind), O: OID(oid), Tau: tau, A: a, B: b}, nil
}

// readUvarint reads a varint byte-by-byte from br, returning the number
// of bytes consumed. io.EOF with zero bytes consumed is a clean end of
// stream; a varint cut off mid-value returns io.ErrUnexpectedEOF.
func readUvarint(br *bufio.Reader) (uint64, int, error) {
	var v uint64
	var shift uint
	n := 0
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			if n == 0 {
				return 0, 0, io.EOF
			}
			return 0, n, io.ErrUnexpectedEOF
		}
		if err != nil {
			return 0, n, err
		}
		n++
		if shift >= 64 || (shift == 63 && b > 1) {
			return 0, n, fmt.Errorf("mod: binary length varint overflows")
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, n, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// ReplayTolerantBinary is ReplayTolerant for binary journal segments:
// it applies a binary journal stream to db with the same torn-tail
// semantics. A record cut off mid-frame at the end of the stream — or
// whose CRC fails with nothing after it — is the signature of a crash
// mid-append: it is dropped and reported in the stats. A CRC failure or
// undecodable record with further data after it is real corruption and
// aborts with an error. GoodBytes carries the same contract: truncating
// the segment there and appending fresh records yields a well-formed
// journal. A stream torn inside the 5-byte header reports GoodBytes 0;
// the store rewrites the header before appending.
func ReplayTolerantBinary(db *DB, r io.Reader) (ReplayStats, error) {
	var st ReplayStats
	br := bufio.NewReader(r)
	hdr := make([]byte, BinaryJournalHeaderLen)
	if n, err := io.ReadFull(br, hdr); err == io.EOF {
		return st, nil // empty segment: crash before the header write
	} else if err == io.ErrUnexpectedEOF {
		st.TornTail = true
		st.TailBytes = n
		return st, nil
	} else if err != nil {
		return st, fmt.Errorf("mod: binary journal header: %w", err)
	}
	if [4]byte(hdr[:4]) != journalMagic {
		return st, fmt.Errorf("mod: not a binary journal (magic %q)", hdr[:4])
	}
	if hdr[4] != binaryVersion {
		return st, fmt.Errorf("mod: binary journal version %d, this build reads %d", hdr[4], binaryVersion)
	}
	st.GoodBytes = BinaryJournalHeaderLen
	for {
		ln, lb, err := readUvarint(br)
		if err == io.EOF {
			return st, nil
		}
		if err == io.ErrUnexpectedEOF {
			st.TornTail = true
			st.TailBytes = lb
			return st, nil
		}
		if err != nil {
			return st, fmt.Errorf("mod: binary journal entry %d at byte %d: %w",
				st.Applied+st.Skipped, st.GoodBytes, err)
		}
		if ln > maxBinaryRecord {
			return st, fmt.Errorf("mod: binary journal entry %d at byte %d: length %d exceeds limit",
				st.Applied+st.Skipped, st.GoodBytes, ln)
		}
		frame := make([]byte, int(ln)+4)
		fn, ferr := io.ReadFull(br, frame)
		if ferr == io.EOF || ferr == io.ErrUnexpectedEOF {
			st.TornTail = true
			st.TailBytes = lb + fn
			return st, nil
		}
		if ferr != nil {
			return st, fmt.Errorf("mod: binary journal read at byte %d: %w", st.GoodBytes, ferr)
		}
		payload := frame[:ln]
		wantSum := binary.LittleEndian.Uint32(frame[ln:])
		if crc32.Checksum(payload, crcTable) != wantSum {
			// A bad checksum on the final record is a torn write; with
			// data after it, it is mid-journal corruption.
			if _, perr := br.Peek(1); perr == io.EOF {
				st.TornTail = true
				st.TailBytes = lb + len(frame)
				return st, nil
			}
			return st, fmt.Errorf("mod: binary journal entry %d at byte %d: checksum mismatch",
				st.Applied+st.Skipped, st.GoodBytes)
		}
		u, derr := decodeUpdatePayload(payload)
		if derr != nil {
			if _, perr := br.Peek(1); perr == io.EOF {
				st.TornTail = true
				st.TailBytes = lb + len(frame)
				return st, nil
			}
			return st, fmt.Errorf("mod: binary journal entry %d at byte %d: %w",
				st.Applied+st.Skipped, st.GoodBytes, derr)
		}
		if aerr := db.Apply(u); aerr != nil {
			st.Skipped++
		} else {
			st.Applied++
		}
		st.GoodBytes += int64(lb + len(frame))
	}
}

// SaveBinary writes a binary snapshot of the database to w: the same
// state SaveJSON captures (dimension, tau, every trajectory piece, the
// applied update log), in the raw-bits layout, with a trailing CRC over
// the body. Unlike SaveJSON it represents every reachable state,
// including the -Inf seed tau and open-ended pieces.
func (db *DB) SaveBinary(w io.Writer) error {
	db.mu.RLock()
	body := make([]byte, 0, 64+len(db.objs)*64+len(db.log)*32)
	body = binary.AppendUvarint(body, uint64(db.dim))
	body = appendFloat(body, db.tau)
	oids := make([]OID, 0, len(db.objs))
	for o := range db.objs {
		oids = append(oids, o)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	body = binary.AppendUvarint(body, uint64(len(oids)))
	for _, o := range oids {
		pieces := db.objs[o].Pieces()
		body = binary.AppendUvarint(body, uint64(o))
		body = binary.AppendUvarint(body, uint64(len(pieces)))
		for _, pc := range pieces {
			body = appendFloat(body, pc.Start)
			body = appendFloat(body, pc.End)
			for _, x := range pc.A {
				body = appendFloat(body, x)
			}
			for _, x := range pc.B {
				body = appendFloat(body, x)
			}
		}
	}
	body = binary.AppendUvarint(body, uint64(len(db.log)))
	for _, u := range db.log {
		body = appendUpdatePayload(body, u)
	}
	// Version-2 trailer: declared speed bounds, ascending OID.
	nBounds := 0
	for _, o := range oids {
		if _, ok := db.bounds[o]; ok {
			nBounds++
		}
	}
	body = binary.AppendUvarint(body, uint64(nBounds))
	for _, o := range oids {
		if v, ok := db.bounds[o]; ok {
			body = binary.AppendUvarint(body, uint64(o))
			body = appendFloat(body, v)
		}
	}
	db.mu.RUnlock()
	out := make([]byte, 0, BinaryJournalHeaderLen+len(body)+4)
	out = append(out, snapMagic[0], snapMagic[1], snapMagic[2], snapMagic[3], snapVersion)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	_, err := w.Write(out)
	return err
}

// LoadBinary reads a snapshot produced by SaveBinary and reconstructs
// the database. The body CRC is verified before any of it is parsed,
// trajectories are validated for continuity on the way in, and log
// entries are validated against the snapshot dimension exactly as
// LoadJSON validates them.
func LoadBinary(r io.Reader) (*DB, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("mod: read binary snapshot: %w", err)
	}
	if len(raw) < BinaryJournalHeaderLen+4 {
		return nil, fmt.Errorf("mod: binary snapshot truncated (%d bytes)", len(raw))
	}
	if [4]byte(raw[:4]) != snapMagic {
		return nil, fmt.Errorf("mod: not a binary snapshot (magic %q)", raw[:4])
	}
	version := raw[4]
	if version < 1 || version > snapVersion {
		return nil, fmt.Errorf("mod: binary snapshot version %d, this build reads 1..%d", version, snapVersion)
	}
	body := raw[BinaryJournalHeaderLen : len(raw)-4]
	wantSum := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, crcTable) != wantSum {
		return nil, errors.New("mod: binary snapshot checksum mismatch")
	}
	c := binCursor{p: body}
	dimU, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("mod: binary snapshot dim: %w", err)
	}
	if dimU == 0 || dimU > maxBinaryRecord {
		return nil, fmt.Errorf("mod: binary snapshot has dimension %d", dimU)
	}
	dim := int(dimU)
	tau, err := c.float()
	if err != nil {
		return nil, fmt.Errorf("mod: binary snapshot tau: %w", err)
	}
	if math.IsNaN(tau) || math.IsInf(tau, 1) {
		return nil, fmt.Errorf("mod: binary snapshot tau %g", tau)
	}
	db := NewDB(dim, math.Inf(-1))
	nObjs, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("mod: binary snapshot object count: %w", err)
	}
	for i := uint64(0); i < nObjs; i++ {
		oid, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("mod: binary snapshot object %d: %w", i, err)
		}
		nPieces, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("mod: object %d piece count: %w", oid, err)
		}
		// Each piece is (2 + 2*dim) floats; reject counts the remaining
		// bytes cannot hold before allocating.
		pieceBytes := uint64(2+2*dim) * 8
		if nPieces > uint64(len(c.p))/pieceBytes {
			return nil, fmt.Errorf("mod: object %d: %w", oid, errTruncated)
		}
		pieces := make([]trajectory.Piece, nPieces)
		for j := range pieces {
			pc := &pieces[j]
			pc.Start, _ = c.float()
			pc.End, _ = c.float()
			pc.A = make(geom.Vec, dim)
			pc.B = make(geom.Vec, dim)
			for d := 0; d < dim; d++ {
				pc.A[d], _ = c.float()
			}
			for d := 0; d < dim; d++ {
				pc.B[d], _ = c.float()
			}
			if vecHasNaN(pc.A) || vecHasNaN(pc.B) {
				return nil, fmt.Errorf("mod: object %d piece %d has NaN coefficients", oid, j)
			}
		}
		tr, err := trajectory.FromPieces(pieces...)
		if err != nil {
			return nil, fmt.Errorf("mod: object %d: %w", oid, err)
		}
		if err := db.Load(OID(oid), tr); err != nil {
			return nil, err
		}
	}
	nLog, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("mod: binary snapshot log count: %w", err)
	}
	log := make([]Update, 0, min(nLog, uint64(len(c.p))))
	for i := uint64(0); i < nLog; i++ {
		u, err := decodeLogUpdate(&c)
		if err != nil {
			return nil, fmt.Errorf("mod: binary snapshot log entry %d: %w", i, err)
		}
		if err := validateLoadedUpdate(u, dim); err != nil {
			return nil, fmt.Errorf("mod: snapshot log entry %d: %w", i, err)
		}
		log = append(log, u)
	}
	if version >= 2 {
		nBounds, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("mod: binary snapshot bound count: %w", err)
		}
		if nBounds > uint64(len(c.p))/9 { // each bound is ≥ 1 varint byte + 8 float bytes
			return nil, fmt.Errorf("mod: binary snapshot bounds: %w", errTruncated)
		}
		for i := uint64(0); i < nBounds; i++ {
			oid, err := c.uvarint()
			if err != nil {
				return nil, fmt.Errorf("mod: binary snapshot bound %d: %w", i, err)
			}
			v, err := c.float()
			if err != nil {
				return nil, fmt.Errorf("mod: binary snapshot bound %d: %w", i, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("mod: binary snapshot bound for object %d: bad vmax %g", oid, v)
			}
			if !db.Contains(OID(oid)) {
				return nil, fmt.Errorf("mod: binary snapshot bound for unknown object %d", oid)
			}
			db.bounds[OID(oid)] = v
		}
	}
	if len(c.p) != 0 {
		return nil, fmt.Errorf("mod: binary snapshot has %d trailing bytes", len(c.p))
	}
	db.mu.Lock()
	db.log = log
	db.tau = tau
	db.epoch.Add(1)
	db.mu.Unlock()
	return db, nil
}

// decodeLogUpdate decodes one unframed update payload from the cursor
// (snapshot log entries are unframed: the body CRC already covers them).
func decodeLogUpdate(c *binCursor) (Update, error) {
	kind, err := c.byte()
	if err != nil {
		return Update{}, err
	}
	if kind > byte(KindBound) {
		return Update{}, fmt.Errorf("mod: unknown binary update kind %d", kind)
	}
	oid, err := c.uvarint()
	if err != nil {
		return Update{}, err
	}
	tau, err := c.float()
	if err != nil {
		return Update{}, err
	}
	a, err := c.vec()
	if err != nil {
		return Update{}, err
	}
	b, err := c.vec()
	if err != nil {
		return Update{}, err
	}
	return Update{Kind: UpdateKind(kind), O: OID(oid), Tau: tau, A: a, B: b}, nil
}

// vecHasNaN reports whether any component is NaN. Infinities are left
// alone — they compare equal to themselves, so state containing them
// still round-trips and StateEqual-compares exactly.
func vecHasNaN(v geom.Vec) bool {
	for _, x := range v {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// validateLoadedUpdate checks a snapshot log entry against the snapshot
// dimension: the fields the update's kind actually uses must have
// exactly the database dimension and finite values. Without this a
// corrupt or crafted snapshot smuggles mismatched-dim updates into
// db.log and a re-save propagates them.
func validateLoadedUpdate(u Update, dim int) error {
	if math.IsNaN(u.Tau) || math.IsInf(u.Tau, 0) {
		return fmt.Errorf("%w: non-finite time %g", ErrBadOperation, u.Tau)
	}
	checkVec := func(name string, v geom.Vec) error {
		if v.Dim() != dim {
			return fmt.Errorf("%w: %s(%s) %s has dim %d, snapshot dim %d",
				ErrDimMismatch, u.Kind, u.O, name, v.Dim(), dim)
		}
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("%w: %s(%s) has non-finite %s component %g",
					ErrBadOperation, u.Kind, u.O, name, x)
			}
		}
		return nil
	}
	switch u.Kind {
	case KindNew:
		if err := checkVec("A", u.A); err != nil {
			return err
		}
		return checkVec("B", u.B)
	case KindChDir:
		return checkVec("A", u.A)
	case KindTerminate:
		return nil
	case KindBound:
		if len(u.A) != 1 {
			return fmt.Errorf("%w: bound(%s) wants a single [vmax], got %d values",
				ErrBadOperation, u.O, len(u.A))
		}
		if math.IsNaN(u.A[0]) || math.IsInf(u.A[0], 0) || u.A[0] < 0 {
			return fmt.Errorf("%w: bound(%s) bad vmax %g", ErrBadOperation, u.O, u.A[0])
		}
		if u.B.Dim() != 0 {
			return fmt.Errorf("%w: bound(%s) carries a position", ErrBadOperation, u.O)
		}
		return nil
	default:
		return fmt.Errorf("%w: kind %d", ErrBadOperation, u.Kind)
	}
}

// EncodeUpdatesBinary writes a batch of updates in the binary wire
// layout (header plus framed records) — the request body format the
// batch-ingest endpoint accepts with Content-Type BinaryUpdatesContentType.
func EncodeUpdatesBinary(w io.Writer, us []Update) error {
	buf := []byte{wireMagic[0], wireMagic[1], wireMagic[2], wireMagic[3], binaryVersion}
	for _, u := range us {
		buf = AppendUpdateRecord(buf, u)
	}
	_, err := w.Write(buf)
	return err
}

// DecodeUpdatesBinary reads a binary update batch. Decoding is strict —
// this is a request body, not a crash artifact, so a torn or corrupt
// record is an error, never tolerated.
func DecodeUpdatesBinary(r io.Reader) ([]Update, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, BinaryJournalHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("mod: binary batch header: %w", err)
	}
	if [4]byte(hdr[:4]) != wireMagic {
		return nil, fmt.Errorf("mod: not a binary update batch (magic %q)", hdr[:4])
	}
	if hdr[4] != binaryVersion {
		return nil, fmt.Errorf("mod: binary batch version %d, this build reads %d", hdr[4], binaryVersion)
	}
	var us []Update
	for {
		ln, _, err := readUvarint(br)
		if err == io.EOF {
			return us, nil
		}
		if err != nil {
			return nil, fmt.Errorf("mod: binary batch entry %d: %w", len(us), err)
		}
		if ln > maxBinaryRecord {
			return nil, fmt.Errorf("mod: binary batch entry %d: length %d exceeds limit", len(us), ln)
		}
		frame := make([]byte, int(ln)+4)
		if _, err := io.ReadFull(br, frame); err != nil {
			return nil, fmt.Errorf("mod: binary batch entry %d: %w", len(us), err)
		}
		payload := frame[:ln]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(frame[ln:]) {
			return nil, fmt.Errorf("mod: binary batch entry %d: checksum mismatch", len(us))
		}
		u, err := decodeUpdatePayload(payload)
		if err != nil {
			return nil, fmt.Errorf("mod: binary batch entry %d: %w", len(us), err)
		}
		us = append(us, u)
	}
}
