package mod

// Tests for the binary journal/wire codec: bit-exact float round-trips
// (the whole reason the codec exists — JSON cannot carry ±Inf, NaN, or
// guarantee denormals survive a decimal round-trip), torn-tail replay
// semantics matching the JSON journal's contract, and strict decoding
// on the HTTP batch path.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

// edgeUpdates exercises the float edges the codec must carry verbatim:
// denormals, extremes, negative zero, and non-finite coefficients
// (representable on the wire; gated at Apply, not at decode).
func edgeUpdates() []Update {
	return []Update{
		New(1, 0, geom.Of(5e-324, -5e-324), geom.Of(math.MaxFloat64, -math.MaxFloat64)),
		ChDir(1, 1, geom.Of(math.Copysign(0, -1), 1e-308)),
		New(1<<63, 2, geom.Of(math.Inf(1), math.Inf(-1)), geom.Of(0, 0)),
		Terminate(1, 3),
	}
}

func vecBitsEqual(a, b geom.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestBinaryUpdatesRoundTripBitExact(t *testing.T) {
	us := edgeUpdates()
	var buf bytes.Buffer
	must(t, EncodeUpdatesBinary(&buf, us))
	got, err := DecodeUpdatesBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(us) {
		t.Fatalf("decoded %d updates, want %d", len(got), len(us))
	}
	for i, u := range us {
		g := got[i]
		if g.Kind != u.Kind || g.O != u.O ||
			math.Float64bits(g.Tau) != math.Float64bits(u.Tau) ||
			!vecBitsEqual(g.A, u.A) || !vecBitsEqual(g.B, u.B) {
			t.Errorf("update %d: got %+v, want %+v", i, g, u)
		}
	}
}

func TestDecodeUpdatesBinaryStrict(t *testing.T) {
	var buf bytes.Buffer
	must(t, EncodeUpdatesBinary(&buf, []Update{New(1, 0, geom.Of(1), geom.Of(2))}))
	whole := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("JUNK\x01"),
		"bad version": append([]byte("MODU\x7f"), whole[5:]...),
		"truncated":   whole[:len(whole)-3],
		"flipped bit": append(append([]byte{}, whole[:len(whole)-1]...), whole[len(whole)-1]^1),
	}
	for name, data := range cases {
		if _, err := DecodeUpdatesBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestBinarySnapshotRoundTrip(t *testing.T) {
	// A database with history: closed pieces, an open-ended piece, a
	// terminated object, and a log.
	db := buildSampleDB(t)
	var buf bytes.Buffer
	must(t, db.SaveBinary(&buf))
	got, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.StateEqual(db) {
		t.Fatal("binary snapshot round-trip is not StateEqual")
	}

	// A fresh database still at the -Inf seed tau: the state SaveJSON
	// once refused to encode at all. The binary codec stores raw bits,
	// so -Inf needs no sentinel.
	fresh := NewDB(3, math.Inf(-1))
	buf.Reset()
	must(t, fresh.SaveBinary(&buf))
	got, err = LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.StateEqual(fresh) || !math.IsInf(got.Tau(), -1) {
		t.Fatalf("fresh -Inf db round-trip: tau=%g", got.Tau())
	}
}

func TestLoadBinaryRejectsCorruption(t *testing.T) {
	db := buildSampleDB(t)
	var buf bytes.Buffer
	must(t, db.SaveBinary(&buf))
	whole := buf.Bytes()
	for name, data := range map[string][]byte{
		"empty":     {},
		"header":    whole[:5],
		"bad magic": append([]byte("JUNK"), whole[4:]...),
		"truncated": whole[:len(whole)-1],
		"trailing":  append(append([]byte{}, whole...), 0),
	} {
		if _, err := LoadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
	// Flip one bit mid-body: the CRC must catch it before parsing.
	mid := append([]byte{}, whole...)
	mid[len(mid)/2] ^= 0x10
	if _, err := LoadBinary(bytes.NewReader(mid)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Errorf("flipped body bit: %v, want checksum error", err)
	}
}

// TestBinaryJournalWriter drives the Journal in binary mode and replays
// its output: the writer and ReplayTolerantBinary are inverses.
func TestBinaryJournalWriter(t *testing.T) {
	db := NewDB(2, -1)
	var seg bytes.Buffer
	seg.Write(BinaryJournalHeader())
	j := NewJournalBinary(db, &seg)
	defer j.Close()
	us := []Update{
		New(1, 0, geom.Of(1, 0), geom.Of(0, 0)),
		New(2, 1, geom.Of(0, 1), geom.Of(5e-324, -0.0)),
		ChDir(1, 2, geom.Of(-1, 0)),
		Terminate(2, 3),
	}
	must(t, db.ApplyAll(us...))
	must(t, j.Flush())

	rec := NewDB(2, -1)
	st, err := ReplayTolerantBinary(rec, bytes.NewReader(seg.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != len(us) || st.Skipped != 0 || st.TornTail {
		t.Fatalf("replay stats %+v, want %d applied", st, len(us))
	}
	if !rec.StateEqual(db) {
		t.Fatal("binary journal replay differs from live state")
	}
	if st.GoodBytes != int64(seg.Len()) {
		t.Fatalf("GoodBytes %d != segment length %d", st.GoodBytes, seg.Len())
	}
}

func TestBinaryReplayTornTail(t *testing.T) {
	db := NewDB(2, -1)
	var seg bytes.Buffer
	seg.Write(BinaryJournalHeader())
	j := NewJournalBinary(db, &seg)
	defer j.Close()
	must(t, db.ApplyAll(
		New(1, 0, geom.Of(1, 0), geom.Of(0, 0)),
		ChDir(1, 1, geom.Of(0, 1)),
	))
	must(t, j.Flush())
	whole := seg.Len()

	// Chop 3 bytes: torn final record, one update recovered.
	rec := NewDB(2, -1)
	st, err := ReplayTolerantBinary(rec, bytes.NewReader(seg.Bytes()[:whole-3]))
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornTail || st.Applied != 1 {
		t.Fatalf("stats %+v, want torn tail with 1 applied", st)
	}
	if rec.Tau() != 0 {
		t.Fatalf("recovered tau %g, want 0", rec.Tau())
	}

	// Chop inside the header: GoodBytes 0, torn, no error.
	st, err = ReplayTolerantBinary(NewDB(2, -1), bytes.NewReader(seg.Bytes()[:3]))
	if err != nil || !st.TornTail || st.GoodBytes != 0 {
		t.Fatalf("torn header: %+v, %v", st, err)
	}

	// Corruption mid-stream (not at the tail) is an error, not a torn
	// tail: flip a payload bit in the FIRST record.
	data := append([]byte{}, seg.Bytes()...)
	data[BinaryJournalHeaderLen+2] ^= 1
	if _, err := ReplayTolerantBinary(NewDB(2, -1), bytes.NewReader(data)); err == nil {
		t.Fatal("mid-stream corruption replayed without error")
	}
}
