package mod

// Speed-bound (KindBound) semantics and persistence: apply-time
// validation, JSON and binary snapshot round-trips, version-1 binary
// snapshot compatibility (no bounds section), and bounds surviving
// Merge/Partition and epoch snapshots.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func boundedDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB(2, 0)
	if err := db.ApplyAll(
		New(1, 1, geom.Of(1, 0), geom.Of(0, 0)),
		New(2, 2, geom.Of(0, 1), geom.Of(10, 0)),
		Bound(1, 3, 2.5),
		Bound(2, 4, 0),
		ChDir(1, 5, geom.Of(0, 2)),
		Bound(1, 6, 3),
	); err != nil {
		t.Fatalf("apply: %v", err)
	}
	return db
}

func TestBoundApplySemantics(t *testing.T) {
	db := boundedDB(t)
	if v, ok := db.SpeedBound(1); !ok || v != 3 {
		t.Fatalf("SpeedBound(1) = %g,%v; want 3,true (revisions win)", v, ok)
	}
	if v, ok := db.SpeedBound(2); !ok || v != 0 {
		t.Fatalf("SpeedBound(2) = %g,%v; want 0,true (zero bound is legal)", v, ok)
	}
	if _, ok := db.SpeedBound(9); ok {
		t.Fatal("SpeedBound(9) reported a bound for an unknown object")
	}

	rejected := []Update{
		Bound(9, 7, 1),                                    // unknown object
		Bound(1, 7, -1),                                   // negative vmax
		Bound(1, 7, math.Inf(1)),                          // non-finite vmax
		Bound(1, 7, math.NaN()),                           // non-finite vmax
		{Kind: KindBound, O: 1, Tau: 7},                   // missing vmax
		{Kind: KindBound, O: 1, Tau: 7, A: geom.Of(1, 2)}, // wrong arity
		{Kind: KindBound, O: 1, Tau: 7, A: geom.Of(1), B: geom.Of(0)}, // stray position
		Bound(1, 6, 4), // chronology violation
	}
	for _, u := range rejected {
		if err := db.Apply(u); err == nil {
			t.Errorf("Apply(%s) succeeded, want rejection", u)
		}
	}
	if v, _ := db.SpeedBound(1); v != 3 {
		t.Fatalf("rejected updates disturbed the bound: got %g", v)
	}

	// Bounds survive termination — the alibi question is about the past.
	if err := db.Apply(Terminate(1, 8)); err != nil {
		t.Fatalf("terminate: %v", err)
	}
	if v, ok := db.SpeedBound(1); !ok || v != 3 {
		t.Fatalf("bound lost on terminate: %g,%v", v, ok)
	}
}

func TestBoundSnapshotRoundTrips(t *testing.T) {
	db := boundedDB(t)

	var js bytes.Buffer
	if err := db.SaveJSON(&js); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	if !strings.Contains(js.String(), `"bounds"`) {
		t.Fatalf("JSON snapshot has no bounds section:\n%s", js.String())
	}
	fromJSON, err := LoadJSON(bytes.NewReader(js.Bytes()))
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if !fromJSON.StateEqual(db) {
		t.Fatal("JSON round-trip not StateEqual (bounds compared)")
	}

	var bin bytes.Buffer
	if err := db.SaveBinary(&bin); err != nil {
		t.Fatalf("SaveBinary: %v", err)
	}
	fromBin, err := LoadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("LoadBinary: %v", err)
	}
	if !fromBin.StateEqual(db) {
		t.Fatal("binary round-trip not StateEqual (bounds compared)")
	}
	if v, ok := fromBin.SpeedBound(1); !ok || v != 3 {
		t.Fatalf("binary round-trip bound = %g,%v; want 3,true", v, ok)
	}

	// A bound for an object the snapshot doesn't carry is rejected.
	var lone bytes.Buffer
	loneDB := NewDB(2, 0)
	if err := loneDB.ApplyAll(New(1, 1, geom.Of(1, 0), geom.Of(0, 0)), Bound(1, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := loneDB.SaveBinary(&lone); err != nil {
		t.Fatal(err)
	}
	raw := lone.Bytes()
	// Flip the bound's OID varint (last 9 bytes before the CRC are
	// "oid varint | vmax bits"): point it at a nonexistent object.
	corrupt := append([]byte(nil), raw...)
	body := corrupt[BinaryJournalHeaderLen : len(corrupt)-4]
	body[len(body)-9] = 0x63 // oid 99
	binary.LittleEndian.PutUint32(corrupt[len(corrupt)-4:],
		crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	if _, err := LoadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("LoadBinary accepted a bound for an unknown object")
	}
}

// TestBoundBinarySnapshotV1Compat proves version-1 snapshots (written
// before the bounds section existed) still load: a v2 snapshot of a
// bound-free database is exactly the v1 body plus a zero bounds count.
func TestBoundBinarySnapshotV1Compat(t *testing.T) {
	db := NewDB(2, 0)
	if err := db.ApplyAll(
		New(1, 1, geom.Of(1, 0), geom.Of(0, 0)),
		ChDir(1, 2, geom.Of(0, 1)),
	); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := db.SaveBinary(&v2); err != nil {
		t.Fatal(err)
	}
	raw := v2.Bytes()
	body := raw[BinaryJournalHeaderLen : len(raw)-4]
	if body[len(body)-1] != 0 {
		t.Fatalf("expected trailing zero bounds count, got %#x", body[len(body)-1])
	}
	v1body := body[:len(body)-1]
	v1 := make([]byte, 0, len(raw))
	v1 = append(v1, raw[:4]...)
	v1 = append(v1, 1) // version byte
	v1 = append(v1, v1body...)
	v1 = binary.LittleEndian.AppendUint32(v1,
		crc32.Checksum(v1body, crc32.MakeTable(crc32.Castagnoli)))
	got, err := LoadBinary(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("LoadBinary(v1): %v", err)
	}
	if !got.StateEqual(db) {
		t.Fatal("v1 snapshot loads to different state")
	}
}

func TestBoundMergePartitionSnapEqual(t *testing.T) {
	db := boundedDB(t)
	parts, err := db.Partition(3, func(o OID) int { return int(o) % 3 })
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if v, ok := parts[1].SpeedBound(1); !ok || v != 3 {
		t.Fatalf("partition lost o1's bound: %g,%v", v, ok)
	}
	if _, ok := parts[2].SpeedBound(1); ok {
		t.Fatal("bound routed to the wrong shard")
	}
	back, err := Merge(parts...)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if !back.StateEqual(db) {
		t.Fatal("Partition+Merge not StateEqual (bounds compared)")
	}

	snap := db.EpochSnapshot()
	if v, ok := snap.SpeedBound(1); !ok || v != 3 {
		t.Fatalf("epoch snapshot bound = %g,%v; want 3,true", v, ok)
	}
	// A new bound bumps the epoch, so the next snapshot sees it.
	if err := db.Apply(Bound(2, 10, 7)); err != nil {
		t.Fatal(err)
	}
	snap2 := db.EpochSnapshot()
	if snap2.Epoch() == snap.Epoch() {
		t.Fatal("bound update did not bump the epoch")
	}
	if v, ok := snap2.SpeedBound(2); !ok || v != 7 {
		t.Fatalf("fresh snapshot bound = %g,%v; want 7,true", v, ok)
	}

	other := boundedDB(t)
	if !db.StateEqual(db.Snapshot()) {
		t.Fatal("StateEqual(self snapshot) false")
	}
	if other.StateEqual(db) {
		t.Fatal("StateEqual ignored diverged bounds") // db has Bound(2,10,7)
	}
}

func TestBoundWireBatchRoundTrip(t *testing.T) {
	us := []Update{
		New(1, 1, geom.Of(1, 0), geom.Of(0, 0)),
		Bound(1, 2, 2.5),
		Bound(1, 3, 5e-324), // denormal vmax must round-trip bit-exactly
	}
	var buf bytes.Buffer
	if err := EncodeUpdatesBinary(&buf, us); err != nil {
		t.Fatalf("EncodeUpdatesBinary: %v", err)
	}
	got, err := DecodeUpdatesBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeUpdatesBinary: %v", err)
	}
	if len(got) != len(us) {
		t.Fatalf("decoded %d updates, want %d", len(got), len(us))
	}
	for i := range us {
		if got[i].Kind != us[i].Kind || got[i].O != us[i].O ||
			math.Float64bits(got[i].Tau) != math.Float64bits(us[i].Tau) ||
			!got[i].A.Equal(us[i].A) {
			t.Fatalf("update %d: got %s want %s", i, got[i], us[i])
		}
	}
}
