package mod

// JSON persistence for moving object databases: a stable snapshot format
// carrying the dimension, the last-update time, every trajectory (as its
// linear pieces) and the applied update log. Used by the CLI tools to
// save and restore databases and by tests for round-trip validation.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/trajectory"
)

// jsonDB is the wire form of a database snapshot.
type jsonDB struct {
	Dim int `json:"dim"`
	// Tau is omitted when the database still sits at its -Inf seed time
	// (NewDB(dim, math.Inf(-1)), the state LoadJSON itself starts from):
	// JSON cannot represent -Inf, and encoding it as a number used to
	// make snapshotting any fresh or restored-empty database fail with
	// "json: unsupported value: -Inf". Same sentinel convention as the
	// open-ended piece End below.
	Tau     *float64     `json:"tau,omitempty"`
	Objects []jsonObject `json:"objects"`
	// Bounds lists declared per-object max speeds (KindBound), ascending
	// by OID. Absent on snapshots written before the uncertainty layer
	// existed — LoadJSON treats a missing list as "no bounds declared".
	Bounds []jsonBound  `json:"bounds,omitempty"`
	Log    []jsonUpdate `json:"log,omitempty"`
}

type jsonBound struct {
	OID  uint64  `json:"oid"`
	Vmax float64 `json:"vmax"`
}

type jsonObject struct {
	OID    uint64      `json:"oid"`
	Pieces []jsonPiece `json:"pieces"`
}

type jsonPiece struct {
	Start float64 `json:"start"`
	// End is omitted for the open-ended final piece.
	End *float64  `json:"end,omitempty"`
	A   []float64 `json:"a"`
	B   []float64 `json:"b"`
}

type jsonUpdate struct {
	Kind string    `json:"kind"`
	OID  uint64    `json:"oid"`
	Tau  float64   `json:"tau"`
	A    []float64 `json:"a,omitempty"`
	B    []float64 `json:"b,omitempty"`
}

// MarshalJSON implements json.Marshaler for updates.
func (u Update) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSONUpdate(u))
}

func toJSONUpdate(u Update) jsonUpdate {
	return jsonUpdate{Kind: u.Kind.String(), OID: uint64(u.O), Tau: u.Tau, A: u.A, B: u.B}
}

// UnmarshalJSON implements json.Unmarshaler for updates.
func (u *Update) UnmarshalJSON(data []byte) error {
	var j jsonUpdate
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	got, err := fromJSONUpdate(j)
	if err != nil {
		return err
	}
	*u = got
	return nil
}

func fromJSONUpdate(j jsonUpdate) (Update, error) {
	u := Update{O: OID(j.OID), Tau: j.Tau, A: geom.Vec(j.A), B: geom.Vec(j.B)}
	switch j.Kind {
	case "new":
		u.Kind = KindNew
	case "terminate":
		u.Kind = KindTerminate
	case "chdir":
		u.Kind = KindChDir
	case "bound":
		u.Kind = KindBound
	default:
		return Update{}, fmt.Errorf("mod: unknown update kind %q", j.Kind)
	}
	return u, nil
}

// SaveJSON writes a snapshot of the database to w.
func (db *DB) SaveJSON(w io.Writer) error {
	db.mu.RLock()
	out := jsonDB{Dim: db.dim}
	if !math.IsInf(db.tau, -1) {
		if math.IsNaN(db.tau) || math.IsInf(db.tau, 1) {
			db.mu.RUnlock()
			return fmt.Errorf("mod: cannot encode tau %g as JSON", db.tau)
		}
		tau := db.tau
		out.Tau = &tau
	}
	oids := make([]OID, 0, len(db.objs))
	for o := range db.objs {
		oids = append(oids, o)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, o := range oids {
		tr := db.objs[o]
		jo := jsonObject{OID: uint64(o)}
		for _, pc := range tr.Pieces() {
			jp := jsonPiece{Start: pc.Start, A: pc.A, B: pc.B}
			if !math.IsInf(pc.End, 1) {
				end := pc.End
				jp.End = &end
			}
			jo.Pieces = append(jo.Pieces, jp)
		}
		out.Objects = append(out.Objects, jo)
	}
	for _, o := range oids {
		if v, ok := db.bounds[o]; ok {
			out.Bounds = append(out.Bounds, jsonBound{OID: uint64(o), Vmax: v})
		}
	}
	for _, u := range db.log {
		out.Log = append(out.Log, toJSONUpdate(u))
	}
	db.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadJSON reads a snapshot produced by SaveJSON and reconstructs the
// database (trajectories validated for continuity on the way in).
func LoadJSON(r io.Reader) (*DB, error) {
	var in jsonDB
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("mod: decode snapshot: %w", err)
	}
	if in.Dim <= 0 {
		return nil, fmt.Errorf("mod: snapshot has dimension %d", in.Dim)
	}
	db := NewDB(in.Dim, math.Inf(-1))
	for _, jo := range in.Objects {
		pieces := make([]trajectory.Piece, 0, len(jo.Pieces))
		for _, jp := range jo.Pieces {
			end := math.Inf(1)
			if jp.End != nil {
				end = *jp.End
			}
			pieces = append(pieces, trajectory.Piece{
				Start: jp.Start, End: end,
				A: geom.Vec(jp.A), B: geom.Vec(jp.B),
			})
		}
		tr, err := trajectory.FromPieces(pieces...)
		if err != nil {
			return nil, fmt.Errorf("mod: object %d: %w", jo.OID, err)
		}
		if err := db.Load(OID(jo.OID), tr); err != nil {
			return nil, err
		}
	}
	for _, jb := range in.Bounds {
		if math.IsNaN(jb.Vmax) || math.IsInf(jb.Vmax, 0) || jb.Vmax < 0 {
			return nil, fmt.Errorf("mod: bound for object %d: bad vmax %g", jb.OID, jb.Vmax)
		}
		if !db.Contains(OID(jb.OID)) {
			return nil, fmt.Errorf("mod: bound for unknown object %d", jb.OID)
		}
		db.bounds[OID(jb.OID)] = jb.Vmax
	}
	log := make([]Update, 0, len(in.Log))
	for i, ju := range in.Log {
		u, err := fromJSONUpdate(ju)
		if err != nil {
			return nil, err
		}
		if err := validateLoadedUpdate(u, in.Dim); err != nil {
			return nil, fmt.Errorf("mod: snapshot log entry %d: %w", i, err)
		}
		log = append(log, u)
	}
	tau := math.Inf(-1)
	if in.Tau != nil {
		tau = *in.Tau
	}
	db.mu.Lock()
	db.log = log
	db.tau = tau
	db.epoch.Add(1)
	db.mu.Unlock()
	return db, nil
}
