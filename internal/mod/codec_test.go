package mod

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/geom"
)

func buildSampleDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB(2, -1)
	must(t, db.ApplyAll(
		New(1, 0, geom.Of(1, 0), geom.Of(0, 0)),
		New(2, 1, geom.Of(0, 2), geom.Of(5, 5)),
		ChDir(1, 3, geom.Of(-1, 1)),
		Terminate(2, 7),
	))
	return db
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := buildSampleDB(t)
	var buf bytes.Buffer
	if err := db.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != db.Dim() || back.Tau() != db.Tau() || back.Len() != db.Len() {
		t.Fatalf("header mismatch: dim %d/%d tau %g/%g len %d/%d",
			back.Dim(), db.Dim(), back.Tau(), db.Tau(), back.Len(), db.Len())
	}
	for _, o := range db.Objects() {
		a, _ := db.Traj(o)
		b, err := back.Traj(o)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("%s differs after round trip:\n%s\nvs\n%s", o, a, b)
		}
	}
	if got, want := back.Log(), db.Log(); len(got) != len(want) {
		t.Fatalf("log length %d vs %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i].Kind != want[i].Kind || got[i].O != want[i].O || got[i].Tau != want[i].Tau {
				t.Errorf("log[%d]: %v vs %v", i, got[i], want[i])
			}
		}
	}
	// The restored DB keeps enforcing chronology from the restored tau.
	if err := back.Apply(ChDir(1, 5, geom.Of(0, 0))); err == nil {
		t.Error("pre-tau update accepted after restore")
	}
	if err := back.Apply(ChDir(1, 8, geom.Of(0, 0))); err != nil {
		t.Errorf("post-tau update rejected after restore: %v", err)
	}
}

func TestUpdateJSONRoundTrip(t *testing.T) {
	for _, u := range []Update{
		New(3, 1.5, geom.Of(1, 0), geom.Of(2, 2)),
		Terminate(4, 2.5),
		ChDir(5, 3.5, geom.Of(0, -1)),
	} {
		data, err := json.Marshal(u)
		if err != nil {
			t.Fatal(err)
		}
		var back Update
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Kind != u.Kind || back.O != u.O || back.Tau != u.Tau {
			t.Errorf("round trip %v -> %v", u, back)
		}
		if u.A != nil && !back.A.Equal(u.A) {
			t.Errorf("A mismatch: %v vs %v", back.A, u.A)
		}
	}
	var bad Update
	if err := json.Unmarshal([]byte(`{"kind":"warp","oid":1,"tau":2}`), &bad); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	cases := []string{
		`{`,         // malformed
		`{"dim":0}`, // bad dimension
		`{"dim":2,"tau":0,"objects":[{"oid":1,"pieces":[]}]}`,                            // empty trajectory
		`{"dim":2,"tau":0,"objects":[{"oid":1,"pieces":[{"start":0,"a":[1],"b":[1]}]}]}`, // dim mismatch
		`{"dim":1,"tau":0,"bogus":true}`,                                                 // unknown field
	}
	for _, c := range cases {
		if _, err := LoadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("LoadJSON(%q) accepted", c)
		}
	}
}

func TestSaveJSONStableOrder(t *testing.T) {
	db := buildSampleDB(t)
	var a, b bytes.Buffer
	must(t, db.SaveJSON(&a))
	must(t, db.SaveJSON(&b))
	if a.String() != b.String() {
		t.Error("snapshot serialization not deterministic")
	}
	if !strings.Contains(a.String(), `"kind": "chdir"`) {
		t.Errorf("log missing from snapshot: %s", a.String())
	}
}
