package mod

// Regression tests for the float-edge persistence bugs: SaveJSON used
// to fail with "json: unsupported value: -Inf" on any database still at
// its -Inf seed tau (every fresh store), and LoadJSON appended log
// updates without validating their vectors against the snapshot
// dimension, so a hand-edited or corrupted snapshot could smuggle a
// mis-dimensioned update into the log that Apply would have rejected.

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSaveJSONNegInfTau(t *testing.T) {
	fresh := NewDB(2, math.Inf(-1))
	var buf bytes.Buffer
	if err := fresh.SaveJSON(&buf); err != nil {
		t.Fatalf("SaveJSON of fresh -Inf db: %v", err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Tau(), -1) || !got.StateEqual(fresh) {
		t.Fatalf("round-trip tau %g, want -Inf", got.Tau())
	}
	// The sentinel is the absent field, same convention as piece End.
	buf.Reset()
	must(t, fresh.SaveJSON(&buf))
	if strings.Contains(buf.String(), `"tau"`) {
		t.Errorf("-Inf tau encoded explicitly: %s", buf.String())
	}
	// A database with real history still writes its tau.
	db := buildSampleDB(t)
	buf.Reset()
	must(t, db.SaveJSON(&buf))
	if !strings.Contains(buf.String(), `"tau": 7`) {
		t.Errorf("finite tau missing from snapshot: %s", buf.String())
	}
}

func TestLoadJSONValidatesLogEntries(t *testing.T) {
	const prefix = `{"dim":2,"tau":1,"objects":[{"oid":1,"pieces":[{"start":0,"a":[1,0],"b":[0,0]}]}],"log":[`
	bad := map[string]string{
		"new with 1-d a":   `{"kind":"new","oid":1,"tau":0,"a":[1],"b":[0,0]}`,
		"new with 3-d b":   `{"kind":"new","oid":1,"tau":0,"a":[1,0],"b":[0,0,0]}`,
		"new missing b":    `{"kind":"new","oid":1,"tau":0,"a":[1,0]}`,
		"chdir with 1-d a": `{"kind":"chdir","oid":1,"tau":1,"a":[1]}`,
		"chdir missing a":  `{"kind":"chdir","oid":1,"tau":1}`,
		"overflow tau":     `{"kind":"terminate","oid":1,"tau":1e999}`,
		"overflow b coeff": `{"kind":"new","oid":1,"tau":0,"a":[1,0],"b":[1e999,0]}`,
	}
	for name, entry := range bad {
		if _, err := LoadJSON(strings.NewReader(prefix + entry + "]}")); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Leniency pin: fields an update kind does not use are NOT
	// validated — a live system may journal a chdir carrying a stray b,
	// and recovery must not reject history Apply accepted.
	lenient := `{"kind":"chdir","oid":1,"tau":1,"a":[1,0],"b":[9]}`
	if _, err := LoadJSON(strings.NewReader(prefix + lenient + "]}")); err != nil {
		t.Errorf("stray unused field rejected: %v", err)
	}
}
