package mod

// FuzzReplayTolerantBinary hardens binary-journal recovery exactly as
// FuzzReplayTolerant hardens the JSON path: arbitrary bytes must never
// panic, accounting must be internally consistent, and GoodBytes must
// always be a truncate-and-append boundary. On top of the replay
// invariants, every state reachable by replay must survive a binary
// snapshot round-trip StateEqual — the codec's whole contract is that
// raw IEEE-754 bits (±Inf taus, denormal coefficients) come back
// bit-identical, with no JSON-style non-finite failures.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
)

// binJournal frames updates into a well-formed binary segment.
func binJournal(us ...Update) []byte {
	b := BinaryJournalHeader()
	for _, u := range us {
		b = AppendUpdateRecord(b, u)
	}
	return b
}

func FuzzReplayTolerantBinary(f *testing.F) {
	valid := binJournal(
		New(1, 1, geom.Of(1, 0), geom.Of(0, 0)),
		ChDir(1, 2, geom.Of(0, 1)),
		New(2, 3, geom.Of(0, 0), geom.Of(5, 5)),
		Terminate(2, 4),
	)
	denorm := binJournal(
		New(1, 1, geom.Of(5e-324, -5e-324), geom.Of(math.MaxFloat64, 1e-308)),
		ChDir(1, 2, geom.Of(math.Copysign(0, -1), 2)),
	)
	// Non-finite coefficients are representable on the wire but
	// rejected at Apply: replay must count them as skipped, not die.
	nonfinite := binJournal(
		New(1, 1, geom.Of(math.Inf(1), 0), geom.Of(0, 0)),
		New(2, 2, geom.Of(1, 0), geom.Of(0, math.Inf(-1))),
		New(3, 3, geom.Of(1, 0), geom.Of(0, 0)),
	)
	// Speed-bound records: a valid bound on a live object, a bound on an
	// unknown object (skipped at Apply), malformed vmax payloads (empty A,
	// negative, NaN — skipped, never fatal), and a bound surviving next to
	// the sampled motion it annotates.
	bounds := binJournal(
		New(1, 1, geom.Of(1, 0), geom.Of(0, 0)),
		Bound(1, 2, 2.5),
		Bound(7, 3, 1),   // unknown object: skipped
		Bound(1, 4, 0),   // zero bound is legal (stationary declaration)
		Bound(1, 4.5, 5), // bounds may be revised
		ChDir(1, 5, geom.Of(0, 1)),
	)
	badBounds := binJournal(
		New(1, 1, geom.Of(1, 0), geom.Of(0, 0)),
		Update{Kind: KindBound, O: 1, Tau: 2},                               // no vmax value
		Update{Kind: KindBound, O: 1, Tau: 3, A: geom.Of(-1)},               // negative
		Update{Kind: KindBound, O: 1, Tau: 4, A: geom.Of(math.NaN())},       // non-finite
		Update{Kind: KindBound, O: 1, Tau: 5, A: geom.Of(1), B: geom.Of(0)}, // stray position
		Update{Kind: KindBound, O: 1, Tau: 6, A: geom.Of(5e-324, math.Pi)},  // wrong arity
	)
	seeds := [][]byte{
		valid,
		valid[:len(valid)-3], // torn tail mid-record
		valid[:3],            // torn header
		denorm,
		nonfinite,
		bounds,
		bounds[:len(bounds)-5], // torn tail mid-bound-record
		badBounds,
		binJournal(),                    // header only
		{},                              // empty segment
		append([]byte{}, "JUNKdata"...), // wrong magic
		append(binJournal(New(1, 5, geom.Of(1, 0), geom.Of(0, 0))),
			binJournal(New(2, 3, geom.Of(1, 0), geom.Of(0, 0)))[BinaryJournalHeaderLen:]...), // chronology skip
		append(append([]byte{}, valid...), 0xff, 0xff, 0xff, 0xff, 0x7f), // huge length varint tail
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db := NewDB(2, -1)
		st, err := ReplayTolerantBinary(db, bytes.NewReader(data))
		if got := len(db.Log()); got != st.Applied {
			t.Fatalf("Applied=%d but db log has %d entries", st.Applied, got)
		}
		if st.Applied < 0 || st.Skipped < 0 || st.TailBytes < 0 {
			t.Fatalf("negative accounting: %+v", st)
		}
		if st.GoodBytes < 0 || st.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes=%d outside [0,%d]", st.GoodBytes, len(data))
		}
		if st.TornTail && err != nil {
			t.Fatalf("both torn tail and error: %+v, %v", st, err)
		}
		if st.TornTail && st.TailBytes == 0 {
			t.Fatalf("torn tail with no tail bytes: %+v", st)
		}
		// The good prefix is a clean journal: same accounting, no torn
		// tail, no error — the durable store truncates there and appends.
		db2 := NewDB(2, -1)
		st2, err2 := ReplayTolerantBinary(db2, bytes.NewReader(data[:st.GoodBytes]))
		if err2 != nil {
			t.Fatalf("good prefix errored: %v (original: %+v, %v)", err2, st, err)
		}
		if st2.TornTail {
			t.Fatalf("good prefix has a torn tail (original: %+v)", st)
		}
		if st2.Applied != st.Applied || st2.Skipped != st.Skipped {
			t.Fatalf("good prefix accounting %d/%d differs from original %d/%d",
				st2.Applied, st2.Skipped, st.Applied, st.Skipped)
		}
		if !db.StateEqual(db2) {
			t.Fatal("good prefix replays to different state")
		}
		// Snapshot round-trip: any replay-reachable state (always
		// finite — Apply gates non-finite input) must come back
		// StateEqual through the binary snapshot codec.
		var snap bytes.Buffer
		if serr := db.SaveBinary(&snap); serr != nil {
			t.Fatalf("SaveBinary of replayed state: %v", serr)
		}
		db3, lerr := LoadBinary(bytes.NewReader(snap.Bytes()))
		if lerr != nil {
			t.Fatalf("LoadBinary of own snapshot: %v", lerr)
		}
		if !db3.StateEqual(db) {
			t.Fatal("binary snapshot round-trip is not StateEqual")
		}
	})
}
