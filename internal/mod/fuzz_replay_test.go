package mod

// FuzzReplayTolerant hardens recovery against arbitrary journal bytes:
// corrupted, truncated, interleaved or adversarial input must never
// panic, the applied/skipped accounting must be internally consistent,
// and the reported GoodBytes offset must always be a clean boundary —
// re-replaying the good prefix reproduces the same accounting with no
// torn tail and no error. That last property is what lets the durable
// store truncate a crashed journal at GoodBytes and append to it.

import (
	"bytes"
	"testing"
)

func FuzzReplayTolerant(f *testing.F) {
	valid := "{\"kind\":\"new\",\"oid\":1,\"tau\":1,\"a\":[1,0],\"b\":[0,0]}\n" +
		"{\"kind\":\"chdir\",\"oid\":1,\"tau\":2,\"a\":[0,1]}\n" +
		"{\"kind\":\"new\",\"oid\":2,\"tau\":3,\"a\":[0,0],\"b\":[5,5]}\n" +
		"{\"kind\":\"terminate\",\"oid\":2,\"tau\":4}\n"
	seeds := [][]byte{
		[]byte(valid),
		[]byte(valid[:len(valid)-9]), // torn tail mid-record
		[]byte(valid + "{\"kind\":\"new\",\"oid\":3,\"tau\":"), // torn tail, fresh record
		[]byte("{\"kind\":\"new\",\"oid\":1,\"tau\":5,\"a\":[1,0],\"b\":[0,0]}\n" +
			"{\"kind\":\"new\",\"oid\":2,\"tau\":3,\"a\":[1,0],\"b\":[0,0]}\n"), // chronology skip
		[]byte("garbage\n" + valid),                         // corruption with data after it
		[]byte("\n\n" + valid + "\n"),                       // blank lines
		[]byte("{\"kind\":\"warp\",\"oid\":1,\"tau\":1}\n"), // unknown kind as sole (tail) record
		{},
		[]byte("{\"kind\":\"new\",\"oid\":1,\"tau\":1e309,\"a\":[1],\"b\":[2]}\n"), // overflow float
		[]byte("{\"kind\":\"new\",\"oid\":1,\"tau\":1,\"a\":[1,0],\"b\":[0,0]}"),   // decodable but unterminated
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db := NewDB(2, -1)
		st, err := ReplayTolerant(db, bytes.NewReader(data))
		// Applied must agree with the database's own account of itself.
		if got := len(db.Log()); got != st.Applied {
			t.Fatalf("Applied=%d but db log has %d entries", st.Applied, got)
		}
		if st.Applied < 0 || st.Skipped < 0 || st.TailBytes < 0 {
			t.Fatalf("negative accounting: %+v", st)
		}
		if st.GoodBytes < 0 || st.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes=%d outside [0,%d]", st.GoodBytes, len(data))
		}
		if st.TornTail && err != nil {
			t.Fatalf("both torn tail and error: %+v, %v", st, err)
		}
		if st.TornTail && st.TailBytes == 0 {
			t.Fatalf("torn tail with no tail bytes: %+v", st)
		}
		// The good prefix is a clean journal: same accounting, no torn
		// tail, no error.
		db2 := NewDB(2, -1)
		st2, err2 := ReplayTolerant(db2, bytes.NewReader(data[:st.GoodBytes]))
		if err2 != nil {
			t.Fatalf("good prefix errored: %v (original: %+v, %v)", err2, st, err)
		}
		if st2.TornTail {
			t.Fatalf("good prefix has a torn tail (original: %+v)", st)
		}
		if st2.Applied != st.Applied || st2.Skipped != st.Skipped {
			t.Fatalf("good prefix accounting %d/%d differs from original %d/%d",
				st2.Applied, st2.Skipped, st.Applied, st.Skipped)
		}
		if !db.StateEqual(db2) {
			t.Fatal("good prefix replays to different state")
		}
	})
}
