package mod

// Per-object generation stamps: the invalidation currency of
// internal/query's BeadIndex. Every update kind that touches an object
// must bump its stamp (a speed-bound declaration reshapes every bead,
// so it counts), other objects' stamps must hold still, and snapshots
// must freeze the stamps they were cut with.

import (
	"testing"

	"repro/internal/geom"
)

func TestGenStamps(t *testing.T) {
	db := NewDB(2, -1)
	if g := db.Gen(1); g != 0 {
		t.Fatalf("unknown object gen = %d, want 0", g)
	}
	must(t, db.Apply(New(1, 0, geom.Of(1, 0), geom.Of(0, 0))))
	must(t, db.Apply(New(2, 1, geom.Of(0, 1), geom.Of(5, 5))))
	g1, g2 := db.Gen(1), db.Gen(2)
	if g1 == 0 || g2 == 0 {
		t.Fatalf("creation did not stamp: gen(1)=%d gen(2)=%d", g1, g2)
	}

	snap := db.EpochSnapshot()
	if snap.Gen(1) != g1 || snap.Gen(2) != g2 {
		t.Fatalf("snapshot gens (%d,%d) differ from db (%d,%d)",
			snap.Gen(1), snap.Gen(2), g1, g2)
	}
	if got := snap.Objects(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("snapshot objects %v, want [1 2] ascending", got)
	}
	if trs := snap.Trajectories(); len(trs) != 2 {
		t.Fatalf("snapshot trajectories has %d entries, want 2", len(trs))
	}

	// Every update kind bumps exactly the touched object.
	steps := []struct {
		name string
		u    Update
	}{
		{"chdir", ChDir(1, 2, geom.Of(0, 2))},
		{"bound", Bound(1, 3, 4)},
		{"terminate", Terminate(1, 4)},
	}
	for _, s := range steps {
		before1, before2 := db.Gen(1), db.Gen(2)
		must(t, db.Apply(s.u))
		if db.Gen(1) <= before1 {
			t.Errorf("%s did not bump gen(1): %d -> %d", s.name, before1, db.Gen(1))
		}
		if db.Gen(2) != before2 {
			t.Errorf("%s moved gen(2): %d -> %d", s.name, before2, db.Gen(2))
		}
	}
	// The older snapshot still reads the stamps it was cut with.
	if snap.Gen(1) != g1 {
		t.Fatalf("snapshot gen(1) drifted to %d after later updates", snap.Gen(1))
	}

	// A rejected update stamps nothing.
	before := db.Gen(2)
	if err := db.Apply(ChDir(2, 0, geom.Of(1, 1))); err == nil {
		t.Fatal("stale update should fail")
	}
	if db.Gen(2) != before {
		t.Fatalf("rejected update bumped gen(2): %d -> %d", before, db.Gen(2))
	}

	// SpeedBounds reflects declarations (object 1 declared above).
	bounds := db.SpeedBounds()
	if v, ok := bounds[1]; !ok || v != 4 {
		t.Fatalf("SpeedBounds()[1] = %v,%v, want 4,true", v, ok)
	}
	if _, ok := bounds[2]; ok {
		t.Fatal("object 2 has no declaration")
	}
}
