package mod

// Journal: a durable append-only update log (JSON lines). Together with
// SaveJSON snapshots it gives the MOD a conventional persistence story:
// snapshot + journal replay reconstructs the database after a restart,
// and the journal doubles as a distribution format for update streams.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Journal appends updates to a writer as they are applied. It is driven
// by the DB's listener hook; create it before applying updates and every
// successful update is recorded.
type Journal struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJournal wires a journal to db: every subsequently applied update is
// appended to w as one JSON line. Call Flush before closing the
// underlying writer.
func NewJournal(db *DB, w io.Writer) *Journal {
	bw := bufio.NewWriter(w)
	j := &Journal{w: bw, enc: json.NewEncoder(bw)}
	db.OnUpdate(func(u Update) {
		if j.err != nil {
			return
		}
		j.err = j.enc.Encode(u)
	})
	return j
}

// Flush forces buffered entries to the underlying writer.
func (j *Journal) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Err returns the first write error, if any.
func (j *Journal) Err() error { return j.err }

// Replay applies a journal stream to db in order. It stops at the first
// malformed line or failed update and reports how many updates were
// applied.
func Replay(db *DB, r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	for {
		var u Update
		if err := dec.Decode(&u); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, fmt.Errorf("mod: journal entry %d: %w", n, err)
		}
		if err := db.Apply(u); err != nil {
			return n, fmt.Errorf("mod: journal entry %d: %w", n, err)
		}
		n++
	}
}

// ReplayTolerant applies a journal but skips entries rejected by the
// chronology check (useful when replaying over a snapshot that already
// contains a prefix of the journal). Malformed JSON still aborts.
func ReplayTolerant(db *DB, r io.Reader) (applied, skipped int, err error) {
	dec := json.NewDecoder(r)
	for {
		var u Update
		if err := dec.Decode(&u); err == io.EOF {
			return applied, skipped, nil
		} else if err != nil {
			return applied, skipped, fmt.Errorf("mod: journal entry %d: %w", applied+skipped, err)
		}
		if err := db.Apply(u); err != nil {
			skipped++
			continue
		}
		applied++
	}
}
