package mod

// Journal: a durable append-only update log (JSON lines). Together with
// SaveJSON snapshots it gives the MOD a conventional persistence story:
// snapshot + journal replay reconstructs the database after a restart,
// and the journal doubles as a distribution format for update streams.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// UpdateSource is anything that can feed applied updates to a listener:
// a *DB, or a sharded engine composing several DBs.
type UpdateSource interface {
	OnUpdate(Listener)
}

// SyncWriter is implemented by writers that can force buffered data to
// stable storage (notably *os.File). When the journal's underlying
// writer implements it, Sync and Close fsync after flushing.
type SyncWriter interface {
	Sync() error
}

// Journal appends updates to a writer as they are applied. It is driven
// by the source's listener hook; create it before applying updates and
// every successful update is recorded. The journal is safe for
// concurrent sources (e.g. per-shard writers applying in parallel):
// entries are serialized internally, each as one JSON line.
type Journal struct {
	mu     sync.Mutex
	w      *bufio.Writer
	syncer SyncWriter // non-nil when the underlying writer can fsync
	enc    *json.Encoder
	err    error
	closed bool
}

// ErrJournalClosed is returned by operations on a closed journal.
var ErrJournalClosed = errors.New("mod: journal closed")

// NewJournal wires a journal to src: every subsequently applied update
// is appended to w as one JSON line. Call Close before closing the
// underlying writer.
func NewJournal(src UpdateSource, w io.Writer) *Journal {
	bw := bufio.NewWriter(w)
	j := &Journal{w: bw, enc: json.NewEncoder(bw)}
	if sw, ok := w.(SyncWriter); ok {
		j.syncer = sw
	}
	src.OnUpdate(func(u Update) {
		j.mu.Lock()
		defer j.mu.Unlock()
		if j.err != nil || j.closed {
			return
		}
		j.err = j.enc.Encode(u)
	})
	return j
}

// Flush forces buffered entries to the underlying writer. A flush
// failure becomes the journal's sticky error.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *Journal) flushLocked() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// Sync flushes and, when the underlying writer supports it, forces the
// journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := j.flushLocked(); err != nil {
		return err
	}
	if j.syncer != nil {
		if err := j.syncer.Sync(); err != nil {
			j.err = err
			return err
		}
	}
	return nil
}

// Close flushes (and fsyncs, if supported), stops recording further
// updates, and surfaces the sticky write error. It does not close the
// underlying writer, which the caller owns. Closing twice returns
// ErrJournalClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		if j.err != nil {
			return j.err
		}
		return ErrJournalClosed
	}
	j.closed = true
	return j.syncLocked()
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Replay applies a journal stream to db in order. It stops at the first
// malformed line or failed update and reports how many updates were
// applied.
func Replay(db *DB, r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	for {
		var u Update
		if err := dec.Decode(&u); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, fmt.Errorf("mod: journal entry %d: %w", n, err)
		}
		if err := db.Apply(u); err != nil {
			return n, fmt.Errorf("mod: journal entry %d: %w", n, err)
		}
		n++
	}
}

// ReplayTolerant applies a journal but skips entries rejected by the
// chronology check (useful when replaying over a snapshot that already
// contains a prefix of the journal). Malformed JSON still aborts.
func ReplayTolerant(db *DB, r io.Reader) (applied, skipped int, err error) {
	dec := json.NewDecoder(r)
	for {
		var u Update
		if err := dec.Decode(&u); err == io.EOF {
			return applied, skipped, nil
		} else if err != nil {
			return applied, skipped, fmt.Errorf("mod: journal entry %d: %w", applied+skipped, err)
		}
		if err := db.Apply(u); err != nil {
			skipped++
			continue
		}
		applied++
	}
}
