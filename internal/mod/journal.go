package mod

// Journal: a durable append-only update log (JSON lines). Together with
// SaveJSON snapshots it gives the MOD a conventional persistence story:
// snapshot + journal replay reconstructs the database after a restart,
// and the journal doubles as a distribution format for update streams.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// UpdateSource is anything that can feed applied updates to a listener:
// a *DB, or a sharded engine composing several DBs.
type UpdateSource interface {
	OnUpdate(Listener)
}

// SyncWriter is implemented by writers that can force buffered data to
// stable storage (notably *os.File). When the journal's underlying
// writer implements it, Sync and Close fsync after flushing.
type SyncWriter interface {
	Sync() error
}

// Journal appends updates to a writer as they are applied. It is driven
// by the source's listener hook; create it before applying updates and
// every successful update is recorded. The journal is safe for
// concurrent sources (e.g. per-shard writers applying in parallel):
// entries are serialized internally, each as one JSON line.
type Journal struct {
	mu     sync.Mutex
	w      *bufio.Writer
	syncer SyncWriter // non-nil when the underlying writer can fsync
	err    error
	closed bool
	seq    uint64 // entries successfully buffered since creation
	// binary is the current segment's record format. Written only under
	// mu (creation, rotation); atomic so the listener can pick an
	// encoding optimistically before taking the lock.
	binary atomic.Bool
}

// encBuf is a pooled encode scratch: updates are serialized into it
// outside the journal lock, so concurrent appliers pay for encoding in
// parallel and the lock covers only the buffered byte copy. buf/enc
// serve the JSON format, bin the binary one; a journal uses whichever
// matches its current segment.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
	bin []byte
}

var encBufPool = sync.Pool{New: func() any {
	b := &encBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// ErrJournalClosed is returned by operations on a closed journal.
var ErrJournalClosed = errors.New("mod: journal closed")

// NewJournal wires a journal to src: every subsequently applied update
// is appended to w as one JSON line. Call Close before closing the
// underlying writer.
func NewJournal(src UpdateSource, w io.Writer) *Journal {
	return newJournal(src, w, false)
}

// NewJournalBinary wires a journal to src in the binary record format
// (see binary.go): every applied update is appended as one framed,
// checksummed record. The caller owns the segment header — write
// BinaryJournalHeader() to a fresh file before any update can arrive
// (the durable store does this when it creates a segment).
func NewJournalBinary(src UpdateSource, w io.Writer) *Journal {
	return newJournal(src, w, true)
}

func newJournal(src UpdateSource, w io.Writer, bin bool) *Journal {
	j := &Journal{w: bufio.NewWriter(w)}
	j.binary.Store(bin)
	if sw, ok := w.(SyncWriter); ok {
		j.syncer = sw
	}
	encode := func(b *encBuf, u Update, bin bool) ([]byte, error) {
		if bin {
			b.bin = AppendUpdateRecord(b.bin[:0], u)
			return b.bin, nil
		}
		// Encoder.Encode writes exactly the bytes the original
		// under-lock encoder did (one JSON value plus '\n'), so the
		// on-disk JSON format is unchanged.
		b.buf.Reset()
		if err := b.enc.Encode(u); err != nil {
			return nil, err
		}
		return b.buf.Bytes(), nil
	}
	src.OnUpdate(func(u Update) {
		// Encode outside the lock into pooled scratch, so concurrent
		// appliers pay for encoding in parallel and the lock covers only
		// the buffered byte copy. The format is re-checked under the
		// lock: a rotation may have switched it between the optimistic
		// encode and the write, in which case the entry is re-encoded in
		// the new segment's format (rare — rotations happen once per
		// checkpoint).
		b := encBufPool.Get().(*encBuf)
		bin := j.binary.Load()
		payload, encErr := encode(b, u, bin)
		j.mu.Lock()
		if j.err == nil && !j.closed {
			if now := j.binary.Load(); now != bin {
				payload, encErr = encode(b, u, now)
			}
			if encErr != nil {
				j.err = encErr
			} else if _, werr := j.w.Write(payload); werr != nil {
				j.err = werr
			} else {
				j.seq++
			}
		}
		j.mu.Unlock()
		encBufPool.Put(b)
	})
	return j
}

// Seq returns the number of entries successfully buffered so far. A
// Sync that begins after Seq returns n covers at least the first n
// entries: once it succeeds they are on stable storage. Group commit
// uses this as the ack watermark.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Flush forces buffered entries to the underlying writer. A flush
// failure becomes the journal's sticky error.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *Journal) flushLocked() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// Sync flushes and, when the underlying writer supports it, forces the
// journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := j.flushLocked(); err != nil {
		return err
	}
	if j.syncer != nil {
		if err := j.syncer.Sync(); err != nil {
			j.err = err
			return err
		}
	}
	return nil
}

// SwapWriter atomically redirects subsequent entries to w: it flushes
// (and fsyncs, when supported) the current writer, then installs w as
// the journal's sink. The swap happens at an entry boundary — entries
// are serialized under the journal's lock — so no entry is ever split
// across writers. A sticky error is cleared by a successful swap: the
// caller is rotating to a fresh segment precisely because everything
// the old writer held is being superseded by a snapshot, so the old
// writer's failure no longer taints the new segment. The flush/sync
// error of the old writer is still reported so the caller can decide
// whether the old segment's tail is trustworthy.
func (j *Journal) SwapWriter(w io.Writer) error {
	_, err := j.Rotate(w) //modlint:allow syncorder -- the blank is the sequence number; the error is returned
	return err
}

// Rotate is SwapWriter returning, additionally, the sequence number of
// the last entry written to the old writer — taken under the same lock
// as the swap, so group commit can resolve exactly the entries whose
// durability the old writer's final flush+fsync decided. The record
// format is preserved; use RotateBinary to switch it.
func (j *Journal) Rotate(w io.Writer) (uint64, error) {
	return j.RotateBinary(w, j.binary.Load())
}

// RotateBinary is Rotate with an explicit record format for the new
// writer: the swap happens at an entry boundary, so the old segment is
// purely one format and the new segment purely the other. This is how
// a store whose recovery reopened a legacy JSON segment migrates to
// the binary format at its next checkpoint.
func (j *Journal) RotateBinary(w io.Writer, bin bool) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.seq, ErrJournalClosed
	}
	oldErr := j.err
	if oldErr == nil {
		oldErr = j.syncLocked()
	}
	j.w = bufio.NewWriter(w)
	j.syncer = nil
	if sw, ok := w.(SyncWriter); ok {
		j.syncer = sw
	}
	j.binary.Store(bin)
	j.err = nil
	return j.seq, oldErr
}

// Close flushes (and fsyncs, if supported), stops recording further
// updates, and surfaces the sticky write error. It does not close the
// underlying writer, which the caller owns. Closing twice returns
// ErrJournalClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		if j.err != nil {
			return j.err
		}
		return ErrJournalClosed
	}
	j.closed = true
	return j.syncLocked()
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Replay applies a journal stream to db in order. It stops at the first
// malformed line or failed update and reports how many updates were
// applied.
func Replay(db *DB, r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	for {
		var u Update
		if err := dec.Decode(&u); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, fmt.Errorf("mod: journal entry %d: %w", n, err)
		}
		if err := db.Apply(u); err != nil {
			return n, fmt.Errorf("mod: journal entry %d: %w", n, err)
		}
		n++
	}
}

// ReplayStats reports what a tolerant replay did with a journal stream.
type ReplayStats struct {
	// Applied counts entries decoded and applied to the database.
	Applied int
	// Skipped counts entries that decoded but were rejected by Apply —
	// typically chronology duplicates when replaying a journal over a
	// snapshot that already contains a prefix of it.
	Skipped int
	// TornTail reports that the stream ended in an incomplete or
	// undecodable final record (a crash mid-append), which was dropped.
	TornTail bool
	// TailBytes is the length of the dropped torn tail, zero otherwise.
	TailBytes int
	// GoodBytes is the byte offset just past the last record that
	// decoded cleanly (including skipped ones and blank lines). It is
	// always a safe boundary: replaying the first GoodBytes bytes again
	// reproduces Applied+Skipped exactly, and truncating a journal file
	// to GoodBytes makes it safe to append to.
	GoodBytes int64
}

// ReplayTolerant applies a journal stream to db, skipping entries
// rejected by Apply (chronology duplicates over a snapshot, stale
// objects) and tolerating a torn tail: if the final record is
// incomplete or corrupt — the signature a crash leaves mid-append — it
// is dropped and reported in the stats rather than failing recovery. A
// record that fails to decode with further data after it is real
// corruption and aborts with an error; everything decoded up to that
// point stays applied and is reflected in the stats.
//
// Entries are framed as JSON lines (the format Journal writes); JSON
// values never contain raw newlines, so line framing is lossless.
func ReplayTolerant(db *DB, r io.Reader) (ReplayStats, error) {
	var st ReplayStats
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return st, fmt.Errorf("mod: journal read at byte %d: %w", st.GoodBytes, rerr)
		}
		if rerr == io.EOF && len(line) > 0 {
			// Unterminated final line: the record's terminating newline
			// never reached the disk, so the entry was never fully
			// committed — a torn tail even if the bytes happen to parse.
			// (Dropping it also keeps GoodBytes a boundary after which
			// appending "entry\n" yields a well-formed journal.)
			st.TornTail = true
			st.TailBytes = len(line)
			return st, nil
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var u Update
			if jerr := json.Unmarshal(trimmed, &u); jerr != nil {
				// Decode failure on a terminated line: a torn tail iff
				// nothing follows it, otherwise mid-journal corruption.
				if _, perr := br.Peek(1); perr == io.EOF {
					st.TornTail = true
					st.TailBytes = len(line)
					return st, nil
				}
				return st, fmt.Errorf("mod: journal entry %d at byte %d: %w",
					st.Applied+st.Skipped, st.GoodBytes, jerr)
			}
			if aerr := db.Apply(u); aerr != nil {
				st.Skipped++
			} else {
				st.Applied++
			}
		}
		st.GoodBytes += int64(len(line))
		if rerr == io.EOF {
			return st, nil
		}
	}
}
