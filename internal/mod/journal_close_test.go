package mod

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/geom"
)

// syncRecorder is a SyncWriter that records flushes and syncs.
type syncRecorder struct {
	bytes.Buffer
	syncs int
}

func (s *syncRecorder) Sync() error {
	s.syncs++
	return nil
}

func TestJournalCloseFlushesAndSyncs(t *testing.T) {
	db := NewDB(2, -1)
	w := &syncRecorder{}
	j := NewJournal(db, w)
	if err := db.Apply(New(1, 0, geom.Of(1, 0), geom.Of(0, 0))); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.syncs != 1 {
		t.Fatalf("Close performed %d syncs, want 1", w.syncs)
	}
	var u Update
	if err := json.Unmarshal(w.Bytes(), &u); err != nil {
		t.Fatalf("closed journal not flushed: %v (%q)", err, w.String())
	}
	// Updates after Close are not recorded.
	n := w.Len()
	if err := db.Apply(ChDir(1, 1, geom.Of(0, 1))); err != nil {
		t.Fatal(err)
	}
	_ = j.Flush() //modlint:allow syncorder -- post-Close flush: the test asserts nothing was written
	if w.Len() != n {
		t.Fatal("journal recorded an update after Close")
	}
	if err := j.Close(); !errors.Is(err, ErrJournalClosed) {
		t.Fatalf("second Close = %v, want ErrJournalClosed", err)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ budget int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	f.budget -= len(p)
	return len(p), nil
}

func TestJournalCloseSurfacesStickyError(t *testing.T) {
	db := NewDB(2, -1)
	j := NewJournal(db, &failWriter{budget: 0})
	if err := db.Apply(New(1, 0, geom.Of(1, 0), geom.Of(0, 0))); err != nil {
		t.Fatal(err)
	}
	// The encode buffered fine; the flush inside Close hits the writer.
	err := j.Close()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close = %v, want sticky disk-full error", err)
	}
	if j.Err() == nil {
		t.Fatal("sticky error not retained")
	}
	// And it stays surfaced on subsequent Closes.
	if err := j.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("repeat Close = %v, want sticky error", err)
	}
}

// multiSource fans one listener registration out to several DBs — the
// shape of a sharded engine's OnUpdate.
type multiSource []*DB

func (m multiSource) OnUpdate(l Listener) {
	for _, db := range m {
		db.OnUpdate(l)
	}
}

func TestJournalConcurrentShardWriters(t *testing.T) {
	shards := multiSource{NewDB(2, -1), NewDB(2, -1), NewDB(2, -1)}
	var buf syncRecorder
	j := NewJournal(shards, &buf)
	const perShard = 50
	var wg sync.WaitGroup
	for i, db := range shards {
		wg.Add(1)
		go func(i int, db *DB) {
			defer wg.Done()
			for k := 0; k < perShard; k++ {
				u := New(OID(1000*i+k+1), float64(k), geom.Of(1, 0), geom.Of(0, 0))
				if err := db.Apply(u); err != nil {
					t.Errorf("shard %d apply: %v", i, err)
					return
				}
			}
		}(i, db)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Every line must be one intact JSON update: interleaved writers
	// may order lines arbitrarily but never tear them.
	dec := json.NewDecoder(&buf.Buffer)
	n := 0
	for dec.More() {
		var u Update
		if err := dec.Decode(&u); err != nil {
			t.Fatalf("entry %d corrupt: %v", n, err)
		}
		n++
	}
	if n != 3*perShard {
		t.Fatalf("journal has %d entries, want %d", n, 3*perShard)
	}
}
