package mod

// Crash-shaped journal tests: truncation at every byte offset of the
// tail record (the state a mid-append crash leaves behind), writer
// rotation at an entry boundary, and the listener-ordering guarantee
// the durable subsystem depends on (journal entries must be written in
// application order even under concurrent writers).

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/geom"
)

// crashStream is a small chronological stream with all three kinds.
func crashStream() []Update {
	return []Update{
		New(1, 0, geom.Of(1, 0), geom.Of(0, 0)),
		New(2, 1, geom.Of(0, 1), geom.Of(10, 10)),
		ChDir(1, 2, geom.Of(-1, 0)),
		New(3, 3, geom.Of(2, 2), geom.Of(-5, -5)),
		ChDir(2, 4, geom.Of(1, 1)),
		Terminate(3, 5),
		ChDir(1, 6, geom.Of(0, -1)),
		Terminate(2, 7),
		New(4, 8, geom.Of(0.5, -0.25), geom.Of(100, -100)),
		ChDir(4, 9, geom.Of(-0.5, 0.25)),
	}
}

// journalBytes journals us and returns the raw bytes.
func journalBytes(t *testing.T, us []Update) []byte {
	t.Helper()
	var buf bytes.Buffer
	db := NewDB(2, -1)
	j := NewJournal(db, &buf)
	must(t, db.ApplyAll(us...))
	must(t, j.Close())
	return buf.Bytes()
}

// TestReplayTolerantTornTailEveryOffset truncates a journal at every
// byte offset of its final record and asserts tolerant replay recovers
// exactly the complete entries, reports the torn tail, and returns a
// GoodBytes boundary that is itself cleanly replayable and appendable.
func TestReplayTolerantTornTailEveryOffset(t *testing.T) {
	us := crashStream()
	data := journalBytes(t, us)
	// Locate the tail record: the byte after the second-to-last newline.
	trimmed := bytes.TrimSuffix(data, []byte("\n"))
	tailStart := bytes.LastIndexByte(trimmed, '\n') + 1
	if tailStart <= 0 {
		t.Fatalf("journal has fewer than 2 records:\n%s", data)
	}
	wantPrefix := NewDB(2, -1)
	must(t, wantPrefix.ApplyAll(us[:len(us)-1]...))

	for cut := 0; cut < len(data)-tailStart; cut++ {
		input := data[:tailStart+cut]
		db := NewDB(2, -1)
		st, err := ReplayTolerant(db, bytes.NewReader(input))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if st.Applied != len(us)-1 || st.Skipped != 0 {
			t.Fatalf("cut=%d: applied=%d skipped=%d, want %d/0", cut, st.Applied, st.Skipped, len(us)-1)
		}
		if (cut > 0) != st.TornTail {
			t.Fatalf("cut=%d: TornTail=%v", cut, st.TornTail)
		}
		if st.TornTail && st.TailBytes != cut {
			t.Fatalf("cut=%d: TailBytes=%d", cut, st.TailBytes)
		}
		if st.GoodBytes != int64(tailStart) {
			t.Fatalf("cut=%d: GoodBytes=%d, want %d", cut, st.GoodBytes, tailStart)
		}
		if !db.StateEqual(wantPrefix) {
			t.Fatalf("cut=%d: recovered state differs from the %d-update prefix", cut, len(us)-1)
		}
		// Truncating to GoodBytes and re-appending the lost record must
		// yield a journal that replays to the full state.
		repaired := append(append([]byte(nil), input[:st.GoodBytes]...),
			data[tailStart:]...)
		db2 := NewDB(2, -1)
		st2, err := ReplayTolerant(db2, bytes.NewReader(repaired))
		if err != nil || st2.TornTail || st2.Applied != len(us) {
			t.Fatalf("cut=%d: repaired replay: %+v, %v", cut, st2, err)
		}
	}
}

// TestReplayTolerantMidCorruptionAborts: garbage with complete records
// after it is corruption, not a torn tail.
func TestReplayTolerantMidCorruptionAborts(t *testing.T) {
	us := crashStream()
	data := journalBytes(t, us)
	lines := bytes.SplitAfter(data, []byte("\n"))
	var corrupt []byte
	for i, l := range lines {
		if i == 3 {
			corrupt = append(corrupt, []byte("{\"kind\":\"warp\"}\n")...)
		}
		corrupt = append(corrupt, l...)
	}
	db := NewDB(2, -1)
	st, err := ReplayTolerant(db, bytes.NewReader(corrupt))
	if err == nil {
		t.Fatalf("mid-journal corruption accepted: %+v", st)
	}
	if st.Applied != 3 {
		t.Fatalf("applied %d entries before corruption, want 3", st.Applied)
	}
	// The good prefix is still cleanly replayable.
	db2 := NewDB(2, -1)
	st2, err := ReplayTolerant(db2, bytes.NewReader(corrupt[:st.GoodBytes]))
	if err != nil || st2.Applied != st.Applied || st2.TornTail {
		t.Fatalf("good prefix replay: %+v, %v", st2, err)
	}
}

func TestReplayTolerantBlankLinesAndEmpty(t *testing.T) {
	db := NewDB(2, -1)
	st, err := ReplayTolerant(db, bytes.NewReader(nil))
	if err != nil || st.Applied != 0 || st.TornTail {
		t.Fatalf("empty journal: %+v, %v", st, err)
	}
	input := "\n\n{\"kind\":\"new\",\"oid\":1,\"tau\":1,\"a\":[1,0],\"b\":[0,0]}\n\n"
	st, err = ReplayTolerant(db, bytes.NewReader([]byte(input)))
	if err != nil || st.Applied != 1 || st.TornTail || st.GoodBytes != int64(len(input)) {
		t.Fatalf("blank-line journal: %+v, %v", st, err)
	}
}

// TestJournalSwapWriter rotates the sink mid-stream: entries land in
// exactly one segment, split at the swap boundary, and the pair of
// segments replays to the full state.
func TestJournalSwapWriter(t *testing.T) {
	var seg1, seg2 bytes.Buffer
	db := NewDB(2, -1)
	j := NewJournal(db, &seg1)
	us := crashStream()
	must(t, db.ApplyAll(us[:4]...))
	if err := j.SwapWriter(&seg2); err != nil {
		t.Fatal(err)
	}
	must(t, db.ApplyAll(us[4:]...))
	must(t, j.Close())
	if n := bytes.Count(seg1.Bytes(), []byte("\n")); n != 4 {
		t.Fatalf("segment 1 has %d entries, want 4", n)
	}
	if n := bytes.Count(seg2.Bytes(), []byte("\n")); n != len(us)-4 {
		t.Fatalf("segment 2 has %d entries, want %d", n, len(us)-4)
	}
	fresh := NewDB(2, -1)
	if _, err := ReplayTolerant(fresh, bytes.NewReader(seg1.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayTolerant(fresh, bytes.NewReader(seg2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !fresh.StateEqual(db) {
		t.Fatal("segments do not replay to the journaled state")
	}
	// A closed journal refuses to swap.
	if err := j.SwapWriter(&seg1); err != ErrJournalClosed {
		t.Fatalf("swap after close: %v", err)
	}
}

// TestListenerOrderConcurrentWriters hammers one DB from many
// goroutines and asserts listeners observe updates in strictly
// increasing tau order — the invariant that makes a journal written
// under concurrent writers replayable without losing entries.
func TestListenerOrderConcurrentWriters(t *testing.T) {
	db := NewDB(2, -1)
	var mu sync.Mutex
	var seen []float64
	db.OnUpdate(func(u Update) {
		mu.Lock()
		seen = append(seen, u.Tau)
		mu.Unlock()
	})
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				o := OID(w + 1)
				// Retry with fresh taus until the chronology check admits
				// the update; concurrent writers race for the next slot.
				for attempt := 0; ; attempt++ {
					tau := db.Tau() + 1 + float64(attempt)
					var err error
					if i == 0 && attempt == 0 {
						err = db.Apply(New(o, tau, geom.Of(1, 0), geom.Of(0, 0)))
					} else if !db.Contains(o) {
						err = db.Apply(New(o, tau, geom.Of(1, 0), geom.Of(0, 0)))
					} else {
						err = db.Apply(ChDir(o, tau, geom.Of(float64(i), 1)))
					}
					if err == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if len(seen) != writers*perWriter {
		t.Fatalf("saw %d notifications, want %d", len(seen), writers*perWriter)
	}
	for i := 1; i < len(seen); i++ {
		if !(seen[i] > seen[i-1]) {
			t.Fatalf("listener saw tau %g after %g (position %d): out of application order",
				seen[i], seen[i-1], i)
		}
	}
}

func TestStateEqual(t *testing.T) {
	us := crashStream()
	a := NewDB(2, -1)
	must(t, a.ApplyAll(us...))
	b := NewDB(2, -1)
	must(t, b.ApplyAll(us...))
	if !a.StateEqual(b) || !b.StateEqual(a) {
		t.Fatal("identical update streams produced unequal state")
	}
	// Snapshot JSON round-trip preserves state bit-exactly.
	var buf bytes.Buffer
	must(t, a.SaveJSON(&buf))
	c, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.StateEqual(c) {
		t.Fatal("JSON round-trip changed state")
	}
	// Divergence in tau, membership or pieces is detected.
	must(t, b.Apply(ChDir(1, 100, geom.Of(5, 5))))
	if a.StateEqual(b) {
		t.Fatal("extra update not detected")
	}
	d := NewDB(2, -1)
	must(t, d.ApplyAll(us[:len(us)-1]...))
	if a.StateEqual(d) {
		t.Fatal("missing update not detected")
	}
	if a.StateEqual(NewDB(3, -1)) {
		t.Fatal("dimension mismatch not detected")
	}
}
