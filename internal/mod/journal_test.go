package mod

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestJournalRecordsAndReplays(t *testing.T) {
	var buf bytes.Buffer
	db := NewDB(2, -1)
	j := NewJournal(db, &buf)
	must(t, db.ApplyAll(
		New(1, 0, geom.Of(1, 0), geom.Of(0, 0)),
		ChDir(1, 5, geom.Of(0, 1)),
		New(2, 6, geom.Of(0, 0), geom.Of(9, 9)),
		Terminate(2, 8),
	))
	// A rejected update must not be journaled.
	_ = db.Apply(ChDir(1, 3, geom.Of(1, 1)))
	must(t, j.Flush())
	if j.Err() != nil {
		t.Fatal(j.Err())
	}
	if got := strings.Count(buf.String(), "\n"); got != 4 {
		t.Fatalf("journal has %d lines, want 4:\n%s", got, buf.String())
	}

	// Replay into a fresh database reproduces the state.
	fresh := NewDB(2, -1)
	n, err := Replay(fresh, bytes.NewReader(buf.Bytes()))
	if err != nil || n != 4 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if fresh.Tau() != db.Tau() || fresh.Len() != db.Len() {
		t.Fatalf("replayed state differs: tau %g/%g len %d/%d",
			fresh.Tau(), db.Tau(), fresh.Len(), db.Len())
	}
	a, _ := db.Traj(1)
	b, _ := fresh.Traj(1)
	if !a.Equal(b) {
		t.Error("trajectory differs after replay")
	}
}

func TestReplayStopsOnBadEntry(t *testing.T) {
	db := NewDB(2, -1)
	input := `{"kind":"new","oid":1,"tau":1,"a":[1,0],"b":[0,0]}
{"kind":"warp","oid":2,"tau":2}
`
	n, err := Replay(db, strings.NewReader(input))
	if err == nil {
		t.Fatal("bad entry accepted")
	}
	if n != 1 || !db.Contains(1) {
		t.Errorf("applied %d before failure", n)
	}
	// Chronology violation also aborts strict replay.
	db2 := NewDB(2, -1)
	input2 := `{"kind":"new","oid":1,"tau":5,"a":[1,0],"b":[0,0]}
{"kind":"new","oid":2,"tau":3,"a":[1,0],"b":[0,0]}
`
	if _, err := Replay(db2, strings.NewReader(input2)); err == nil {
		t.Error("stale entry accepted by strict replay")
	}
}

func TestReplayTolerantSkipsApplied(t *testing.T) {
	// Snapshot already contains the first update; tolerant replay skips
	// it and applies the rest.
	var buf bytes.Buffer
	db := NewDB(2, -1)
	j := NewJournal(db, &buf)
	must(t, db.ApplyAll(
		New(1, 0, geom.Of(1, 0), geom.Of(0, 0)),
		ChDir(1, 5, geom.Of(0, 1)),
	))
	must(t, j.Flush())

	restored := NewDB(2, -1)
	must(t, restored.Apply(New(1, 0, geom.Of(1, 0), geom.Of(0, 0))))
	st, err := ReplayTolerant(restored, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 1 || st.Skipped != 1 {
		t.Errorf("applied=%d skipped=%d, want 1/1", st.Applied, st.Skipped)
	}
	if st.TornTail || st.GoodBytes != int64(buf.Len()) {
		t.Errorf("stats = %+v, want clean tail covering %d bytes", st, buf.Len())
	}
	a, _ := db.Traj(1)
	b, _ := restored.Traj(1)
	if !a.Equal(b) {
		t.Error("state differs after tolerant replay")
	}
}
