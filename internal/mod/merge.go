package mod

// Merge and Partition: the composition primitives behind internal/shard.
// A sharded engine holds P disjoint DBs; Partition splits one database
// into such a family and Merge reassembles a single consistent view.
// Both live here because they must compose the parts the public API
// keeps private: the last-update time tau and the applied-update log.

import (
	"fmt"
	"sort"

	"repro/internal/trajectory"
)

// Merge combines databases with pairwise-disjoint object sets into one
// snapshot: the union of the objects, tau the maximum of the parts'
// taus, and the update logs merged into chronological order. The inputs
// are not modified; the result shares no mutable state with them.
func Merge(dbs ...*DB) (*DB, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("%w: merge of zero databases", ErrBadOperation)
	}
	out := &DB{
		dim:    dbs[0].Dim(),
		objs:   make(map[OID]trajectory.Trajectory),
		bounds: make(map[OID]float64),
		tau:    dbs[0].Tau(),
	}
	for i, db := range dbs {
		db.mu.RLock()
		if db.dim != out.dim {
			db.mu.RUnlock()
			return nil, fmt.Errorf("%w: merge dim %d vs %d", ErrDimMismatch, db.dim, out.dim)
		}
		for o, tr := range db.objs {
			if _, dup := out.objs[o]; dup {
				db.mu.RUnlock()
				return nil, fmt.Errorf("%w: %s present in more than one shard (shard %d)", ErrExists, o, i)
			}
			out.objs[o] = tr
		}
		for o, v := range db.bounds {
			out.bounds[o] = v
		}
		if db.tau > out.tau {
			out.tau = db.tau
		}
		out.log = append(out.log, db.log...)
		db.mu.RUnlock()
	}
	// Each part's log is chronological; a stable sort by time is a k-way
	// merge that keeps the global log chronological and deterministic.
	sort.SliceStable(out.log, func(i, j int) bool { return out.log[i].Tau < out.log[j].Tau })
	return out, nil
}

// Partition splits the database into p parts routed by route(oid) (which
// must return a value in [0, p)). Every part inherits the full database
// tau — so a chronological update stream routed by the same function
// stays chronological per part — and the subset of the update log whose
// updates route to it. The source is not modified.
func (db *DB) Partition(p int, route func(OID) int) ([]*DB, error) {
	if p <= 0 {
		return nil, fmt.Errorf("%w: partition into %d parts", ErrBadOperation, p)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	parts := make([]*DB, p)
	for i := range parts {
		parts[i] = &DB{
			dim:    db.dim,
			objs:   make(map[OID]trajectory.Trajectory),
			bounds: make(map[OID]float64),
			tau:    db.tau,
		}
	}
	for o, tr := range db.objs {
		i := route(o)
		if i < 0 || i >= p {
			return nil, fmt.Errorf("%w: route(%s) = %d outside [0,%d)", ErrBadOperation, o, i, p)
		}
		parts[i].objs[o] = tr
	}
	for o, v := range db.bounds {
		i := route(o)
		if i < 0 || i >= p {
			return nil, fmt.Errorf("%w: route(%s) = %d outside [0,%d)", ErrBadOperation, o, i, p)
		}
		parts[i].bounds[o] = v
	}
	for _, u := range db.log {
		i := route(u.O)
		if i < 0 || i >= p {
			return nil, fmt.Errorf("%w: route(%s) = %d outside [0,%d)", ErrBadOperation, u.O, i, p)
		}
		parts[i].log = append(parts[i].log, u)
	}
	return parts, nil
}
