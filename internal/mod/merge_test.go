package mod

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/geom"
)

func buildLoggedDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB(2, -1)
	if err := db.ApplyAll(
		New(1, 0, geom.Of(1, 0), geom.Of(0, 0)),
		New(2, 1, geom.Of(0, 1), geom.Of(5, 5)),
		New(3, 2, geom.Of(-1, 0), geom.Of(9, 9)),
		ChDir(1, 3, geom.Of(0, -1)),
		Terminate(2, 4),
		ChDir(3, 5, geom.Of(1, 1)),
	); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPartitionMergeRoundTrip(t *testing.T) {
	db := buildLoggedDB(t)
	parts, err := db.Partition(3, func(o OID) int { return int(o) % 3 })
	if err != nil {
		t.Fatal(err)
	}
	// Every part inherits the source tau, so any globally chronological
	// continuation routes cleanly.
	for i, p := range parts {
		if p.Tau() != db.Tau() {
			t.Fatalf("part %d tau = %g, want %g", i, p.Tau(), db.Tau())
		}
	}
	if n := parts[0].Len() + parts[1].Len() + parts[2].Len(); n != db.Len() {
		t.Fatalf("parts hold %d objects, want %d", n, db.Len())
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := db.SaveJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := merged.SaveJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("round trip differs:\n got: %s\nwant: %s", got.String(), want.String())
	}
}

func TestMergeLogChronological(t *testing.T) {
	a, b := NewDB(1, -1), NewDB(1, -1)
	if err := a.ApplyAll(New(1, 0, geom.Of(1), geom.Of(0)), ChDir(1, 4, geom.Of(2))); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyAll(New(2, 1, geom.Of(1), geom.Of(0)), ChDir(2, 3, geom.Of(2))); err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tau() != 4 {
		t.Fatalf("merged tau = %g, want 4", m.Tau())
	}
	log := m.Log()
	for i := 1; i < len(log); i++ {
		if log[i].Tau < log[i-1].Tau {
			t.Fatalf("merged log not chronological at %d: %v", i, log)
		}
	}
	if len(log) != 4 {
		t.Fatalf("merged log has %d entries, want 4", len(log))
	}
}

func TestMergeRejectsOverlapAndDimMismatch(t *testing.T) {
	a, b := NewDB(2, -1), NewDB(2, -1)
	if err := a.Apply(New(1, 0, geom.Of(1, 0), geom.Of(0, 0))); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(New(1, 0, geom.Of(1, 0), geom.Of(0, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, b); !errors.Is(err, ErrExists) {
		t.Fatalf("overlapping merge error = %v, want ErrExists", err)
	}
	c := NewDB(3, -1)
	if _, err := Merge(a, c); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim mismatch merge error = %v, want ErrDimMismatch", err)
	}
	if _, err := Merge(); !errors.Is(err, ErrBadOperation) {
		t.Fatalf("empty merge error = %v, want ErrBadOperation", err)
	}
}

func TestPartitionRejectsBadRoute(t *testing.T) {
	db := buildLoggedDB(t)
	if _, err := db.Partition(0, func(OID) int { return 0 }); !errors.Is(err, ErrBadOperation) {
		t.Fatalf("p=0 error = %v, want ErrBadOperation", err)
	}
	if _, err := db.Partition(2, func(OID) int { return 7 }); !errors.Is(err, ErrBadOperation) {
		t.Fatalf("out-of-range route error = %v, want ErrBadOperation", err)
	}
}
