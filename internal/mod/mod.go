// Package mod implements the paper's moving object database (Definition
// 2): a finite set of object identifiers, a trajectory per object, and the
// time tau of the last update, together with the three chronological
// update operations of Definition 3 (new, terminate, chdir).
//
// The store is safe for concurrent readers with one chronological writer.
// Readers obtain immutable trajectory values, so long-running query
// evaluations can proceed against a consistent view while updates stream
// in (each sweep ingests updates explicitly at its own pace).
package mod

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/trajectory"
)

// OID identifies a moving object.
type OID uint64

// String renders an OID in the paper's o1, o2, ... style.
func (o OID) String() string { return fmt.Sprintf("o%d", uint64(o)) }

// ParseOID parses a decimal OID, accepting the bare number or the
// "o17" form String renders. OIDs are 64-bit everywhere — POST /update
// decodes them as full uint64s — so every textual parser must accept
// the full range too; this shared helper exists because two callers
// once clipped at 48 bits and 400'd on objects that legitimately
// existed.
func ParseOID(s string) (OID, error) {
	n, err := strconv.ParseUint(strings.TrimPrefix(s, "o"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("mod: bad oid %q: %w", s, err)
	}
	return OID(n), nil
}

// Errors returned by update application.
var (
	ErrChronology   = errors.New("mod: update time not after last update")
	ErrExists       = errors.New("mod: object already exists")
	ErrNotFound     = errors.New("mod: no such object")
	ErrDimMismatch  = errors.New("mod: dimension mismatch with database")
	ErrNotLive      = errors.New("mod: object not live at update time")
	ErrBadOperation = errors.New("mod: malformed update")
)

// UpdateKind enumerates the paper's three update operations.
type UpdateKind int

const (
	// KindNew creates an object: new(o, tau, A, B).
	KindNew UpdateKind = iota
	// KindTerminate ends an object: terminate(o, tau).
	KindTerminate
	// KindChDir changes direction/speed: chdir(o, tau, A).
	KindChDir
	// KindBound declares (or revises) an object's maximum speed:
	// bound(o, tau, vmax). The value rides in A as a 1-vector so the
	// wire/journal payload layout is unchanged. Speed bounds feed the
	// uncertainty layer (internal/bead): between recorded samples the
	// object could have been anywhere inside the space-time bead the
	// bound allows, and the alibi query reasons over exactly that set.
	KindBound
)

// String implements fmt.Stringer.
func (k UpdateKind) String() string {
	switch k {
	case KindNew:
		return "new"
	case KindTerminate:
		return "terminate"
	case KindChDir:
		return "chdir"
	case KindBound:
		return "bound"
	default:
		return "unknown"
	}
}

// Update is one of the paper's update operations with its time instant.
type Update struct {
	Kind UpdateKind
	O    OID
	Tau  float64
	A    geom.Vec // velocity (new, chdir)
	B    geom.Vec // initial position (new)
}

// New builds a create-object update.
func New(o OID, tau float64, a, b geom.Vec) Update {
	return Update{Kind: KindNew, O: o, Tau: tau, A: a, B: b}
}

// Terminate builds a terminate update.
func Terminate(o OID, tau float64) Update {
	return Update{Kind: KindTerminate, O: o, Tau: tau}
}

// ChDir builds a change-direction update.
func ChDir(o OID, tau float64, a geom.Vec) Update {
	return Update{Kind: KindChDir, O: o, Tau: tau, A: a}
}

// Bound builds a speed-bound update: from tau on (and retroactively —
// the bound describes the object's physical capability, not a state
// change), o is declared to never move faster than vmax.
func Bound(o OID, tau, vmax float64) Update {
	return Update{Kind: KindBound, O: o, Tau: tau, A: geom.Vec{vmax}}
}

// String renders the update in the paper's notation.
func (u Update) String() string {
	switch u.Kind {
	case KindNew:
		return fmt.Sprintf("new(%s, %g, %s, %s)", u.O, u.Tau, u.A, u.B)
	case KindTerminate:
		return fmt.Sprintf("terminate(%s, %g)", u.O, u.Tau)
	case KindChDir:
		return fmt.Sprintf("chdir(%s, %g, %s)", u.O, u.Tau, u.A)
	case KindBound:
		if len(u.A) == 1 {
			return fmt.Sprintf("bound(%s, %g, %g)", u.O, u.Tau, u.A[0])
		}
		return fmt.Sprintf("bound(%s, %g, ?)", u.O, u.Tau)
	default:
		return "update(?)"
	}
}

// Listener observes successfully applied updates (e.g. a continuing-query
// evaluator). Listeners are invoked synchronously under the writer path,
// in registration order.
type Listener func(Update)

// DB is a moving object database (O, T, tau).
type DB struct {
	mu   sync.RWMutex
	dim  int
	objs map[OID]trajectory.Trajectory
	// bounds holds declared per-object max speeds (KindBound). An
	// object without an entry has no declared bound; the uncertainty
	// layer then needs a caller-supplied default to reason about it.
	bounds map[OID]float64
	// gens stamps each object with a per-object generation counter,
	// bumped on every update (of any kind) that names the object and on
	// bulk load. Derived caches keyed by object state — the bead track
	// cache in internal/query — compare a snapshot's stamp against the
	// one they built from, so "did this object change since I looked?"
	// is one integer compare instead of a trajectory diff. Objects
	// created by paths that predate the stamp (Partition's struct
	// literals) implicitly sit at generation 0 until their next update;
	// that is consistent, because a stamp only has to CHANGE when the
	// object does.
	gens      map[OID]uint64
	tau       float64
	log       []Update
	listeners []Listener
	// notifyMu serializes the whole apply-then-notify section so
	// listeners observe updates in application (chronological) order
	// even when Apply is called concurrently. Without it, two writers
	// could apply u1 then u2 under mu but run the listeners in the
	// opposite order — a journal written that way replays u2 first and
	// the chronology check silently drops u1 on recovery.
	notifyMu sync.Mutex

	// epoch counts state mutations; it is bumped under mu after each
	// one. snap caches the epoch snapshot readers share (see
	// EpochSnapshot in snap.go); snapMu serializes its rebuilds.
	epoch  atomic.Uint64
	snap   atomic.Pointer[Snap]
	snapMu sync.Mutex
}

// NewDB creates an empty MOD for objects in R^dim with last-update time
// tau0 (use a time earlier than the first planned update).
func NewDB(dim int, tau0 float64) *DB {
	if dim <= 0 {
		panic("mod: dimension must be positive")
	}
	return &DB{
		dim:    dim,
		objs:   make(map[OID]trajectory.Trajectory),
		bounds: make(map[OID]float64),
		gens:   make(map[OID]uint64),
		tau:    tau0,
	}
}

// Dim returns the spatial dimension of the database.
func (db *DB) Dim() int { return db.dim }

// Tau returns the time of the last update.
func (db *DB) Tau() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tau
}

// Len returns the number of objects (live or terminated-but-retained).
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.objs)
}

// Objects returns all OIDs in ascending order.
func (db *DB) Objects() []OID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]OID, 0, len(db.objs))
	for o := range db.objs {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Traj returns the trajectory of object o.
func (db *DB) Traj(o OID) (trajectory.Trajectory, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	tr, ok := db.objs[o]
	if !ok {
		return trajectory.Trajectory{}, fmt.Errorf("%w: %s", ErrNotFound, o)
	}
	return tr, nil
}

// Contains reports whether o exists in the database.
func (db *DB) Contains(o OID) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.objs[o]
	return ok
}

// LiveAt returns the OIDs whose trajectories are defined at time t,
// ascending.
func (db *DB) LiveAt(t float64) []OID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []OID
	for o, tr := range db.objs {
		if tr.DefinedAt(t) {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PositionAt returns the location of o at time t.
func (db *DB) PositionAt(o OID, t float64) (geom.Vec, error) {
	tr, err := db.Traj(o)
	if err != nil {
		return nil, err
	}
	return tr.At(t)
}

// Log returns a copy of the applied update log in order.
func (db *DB) Log() []Update {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Update, len(db.log))
	copy(out, db.log)
	return out
}

// OnUpdate registers a listener invoked after each successful update.
func (db *DB) OnUpdate(l Listener) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.listeners = append(db.listeners, l)
}

// Apply validates and applies one update, enforcing the paper's
// chronological discipline (tau0 < tau) and the per-operation
// preconditions of Definition 3. Listeners run synchronously before
// Apply returns, in application order: the state mutation happens under
// the write lock, but notifyMu extends the serial section over the
// listener calls so a concurrent writer cannot publish a later update
// to the listeners first. Listeners must not call back into db's update
// path (they would deadlock on notifyMu); readers are unaffected.
func (db *DB) Apply(u Update) error {
	db.notifyMu.Lock()
	defer db.notifyMu.Unlock()
	db.mu.Lock()
	if err := db.applyLocked(u); err != nil {
		db.mu.Unlock()
		return err
	}
	ls := db.listeners
	db.mu.Unlock()
	for _, l := range ls {
		l(u)
	}
	return nil
}

func (db *DB) applyLocked(u Update) error {
	if math.IsNaN(u.Tau) || math.IsInf(u.Tau, 0) {
		return fmt.Errorf("%w: non-finite time %g", ErrBadOperation, u.Tau)
	}
	if !(u.Tau > db.tau) {
		return fmt.Errorf("%w: tau=%g, last=%g", ErrChronology, u.Tau, db.tau)
	}
	// The fields the update's kind uses must be finite: a trajectory
	// coefficient of NaN or ±Inf poisons every distance computation
	// downstream. JSON bodies cannot even express these, but the binary
	// wire path can, so the gate lives here where every path converges.
	switch u.Kind {
	case KindNew:
		if err := vecFinite(u.A); err != nil {
			return fmt.Errorf("%w: new(%s) velocity: %v", ErrBadOperation, u.O, err)
		}
		if err := vecFinite(u.B); err != nil {
			return fmt.Errorf("%w: new(%s) position: %v", ErrBadOperation, u.O, err)
		}
	case KindChDir:
		if err := vecFinite(u.A); err != nil {
			return fmt.Errorf("%w: chdir(%s) velocity: %v", ErrBadOperation, u.O, err)
		}
	case KindBound:
		if err := vecFinite(u.A); err != nil {
			return fmt.Errorf("%w: bound(%s) vmax: %v", ErrBadOperation, u.O, err)
		}
	}
	switch u.Kind {
	case KindNew:
		if _, ok := db.objs[u.O]; ok {
			return fmt.Errorf("%w: %s", ErrExists, u.O)
		}
		if u.A.Dim() != db.dim || u.B.Dim() != db.dim {
			return fmt.Errorf("%w: new(%s) has dim %d/%d, db dim %d",
				ErrDimMismatch, u.O, u.A.Dim(), u.B.Dim(), db.dim)
		}
		db.objs[u.O] = trajectory.Linear(u.Tau, u.A, u.B)
	case KindTerminate:
		tr, ok := db.objs[u.O]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNotFound, u.O)
		}
		if tr.IsTerminated() {
			return fmt.Errorf("%w: %s already terminated at %g", ErrNotLive, u.O, tr.End())
		}
		nt, err := tr.Terminate(u.Tau)
		if err != nil {
			return err
		}
		db.objs[u.O] = nt
	case KindChDir:
		tr, ok := db.objs[u.O]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNotFound, u.O)
		}
		if !tr.DefinedAt(u.Tau) {
			return fmt.Errorf("%w: chdir(%s) at %g outside [%g,%g]",
				ErrNotLive, u.O, u.Tau, tr.Start(), tr.End())
		}
		if u.A.Dim() != db.dim {
			return fmt.Errorf("%w: chdir(%s) dim %d, db dim %d", ErrDimMismatch, u.O, u.A.Dim(), db.dim)
		}
		nt, err := tr.ChDir(u.Tau, u.A)
		if err != nil {
			return err
		}
		db.objs[u.O] = nt
	case KindBound:
		if _, ok := db.objs[u.O]; !ok {
			return fmt.Errorf("%w: %s", ErrNotFound, u.O)
		}
		if len(u.A) != 1 {
			return fmt.Errorf("%w: bound(%s) wants a single [vmax], got %d values",
				ErrBadOperation, u.O, len(u.A))
		}
		if u.B.Dim() != 0 {
			return fmt.Errorf("%w: bound(%s) carries a position", ErrBadOperation, u.O)
		}
		if u.A[0] < 0 {
			return fmt.Errorf("%w: bound(%s) vmax %g < 0", ErrBadOperation, u.O, u.A[0])
		}
		if db.bounds == nil {
			db.bounds = make(map[OID]float64)
		}
		db.bounds[u.O] = u.A[0]
	default:
		return fmt.Errorf("%w: kind %d", ErrBadOperation, u.Kind)
	}
	db.tau = u.Tau
	db.log = append(db.log, u)
	if db.gens == nil {
		db.gens = make(map[OID]uint64)
	}
	db.gens[u.O]++
	db.epoch.Add(1)
	return nil
}

// vecFinite rejects vectors with NaN or infinite components.
func vecFinite(v geom.Vec) error {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("non-finite component %g", x)
		}
	}
	return nil
}

// SpeedBound returns o's declared maximum speed, if any.
func (db *DB) SpeedBound(o OID) (float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.bounds[o]
	return v, ok
}

// SpeedBounds returns a copy of the declared per-object speed bounds.
func (db *DB) SpeedBounds() map[OID]float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[OID]float64, len(db.bounds))
	for o, v := range db.bounds {
		out[o] = v
	}
	return out
}

// Gen returns o's generation stamp. The stamp changes whenever the
// object does (any update kind, including speed-bound declarations);
// 0 means the object has not changed since the database was assembled.
func (db *DB) Gen(o OID) uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gens[o]
}

// Load inserts a pre-existing trajectory directly, bypassing the
// chronological update discipline — the bulk-loading path for historical
// data (past-query workloads, imports). Definition 2 requires every turn
// to lie at or before the database time, so tau advances to cover the
// loaded trajectory's recorded events.
func (db *DB) Load(o OID, tr trajectory.Trajectory) error {
	if !tr.IsDefined() {
		return fmt.Errorf("%w: undefined trajectory for %s", ErrBadOperation, o)
	}
	if tr.Dim() != db.dim {
		return fmt.Errorf("%w: %s has dim %d, db dim %d", ErrDimMismatch, o, tr.Dim(), db.dim)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.objs[o]; ok {
		return fmt.Errorf("%w: %s", ErrExists, o)
	}
	db.objs[o] = tr
	t := tr.Start()
	for _, turn := range tr.Breaks() {
		if turn > t {
			t = turn
		}
	}
	if tr.IsTerminated() && tr.End() > t {
		t = tr.End()
	}
	if t > db.tau {
		db.tau = t
	}
	if db.gens == nil {
		db.gens = make(map[OID]uint64)
	}
	db.gens[o]++
	db.epoch.Add(1)
	return nil
}

// ApplyAll applies updates in order, stopping at the first error.
func (db *DB) ApplyAll(us ...Update) error {
	for i, u := range us {
		if err := db.Apply(u); err != nil {
			return fmt.Errorf("mod: update %d (%s): %w", i, u, err)
		}
	}
	return nil
}

// ApplyBatch applies updates in order under one lock/listener session:
// the write lock is taken once for the whole batch and listeners are
// notified once per applied update after it is released, so per-update
// lock traffic is paid once per batch and journal listeners see the
// batch as one contiguous run. Application stops at the first rejected
// update; the count of applied updates is returned along with the
// error, and every applied prefix update is delivered to listeners (an
// error does not roll anything back — exactly as repeated Apply calls
// behave). Readers block for the duration of the batch apply, which is
// the batch-ingest trade: size batches for milliseconds, not seconds.
func (db *DB) ApplyBatch(us []Update) (int, error) {
	db.notifyMu.Lock()
	defer db.notifyMu.Unlock()
	db.mu.Lock()
	n := 0
	var err error
	for i, u := range us {
		if aerr := db.applyLocked(u); aerr != nil {
			err = fmt.Errorf("mod: update %d (%s): %w", i, u, aerr)
			break
		}
		n = i + 1
	}
	ls := db.listeners
	db.mu.Unlock()
	for _, u := range us[:n] {
		for _, l := range ls {
			l(u)
		}
	}
	return n, err
}

// Snapshot returns an independent copy of the database state. Because
// trajectories are immutable values, the copy shares no mutable state
// with the original.
func (db *DB) Snapshot() *DB {
	db.mu.RLock()
	defer db.mu.RUnlock()
	objs := make(map[OID]trajectory.Trajectory, len(db.objs))
	for o, tr := range db.objs {
		objs[o] = tr
	}
	log := make([]Update, len(db.log))
	copy(log, db.log)
	bounds := make(map[OID]float64, len(db.bounds))
	for o, v := range db.bounds {
		bounds[o] = v
	}
	gens := make(map[OID]uint64, len(db.gens))
	for o, g := range db.gens {
		gens[o] = g
	}
	return &DB{dim: db.dim, objs: objs, bounds: bounds, gens: gens, tau: db.tau, log: log}
}

// StateEqual reports whether two databases hold identical state: same
// dimension, same last-update time and the same trajectory (piece for
// piece, bit-exact) for the same object set. The applied-update log is
// NOT compared — two databases reaching one state along different paths
// (direct updates vs snapshot-load plus journal replay) are equal. The
// bit-exact float comparison is intentional: recovery is required to
// reproduce state exactly, and JSON float64 round-tripping is lossless.
func (db *DB) StateEqual(other *DB) bool {
	if db == other {
		return true
	}
	a, b := db.Snapshot(), other.Snapshot()
	if a.dim != b.dim || len(a.objs) != len(b.objs) {
		return false
	}
	if a.tau != b.tau { //modlint:allow floatcmp -- recovery must restore tau bit-exactly
		return false
	}
	if len(a.bounds) != len(b.bounds) {
		return false
	}
	for o, va := range a.bounds {
		vb, ok := b.bounds[o]
		if !ok {
			return false
		}
		if va != vb { //modlint:allow floatcmp -- recovery must restore speed bounds bit-exactly
			return false
		}
	}
	for o, ta := range a.objs {
		tb, ok := b.objs[o]
		if !ok {
			return false
		}
		pa, pb := ta.Pieces(), tb.Pieces()
		if len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			if pa[i].Start != pb[i].Start || pa[i].End != pb[i].End { //modlint:allow floatcmp -- recovery must restore pieces bit-exactly
				return false
			}
			if !pa[i].A.Equal(pb[i].A) || !pa[i].B.Equal(pb[i].B) {
				return false
			}
		}
	}
	return true
}

// Trajectories returns a copy of the full object->trajectory mapping.
func (db *DB) Trajectories() map[OID]trajectory.Trajectory {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[OID]trajectory.Trajectory, len(db.objs))
	for o, tr := range db.objs {
		out[o] = tr
	}
	return out
}
