package mod

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/trajectory"
)

func TestNewDB(t *testing.T) {
	db := NewDB(2, 0)
	if db.Dim() != 2 || db.Len() != 0 || db.Tau() != 0 {
		t.Fatalf("fresh db: dim=%d len=%d tau=%g", db.Dim(), db.Len(), db.Tau())
	}
	defer func() {
		if recover() == nil {
			t.Error("NewDB(0) should panic")
		}
	}()
	NewDB(0, 0)
}

func TestApplyNew(t *testing.T) {
	db := NewDB(2, 0)
	if err := db.Apply(New(1, 5, geom.Of(1, 0), geom.Of(0, 0))); err != nil {
		t.Fatal(err)
	}
	if db.Tau() != 5 || db.Len() != 1 || !db.Contains(1) {
		t.Errorf("after new: tau=%g len=%d", db.Tau(), db.Len())
	}
	pos, err := db.PositionAt(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !pos.ApproxEqual(geom.Of(2, 0), 1e-12) {
		t.Errorf("pos = %v", pos)
	}
	// Duplicate OID.
	err = db.Apply(New(1, 6, geom.Of(1, 0), geom.Of(0, 0)))
	if !errors.Is(err, ErrExists) {
		t.Errorf("duplicate new: %v", err)
	}
	// Wrong dimension.
	err = db.Apply(New(2, 7, geom.Of(1), geom.Of(0)))
	if !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch: %v", err)
	}
}

func TestChronology(t *testing.T) {
	db := NewDB(1, 10)
	if err := db.Apply(New(1, 5, geom.Of(1), geom.Of(0))); !errors.Is(err, ErrChronology) {
		t.Errorf("past update accepted: %v", err)
	}
	if err := db.Apply(New(1, 10, geom.Of(1), geom.Of(0))); !errors.Is(err, ErrChronology) {
		t.Errorf("same-time update accepted: %v", err)
	}
	if err := db.Apply(New(1, 11, geom.Of(1), geom.Of(0))); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(Terminate(1, math.NaN())); !errors.Is(err, ErrBadOperation) {
		t.Errorf("NaN time accepted: %v", err)
	}
}

func TestTerminate(t *testing.T) {
	db := NewDB(1, 0)
	must(t, db.Apply(New(1, 1, geom.Of(1), geom.Of(0))))
	must(t, db.Apply(Terminate(1, 5)))
	tr, err := db.Traj(1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsTerminated() || tr.End() != 5 {
		t.Errorf("End = %g", tr.End())
	}
	if err := db.Apply(Terminate(1, 7)); !errors.Is(err, ErrNotLive) {
		t.Errorf("double terminate: %v", err)
	}
	if err := db.Apply(Terminate(9, 8)); !errors.Is(err, ErrNotFound) {
		t.Errorf("terminate missing: %v", err)
	}
}

func TestChDir(t *testing.T) {
	db := NewDB(2, 0)
	must(t, db.Apply(New(1, 0.5, geom.Of(1, 0), geom.Of(0, 0))))
	must(t, db.Apply(ChDir(1, 3, geom.Of(0, 1))))
	pos, _ := db.PositionAt(1, 5)
	// At t=3 the object was at (2.5, 0); then moves with (0,1).
	if !pos.ApproxEqual(geom.Of(2.5, 2), 1e-9) {
		t.Errorf("pos = %v", pos)
	}
	if err := db.Apply(ChDir(2, 6, geom.Of(1, 0))); !errors.Is(err, ErrNotFound) {
		t.Errorf("chdir missing: %v", err)
	}
	must(t, db.Apply(Terminate(1, 7)))
	if err := db.Apply(ChDir(1, 9, geom.Of(1, 0))); !errors.Is(err, ErrNotLive) {
		t.Errorf("chdir after terminate: %v", err)
	}
}

func TestLiveAt(t *testing.T) {
	db := NewDB(1, 0)
	must(t, db.Apply(New(1, 1, geom.Of(1), geom.Of(0))))
	must(t, db.Apply(New(2, 2, geom.Of(1), geom.Of(0))))
	must(t, db.Apply(Terminate(1, 5)))
	if got := db.LiveAt(3); len(got) != 2 {
		t.Errorf("LiveAt(3) = %v", got)
	}
	if got := db.LiveAt(6); len(got) != 1 || got[0] != 2 {
		t.Errorf("LiveAt(6) = %v", got)
	}
	if got := db.LiveAt(0.5); len(got) != 0 {
		t.Errorf("LiveAt(0.5) = %v", got)
	}
}

func TestObjectsSorted(t *testing.T) {
	db := NewDB(1, 0)
	for i, o := range []OID{5, 3, 9, 1} {
		must(t, db.Apply(New(o, float64(i+1), geom.Of(1), geom.Of(0))))
	}
	got := db.Objects()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Objects not sorted: %v", got)
		}
	}
}

func TestLogAndSnapshot(t *testing.T) {
	db := NewDB(1, 0)
	must(t, db.ApplyAll(
		New(1, 1, geom.Of(1), geom.Of(0)),
		ChDir(1, 2, geom.Of(-1)),
	))
	if got := db.Log(); len(got) != 2 || got[0].Kind != KindNew || got[1].Kind != KindChDir {
		t.Errorf("Log = %v", got)
	}
	snap := db.Snapshot()
	must(t, db.Apply(Terminate(1, 3)))
	if snap.Tau() != 2 || len(snap.Log()) != 2 {
		t.Error("snapshot mutated by later update")
	}
	str, _ := snap.Traj(1)
	if str.IsTerminated() {
		t.Error("snapshot trajectory mutated")
	}
}

func TestApplyAllStopsOnError(t *testing.T) {
	db := NewDB(1, 0)
	err := db.ApplyAll(
		New(1, 1, geom.Of(1), geom.Of(0)),
		New(1, 2, geom.Of(1), geom.Of(0)), // duplicate
		New(2, 3, geom.Of(1), geom.Of(0)), // never reached
	)
	if err == nil {
		t.Fatal("expected error")
	}
	if db.Contains(2) {
		t.Error("ApplyAll continued past error")
	}
}

func TestListener(t *testing.T) {
	db := NewDB(1, 0)
	var seen []Update
	db.OnUpdate(func(u Update) { seen = append(seen, u) })
	must(t, db.Apply(New(1, 1, geom.Of(1), geom.Of(0))))
	_ = db.Apply(New(1, 2, geom.Of(1), geom.Of(0))) // fails; no callback
	if len(seen) != 1 || seen[0].O != 1 {
		t.Errorf("listener saw %v", seen)
	}
}

func TestUpdateString(t *testing.T) {
	u := New(3, 1.5, geom.Of(1, 0), geom.Of(2, 2))
	if u.String() != "new(o3, 1.5, (1, 0), (2, 2))" {
		t.Errorf("String = %q", u.String())
	}
	if Terminate(3, 2).String() != "terminate(o3, 2)" {
		t.Errorf("String = %q", Terminate(3, 2).String())
	}
	if ChDir(3, 2, geom.Of(0, 1)).String() != "chdir(o3, 2, (0, 1))" {
		t.Errorf("String = %q", ChDir(3, 2, geom.Of(0, 1)).String())
	}
	for _, k := range []UpdateKind{KindNew, KindTerminate, KindChDir, UpdateKind(9)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}

func TestConcurrentReaders(t *testing.T) {
	db := NewDB(1, 0)
	must(t, db.Apply(New(1, 1, geom.Of(1), geom.Of(0))))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = db.Objects()
				_, _ = db.Traj(1)
				_ = db.LiveAt(10)
				_ = db.Tau()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		must(t, db.Apply(ChDir(1, float64(i)+2, geom.Of(float64(i%3)))))
	}
	close(stop)
	wg.Wait()
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadHistorical(t *testing.T) {
	db := NewDB(1, -1)
	tr := trajectory.Linear(0, geom.Of(1), geom.Of(0))
	tr2, _ := tr.ChDir(5, geom.Of(-1))
	if err := db.Load(7, tr2); err != nil {
		t.Fatal(err)
	}
	// Same instant load of a second object is fine (bulk load).
	if err := db.Load(8, trajectory.Linear(0, geom.Of(2), geom.Of(1))); err != nil {
		t.Fatal(err)
	}
	if db.Tau() < 5 {
		t.Errorf("tau = %g, want >= 5 (covers recorded turn)", db.Tau())
	}
	if err := db.Load(7, tr); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate load: %v", err)
	}
	if err := db.Load(9, trajectory.Trajectory{}); !errors.Is(err, ErrBadOperation) {
		t.Errorf("undefined load: %v", err)
	}
	if err := db.Load(9, trajectory.Linear(0, geom.Of(1, 2), geom.Of(0, 0))); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch load: %v", err)
	}
	// Chronology continues after the loaded tau.
	if err := db.Apply(ChDir(7, 4, geom.Of(1))); !errors.Is(err, ErrChronology) {
		t.Errorf("pre-tau update after load: %v", err)
	}
	if err := db.Apply(ChDir(8, 6, geom.Of(1))); err != nil {
		t.Errorf("post-tau update after load: %v", err)
	}
}

// TestParseOID pins the full 64-bit OID range: a narrower 48-bit parse
// once rejected identifiers the database itself stores without issue.
func TestParseOID(t *testing.T) {
	big := uint64(1)<<52 + 7 // above 2^48: the old parse clipped here
	cases := []struct {
		in   string
		want OID
	}{
		{"0", 0},
		{"42", 42},
		{"o42", 42}, // String() form round-trips
		{"18446744073709551615", OID(math.MaxUint64)},
		{"281474976710656", OID(1) << 48},
		{"4503599627370503", OID(big)},
		{"o4503599627370503", OID(big)},
	}
	for _, c := range cases {
		got, err := ParseOID(c.in)
		if err != nil {
			t.Errorf("ParseOID(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseOID(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "o", "abc", "-1", "1.5", "oo1", "18446744073709551616"} {
		if got, err := ParseOID(bad); err == nil {
			t.Errorf("ParseOID(%q) = %d, want error", bad, got)
		}
	}
}

// TestParseOIDRoundTrip: every OID's String() form parses back to itself.
func TestParseOIDRoundTrip(t *testing.T) {
	for _, o := range []OID{0, 1, 1 << 20, 1 << 48, 1<<52 + 7, math.MaxUint64} {
		got, err := ParseOID(o.String())
		if err != nil {
			t.Fatalf("ParseOID(%q): %v", o.String(), err)
		}
		if got != o {
			t.Fatalf("round trip %d -> %q -> %d", o, o.String(), got)
		}
	}
}
