package mod

// Copy-on-write epoch snapshots: the lock-free read path for query
// fan-out. Every mutation bumps the database's epoch counter; the first
// reader after a mutation pays one O(n) map copy under the read lock
// and publishes it, and every subsequent reader of the same epoch gets
// that immutable view with two atomic loads and no lock at all. Under a
// query-heavy load the per-query cost drops from "copy the object map
// AND the whole update log under the shard lock" (what Snapshot does)
// to a pointer read, so past-query fan-out no longer contends with the
// writer for the shard lock.

import (
	"fmt"
	"sort"

	"repro/internal/trajectory"
)

// Snap is an immutable point-in-time view of a database: the object
// map, dimension and tau as of one epoch. It shares the trajectory map
// with every other holder of the same epoch's snapshot — safe because
// nothing ever mutates a published Snap (trajectories are immutable
// values and the map itself is never written after publication).
type Snap struct {
	dim    int
	tau    float64
	epoch  uint64
	objs   map[OID]trajectory.Trajectory
	bounds map[OID]float64
	gens   map[OID]uint64
}

// Dim returns the spatial dimension.
func (s *Snap) Dim() int { return s.dim }

// Tau returns the last-update time the snapshot was taken at.
func (s *Snap) Tau() float64 { return s.tau }

// Epoch returns the database epoch the snapshot reflects.
func (s *Snap) Epoch() uint64 { return s.epoch }

// Len returns the number of objects in the snapshot.
func (s *Snap) Len() int { return len(s.objs) }

// Traj returns the trajectory of object o as of the snapshot.
func (s *Snap) Traj(o OID) (trajectory.Trajectory, error) {
	tr, ok := s.objs[o]
	if !ok {
		return trajectory.Trajectory{}, fmt.Errorf("%w: %s", ErrNotFound, o)
	}
	return tr, nil
}

// Objects returns the snapshot's OIDs in ascending order.
func (s *Snap) Objects() []OID {
	out := make([]OID, 0, len(s.objs))
	for o := range s.objs {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Trajectories returns the snapshot's object map. The map is SHARED
// with every holder of this snapshot and must be treated as read-only;
// callers that need to mutate must copy. This is the zero-copy seed
// path for query sweeps (query.TrajSource).
func (s *Snap) Trajectories() map[OID]trajectory.Trajectory { return s.objs }

// SpeedBound returns o's declared maximum speed as of the snapshot.
func (s *Snap) SpeedBound(o OID) (float64, bool) {
	v, ok := s.bounds[o]
	return v, ok
}

// Gen returns o's generation stamp as of the snapshot (see DB.Gen).
// Caches derived from an older snapshot compare stamps to find exactly
// the objects that changed in between; an object absent from the stamp
// map reads as generation 0, which is consistent with DB.Gen.
func (s *Snap) Gen(o OID) uint64 { return s.gens[o] }

// EpochSnapshot returns an immutable snapshot of the current epoch.
// The fast path is lock-free: if the cached snapshot is current, it is
// returned after two atomic loads. Otherwise one reader rebuilds the
// cache under the read lock (rebuilds are serialized on snapMu so a
// write burst costs one copy, not one per waiting reader) and
// publishes it for everyone.
//
// The epoch counter is bumped under the write lock after each
// mutation, so a cached snapshot whose epoch equals the current epoch
// is exactly the state every mutation so far produced; returning it
// while a writer is mid-apply linearizes the read before that write.
func (db *DB) EpochSnapshot() *Snap {
	if s := db.snap.Load(); s != nil && s.epoch == db.epoch.Load() {
		return s
	}
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if s := db.snap.Load(); s != nil && s.epoch == db.epoch.Load() {
		return s
	}
	db.mu.RLock()
	objs := make(map[OID]trajectory.Trajectory, len(db.objs))
	for o, tr := range db.objs {
		objs[o] = tr
	}
	bounds := make(map[OID]float64, len(db.bounds))
	for o, v := range db.bounds {
		bounds[o] = v
	}
	gens := make(map[OID]uint64, len(db.gens))
	for o, g := range db.gens {
		gens[o] = g
	}
	s := &Snap{dim: db.dim, tau: db.tau, epoch: db.epoch.Load(), objs: objs, bounds: bounds, gens: gens}
	db.mu.RUnlock()
	db.snap.Store(s)
	return s
}
