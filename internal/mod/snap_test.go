package mod

import (
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
)

// TestEpochSnapshotCaching pins the MVCC contract: unchanged epoch →
// same pointer (the lock-free fast path), mutation → new epoch and a
// fresh snapshot, and published snapshots never change.
func TestEpochSnapshotCaching(t *testing.T) {
	db := NewDB(2, math.Inf(-1))
	s1 := db.EpochSnapshot()
	if s1.Len() != 0 || !math.IsInf(s1.Tau(), -1) || s1.Dim() != 2 {
		t.Fatalf("fresh snapshot: len=%d tau=%g dim=%d", s1.Len(), s1.Tau(), s1.Dim())
	}
	if s2 := db.EpochSnapshot(); s2 != s1 {
		t.Fatal("unchanged epoch returned a different snapshot")
	}

	must(t, db.Apply(New(1, 5, geom.Of(1, 0), geom.Of(0, 0))))
	s3 := db.EpochSnapshot()
	if s3 == s1 {
		t.Fatal("mutation did not invalidate the cached snapshot")
	}
	if s3.Epoch() <= s1.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", s1.Epoch(), s3.Epoch())
	}
	if s3.Tau() != 5 || s3.Len() != 1 {
		t.Fatalf("new snapshot: tau=%g len=%d", s3.Tau(), s3.Len())
	}
	// The old snapshot is immutable: it still reports the old state.
	if s1.Len() != 0 || !math.IsInf(s1.Tau(), -1) {
		t.Fatalf("published snapshot mutated: len=%d tau=%g", s1.Len(), s1.Tau())
	}
	if _, err := s3.Traj(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Traj(1); err == nil {
		t.Fatal("old snapshot sees an object created after it")
	}
}

// TestEpochSnapshotLoadPaths: Load (historical bulk-load) bumps the
// epoch too — a cached pre-load snapshot must not be served after the
// database's contents changed without going through Apply.
func TestEpochSnapshotLoadPaths(t *testing.T) {
	db := buildSampleDB(t)
	tr, err := db.Traj(1)
	if err != nil {
		t.Fatal(err)
	}

	db2 := NewDB(2, -1)
	stale := db2.EpochSnapshot()
	must(t, db2.Load(1, tr))
	after := db2.EpochSnapshot()
	if after == stale || after.Len() != 1 {
		t.Fatalf("Load did not refresh the snapshot (len=%d, want 1)", after.Len())
	}
}

// TestEpochSnapshotConcurrent hammers the fast path under a writer:
// every snapshot a reader observes must be internally consistent (its
// tau matches a prefix of the applied stream, never a torn mix) and
// epochs must be monotone per reader. Run under -race in CI.
func TestEpochSnapshotConcurrent(t *testing.T) {
	db := NewDB(2, -1)
	const updates = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			var lastTau = math.Inf(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := db.EpochSnapshot()
				if s.Epoch() < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", s.Epoch(), lastEpoch)
					return
				}
				if s.Tau() < lastTau {
					t.Errorf("tau went backwards: %g after %g", s.Tau(), lastTau)
					return
				}
				// tau n ⇒ exactly n+1 updates applied (taus are 0..n):
				// a torn view would break this pairing.
				if !math.IsInf(s.Tau(), -1) && s.Len() != 1 {
					t.Errorf("snapshot with tau %g holds %d objects, want 1", s.Tau(), s.Len())
					return
				}
				lastEpoch, lastTau = s.Epoch(), s.Tau()
			}
		}()
	}
	must(t, db.Apply(New(1, 0, geom.Of(1, 0), geom.Of(0, 0))))
	for i := 1; i < updates; i++ {
		must(t, db.Apply(ChDir(1, float64(i), geom.Of(float64(i%7), 1))))
	}
	close(stop)
	wg.Wait()
	final := db.EpochSnapshot()
	if final.Tau() != updates-1 {
		t.Fatalf("final snapshot tau %g, want %d", final.Tau(), updates-1)
	}
}
