package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with lock-free observation.
// Buckets are defined by strictly increasing upper bounds; an implicit
// +Inf bucket catches everything above the last bound. Counts are
// per-bucket (not cumulative); the Prometheus writer accumulates at
// exposition time.
type Histogram struct {
	bounds  []float64 // immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// DefLatencyBuckets spans 100µs .. 60s exponentially — wide enough for
// both a sub-millisecond sharded sweep and a pathological full-window
// query, matching the spread observed in the E1–E10 experiments.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// DefSizeBuckets spans 1 .. 1e6 for object/candidate counts.
var DefSizeBuckets = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
	10000, 50000, 100000, 500000, 1e6,
}

// checkBounds validates and copies bucket upper bounds.
func checkBounds(bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	out := make([]float64, len(bounds))
	copy(out, bounds)
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: non-finite bucket bound %g", b))
		}
		if i > 0 && out[i-1] >= b {
			panic(fmt.Sprintf("obs: bucket bounds not strictly increasing at %g", b))
		}
	}
	return out
}

func newHistogram(bounds []float64) *Histogram {
	return newHistogramChecked(checkBounds(bounds))
}

// newHistogramChecked builds a histogram over already-validated bounds
// (shared, not copied — HistogramVec children all alias one slice).
func newHistogramChecked(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v; len(bounds) = +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Merge folds o's observations into h. Both histograms must share the
// same bucket bounds (the invariant that makes per-shard histograms
// roll up exactly: merge is associative and commutative, like
// core.Stats.Add). o keeps its contents. Concurrent observations on o
// during a merge may be split across the two histograms but are never
// lost or double-counted per field.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merge of histograms with %d vs %d buckets", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] { //modlint:allow floatcmp -- bounds are configuration constants compared for identity, not computed values
			return fmt.Errorf("obs: merge of histograms with different bounds at bucket %d", i)
		}
	}
	for i := range o.buckets {
		h.buckets[i].Add(o.buckets[i].Load())
	}
	h.count.Add(o.count.Load())
	d := math.Float64frombits(o.sumBits.Load())
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return nil
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot copies the bucket counts (per-bucket, not cumulative).
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket that contains it. Values in the +Inf
// bucket report the last finite bound; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// Summary is a compact JSON-ready digest of a histogram — the form
// modbench embeds in BENCH records so bench/*.json carries latency
// percentiles alongside the raw seconds.
type Summary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary digests the current state.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
