package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	// Upper bounds are inclusive (Prometheus le semantics).
	for _, v := range []float64{0, 0.5, 1} {
		h.Observe(v)
	}
	h.Observe(1.5) // (1, 2]
	h.Observe(2)   // (1, 2]
	h.Observe(4)   // (2, 5]
	h.Observe(100) // +Inf
	got := h.snapshot()
	want := []uint64{3, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if math.Abs(h.Sum()-109) > 1e-9 {
		t.Errorf("sum = %g, want 109", h.Sum())
	}
}

// fill returns a histogram over bounds with n pseudo-random observations.
func fill(bounds []float64, seed int64, n int) *Histogram {
	h := newHistogram(bounds)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		h.Observe(rng.Float64() * bounds[len(bounds)-1] * 1.2)
	}
	return h
}

// equal compares two histograms field by field.
func histEqual(a, b *Histogram) bool {
	as, bs := a.snapshot(), b.snapshot()
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return a.Count() == b.Count() && math.Abs(a.Sum()-b.Sum()) < 1e-9
}

// TestMergeAssociativeCommutative is the roll-up invariant: per-shard
// histograms must merge into the same totals regardless of grouping or
// order, exactly like core.Stats.Add. (a+b)+c == a+(b+c) == (c+b)+a.
func TestMergeAssociativeCommutative(t *testing.T) {
	bounds := DefLatencyBuckets
	mk := func() (a, b, c *Histogram) {
		return fill(bounds, 1, 500), fill(bounds, 2, 300), fill(bounds, 3, 700)
	}

	// (a+b)+c
	a1, b1, c1 := mk()
	if err := a1.Merge(b1); err != nil {
		t.Fatal(err)
	}
	if err := a1.Merge(c1); err != nil {
		t.Fatal(err)
	}

	// a+(b+c)
	a2, b2, c2 := mk()
	if err := b2.Merge(c2); err != nil {
		t.Fatal(err)
	}
	if err := a2.Merge(b2); err != nil {
		t.Fatal(err)
	}

	// (c+b)+a
	a3, b3, c3 := mk()
	if err := c3.Merge(b3); err != nil {
		t.Fatal(err)
	}
	if err := c3.Merge(a3); err != nil {
		t.Fatal(err)
	}

	if !histEqual(a1, a2) {
		t.Errorf("(a+b)+c != a+(b+c): %v/%g vs %v/%g", a1.snapshot(), a1.Sum(), a2.snapshot(), a2.Sum())
	}
	if !histEqual(a1, c3) {
		t.Errorf("(a+b)+c != (c+b)+a: %v/%g vs %v/%g", a1.snapshot(), a1.Sum(), c3.snapshot(), c3.Sum())
	}
}

func TestMergeRejectsMismatchedBounds(t *testing.T) {
	a := newHistogram([]float64{1, 2, 3})
	if err := a.Merge(newHistogram([]float64{1, 2})); err == nil {
		t.Error("merge with fewer buckets: want error")
	}
	if err := a.Merge(newHistogram([]float64{1, 2, 4})); err == nil {
		t.Error("merge with different bound: want error")
	}
	b := newHistogram([]float64{1, 2, 3})
	b.Observe(2.5)
	if err := a.Merge(b); err != nil {
		t.Errorf("merge with identical bounds: %v", err)
	}
	if a.Count() != 1 {
		t.Errorf("count after merge = %d", a.Count())
	}
}

func TestMergeLeavesSourceIntact(t *testing.T) {
	a, b := newHistogram([]float64{1, 10}), newHistogram([]float64{1, 10})
	b.Observe(5)
	b.Observe(20)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if b.Count() != 2 || b.Sum() != 25 {
		t.Errorf("source mutated by merge: count=%d sum=%g", b.Count(), b.Sum())
	}
}

func TestQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile = %g", h.Quantile(0.5))
	}
	// 100 values uniform in (0, 40]: quantiles track the value range.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	if p50 := h.Quantile(0.50); p50 < 10 || p50 > 30 {
		t.Errorf("p50 = %g, want in [10, 30]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 30 || p99 > 40 {
		t.Errorf("p99 = %g, want in (30, 40]", p99)
	}
	// Everything in the overflow bucket reports the last finite bound.
	inf := newHistogram([]float64{1, 2})
	inf.Observe(50)
	if q := inf.Quantile(0.9); q != 2 {
		t.Errorf("overflow quantile = %g, want 2 (last finite bound)", q)
	}
}

func TestSummary(t *testing.T) {
	h := newHistogram(DefLatencyBuckets)
	for i := 0; i < 10; i++ {
		h.Observe(0.003)
	}
	s := h.Summary()
	if s.Count != 10 {
		t.Errorf("summary count = %d", s.Count)
	}
	if math.Abs(s.Sum-0.03) > 1e-9 {
		t.Errorf("summary sum = %g", s.Sum)
	}
	if s.P50 <= 0.0025 || s.P50 > 0.005 {
		t.Errorf("p50 = %g, want in (0.0025, 0.005]", s.P50)
	}
}

func TestCheckBoundsPanics(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
		"equal":      {1, 1},
		"nan":        {1, math.NaN()},
		"inf":        {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds %v: want panic", name, bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

func TestHistogramConcurrentObserveAndMerge(t *testing.T) {
	dst := newHistogram(DefLatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := fill(DefLatencyBuckets, int64(g), 200)
			if err := dst.Merge(src); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if dst.Count() != 8*200 {
		t.Errorf("count after concurrent merges = %d, want %d", dst.Count(), 8*200)
	}
}
