// Package obs is the engine's observability layer: a stdlib-only
// metrics registry with atomic counters, gauges and fixed-bucket
// latency histograms, exposed in Prometheus text exposition format and
// as an expvar-compatible JSON view.
//
// Design constraints, in order:
//
//   - Hot-path writes are lock-free (single atomic op for counters and
//     gauges, two-three for a histogram observation), so instrumenting
//     the sweep and update paths costs nanoseconds and never contends
//     with the sharded engine's own locking.
//
//   - Histograms are merge-able: two histograms over the same bucket
//     bounds combine bucket-wise, exactly like per-shard sweep stats
//     roll up in core.Stats.Add. Merging is associative and
//     commutative, so per-shard → per-engine → per-fleet roll-ups all
//     give the same answer regardless of grouping (covered by unit
//     tests).
//
//   - Metric names are unique per registry (registration panics on a
//     duplicate), which makes the /metrics exposition structurally
//     free of duplicate families — the property the CI smoke test
//     asserts.
//
// The paper's cost model is what decides *what* to measure: Theorem 4
// bounds a past sweep by O((m+N) log N), so the support-change count m
// (events, swaps) and the queue bound of Lemma 9 (max queue length)
// are the headline series; everything else (HTTP status/latency,
// fan-out width, candidate-pool sizes) exists to localize where a
// latency regression comes from.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; gauges are written rarely).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// roll-up used for high-water marks like the sweep's max queue length
// (max over shards, mirroring core.Stats.Add).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind tags a family for the exposition writers.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// family is one registered metric name: either a single unlabeled
// instrument or a vector of children keyed by label values.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string // empty for unlabeled instruments

	single interface{} // *Counter, *Gauge or *Histogram when unlabeled

	mu       sync.Mutex
	children map[string]interface{} // label-value key -> instrument
	order    []string               // registration order of keys, sorted at exposition
}

// Registry holds a set of uniquely named metric families.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family or panics on a duplicate or invalid name —
// metric registration happens at wiring time, so a clash is a
// programming error, and failing loudly is what keeps /metrics free of
// duplicate families.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", f.name))
	}
	r.families[f.name] = f
	r.names = append(r.names, f.name)
	sort.Strings(r.names)
}

// validName reports whether s is a legal Prometheus metric/label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, single: c})
	return c
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, single: g})
	return g
}

// NewHistogram registers and returns an unlabeled histogram over the
// given bucket upper bounds (strictly increasing, finite; an implicit
// +Inf bucket is always appended).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, kind: kindHistogram, single: h})
	return h
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ f *family }

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ f *family }

// HistogramVec is a family of histograms keyed by label values; all
// children share the vector's bucket bounds.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: kindCounter,
		labels: labels, children: make(map[string]interface{})}
	r.register(f)
	return &CounterVec{f: f}
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: kindGauge,
		labels: labels, children: make(map[string]interface{})}
	r.register(f)
	return &GaugeVec{f: f}
}

// NewHistogramVec registers a histogram family with the given label
// names; every child uses bounds.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	f := &family{name: name, help: help, kind: kindHistogram,
		labels: labels, children: make(map[string]interface{})}
	r.register(f)
	return &HistogramVec{f: f, bounds: checkBounds(bounds)}
}

// labelKey joins label values into a child map key. 0x1f (unit
// separator) cannot collide with reasonable label values.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// child returns (creating on first use) the instrument for the given
// label values.
func (f *family) child(values []string, mk func() interface{}) interface{} {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s: got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() interface{} { return &Counter{} }).(*Counter)
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() interface{} { return &Gauge{} }).(*Gauge)
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() interface{} { return newHistogramChecked(v.bounds) }).(*Histogram)
}
