package obs

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.NewGauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	g.SetMax(1.0)
	if got := g.Value(); got != 1.5 {
		t.Errorf("SetMax lowered gauge to %g", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("SetMax = %g, want 9", got)
	}
}

func TestVectorsShareChildrenByLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("reqs_total", "requests", "endpoint", "code")
	v.With("/a", "200").Inc()
	v.With("/a", "200").Inc()
	v.With("/a", "400").Inc()
	if got := v.With("/a", "200").Value(); got != 2 {
		t.Errorf("child = %d, want 2", got)
	}
	if got := v.With("/a", "400").Value(); got != 1 {
		t.Errorf("child = %d, want 1", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.NewCounter("9bad-name", "")
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("b_total", "second")
	c.Add(7)
	v := r.NewCounterVec("a_reqs_total", "first", "endpoint", "code")
	v.With("/knn", "200").Add(3)
	v.With(`/q"uote`, "500").Inc()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_reqs_total counter",
		`a_reqs_total{endpoint="/knn",code="200"} 3`,
		`a_reqs_total{endpoint="/q\"uote",code="500"} 1`,
		"# TYPE b_total counter",
		"b_total 7",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families sorted by name: a_reqs_total before b_total before lat.
	if ia, ib := strings.Index(out, "a_reqs_total"), strings.Index(out, "b_total"); ia > ib {
		t.Errorf("families not sorted:\n%s", out)
	}
	// Every non-comment line parses as `name{labels} value`.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
	// No duplicate TYPE lines (the smoke-test property).
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if seen[name] {
				t.Errorf("duplicate family %q", name)
			}
			seen[name] = true
		}
	}
}

func TestJSONViewAndHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c_total", "").Add(2)
	r.NewCounterVec("v_total", "", "kind").With("knn").Add(4)
	h := r.NewHistogram("lat", "", []float64{1, 2})
	h.Observe(1.5)

	req := httptest.NewRequest("GET", "/metrics?format=json", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type %q", ct)
	}
	var got map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("json view: %v", err)
	}
	if got["c_total"].(float64) != 2 {
		t.Errorf("c_total = %v", got["c_total"])
	}
	if got["v_total"].(map[string]interface{})["kind=knn"].(float64) != 4 {
		t.Errorf("v_total = %v", got["v_total"])
	}
	if got["lat"].(map[string]interface{})["count"].(float64) != 1 {
		t.Errorf("lat = %v", got["lat"])
	}

	// Default (no format): Prometheus text.
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Header().Get("Content-Type"), "text/plain") {
		t.Errorf("prom content type %q", rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(rec.Body.String(), "# TYPE c_total counter") {
		t.Errorf("prom body:\n%s", rec.Body.String())
	}
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", DefLatencyBuckets)
	v := r.NewCounterVec("v_total", "", "w")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(float64(w*per + i))
				h.Observe(0.001)
				v.With("x").Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("hist count = %d, want %d", h.Count(), workers*per)
	}
	if v.With("x").Value() != workers*per {
		t.Errorf("vec = %d, want %d", v.With("x").Value(), workers*per)
	}
	if g.Value() != float64(workers*per-1) {
		t.Errorf("gauge max = %g, want %d", g.Value(), workers*per-1)
	}
}
