package obs

// Exposition: the Prometheus text format served on GET /metrics, plus
// an expvar-compatible JSON view of the same registry (served for
// ?format=json and publishable under expvar via ExpvarFunc).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4). Families appear sorted by name; label sets within a
// family are sorted too, so the output is deterministic.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if err := f.writeProm(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.families[n])
	}
	return out
}

// sortedChildren snapshots a vector family's (labelKey, instrument)
// pairs in key order; for an unlabeled family it returns the single
// instrument under an empty key.
func (f *family) sortedChildren() ([]string, []interface{}) {
	if f.single != nil {
		return []string{""}, []interface{}{f.single}
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	f.mu.Unlock()
	sort.Strings(keys)
	insts := make([]interface{}, len(keys))
	f.mu.Lock()
	for i, k := range keys {
		insts[i] = f.children[k]
	}
	f.mu.Unlock()
	return keys, insts
}

// promLabels renders {k="v",...} for a child key; extra appends one
// more pair (the histogram's le). Empty input renders "" or {le=...}.
func (f *family) promLabels(key string, extra ...string) string {
	var parts []string
	if key != "" || len(f.labels) > 0 {
		values := strings.Split(key, "\x1f")
		for i, l := range f.labels {
			v := ""
			if i < len(values) {
				v = values[i]
			}
			parts = append(parts, fmt.Sprintf("%s=%q", l, v))
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promFloat renders a float the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func (f *family) writeProm(w *bufio.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	keys, insts := f.sortedChildren()
	for i, key := range keys {
		switch m := insts[i].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, f.promLabels(key), m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, f.promLabels(key), promFloat(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			counts := m.snapshot()
			var cum uint64
			for b, c := range counts {
				cum += c
				le := "+Inf"
				if b < len(m.bounds) {
					le = promFloat(m.bounds[b])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, f.promLabels(key, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, f.promLabels(key), promFloat(m.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, f.promLabels(key), m.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonValue renders one instrument for the JSON view.
func jsonValue(inst interface{}) interface{} {
	switch m := inst.(type) {
	case *Counter:
		return m.Value()
	case *Gauge:
		return m.Value()
	case *Histogram:
		return m.Summary()
	default:
		return nil
	}
}

// JSONValue returns the registry as a plain name -> value map:
// counters and gauges as numbers, histograms as their Summary, vector
// families as a nested map keyed by "label=value,..." strings. The
// shape is expvar-compatible: publish it with
// expvar.Publish("mod", expvar.Func(reg.ExpvarFunc())).
func (r *Registry) JSONValue() map[string]interface{} {
	out := make(map[string]interface{})
	for _, f := range r.sortedFamilies() {
		keys, insts := f.sortedChildren()
		if f.single != nil {
			out[f.name] = jsonValue(f.single)
			continue
		}
		sub := make(map[string]interface{}, len(keys))
		for i, key := range keys {
			values := strings.Split(key, "\x1f")
			var parts []string
			for j, l := range f.labels {
				v := ""
				if j < len(values) {
					v = values[j]
				}
				parts = append(parts, l+"="+v)
			}
			sub[strings.Join(parts, ",")] = jsonValue(insts[i])
		}
		out[f.name] = sub
	}
	return out
}

// ExpvarFunc adapts the registry to expvar.Func's signature.
func (r *Registry) ExpvarFunc() func() interface{} {
	return func() interface{} { return r.JSONValue() }
}

// Handler serves the registry: Prometheus text format by default, the
// JSON view with ?format=json (or an Accept header preferring JSON).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(r.JSONValue())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
