// Package order implements the sweep's "object list" L (Section 5): a
// kinetic sorted list over opaque uint64 ids, ordered by an external
// comparison that is only valid at the moment it is used. The structure
// supports the exact operations the sweep needs, each in O(log N) or
// better:
//
//   - positional insert using a caller-supplied comparator evaluated at
//     the current sweep time,
//   - delete by id,
//   - O(1) adjacent-neighbor access (doubly-linked threading),
//   - O(1) swap of two adjacent entries (an intersection event),
//   - rank/select (order statistics), which give k-NN answers directly.
//
// The backing structure is an order-statistic treap with deterministic
// priorities derived from the id (splitmix64), so runs are reproducible.
// The paper's Lemma 9 asks for any balanced BST (AVL/red-black); a treap
// provides the same expected O(log N) bounds and is considerably simpler
// to maintain alongside the threading.
package order

import (
	"errors"
	"fmt"
)

// Cmp compares two entries at the current instant: negative when a
// precedes b, positive when b precedes a. It must be a strict total order
// (break value ties deterministically, e.g. by id).
type Cmp func(a, b uint64) int

// node is a treap node threaded into a doubly-linked list.
type node struct {
	id          uint64
	prio        uint64
	left, right *node
	parent      *node
	size        int
	prev, next  *node
}

// List is the kinetic sorted list. The zero value is not usable; call
// NewList.
type List struct {
	root  *node
	nodes map[uint64]*node
	head  *node
	tail  *node
}

// Errors reported by list operations.
var (
	ErrDuplicate   = errors.New("order: id already present")
	ErrMissing     = errors.New("order: id not present")
	ErrNotAdjacent = errors.New("order: entries not adjacent")
)

// NewList returns an empty list.
func NewList() *List {
	return &List{nodes: make(map[uint64]*node)}
}

// splitmix64 hashes the id into a deterministic treap priority.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Len returns the number of entries.
func (l *List) Len() int {
	if l.root == nil {
		return 0
	}
	return l.root.size
}

// Contains reports whether id is in the list.
func (l *List) Contains(id uint64) bool {
	_, ok := l.nodes[id]
	return ok
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) recalc() { n.size = 1 + size(n.left) + size(n.right) }

// rotateUp moves n above its parent, preserving in-order sequence.
func (l *List) rotateUp(n *node) {
	p := n.parent
	g := p.parent
	if p.left == n {
		p.left = n.right
		if n.right != nil {
			n.right.parent = p
		}
		n.right = p
	} else {
		p.right = n.left
		if n.left != nil {
			n.left.parent = p
		}
		n.left = p
	}
	p.parent = n
	n.parent = g
	if g == nil {
		l.root = n
	} else if g.left == p {
		g.left = n
	} else {
		g.right = n
	}
	p.recalc()
	n.recalc()
}

// Insert places id into the list at the position determined by cmp
// against existing entries. cmp is consulted O(log N) times in
// expectation. Duplicate ids are rejected.
func (l *List) Insert(id uint64, cmp Cmp) error {
	if _, ok := l.nodes[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicate, id)
	}
	n := &node{id: id, prio: splitmix64(id), size: 1}
	l.nodes[id] = n
	if l.root == nil {
		l.root = n
		l.head, l.tail = n, n
		return nil
	}
	// BST descent by comparator; track in-order neighbors.
	cur := l.root
	var prevN, nextN *node
	for {
		cur.size++
		if cmp(id, cur.id) < 0 {
			nextN = cur
			if cur.left == nil {
				cur.left = n
				n.parent = cur
				break
			}
			cur = cur.left
		} else {
			prevN = cur
			if cur.right == nil {
				cur.right = n
				n.parent = cur
				break
			}
			cur = cur.right
		}
	}
	// Thread into the linked list between prevN and nextN.
	n.prev, n.next = prevN, nextN
	if prevN != nil {
		prevN.next = n
	} else {
		l.head = n
	}
	if nextN != nil {
		nextN.prev = n
	} else {
		l.tail = n
	}
	// Restore the heap property on priorities.
	for n.parent != nil && n.prio < n.parent.prio {
		l.rotateUp(n)
	}
	return nil
}

// Delete removes id from the list.
func (l *List) Delete(id uint64) error {
	n, ok := l.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrMissing, id)
	}
	// Rotate n down until it is a leaf.
	for n.left != nil || n.right != nil {
		var child *node
		switch {
		case n.left == nil:
			child = n.right
		case n.right == nil:
			child = n.left
		case n.left.prio < n.right.prio:
			child = n.left
		default:
			child = n.right
		}
		l.rotateUp(child)
	}
	// Unlink the leaf and shrink ancestor sizes.
	p := n.parent
	if p == nil {
		l.root = nil
	} else {
		if p.left == n {
			p.left = nil
		} else {
			p.right = nil
		}
		for a := p; a != nil; a = a.parent {
			a.size--
		}
	}
	// Unthread.
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	delete(l.nodes, id)
	return nil
}

// SwapAdjacent exchanges a and b, where a must immediately precede b.
// O(1): payload ids are swapped in place; tree shape and threading are
// untouched.
func (l *List) SwapAdjacent(a, b uint64) error {
	na, ok := l.nodes[a]
	if !ok {
		return fmt.Errorf("%w: %d", ErrMissing, a)
	}
	nb, ok := l.nodes[b]
	if !ok {
		return fmt.Errorf("%w: %d", ErrMissing, b)
	}
	if na.next != nb {
		return fmt.Errorf("%w: %d and %d", ErrNotAdjacent, a, b)
	}
	na.id, nb.id = nb.id, na.id
	l.nodes[a], l.nodes[b] = nb, na
	return nil
}

// Prev returns the entry immediately preceding id.
func (l *List) Prev(id uint64) (uint64, bool) {
	n, ok := l.nodes[id]
	if !ok || n.prev == nil {
		return 0, false
	}
	return n.prev.id, true
}

// Next returns the entry immediately following id.
func (l *List) Next(id uint64) (uint64, bool) {
	n, ok := l.nodes[id]
	if !ok || n.next == nil {
		return 0, false
	}
	return n.next.id, true
}

// Min returns the first (least) entry.
func (l *List) Min() (uint64, bool) {
	if l.head == nil {
		return 0, false
	}
	return l.head.id, true
}

// Max returns the last (greatest) entry.
func (l *List) Max() (uint64, bool) {
	if l.tail == nil {
		return 0, false
	}
	return l.tail.id, true
}

// Rank returns the 0-based position of id in the current order.
func (l *List) Rank(id uint64) (int, error) {
	n, ok := l.nodes[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrMissing, id)
	}
	r := size(n.left)
	for cur := n; cur.parent != nil; cur = cur.parent {
		if cur.parent.right == cur {
			r += size(cur.parent.left) + 1
		}
	}
	return r, nil
}

// At returns the entry at 0-based rank r.
func (l *List) At(r int) (uint64, bool) {
	if r < 0 || r >= l.Len() {
		return 0, false
	}
	cur := l.root
	for {
		ls := size(cur.left)
		switch {
		case r < ls:
			cur = cur.left
		case r == ls:
			return cur.id, true
		default:
			r -= ls + 1
			cur = cur.right
		}
	}
}

// Items returns all entries in order (O(N)).
func (l *List) Items() []uint64 {
	out := make([]uint64, 0, l.Len())
	for n := l.head; n != nil; n = n.next {
		out = append(out, n.id)
	}
	return out
}

// FirstK returns the first k entries in order (fewer if the list is
// shorter) — the k-NN answer set when the order is by distance.
func (l *List) FirstK(k int) []uint64 {
	out := make([]uint64, 0, k)
	for n := l.head; n != nil && len(out) < k; n = n.next {
		out = append(out, n.id)
	}
	return out
}

// CheckInvariants verifies treap heap order, subtree sizes, threading
// consistency, and agreement between tree in-order and the linked list.
// Used by tests and the sweeper's audit mode.
func (l *List) CheckInvariants() error {
	var inorder []*node
	var walk func(n *node) error
	walk = func(n *node) error {
		if n == nil {
			return nil
		}
		if n.left != nil {
			if n.left.parent != n {
				return fmt.Errorf("order: bad parent link at %d", n.left.id)
			}
			if n.left.prio < n.prio {
				return fmt.Errorf("order: heap violation at %d", n.id)
			}
			if err := walk(n.left); err != nil {
				return err
			}
		}
		inorder = append(inorder, n)
		if n.right != nil {
			if n.right.parent != n {
				return fmt.Errorf("order: bad parent link at %d", n.right.id)
			}
			if n.right.prio < n.prio {
				return fmt.Errorf("order: heap violation at %d", n.id)
			}
			if err := walk(n.right); err != nil {
				return err
			}
		}
		if n.size != 1+size(n.left)+size(n.right) {
			return fmt.Errorf("order: bad size at %d", n.id)
		}
		return nil
	}
	if err := walk(l.root); err != nil {
		return err
	}
	if len(inorder) != len(l.nodes) {
		return fmt.Errorf("order: tree has %d nodes, map has %d", len(inorder), len(l.nodes))
	}
	cur := l.head
	for i, n := range inorder {
		if cur == nil {
			return fmt.Errorf("order: linked list shorter than tree at %d", i)
		}
		if cur != n {
			return fmt.Errorf("order: linked list and in-order diverge at %d", i)
		}
		if l.nodes[n.id] != n {
			return fmt.Errorf("order: map points to wrong node for %d", n.id)
		}
		cur = cur.next
	}
	if cur != nil {
		return errors.New("order: linked list longer than tree")
	}
	return nil
}

// Walk visits entries in order until fn returns false.
func (l *List) Walk(fn func(id uint64) bool) {
	for n := l.head; n != nil; n = n.next {
		if !fn(n.id) {
			return
		}
	}
}
