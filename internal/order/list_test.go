package order

import (
	"math/rand"
	"sort"
	"testing"
)

// valCmp builds a Cmp from a value map with id tie-break.
func valCmp(vals map[uint64]float64) Cmp {
	return func(a, b uint64) int {
		va, vb := vals[a], vals[b]
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

func TestInsertOrdering(t *testing.T) {
	vals := map[uint64]float64{1: 5, 2: 1, 3: 9, 4: 3, 5: 7}
	l := NewList()
	for id := range vals {
		if err := l.Insert(id, valCmp(vals)); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{2, 4, 1, 5, 3}
	got := l.Items()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items = %v, want %v", got, want)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestDuplicateInsert(t *testing.T) {
	l := NewList()
	vals := map[uint64]float64{1: 1}
	if err := l.Insert(1, valCmp(vals)); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert(1, valCmp(vals)); err == nil {
		t.Error("duplicate insert accepted")
	}
}

func TestDelete(t *testing.T) {
	vals := map[uint64]float64{1: 5, 2: 1, 3: 9, 4: 3, 5: 7}
	l := NewList()
	for id := range vals {
		_ = l.Insert(id, valCmp(vals))
	}
	if err := l.Delete(1); err != nil {
		t.Fatal(err)
	}
	if l.Contains(1) || l.Len() != 4 {
		t.Error("delete failed")
	}
	want := []uint64{2, 4, 5, 3}
	got := l.Items()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items = %v, want %v", got, want)
		}
	}
	if err := l.Delete(1); err == nil {
		t.Error("double delete accepted")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete everything.
	for _, id := range []uint64{2, 3, 4, 5} {
		if err := l.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 0 {
		t.Error("not empty")
	}
	if _, ok := l.Min(); ok {
		t.Error("Min on empty")
	}
	if _, ok := l.Max(); ok {
		t.Error("Max on empty")
	}
}

func TestNeighbors(t *testing.T) {
	vals := map[uint64]float64{1: 1, 2: 2, 3: 3}
	l := NewList()
	for id := range vals {
		_ = l.Insert(id, valCmp(vals))
	}
	if p, ok := l.Prev(2); !ok || p != 1 {
		t.Errorf("Prev(2) = %d,%v", p, ok)
	}
	if n, ok := l.Next(2); !ok || n != 3 {
		t.Errorf("Next(2) = %d,%v", n, ok)
	}
	if _, ok := l.Prev(1); ok {
		t.Error("Prev of head")
	}
	if _, ok := l.Next(3); ok {
		t.Error("Next of tail")
	}
	if _, ok := l.Prev(99); ok {
		t.Error("Prev of missing")
	}
	if mn, _ := l.Min(); mn != 1 {
		t.Error("Min")
	}
	if mx, _ := l.Max(); mx != 3 {
		t.Error("Max")
	}
}

func TestSwapAdjacent(t *testing.T) {
	vals := map[uint64]float64{1: 1, 2: 2, 3: 3, 4: 4}
	l := NewList()
	for id := range vals {
		_ = l.Insert(id, valCmp(vals))
	}
	if err := l.SwapAdjacent(2, 3); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 2, 4}
	got := l.Items()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after swap: %v, want %v", got, want)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Ranks reflect the swap.
	if r, _ := l.Rank(3); r != 1 {
		t.Errorf("Rank(3) = %d", r)
	}
	if r, _ := l.Rank(2); r != 2 {
		t.Errorf("Rank(2) = %d", r)
	}
	// Not adjacent anymore in that order.
	if err := l.SwapAdjacent(2, 3); err == nil {
		t.Error("non-adjacent swap accepted")
	}
	if err := l.SwapAdjacent(9, 1); err == nil {
		t.Error("missing id swap accepted")
	}
	// Swap back.
	if err := l.SwapAdjacent(3, 2); err != nil {
		t.Fatal(err)
	}
	if got := l.Items(); got[1] != 2 || got[2] != 3 {
		t.Errorf("after swap back: %v", got)
	}
}

func TestRankSelect(t *testing.T) {
	vals := map[uint64]float64{}
	l := NewList()
	for i := uint64(1); i <= 100; i++ {
		vals[i] = float64((i * 37) % 101)
		_ = l.Insert(i, valCmp(vals))
	}
	items := l.Items()
	for r, id := range items {
		if got, err := l.Rank(id); err != nil || got != r {
			t.Fatalf("Rank(%d) = %d,%v want %d", id, got, err, r)
		}
		if got, ok := l.At(r); !ok || got != id {
			t.Fatalf("At(%d) = %d,%v want %d", r, got, ok, id)
		}
	}
	if _, ok := l.At(-1); ok {
		t.Error("At(-1)")
	}
	if _, ok := l.At(100); ok {
		t.Error("At(len)")
	}
	if _, err := l.Rank(999); err == nil {
		t.Error("Rank of missing")
	}
	fk := l.FirstK(3)
	if len(fk) != 3 || fk[0] != items[0] || fk[2] != items[2] {
		t.Errorf("FirstK = %v", fk)
	}
}

// TestRandomizedAgainstReference drives a long random operation sequence
// and checks the list against a sorted-slice reference after every step.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	vals := map[uint64]float64{}
	l := NewList()
	var ref []uint64 // ids in value order

	refInsert := func(id uint64) {
		i := sort.Search(len(ref), func(i int) bool {
			return valCmp(vals)(id, ref[i]) < 0
		})
		ref = append(ref, 0)
		copy(ref[i+1:], ref[i:])
		ref[i] = id
	}
	refDelete := func(id uint64) {
		for i, x := range ref {
			if x == id {
				ref = append(ref[:i], ref[i+1:]...)
				return
			}
		}
	}

	next := uint64(1)
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(ref) == 0: // insert
			id := next
			next++
			vals[id] = rng.Float64() * 1000
			if err := l.Insert(id, valCmp(vals)); err != nil {
				t.Fatal(err)
			}
			refInsert(id)
		case op < 7: // delete random
			id := ref[rng.Intn(len(ref))]
			if err := l.Delete(id); err != nil {
				t.Fatal(err)
			}
			refDelete(id)
			delete(vals, id)
		default: // swap adjacent pair
			if len(ref) < 2 {
				continue
			}
			i := rng.Intn(len(ref) - 1)
			a, b := ref[i], ref[i+1]
			if err := l.SwapAdjacent(a, b); err != nil {
				t.Fatal(err)
			}
			// Mirror in values so future inserts see consistent order:
			// swap their values too (plus id tiebreak concerns: assign
			// distinct values).
			vals[a], vals[b] = vals[b], vals[a]
			ref[i], ref[i+1] = b, a
		}
		if step%101 == 0 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		got := l.Items()
		if len(got) != len(ref) {
			t.Fatalf("step %d: len %d vs ref %d", step, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("step %d: order %v vs ref %v", step, got, ref)
			}
		}
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	vals := map[uint64]float64{}
	cmp := valCmp(vals)
	l := NewList()
	for i := uint64(0); i < 10000; i++ {
		vals[i] = float64(splitmix64(i) % 1000000)
		_ = l.Insert(i, cmp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(10000 + i)
		vals[id] = float64(splitmix64(id) % 1000000)
		_ = l.Insert(id, cmp)
		_ = l.Delete(id)
		delete(vals, id)
	}
}

func BenchmarkSwapAdjacent(b *testing.B) {
	vals := map[uint64]float64{}
	l := NewList()
	for i := uint64(0); i < 10000; i++ {
		vals[i] = float64(i)
		_ = l.Insert(i, valCmp(vals))
	}
	items := l.Items()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % (len(items) - 1)
		a, bb := items[j], items[j+1]
		_ = l.SwapAdjacent(a, bb)
		items[j], items[j+1] = bb, a
	}
}
