package order

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property: after inserting any set of distinct-valued entries, Items()
// is sorted by value and Rank/At are inverse.
func TestQuickInsertSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := map[uint64]float64{}
		l := NewList()
		for i, r := range raw {
			id := uint64(i + 1)
			// Distinct values via index jitter.
			vals[id] = float64(r) + float64(i)*1e-4
			if err := l.Insert(id, valCmp(vals)); err != nil {
				return false
			}
		}
		items := l.Items()
		if len(items) != len(raw) {
			return false
		}
		for i := 1; i < len(items); i++ {
			if vals[items[i-1]] >= vals[items[i]] {
				return false
			}
		}
		for r, id := range items {
			rank, err := l.Rank(id)
			if err != nil || rank != r {
				return false
			}
			got, ok := l.At(r)
			if !ok || got != id {
				return false
			}
		}
		return l.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: deleting any subset leaves the remaining entries in the same
// relative order.
func TestQuickDeletepreservesOrder(t *testing.T) {
	f := func(raw []uint16, delMask []bool) bool {
		vals := map[uint64]float64{}
		l := NewList()
		n := len(raw)
		if n > 200 {
			n = 200
		}
		for i := 0; i < n; i++ {
			id := uint64(i + 1)
			vals[id] = float64(raw[i]) + float64(i)*1e-4
			if err := l.Insert(id, valCmp(vals)); err != nil {
				return false
			}
		}
		before := l.Items()
		kept := map[uint64]bool{}
		for _, id := range before {
			kept[id] = true
		}
		for i, id := range before {
			if i < len(delMask) && delMask[i] {
				if err := l.Delete(id); err != nil {
					return false
				}
				kept[id] = false
			}
		}
		after := l.Items()
		var want []uint64
		for _, id := range before {
			if kept[id] {
				want = append(want, id)
			}
		}
		if len(after) != len(want) {
			return false
		}
		for i := range want {
			if after[i] != want[i] {
				return false
			}
		}
		return l.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: FirstK agrees with sorting the values directly.
func TestQuickFirstK(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		vals := map[uint64]float64{}
		l := NewList()
		for i, r := range raw {
			id := uint64(i + 1)
			vals[id] = float64(r) + float64(i)*1e-4
			if err := l.Insert(id, valCmp(vals)); err != nil {
				return false
			}
		}
		k := int(kRaw%16) + 1
		got := l.FirstK(k)
		type ov struct {
			id uint64
			v  float64
		}
		var all []ov
		for id, v := range vals {
			all = append(all, ov{id, v})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if got[i] != all[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
