package piecewise

// PairDiff is a cached difference curve f - g for one sweep adjacency.
// schedulePair re-derives the next event of the same adjacent pair many
// times as the sweep advances; the lazy walkers of lazy.go recompute
// pa.P.Sub(pb.P) — one or two allocations — on every call. PairDiff
// materializes those merged-breakpoint difference segments once,
// incrementally and in recycled storage, and answers the same four
// queries (FirstMeetingAfter, SignAfter, SignBefore, CoincidenceEndAfter)
// with zero steady-state allocations.
//
// Equivalence contract: every query result is bit-identical to the lazy
// walker's, because each materialized segment is exactly the lockstep
// walk's combo — Start = max(pa.Start, pb.Start), End = min(pa.End,
// pb.End), P = pa.P - pb.P via poly.SubInto (bit-identical to Sub) —
// and the query methods replicate the walkers' control flow over those
// segments. The one restriction is the build origin: a cache built from
// time `from` only materializes combos from the segment containing
// `from` onward, so queries are answerable only for times its origin
// covers (see Covers). The Sweeper rebuilds on a Covers miss.

import (
	"math"
	"sort"

	"repro/internal/poly"
)

// PairDiff caches the difference curve of one adjacency. The zero value
// is empty and invalid; Reset builds it. Not safe for concurrent use —
// it lives inside a single sweep.
type PairDiff struct {
	f, g   Func
	lo, hi float64 // overlap of the two domains
	origin float64 // start of the first materialized segment
	valid  bool    // false: no domain overlap (queries answer "none")
	done   bool    // no further segments can be materialized

	pieces []Piece // materialized merged difference segments
	ia, ib int     // cursors: the piece pair of the NEXT segment
	nextT  float64 // start of the next unmaterialized segment
}

// Reset (re)builds the cache for the pair (f, g), materializing lazily
// from the combo containing max(from, lo). Piece storage — both the
// segment slice and each segment's polynomial — is recycled.
func (d *PairDiff) Reset(f, g Func, from float64) {
	d.f, d.g = f, g
	d.pieces = d.pieces[:0]
	d.valid, d.done = false, false
	flo, fhi := f.Domain()
	glo, ghi := g.Domain()
	d.lo = math.Max(flo, glo)
	d.hi = math.Min(fhi, ghi)
	if math.IsNaN(d.lo) || math.IsNaN(d.hi) {
		d.done = true
		return
	}
	t := math.Max(from, d.lo)
	if t > d.hi {
		t = d.hi
	}
	d.ia = f.pieceIndexAt(t)
	d.ib = g.pieceIndexAt(t)
	if d.ia < 0 || d.ib < 0 {
		d.done = true
		return
	}
	d.valid = true
	// The first segment starts at the true merged boundary, exactly as
	// the lazy walk's first combo does (its Start is max of the two
	// containing pieces' starts, never the query time).
	d.origin = math.Max(f.pieces[d.ia].Start, g.pieces[d.ib].Start)
	d.nextT = d.origin
}

// Covers reports whether queries at times >= t are answerable from this
// cache exactly as the lazy walkers would answer them. A full build
// (origin at the domain overlap's start) covers everything; a truncated
// build covers t strictly past origin + boundTol, because pieceIndexAt's
// boundTol slack and SignBefore's step-back rule can otherwise reach the
// combo before the origin.
func (d *PairDiff) Covers(t float64) bool {
	if !d.valid {
		return true // no overlap: every query answers "none" regardless
	}
	return d.origin <= d.lo || t > d.origin+boundTol
}

// materializeNext appends the next merged difference segment, returning
// false when none remains. It replicates the lazy walkers' advance: the
// segment ends at min(pa.End, pb.End, hi); each curve whose piece ends
// there advances if it has a successor; exhaustion of both ends the walk.
func (d *PairDiff) materializeNext() bool {
	if d.done {
		return false
	}
	pa := d.f.pieces[d.ia]
	pb := d.g.pieces[d.ib]
	segEnd := math.Min(math.Min(pa.End, pb.End), d.hi)
	d.pieces = appendDiffPiece(d.pieces, d.nextT, segEnd, pa.P, pb.P)
	if segEnd >= d.hi {
		d.done = true
		return true
	}
	if pa.End <= segEnd && d.ia+1 < len(d.f.pieces) {
		d.ia++
	}
	if pb.End <= segEnd && d.ib+1 < len(d.g.pieces) {
		d.ib++
	}
	if d.f.pieces[d.ia].End <= segEnd && d.g.pieces[d.ib].End <= segEnd {
		d.done = true
	}
	d.nextT = segEnd
	return true
}

// appendDiffPiece appends the segment [start, end] with polynomial a - b,
// reusing a previously-truncated slot's polynomial storage when the
// slice has spare capacity.
func appendDiffPiece(ps []Piece, start, end float64, a, b poly.Poly) []Piece {
	n := len(ps)
	if n < cap(ps) {
		ps = ps[:n+1]
		ps[n].Start, ps[n].End = start, end
		ps[n].P = poly.SubInto(ps[n].P[:0], a, b)
		return ps
	}
	return append(ps, Piece{Start: start, End: end, P: poly.SubInto(nil, a, b)})
}

// ensure materializes segments until index i exists; false when the walk
// ends first.
func (d *PairDiff) ensure(i int) bool {
	for len(d.pieces) <= i {
		if !d.materializeNext() {
			return false
		}
	}
	return true
}

// indexAt locates the materialized segment containing t (materializing
// as needed), mirroring Func.pieceIndexAt: boundTol slack at the domain
// edges, and at a shared boundary the segment starting at t governs.
// Returns -1 when t is outside [origin - boundTol, hi + boundTol].
func (d *PairDiff) indexAt(t float64) int {
	if len(d.pieces) == 0 && !d.materializeNext() {
		return -1
	}
	if t < d.pieces[0].Start-boundTol || t > d.hi+boundTol {
		return -1
	}
	for d.pieces[len(d.pieces)-1].End < t && !d.done {
		if !d.materializeNext() {
			break
		}
	}
	n := len(d.pieces)
	i := sort.Search(n, func(i int) bool { return d.pieces[i].End >= t })
	if i == n {
		i = n - 1
	}
	if t >= d.pieces[i].End && i == n-1 && d.ensure(n) {
		n++
	}
	if i+1 < n && t >= d.pieces[i].End {
		i++
	}
	return i
}

// FirstMeetingAfter is piecewise.FirstMeetingAfter over the cached pair:
// the earliest time s in (after, hi] at which f and g meet, with
// coincide reporting an identical stretch beginning at s.
func (d *PairDiff) FirstMeetingAfter(after, hi float64) (s float64, coincide, ok bool) {
	if !d.valid {
		return 0, false, false
	}
	end := math.Min(d.hi, hi)
	t := math.Max(after, d.lo)
	if t > end {
		return 0, false, false
	}
	i := d.indexAt(t)
	if i < 0 {
		return 0, false, false
	}
	for {
		pc := d.pieces[i]
		segEnd := math.Min(pc.End, end)
		if pc.P.IsZero() {
			start := math.Max(t, pc.Start)
			return math.Max(start, after), true, true
		}
		segLo := math.Max(after, pc.Start)
		if r, found := pc.P.FirstRootAfter(segLo, segEnd); found && r > after {
			return r, false, true
		}
		if segEnd >= end {
			return 0, false, false
		}
		t = segEnd
		if !d.ensure(i + 1) {
			return 0, false, false
		}
		i++
	}
}

// SignAfter is piecewise.SignDiffAfter over the cached pair: the sign of
// (f - g) on (t, t+delta). At a boundary the segment starting at t
// governs.
func (d *PairDiff) SignAfter(t float64) int {
	if !d.valid {
		return 0
	}
	i := d.indexAt(t)
	if i < 0 {
		return 0
	}
	if t >= d.pieces[i].End-boundTol && d.ensure(i+1) {
		i++
	}
	return d.pieces[i].P.SignAfter(t)
}

// SignBefore is piecewise.SignDiffBefore over the cached pair: the sign
// of (f - g) on (t-delta, t). At a boundary the segment ending at t
// governs.
func (d *PairDiff) SignBefore(t float64) int {
	if !d.valid {
		return 0
	}
	i := d.indexAt(t)
	if i < 0 {
		return 0
	}
	if i > 0 && t <= d.pieces[i].Start+boundTol {
		i--
	}
	return d.pieces[i].P.SignBefore(t)
}

// CoincidenceEndAfter is piecewise.CoincidenceEndAfter over the cached
// pair: the first time strictly past t at which f and g stop being
// identical, given that they coincide at t.
func (d *PairDiff) CoincidenceEndAfter(t, hi float64) (float64, bool) {
	if !d.valid {
		return 0, false
	}
	end := math.Min(d.hi, hi)
	i := d.indexAt(t)
	if i < 0 {
		return 0, false
	}
	cur := t
	for {
		pc := d.pieces[i]
		segEnd := math.Min(pc.End, end)
		if !pc.P.IsZero() {
			return math.Max(cur, t), true
		}
		if segEnd >= end {
			return 0, false
		}
		cur = segEnd
		if !d.ensure(i + 1) {
			return 0, false
		}
		i++
	}
}
