package piecewise

// Lower envelopes. Example 6 of the paper observes that the 1-NN answer
// is exactly the lower envelope of the g-distance curves; this file
// computes that envelope directly by divide and conquer — an independent
// algorithm against which the sweep's rank-0 timeline is cross-checked
// (and an alternative for one-shot envelope queries).

import (
	"errors"
	"math"
	"sort"
)

// Labeled pairs a curve with an opaque id for envelope attribution.
type Labeled struct {
	ID uint64
	F  Func
}

// EnvelopePiece attributes one stretch of the lower envelope to a curve.
type EnvelopePiece struct {
	Start, End float64
	ID         uint64
}

// LowerEnvelope computes, over [lo, hi], which curve is pointwise lowest
// (ties broken by smaller id). All curves must cover [lo, hi].
func LowerEnvelope(curves []Labeled, lo, hi float64) ([]EnvelopePiece, error) {
	if len(curves) == 0 {
		return nil, errors.New("piecewise: no curves")
	}
	if !(lo < hi) {
		return nil, ErrEmptyDomain
	}
	for _, c := range curves {
		clo, chi := c.F.Domain()
		if clo > lo+boundTol || chi < hi-boundTol {
			return nil, errors.New("piecewise: curve does not cover the window")
		}
	}
	pieces := envelopeDC(curves, lo, hi)
	return mergeEnvelope(pieces), nil
}

// envelopeDC merges halves recursively.
func envelopeDC(curves []Labeled, lo, hi float64) []EnvelopePiece {
	if len(curves) == 1 {
		return []EnvelopePiece{{Start: lo, End: hi, ID: curves[0].ID}}
	}
	mid := len(curves) / 2
	left := envelopeDC(curves[:mid], lo, hi)
	right := envelopeDC(curves[mid:], lo, hi)
	return mergeTwo(curves, left, right, lo, hi)
}

// mergeTwo combines two envelopes: within each overlap cell (bounded by
// both envelopes' breakpoints and the crossings of the two active
// curves), the lower curve wins.
func mergeTwo(curves []Labeled, a, b []EnvelopePiece, lo, hi float64) []EnvelopePiece {
	byID := map[uint64]Func{}
	for _, c := range curves {
		byID[c.ID] = c.F
	}
	// Cell boundaries: piece boundaries of both envelopes.
	cuts := []float64{lo, hi}
	for _, p := range a {
		cuts = append(cuts, p.Start, p.End)
	}
	for _, p := range b {
		cuts = append(cuts, p.Start, p.End)
	}
	sort.Float64s(cuts)
	var out []EnvelopePiece
	for i := 0; i+1 < len(cuts); i++ {
		s, e := cuts[i], cuts[i+1]
		if !(e-s > 1e-12) || s < lo || e > hi {
			continue
		}
		ca := activeAt(a, 0.5*(s+e))
		cb := activeAt(b, 0.5*(s+e))
		fa, fb := byID[ca], byID[cb]
		// Split [s, e] at the crossings of fa and fb.
		bounds := []float64{s}
		t := s
		for {
			m, coincide, ok := FirstMeetingAfter(fa, fb, t, e)
			if !ok || m >= e {
				break
			}
			if coincide {
				// Identical from m on this cell: no more crossings.
				if m > s {
					bounds = append(bounds, m)
				}
				break
			}
			bounds = append(bounds, m)
			t = m
		}
		bounds = append(bounds, e)
		for j := 0; j+1 < len(bounds); j++ {
			x, y := bounds[j], bounds[j+1]
			if !(y-x > 1e-12) {
				continue
			}
			m := 0.5 * (x + y)
			va, vb := fa.Eval(m), fb.Eval(m)
			id := ca
			switch {
			case vb < va:
				id = cb
			case math.Abs(vb-va) <= 1e-9*math.Max(1, math.Max(math.Abs(va), math.Abs(vb))) && cb < ca:
				id = cb
			}
			out = append(out, EnvelopePiece{Start: x, End: y, ID: id})
		}
	}
	return mergeEnvelope(out)
}

// activeAt finds the piece of an envelope containing t.
func activeAt(env []EnvelopePiece, t float64) uint64 {
	i := sort.Search(len(env), func(i int) bool { return env[i].End >= t })
	if i >= len(env) {
		i = len(env) - 1
	}
	return env[i].ID
}

// mergeEnvelope fuses adjacent pieces with the same id.
func mergeEnvelope(ps []EnvelopePiece) []EnvelopePiece {
	if len(ps) == 0 {
		return ps
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	out := ps[:1]
	for _, p := range ps[1:] {
		last := &out[len(out)-1]
		if p.ID == last.ID && p.Start <= last.End+1e-12 {
			if p.End > last.End {
				last.End = p.End
			}
			continue
		}
		out = append(out, p)
	}
	return out
}
