package piecewise

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/poly"
)

func TestLowerEnvelopeTwoLines(t *testing.T) {
	curves := []Labeled{
		{ID: 1, F: FromPoly(poly.Linear(1, 0), 0, 100)},   // t
		{ID: 2, F: FromPoly(poly.Linear(-1, 10), 0, 100)}, // 10-t
	}
	env, err := LowerEnvelope(curves, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(env) != 2 {
		t.Fatalf("env = %+v", env)
	}
	if env[0].ID != 1 || math.Abs(env[0].End-5) > 1e-9 {
		t.Errorf("first piece %+v, want curve 1 until 5", env[0])
	}
	if env[1].ID != 2 || math.Abs(env[1].Start-5) > 1e-9 || env[1].End != 100 {
		t.Errorf("second piece %+v", env[1])
	}
}

func TestLowerEnvelopeFigure3(t *testing.T) {
	// The four Figure 3 curves (pre-update): the envelope (the 1-NN
	// timeline) is o4, except while o3 dips below during (8, 17), and at
	// the very end where the original (un-updated) o1 line crosses under
	// (68.4 - 1.5t = 10 at t = 58.4/1.5 ≈ 38.93).
	curves := []Labeled{
		{ID: 1, F: FromPoly(poly.New(68.4, -1.5), 0, 40)},
		{ID: 2, F: FromPoly(poly.New(43.4, 1), 0, 40)},
		{ID: 3, F: FromPoly(poly.New(37.2, -5, 0.2), 0, 40)},
		{ID: 4, F: FromPoly(poly.Constant(10), 0, 40)},
	}
	env, err := LowerEnvelope(curves, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		id   uint64
		s, e float64
	}{
		{4, 0, 8}, {3, 8, 17}, {4, 17, 58.4 / 1.5}, {1, 58.4 / 1.5, 40},
	}
	if len(env) != len(want) {
		t.Fatalf("env = %+v", env)
	}
	for i, w := range want {
		if env[i].ID != w.id || math.Abs(env[i].Start-w.s) > 1e-6 || math.Abs(env[i].End-w.e) > 1e-6 {
			t.Errorf("piece %d = %+v, want %+v", i, env[i], w)
		}
	}
}

func TestLowerEnvelopeErrors(t *testing.T) {
	if _, err := LowerEnvelope(nil, 0, 1); err == nil {
		t.Error("empty input accepted")
	}
	short := []Labeled{{ID: 1, F: FromPoly(poly.Constant(1), 0, 5)}}
	if _, err := LowerEnvelope(short, 0, 10); err == nil {
		t.Error("non-covering curve accepted")
	}
	if _, err := LowerEnvelope(short, 5, 1); err == nil {
		t.Error("inverted window accepted")
	}
}

// TestLowerEnvelopeMatchesPointwise cross-checks the envelope against
// dense pointwise minimization on random curve sets.
func TestLowerEnvelopeMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		var curves []Labeled
		for i := 0; i < n; i++ {
			// Random parabola opening upward with distinct vertex.
			a := 0.05 + rng.Float64()
			vx := rng.Float64() * 100
			vy := rng.Float64() * 50
			// a(t-vx)^2 + vy
			p := poly.FromRoots(vx, vx).Scale(a).Add(poly.Constant(vy))
			curves = append(curves, Labeled{ID: uint64(i + 1), F: FromPoly(p, 0, 100)})
		}
		env, err := LowerEnvelope(curves, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		// Coverage: contiguous from 0 to 100.
		if env[0].Start != 0 || env[len(env)-1].End != 100 {
			t.Fatalf("trial %d: envelope not covering: %+v", trial, env)
		}
		for i := 1; i < len(env); i++ {
			if math.Abs(env[i].Start-env[i-1].End) > 1e-9 {
				t.Fatalf("trial %d: gap in envelope: %+v", trial, env)
			}
		}
		for probe := 0; probe < 100; probe++ {
			tt := rng.Float64() * 100
			// True minimum.
			best := math.Inf(1)
			for _, c := range curves {
				if v := c.F.Eval(tt); v < best {
					best = v
				}
			}
			got := activeAt(env, tt)
			var gv float64
			for _, c := range curves {
				if c.ID == got {
					gv = c.F.Eval(tt)
				}
			}
			if gv-best > 1e-6*math.Max(1, math.Abs(best)) {
				t.Fatalf("trial %d t=%g: envelope picks %d (v=%g), true min %g",
					trial, tt, got, gv, best)
			}
		}
	}
}
