package piecewise

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/poly"
)

// Fit approximates an arbitrary continuous function fn on [lo, hi] by an
// adaptive piecewise-quadratic interpolant with pointwise error below
// maxErr (verified at probe points; fn is assumed smooth between samples).
//
// This is the bridge that admits non-polynomial generalized distances —
// e.g. the interception time of Examples 7/9, which contains a square
// root in general geometry — into the plane sweep, which requires
// piecewise-polynomial curves. The paper itself allows intersection times
// to be approximated (Section 5, footnote 1); Fit makes the approximation
// explicit and bounded.
func Fit(fn func(float64) float64, lo, hi, maxErr float64) (Func, error) {
	if !(lo < hi) {
		return Func{}, ErrEmptyDomain
	}
	if math.IsInf(hi, 1) {
		return Func{}, errors.New("piecewise: Fit requires a finite interval")
	}
	if maxErr <= 0 {
		return Func{}, errors.New("piecewise: Fit requires positive maxErr")
	}
	var pieces []Piece
	var build func(a, b float64, fa, fb float64, depth int) error
	build = func(a, b, fa, fb float64, depth int) error {
		m := 0.5 * (a + b)
		fm := fn(m)
		p, err := quadThrough(a, fa, m, fm, b, fb)
		if err != nil {
			return err
		}
		// Probe interpolation error at the quarter points.
		q1, q3 := 0.5*(a+m), 0.5*(m+b)
		e1 := math.Abs(p.Eval(q1) - fn(q1))
		e3 := math.Abs(p.Eval(q3) - fn(q3))
		if (e1 <= maxErr && e3 <= maxErr) || depth >= 24 {
			pieces = append(pieces, Piece{Start: a, End: b, P: p})
			return nil
		}
		if err := build(a, m, fa, fm, depth+1); err != nil {
			return err
		}
		return build(m, b, fm, fb, depth+1)
	}
	if err := build(lo, hi, fn(lo), fn(hi), 0); err != nil {
		return Func{}, err
	}
	return Func{pieces: pieces}, nil
}

// quadThrough returns the quadratic interpolating (x0,y0), (x1,y1),
// (x2,y2) with distinct x's, via Newton divided differences.
func quadThrough(x0, y0, x1, y1, x2, y2 float64) (poly.Poly, error) {
	// Nodes closer than the relative rounding scale make the divided
	// differences blow up just as surely as exactly coincident ones.
	eps := 1e-12 * (1 + math.Abs(x0) + math.Abs(x1) + math.Abs(x2))
	if poly.ApproxEq(x0, x1, eps) || poly.ApproxEq(x1, x2, eps) || poly.ApproxEq(x0, x2, eps) {
		return nil, fmt.Errorf("piecewise: degenerate interpolation nodes %g,%g,%g", x0, x1, x2)
	}
	d01 := (y1 - y0) / (x1 - x0)
	d12 := (y2 - y1) / (x2 - x1)
	d012 := (d12 - d01) / (x2 - x0)
	// p(x) = y0 + d01 (x-x0) + d012 (x-x0)(x-x1)
	p := poly.Constant(y0).
		Add(poly.Linear(1, -x0).Scale(d01)).
		Add(poly.Linear(1, -x0).Mul(poly.Linear(1, -x1)).Scale(d012))
	return p, nil
}

// MaxAbsErr samples |f - fn| at n points per piece and returns the
// maximum, for validating fits in tests and experiments.
func (f Func) MaxAbsErr(fn func(float64) float64, perPiece int) float64 {
	worst := 0.0
	for _, pc := range f.pieces {
		end := pc.End
		if math.IsInf(end, 1) {
			end = pc.Start + 100
		}
		for k := 0; k <= perPiece; k++ {
			t := pc.Start + (end-pc.Start)*float64(k)/float64(perPiece)
			if e := math.Abs(pc.P.Eval(t) - fn(t)); e > worst {
				worst = e
			}
		}
	}
	return worst
}
