package piecewise

// Intersection search between two curves: the primitive the sweep's event
// scheduling is built on (Lemma 7 of the paper reduces intersection
// detection to adjacent pairs; this file finds the next intersection time
// for one pair).

// IntersectionKind classifies how two curves meet at an intersection time.
type IntersectionKind int

const (
	// NoIntersection means the curves never meet after the given time.
	NoIntersection IntersectionKind = iota
	// Crossing means the difference changes sign: the curves swap order.
	Crossing
	// Touching means the curves meet with even multiplicity and separate
	// in the same order (tangency): an equivalence instant, no swap.
	Touching
	// Coinciding means the curves are identical on an interval starting
	// at the reported time.
	Coinciding
)

// String implements fmt.Stringer for diagnostics.
func (k IntersectionKind) String() string {
	switch k {
	case NoIntersection:
		return "none"
	case Crossing:
		return "crossing"
	case Touching:
		return "touching"
	case Coinciding:
		return "coinciding"
	default:
		return "unknown"
	}
}

// Intersection describes the next meeting of two curves.
type Intersection struct {
	T    float64
	Kind IntersectionKind
	// SignAfter is the sign of (f-g) immediately after T: -1 means f
	// stays below g, +1 means f ends up above g, 0 only for Coinciding.
	SignAfter int
}

// FirstIntersectionAfter returns the earliest intersection of f and g at
// a time strictly greater than `after`, restricted to the overlap of their
// domains. ok is false when the curves do not meet again.
func FirstIntersectionAfter(f, g Func, after float64) (Intersection, bool) {
	diff, err := f.Sub(g)
	if err != nil {
		return Intersection{Kind: NoIntersection}, false
	}
	t := after
	for {
		s, coincide, found := diff.FirstZeroAfter(t)
		if !found {
			return Intersection{Kind: NoIntersection}, false
		}
		if coincide {
			return Intersection{T: s, Kind: Coinciding, SignAfter: 0}, true
		}
		sa := diff.SignAfter(s)
		sb := diff.SignBefore(s)
		switch {
		case sa == 0:
			// Root leading into a coincidence piece.
			return Intersection{T: s, Kind: Coinciding, SignAfter: 0}, true
		case sb == 0 && s <= after+2e-9:
			// We are sitting exactly on a root the caller already
			// processed (numerically); skip forward.
			t = s
			continue
		case sa != sb:
			return Intersection{T: s, Kind: Crossing, SignAfter: sa}, true
		default:
			return Intersection{T: s, Kind: Touching, SignAfter: sa}, true
		}
	}
}
