package piecewise

// Lazy pairwise operations used on the sweep's hot path. Scheduling the
// next event for an adjacent pair must not materialize the full difference
// curve (curves from long histories have many pieces); these walkers start
// at the pieces containing the query time and stop at the first answer.

import (
	"math"
)

// FirstMeetingAfter returns the earliest time s in (after, hi] at which f
// and g meet, walking the two piece lists in lockstep from the pieces
// containing `after`.
//
// coincide reports that the curves are identical on a stretch beginning at
// s (s may equal `after` when the coincidence is already in progress);
// otherwise s is an isolated meeting time, strictly greater than `after`.
func FirstMeetingAfter(f, g Func, after, hi float64) (s float64, coincide, ok bool) {
	flo, fhi := f.Domain()
	glo, ghi := g.Domain()
	lo := math.Max(flo, glo)
	end := math.Min(math.Min(fhi, ghi), hi)
	t := math.Max(after, lo)
	if t > end {
		return 0, false, false
	}
	ia := f.pieceIndexAt(t)
	ib := g.pieceIndexAt(t)
	if ia < 0 || ib < 0 {
		return 0, false, false
	}
	for {
		pa, pb := f.pieces[ia], g.pieces[ib]
		segEnd := math.Min(math.Min(pa.End, pb.End), end)
		d := pa.P.Sub(pb.P)
		if d.IsZero() {
			// Identical on this stretch.
			start := math.Max(t, math.Max(pa.Start, pb.Start))
			return math.Max(start, after), true, true
		}
		// Bound the search by the current segment start: the local
		// difference polynomial may have extrapolated roots before the
		// segment, which are not meetings of f and g. Boundary roots
		// are found by the preceding segment's closed-interval search.
		segLo := math.Max(after, math.Max(pa.Start, pb.Start))
		if r, found := d.FirstRootAfter(segLo, segEnd); found && r > after {
			return r, false, true
		}
		// Advance to the next segment.
		if segEnd >= end {
			return 0, false, false
		}
		t = segEnd
		if pa.End <= segEnd && ia+1 < len(f.pieces) {
			ia++
		}
		if pb.End <= segEnd && ib+1 < len(g.pieces) {
			ib++
		}
		if f.pieces[ia].End <= t && g.pieces[ib].End <= t {
			return 0, false, false
		}
	}
}

// SignDiffAfter returns the sign of (f - g) on (t, t+delta) for
// infinitesimal delta, without materializing the difference. At piece
// boundaries the pieces beginning at t govern.
func SignDiffAfter(f, g Func, t float64) int {
	ia := f.pieceIndexAt(t)
	ib := g.pieceIndexAt(t)
	if ia < 0 || ib < 0 {
		return 0
	}
	if ia+1 < len(f.pieces) && t >= f.pieces[ia].End-boundTol {
		ia++
	}
	if ib+1 < len(g.pieces) && t >= g.pieces[ib].End-boundTol {
		ib++
	}
	return f.pieces[ia].P.Sub(g.pieces[ib].P).SignAfter(t)
}

// SignDiffBefore returns the sign of (f - g) on (t-delta, t). At piece
// boundaries the pieces ending at t govern.
func SignDiffBefore(f, g Func, t float64) int {
	ia := f.pieceIndexAt(t)
	ib := g.pieceIndexAt(t)
	if ia < 0 || ib < 0 {
		return 0
	}
	if ia > 0 && t <= f.pieces[ia].Start+boundTol {
		ia--
	}
	if ib > 0 && t <= g.pieces[ib].Start+boundTol {
		ib--
	}
	return f.pieces[ia].P.Sub(g.pieces[ib].P).SignBefore(t)
}

// CoincidenceEndAfter returns the first time strictly greater than t at
// which f and g stop being identical, given that they coincide at t.
// ok=false means they remain identical through the end of the overlap of
// their domains (or hi).
func CoincidenceEndAfter(f, g Func, t, hi float64) (float64, bool) {
	_, fhi := f.Domain()
	_, ghi := g.Domain()
	end := math.Min(math.Min(fhi, ghi), hi)
	ia := f.pieceIndexAt(t)
	ib := g.pieceIndexAt(t)
	if ia < 0 || ib < 0 {
		return 0, false
	}
	cur := t
	for {
		pa, pb := f.pieces[ia], g.pieces[ib]
		segEnd := math.Min(math.Min(pa.End, pb.End), end)
		d := pa.P.Sub(pb.P)
		if !d.IsZero() {
			// Difference nonzero somewhere in this segment. It may
			// still be zero exactly at cur (continuity); separation
			// happens at cur if the sign just after is nonzero,
			// otherwise at the first point the polynomial leaves zero
			// — for a nonzero polynomial that is immediate past its
			// root, so cur is the separation instant.
			return math.Max(cur, t), true
		}
		if segEnd >= end {
			return 0, false
		}
		cur = segEnd
		if pa.End <= segEnd && ia+1 < len(f.pieces) {
			ia++
		}
		if pb.End <= segEnd && ib+1 < len(g.pieces) {
			ib++
		}
		if f.pieces[ia].End <= cur && g.pieces[ib].End <= cur {
			return 0, false
		}
	}
}
