package piecewise

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/poly"
)

func TestFirstMeetingAfterSimple(t *testing.T) {
	f := FromPoly(poly.Linear(1, 0), 0, 100)
	g := FromPoly(poly.Linear(-1, 10), 0, 100)
	s, coincide, ok := FirstMeetingAfter(f, g, 0, 100)
	if !ok || coincide || math.Abs(s-5) > 1e-9 {
		t.Fatalf("meet = %g coincide=%v ok=%v", s, coincide, ok)
	}
	if _, _, ok := FirstMeetingAfter(f, g, 5, 100); ok {
		t.Error("no second meeting expected")
	}
}

func TestFirstMeetingAfterRespectsHorizon(t *testing.T) {
	f := FromPoly(poly.Linear(1, 0), 0, 100)
	g := FromPoly(poly.Linear(-1, 10), 0, 100)
	if _, _, ok := FirstMeetingAfter(f, g, 0, 4); ok {
		t.Error("meeting beyond horizon reported")
	}
	s, _, ok := FirstMeetingAfter(f, g, 0, 5)
	if !ok || math.Abs(s-5) > 1e-9 {
		t.Errorf("meeting at horizon: %g %v", s, ok)
	}
}

func TestFirstMeetingAfterCrossPieces(t *testing.T) {
	// f has pieces; meeting lives in a later segment.
	f := MustNew(
		Piece{Start: 0, End: 10, P: poly.Constant(5)},
		Piece{Start: 10, End: 100, P: poly.Linear(-1, 15)}, // descends from 5
	)
	g := FromPoly(poly.Constant(2), 0, 100)
	s, coincide, ok := FirstMeetingAfter(f, g, 0, 100)
	if !ok || coincide || math.Abs(s-13) > 1e-9 {
		t.Fatalf("meet = %g coincide=%v ok=%v, want 13", s, coincide, ok)
	}
}

// TestFirstMeetingNoExtrapolatedRoots is the regression test for the
// phantom-event bug: a later piece's polynomial has a root before the
// piece's own domain, which must not be reported as a meeting.
func TestFirstMeetingNoExtrapolatedRoots(t *testing.T) {
	// g's second piece is 50 - 0.5t: extended below its domain start it
	// crosses 40 at t=20 exactly (fine) but crosses 45 at t=10 — a
	// phantom root inside the first piece's domain where g is constant.
	g := MustNew(
		Piece{Start: 0, End: 20, P: poly.Constant(40)},
		Piece{Start: 20, End: 100, P: poly.Linear(-0.5, 50)}, // 40 at 20, 0 at 100
	)
	f := Constant(0, 0, 100)
	s, coincide, ok := FirstMeetingAfter(g, f, 0, 100)
	if !ok || coincide || math.Abs(s-100) > 1e-6 {
		t.Fatalf("meet = %g coincide=%v ok=%v, want 100 (no phantom roots)", s, coincide, ok)
	}
	// And f-vs-g with a threshold that the FIRST piece's extension would
	// cross early but the actual curve crosses late.
	h := Constant(30, 0, 100)
	s, _, ok = FirstMeetingAfter(g, h, 0, 100)
	if !ok || math.Abs(s-40) > 1e-9 { // 50 - 0.5t = 30 => t = 40
		t.Fatalf("meet = %g ok=%v, want 40", s, ok)
	}
}

func TestFirstMeetingCoincideDetection(t *testing.T) {
	shared := poly.Linear(1, 0)
	f := MustNew(
		Piece{Start: 0, End: 5, P: poly.Linear(2, -5)}, // meets shared at 5
		Piece{Start: 5, End: 50, P: shared},
	)
	g := FromPoly(shared, 0, 50)
	s, coincide, ok := FirstMeetingAfter(f, g, 0, 50)
	if !ok || math.Abs(s-5) > 1e-9 {
		t.Fatalf("meet = %g coincide=%v ok=%v", s, coincide, ok)
	}
	// Starting inside the coincidence reports it immediately.
	s, coincide, ok = FirstMeetingAfter(f, g, 10, 50)
	if !ok || !coincide || s != 10 {
		t.Fatalf("mid-coincidence: %g %v %v", s, coincide, ok)
	}
}

func TestSignDiffAfterBefore(t *testing.T) {
	f := FromPoly(poly.Linear(1, 0), 0, 100)   // t
	g := FromPoly(poly.Linear(-1, 10), 0, 100) // 10-t
	if s := SignDiffAfter(f, g, 5); s != 1 {
		t.Errorf("SignDiffAfter = %d", s)
	}
	if s := SignDiffBefore(f, g, 5); s != -1 {
		t.Errorf("SignDiffBefore = %d", s)
	}
	if s := SignDiffAfter(f, g, 2); s != -1 {
		t.Errorf("SignDiffAfter(2) = %d", s)
	}
	// Out of domain.
	if s := SignDiffAfter(f, g, 200); s != 0 {
		t.Errorf("SignDiffAfter out of domain = %d", s)
	}
}

func TestSignDiffAtPieceBoundary(t *testing.T) {
	// f kinks at 10: rising then falling; g constant at the kink value.
	f := MustNew(
		Piece{Start: 0, End: 10, P: poly.Linear(1, 0)},
		Piece{Start: 10, End: 100, P: poly.Linear(-1, 20)},
	)
	g := Constant(10, 0, 100)
	if s := SignDiffBefore(f, g, 10); s != -1 {
		t.Errorf("before kink = %d", s)
	}
	if s := SignDiffAfter(f, g, 10); s != -1 {
		t.Errorf("after kink = %d (f falls away below g)", s)
	}
}

func TestCoincidenceEndAfter(t *testing.T) {
	shared := poly.Constant(3)
	f := MustNew(
		Piece{Start: 0, End: 10, P: shared},
		Piece{Start: 10, End: 50, P: poly.Linear(1, -7)},
	)
	g := FromPoly(shared, 0, 50)
	sep, ok := CoincidenceEndAfter(f, g, 2, 50)
	if !ok || math.Abs(sep-10) > 1e-9 {
		t.Fatalf("sep = %g ok=%v, want 10", sep, ok)
	}
	// Identical forever within the window: no separation.
	h := FromPoly(shared, 0, 50)
	if _, ok := CoincidenceEndAfter(g, h, 0, 50); ok {
		t.Error("identical curves reported separation")
	}
}

// Property: FirstMeetingAfter agrees with the materialized difference's
// FirstZeroAfter on random piecewise-linear curves.
func TestFirstMeetingMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		f := randPL(rng)
		g := randPL(rng)
		after := rng.Float64() * 50
		s1, c1, ok1 := FirstMeetingAfter(f, g, after, 100)
		d, err := f.Sub(g)
		if err != nil {
			t.Fatal(err)
		}
		s2, c2, ok2 := d.FirstZeroAfter(after)
		if ok1 != ok2 {
			t.Fatalf("trial %d: ok %v vs %v (after=%g)\nf=%s\ng=%s", trial, ok1, ok2, after, f, g)
		}
		if ok1 {
			if math.Abs(s1-s2) > 1e-6 || c1 != c2 {
				t.Fatalf("trial %d: meet %g(%v) vs %g(%v)", trial, s1, c1, s2, c2)
			}
		}
	}
}

func randPL(rng *rand.Rand) Func {
	breaks := []float64{0, 100}
	for i := 0; i < rng.Intn(3); i++ {
		breaks = append(breaks, math.Floor(rng.Float64()*99)+0.5)
	}
	sortFloat(breaks)
	val := math.Floor(rng.Float64()*40) - 20
	var pieces []Piece
	for i := 0; i+1 < len(breaks); i++ {
		a, b := breaks[i], breaks[i+1]
		if b <= a {
			continue
		}
		slope := math.Floor(rng.Float64()*9) - 4
		pieces = append(pieces, Piece{Start: a, End: b, P: poly.Linear(slope, val-slope*a)})
		val += slope * (b - a)
	}
	return MustNew(pieces...)
}

func sortFloat(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestFitLinearAndQuadraticExact(t *testing.T) {
	f, err := Fit(func(x float64) float64 { return 3*x + 1 }, 0, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.MaxAbsErr(func(x float64) float64 { return 3*x + 1 }, 50); got > 1e-9 {
		t.Errorf("linear fit err %g", got)
	}
	quad := func(x float64) float64 { return x*x - 4*x + 7 }
	f, err = Fit(quad, -5, 5, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPieces() != 1 {
		t.Errorf("quadratic should fit in one piece, got %d", f.NumPieces())
	}
}

func TestFitSqrtWithinTolerance(t *testing.T) {
	fn := math.Sqrt
	for _, tol := range []float64{1e-3, 1e-6, 1e-9} {
		f, err := Fit(fn, 1, 100, tol)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.MaxAbsErr(fn, 20); got > 2*tol {
			t.Errorf("tol %g: max err %g", tol, got)
		}
	}
	// Tighter tolerance uses more pieces.
	loose, _ := Fit(fn, 1, 100, 1e-3)
	tight, _ := Fit(fn, 1, 100, 1e-9)
	if tight.NumPieces() <= loose.NumPieces() {
		t.Errorf("pieces: tight %d vs loose %d", tight.NumPieces(), loose.NumPieces())
	}
}

func TestFitErrors(t *testing.T) {
	id := func(x float64) float64 { return x }
	if _, err := Fit(id, 5, 5, 1e-6); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := Fit(id, 0, math.Inf(1), 1e-6); err == nil {
		t.Error("infinite interval accepted")
	}
	if _, err := Fit(id, 0, 1, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
}
