// Package piecewise implements piecewise-polynomial functions of time,
// the representation of generalized-distance curves in the plane-sweep
// evaluator. A "polynomial g-distance" in the paper's sense (Section 5) is
// exactly a function that "consists of finitely many pieces and is
// piecewise polynomial"; this package provides that type together with the
// operations the sweep needs: pointwise algebra, composition with
// polynomial time terms, first-zero search, and one-sided signs at a point.
package piecewise

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/poly"
)

// Piece is one polynomial segment of a piecewise function, valid on the
// closed time interval [Start, End]. End may be +Inf for the final piece.
type Piece struct {
	Start, End float64
	P          poly.Poly
}

// Func is a piecewise-polynomial function on a contiguous domain
// [Domain()]. Pieces are sorted and contiguous: pieces[i].End ==
// pieces[i+1].Start. At shared boundaries the function value is taken from
// either side; continuity is the caller's contract for g-distances (the
// paper's relaxation to finitely many continuous pieces is supported: the
// sweep re-certifies at discontinuities).
type Func struct {
	pieces []Piece
}

// boundTol is the slack used when locating the piece containing a time.
const boundTol = 1e-9

// ErrEmptyDomain is returned when an operation would produce a function
// with an empty domain.
var ErrEmptyDomain = errors.New("piecewise: empty domain")

// New validates and builds a Func from pieces. Pieces must be non-empty,
// in ascending order, contiguous, and have Start < End (except a single
// degenerate point domain is rejected).
func New(pieces ...Piece) (Func, error) {
	if len(pieces) == 0 {
		return Func{}, errors.New("piecewise: no pieces")
	}
	for i, pc := range pieces {
		if !(pc.Start < pc.End) {
			return Func{}, fmt.Errorf("piecewise: piece %d has empty interval [%g,%g]", i, pc.Start, pc.End)
		}
		if i > 0 && pieces[i-1].End != pc.Start { //modlint:allow floatcmp -- breakpoints are propagated bit-identically; an epsilon here would mask construction bugs
			return Func{}, fmt.Errorf("piecewise: gap between piece %d (ends %g) and %d (starts %g)",
				i-1, pieces[i-1].End, i, pc.Start)
		}
	}
	cp := make([]Piece, len(pieces))
	copy(cp, pieces)
	return Func{pieces: cp}, nil
}

// MustNew is New for statically-known-good inputs (tests, examples).
func MustNew(pieces ...Piece) Func {
	f, err := New(pieces...)
	if err != nil {
		panic(err)
	}
	return f
}

// FromPoly wraps a single polynomial on [start, end].
func FromPoly(p poly.Poly, start, end float64) Func {
	return Func{pieces: []Piece{{Start: start, End: end, P: p}}}
}

// Constant is the constant function c on [start, end]. Constant curves
// model the real-number constants of FO(f) queries as stationary curves in
// the sweep order.
func Constant(c, start, end float64) Func {
	return FromPoly(poly.Constant(c), start, end)
}

// Domain returns the closed domain [lo, hi] of f (hi may be +Inf).
func (f Func) Domain() (lo, hi float64) {
	if len(f.pieces) == 0 {
		return math.NaN(), math.NaN()
	}
	return f.pieces[0].Start, f.pieces[len(f.pieces)-1].End
}

// IsZeroLen reports whether f has no pieces (the zero value).
func (f Func) IsZeroLen() bool { return len(f.pieces) == 0 }

// NumPieces returns the number of polynomial segments.
func (f Func) NumPieces() int { return len(f.pieces) }

// Pieces returns a copy of the segments.
func (f Func) Pieces() []Piece {
	out := make([]Piece, len(f.pieces))
	copy(out, f.pieces)
	return out
}

// pieceIndexAt returns the index of the piece whose interval contains t,
// preferring the piece that starts at t when t is a shared boundary
// (so one-sided "after" semantics come out of the containing-piece rule).
// Returns -1 when t is outside the domain by more than boundTol.
func (f Func) pieceIndexAt(t float64) int {
	n := len(f.pieces)
	if n == 0 {
		return -1
	}
	if t < f.pieces[0].Start-boundTol || t > f.pieces[n-1].End+boundTol {
		return -1
	}
	// Binary search for the first piece with End >= t.
	i := sort.Search(n, func(i int) bool { return f.pieces[i].End >= t })
	if i == n {
		i = n - 1
	}
	// Prefer the following piece when t sits exactly at this piece's end.
	if i+1 < n && t >= f.pieces[i].End {
		i++
	}
	return i
}

// Eval evaluates f at t. Outside the domain it evaluates the nearest
// boundary piece's polynomial (extrapolation); use InDomain to guard when
// that matters. The sweep always evaluates in-domain.
func (f Func) Eval(t float64) float64 {
	i := f.pieceIndexAt(t)
	if i < 0 {
		if len(f.pieces) == 0 {
			return math.NaN()
		}
		if t < f.pieces[0].Start {
			i = 0
		} else {
			i = len(f.pieces) - 1
		}
	}
	return f.pieces[i].P.Eval(t)
}

// InDomain reports whether t lies within the domain (with boundTol slack).
func (f Func) InDomain(t float64) bool { return f.pieceIndexAt(t) >= 0 }

// breakpoints returns the merged sorted interior breakpoints of f and g
// within [lo, hi].
func mergedBreaks(f, g Func, lo, hi float64) []float64 {
	var bs []float64
	add := func(x float64) {
		if x > lo && x < hi {
			bs = append(bs, x)
		}
	}
	for _, pc := range f.pieces {
		add(pc.Start)
		add(pc.End)
	}
	for _, pc := range g.pieces {
		add(pc.Start)
		add(pc.End)
	}
	sort.Float64s(bs)
	// Deduplicate.
	out := bs[:0]
	for _, x := range bs {
		if len(out) == 0 || x-out[len(out)-1] > 0 {
			out = append(out, x)
		}
	}
	return out
}

// combine applies op to aligned pieces of f and g over the intersection of
// their domains.
func combine(f, g Func, op func(a, b poly.Poly) poly.Poly) (Func, error) {
	flo, fhi := f.Domain()
	glo, ghi := g.Domain()
	lo, hi := math.Max(flo, glo), math.Min(fhi, ghi)
	if !(lo < hi) {
		return Func{}, ErrEmptyDomain
	}
	breaks := mergedBreaks(f, g, lo, hi)
	bounds := make([]float64, 0, len(breaks)+2)
	bounds = append(bounds, lo)
	bounds = append(bounds, breaks...)
	bounds = append(bounds, hi)
	pieces := make([]Piece, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		var mid float64
		if math.IsInf(b, 1) {
			mid = a + 1
		} else {
			mid = 0.5 * (a + b)
		}
		fi := f.pieceIndexAt(mid)
		gi := g.pieceIndexAt(mid)
		if fi < 0 || gi < 0 {
			return Func{}, fmt.Errorf("piecewise: internal alignment failure at t=%g", mid)
		}
		pieces = append(pieces, Piece{Start: a, End: b, P: op(f.pieces[fi].P, g.pieces[gi].P)})
	}
	return Func{pieces: pieces}, nil
}

// Sub returns f - g on the intersection of domains. This is the curve
// whose zeros are the intersections of f and g.
func (f Func) Sub(g Func) (Func, error) {
	return combine(f, g, func(a, b poly.Poly) poly.Poly { return a.Sub(b) })
}

// Add returns f + g on the intersection of domains.
func (f Func) Add(g Func) (Func, error) {
	return combine(f, g, func(a, b poly.Poly) poly.Poly { return a.Add(b) })
}

// Mul returns f * g on the intersection of domains.
func (f Func) Mul(g Func) (Func, error) {
	return combine(f, g, func(a, b poly.Poly) poly.Poly { return a.Mul(b) })
}

// Scale returns c*f.
func (f Func) Scale(c float64) Func {
	pieces := make([]Piece, len(f.pieces))
	for i, pc := range f.pieces {
		pieces[i] = Piece{Start: pc.Start, End: pc.End, P: pc.P.Scale(c)}
	}
	return Func{pieces: pieces}
}

// AddPoly returns f + p (p applied on all of f's domain).
func (f Func) AddPoly(p poly.Poly) Func {
	pieces := make([]Piece, len(f.pieces))
	for i, pc := range f.pieces {
		pieces[i] = Piece{Start: pc.Start, End: pc.End, P: pc.P.Add(p)}
	}
	return Func{pieces: pieces}
}

// Restrict returns f limited to [lo, hi] (intersected with f's domain).
func (f Func) Restrict(lo, hi float64) (Func, error) {
	flo, fhi := f.Domain()
	lo, hi = math.Max(lo, flo), math.Min(hi, fhi)
	if !(lo < hi) {
		return Func{}, ErrEmptyDomain
	}
	var pieces []Piece
	for _, pc := range f.pieces {
		s, e := math.Max(pc.Start, lo), math.Min(pc.End, hi)
		if s < e {
			pieces = append(pieces, Piece{Start: s, End: e, P: pc.P})
		}
	}
	return Func{pieces: pieces}, nil
}

// ExtendTo extends the final piece's End to hi if hi is beyond the current
// domain end (polynomial extrapolation of the last piece). Used when a
// trajectory's final motion is open-ended.
func (f Func) ExtendTo(hi float64) Func {
	if len(f.pieces) == 0 {
		return f
	}
	pieces := make([]Piece, len(f.pieces))
	copy(pieces, f.pieces)
	if hi > pieces[len(pieces)-1].End {
		pieces[len(pieces)-1].End = hi
	}
	return Func{pieces: pieces}
}

// FirstZeroAfter returns the earliest time s with s > t (strictly, by
// more than poly.RootTol) at which f(s) = 0, within f's domain.
//
// coincide reports that instead of an isolated zero, f is identically zero
// on a whole piece; s is then the start of that coincidence (or t itself
// when t already lies inside a zero piece).
func (f Func) FirstZeroAfter(t float64) (s float64, coincide, ok bool) {
	for _, pc := range f.pieces {
		if pc.End <= t+poly.RootTol {
			continue
		}
		lo := math.Max(pc.Start, t)
		if pc.P.IsZero() {
			return lo, true, true
		}
		// The search must be bounded below by the piece's own start:
		// a later piece's polynomial can have extrapolated roots before
		// the piece's domain, which are not zeros of f. A zero exactly
		// at pc.Start is found by the previous piece's closed-interval
		// search (continuity), so the strictly-after semantics here
		// lose nothing.
		if r, found := pc.P.FirstRootAfter(lo, pc.End); found {
			return r, false, true
		}
	}
	return 0, false, false
}

// SignAfter returns the sign of f on (t, t+delta) for infinitesimal
// delta > 0. At a piece boundary the piece starting at t governs.
func (f Func) SignAfter(t float64) int {
	i := f.pieceIndexAt(t)
	if i < 0 {
		return 0
	}
	// If t is (numerically) at this piece's end, the next piece governs.
	if i+1 < len(f.pieces) && t >= f.pieces[i].End-boundTol {
		i++
	}
	return f.pieces[i].P.SignAfter(t)
}

// SignBefore returns the sign of f on (t-delta, t). At a piece boundary
// the piece ending at t governs.
func (f Func) SignBefore(t float64) int {
	i := f.pieceIndexAt(t)
	if i < 0 {
		return 0
	}
	if i > 0 && t <= f.pieces[i].Start+boundTol {
		i--
	}
	return f.pieces[i].P.SignBefore(t)
}

// Compose returns f(q(t)) on [lo, hi]. The image q([lo, hi]) must lie
// inside f's domain. Non-monotone q is supported: the domain is split at
// the solutions of q(t) = b for every piece boundary b of f, so that each
// resulting segment maps into a single piece.
//
// This implements FO(f) time terms (Section 4): a query's real term
// f(y, p(t)) with polynomial time term p is the curve f_y composed with p.
func (f Func) Compose(q poly.Poly, lo, hi float64) (Func, error) {
	if !(lo < hi) {
		return Func{}, ErrEmptyDomain
	}
	flo, fhi := f.Domain()
	// Collect split points: roots of q - boundary for each interior
	// boundary and the domain edges (to validate containment).
	cuts := []float64{lo, hi}
	addRootsOf := func(target float64) error {
		if math.IsInf(target, 0) {
			return nil
		}
		diff := q.Sub(poly.Constant(target))
		roots, ok := diff.RootsIn(lo, hi)
		if !ok {
			// q identically equals the boundary; fine, it maps into
			// both adjacent pieces equally.
			return nil
		}
		cuts = append(cuts, roots...)
		return nil
	}
	for _, pc := range f.pieces {
		if err := addRootsOf(pc.Start); err != nil {
			return Func{}, err
		}
	}
	if err := addRootsOf(fhi); err != nil {
		return Func{}, err
	}
	sort.Float64s(cuts)
	// Deduplicate with tolerance.
	uniq := cuts[:0]
	for _, c := range cuts {
		if len(uniq) == 0 || c-uniq[len(uniq)-1] > poly.RootTol {
			uniq = append(uniq, c)
		}
	}
	if len(uniq) < 2 || uniq[len(uniq)-1] < hi-poly.RootTol {
		uniq = append(uniq, hi)
	}
	var pieces []Piece
	for i := 0; i+1 < len(uniq); i++ {
		a, b := uniq[i], uniq[i+1]
		var mid float64
		if math.IsInf(b, 1) {
			mid = a + 1
		} else {
			mid = 0.5 * (a + b)
		}
		img := q.Eval(mid)
		if img < flo-boundTol || img > fhi+boundTol {
			return Func{}, fmt.Errorf("piecewise: compose image %g at t=%g outside domain [%g,%g]", img, mid, flo, fhi)
		}
		fi := f.pieceIndexAt(img)
		if fi < 0 {
			return Func{}, fmt.Errorf("piecewise: compose lookup failed at t=%g", mid)
		}
		pieces = append(pieces, Piece{Start: a, End: b, P: f.pieces[fi].P.Compose(q)})
	}
	return Func{pieces: pieces}, nil
}

// String renders each piece as "[a,b] p(t)" joined by " | ".
func (f Func) String() string {
	if len(f.pieces) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	for i, pc := range f.pieces {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "[%g,%g] %s", pc.Start, pc.End, pc.P)
	}
	return b.String()
}

// ApproxEqual reports whether f and g have the same domain and agree
// within tol at a dense set of sample points (31 per piece). Intended for
// tests.
func (f Func) ApproxEqual(g Func, tol float64) bool {
	flo, fhi := f.Domain()
	glo, ghi := g.Domain()
	if math.Abs(flo-glo) > boundTol {
		return false
	}
	if !(math.IsInf(fhi, 1) && math.IsInf(ghi, 1)) && math.Abs(fhi-ghi) > boundTol {
		return false
	}
	sample := func(h Func) []float64 {
		var ts []float64
		for _, pc := range h.pieces {
			end := pc.End
			if math.IsInf(end, 1) {
				end = pc.Start + 100
			}
			for k := 0; k <= 30; k++ {
				ts = append(ts, pc.Start+(end-pc.Start)*float64(k)/30)
			}
		}
		return ts
	}
	for _, t := range append(sample(f), sample(g)...) {
		if math.Abs(f.Eval(t)-g.Eval(t)) > tol {
			return false
		}
	}
	return true
}

// Discontinuities returns the interior piece boundaries at which f jumps
// (left and right limits differ materially), within (lo, hi). Continuous
// g-distances return none; the paper's relaxation to finitely many
// continuous pieces (Section 5, first closing remark) produces these
// instants, at which a sweep must re-certify the curve's position.
func (f Func) Discontinuities(lo, hi float64) []float64 {
	var out []float64
	for i := 1; i < len(f.pieces); i++ {
		b := f.pieces[i].Start
		if b <= lo || b >= hi {
			continue
		}
		left := f.pieces[i-1].P.Eval(b)
		right := f.pieces[i].P.Eval(b)
		scale := math.Max(1, math.Max(math.Abs(left), math.Abs(right)))
		if math.Abs(left-right) > 1e-9*scale {
			out = append(out, b)
		}
	}
	return out
}
