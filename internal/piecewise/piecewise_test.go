package piecewise

import (
	"math"
	"testing"

	"repro/internal/poly"
)

func inf() float64 { return math.Inf(1) }

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty pieces should fail")
	}
	if _, err := New(Piece{Start: 1, End: 1, P: poly.Constant(1)}); err == nil {
		t.Error("empty interval should fail")
	}
	if _, err := New(
		Piece{Start: 0, End: 1, P: poly.Constant(1)},
		Piece{Start: 2, End: 3, P: poly.Constant(1)},
	); err == nil {
		t.Error("gap should fail")
	}
	f, err := New(
		Piece{Start: 0, End: 1, P: poly.Constant(1)},
		Piece{Start: 1, End: inf(), P: poly.Linear(1, 0)},
	)
	if err != nil {
		t.Fatalf("valid pieces rejected: %v", err)
	}
	lo, hi := f.Domain()
	if lo != 0 || !math.IsInf(hi, 1) {
		t.Errorf("Domain = [%g,%g]", lo, hi)
	}
}

func TestEvalAcrossPieces(t *testing.T) {
	// f = t on [0,2], then 4-t on [2,10] (continuous tent at 2).
	f := MustNew(
		Piece{Start: 0, End: 2, P: poly.Linear(1, 0)},
		Piece{Start: 2, End: 10, P: poly.Linear(-1, 4)},
	)
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 1}, {2, 2}, {3, 1}, {4, 0}, {10, -6},
	}
	for _, c := range cases {
		if got := f.Eval(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if !f.InDomain(5) || f.InDomain(11) || f.InDomain(-1) {
		t.Error("InDomain wrong")
	}
}

func TestSubAlignsBreakpoints(t *testing.T) {
	f := MustNew(
		Piece{Start: 0, End: 5, P: poly.Linear(1, 0)},   // t
		Piece{Start: 5, End: 10, P: poly.Linear(2, -5)}, // 2t-5
	)
	g := MustNew(
		Piece{Start: 0, End: 3, P: poly.Constant(2)},
		Piece{Start: 3, End: 10, P: poly.Linear(1, -1)}, // t-1
	)
	d, err := f.Sub(g)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPieces() != 3 {
		t.Fatalf("NumPieces = %d, want 3 (%s)", d.NumPieces(), d)
	}
	for _, tt := range []float64{0, 1, 2.9, 3, 4, 5, 7, 10} {
		want := f.Eval(tt) - g.Eval(tt)
		if got := d.Eval(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("Sub.Eval(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestAddMulScale(t *testing.T) {
	f := FromPoly(poly.Linear(1, 0), 0, 10)
	g := FromPoly(poly.Linear(-1, 10), 0, 10)
	sum, err := f.Add(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Eval(4); math.Abs(got-10) > 1e-12 {
		t.Errorf("Add = %g, want 10", got)
	}
	prod, err := f.Mul(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := prod.Eval(4); math.Abs(got-24) > 1e-12 {
		t.Errorf("Mul = %g, want 24", got)
	}
	if got := f.Scale(3).Eval(2); math.Abs(got-6) > 1e-12 {
		t.Errorf("Scale = %g, want 6", got)
	}
}

func TestDisjointDomains(t *testing.T) {
	f := FromPoly(poly.Constant(1), 0, 1)
	g := FromPoly(poly.Constant(1), 2, 3)
	if _, err := f.Sub(g); err == nil {
		t.Error("disjoint domains should fail")
	}
}

func TestRestrict(t *testing.T) {
	f := MustNew(
		Piece{Start: 0, End: 5, P: poly.Linear(1, 0)},
		Piece{Start: 5, End: 10, P: poly.Linear(2, -5)},
	)
	r, err := f.Restrict(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.Domain()
	if lo != 3 || hi != 7 {
		t.Errorf("Domain = [%g,%g]", lo, hi)
	}
	if r.NumPieces() != 2 {
		t.Errorf("NumPieces = %d", r.NumPieces())
	}
	if got := r.Eval(6); math.Abs(got-7) > 1e-12 {
		t.Errorf("Eval(6) = %g, want 7", got)
	}
	if _, err := f.Restrict(20, 30); err == nil {
		t.Error("out-of-domain restrict should fail")
	}
}

func TestExtendTo(t *testing.T) {
	f := FromPoly(poly.Linear(1, 0), 0, 5)
	g := f.ExtendTo(100)
	_, hi := g.Domain()
	if hi != 100 {
		t.Errorf("ExtendTo hi = %g", hi)
	}
	if got := g.Eval(50); math.Abs(got-50) > 1e-12 {
		t.Errorf("extrapolated Eval = %g", got)
	}
	// Original untouched.
	if _, ohi := f.Domain(); ohi != 5 {
		t.Error("ExtendTo mutated receiver")
	}
}

func TestFirstZeroAfter(t *testing.T) {
	// f = (t-2)(t-6) on [0, 10].
	f := FromPoly(poly.FromRoots(2, 6), 0, 10)
	s, coincide, ok := f.FirstZeroAfter(0)
	if !ok || coincide || math.Abs(s-2) > 1e-8 {
		t.Errorf("first zero = %g coincide=%v ok=%v", s, coincide, ok)
	}
	s, _, ok = f.FirstZeroAfter(2)
	if !ok || math.Abs(s-6) > 1e-8 {
		t.Errorf("second zero = %g ok=%v (strictness after root)", s, ok)
	}
	if _, _, ok := f.FirstZeroAfter(6); ok {
		t.Error("no zero after 6 expected")
	}
}

func TestFirstZeroAcrossPieces(t *testing.T) {
	// Zero lives in the second piece.
	f := MustNew(
		Piece{Start: 0, End: 4, P: poly.Constant(5)},
		Piece{Start: 4, End: 20, P: poly.Linear(1, -9)}, // t-9
	)
	s, coincide, ok := f.FirstZeroAfter(0)
	if !ok || coincide || math.Abs(s-9) > 1e-9 {
		t.Errorf("zero = %g coincide=%v ok=%v", s, coincide, ok)
	}
}

func TestFirstZeroCoincide(t *testing.T) {
	f := MustNew(
		Piece{Start: 0, End: 3, P: poly.Linear(-1, 3)}, // 3-t hits 0 at 3
		Piece{Start: 3, End: 8, P: poly.Poly{}},        // identically zero
		Piece{Start: 8, End: 12, P: poly.Linear(1, -8)},
	)
	s, coincide, ok := f.FirstZeroAfter(0)
	if !ok {
		t.Fatal("expected zero")
	}
	// The isolated root at 3 and the coincidence both begin at 3; either
	// report is acceptable as long as time is 3.
	if math.Abs(s-3) > 1e-9 {
		t.Errorf("zero = %g coincide=%v, want 3", s, coincide)
	}
	s, coincide, ok = f.FirstZeroAfter(5)
	if !ok || !coincide || math.Abs(s-5) > 1e-9 {
		t.Errorf("mid-coincidence: s=%g coincide=%v ok=%v, want s=5 coincide", s, coincide, ok)
	}
}

func TestSignAfterBefore(t *testing.T) {
	// Tent: up then down; at the peak t=2 sign of (f - 2) flips.
	f := MustNew(
		Piece{Start: 0, End: 2, P: poly.Linear(1, 0)},
		Piece{Start: 2, End: 10, P: poly.Linear(-1, 4)},
	)
	d := f.AddPoly(poly.Constant(-2)) // f - 2, zero exactly at t=2
	if s := d.SignBefore(2); s != -1 {
		t.Errorf("SignBefore(2) = %d, want -1", s)
	}
	if s := d.SignAfter(2); s != -1 {
		t.Errorf("SignAfter(2) = %d, want -1 (descending side)", s)
	}
	if s := d.SignAfter(0); s != -1 {
		t.Errorf("SignAfter(0) = %d", s)
	}
	if s := d.SignBefore(1.5); s != -1 {
		t.Errorf("SignBefore(1.5) = %d", s)
	}
}

func TestCompose(t *testing.T) {
	// f = t^2 on [0, 100]; q = t+3 -> f(q) = (t+3)^2 on [0, 5].
	f := FromPoly(poly.New(0, 0, 1), 0, 100)
	c, err := f.Compose(poly.Linear(1, 3), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 1, 2.5, 5} {
		want := (tt + 3) * (tt + 3)
		if got := c.Eval(tt); math.Abs(got-want) > 1e-9 {
			t.Errorf("Compose.Eval(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestComposeNonMonotone(t *testing.T) {
	// f piecewise: |x| style — f = -x on [-10,0], x on [0,10].
	f := MustNew(
		Piece{Start: -10, End: 0, P: poly.Linear(-1, 0)},
		Piece{Start: 0, End: 10, P: poly.Linear(1, 0)},
	)
	// q(t) = t^2 - 4: negative for |t|<2, positive beyond.
	q := poly.New(-4, 0, 1)
	c, err := f.Compose(q, -3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{-3, -2.5, -1, 0, 1.5, 2, 3} {
		want := math.Abs(tt*tt - 4)
		if got := c.Eval(tt); math.Abs(got-want) > 1e-7 {
			t.Errorf("Compose.Eval(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestComposeOutOfDomain(t *testing.T) {
	f := FromPoly(poly.New(0, 0, 1), 0, 10)
	// q maps 5 -> 25, outside f's domain.
	if _, err := f.Compose(poly.Linear(5, 0), 0, 5); err == nil {
		t.Error("compose outside domain should fail")
	}
}

func TestConstantCurve(t *testing.T) {
	c := Constant(7, 0, inf())
	if got := c.Eval(1e6); got != 7 {
		t.Errorf("Constant = %g", got)
	}
}

func TestFirstIntersectionCrossing(t *testing.T) {
	f := FromPoly(poly.Linear(1, 0), 0, 100)   // t
	g := FromPoly(poly.Linear(-1, 10), 0, 100) // 10-t, cross at 5
	x, ok := FirstIntersectionAfter(f, g, 0)
	if !ok || x.Kind != Crossing || math.Abs(x.T-5) > 1e-9 {
		t.Fatalf("got %+v ok=%v", x, ok)
	}
	if x.SignAfter != 1 {
		t.Errorf("SignAfter = %d, want +1 (f above after)", x.SignAfter)
	}
	if _, ok := FirstIntersectionAfter(f, g, 5); ok {
		t.Error("no further intersection expected")
	}
}

func TestFirstIntersectionTouching(t *testing.T) {
	f := FromPoly(poly.New(4, -4, 1), 0, 100) // (t-2)^2
	g := FromPoly(poly.Poly{}, 0, 100)        // zero... use Constant(0)
	g = Constant(0, 0, 100)
	x, ok := FirstIntersectionAfter(f, g, 0)
	if !ok || x.Kind != Touching || math.Abs(x.T-2) > 1e-9 {
		t.Fatalf("got %+v ok=%v", x, ok)
	}
	if x.SignAfter != 1 {
		t.Errorf("SignAfter = %d, want +1", x.SignAfter)
	}
}

func TestFirstIntersectionCoincide(t *testing.T) {
	shared := poly.Linear(2, 1)
	f := MustNew(
		Piece{Start: 0, End: 5, P: poly.Linear(1, 0)},
		Piece{Start: 5, End: 20, P: shared},
	)
	g := FromPoly(shared, 0, 20)
	x, ok := FirstIntersectionAfter(f, g, 0)
	if !ok {
		t.Fatal("expected intersection")
	}
	// f and g: difference is (t - (2t+1)) = -t-1 on [0,5] (no zero in
	// domain... at t=-1, outside), then identically 0 from 5.
	if x.Kind != Coinciding || math.Abs(x.T-5) > 1e-9 {
		t.Errorf("got %+v, want coincide at 5", x)
	}
}

func TestFirstIntersectionMultiplePieces(t *testing.T) {
	// Intersections at t=8 and t=17 like Figure 3's o3/o4 pair: a
	// parabola dipping below a line and coming back.
	f := FromPoly(poly.FromRoots(8, 17), 0, 100) // (t-8)(t-17)
	g := Constant(0, 0, 100)
	x1, ok := FirstIntersectionAfter(f, g, 3)
	if !ok || x1.Kind != Crossing || math.Abs(x1.T-8) > 1e-8 {
		t.Fatalf("first: %+v ok=%v", x1, ok)
	}
	x2, ok := FirstIntersectionAfter(f, g, x1.T)
	if !ok || x2.Kind != Crossing || math.Abs(x2.T-17) > 1e-8 {
		t.Fatalf("second: %+v ok=%v", x2, ok)
	}
	if x1.SignAfter != -1 || x2.SignAfter != 1 {
		t.Errorf("signs = %d,%d want -1,+1", x1.SignAfter, x2.SignAfter)
	}
}

func TestApproxEqual(t *testing.T) {
	f := FromPoly(poly.Linear(1, 0), 0, 10)
	g := FromPoly(poly.New(1e-13, 1), 0, 10)
	if !f.ApproxEqual(g, 1e-9) {
		t.Error("near-identical curves reported different")
	}
	h := FromPoly(poly.Linear(2, 0), 0, 10)
	if f.ApproxEqual(h, 1e-9) {
		t.Error("different curves reported equal")
	}
}

func TestStringer(t *testing.T) {
	f := FromPoly(poly.Linear(1, 0), 0, 1)
	if f.String() == "" || (Func{}).String() != "<empty>" {
		t.Error("String failed")
	}
	for _, k := range []IntersectionKind{NoIntersection, Crossing, Touching, Coinciding, IntersectionKind(99)} {
		if k.String() == "" {
			t.Errorf("IntersectionKind(%d).String empty", k)
		}
	}
}
