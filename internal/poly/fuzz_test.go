package poly

import (
	"math"
	"testing"
)

// FuzzRootsIn hardens root isolation: arbitrary coefficients must never
// panic or loop, and every reported root must actually be a (near-)zero.
func FuzzRootsIn(f *testing.F) {
	f.Add(1.0, -3.0, 2.0, 0.0, 0.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 1.0)
	f.Add(1e-300, 1e300, -5.0, 0.125, 3.0)
	f.Add(2.0, -3.0, 0.0, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3, c4 float64) {
		for _, c := range []float64{c0, c1, c2, c3, c4} {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return
			}
		}
		p := New(c0, c1, c2, c3, c4)
		roots, ok := p.RootsIn(-100, 100)
		if !ok {
			return // zero polynomial
		}
		for i, r := range roots {
			if math.IsNaN(r) || r < -100-1e-6 || r > 100+1e-6 {
				t.Fatalf("root %g outside window for %v", r, p)
			}
			if i > 0 && roots[i] <= roots[i-1] {
				t.Fatalf("roots not strictly ascending: %v", roots)
			}
			v, abs := p.evalWithAbs(r)
			// The residual must be explained by evaluation noise (the
			// Horner magnitude budget) plus an absolute floor scaled to
			// the coefficients (covers r at the very bottom of the
			// value range, e.g. roots at 0).
			tol := 1e-6*abs + 1e-10*p.coeffScale()
			if math.Abs(v) > tol {
				t.Fatalf("reported root %g has residual %g (tol %g) for %v", r, v, tol, p)
			}
		}
	})
}
