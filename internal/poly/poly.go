// Package poly implements univariate real polynomials with hand-rolled
// real-root isolation, the numeric core of the plane-sweep evaluation
// technique of Mokhtar, Su and Ibarra (PODS 2002).
//
// The sweep needs three primitives from polynomials:
//
//   - evaluation (ordering curves along the sweep line),
//   - the first real root of a difference curve after a given time
//     (the next intersection of two adjacent g-distance curves), and
//   - the sign of a polynomial immediately before/after one of its roots
//     (deciding whether an intersection is a crossing or a tangency).
//
// Root isolation uses square-free decomposition followed by Sturm
// sequences and bisection, with Newton polishing. Degrees in this system
// are small (g-distances of piecewise-linear trajectories are piecewise
// quadratic; composed time terms raise the degree modestly), but the code
// is written to stay robust through degree ~16.
package poly

import (
	"fmt"
	"math"
	"strings"
)

// Poly is a polynomial in one variable; Poly[i] is the coefficient of t^i.
// The zero polynomial is represented by an empty (or all-zero) slice.
// Poly values are immutable by convention: operations return fresh slices.
type Poly []float64

// relEps is the relative tolerance below which a coefficient is considered
// zero when computing effective degrees during arithmetic and Sturm
// sequences. It is deliberately loose compared to machine epsilon because
// cancellation in curve differences leaves ~1e-16-scale dust.
const relEps = 1e-12

// New builds a polynomial from coefficients in ascending-degree order:
// New(c0, c1, c2) is c0 + c1*t + c2*t^2.
func New(coeffs ...float64) Poly {
	p := make(Poly, len(coeffs))
	copy(p, coeffs)
	return p.trim()
}

// Constant returns the constant polynomial c.
func Constant(c float64) Poly {
	if c == 0 { //modlint:allow floatcmp -- exact fast path: representation choice, same value either way
		return Poly{}
	}
	return Poly{c}
}

// Linear returns b + a*t.
func Linear(a, b float64) Poly { return New(b, a) }

// X returns the identity polynomial t.
func X() Poly { return Poly{0, 1} }

// FromRoots returns the monic polynomial with the given roots.
func FromRoots(roots ...float64) Poly {
	p := Poly{1}
	for _, r := range roots {
		p = p.Mul(Poly{-r, 1})
	}
	return p
}

// trim removes trailing coefficients that are negligible relative to the
// largest coefficient magnitude, returning the canonical representation.
func (p Poly) trim() Poly {
	max := 0.0
	for _, c := range p {
		if a := math.Abs(c); a > max {
			max = a
		}
	}
	if max == 0 { //modlint:allow floatcmp -- inf-norm is exactly 0 iff every coefficient is exactly 0
		return Poly{}
	}
	cut := max * relEps
	n := len(p)
	for n > 0 && math.Abs(p[n-1]) <= cut {
		n--
	}
	q := p[:n]
	// Flush sub-threshold interior dust to exact zeros so that later
	// operations (notably GCD and Sturm remainders) see clean input.
	out := make(Poly, n)
	for i, c := range q {
		if math.Abs(c) <= cut {
			out[i] = 0
		} else {
			out[i] = c
		}
	}
	return out
}

// trimInPlace is trim without the fresh allocation: the same inf-norm
// cut, trailing-coefficient strip and interior dust flush, applied to
// p's own storage. The returned slice aliases p. Values produced are
// bit-identical to trim's.
func (p Poly) trimInPlace() Poly {
	max := 0.0
	for _, c := range p {
		if a := math.Abs(c); a > max {
			max = a
		}
	}
	if max == 0 { //modlint:allow floatcmp -- inf-norm is exactly 0 iff every coefficient is exactly 0
		return p[:0]
	}
	cut := max * relEps
	n := len(p)
	for n > 0 && math.Abs(p[n-1]) <= cut {
		n--
	}
	q := p[:n]
	for i, c := range q {
		if math.Abs(c) <= cut {
			q[i] = 0
		}
	}
	return q
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p) == 0 }

// Lead returns the leading coefficient, or 0 for the zero polynomial.
func (p Poly) Lead() float64 {
	if len(p) == 0 {
		return 0
	}
	return p[len(p)-1]
}

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Eval evaluates p at t using Horner's rule.
func (p Poly) Eval(t float64) float64 {
	v := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		v = v*t + p[i]
	}
	return v
}

// EvalWithDeriv evaluates p and its first derivative at t in one pass.
func (p Poly) EvalWithDeriv(t float64) (v, dv float64) {
	for i := len(p) - 1; i >= 0; i-- {
		dv = dv*t + v
		v = v*t + p[i]
	}
	return v, dv
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	r := make(Poly, n)
	for i := range r {
		if i < len(p) {
			r[i] += p[i]
		}
		if i < len(q) {
			r[i] += q[i]
		}
	}
	return r.trim()
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	r := make(Poly, n)
	for i := range r {
		if i < len(p) {
			r[i] += p[i]
		}
		if i < len(q) {
			r[i] -= q[i]
		}
	}
	return r.trim()
}

// SubInto computes p - q into dst's storage, growing it only when its
// capacity is too small, and returns the canonical (trimmed) result.
// The value is identical to p.Sub(q) bit for bit — trimming flushes any
// surviving signed zeros to +0, so storage reuse cannot leak a -0 that
// Sub's fresh allocation would not produce. The sweep's hot path uses
// this to recycle difference-polynomial storage across reschedules.
func SubInto(dst, p, q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	if cap(dst) < n {
		dst = make(Poly, n)
	}
	r := dst[:n]
	for i := range r {
		var c float64
		if i < len(p) {
			c = p[i]
		}
		if i < len(q) {
			c -= q[i]
		}
		r[i] = c
	}
	return r.trimInPlace()
}

// Neg returns -p.
func (p Poly) Neg() Poly {
	r := make(Poly, len(p))
	for i, c := range p {
		r[i] = -c
	}
	return r
}

// Scale returns c*p.
func (p Poly) Scale(c float64) Poly {
	if c == 0 { //modlint:allow floatcmp -- exact fast path: 0*p is the zero polynomial either way
		return Poly{}
	}
	r := make(Poly, len(p))
	for i, x := range p {
		r[i] = c * x
	}
	return r.trim()
}

// Mul returns p*q.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Poly{}
	}
	r := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 { //modlint:allow floatcmp -- exact fast path over trim-flushed zeros; skipping changes nothing
			continue
		}
		for j, b := range q {
			r[i+j] += a * b
		}
	}
	return r.trim()
}

// Derivative returns dp/dt.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return Poly{}
	}
	r := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		r[i-1] = float64(i) * p[i]
	}
	return r.trim()
}

// Compose returns p(q(t)).
func (p Poly) Compose(q Poly) Poly {
	r := Poly{}
	for i := len(p) - 1; i >= 0; i-- {
		r = r.Mul(q).Add(Constant(p[i]))
	}
	return r
}

// Shift returns p(t+c), the Taylor shift of p by c.
func (p Poly) Shift(c float64) Poly {
	if c == 0 { //modlint:allow floatcmp -- exact fast path: shift by exact 0 is the identity
		return p.Clone()
	}
	return p.Compose(Poly{c, 1})
}

// Div returns the quotient and remainder of p divided by q, so that
// p = quo*q + rem with deg(rem) < deg(q). Division by the zero polynomial
// panics: it indicates a bug in the caller, never bad data.
func (p Poly) Div(q Poly) (quo, rem Poly) {
	if q.IsZero() {
		panic("poly: division by zero polynomial")
	}
	rem = p.Clone()
	dq := q.Degree()
	lead := q[dq]
	if rem.Degree() < dq {
		return Poly{}, rem
	}
	quo = make(Poly, rem.Degree()-dq+1)
	for rem.Degree() >= dq {
		dr := rem.Degree()
		c := rem[dr] / lead
		quo[dr-dq] = c
		for i := 0; i <= dq; i++ {
			rem[dr-dq+i] -= c * q[i]
		}
		// Force the cancelled leading term to an exact zero, then
		// re-trim so the loop terminates.
		rem[dr] = 0
		rem = rem.trim()
		if rem.IsZero() {
			break
		}
	}
	return quo.trim(), rem
}

// Monic returns p scaled to leading coefficient 1 (zero stays zero).
func (p Poly) Monic() Poly {
	if p.IsZero() {
		return Poly{}
	}
	return p.Scale(1 / p.Lead())
}

// normalizeInf scales p so that its largest coefficient magnitude is 1.
// Sturm-sequence remainders shrink geometrically; renormalizing keeps the
// tolerance tests meaningful across the sequence.
func (p Poly) normalizeInf() Poly {
	max := 0.0
	for _, c := range p {
		if a := math.Abs(c); a > max {
			max = a
		}
	}
	if max == 0 { //modlint:allow floatcmp -- inf-norm is exactly 0 iff every coefficient is exactly 0
		return Poly{}
	}
	return p.Scale(1 / max)
}

// gcdEps is the residual threshold (relative to inf-norm-1 operands)
// below which a Euclidean remainder counts as zero. Without this cut,
// 1e-16-scale remainder dust would be renormalized back up to magnitude 1
// and a genuine common divisor would be missed. It sits near machine
// precision: a looser cut makes close-but-separable root clusters (p and
// p' with roots ~1e-4 apart) masquerade as multiple roots, and SquareFree
// would then replace the cluster by a single bogus root.
const gcdEps = 1e-12

// infNorm returns the largest coefficient magnitude.
func (p Poly) infNorm() float64 {
	max := 0.0
	for _, c := range p {
		if a := math.Abs(c); a > max {
			max = a
		}
	}
	return max
}

// GCD returns a (monic) greatest common divisor of p and q computed by the
// Euclidean algorithm with renormalization. With floating-point
// coefficients the result is a numerical GCD: a nontrivial candidate is
// accepted only if it verifiably divides both (normalized) inputs —
// remainder dust can otherwise masquerade as a common factor and, through
// SquareFree, silently replace a polynomial by a non-factor.
func GCD(p, q Poly) Poly {
	a, b := p.normalizeInf(), q.normalizeInf()
	if a.Degree() < b.Degree() {
		a, b = b, a
	}
	if b.IsZero() {
		if a.IsZero() {
			return Poly{}
		}
		return a.Monic()
	}
	a0, b0 := a, b
	for {
		_, r := a.Div(b)
		if r.infNorm() <= gcdEps {
			g := b.Monic()
			if g.Degree() >= 1 && (!divides(g, a0) || !divides(g, b0)) {
				return Poly{1}
			}
			return g
		}
		a, b = b, r.normalizeInf()
	}
}

// divides reports whether g divides p to within a tight relative residual
// (p is expected inf-norm-normalized).
func divides(g, p Poly) bool {
	if g.Degree() < 1 {
		return true
	}
	_, rem := p.Div(g)
	return rem.infNorm() <= 1e-7*math.Max(1, p.infNorm())
}

// SquareFree returns the square-free part p/gcd(p, p'): a polynomial with
// the same real roots as p, all simple. The zero polynomial maps to zero.
func (p Poly) SquareFree() Poly {
	if p.Degree() <= 1 {
		return p.Clone()
	}
	g := GCD(p, p.Derivative())
	if g.Degree() <= 0 {
		return p.Clone()
	}
	q, _ := p.Div(g)
	if q.IsZero() {
		// Numerical breakdown; fall back to p itself. Root isolation
		// then relies on bisection robustness.
		return p.Clone()
	}
	return q
}

// ApproxEq reports |a-b| <= eps: the repo-wide epsilon comparison for
// computed floating-point values (curve times, evaluations, coefficients
// that have been through arithmetic). The static analyzer (cmd/modlint,
// floatcmp) rejects exact == / != on floats outside annotated
// provably-exact sites; this helper is the sanctioned alternative.
func ApproxEq(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// ApproxZero reports |x| <= eps; shorthand for ApproxEq(x, 0, eps).
func ApproxZero(x, eps float64) bool {
	return math.Abs(x) <= eps
}

// Equal reports exact coefficient equality after trimming.
func (p Poly) Equal(q Poly) bool {
	a, b := p.trim(), q.trim()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether p and q agree coefficient-wise within tol.
func (p Poly) ApproxEqual(q Poly, tol float64) bool {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		if math.Abs(a-b) > tol {
			return false
		}
	}
	return true
}

// String renders p in conventional descending-degree notation, e.g.
// "2t^2 - t + 3".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	first := true
	for i := len(p) - 1; i >= 0; i-- {
		c := p[i]
		if c == 0 { //modlint:allow floatcmp -- display: suppress exactly-zero terms only
			continue
		}
		switch {
		case first && c < 0:
			b.WriteString("-")
		case !first && c < 0:
			b.WriteString(" - ")
		case !first:
			b.WriteString(" + ")
		}
		a := math.Abs(c)
		switch {
		case i == 0:
			fmt.Fprintf(&b, "%g", a)
		case a == 1 && i == 1: //modlint:allow floatcmp -- display: drop unit coefficient only when exactly 1
			b.WriteString("t")
		case a == 1: //modlint:allow floatcmp -- display: drop unit coefficient only when exactly 1
			fmt.Fprintf(&b, "t^%d", i)
		case i == 1:
			fmt.Fprintf(&b, "%gt", a)
		default:
			fmt.Fprintf(&b, "%gt^%d", a, i)
		}
		first = false
	}
	if first {
		return "0"
	}
	return b.String()
}
