package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTrims(t *testing.T) {
	p := New(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("Degree = %d, want 1", p.Degree())
	}
	if !New(0, 0).IsZero() {
		t.Error("all-zero should be zero polynomial")
	}
	if Constant(0).Degree() != -1 {
		t.Error("Constant(0) should be zero polynomial")
	}
}

func TestEvalHorner(t *testing.T) {
	p := New(3, -1, 2) // 3 - t + 2t^2
	if got := p.Eval(2); got != 9 {
		t.Errorf("Eval(2) = %g, want 9", got)
	}
	if got := p.Eval(0); got != 3 {
		t.Errorf("Eval(0) = %g, want 3", got)
	}
	v, dv := p.EvalWithDeriv(2)
	if v != 9 || dv != 7 {
		t.Errorf("EvalWithDeriv(2) = %g,%g want 9,7", v, dv)
	}
}

func TestArithmetic(t *testing.T) {
	p := New(1, 1)  // 1 + t
	q := New(-1, 1) // -1 + t
	if got := p.Add(q); !got.Equal(New(0, 2)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Equal(New(2)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Mul(q); !got.Equal(New(-1, 0, 1)) {
		t.Errorf("Mul = %v", got)
	}
	if got := p.Neg(); !got.Equal(New(-1, -1)) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.Scale(3); !got.Equal(New(3, 3)) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDerivative(t *testing.T) {
	p := New(5, 3, 0, 2) // 5 + 3t + 2t^3
	if got := p.Derivative(); !got.Equal(New(3, 0, 6)) {
		t.Errorf("Derivative = %v", got)
	}
	if !Constant(7).Derivative().IsZero() {
		t.Error("derivative of constant should be zero")
	}
}

func TestCompose(t *testing.T) {
	p := New(0, 0, 1) // t^2
	q := New(1, 1)    // 1 + t
	// p(q) = (1+t)^2 = 1 + 2t + t^2
	if got := p.Compose(q); !got.ApproxEqual(New(1, 2, 1), 1e-12) {
		t.Errorf("Compose = %v", got)
	}
}

func TestShift(t *testing.T) {
	p := New(0, 0, 1) // t^2
	q := p.Shift(3)   // (t+3)^2
	if got := q.Eval(-3); math.Abs(got) > 1e-12 {
		t.Errorf("Shift: q(-3) = %g, want 0", got)
	}
	if !p.Shift(0).Equal(p) {
		t.Error("Shift(0) should be identity")
	}
}

func TestDiv(t *testing.T) {
	// (t^2 - 1) / (t - 1) = t + 1 rem 0
	p := New(-1, 0, 1)
	q := New(-1, 1)
	quo, rem := p.Div(q)
	if !quo.ApproxEqual(New(1, 1), 1e-12) {
		t.Errorf("quo = %v", quo)
	}
	if !rem.IsZero() {
		t.Errorf("rem = %v, want 0", rem)
	}
	// t^3 / (t^2+1): quo=t, rem=-t
	quo, rem = New(0, 0, 0, 1).Div(New(1, 0, 1))
	if !quo.ApproxEqual(New(0, 1), 1e-12) || !rem.ApproxEqual(New(0, -1), 1e-12) {
		t.Errorf("quo=%v rem=%v", quo, rem)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1, 1).Div(Poly{})
}

func TestGCD(t *testing.T) {
	// gcd((t-1)(t-2), (t-1)(t-3)) = t-1
	p := FromRoots(1, 2)
	q := FromRoots(1, 3)
	g := GCD(p, q)
	if g.Degree() != 1 {
		t.Fatalf("GCD degree = %d (%v), want 1", g.Degree(), g)
	}
	if got := g.Eval(1); math.Abs(got) > 1e-9 {
		t.Errorf("GCD(1) = %g, want 0", got)
	}
	// Coprime case.
	g = GCD(FromRoots(1), FromRoots(2))
	if g.Degree() != 0 {
		t.Errorf("coprime GCD degree = %d (%v), want 0", g.Degree(), g)
	}
}

func TestSquareFree(t *testing.T) {
	// (t-2)^3 (t+1) -> roots {2, -1} each simple
	p := FromRoots(2, 2, 2, -1)
	sf := p.SquareFree()
	if sf.Degree() != 2 {
		t.Fatalf("SquareFree degree = %d (%v), want 2", sf.Degree(), sf)
	}
	for _, r := range []float64{2, -1} {
		if got := sf.Eval(r); math.Abs(got) > 1e-8 {
			t.Errorf("sf(%g) = %g, want 0", r, got)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		p    Poly
		want string
	}{
		{Poly{}, "0"},
		{New(3), "3"},
		{New(0, -1, 2), "2t^2 - t"},
		{New(-3, 1), "t - 3"},
		{New(0, 0, 1), "t^2"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", []float64(c.p), got, c.want)
		}
	}
}

func TestQuadraticRoots(t *testing.T) {
	rs := quadraticRoots(1, -3, 2) // (t-1)(t-2)
	if len(rs) != 2 || math.Abs(rs[0]-1) > 1e-12 || math.Abs(rs[1]-2) > 1e-12 {
		t.Errorf("roots = %v", rs)
	}
	if rs := quadraticRoots(1, 0, 1); len(rs) != 0 {
		t.Errorf("t^2+1 roots = %v", rs)
	}
	rs = quadraticRoots(1, -2, 1) // (t-1)^2
	if len(rs) != 1 || math.Abs(rs[0]-1) > 1e-12 {
		t.Errorf("double root = %v", rs)
	}
	// Catastrophic-cancellation regime: large b.
	rs = quadraticRoots(1, -1e8, 1)
	if len(rs) != 2 {
		t.Fatalf("roots = %v", rs)
	}
	if math.Abs(rs[0]-1e-8) > 1e-14 {
		t.Errorf("small root = %g, want 1e-8", rs[0])
	}
}

func TestRootsInLinear(t *testing.T) {
	p := New(-6, 2) // 2t - 6
	rs, ok := p.RootsIn(0, 10)
	if !ok || len(rs) != 1 || math.Abs(rs[0]-3) > 1e-9 {
		t.Errorf("roots = %v ok=%v", rs, ok)
	}
	rs, _ = p.RootsIn(4, 10)
	if len(rs) != 0 {
		t.Errorf("roots outside window = %v", rs)
	}
}

func TestRootsInCubic(t *testing.T) {
	p := FromRoots(1, 4, 9)
	rs, ok := p.RootsIn(0, 10)
	if !ok || len(rs) != 3 {
		t.Fatalf("roots = %v ok=%v", rs, ok)
	}
	for i, want := range []float64{1, 4, 9} {
		if math.Abs(rs[i]-want) > 1e-7 {
			t.Errorf("root[%d] = %g, want %g", i, rs[i], want)
		}
	}
}

func TestRootsInWindow(t *testing.T) {
	p := FromRoots(-5, 0, 5)
	rs, _ := p.RootsIn(-1, 6)
	if len(rs) != 2 {
		t.Fatalf("roots = %v, want 2 in [-1,6]", rs)
	}
	if math.Abs(rs[0]) > 1e-8 || math.Abs(rs[1]-5) > 1e-8 {
		t.Errorf("roots = %v", rs)
	}
}

func TestRootsWithMultiplicity(t *testing.T) {
	// (t-2)^2 (t-7): distinct roots {2, 7}
	p := FromRoots(2, 2, 7)
	rs, _ := p.RootsIn(0, 10)
	if len(rs) != 2 {
		t.Fatalf("roots = %v, want 2 distinct", rs)
	}
	if math.Abs(rs[0]-2) > 1e-7 || math.Abs(rs[1]-7) > 1e-7 {
		t.Errorf("roots = %v", rs)
	}
}

func TestRootsZeroPoly(t *testing.T) {
	if _, ok := (Poly{}).RootsIn(0, 1); ok {
		t.Error("zero polynomial should report ok=false")
	}
	if _, ok := (Poly{}).Roots(); ok {
		t.Error("zero polynomial Roots should report ok=false")
	}
}

func TestRootAtEndpoint(t *testing.T) {
	p := FromRoots(0, 3, 8)
	rs, _ := p.RootsIn(0, 8)
	if len(rs) != 3 {
		t.Fatalf("roots = %v, want endpoints included", rs)
	}
}

func TestCountRootsIn(t *testing.T) {
	p := FromRoots(1, 2, 3, 4)
	if got := p.CountRootsIn(0, 10); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := p.CountRootsIn(1.5, 3.5); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	if got := p.CountRootsIn(5, 10); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
}

func TestFirstRootAfter(t *testing.T) {
	p := FromRoots(2, 5, 11)
	r, ok := p.FirstRootAfter(0, 100)
	if !ok || math.Abs(r-2) > 1e-7 {
		t.Errorf("first root = %g ok=%v, want 2", r, ok)
	}
	r, ok = p.FirstRootAfter(2, 100)
	if !ok || math.Abs(r-5) > 1e-7 {
		t.Errorf("first root after 2 = %g ok=%v, want 5 (strictness)", r, ok)
	}
	if _, ok := p.FirstRootAfter(11, 100); ok {
		t.Error("no root after 11 expected")
	}
	if _, ok := p.FirstRootAfter(0, 1); ok {
		t.Error("no root before hi=1 expected")
	}
}

func TestSignAfterBefore(t *testing.T) {
	// p = (t-3)^2 touches zero at 3 from above: sign before/after both +1.
	p := FromRoots(3, 3)
	if s := p.SignAfter(3); s != 1 {
		t.Errorf("SignAfter tangent = %d, want 1", s)
	}
	if s := p.SignBefore(3); s != 1 {
		t.Errorf("SignBefore tangent = %d, want 1", s)
	}
	// q = t - 3 crosses: before -1, after +1.
	q := New(-3, 1)
	if s := q.SignAfter(3); s != 1 {
		t.Errorf("SignAfter cross = %d", s)
	}
	if s := q.SignBefore(3); s != -1 {
		t.Errorf("SignBefore cross = %d", s)
	}
	// cubic crossing with zero derivative: (t-1)^3.
	c := FromRoots(1, 1, 1)
	if s := c.SignAfter(1); s != 1 {
		t.Errorf("cubic SignAfter = %d", s)
	}
	if s := c.SignBefore(1); s != -1 {
		t.Errorf("cubic SignBefore = %d", s)
	}
	if s := (Poly{}).SignAfter(0); s != 0 {
		t.Errorf("zero poly SignAfter = %d", s)
	}
}

func TestSignAt(t *testing.T) {
	p := New(-4, 0, 1) // t^2 - 4
	if p.SignAt(3) != 1 || p.SignAt(0) != -1 || p.SignAt(2) != 0 {
		t.Errorf("SignAt wrong: %d %d %d", p.SignAt(3), p.SignAt(0), p.SignAt(2))
	}
}

func TestRootBound(t *testing.T) {
	p := FromRoots(1, -17, 3)
	b := p.RootBound()
	if b < 17 {
		t.Errorf("RootBound = %g too small", b)
	}
}

// Property: for random root sets, RootsIn recovers them.
func TestRootRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		roots := make([]float64, n)
		for i := range roots {
			roots[i] = math.Round(rng.Float64()*2000-1000) / 10 // spaced on 0.1 grid
		}
		// Deduplicate to keep roots distinct and separated.
		seen := map[float64]bool{}
		var uniq []float64
		for _, r := range roots {
			if !seen[r] {
				seen[r] = true
				uniq = append(uniq, r)
			}
		}
		p := FromRoots(uniq...)
		got, ok := p.RootsIn(-200, 200)
		if !ok {
			t.Fatalf("trial %d: unexpected zero poly", trial)
		}
		if len(got) != len(uniq) {
			t.Fatalf("trial %d: got %d roots %v, want %d (roots %v)", trial, len(got), got, len(uniq), uniq)
		}
		for _, r := range got {
			best := math.Inf(1)
			for _, w := range uniq {
				if d := math.Abs(r - w); d < best {
					best = d
				}
			}
			if best > 1e-6 {
				t.Fatalf("trial %d: spurious root %g (true roots %v)", trial, r, uniq)
			}
		}
	}
}

// Property: Eval distributes over Add and Mul.
func TestEvalHomomorphism(t *testing.T) {
	f := func(a0, a1, a2, b0, b1, x float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 100)
		}
		p := New(clamp(a0), clamp(a1), clamp(a2))
		q := New(clamp(b0), clamp(b1))
		xx := clamp(x)
		sum := p.Add(q).Eval(xx)
		prod := p.Mul(q).Eval(xx)
		scale := math.Max(1, math.Abs(p.Eval(xx))+math.Abs(q.Eval(xx)))
		okSum := math.Abs(sum-(p.Eval(xx)+q.Eval(xx))) < 1e-8*scale
		okProd := math.Abs(prod-p.Eval(xx)*q.Eval(xx)) < 1e-6*scale*scale
		return okSum && okProd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Div is exact: p = quo*q + rem.
func TestDivIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randPoly(rng, 6)
		q := randPoly(rng, 3)
		if q.IsZero() {
			continue
		}
		// Well-conditioned divisor: a near-zero leading coefficient
		// makes the quotient explode and the identity check degrades
		// to catastrophic cancellation, which is not what this test
		// is about.
		q = q.Monic()
		quo, rem := p.Div(q)
		recon := quo.Mul(q).Add(rem)
		// The identity holds to roundoff relative to the intermediate
		// magnitudes (|quo|*|q| can dwarf |p| when q's root is far out).
		scale := math.Max(1, math.Max(p.coeffScale(), quo.coeffScale()*q.coeffScale()))
		if !recon.ApproxEqual(p, 1e-9*scale) {
			t.Fatalf("trial %d: p=%v q=%v quo=%v rem=%v recon=%v", trial, p, q, quo, rem, recon)
		}
		if !rem.IsZero() && rem.Degree() >= q.Degree() {
			t.Fatalf("trial %d: rem degree %d >= divisor degree %d", trial, rem.Degree(), q.Degree())
		}
	}
}

func randPoly(rng *rand.Rand, maxDeg int) Poly {
	n := rng.Intn(maxDeg + 1)
	c := make(Poly, n+1)
	for i := range c {
		c[i] = rng.NormFloat64() * 10
	}
	return c.trim()
}

func BenchmarkEvalDeg2(b *testing.B) {
	p := New(1, -2, 3)
	for i := 0; i < b.N; i++ {
		_ = p.Eval(float64(i % 100))
	}
}

func BenchmarkQuadraticRoots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = quadraticRoots(1, -3, 2)
	}
}

func BenchmarkSturmRootsDeg6(b *testing.B) {
	p := FromRoots(1, 2, 3, 4, 5, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = p.RootsIn(0, 10)
	}
}
