package poly

import (
	"math"
	"sort"
)

// RootTol is the absolute tolerance to which roots are refined. Root
// separation in the sweep workloads is orders of magnitude above this.
const RootTol = 1e-10

// maxBisect bounds bisection iterations per root; 200 halvings reduce any
// bracketing interval below 1e-45 of its width, far past RootTol.
const maxBisect = 200

// Sign classifies x against zero with an absolute tolerance scaled to the
// polynomial context in which it is used.
func signOf(x, tol float64) int {
	switch {
	case x > tol:
		return 1
	case x < -tol:
		return -1
	default:
		return 0
	}
}

// coeffScale returns the largest coefficient magnitude, used to scale
// zero-tolerances.
func (p Poly) coeffScale() float64 { return p.infNorm() }

// evalWithAbs evaluates p at t by Horner's rule, and in the same pass
// evaluates sum_i |c_i| |t|^i, the magnitude budget that bounds the
// floating-point error of the evaluation.
func (p Poly) evalWithAbs(t float64) (v, abs float64) {
	at := math.Abs(t)
	for i := len(p) - 1; i >= 0; i-- {
		v = v*t + p[i]
		abs = abs*at + math.Abs(p[i])
	}
	return v, abs
}

// signEps is the relative evaluation tolerance for SignAt. It sits three
// orders of magnitude above the Horner rounding bound (~deg * 2^-52) to
// absorb coefficient dust introduced upstream by curve arithmetic.
const signEps = 1e-13

// SignAt returns the sign of p(t) (-1, 0, +1), treating values within the
// Horner evaluation error bound of zero as zero.
func (p Poly) SignAt(t float64) int {
	if p.IsZero() {
		return 0
	}
	v, abs := p.evalWithAbs(t)
	return signOf(v, signEps*abs)
}

// maxStackCoeffs bounds the coefficient count for which the one-sided
// sign cascades run allocation-free on a stack buffer. Sweep workloads
// are piecewise quadratic (composed time terms raise the degree
// modestly); longer polynomials fall back to the allocating loop.
const maxStackCoeffs = 12

// derivTrimInPlace replaces buf's coefficients with those of the
// polynomial's derivative, canonicalized exactly as Derivative (which
// trims), and returns the shortened slice aliasing buf.
func derivTrimInPlace(buf Poly) Poly {
	if len(buf) <= 1 {
		return buf[:0]
	}
	for i := 1; i < len(buf); i++ {
		buf[i-1] = float64(i) * buf[i]
	}
	return buf[:len(buf)-1].trimInPlace()
}

// SignAfter returns the sign of p on an interval (t, t+delta) for all
// sufficiently small delta > 0. It is the first nonzero sign in the
// derivative cascade p(t), p'(t), p”(t), ...; all derivatives zero means
// p is the zero polynomial (sign 0).
//
// This is the crossing-vs-tangency decision procedure of the sweep: it is
// exact up to the SignAt tolerance and involves no epsilon stepping. For
// the low degrees that dominate sweep workloads the cascade runs on a
// stack buffer with zero allocations.
func (p Poly) SignAfter(t float64) int {
	if len(p) <= maxStackCoeffs {
		var arr [maxStackCoeffs]float64
		buf := Poly(arr[:len(p)])
		copy(buf, p)
		for len(buf) > 0 {
			if s := buf.SignAt(t); s != 0 {
				return s
			}
			buf = derivTrimInPlace(buf)
		}
		return 0
	}
	q := p
	for !q.IsZero() {
		if s := q.SignAt(t); s != 0 {
			return s
		}
		q = q.Derivative()
	}
	return 0
}

// SignBefore returns the sign of p on (t-delta, t) for all sufficiently
// small delta > 0: the first nonzero of p(t), -p'(t), p”(t), -p”'(t)...
func (p Poly) SignBefore(t float64) int {
	if len(p) <= maxStackCoeffs {
		var arr [maxStackCoeffs]float64
		buf := Poly(arr[:len(p)])
		copy(buf, p)
		flip := 1
		for len(buf) > 0 {
			if s := buf.SignAt(t); s != 0 {
				return s * flip
			}
			buf = derivTrimInPlace(buf)
			flip = -flip
		}
		return 0
	}
	q := p
	flip := 1
	for !q.IsZero() {
		if s := q.SignAt(t); s != 0 {
			return s * flip
		}
		q = q.Derivative()
		flip = -flip
	}
	return 0
}

// RootBound returns the Cauchy bound on the magnitude of all real roots:
// 1 + max_i |a_i / a_n|. The zero and constant polynomials return 0.
func (p Poly) RootBound() float64 {
	if p.Degree() < 1 {
		return 0
	}
	lead := math.Abs(p.Lead())
	max := 0.0
	for _, c := range p[:len(p)-1] {
		if a := math.Abs(c); a > max {
			max = a
		}
	}
	return 1 + max/lead
}

// sturmSeq builds the Sturm sequence of p: p0 = p, p1 = p',
// p_{i+1} = -rem(p_{i-1}, p_i), stopping at a (near-)zero remainder.
// The input should be square-free for exact counts; on non-square-free
// input the sequence still terminates and counts distinct roots of the
// square-free part in well-conditioned cases.
func sturmSeq(p Poly) []Poly {
	seq := []Poly{p.normalizeInf()}
	d := p.Derivative().normalizeInf()
	if d.IsZero() {
		return seq
	}
	seq = append(seq, d)
	for {
		n := len(seq)
		_, rem := seq[n-2].Div(seq[n-1])
		rem = rem.Neg().normalizeInf()
		if rem.IsZero() {
			return seq
		}
		seq = append(seq, rem)
		if len(seq) > len(p)+2 {
			// Defensive: numerically degenerate input; stop rather
			// than loop. Counting falls back to bisection scanning.
			return seq
		}
	}
}

// signChanges counts sign alternations of the Sturm sequence at x,
// skipping zeros.
func signChanges(seq []Poly, x float64) int {
	changes, last := 0, 0
	for _, q := range seq {
		s := q.SignAt(x)
		if s == 0 {
			continue
		}
		if last != 0 && s != last {
			changes++
		}
		last = s
	}
	return changes
}

// signChangesAtInf counts sign alternations as x -> +inf (dir > 0) or
// x -> -inf (dir < 0), using leading-term signs.
func signChangesAtInf(seq []Poly, dir int) int {
	changes, last := 0, 0
	for _, q := range seq {
		if q.IsZero() {
			continue
		}
		s := 1
		if q.Lead() < 0 {
			s = -1
		}
		if dir < 0 && q.Degree()%2 == 1 {
			s = -s
		}
		if last != 0 && s != last {
			changes++
		}
		last = s
	}
	return changes
}

// CountRootsIn returns the number of distinct real roots of p in the
// half-open interval (a, b]. p must not be the zero polynomial.
func (p Poly) CountRootsIn(a, b float64) int {
	sf := p.SquareFree()
	if sf.Degree() < 1 {
		return 0
	}
	seq := sturmSeq(sf)
	return signChanges(seq, a) - signChanges(seq, b)
}

// newton polishes x within [lo, hi]; it never leaves the bracket.
func newton(p Poly, x, lo, hi float64) float64 {
	for i := 0; i < 8; i++ {
		v, dv := p.EvalWithDeriv(x)
		if dv == 0 { //modlint:allow floatcmp -- exact zero-divisor guard; tiny dv is caught by the bracket check below
			break
		}
		nx := x - v/dv
		if nx < lo || nx > hi || math.IsNaN(nx) {
			break
		}
		if math.Abs(nx-x) <= RootTol*math.Max(1, math.Abs(x)) {
			return nx
		}
		x = nx
	}
	return x
}

// RootsIn returns the distinct real roots of p in the closed interval
// [a, b], in ascending order. An identically-zero p returns ok=false
// (every point is a root); callers in the sweep treat that case
// separately (curves identical on an interval).
func (p Poly) RootsIn(a, b float64) (roots []float64, ok bool) {
	if p.IsZero() {
		return nil, false
	}
	if p.Degree() == 0 {
		return nil, true
	}
	if a > b {
		return nil, true
	}
	// Fast paths for the degrees that dominate sweep workloads.
	if p.Degree() <= 2 {
		return lowDegreeRootsIn(p, a, b), true
	}
	// Critical-point decomposition for higher degrees: between
	// consecutive roots of p' the polynomial is monotone, so every real
	// root is either a sign change inside a monotone segment (found by
	// bisection, which cannot lie) or a tangency exactly at a critical
	// point (p evaluates to zero there within the Horner noise budget).
	// Unlike Sturm sequences over numerical GCDs, this degrades
	// gracefully on clustered roots and badly-scaled coefficients.
	bound := p.RootBound()
	lo := math.Max(a, -bound-1)
	hi := math.Min(b, bound+1)
	if !(lo <= hi) {
		return nil, true
	}
	crit, _ := p.Derivative().RootsIn(lo, hi)
	pts := make([]float64, 0, len(crit)+2)
	pts = append(pts, lo)
	for _, c := range crit {
		if c > pts[len(pts)-1] {
			pts = append(pts, c)
		}
	}
	if hi > pts[len(pts)-1] {
		pts = append(pts, hi)
	}
	var cand []float64
	signs := make([]int, len(pts))
	for i, x := range pts {
		signs[i] = p.SignAt(x)
		if signs[i] == 0 {
			cand = append(cand, x)
		}
	}
	for i := 0; i+1 < len(pts); i++ {
		if signs[i] != 0 && signs[i+1] != 0 && signs[i] != signs[i+1] {
			cand = append(cand, monotoneBisect(p, pts[i], pts[i+1], signs[i]))
		}
	}
	sort.Float64s(cand)
	var out []float64
	for _, r := range cand {
		if r < a-RootTol || r > b+RootTol {
			continue
		}
		r = math.Min(math.Max(r, a), b)
		if len(out) == 0 || r-out[len(out)-1] > RootTol {
			out = append(out, r)
		}
	}
	return out, true
}

// monotoneBisect finds the unique root of p inside (lo, hi), where p is
// monotone with sign slo at lo and the opposite sign at hi.
func monotoneBisect(p Poly, lo, hi float64, slo int) float64 {
	for i := 0; i < maxBisect && hi-lo > RootTol*math.Max(1, math.Abs(lo)); i++ {
		mid := 0.5 * (lo + hi)
		if mid <= lo || mid >= hi {
			break
		}
		sm := signOf(p.Eval(mid), 0)
		switch {
		case sm == 0:
			return newton(p, mid, lo, hi)
		case sm == slo:
			lo = mid
		default:
			hi = mid
		}
	}
	return newton(p, 0.5*(lo+hi), lo, hi)
}

// lowDegreeRootsIn solves degree <= 2 in closed form.
func lowDegreeRootsIn(p Poly, a, b float64) []float64 {
	var rs []float64
	switch p.Degree() {
	case 1:
		rs = []float64{-p[0] / p[1]}
	case 2:
		rs = quadraticRoots(p[2], p[1], p[0])
	default:
		return nil
	}
	var out []float64
	for _, r := range rs {
		if r >= a-RootTol && r <= b+RootTol {
			r = math.Min(math.Max(r, a), b)
			if len(out) == 0 || r-out[len(out)-1] > RootTol {
				out = append(out, r)
			}
		}
	}
	return out
}

// quadraticRoots returns the real roots of a*x^2 + b*x + c in ascending
// order using the numerically-stable quadratic formula. A double root is
// returned once.
func quadraticRoots(a, b, c float64) []float64 {
	r1, r2, n := quadRoots(a, b, c)
	switch n {
	case 0:
		return nil
	case 1:
		return []float64{r1}
	default:
		return []float64{r1, r2}
	}
}

// quadRoots is the value-returning core of quadraticRoots: the roots of
// a*x^2 + b*x + c in ascending order (n of them, 0..2) with no slice
// allocation, for the sweep's zero-alloc scheduling path.
func quadRoots(a, b, c float64) (r1, r2 float64, n int) {
	//modlint:allow floatcmp -- degree dispatch on pre-trimmed coefficients is exact
	if a == 0 {
		if b == 0 { //modlint:allow floatcmp -- degree dispatch on pre-trimmed coefficients is exact
			return 0, 0, 0
		}
		return -c / b, 0, 1
	}
	disc := b*b - 4*a*c
	// Relative tolerance for the discriminant: treat near-tangency as
	// tangency so that the sweep sees one (even-multiplicity) root
	// rather than two roots separated by numerical noise.
	tol := relEps * (b*b + 4*math.Abs(a*c))
	if disc < -tol {
		return 0, 0, 0
	}
	if disc <= tol {
		return -b / (2 * a), 0, 1
	}
	s := math.Sqrt(disc)
	var q float64
	if b >= 0 {
		q = -0.5 * (b + s)
	} else {
		q = -0.5 * (b - s)
	}
	r1, r2 = q/a, c/q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return r1, r2, 2
}

// FirstRootAfter returns the smallest real root of p that is strictly
// greater than t (by more than RootTol), searching up to hi. The boolean
// reports whether such a root exists. An identically-zero polynomial
// reports none: "always equal" is not an event.
func (p Poly) FirstRootAfter(t, hi float64) (float64, bool) {
	if p.IsZero() || p.Degree() < 1 {
		return 0, false
	}
	if hi <= t {
		return 0, false
	}
	if p.Degree() <= 2 {
		// Closed-form fast path, allocation-free: the same candidate
		// roots, [t-RootTol, hi+RootTol] filter, clamp and RootTol dedup
		// as RootsIn -> lowDegreeRootsIn, scanned in ascending order for
		// the first root strictly past t.
		var r1, r2 float64
		var n int
		if p.Degree() == 1 {
			r1, n = -p[0]/p[1], 1
		} else {
			r1, r2, n = quadRoots(p[2], p[1], p[0])
		}
		prev, havePrev := 0.0, false
		for i := 0; i < n; i++ {
			r := r1
			if i == 1 {
				r = r2
			}
			if !(r >= t-RootTol && r <= hi+RootTol) {
				continue
			}
			r = math.Min(math.Max(r, t), hi)
			if havePrev && !(r-prev > RootTol) {
				continue
			}
			if r > t+RootTol {
				return r, true
			}
			prev, havePrev = r, true
		}
		return 0, false
	}
	roots, ok := p.RootsIn(t, hi)
	if !ok {
		return 0, false
	}
	for _, r := range roots {
		if r > t+RootTol {
			return r, true
		}
	}
	return 0, false
}

// Roots returns all distinct real roots of p in ascending order (ok=false
// for the zero polynomial).
func (p Poly) Roots() ([]float64, bool) {
	if p.IsZero() {
		return nil, false
	}
	bound := p.RootBound()
	return p.RootsIn(-bound-1, bound+1)
}

// SignChangesAtInf exposes the asymptotic sign-change count of p's Sturm
// sequence for diagnostic use (dir=+1 for +inf, -1 for -inf).
func (p Poly) SignChangesAtInf(dir int) int {
	sf := p.SquareFree()
	if sf.Degree() < 1 {
		return 0
	}
	return signChangesAtInf(sturmSeq(sf), dir)
}
