package query

// Uncertainty-aware queries: the query layer's entry points into the
// bead model (internal/bead). An exact trajectory in the MOD is the
// record of what the database was TOLD; the bead layer treats its
// knots as samples and asks what the object could have done between
// them, bounded by its declared maximum speed (mod.KindBound). These
// wrappers adapt a database view to bead tracks and phrase the two
// uncertainty queries in MOD vocabulary.

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/bead"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

// UncertainSource is any point-in-time view that can hand out an
// object's recorded trajectory together with its declared speed bound:
// a *mod.DB or a *mod.Snap.
type UncertainSource interface {
	Dim() int
	Objects() []mod.OID
	Traj(o mod.OID) (trajectory.Trajectory, error)
	SpeedBound(o mod.OID) (float64, bool)
}

// ErrNoSpeedBound is the sentinel behind NoSpeedBoundError; match it
// with errors.Is.
var ErrNoSpeedBound = errors.New("query: no declared speed bound and no default was given")

// NoSpeedBoundError reports every object an uncertainty query could not
// reason about: no declared speed bound (mod.KindBound) and no
// non-negative default supplied. Queries pre-validate the whole object
// set in one cheap pass, so the error names ALL offending objects — the
// caller can declare bounds for the full list instead of discovering
// them one failed query at a time.
type NoSpeedBoundError struct {
	Objects []mod.OID
}

func (e *NoSpeedBoundError) Error() string {
	names := make([]string, len(e.Objects))
	for i, o := range e.Objects {
		names[i] = fmt.Sprintf("%d", o)
	}
	return fmt.Sprintf("query: %d object(s) have no declared speed bound and no default was given: %s",
		len(e.Objects), strings.Join(names, ", "))
}

// Unwrap lets errors.Is(err, ErrNoSpeedBound) match.
func (e *NoSpeedBoundError) Unwrap() error { return ErrNoSpeedBound }

// needsDeclarations reports whether defaultVmax fails to cover
// undeclared objects (negative = declarations required, NaN = nonsense).
func needsDeclarations(defaultVmax float64) bool {
	return defaultVmax < 0 || math.IsNaN(defaultVmax)
}

// ValidateSpeedBounds checks in one pass that every object of the view
// has a usable speed bound, returning a NoSpeedBoundError naming every
// object that lacks one. With a usable default nothing can be missing
// and the pass is skipped.
func ValidateSpeedBounds(src UncertainSource, defaultVmax float64) error {
	if !needsDeclarations(defaultVmax) {
		return nil
	}
	var missing []mod.OID
	for _, o := range src.Objects() {
		if _, ok := src.SpeedBound(o); !ok {
			missing = append(missing, o)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	return &NoSpeedBoundError{Objects: missing}
}

// TrackOf builds the bead track of one object. defaultVmax is used for
// objects without a declared bound; pass a negative value to require a
// declaration (objects without one then fail, by name, rather than
// silently getting infinite or magic uncertainty).
func TrackOf(src UncertainSource, o mod.OID, defaultVmax float64) (*bead.Track, error) {
	tr, err := src.Traj(o)
	if err != nil {
		return nil, err
	}
	vmax, ok := src.SpeedBound(o)
	if !ok {
		if needsDeclarations(defaultVmax) {
			return nil, &NoSpeedBoundError{Objects: []mod.OID{o}}
		}
		vmax = defaultVmax
	}
	return bead.FromTrajectory(tr, vmax)
}

// Alibi decides whether objects o1 and o2 could have met during
// [lo, hi], given their recorded motion and speed bounds. The answer is
// exact (closed-form bead intersection, not sampling): Possible=false
// is a proof of alibi.
func Alibi(src UncertainSource, o1, o2 mod.OID, lo, hi, defaultVmax float64) (bead.Result, error) {
	if o1 == o2 {
		return bead.Result{}, fmt.Errorf("query: alibi of object %d against itself", o1)
	}
	t1, err := TrackOf(src, o1, defaultVmax)
	if err != nil {
		return bead.Result{}, err
	}
	t2, err := TrackOf(src, o2, defaultVmax)
	if err != nil {
		return bead.Result{}, err
	}
	return bead.Alibi(t1, t2, lo, hi)
}

// PossiblyWithin answers "which objects could have been within dist of
// the point q at some instant in [lo, hi]?" across every object of the
// view, as an AnswerSet of per-object time intervals. It is the
// uncertainty-aware counterpart of the exact threshold query: the exact
// Within asks about recorded positions, this asks about every movement
// consistent with the record and the speed bounds.
func PossiblyWithin(src UncertainSource, q geom.Vec, dist, lo, hi, defaultVmax float64) (*AnswerSet, error) {
	if q.Dim() != src.Dim() {
		return nil, fmt.Errorf("query: point dim %d, database dim %d", q.Dim(), src.Dim())
	}
	if err := ValidateSpeedBounds(src, defaultVmax); err != nil {
		return nil, err
	}
	ans := NewAnswerSet()
	for _, o := range src.Objects() {
		tr, err := TrackOf(src, o, defaultVmax)
		if err != nil {
			return nil, err
		}
		ivs, err := tr.PossiblyWithin(q, dist, lo, hi)
		if err != nil {
			return nil, err
		}
		for _, iv := range ivs {
			if iv.Hi > iv.Lo {
				ans.Enter(o, iv.Lo)
				ans.Leave(o, iv.Hi)
			} else {
				ans.Point(o, iv.Lo)
			}
		}
	}
	ans.Finish(hi)
	return ans, nil
}
