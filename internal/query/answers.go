// Package query implements the paper's FO(f) generalized-distance query
// language (Section 4) on top of the plane-sweep engine (internal/core).
//
// A query (y, t, I, phi) is evaluated by maintaining, across the interval
// I, the set Q[D]_t of objects satisfying phi at each instant. Lemma 8
// says Q[D]_t changes only when the precedence relation of instantiated
// real terms changes, i.e. at sweep events; the evaluators in this package
// subscribe to the sweeper's support-change stream and assemble, per
// object, the set of time intervals during which it satisfies the query.
// The three answer modes of the paper fall out of that representation:
//
//   - snapshot answer Q^s: pairs (o, t) — interval membership,
//   - accumulative answer Q-exists: objects with a non-empty interval set,
//   - persevering answer Q-forall: objects whose intervals cover I.
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/mod"
)

// Interval is a closed time interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.Lo && t <= iv.Hi }

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%g,%g]", iv.Lo, iv.Hi) }

// AnswerSet accumulates, per object, the closed time intervals during
// which the object belongs to the query answer. It is the finite
// representation of the (possibly infinite) snapshot answer Q^s.
type AnswerSet struct {
	closed map[mod.OID][]Interval
	open   map[mod.OID]float64 // entry time of currently-open membership
	endT   float64             // time at which the set was finalized
	done   bool
}

// NewAnswerSet returns an empty answer set.
func NewAnswerSet() *AnswerSet {
	return &AnswerSet{
		closed: make(map[mod.OID][]Interval),
		open:   make(map[mod.OID]float64),
	}
}

// Enter records that o satisfies the query from time t (idempotent while
// already a member).
func (r *AnswerSet) Enter(o mod.OID, t float64) {
	if _, ok := r.open[o]; !ok {
		r.open[o] = t
	}
}

// Leave records that o stops satisfying the query at time t. The interval
// is closed on both ends: the instant of an order exchange belongs to both
// the leaving and the entering object, matching the paper's >=-based
// precedence (ties are answers). A membership that opens and closes at
// the same instant is discarded — transient churn while a batch of
// same-instant changes settles (e.g. the initial seeding) is not an
// answer; genuine instant-ties are recorded explicitly via Point by the
// evaluators' equality handling.
func (r *AnswerSet) Leave(o mod.OID, t float64) {
	start, ok := r.open[o]
	if !ok {
		return
	}
	delete(r.open, o)
	if t <= start {
		return
	}
	r.appendInterval(o, Interval{Lo: start, Hi: t})
}

// Point records a degenerate instant membership [t, t]: the object ties
// with the answer boundary exactly at t (a tangency or exchange instant).
func (r *AnswerSet) Point(o mod.OID, t float64) {
	if _, ok := r.open[o]; ok {
		return // already a member; the instant is inside an interval
	}
	r.appendInterval(o, Interval{Lo: t, Hi: t})
}

// Member reports whether o is currently in the answer (open interval).
func (r *AnswerSet) Member(o mod.OID) bool {
	_, ok := r.open[o]
	return ok
}

// Finish closes all open intervals at the end of the evaluation window.
func (r *AnswerSet) Finish(t float64) {
	for o, start := range r.open {
		r.appendInterval(o, Interval{Lo: start, Hi: t})
		delete(r.open, o)
	}
	r.endT = t
	r.done = true
}

func (r *AnswerSet) appendInterval(o mod.OID, iv Interval) {
	ivs := r.closed[o]
	// Merge with the previous interval when contiguous (an object that
	// leaves and re-enters at the same instant never really left).
	if n := len(ivs); n > 0 && iv.Lo <= ivs[n-1].Hi+1e-12 {
		if iv.Hi > ivs[n-1].Hi {
			ivs[n-1].Hi = iv.Hi
		}
		r.closed[o] = ivs
		return
	}
	r.closed[o] = append(ivs, iv)
}

// Intervals returns the recorded intervals for o (nil if none).
func (r *AnswerSet) Intervals(o mod.OID) []Interval {
	ivs := r.closed[o]
	out := make([]Interval, len(ivs))
	copy(out, ivs)
	return out
}

// Objects returns all objects with any membership, ascending.
func (r *AnswerSet) Objects() []mod.OID {
	var out []mod.OID
	for o := range r.closed {
		out = append(out, o)
	}
	for o := range r.open {
		if _, ok := r.closed[o]; !ok {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// At returns the snapshot answer at time t: all objects whose intervals
// contain t (plus currently-open memberships that began at or before t).
func (r *AnswerSet) At(t float64) []mod.OID {
	var out []mod.OID
	for o, ivs := range r.closed {
		for _, iv := range ivs {
			if iv.Contains(t) {
				out = append(out, o)
				break
			}
		}
	}
	for o, start := range r.open {
		if start <= t {
			already := false
			for _, x := range out {
				if x == o {
					already = true
					break
				}
			}
			if !already {
				out = append(out, o)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Existential returns the paper's accumulative answer: objects satisfying
// the query at some instant.
func (r *AnswerSet) Existential() []mod.OID { return r.Objects() }

// Universal returns the paper's persevering answer over [lo, hi]: objects
// whose recorded intervals cover the whole window (tolerating the
// measure-zero gaps of exchange instants).
func (r *AnswerSet) Universal(lo, hi float64) []mod.OID {
	var out []mod.OID
	const tol = 1e-9
	for _, o := range r.Objects() {
		cover := lo
		ivs := r.closed[o]
		if start, ok := r.open[o]; ok {
			ivs = append(append([]Interval{}, ivs...), Interval{Lo: start, Hi: math.Inf(1)})
		}
		for _, iv := range ivs {
			if iv.Lo > cover+tol {
				break
			}
			if iv.Hi > cover {
				cover = iv.Hi
			}
		}
		if cover >= hi-tol {
			out = append(out, o)
		}
	}
	return out
}

// MergeDisjoint combines finalized answer sets over pairwise-disjoint
// object sets — the coordinator step of a sharded evaluation, where each
// shard answers for its own objects. Intervals are copied; the result is
// finalized at the latest of the parts' end times. Panics if an object
// appears in more than one part (the sharding invariant is violated) or
// if a part still has open memberships (not finalized).
func MergeDisjoint(sets ...*AnswerSet) *AnswerSet {
	out := NewAnswerSet()
	for _, s := range sets {
		if s == nil {
			continue
		}
		if len(s.open) > 0 {
			panic("query: MergeDisjoint on a non-finalized answer set")
		}
		for o, ivs := range s.closed {
			if _, dup := out.closed[o]; dup {
				panic(fmt.Sprintf("query: MergeDisjoint: %s in more than one part", o))
			}
			cp := make([]Interval, len(ivs))
			copy(cp, ivs)
			out.closed[o] = cp
		}
		if s.done {
			out.done = true
			if s.endT > out.endT {
				out.endT = s.endT
			}
		}
	}
	return out
}

// String renders the answer set as "o1: [a,b] [c,d]; o2: ..." for tests
// and the CLI.
func (r *AnswerSet) String() string {
	var b strings.Builder
	for i, o := range r.Objects() {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s:", o)
		for _, iv := range r.closed[o] {
			fmt.Fprintf(&b, " %s", iv)
		}
		if start, ok := r.open[o]; ok {
			fmt.Fprintf(&b, " [%g,...)", start)
		}
	}
	return b.String()
}
