package query

// BeadIndex is the uncertainty layer's broad phase: a gen-stamped cache
// of bead tracks plus a space-time R-tree over their chain-bead
// bounding boxes, so PossiblyWithin collects candidates by box
// intersection instead of running the kernel against every chain, and
// Alibi reuses cached tracks instead of rebuilding them per query.
//
// Consistency model: the index is synchronized lazily against the
// *mod.Snap a query runs on. The fast path compares the snap's epoch to
// the last-synced epoch; on mismatch a diff pass walks the snapshot and
// rebuilds exactly the entries whose per-object generation stamp
// (mod.Snap.Gen) changed — an entry built at gen g is valid for every
// snapshot that still reports gen g for its object. Entries whose track
// was built from the query's defaultVmax additionally remember the
// default they used, so changing the default invalidates them and
// nothing else. The update listener only sets a dirty bit; all real
// work happens on the query path, against an immutable snapshot, so
// cached answers are exactly what the scan path would compute on the
// same snap.
//
// Candidate collection is conservative by construction: every chain
// bead's box is inflated by bead.Pad on the track side, the query ball
// adds bead.Pad on its side, and the two pads together dominate the
// kernel's boundary tolerance (see bead.SegBox). Live caps are
// unbounded in space-time and would poison R-tree arithmetic, so they
// live in a side list tested in closed form (bead.Cap.Reaches). A
// missed candidate is therefore a proof the kernel would have returned
// no intervals — the index answers are bit-identical to the scan's.

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/bead"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/rtree"
)

// beadEntry is one object's cached track and its registrations in the
// broad-phase structures.
type beadEntry struct {
	gen      uint64
	declared bool   // speed bound came from the object, not the default
	vmaxBits uint64 // bits of the vmax the track was built with
	track    *bead.Track
	err      error // track construction failed; surfaced on query
	boxIDs   []uint64
	capIdx   int // index into caps, -1 if none
}

// capRef ties a live cap in the side list back to its owner.
type capRef struct {
	o mod.OID
	c bead.Cap
}

// BeadStats describes the work one broad-phase query did, for metrics.
type BeadStats struct {
	Population int // objects in the snapshot
	Candidates int // objects the broad phase passed to the kernel path
	Windows    int // bead windows examined across all candidates
	Pruned     int // windows rejected by the cheap bounding-ball test
	Kernel     int // windows that reached the closed-form kernel
}

// BeadIndex caches bead tracks and indexes their chain boxes for one
// database (one shard). Safe for concurrent use; the mutex covers
// synchronization and candidate collection, while kernel evaluation
// runs outside it on immutable tracks.
type BeadIndex struct {
	mu    sync.Mutex
	dim   int
	built bool
	dirty bool // an update was applied since the last sync

	syncedEpoch uint64
	defBits     uint64 // bits of the defaultVmax entries were built with
	undeclared  int    // entries whose track depends on the default
	errs        int    // entries whose track construction failed

	entries map[mod.OID]*beadEntry
	tree    *rtree.RectTree // dim spatial axes + one time axis
	owner   map[uint64]mod.OID
	nextBox uint64
	dead    int // tombstoned boxes still physically in the tree
	caps    []capRef
}

// NewBeadIndex returns an index bound to db and registers an update
// listener that marks it dirty. The listener does no other work: the
// index is rebuilt incrementally on the next query, against that
// query's snapshot.
func NewBeadIndex(db *mod.DB) *BeadIndex {
	ix := &BeadIndex{
		dim:     db.Dim(),
		entries: make(map[mod.OID]*beadEntry),
		tree:    rtree.NewRectTree(db.Dim()+1, rtree.DefaultFanout),
		owner:   make(map[uint64]mod.OID),
	}
	db.OnUpdate(func(mod.Update) {
		ix.mu.Lock()
		ix.dirty = true
		ix.mu.Unlock()
	})
	return ix
}

// maxAbsVec returns the largest coordinate magnitude of v.
func maxAbsVec(v geom.Vec) float64 {
	m := 0.0
	for _, c := range v {
		if a := math.Abs(c); a > m {
			m = a
		}
	}
	return m
}

// boxRect lifts a spatial SegBox into the tree's space-time geometry:
// axes 0..dim-1 are space, axis dim is time.
func (ix *BeadIndex) boxRect(b bead.SegBox) rtree.Rect {
	lo := make(geom.Vec, ix.dim+1)
	hi := make(geom.Vec, ix.dim+1)
	copy(lo, b.Min)
	copy(hi, b.Max)
	lo[ix.dim] = b.T0
	hi[ix.dim] = b.T1
	return rtree.Rect{Min: lo, Max: hi}
}

// sync brings the index up to date with snap. Called with mu held.
func (ix *BeadIndex) sync(snap *mod.Snap, defaultVmax float64) {
	defBits := math.Float64bits(defaultVmax)
	if ix.built && !ix.dirty && ix.syncedEpoch == snap.Epoch() &&
		(ix.undeclared == 0 || ix.defBits == defBits) {
		return
	}
	// Post-snapshot updates set dirty again through the listener and
	// bump the epoch, so clearing it against this snap is safe.
	ix.dirty = false
	if !ix.built {
		ix.bulkBuild(snap, defaultVmax)
	} else {
		ix.diffSync(snap, defaultVmax)
	}
	ix.built = true
	ix.syncedEpoch = snap.Epoch()
	ix.defBits = defBits
}

// bulkBuild constructs every entry and STR-packs the box tree in one
// pass — the first-sync path, far cheaper than n incremental inserts.
func (ix *BeadIndex) bulkBuild(snap *mod.Snap, defaultVmax float64) {
	var items []rtree.RectItem
	for o := range snap.Trajectories() {
		items = ix.addEntry(snap, o, defaultVmax, items)
	}
	t, err := rtree.BulkRects(items, ix.dim+1, rtree.DefaultFanout)
	if err != nil {
		// Geometry is produced by this file with the right dimension; a
		// failure means corruption, and degrading to a partial index
		// would silently drop answers.
		panic("query: bead index bulk build: " + err.Error())
	}
	ix.tree = t
	ix.dead = 0
}

// diffSync retires and rebuilds exactly the entries whose object
// changed since they were built (gen mismatch), appeared, disappeared,
// or depended on a default speed bound that differs from this query's.
func (ix *BeadIndex) diffSync(snap *mod.Snap, defaultVmax float64) {
	defBits := math.Float64bits(defaultVmax)
	objs := snap.Trajectories()
	for o := range objs {
		e := ix.entries[o]
		if e != nil && e.gen == snap.Gen(o) && (e.declared || e.vmaxBits == defBits) {
			continue
		}
		if e != nil {
			ix.retire(o, e)
		}
		_ = ix.insertEntry(snap, o, defaultVmax)
	}
	for o, e := range ix.entries {
		if _, ok := objs[o]; !ok {
			ix.retire(o, e)
		}
	}
	ix.maybeRebuild()
}

// addEntry caches o's track and appends its chain boxes to items,
// registering ownership; used by bulkBuild (and, via insertEntry, by
// diffSync, which inserts the returned boxes instead).
func (ix *BeadIndex) addEntry(snap *mod.Snap, o mod.OID, defaultVmax float64, items []rtree.RectItem) []rtree.RectItem {
	e := &beadEntry{gen: snap.Gen(o), capIdx: -1}
	vmax, ok := snap.SpeedBound(o)
	e.declared = ok
	if !ok {
		if needsDeclarations(defaultVmax) {
			e.vmaxBits = math.Float64bits(defaultVmax)
			e.err = &NoSpeedBoundError{Objects: []mod.OID{o}}
			ix.errs++
			ix.undeclared++
			ix.entries[o] = e
			return items
		}
		vmax = defaultVmax
		ix.undeclared++
	}
	e.vmaxBits = math.Float64bits(vmax)
	tr, err := snap.Traj(o)
	if err == nil {
		e.track, err = bead.FromTrajectory(tr, vmax)
	}
	if err != nil {
		// Keep the entry so queries surface the same error the scan path
		// would; silently skipping would turn it into a false negative.
		e.err = err
		ix.errs++
		ix.entries[o] = e
		return items
	}
	for _, b := range e.track.ChainBoxes() {
		ix.nextBox++
		ix.owner[ix.nextBox] = o
		e.boxIDs = append(e.boxIDs, ix.nextBox)
		items = append(items, rtree.RectItem{ID: ix.nextBox, R: ix.boxRect(b)})
	}
	if c, ok := e.track.Cap(); ok {
		e.capIdx = len(ix.caps)
		ix.caps = append(ix.caps, capRef{o: o, c: c})
	}
	ix.entries[o] = e
	return items
}

// insertEntry is addEntry for the incremental path: the new boxes go
// straight into the live tree.
func (ix *BeadIndex) insertEntry(snap *mod.Snap, o mod.OID, defaultVmax float64) *beadEntry {
	items := ix.addEntry(snap, o, defaultVmax, nil)
	for _, it := range items {
		if err := ix.tree.Insert(it); err != nil {
			panic("query: bead index insert: " + err.Error())
		}
	}
	return ix.entries[o]
}

// retire drops o's entry: box ownership is severed (the boxes become
// tombstones, compacted by maybeRebuild), the cap is swap-removed, and
// the bookkeeping counters are rolled back. Called with mu held.
func (ix *BeadIndex) retire(o mod.OID, e *beadEntry) {
	for _, id := range e.boxIDs {
		delete(ix.owner, id)
		ix.dead++
	}
	if e.capIdx >= 0 {
		last := len(ix.caps) - 1
		moved := ix.caps[last]
		ix.caps[e.capIdx] = moved
		ix.caps = ix.caps[:last]
		if e.capIdx != last {
			ix.entries[moved.o].capIdx = e.capIdx
		}
	}
	if !e.declared {
		ix.undeclared--
	}
	if e.err != nil {
		ix.errs--
	}
	delete(ix.entries, o)
}

// maybeRebuild compacts tombstoned boxes away with a fresh STR pack
// once they outnumber the live ones. Called with mu held.
func (ix *BeadIndex) maybeRebuild() {
	if ix.dead <= 64 || ix.dead <= len(ix.owner) {
		return
	}
	items := make([]rtree.RectItem, 0, len(ix.owner))
	for _, e := range ix.entries {
		if e.track == nil {
			continue
		}
		for i, b := range e.track.ChainBoxes() {
			items = append(items, rtree.RectItem{ID: e.boxIDs[i], R: ix.boxRect(b)})
		}
	}
	t, err := rtree.BulkRects(items, ix.dim+1, rtree.DefaultFanout)
	if err != nil {
		panic("query: bead index rebuild: " + err.Error())
	}
	ix.tree = t
	ix.dead = 0
}

// candidates returns, ascending and deduplicated, every object whose
// bead chain or cap could intersect the ball (q, dist) during [lo, hi].
// Called with mu held; allocates a fresh slice because concurrent
// queries share the index.
func (ix *BeadIndex) candidates(q geom.Vec, dist, lo, hi float64) []mod.OID {
	pad := dist + bead.Pad(maxAbsVec(q)+dist)
	rlo := make(geom.Vec, ix.dim+1)
	rhi := make(geom.Vec, ix.dim+1)
	for d := 0; d < ix.dim; d++ {
		rlo[d] = q[d] - pad
		rhi[d] = q[d] + pad
	}
	rlo[ix.dim] = lo
	rhi[ix.dim] = hi
	var out []mod.OID
	ix.tree.VisitRect(rtree.Rect{Min: rlo, Max: rhi}, func(it rtree.RectItem) bool {
		if o, ok := ix.owner[it.ID]; ok {
			out = append(out, o)
		}
		return true
	})
	for _, cr := range ix.caps {
		if cr.c.Reaches(q, dist, lo, hi) {
			out = append(out, cr.o)
		}
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// firstErr returns the lowest-OID cached construction error — the same
// error, for the same object, the ascending scan would hit first.
// Called with mu held.
func (ix *BeadIndex) firstErr(snap *mod.Snap) error {
	for _, o := range snap.Objects() {
		if e := ix.entries[o]; e != nil && e.err != nil {
			return e.err
		}
	}
	return nil
}

// PossiblyWithin answers the possibly-within query through the broad
// phase: identical results to query.PossiblyWithin on the same snap,
// plus work statistics. Candidates are collected under the index lock;
// the kernel then runs lock-free over the immutable cached tracks, in
// ascending OID order like the scan.
func (ix *BeadIndex) PossiblyWithin(snap *mod.Snap, q geom.Vec, dist, lo, hi, defaultVmax float64) (*AnswerSet, BeadStats, error) {
	var st BeadStats
	if q.Dim() != snap.Dim() {
		return nil, st, fmt.Errorf("query: point dim %d, database dim %d", q.Dim(), snap.Dim())
	}
	if err := ValidateSpeedBounds(snap, defaultVmax); err != nil {
		return nil, st, err
	}
	ix.mu.Lock()
	ix.sync(snap, defaultVmax)
	if ix.errs > 0 {
		err := ix.firstErr(snap)
		ix.mu.Unlock()
		return nil, st, err
	}
	cands := ix.candidates(q, dist, lo, hi)
	tracks := make([]*bead.Track, len(cands))
	for i, o := range cands {
		tracks[i] = ix.entries[o].track
	}
	st.Population = snap.Len()
	ix.mu.Unlock()

	st.Candidates = len(cands)
	ans := NewAnswerSet()
	for i, o := range cands {
		ivs, pw, err := tracks[i].PossiblyWithinStats(q, dist, lo, hi)
		if err != nil {
			return nil, st, err
		}
		st.Windows += pw.Windows
		st.Pruned += pw.Pruned
		st.Kernel += pw.Kernel
		for _, iv := range ivs {
			if iv.Hi > iv.Lo {
				ans.Enter(o, iv.Lo)
				ans.Leave(o, iv.Hi)
			} else {
				ans.Point(o, iv.Lo)
			}
		}
	}
	ans.Finish(hi)
	return ans, st, nil
}

// TrackOf returns o's cached bead track as of snap, building or
// refreshing the cache as needed — the alibi query's fast path. Objects
// the index has no valid entry for fall back to the uncached TrackOf,
// which produces the scan path's exact error.
func (ix *BeadIndex) TrackOf(snap *mod.Snap, o mod.OID, defaultVmax float64) (*bead.Track, error) {
	ix.mu.Lock()
	ix.sync(snap, defaultVmax)
	e := ix.entries[o]
	ix.mu.Unlock()
	if e != nil {
		if e.err != nil {
			return nil, e.err
		}
		return e.track, nil
	}
	return TrackOf(snap, o, defaultVmax)
}
