package query

// Differential tests for the uncertainty broad phase: on random update
// histories, BeadIndex.PossiblyWithin must return bit-identical answer
// sets to the scan-path PossiblyWithin on the same snapshot — across
// object churn (so the gen-diff sync retires and rebuilds entries),
// default-speed-bound changes (so default-dependent entries are
// invalidated), and live caps (windows past the last sample). The index
// is deliberately created BEFORE the history is applied, so its update
// listener and incremental path are exercised, not just bulk build.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
)

// answersEqual compares two answer sets exactly (Float64bits, not
// tolerance): the broad phase promises the same kernel runs on the same
// windows, so outputs must be identical, not merely close.
func answersEqual(a, b *AnswerSet) string {
	ao, bo := a.Objects(), b.Objects()
	if fmt.Sprint(ao) != fmt.Sprint(bo) {
		return fmt.Sprintf("objects %v vs %v", ao, bo)
	}
	for _, o := range ao {
		ai, bi := a.Intervals(o), b.Intervals(o)
		if len(ai) != len(bi) {
			return fmt.Sprintf("object %d: %d vs %d intervals", o, len(ai), len(bi))
		}
		for k := range ai {
			if math.Float64bits(ai[k].Lo) != math.Float64bits(bi[k].Lo) ||
				math.Float64bits(ai[k].Hi) != math.Float64bits(bi[k].Hi) {
				return fmt.Sprintf("object %d interval %d: %v vs %v", o, k, ai[k], bi[k])
			}
		}
	}
	return ""
}

func TestBeadIndexMatchesScan(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(4200 + trial)))
		db := mod.NewDB(2, -1)
		ix := NewBeadIndex(db)
		tau := 0.0
		live := []mod.OID{}
		next := mod.OID(1)
		defaultVmax := 2.0

		randVec := func(scale float64) geom.Vec {
			return geom.Of(scale*(rng.Float64()-0.5), scale*(rng.Float64()-0.5))
		}
		spawn := func() {
			tau += 0.1 + rng.Float64()
			o := next
			next++
			must(t, db.Apply(mod.New(o, tau, randVec(2), randVec(60))))
			if rng.Intn(2) == 0 {
				tau += 0.01
				must(t, db.Apply(mod.Bound(o, tau, 0.5+3*rng.Float64())))
			}
			live = append(live, o)
		}
		step := func() {
			if len(live) == 0 || rng.Intn(4) == 0 {
				spawn()
				return
			}
			i := rng.Intn(len(live))
			o := live[i]
			tau += 0.1 + rng.Float64()
			switch rng.Intn(5) {
			case 0:
				must(t, db.Apply(mod.Terminate(o, tau)))
				live = append(live[:i], live[i+1:]...)
			case 1:
				must(t, db.Apply(mod.Bound(o, tau, 0.5+3*rng.Float64())))
			default:
				must(t, db.Apply(mod.ChDir(o, tau, randVec(2))))
			}
		}
		query := func() {
			snap := db.EpochSnapshot()
			q := randVec(80)
			dist := 1 + 8*rng.Float64()
			lo := tau * rng.Float64()
			hi := lo + 15*rng.Float64() // often past tau: exercises caps
			want, err := PossiblyWithin(snap, q, dist, lo, hi, defaultVmax)
			if err != nil {
				t.Fatalf("trial %d: scan: %v", trial, err)
			}
			got, st, err := ix.PossiblyWithin(snap, q, dist, lo, hi, defaultVmax)
			if err != nil {
				t.Fatalf("trial %d: index: %v", trial, err)
			}
			if diff := answersEqual(want, got); diff != "" {
				t.Fatalf("trial %d: index diverges from scan: %s\nscan  %v\nindex %v",
					trial, diff, want, got)
			}
			if st.Population != snap.Len() || st.Candidates > st.Population {
				t.Fatalf("trial %d: stats %+v inconsistent with population %d",
					trial, st, snap.Len())
			}
		}

		for i := 0; i < 6; i++ {
			spawn()
		}
		for round := 0; round < 12; round++ {
			for i := 0; i < 5; i++ {
				step()
			}
			if round%4 == 3 {
				// Changing the default invalidates exactly the entries that
				// were built from it.
				defaultVmax = 1 + 3*rng.Float64()
			}
			query()
			query()
		}
	}
}

// TestBeadIndexRebuildCompaction churns one population hard enough to
// cross the tombstone-compaction threshold and re-verifies equivalence
// afterwards.
func TestBeadIndexRebuildCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := mod.NewDB(2, -1)
	ix := NewBeadIndex(db)
	tau := 0.0
	const n = 30
	for o := mod.OID(1); o <= n; o++ {
		tau += 0.2
		must(t, db.Apply(mod.New(o, tau, geom.Of(rng.Float64(), rng.Float64()), geom.Of(10*rng.Float64(), 10*rng.Float64()))))
		tau += 0.01
		must(t, db.Apply(mod.Bound(o, tau, 1)))
	}
	check := func() {
		snap := db.EpochSnapshot()
		q := geom.Of(5, 5)
		want, err := PossiblyWithin(snap, q, 4, 0, tau+5, 1)
		must(t, err)
		got, _, err := ix.PossiblyWithin(snap, q, 4, 0, tau+5, 1)
		must(t, err)
		if diff := answersEqual(want, got); diff != "" {
			t.Fatalf("diverged after churn: %s", diff)
		}
	}
	check()
	// Every ChDir retires the object's entry (every chain box becomes a
	// tombstone) and rebuilds it; 20 rounds × 30 objects crosses the
	// dead > 64 compaction threshold many times over.
	for round := 0; round < 20; round++ {
		for o := mod.OID(1); o <= n; o++ {
			tau += 0.05
			must(t, db.Apply(mod.ChDir(o, tau, geom.Of(rng.Float64()-0.5, rng.Float64()-0.5))))
		}
		check()
	}
}

func TestValidateSpeedBoundsNamesAllMissing(t *testing.T) {
	db := mod.NewDB(2, -1)
	must(t, db.Apply(mod.New(1, 1, geom.Of(0, 0), geom.Of(0, 0))))
	must(t, db.Apply(mod.New(2, 2, geom.Of(0, 0), geom.Of(1, 1))))
	must(t, db.Apply(mod.New(3, 3, geom.Of(0, 0), geom.Of(2, 2))))
	must(t, db.Apply(mod.Bound(2, 4, 1)))

	_, err := PossiblyWithin(db, geom.Of(0, 0), 1, 0, 5, -1)
	if err == nil {
		t.Fatal("want error for undeclared bounds, got none")
	}
	if !errors.Is(err, ErrNoSpeedBound) {
		t.Fatalf("errors.Is(err, ErrNoSpeedBound) = false for %v", err)
	}
	var nsb *NoSpeedBoundError
	if !errors.As(err, &nsb) {
		t.Fatalf("errors.As(NoSpeedBoundError) = false for %v", err)
	}
	if fmt.Sprint(nsb.Objects) != fmt.Sprint([]mod.OID{1, 3}) {
		t.Fatalf("missing objects %v, want [1 3]", nsb.Objects)
	}
	if !strings.Contains(err.Error(), "1, 3") {
		t.Fatalf("error text %q does not name both objects", err)
	}

	// The index path fails identically, before touching the tree.
	ix := NewBeadIndex(db)
	_, _, err2 := ix.PossiblyWithin(db.EpochSnapshot(), geom.Of(0, 0), 1, 0, 5, -1)
	if err2 == nil || !errors.Is(err2, ErrNoSpeedBound) {
		t.Fatalf("index path error %v, want NoSpeedBoundError", err2)
	}

	// A usable default repairs both paths.
	if _, err := PossiblyWithin(db, geom.Of(0, 0), 1, 0, 5, 2); err != nil {
		t.Fatalf("scan with default: %v", err)
	}
	if _, _, err := ix.PossiblyWithin(db.EpochSnapshot(), geom.Of(0, 0), 1, 0, 5, 2); err != nil {
		t.Fatalf("index with default: %v", err)
	}

	// Single-object TrackOf keeps the typed error too.
	if _, err := TrackOf(db, 1, -1); !errors.Is(err, ErrNoSpeedBound) {
		t.Fatalf("TrackOf error %v, want NoSpeedBoundError", err)
	}
	if _, err := ix.TrackOf(db.EpochSnapshot(), 1, -1); !errors.Is(err, ErrNoSpeedBound) {
		t.Fatalf("index TrackOf error %v, want NoSpeedBoundError", err)
	}
}

func TestBeadIndexTrackOfMatchesScan(t *testing.T) {
	db := mod.NewDB(2, -1)
	must(t, db.Apply(mod.New(1, 1, geom.Of(1, 0), geom.Of(0, 0))))
	must(t, db.Apply(mod.Bound(1, 2, 3)))
	must(t, db.Apply(mod.ChDir(1, 3, geom.Of(0, 1))))
	ix := NewBeadIndex(db)
	snap := db.EpochSnapshot()

	want, err := TrackOf(snap, 1, -1)
	must(t, err)
	got, err := ix.TrackOf(snap, 1, -1)
	must(t, err)
	if fmt.Sprint(want.Samples()) != fmt.Sprint(got.Samples()) || want.Vmax() != got.Vmax() {
		t.Fatalf("cached track differs:\nscan  %v vmax %g\nindex %v vmax %g",
			want.Samples(), want.Vmax(), got.Samples(), got.Vmax())
	}
	// Unknown objects produce the scan path's not-found error.
	if _, err := ix.TrackOf(snap, 42, -1); !errors.Is(err, mod.ErrNotFound) {
		t.Fatalf("unknown object error %v, want ErrNotFound", err)
	}
}
