package query

import "fmt"

// The paper's taxonomy (Definitions 4 and 5): an answer object is *valid*
// if it stays in the answer under every possible future update sequence;
// a query is past / future / continuing according to whether its answer
// is entirely valid / entirely revocable / mixed. Theorem 2 shows the
// classification is undecidable for arbitrary constraint queries — but
// for FO(f) queries over an interval I the structure is transparent:
// updates are chronological, so everything at or before the database time
// tau is settled and everything after it is prediction. This file exposes
// that decidable special case.

// Class is the paper's query classification.
type Class int

const (
	// Past: the whole interval lies in settled history; every answer is
	// valid (Q(D) = Q^v(D)).
	Past Class = iota
	// Future: the whole interval lies beyond the last update; no answer
	// is valid yet (Q^v(D) = empty).
	Future
	// Continuing: the interval straddles the last update; answers up to
	// tau are valid, the rest are predictions.
	Continuing
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Past:
		return "past"
	case Future:
		return "future"
	case Continuing:
		return "continuing"
	default:
		return "unknown"
	}
}

// Classify places an FO(f) query interval [lo, hi] relative to the
// database's last-update time tau (Definition 5, specialized to
// interval queries where it is decidable).
func Classify(lo, hi, tau float64) (Class, error) {
	if !(lo <= hi) {
		return Past, fmt.Errorf("query: inverted interval [%g,%g]", lo, hi)
	}
	switch {
	case hi <= tau:
		return Past, nil
	case lo > tau:
		return Future, nil
	default:
		return Continuing, nil
	}
}

// ValidAnswer is Definition 4's Q^v restricted to an answer set computed
// over [lo, hi]: the memberships settled at or before tau. Intervals that
// straddle tau are truncated; purely-predicted intervals are dropped.
// The returned set is finished at min(hi, tau).
func ValidAnswer(ans *AnswerSet, lo, hi, tau float64) *AnswerSet {
	out := NewAnswerSet()
	cut := tau
	if hi < cut {
		cut = hi
	}
	for _, o := range ans.Objects() {
		for _, iv := range ans.Intervals(o) {
			if iv.Lo > cut {
				continue
			}
			h := iv.Hi
			if h > cut {
				h = cut
			}
			out.Enter(o, iv.Lo)
			out.Leave(o, h)
			if h == iv.Lo { //modlint:allow floatcmp -- both sides clipped to the same stored bound; a point interval is exact by construction
				out.Point(o, iv.Lo)
			}
		}
	}
	out.Finish(cut)
	return out
}

// PredictedAnswer returns the complement view: memberships that extend
// beyond tau — correct only if no further update intervenes (the paper's
// caution about "mixing true answers with predictions").
func PredictedAnswer(ans *AnswerSet, lo, hi, tau float64) *AnswerSet {
	out := NewAnswerSet()
	if tau >= hi {
		out.Finish(hi)
		return out
	}
	for _, o := range ans.Objects() {
		for _, iv := range ans.Intervals(o) {
			if iv.Hi <= tau {
				continue
			}
			l := iv.Lo
			if l < tau {
				l = tau
			}
			out.Enter(o, l)
			out.Leave(o, iv.Hi)
			if iv.Hi == l { //modlint:allow floatcmp -- both sides clipped to the same stored bound; a point interval is exact by construction
				out.Point(o, l)
			}
		}
	}
	out.Finish(hi)
	return out
}

// SessionAnswerSplit splits a continuing session's current answer into
// valid and predicted parts around the given last-update time.
func SessionAnswerSplit(s *Session, ans *AnswerSet, tau float64) (valid, predicted *AnswerSet) {
	lo, hi := s.E.Window()
	return ValidAnswer(ans, lo, hi, tau), PredictedAnswer(ans, lo, hi, tau)
}
