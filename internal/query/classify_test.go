package query

import (
	"testing"

	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		lo, hi, tau float64
		want        Class
	}{
		{0, 10, 20, Past},
		{0, 10, 10, Past},
		{11, 20, 10, Future},
		{5, 20, 10, Continuing},
		{10, 20, 10, Continuing}, // lo == tau: tau instant is settled
	}
	for _, c := range cases {
		got, err := Classify(c.lo, c.hi, c.tau)
		if err != nil || got != c.want {
			t.Errorf("Classify(%g,%g,%g) = %v,%v want %v", c.lo, c.hi, c.tau, got, err, c.want)
		}
	}
	if _, err := Classify(10, 5, 7); err == nil {
		t.Error("inverted interval accepted")
	}
	for _, c := range []Class{Past, Future, Continuing, Class(9)} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestValidAndPredictedAnswers(t *testing.T) {
	// A continuing 1-NN: window [0, 30], last update at tau = 12.
	db := mod.NewDB(1, -1)
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(1))))
	must(t, db.Load(2, trajectory.Linear(0, geom.Of(-1), geom.Of(20)))) // takes over at t=19.5 -> d=(20-t)^2<1 at t>19
	knn := NewKNN(1)
	if _, err := RunPast(db, gdist.PointSq{Point: geom.Of(0)}, 0, 30, knn); err != nil {
		t.Fatal(err)
	}
	ans := knn.Answer()
	const tau = 12.0
	cls, _ := Classify(0, 30, tau)
	if cls != Continuing {
		t.Fatalf("class = %v", cls)
	}
	valid := ValidAnswer(ans, 0, 30, tau)
	pred := PredictedAnswer(ans, 0, 30, tau)
	// o1's membership [0, 19] splits: [0,12] valid, [12,19] predicted.
	iv := valid.Intervals(1)
	if len(iv) != 1 || iv[0].Lo != 0 || iv[0].Hi != tau {
		t.Errorf("valid o1 = %v", iv)
	}
	if got := valid.Intervals(2); len(got) != 0 {
		t.Errorf("valid o2 = %v, want none (takeover is in the future)", got)
	}
	// o2 dips within distance 1 only during (19, 21), so o1's predicted
	// membership has two stretches: [tau,19] and [21,30].
	pv := pred.Intervals(1)
	if len(pv) != 2 || pv[0].Lo != tau || pv[1].Hi != 30 {
		t.Errorf("predicted o1 = %v", pv)
	}
	if got := pred.Intervals(2); len(got) != 1 {
		t.Errorf("predicted o2 = %v", got)
	}
	// Past query: everything valid, nothing predicted.
	valid = ValidAnswer(ans, 0, 30, 100)
	pred = PredictedAnswer(ans, 0, 30, 100)
	if len(valid.Intervals(2)) != 1 || len(pred.Objects()) != 0 {
		t.Errorf("past split wrong: valid=%v predicted=%v", valid, pred)
	}
}
