package query

import (
	"repro/internal/core"
	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/poly"
	"repro/internal/trajectory"
)

// TrajSource is any point-in-time view of a moving object database
// that can hand the sweep its trajectory set: a *mod.DB (which copies
// the map under its read lock) or a *mod.Snap (an immutable epoch
// snapshot sharing its map lock-free). Query drivers only ever seed
// from the view, so this is the whole surface they need.
type TrajSource interface {
	Trajectories() map[mod.OID]trajectory.Trajectory
}

// RunPast evaluates one or more queries over historical data: the window
// [lo, hi] lies entirely before the database's last-update time, so every
// trajectory (with all its recorded turns) is final and the sweep runs
// start to finish without external updates — Theorem 4's O((m+N) log N)
// regime. Creations and terminations recorded inside the window are
// replayed as insertion/expiry events.
func RunPast(db TrajSource, f gdist.GDistance, lo, hi float64, evs ...Evaluator) (core.Stats, error) {
	return RunPastTerms(db, f, lo, hi, nil, evs...)
}

// RunPastTerms is RunPast with explicit polynomial time terms (the FO(f)
// queries that use f(z, p(t)) for non-identity p).
func RunPastTerms(db TrajSource, f gdist.GDistance, lo, hi float64, terms []poly.Poly, evs ...Evaluator) (core.Stats, error) {
	e, err := NewEngine(EngineConfig{F: f, Lo: lo, Hi: hi, TimeTerms: terms})
	if err != nil {
		return core.Stats{}, err
	}
	for _, ev := range evs {
		if err := e.AddEvaluator(ev); err != nil {
			return core.Stats{}, err
		}
	}
	if err := e.Seed(db.Trajectories()); err != nil {
		return core.Stats{}, err
	}
	if err := e.Finish(); err != nil {
		return core.Stats{}, err
	}
	return e.Sweeper().Stats(), nil
}

// Session is the future/continuing-query driver (Theorem 5): it seeds the
// sweep from the database state at the window start and then ingests
// updates as they are issued, maintaining valid answers eagerly. Between
// updates the application may advance the sweep to "now" at any pace.
type Session struct {
	E *Engine
}

// NewSession seeds a continuing-query session over [lo, hi]. The database
// must not receive updates between the snapshot used here and the first
// Apply call (wire Apply into mod.DB.OnUpdate for a live feed).
func NewSession(db *mod.DB, f gdist.GDistance, lo, hi float64, evs ...Evaluator) (*Session, error) {
	e, err := NewEngine(EngineConfig{F: f, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	for _, ev := range evs {
		if err := e.AddEvaluator(ev); err != nil {
			return nil, err
		}
	}
	if err := e.Seed(db.Trajectories()); err != nil {
		return nil, err
	}
	return &Session{E: e}, nil
}

// Apply ingests one update (chronological).
func (s *Session) Apply(u mod.Update) error { return s.E.ApplyUpdate(u) }

// AdvanceTo processes events up to time t.
func (s *Session) AdvanceTo(t float64) error { return s.E.RunTo(t) }

// Close finalizes the session's evaluators at the window end (bounded
// windows) or the current time.
func (s *Session) Close() error { return s.E.Finish() }

// trajectoryT aliases trajectory.Trajectory for the track session.
type trajectoryT = trajectory.Trajectory
