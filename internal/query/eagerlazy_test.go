package query

import (
	"math/rand"
	"testing"

	"repro/internal/gdist"
	"repro/internal/piecewise"
	"repro/internal/workload"
)

// TestEagerEqualsLazy is the paper's Section 3 dichotomy as a property:
// evaluating a future query eagerly (a Session maintaining the answer as
// updates arrive, Theorem 5) must agree everywhere with the lazy
// alternative (wait until all updates are recorded, then run the whole
// window as a past query, Theorem 4).
func TestEagerEqualsLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 12; trial++ {
		n := 6 + rng.Intn(15)
		base, err := workload.RandomMovers(workload.Config{Seed: int64(trial), N: n, Extent: 300, MaxSpeed: 8})
		if err != nil {
			t.Fatal(err)
		}
		const lo, hi = 0.0, 80.0
		updates, err := workload.Stream(base, workload.StreamConfig{
			Seed: int64(trial) + 100, Count: 20 + rng.Intn(30),
			From: 1, To: hi - 1,
			NewW: 0.2, TerminateW: 0.15, ChDirW: 0.65,
			Extent: 300, MaxSpeed: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		q := workload.QueryTrajectory(workload.Config{Extent: 300}, int64(trial)+200)
		f := gdist.EuclideanSq{Query: q}
		k := 1 + rng.Intn(3)

		// Eager: maintain while updates stream in.
		eager := NewKNN(k)
		sess, err := NewSession(base.Snapshot(), f, lo, hi, eager)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range updates {
			if err := sess.Apply(u); err != nil {
				t.Fatalf("trial %d: apply %v: %v", trial, u, err)
			}
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}

		// Lazy: record everything first, then evaluate as a past query.
		recorded := base.Snapshot()
		if err := recorded.ApplyAll(updates...); err != nil {
			t.Fatal(err)
		}
		lazy := NewKNN(k)
		if _, err := RunPast(recorded, f, lo, hi, lazy); err != nil {
			t.Fatal(err)
		}

		for probe := 0; probe < 60; probe++ {
			tt := lo + (hi-lo)*(float64(probe)+0.37)/60
			a := eager.Answer().At(tt)
			b := lazy.Answer().At(tt)
			if !sameOIDs(a, b) {
				t.Fatalf("trial %d k=%d t=%g: eager %v vs lazy %v", trial, k, tt, a, b)
			}
		}
	}
}

// TestSweepMatchesLowerEnvelope is Example 6's identity as a property:
// the sweep's 1-NN timeline must equal the lower envelope of the
// g-distance curves, computed by an independent divide-and-conquer
// algorithm.
func TestSweepMatchesLowerEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(10)
		db, err := workload.RandomMovers(workload.Config{Seed: int64(trial) + 40, N: n, Extent: 200, MaxSpeed: 6})
		if err != nil {
			t.Fatal(err)
		}
		q := workload.QueryTrajectory(workload.Config{Extent: 200}, int64(trial)+70)
		f := gdist.EuclideanSq{Query: q}
		const lo, hi = 0.0, 40.0

		knn := NewKNN(1)
		if _, err := RunPast(db, f, lo, hi, knn); err != nil {
			t.Fatal(err)
		}

		var curves []piecewise.Labeled
		for o, tr := range db.Trajectories() {
			cf, err := f.Curve(tr, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			curves = append(curves, piecewise.Labeled{ID: uint64(o), F: cf})
		}
		env, err := piecewise.LowerEnvelope(curves, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		// Probe at cell midpoints of the envelope.
		for _, p := range env {
			mid := 0.5 * (p.Start + p.End)
			got := knn.Answer().At(mid)
			if len(got) != 1 || uint64(got[0]) != p.ID {
				t.Fatalf("trial %d t=%g: sweep %v vs envelope o%d", trial, mid, got, p.ID)
			}
		}
	}
}
