package query

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/piecewise"
	"repro/internal/poly"
	"repro/internal/trajectory"
)

// Curve-entry id packing. One curve is registered per (object, time term)
// pair — the paper's treatment of queries with k time terms — plus one
// curve per real constant appearing in the query.
const (
	constBit  = uint64(1) << 63
	termShift = 48
	oidMask   = (uint64(1) << termShift) - 1
)

// packObj builds the sweep id of (object, time-term index).
func packObj(o mod.OID, term int) uint64 {
	return uint64(o)&oidMask | uint64(term)<<termShift
}

// packConst builds the sweep id of constant index i.
func packConst(i int) uint64 { return constBit | uint64(i) }

// IsConstID reports whether a sweep id denotes a constant curve.
func IsConstID(id uint64) bool { return id&constBit != 0 }

// UnpackObj splits a non-constant sweep id into (OID, term index).
func UnpackObj(id uint64) (mod.OID, int) {
	return mod.OID(id & oidMask), int(id >> termShift & 0x7fff)
}

// Evaluator consumes the support-change stream. Implementations maintain
// an AnswerSet incrementally.
type Evaluator interface {
	// Attach is called once when the evaluator is registered; it may
	// register constant curves and must capture the engine reference.
	Attach(e *Engine) error
	// OnChange is invoked for every support change, in time order, after
	// the engine's order already reflects the change.
	OnChange(c core.Change)
	// Finish closes the evaluator's answer at the end of the window.
	Finish(t float64)
}

// EngineConfig configures an evaluation engine.
type EngineConfig struct {
	// F is the generalized distance. Required.
	F gdist.GDistance
	// Lo, Hi delimit the query interval I. Hi may be +Inf (pass
	// math.Inf(1)) only for distances with closed-form curves; Hi == 0
	// also means +Inf.
	Lo, Hi float64
	// TimeTerms lists the polynomial time terms used by the query;
	// empty means the single identity term t.
	TimeTerms []poly.Poly
	// Queue optionally overrides the event-queue implementation.
	Queue eventq.Queue
	// Audit enables internal invariant checking (tests).
	Audit bool
}

// Engine drives the plane sweep for one query interval over a set of
// moving objects: it converts trajectories to g-distance curves, feeds
// updates into the sweeper (the paper's Section 5 update handling), and
// fans the support-change stream out to evaluators.
type Engine struct {
	f       gdist.GDistance
	lo, hi  float64
	terms   []poly.Poly
	sw      *core.Sweeper
	trajs   map[mod.OID]trajectory.Trajectory
	pending []pendingInsert
	evals   []Evaluator
	consts  map[float64]uint64
	nconst  int

	updatesApplied int
}

type pendingInsert struct {
	at float64
	o  mod.OID
}

// Errors returned by the engine.
var (
	ErrBadWindow = errors.New("query: empty or inverted window")
	ErrBadOID    = errors.New("query: OID exceeds 48-bit id space")
)

// NewEngine builds an engine over the window [cfg.Lo, cfg.Hi].
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.F == nil {
		return nil, errors.New("query: nil g-distance")
	}
	hi := cfg.Hi
	if hi == 0 { //modlint:allow floatcmp -- unset-config sentinel: zero horizon means unbounded
		hi = math.Inf(1)
	}
	if !(cfg.Lo < hi) {
		return nil, fmt.Errorf("%w: [%g,%g]", ErrBadWindow, cfg.Lo, hi)
	}
	terms := cfg.TimeTerms
	if len(terms) == 0 {
		terms = []poly.Poly{poly.X()}
	}
	e := &Engine{
		f:      cfg.F,
		lo:     cfg.Lo,
		hi:     hi,
		terms:  terms,
		trajs:  make(map[mod.OID]trajectory.Trajectory),
		consts: make(map[float64]uint64),
	}
	e.sw = core.NewSweeper(core.Config{
		Start:    cfg.Lo,
		Horizon:  hi,
		Queue:    cfg.Queue,
		Audit:    cfg.Audit,
		OnChange: e.fanout,
	})
	return e, nil
}

// fanout relays a support change to every evaluator.
func (e *Engine) fanout(c core.Change) {
	for _, ev := range e.evals {
		ev.OnChange(c)
	}
}

// AddEvaluator registers an evaluator; call before Seed so the evaluator
// sees every change.
func (e *Engine) AddEvaluator(ev Evaluator) error {
	if err := ev.Attach(e); err != nil {
		return err
	}
	e.evals = append(e.evals, ev)
	return nil
}

// Sweeper exposes the underlying sweep (read-only use by evaluators).
func (e *Engine) Sweeper() *core.Sweeper { return e.sw }

// Window returns the query interval.
func (e *Engine) Window() (lo, hi float64) { return e.lo, e.hi }

// GDistance returns the engine's generalized distance.
func (e *Engine) GDistance() gdist.GDistance { return e.f }

// Traj returns the engine's view of an object's trajectory.
func (e *Engine) Traj(o mod.OID) (trajectory.Trajectory, bool) {
	tr, ok := e.trajs[o]
	return tr, ok
}

// NumObjects returns the number of live objects in the sweep (excluding
// constants, counting each object once regardless of time terms).
func (e *Engine) NumObjects() int {
	n := 0
	for o := range e.trajs {
		if e.sw.Contains(packObj(o, 0)) {
			n++
		}
	}
	return n
}

// ConstID registers (idempotently) a constant curve for value c, valid on
// the whole window, and returns its sweep id.
func (e *Engine) ConstID(c float64) (uint64, error) {
	if id, ok := e.consts[c]; ok {
		return id, nil
	}
	id := packConst(e.nconst)
	cf := piecewise.Constant(c, e.lo, e.hi)
	if err := e.sw.AddCurve(id, cf); err != nil {
		return 0, err
	}
	e.nconst++
	e.consts[c] = id
	return id, nil
}

// buildTermCurve constructs the curve of (trajectory, term) covering
// [from, hi] (clipped to the trajectory's lifetime).
func (e *Engine) buildTermCurve(tr trajectory.Trajectory, term int, from float64) (piecewise.Func, error) {
	p := e.terms[term]
	if isIdentity(p) {
		return e.f.Curve(tr, from, e.hi)
	}
	imgLo, imgHi := polyImageRange(p, from, e.hi)
	base, err := e.f.Curve(tr, imgLo, imgHi)
	if err != nil {
		return piecewise.Func{}, err
	}
	return base.Compose(p, from, e.hi)
}

// polyImageRange bounds p([lo,hi]) via endpoint and critical-point values.
func polyImageRange(p poly.Poly, lo, hi float64) (float64, float64) {
	if math.IsInf(hi, 1) {
		// Composed time terms require finite windows; callers with
		// non-identity terms must bound Hi. Guard with a wide window.
		hi = lo + 1e6
	}
	minV := math.Min(p.Eval(lo), p.Eval(hi))
	maxV := math.Max(p.Eval(lo), p.Eval(hi))
	if roots, ok := p.Derivative().RootsIn(lo, hi); ok {
		for _, r := range roots {
			v := p.Eval(r)
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	return minV, maxV
}

// isIdentity reports whether p is the polynomial t.
func isIdentity(p poly.Poly) bool {
	//modlint:allow floatcmp -- canonical form check: the identity is built from exact literals 0 and 1
	return p.Degree() == 1 && p[0] == 0 && p[1] == 1
}

// Seed loads the engine with the trajectories of a MOD snapshot. Objects
// live at the window start are inserted immediately (the initial
// O(N log N) sort of Theorem 5(1)); objects whose trajectories begin
// later in the window are queued and inserted by RunTo at their creation
// times (a past query replays recorded creations as updates). Objects
// whose lifetime misses the window entirely are skipped.
func (e *Engine) Seed(trajs map[mod.OID]trajectory.Trajectory) error {
	type entry struct {
		o  mod.OID
		tr trajectory.Trajectory
	}
	entries := make([]entry, 0, len(trajs))
	for o, tr := range trajs {
		entries = append(entries, entry{o, tr})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].o < entries[j].o })
	for _, en := range entries {
		o, tr := en.o, en.tr
		if uint64(o) > oidMask {
			return fmt.Errorf("%w: %s", ErrBadOID, o)
		}
		if !tr.IsDefined() || tr.End() <= e.lo || tr.Start() >= e.hi {
			continue
		}
		e.trajs[o] = tr
		if tr.Start() <= e.lo {
			if err := e.insertObject(o, tr, e.lo); err != nil {
				return err
			}
		} else {
			e.pending = append(e.pending, pendingInsert{at: tr.Start(), o: o})
		}
	}
	sort.Slice(e.pending, func(i, j int) bool {
		if e.pending[i].at != e.pending[j].at { //modlint:allow floatcmp -- comparator: strict weak ordering needs exact compares
			return e.pending[i].at < e.pending[j].at
		}
		return e.pending[i].o < e.pending[j].o
	})
	return nil
}

// insertObject adds the curves of all time terms for o starting at from.
// On failure, any term curves already inserted are rolled back so the
// sweep never holds a partially-registered object.
func (e *Engine) insertObject(o mod.OID, tr trajectory.Trajectory, from float64) (err error) {
	inserted := make([]uint64, 0, len(e.terms))
	defer func() {
		if err == nil {
			return
		}
		for _, id := range inserted {
			_ = e.sw.RemoveCurve(id)
		}
	}()
	for term := range e.terms {
		cf, berr := e.buildTermCurve(tr, term, from)
		if berr != nil {
			return fmt.Errorf("query: curve for %s term %d: %w", o, term, berr)
		}
		id := packObj(o, term)
		if aerr := e.sw.AddCurve(id, cf); aerr != nil {
			return aerr
		}
		inserted = append(inserted, id)
	}
	return nil
}

// InsertObject registers an object's authoritative trajectory
// mid-window, inserting its curves from time `from` on — the pool-growth
// path of a subscription engine: an object that becomes relevant to a
// maintained query (it moves toward the query region) joins the sweep
// with its full recorded trajectory, so the curves it contributes are
// exactly the ones a fresh evaluation over the whole database would
// build (gdist curves depend only on the trajectory's pieces, not on
// the clip start). The sweep must already be at `from` (call RunTo
// first); objects whose lifetime misses [from, hi] are rejected.
func (e *Engine) InsertObject(o mod.OID, tr trajectory.Trajectory, from float64) error {
	if uint64(o) > oidMask {
		return fmt.Errorf("%w: %s", ErrBadOID, o)
	}
	if from < e.sw.Now() {
		return fmt.Errorf("query: insert at %g before sweep time %g", from, e.sw.Now())
	}
	if !tr.IsDefined() || tr.End() <= from || tr.Start() >= e.hi {
		return fmt.Errorf("query: %s's lifetime misses [%g,%g]", o, from, e.hi)
	}
	if err := e.RunTo(from); err != nil {
		return err
	}
	e.trajs[o] = tr
	return e.insertObject(o, tr, from)
}

// NextEventTime peeks the earliest instant at which the engine has work
// scheduled: a pending creation or a kinetic event in the sweep. Until
// then every evaluator's current answer is constant.
func (e *Engine) NextEventTime() (float64, bool) {
	t, ok := e.sw.NextEventTime()
	if len(e.pending) > 0 && (!ok || e.pending[0].at < t) {
		return e.pending[0].at, true
	}
	return t, ok
}

// RunTo advances the sweep to time t, performing queued insertions at
// their creation instants along the way.
func (e *Engine) RunTo(t float64) error {
	if t > e.hi {
		return fmt.Errorf("query: RunTo(%g) beyond window end %g", t, e.hi)
	}
	for len(e.pending) > 0 && e.pending[0].at <= t {
		p := e.pending[0]
		e.pending = e.pending[1:]
		if err := e.sw.AdvanceTo(p.at); err != nil {
			return err
		}
		if err := e.insertObject(p.o, e.trajs[p.o], p.at); err != nil {
			return err
		}
	}
	return e.sw.AdvanceTo(t)
}

// Finish advances to the end of the window and finalizes all evaluators.
// For unbounded windows it finalizes at the current sweep time.
func (e *Engine) Finish() error {
	if !math.IsInf(e.hi, 1) {
		if err := e.RunTo(e.hi); err != nil {
			return err
		}
	}
	t := e.sw.Now()
	for _, ev := range e.evals {
		ev.Finish(t)
	}
	return nil
}

// ApplyUpdate ingests one MOD update (Definition 3) at its time instant,
// first processing every pending intersection event before the update
// time — exactly the event loop of Section 5. Updates must arrive
// chronologically.
func (e *Engine) ApplyUpdate(u mod.Update) error {
	if u.Tau < e.sw.Now() {
		return fmt.Errorf("query: update at %g before sweep time %g", u.Tau, e.sw.Now())
	}
	if u.Tau > e.hi {
		return fmt.Errorf("query: update at %g beyond window end %g", u.Tau, e.hi)
	}
	if err := e.RunTo(u.Tau); err != nil {
		return err
	}
	e.updatesApplied++
	switch u.Kind {
	case mod.KindNew:
		if uint64(u.O) > oidMask {
			return fmt.Errorf("%w: %s", ErrBadOID, u.O)
		}
		tr := trajectory.Linear(u.Tau, u.A, u.B)
		e.trajs[u.O] = tr
		return e.insertObject(u.O, tr, u.Tau)
	case mod.KindTerminate:
		tr, ok := e.trajs[u.O]
		if !ok {
			return fmt.Errorf("query: terminate unknown object %s", u.O)
		}
		nt, err := tr.Terminate(u.Tau)
		if err != nil {
			return err
		}
		e.trajs[u.O] = nt
		for term := range e.terms {
			id := packObj(u.O, term)
			if e.sw.Contains(id) {
				if err := e.sw.RemoveCurve(id); err != nil {
					return err
				}
			}
		}
		return nil
	case mod.KindChDir:
		tr, ok := e.trajs[u.O]
		if !ok {
			return fmt.Errorf("query: chdir unknown object %s", u.O)
		}
		nt, err := tr.ChDir(u.Tau, u.A)
		if err != nil {
			return err
		}
		e.trajs[u.O] = nt
		for term := range e.terms {
			id := packObj(u.O, term)
			if !e.sw.Contains(id) {
				continue
			}
			cf, err := e.buildTermCurve(nt, term, u.Tau)
			if err != nil {
				return err
			}
			if err := e.sw.ReplaceCurve(id, cf); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("query: unknown update kind %v", u.Kind)
	}
}

// UpdatesApplied reports how many updates the engine has ingested.
func (e *Engine) UpdatesApplied() int { return e.updatesApplied }

// ReplaceGDistance swaps the engine's generalized distance — the
// Theorem 10 case of a chdir on the query trajectory. The current
// precedence relation stays valid (old and new g-distances agree up to
// now), so no re-sort happens: every curve is rebuilt and all adjacency
// events are recomputed in O(N) sweep work.
func (e *Engine) ReplaceGDistance(f gdist.GDistance) error {
	e.f = f
	now := e.sw.Now()
	replacement := make(map[uint64]piecewise.Func)
	for o, tr := range e.trajs {
		for term := range e.terms {
			id := packObj(o, term)
			if !e.sw.Contains(id) {
				continue
			}
			cf, err := e.buildTermCurve(tr, term, now)
			if err != nil {
				return err
			}
			replacement[id] = cf
		}
	}
	// Constant curves are unaffected but ReplaceAll wants the full set.
	for _, id := range e.sw.Order() {
		if IsConstID(id) {
			cf, _ := e.sw.Curve(id)
			replacement[id] = cf
		}
	}
	return e.sw.ReplaceAll(replacement)
}
